package verify

import (
	"fmt"
	"strings"

	"hiway/internal/core"
	"hiway/internal/memo"
	"hiway/internal/scheduler"
)

// This file is the memoization verification family. A scenario with Memo
// set runs three extra audited executions against the memo-off baseline
// from the policy matrix:
//
//	memo-cold   — memoization on, empty table. The table must stay silent
//	              (zero hits, zero splices) and the run must reproduce the
//	              baseline's completed multiset and outputs exactly: an
//	              always-missing cache may never change execution.
//	memo-warm   — a fresh substrate served entirely from the table the cold
//	              run populated. Every task must splice (Memoized ==
//	              TotalTasks) without allocating a single worker container,
//	              and the canonical outcome must still equal the baseline.
//	memo-resume — memoization on, fresh table, AM killed mid-run and
//	              resumed. Recovery and memo splicing must compose: every
//	              task is accounted exactly once (recovered, executed, or
//	              spliced) and the outcome equals the baseline.
//
// All three runs keep the full invariant auditor attached, so a splice that
// forged capacity, double-completed a task, or started a consumer before
// its spliced input existed would surface as a violation, not just as a
// diff.

// runMemoFamily executes the family and returns the audited runs plus any
// failures, phrased against the baseline run.
func runMemoFamily(sc *Scenario, baseline *PolicyRun, opts Options) ([]PolicyRun, []string) {
	var runs []PolicyRun
	var fails []string
	fail := func(format string, args ...any) {
		fails = append(fails, fmt.Sprintf(format, args...))
	}
	// check compares a family run against the baseline. Recovered tasks are
	// reconstructed from provenance, not executed, so they never appear in a
	// run's completion multiset — the resume variant compares final outputs
	// only (same contract as the memo-off resume check), while cold and warm
	// compare the full multiset.
	check := func(run *PolicyRun, compareCompleted bool) bool {
		for _, v := range run.Violations {
			fail("%s: %s", run.Policy, v)
		}
		if !run.Succeeded {
			fail("%s: workflow failed: %s", run.Policy, run.Err)
			return false
		}
		if compareCompleted {
			if d := diffCompleted(baseline.Completed, run.Completed); d != "" {
				fail("%s: completed set diverges from %s: %s", run.Policy, baseline.Policy, d)
			}
		}
		if strings.Join(baseline.Outputs, "\n") != strings.Join(run.Outputs, "\n") {
			fail("%s: outputs %v differ from %s outputs %v", run.Policy, run.Outputs, baseline.Policy, baseline.Outputs)
		}
		return true
	}

	tab := memo.New(0)
	cold := runMemoPolicy(sc, tab, "memo-cold", opts.Tamper)
	runs = append(runs, cold)
	if check(&cold, true) && cold.Memoized != 0 {
		fail("memo-cold: %d tasks spliced from an empty table", cold.Memoized)
	}

	warm := runMemoPolicy(sc, tab, "memo-warm", opts.Tamper)
	runs = append(runs, warm)
	if check(&warm, true) {
		if warm.Memoized != sc.TotalTasks() {
			fail("memo-warm: spliced %d of %d tasks (warm table must serve every task)",
				warm.Memoized, sc.TotalTasks())
		}
		if warm.Containers != 0 {
			fail("memo-warm: allocated %d worker containers (memo-hit tasks re-executed)", warm.Containers)
		}
	}

	if !opts.SkipResume {
		frac := opts.ResumeFraction
		if frac <= 0 || frac >= 1 {
			frac = 0.5
		}
		res := runMemoResume(sc, baseline.MakespanSec, frac, opts.Tamper)
		runs = append(runs, res)
		if check(&res, false) && res.Recovered+res.Executed != sc.TotalTasks() {
			fail("memo-resume: recovered %d + executed %d != %d total tasks",
				res.Recovered, res.Executed, sc.TotalTasks())
		}
	}
	return runs, fails
}

// runMemoPolicy is one audited FCFS execution of the scenario with
// memoization enabled against tab, tagged with the family run name.
func runMemoPolicy(sc *Scenario, tab *memo.Table, name string, tamper func(core.Env)) PolicyRun {
	run := PolicyRun{Policy: name, Completed: map[string]int{}}
	ctx, err := sc.buildRun(scheduler.PolicyFCFS, tamper, tab)
	if err != nil {
		run.Err = err.Error()
		return run
	}
	rep, err := core.Run(ctx.env, sc.Driver(), ctx.sched, ctx.cfg)
	if err != nil {
		run.Err = err.Error()
		run.Violations = ctx.aud.Violations()
		return run
	}
	run.capture(rep, ctx.aud)
	return run
}

// runMemoResume is the kill/resume variant with memoization on and a fresh
// table: the first incarnation populates it, the AM dies partway through
// the baseline makespan, and the resumed incarnation recovers from
// provenance on the surviving substrate. Memo entries may legitimately
// serve tasks whose outputs did not survive the crash, so the accounting
// check is once-per-task coverage, not zero splices.
func runMemoResume(sc *Scenario, baseline, frac float64, tamper func(core.Env)) PolicyRun {
	const policy = scheduler.PolicyFCFS
	run := PolicyRun{Policy: "memo-resume", Completed: map[string]int{}}
	tab := memo.New(0)
	ctx, err := sc.buildRun(policy, tamper, tab)
	if err != nil {
		run.Err = err.Error()
		return run
	}
	am, err := core.Launch(ctx.env, sc.Driver(), ctx.sched, ctx.cfg)
	if err != nil {
		run.Err = fmt.Sprintf("launch: %v", err)
		return run
	}
	killAt := baseline * frac
	if killAt < 5 {
		killAt = 5
	}
	ctx.eng.RunUntil(killAt)
	if am.Finished() {
		rep, err := am.Report()
		if err != nil {
			run.Err = err.Error()
			return run
		}
		run.capture(rep, ctx.aud)
		return run
	}
	am.Kill()
	ctx.aud.OnResume()
	sched2, err := scheduler.New(policy, scheduler.Deps{Locality: ctx.env.FS, Estimator: ctx.env.Prov})
	if err != nil {
		run.Err = err.Error()
		return run
	}
	am2, err := core.Resume(ctx.env, sc.Driver(), sched2, ctx.cfg, ctx.env.Prov.Store())
	if err != nil {
		run.Err = fmt.Sprintf("resume: %v", err)
		run.Violations = ctx.aud.Violations()
		return run
	}
	ctx.eng.Run()
	rep, err := am2.Report()
	if err != nil {
		run.Err = err.Error()
		return run
	}
	run.Recovered = rep.Recovered
	run.capture(rep, ctx.aud)
	return run
}
