package verify

import (
	"fmt"
	"sort"
	"strings"

	"hiway/internal/autoscale"
	"hiway/internal/chaos"
	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/memo"
	"hiway/internal/scheduler"
	"hiway/internal/sim"
	"hiway/internal/wf"
)

// AllPolicies is the default differential matrix: every scheduling policy
// the engine supports. Static policies are skipped automatically for
// iterative scenarios (§3.4).
var AllPolicies = []string{
	scheduler.PolicyFCFS,
	scheduler.PolicyDataAware,
	scheduler.PolicyRoundRobin,
	scheduler.PolicyHEFT,
	scheduler.PolicyAdaptiveGreedy,
}

// staticPolicies cannot drive workflows that unfold at run time.
var staticPolicies = map[string]bool{
	scheduler.PolicyRoundRobin: true,
	scheduler.PolicyHEFT:       true,
}

// Options tunes a verification run.
type Options struct {
	// Policies selects the differential matrix; nil means AllPolicies.
	Policies []string
	// Tamper, if set, runs against each freshly materialized environment
	// before the workflow launches — the hook tests use to inject deliberate
	// accounting bugs and prove the auditor catches them.
	Tamper func(env core.Env)
	// SkipResume disables the kill/resume variant.
	SkipResume bool
	// ResumeFraction is the fraction of the baseline makespan at which the
	// AM is killed in the resume variant; default 0.5.
	ResumeFraction float64
}

func (o Options) policies() []string {
	if len(o.Policies) > 0 {
		return o.Policies
	}
	return AllPolicies
}

// PolicyRun is the audited outcome of one scenario execution.
type PolicyRun struct {
	Policy      string         `json:"policy"`
	Lang        string         `json:"lang,omitempty"` // portability runs: rendering language
	Succeeded   bool           `json:"succeeded"`
	Err         string         `json:"err,omitempty"`
	MakespanSec float64        `json:"makespanSec"`
	Completed   map[string]int `json:"-"` // structural task key → completions
	Outputs     []string       `json:"outputs,omitempty"`
	Violations  []Violation    `json:"violations,omitempty"`
	Recovered   int            `json:"recovered,omitempty"`  // resume variant only
	Executed    int            `json:"executed"`             // tasks run to completion
	Memoized    int            `json:"memoized,omitempty"`   // tasks spliced from the memo table
	Containers  int64          `json:"containers,omitempty"` // worker containers allocated

	// Canonical and CanonOutputs are the path-independent outcome of a
	// portability run (Lang != ""): the canonical lineage multiset and the
	// canonicalized final outputs (see portability.go).
	Canonical    map[string]int `json:"-"`
	CanonOutputs []string       `json:"-"`
}

// capture folds a finished report into the run: completion multiset,
// sorted outputs, the auditor's final verdict, and — for portability runs —
// the canonical outcome.
func (run *PolicyRun) capture(rep *core.Report, aud *Auditor) {
	run.Succeeded = rep.Succeeded
	if rep.Err != nil {
		run.Err = rep.Err.Error()
	}
	run.MakespanSec = rep.MakespanSec
	run.Executed = len(rep.Results)
	run.Memoized = rep.Memoized
	run.Containers = rep.Containers
	for _, res := range rep.Results {
		if res.Succeeded() {
			run.Completed[structuralKey(res.Task.Name, res.Task.Inputs, res.Task.DeclaredPaths())]++
		}
	}
	run.Outputs = append([]string(nil), rep.Outputs...)
	sort.Strings(run.Outputs)
	run.Violations = aud.FinalCheck(rep.Succeeded)
	if run.Lang != "" {
		run.Canonical, run.CanonOutputs = CanonicalOutcome(rep.Results, rep.Outputs)
	}
}

// Result is the differential verdict for one scenario.
type Result struct {
	Scenario *Scenario   `json:"scenario"`
	Runs     []PolicyRun `json:"runs"`
	Failures []string    `json:"failures,omitempty"`
}

// OK reports whether every policy satisfied every invariant and all runs
// agreed.
func (r *Result) OK() bool { return len(r.Failures) == 0 }

// structuralKey identifies a task across runs and AM incarnations, where
// numeric task IDs are meaningless: signature plus sorted inputs plus
// sorted outputs.
func structuralKey(name string, inputs, outputs []string) string {
	in := append([]string(nil), inputs...)
	out := append([]string(nil), outputs...)
	sort.Strings(in)
	sort.Strings(out)
	return name + "|" + strings.Join(in, ",") + "|" + strings.Join(out, ",")
}

// expectedCompletions is the multiset of structural task keys a successful
// run of the scenario must complete, straight from the specs.
func (s *Scenario) expectedCompletions() map[string]int {
	exp := make(map[string]int, s.TotalTasks())
	for _, t := range s.Tasks {
		exp[structuralKey(t.Name, t.Inputs, t.Outputs)]++
	}
	for _, t := range s.IterTasks {
		exp[structuralKey(t.Name, t.Inputs, t.Outputs)]++
	}
	return exp
}

// buildRun wires one fresh execution environment for the scenario: chaos
// plan (parsed and armed anew — plans carry mutable rule counters), auditor
// hooked into RM and AM, scheduler, and AM config. A non-nil tab enables
// memoization against that table. It returns everything the caller needs to
// launch.
func (s *Scenario) buildRun(policy string, tamper func(core.Env), tab *memo.Table) (*runCtx, error) {
	eng, env, err := s.Materialize()
	if err != nil {
		return nil, fmt.Errorf("materialize: %w", err)
	}
	if tamper != nil {
		tamper(env)
	}
	aud := NewAuditor(env)
	for _, in := range s.Inputs {
		aud.Grant(in.Path)
	}
	env.RM.SetAudit(aud)
	cfg := core.Config{
		WorkflowID:          fmt.Sprintf("verify-%d-%s", s.Seed, policy),
		ContainerVCores:     1,
		ContainerMemMB:      1024,
		MaxRetries:          5,
		AMNode:              "node-00",
		TaskTimeoutFloorSec: s.TimeoutFloorSec,
		Speculate:           s.Speculate,
		Audit:               aud,
		Memo:                tab,
	}
	var health *scheduler.NodeHealthTracker
	if s.Chaos != "" {
		plan, err := chaos.Parse(s.Chaos, s.ChaosSeed)
		if err != nil {
			return nil, fmt.Errorf("chaos plan: %w", err)
		}
		plan.Arm(eng, env.RM, env.FS, env.Cluster)
		cfg.Chaos = plan
		health = scheduler.NewNodeHealthTracker(eng.Now, 3, 60)
		cfg.Health = health
	}
	if s.Elastic != nil {
		mgr := autoscale.NewManager(eng, env.Cluster, env.RM, env.FS, autoscale.ManagerConfig{
			Spec:             cluster.M3Large(),
			DrainDeadlineSec: s.Elastic.DrainDeadlineSec,
			SpotNoticeSec:    s.Elastic.SpotNoticeSec,
			Protected:        []string{"node-00"},
			Rereplicate:      true,
			Health:           health,
		})
		s.Elastic.arm(eng, mgr)
	}
	sched, err := scheduler.New(policy, scheduler.Deps{Locality: env.FS, Estimator: env.Prov})
	if err != nil {
		return nil, fmt.Errorf("scheduler: %w", err)
	}
	return &runCtx{sc: s, eng: eng, env: env, aud: aud, sched: sched, cfg: cfg}, nil
}

type runCtx struct {
	sc    *Scenario
	eng   *sim.Engine
	env   core.Env
	aud   *Auditor
	sched scheduler.Scheduler
	cfg   core.Config
}

// runPolicy executes the scenario to quiescence under one policy and audits
// the result.
func runPolicy(sc *Scenario, policy string, tamper func(core.Env)) PolicyRun {
	return runPolicyDriver(sc, policy, tamper, sc.Driver, "")
}

// runPolicyDriver is runPolicy over an arbitrary driver factory: the spec
// driver for the main differential matrix, or a language rendering for the
// portability family (language tags the run and switches the capture to
// canonical comparison).
func runPolicyDriver(sc *Scenario, policy string, tamper func(core.Env), driver func() wf.Driver, language string) PolicyRun {
	run := PolicyRun{Policy: policy, Lang: language, Completed: map[string]int{}}
	ctx, err := sc.buildRun(policy, tamper, nil)
	if err != nil {
		run.Err = err.Error()
		return run
	}
	rep, err := core.Run(ctx.env, driver(), ctx.sched, ctx.cfg)
	if err != nil {
		run.Err = err.Error()
		run.Violations = ctx.aud.Violations()
		return run
	}
	run.capture(rep, ctx.aud)
	return run
}

// runResume executes the kill/resume variant: launch under FCFS, kill the
// AM partway through the baseline makespan, resume a fresh AM incarnation
// from provenance on the surviving substrate, and verify that recovery
// re-executed zero completed tasks. The chaos plan instance spans both
// incarnations (the injected world does not reset when the AM dies).
func runResume(sc *Scenario, baseline, frac float64, tamper func(core.Env)) PolicyRun {
	return runResumeDriver(sc, baseline, frac, tamper, sc.Driver, "")
}

// runResumeDriver is runResume over an arbitrary driver factory. The
// factory is called once per AM incarnation, exactly like a real restart
// re-parsing the workflow source. For the spec driver (language == ""),
// declared output paths are stable across incarnations, so recovery must
// re-execute zero completed tasks. A language rendering synthesizes paths
// around process-local task IDs, so its second incarnation matches nothing
// in provenance and legitimately re-executes the whole workflow — the
// check for renderings is the canonical outcome of the final state, not
// zero re-execution.
func runResumeDriver(sc *Scenario, baseline, frac float64, tamper func(core.Env), driver func() wf.Driver, language string) PolicyRun {
	const policy = scheduler.PolicyFCFS
	run := PolicyRun{Policy: "resume", Lang: language, Completed: map[string]int{}}
	ctx, err := sc.buildRun(policy, tamper, nil)
	if err != nil {
		run.Err = err.Error()
		return run
	}
	am, err := core.Launch(ctx.env, driver(), ctx.sched, ctx.cfg)
	if err != nil {
		run.Err = fmt.Sprintf("launch: %v", err)
		return run
	}
	killAt := baseline * frac
	if killAt < 5 {
		killAt = 5
	}
	ctx.eng.RunUntil(killAt)

	if am.Finished() {
		// The run beat the kill point (tiny scenario); audit it as a plain
		// run — resume has nothing to recover.
		rep, err := am.Report()
		if err != nil {
			run.Err = err.Error()
			return run
		}
		run.capture(rep, ctx.aud)
		return run
	}

	completedAtKill := am.CompletedTasks()
	am.Kill()
	// Second incarnation: the cluster, HDFS, provenance store, armed chaos
	// events — and the auditor's RM-level state — survive; only AM state is
	// lost. OnResume clears the per-incarnation task bookkeeping while
	// keeping container, capacity, and node-death history, so late defensive
	// re-releases of first-incarnation containers stay legitimate.
	ctx.aud.OnResume()
	sched2, err := scheduler.New(policy, scheduler.Deps{Locality: ctx.env.FS, Estimator: ctx.env.Prov})
	if err != nil {
		run.Err = err.Error()
		return run
	}
	am2, err := core.Resume(ctx.env, driver(), sched2, ctx.cfg, ctx.env.Prov.Store())
	if err != nil {
		run.Err = fmt.Sprintf("resume: %v", err)
		run.Violations = ctx.aud.Violations()
		return run
	}
	ctx.eng.Run()
	rep, err := am2.Report()
	if err != nil {
		run.Err = err.Error()
		return run
	}
	run.Recovered = rep.Recovered
	run.capture(rep, ctx.aud)

	// Replay equivalence: recovery reconstructed exactly what had completed,
	// and nothing completed was re-executed. Only spec drivers have stable
	// paths for provenance recovery to match; renderings re-execute.
	if run.Succeeded && language == "" {
		if rep.Recovered != completedAtKill {
			run.Violations = append(run.Violations, Violation{
				TimeSec:   ctx.eng.Now(),
				Invariant: "zero-reexecution",
				Detail:    fmt.Sprintf("recovered %d tasks, %d had completed at the kill", rep.Recovered, completedAtKill),
			})
		}
		if rep.Recovered+len(rep.Results) != sc.TotalTasks() {
			run.Violations = append(run.Violations, Violation{
				TimeSec:   ctx.eng.Now(),
				Invariant: "zero-reexecution",
				Detail: fmt.Sprintf("recovered %d + executed %d != %d total tasks (completed work re-ran)",
					rep.Recovered, len(rep.Results), sc.TotalTasks()),
			})
		}
	}
	return run
}

// diffCompleted renders the difference between two completion multisets.
func diffCompleted(want, got map[string]int) string {
	var missing, extra []string
	for k, n := range want {
		if got[k] < n {
			missing = append(missing, k)
		}
	}
	for k, n := range got {
		if want[k] < n {
			extra = append(extra, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	var parts []string
	if len(missing) > 0 {
		parts = append(parts, fmt.Sprintf("missing %v", missing))
	}
	if len(extra) > 0 {
		parts = append(parts, fmt.Sprintf("extra %v", extra))
	}
	return strings.Join(parts, "; ")
}

// CheckScenario executes the scenario under every requested policy plus the
// kill/resume variant and returns the differential verdict: per-run
// invariant violations, policy-vs-policy disagreement on the completed task
// multiset or final outputs, and replay divergence all become Failures.
func CheckScenario(sc *Scenario, opts Options) *Result {
	res := &Result{Scenario: sc}
	expected := sc.expectedCompletions()

	var baseline *PolicyRun
	for _, policy := range opts.policies() {
		if staticPolicies[policy] && (sc.Iterative() || sc.KillsNode() || sc.Elastic.Disruptive()) {
			// §3.4: static planners cannot run unfolding workflows, and a
			// static plan cannot reroute around a node the chaos plan kills
			// or the elastic plan drains away.
			continue
		}
		run := runPolicy(sc, policy, opts.Tamper)
		res.Runs = append(res.Runs, run)
		r := &res.Runs[len(res.Runs)-1]
		for _, v := range r.Violations {
			res.Failures = append(res.Failures, fmt.Sprintf("policy %s: %s", policy, v))
		}
		if !r.Succeeded {
			res.Failures = append(res.Failures, fmt.Sprintf("policy %s: workflow failed: %s", policy, r.Err))
			continue
		}
		if d := diffCompleted(expected, r.Completed); d != "" {
			res.Failures = append(res.Failures, fmt.Sprintf("policy %s: completed set diverges from scenario: %s", policy, d))
		}
		if baseline == nil {
			baseline = r
			continue
		}
		if d := diffCompleted(baseline.Completed, r.Completed); d != "" {
			res.Failures = append(res.Failures,
				fmt.Sprintf("policy %s: completed set diverges from %s: %s", policy, baseline.Policy, d))
		}
		if strings.Join(baseline.Outputs, "\n") != strings.Join(r.Outputs, "\n") {
			res.Failures = append(res.Failures,
				fmt.Sprintf("policy %s: outputs %v differ from %s outputs %v", policy, r.Outputs, baseline.Policy, baseline.Outputs))
		}
	}

	if sc.Service != nil {
		run := runService(sc, opts.Tamper)
		res.Runs = append(res.Runs, run)
		r := &res.Runs[len(res.Runs)-1]
		for _, v := range r.Violations {
			res.Failures = append(res.Failures, fmt.Sprintf("service: %s", v))
		}
		if r.Err != "" {
			res.Failures = append(res.Failures, fmt.Sprintf("service: %s", r.Err))
		}
	}

	if !opts.SkipResume && baseline != nil {
		frac := opts.ResumeFraction
		if frac <= 0 || frac >= 1 {
			frac = 0.5
		}
		run := runResume(sc, baseline.MakespanSec, frac, opts.Tamper)
		res.Runs = append(res.Runs, run)
		r := &res.Runs[len(res.Runs)-1]
		for _, v := range r.Violations {
			res.Failures = append(res.Failures, fmt.Sprintf("resume: %s", v))
		}
		if !r.Succeeded {
			res.Failures = append(res.Failures, fmt.Sprintf("resume: workflow failed: %s", r.Err))
		} else if strings.Join(baseline.Outputs, "\n") != strings.Join(r.Outputs, "\n") {
			res.Failures = append(res.Failures,
				fmt.Sprintf("resume: outputs %v differ from %s outputs %v", r.Outputs, baseline.Policy, baseline.Outputs))
		}
	}

	if sc.Portability {
		runs, fails := runPortability(sc, opts)
		res.Runs = append(res.Runs, runs...)
		res.Failures = append(res.Failures, fails...)
	}

	if sc.Memo && baseline != nil {
		runs, fails := runMemoFamily(sc, baseline, opts)
		res.Runs = append(res.Runs, runs...)
		res.Failures = append(res.Failures, fails...)
	}
	return res
}
