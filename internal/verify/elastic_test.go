package verify

import (
	"strings"
	"testing"

	"hiway/internal/yarn"
)

// TestElasticScenariosGeneratedAndPass finds seeds that carry an elastic
// membership plan and checks the full differential matrix — including the
// membership-safety and cost-conservation invariants — holds on them. A
// quarter of all seeds should carry a plan; at least one found plan must be
// disruptive (drain or spot reclaim) so the preemption path is exercised.
func TestElasticScenariosGeneratedAndPass(t *testing.T) {
	found, disruptive := 0, 0
	for seed := int64(1); seed <= 80 && found < 5; seed++ {
		sc := Generate(seed)
		if sc.Elastic == nil {
			continue
		}
		found++
		if sc.Elastic.Disruptive() {
			disruptive++
		}
		if len(sc.Elastic.Events) == 0 {
			t.Fatalf("seed %d: elastic plan with no events", seed)
		}
		for _, ev := range sc.Elastic.Events {
			if ev.Node == "node-00" {
				t.Fatalf("seed %d: elastic plan touches the AM node:\n%s", seed, sc.Marshal())
			}
		}
		res := CheckScenario(sc, Options{})
		if !res.OK() {
			t.Errorf("elastic seed %d (%s, chaos %q) failed:\n  %s",
				seed, sc.Shape, sc.Chaos, strings.Join(res.Failures, "\n  "))
		}
	}
	if found == 0 {
		t.Fatal("80 seeds never generated an elastic scenario")
	}
	if disruptive == 0 {
		t.Error("no found elastic plan was disruptive (drain/spot never generated)")
	}
}

// TestDisruptiveElasticSkipsStaticPolicies pins the runner rule: a plan that
// drains capacity away mid-run is checked under dynamic policies only, like
// a chaos node kill.
func TestDisruptiveElasticSkipsStaticPolicies(t *testing.T) {
	var sc *Scenario
	for seed := int64(1); ; seed++ {
		if sc = Generate(seed); sc.Elastic.Disruptive() && !sc.Iterative() {
			break
		}
	}
	res := CheckScenario(sc, Options{})
	if !res.OK() {
		t.Fatalf("disruptive elastic seed %d failed:\n  %s", sc.Seed, strings.Join(res.Failures, "\n  "))
	}
	for _, run := range res.Runs {
		if staticPolicies[run.Policy] {
			t.Fatalf("static policy %s ran a disruptive elastic scenario", run.Policy)
		}
	}
}

// TestAuditorDetectsAllocationOnDrainingNode feeds the auditor a synthetic
// stream in which a container lands on a node that already announced its
// drain — the membership-safety invariant must flag the exact event.
func TestAuditorDetectsAllocationOnDrainingNode(t *testing.T) {
	sc := Generate(1)
	_, env, err := sc.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	aud := NewAuditor(env)
	node := env.Cluster.Nodes()[1].ID
	aud.OnNodeDraining(1, node)
	aud.OnContainerAllocated(2, &yarn.Container{ID: 7, NodeID: node,
		Resource: yarn.Resource{VCores: 1, MemMB: 512}})
	var hit bool
	for _, v := range aud.Violations() {
		if v.Invariant == InvMembership && v.TimeSec == 2 {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("draining-node allocation not reported as %s: %v", InvMembership, aud.Violations())
	}

	// And on a removed node likewise.
	aud2 := NewAuditor(env)
	aud2.OnNodeJoined(1, "extra-00", 4, 4096)
	aud2.OnNodeRemoved(2, "extra-00")
	aud2.OnContainerAllocated(3, &yarn.Container{ID: 8, NodeID: "extra-00",
		Resource: yarn.Resource{VCores: 1, MemMB: 512}})
	hit = false
	for _, v := range aud2.Violations() {
		if v.Invariant == InvMembership && v.TimeSec == 3 {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("removed-node allocation not reported as %s: %v", InvMembership, aud2.Violations())
	}
}

// TestCostViolationsFlagsImbalance pins the conservation check itself: a
// tenant account that does not sum to the busy integral must be flagged for
// the right class, and a balanced report must pass.
func TestCostViolationsFlagsImbalance(t *testing.T) {
	balanced := yarn.CostReport{
		OnDemandBusySec: 100, SpotBusySec: 40,
		Tenants: map[string]yarn.TenantCost{
			"a": {OnDemandCoreSec: 60, SpotCoreSec: 40},
			"b": {OnDemandCoreSec: 40},
		},
	}
	if vs := costViolations(balanced, 10); len(vs) != 0 {
		t.Fatalf("balanced report flagged: %v", vs)
	}
	skewed := balanced
	skewed.Tenants = map[string]yarn.TenantCost{
		"a": {OnDemandCoreSec: 60, SpotCoreSec: 40},
		"b": {OnDemandCoreSec: 39}, // one core-second vanished
	}
	vs := costViolations(skewed, 10)
	if len(vs) != 1 || vs[0].Invariant != InvCost || !strings.Contains(vs[0].Detail, "on-demand") {
		t.Fatalf("imbalance not reported as %s on-demand: %v", InvCost, vs)
	}
}

// TestShrinkDropsElasticPlan checks the shrinker removes the membership plan
// when the failure lives elsewhere (the release-skew tamper fires on any
// release), keeping reproducers minimal.
func TestShrinkDropsElasticPlan(t *testing.T) {
	opts := Options{Tamper: skewTamper, SkipResume: true, Policies: []string{"fcfs"}}
	var sc *Scenario
	for seed := int64(1); ; seed++ {
		sc = Generate(seed)
		if sc.Elastic == nil || sc.Iterative() {
			continue
		}
		if len(CheckScenario(sc, opts).Failures) > 0 {
			break
		}
	}
	rep := Shrink(sc, opts)
	if len(rep.Failures) == 0 {
		t.Fatalf("shrink lost the failure")
	}
	if rep.Scenario.Elastic != nil {
		t.Fatalf("minimized scenario kept its elastic plan:\n%s", rep.Scenario.Marshal())
	}
}
