package verify

import (
	"bytes"
	"strings"
	"testing"

	"hiway/internal/core"
	"hiway/internal/yarn"
)

// TestGenerateDeterministic pins the generator contract: the same seed must
// yield byte-identical scenarios (the whole verifier depends on it).
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a, b := Generate(seed).Marshal(), Generate(seed).Marshal()
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%s\n%s", seed, a, b)
		}
	}
}

// TestGeneratedScenariosParse checks structural validity over a seed sweep:
// every generated scenario must build a driver whose DAG validates (acyclic,
// producers known) and whose task count matches the spec.
func TestGeneratedScenariosParse(t *testing.T) {
	shapesSeen := map[string]bool{}
	for seed := int64(1); seed <= 60; seed++ {
		sc := Generate(seed)
		shapesSeen[sc.Shape] = true
		ready, err := sc.Driver().Parse()
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sc.Shape, err)
		}
		if len(ready) == 0 {
			t.Fatalf("seed %d (%s): no initially ready tasks", seed, sc.Shape)
		}
		if sc.Nodes < 3 || sc.Nodes > 8 {
			t.Fatalf("seed %d: %d nodes out of range", seed, sc.Nodes)
		}
	}
	for _, shape := range shapes {
		if !shapesSeen[shape] {
			t.Errorf("60 seeds never produced shape %q", shape)
		}
	}
}

// TestScenarioRoundTrip pins the reproducer format: Marshal → ParseScenario
// is the identity.
func TestScenarioRoundTrip(t *testing.T) {
	sc := Generate(7)
	back, err := ParseScenario(sc.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sc.Marshal(), back.Marshal()) {
		t.Fatalf("round-trip changed the scenario")
	}
}

// TestCheckScenarioSeedBatch is the in-repo slice of the CI seed batch:
// every seed must pass every policy, the resume variant, and all invariants.
// The full 200-seed batch runs via `hiway verify` in CI.
func TestCheckScenarioSeedBatch(t *testing.T) {
	n := int64(25)
	if testing.Short() {
		n = 8
	}
	for seed := int64(1); seed <= n; seed++ {
		sc := Generate(seed)
		res := CheckScenario(sc, Options{})
		if !res.OK() {
			t.Errorf("seed %d (%s, %d tasks, chaos %q) failed:\n  %s",
				seed, sc.Shape, sc.TotalTasks(), sc.Chaos, strings.Join(res.Failures, "\n  "))
		}
	}
}

// TestIterativeScenarioSkipsStaticPolicies documents the §3.4 rule in the
// runner: an unfolding workflow is checked under dynamic policies only, and
// still completes its full task count.
func TestIterativeScenarioSkipsStaticPolicies(t *testing.T) {
	var sc *Scenario
	for seed := int64(1); ; seed++ {
		if sc = Generate(seed); sc.Iterative() {
			break
		}
	}
	res := CheckScenario(sc, Options{})
	if !res.OK() {
		t.Fatalf("iterative seed %d failed:\n  %s", sc.Seed, strings.Join(res.Failures, "\n  "))
	}
	for _, run := range res.Runs {
		if staticPolicies[run.Policy] {
			t.Fatalf("static policy %s ran an iterative scenario", run.Policy)
		}
		if run.Policy != "resume" && run.Policy != "memo-resume" && run.Policy != "service" && run.Executed != sc.TotalTasks() {
			t.Fatalf("policy %s executed %d tasks, want %d", run.Policy, run.Executed, sc.TotalTasks())
		}
	}
}

// skewTamper injects the deliberate off-by-one into container release that
// the acceptance criteria demand the auditor catches: every release credits
// one extra vcore, so free+in-use drifts above the node spec.
func skewTamper(env core.Env) { env.RM.SetReleaseSkewForTesting(1) }

// TestAuditorDetectsReleaseSkew is the acceptance test for the invariant
// auditor: a broken release accounting path must surface as a
// capacity-conservation violation under every policy.
func TestAuditorDetectsReleaseSkew(t *testing.T) {
	sc := Generate(1)
	res := CheckScenario(sc, Options{Tamper: skewTamper, SkipResume: true})
	if res.OK() {
		t.Fatalf("auditor missed the release off-by-one on seed %d", sc.Seed)
	}
	found := false
	for _, f := range res.Failures {
		if strings.Contains(f, InvCapacity) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("failures do not name %s:\n  %s", InvCapacity, strings.Join(res.Failures, "\n  "))
	}
}

// TestShrinkMinimizesReleaseSkewReproducer drives the full failing-seed
// workflow: detect the injected bug, then shrink the scenario. The
// accounting bug fires on the very first release, so the minimized
// reproducer must be a single-task workflow with an empty chaos plan.
func TestShrinkMinimizesReleaseSkewReproducer(t *testing.T) {
	opts := Options{Tamper: skewTamper, SkipResume: true, Policies: []string{"fcfs"}}
	var sc *Scenario
	for seed := int64(1); ; seed++ {
		sc = Generate(seed)
		if sc.Iterative() {
			continue // keep the assertion on the prefix search simple
		}
		if len(CheckScenario(sc, opts).Failures) > 0 {
			break
		}
	}
	rep := Shrink(sc, opts)
	if len(rep.Failures) == 0 {
		t.Fatalf("shrink lost the failure (probes %d)", rep.Probes)
	}
	min := rep.Scenario
	if len(min.Tasks) != 1 {
		t.Errorf("minimized to %d tasks, want 1:\n%s", len(min.Tasks), min.Marshal())
	}
	if min.Chaos != "" {
		t.Errorf("minimized scenario kept chaos %q", min.Chaos)
	}
	if len(CheckScenario(min, opts).Failures) == 0 {
		t.Errorf("minimized reproducer does not fail on re-check")
	}
	// And the reproducer is self-contained: parse it back and re-fail.
	back, err := ParseScenario(min.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(CheckScenario(back, opts).Failures) == 0 {
		t.Errorf("re-parsed reproducer does not fail")
	}
}

// TestServiceScenariosGeneratedAndPass finds seeds that carry a service
// tier and checks the tenant-quota and admission-order invariants hold on
// them. A third of all seeds should carry one; 40 seeds make a missing
// generator branch effectively impossible to miss.
func TestServiceScenariosGeneratedAndPass(t *testing.T) {
	found := 0
	for seed := int64(1); seed <= 40 && found < 4; seed++ {
		sc := Generate(seed)
		if sc.Service == nil {
			continue
		}
		found++
		if len(sc.Service.Tenants) < 2 {
			t.Fatalf("seed %d: service spec has %d tenants, want >= 2", seed, len(sc.Service.Tenants))
		}
		run := runService(sc, nil)
		if run.Err != "" {
			t.Fatalf("seed %d service run errored: %s", seed, run.Err)
		}
		if len(run.Violations) > 0 {
			t.Fatalf("seed %d service run violated invariants: %v", seed, run.Violations)
		}
	}
	if found == 0 {
		t.Fatal("40 seeds never generated a service scenario")
	}
}

// TestTenantAuditorDetectsQuotaBreach feeds the auditor a synthetic
// allocation stream that exceeds the cap and checks the violation is
// attributed to the tenant-quota invariant at the breaching event.
func TestTenantAuditorDetectsQuotaBreach(t *testing.T) {
	aud := NewTenantAuditor(map[string]yarn.TenantPolicy{"acme": {Weight: 1, MaxContainers: 2}})
	c := func(id int64, tenant string, am bool) *yarn.Container {
		return &yarn.Container{ID: id, NodeID: "node-01", Tenant: tenant, AM: am}
	}
	aud.OnContainerAllocated(1, c(1, "acme", false))
	aud.OnContainerAllocated(2, c(2, "acme", true)) // AM: quota-exempt
	aud.OnContainerAllocated(3, c(3, "acme", false))
	if v := aud.Violations(); len(v) != 0 {
		t.Fatalf("violations at cap: %v", v)
	}
	aud.OnContainerAllocated(4, c(4, "acme", false)) // breach
	vs := aud.Violations()
	if len(vs) != 1 || vs[0].Invariant != InvTenantQuota || vs[0].TimeSec != 4 {
		t.Fatalf("breach not reported as %s at t=4: %v", InvTenantQuota, vs)
	}
}

// TestOrderRecorderDetectsReordering checks the admission-order audit: an
// intra-tenant swap and a concurrency-cap breach must both surface.
func TestOrderRecorderDetectsReordering(t *testing.T) {
	rec := newOrderRecorder()
	rec.OnQueued(1, "acme", "acme-w000")
	rec.OnQueued(2, "acme", "acme-w001")
	rec.OnAdmitted(3, "acme", "acme-w001") // out of order
	rec.OnAdmitted(4, "acme", "acme-w000")
	vs := rec.check(5, 1)
	if len(vs) != 2 {
		t.Fatalf("want order + cap violations, got %v", vs)
	}
	for _, v := range vs {
		if v.Invariant != InvAdmitOrder {
			t.Fatalf("violation %v not attributed to %s", v, InvAdmitOrder)
		}
	}
}

// TestShrinkDropsServiceTier checks the shrinker removes the service tier
// when the failure lives in the single-workflow matrix (the release-skew
// tamper fires there too), keeping reproducers minimal.
func TestShrinkDropsServiceTier(t *testing.T) {
	opts := Options{Tamper: skewTamper, SkipResume: true, Policies: []string{"fcfs"}}
	var sc *Scenario
	for seed := int64(1); ; seed++ {
		sc = Generate(seed)
		if sc.Service == nil || sc.Iterative() {
			continue
		}
		if len(CheckScenario(sc, opts).Failures) > 0 {
			break
		}
	}
	rep := Shrink(sc, opts)
	if len(rep.Failures) == 0 {
		t.Fatalf("shrink lost the failure")
	}
	if rep.Scenario.Service != nil {
		t.Fatalf("minimized scenario kept its service tier:\n%s", rep.Scenario.Marshal())
	}
}

// TestShrinkPassingScenarioIsIdentity pins the contract that Shrink never
// mutates a healthy scenario.
func TestShrinkPassingScenarioIsIdentity(t *testing.T) {
	sc := Generate(2)
	rep := Shrink(sc, Options{Policies: []string{"fcfs"}, SkipResume: true})
	if len(rep.Failures) != 0 {
		t.Fatalf("healthy scenario reported failures: %v", rep.Failures)
	}
	if !bytes.Equal(rep.Scenario.Marshal(), sc.Marshal()) {
		t.Fatalf("shrink mutated a passing scenario")
	}
}
