package verify

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"hiway/internal/lang/cuneiform"
	"hiway/internal/lang/cwl"
	"hiway/internal/wf"
)

// The differential portability check exercises Hi-WAY's central
// architectural claim — many workflow languages, one execution model — as
// a verifiable property: a scenario's DAG is rendered as both a Cuneiform
// program and a CWL document, each rendering is parsed by its real
// frontend and executed on the scenario's substrate (same chaos plan, same
// elastic churn), and all runs must produce the same canonical outcome.
//
// Comparison is by canonical lineage, not by path: frontends synthesize
// output paths around process-local task IDs, so raw paths differ across
// renderings and across AM incarnations. Every rendered task carries its
// scenario index in the `idx` value parameter; a task's canonical label is
// "name#idx", its inputs are rewritten to «producer-label» references, and
// the multiset of (label | canonical inputs | output arity) keys — plus
// the canonicalized final outputs — must match the spec-derived expectation
// exactly, for every policy and for the kill/resume variant. This is the
// lineage-equivalence idea of cross-run provenance comparison applied as a
// CI gate.

// portable reports whether the scenario can be rendered in both languages:
// every task must produce exactly one output (the `out` parameter of the
// generated deftask/tool) and carry a signature that is a legal identifier
// in both grammars.
func portable(sc *Scenario) error {
	specs := portSpecs(sc)
	if len(specs) == 0 {
		return fmt.Errorf("no tasks to render")
	}
	for i, t := range specs {
		if len(t.Outputs) != 1 {
			return fmt.Errorf("task %d (%s) has %d outputs; renderings need exactly 1", i, t.Name, len(t.Outputs))
		}
		if !identLike(t.Name) {
			return fmt.Errorf("task %d signature %q is not an identifier", i, t.Name)
		}
	}
	return nil
}

func identLike(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// portSpecs is the full task list a rendering must express: the static
// graph plus the iteration chain. Renderings fold IterTasks in statically —
// the chain is data-dependent in the spec driver but fully known here, so
// the CWL rendering stays a static workflow (and static policies apply to
// it even when the spec scenario is "iterative").
func portSpecs(sc *Scenario) []TaskSpec {
	specs := make([]TaskSpec, 0, sc.TotalTasks())
	specs = append(specs, sc.Tasks...)
	specs = append(specs, sc.IterTasks...)
	return specs
}

// sigProfile normalizes resources per signature: Cuneiform attaches @cpu
// and @size to the deftask (one set per signature), so both renderings use
// the first occurrence's numbers for every task of that signature.
type sigProfile struct {
	name string
	cpu  float64
	size float64
}

func sigProfiles(specs []TaskSpec) []sigProfile {
	var order []sigProfile
	seen := map[string]bool{}
	for _, t := range specs {
		if seen[t.Name] {
			continue
		}
		seen[t.Name] = true
		order = append(order, sigProfile{name: t.Name, cpu: t.CPUSeconds, size: t.OutSizeMB})
	}
	return order
}

// producerIndex maps each produced output path to its task index.
func producerIndex(specs []TaskSpec) map[string]int {
	m := make(map[string]int, len(specs))
	for i, t := range specs {
		for _, p := range t.Outputs {
			m[p] = i
		}
	}
	return m
}

// sinkIndexes are the tasks whose outputs no other task consumes — the
// workflow outputs of both renderings.
func sinkIndexes(specs []TaskSpec) []int {
	consumed := map[string]bool{}
	for _, t := range specs {
		for _, p := range t.Inputs {
			consumed[p] = true
		}
	}
	var sinks []int
	for i, t := range specs {
		if !consumed[t.Outputs[0]] {
			sinks = append(sinks, i)
		}
	}
	return sinks
}

// RenderCuneiform renders the scenario's DAG as a Cuneiform program: one
// deftask per signature (aggregate input list `<x>`, value parameter
// `~idx` carrying the scenario task index, so memoization never collapses
// two tasks), one let binding per task in spec order, and one target per
// sink.
func RenderCuneiform(sc *Scenario) (string, error) {
	if err := portable(sc); err != nil {
		return "", fmt.Errorf("verify: cuneiform rendering: %v", err)
	}
	specs := portSpecs(sc)
	producer := producerIndex(specs)
	var b strings.Builder
	for _, p := range sigProfiles(specs) {
		fmt.Fprintf(&b, "deftask %s( out : <x> ~idx ) @cpu %g @size out %g in bash *{run %s}*\n",
			p.name, p.cpu, p.size, p.name)
	}
	b.WriteString("\n")
	for i, t := range specs {
		var vals []string
		for _, in := range t.Inputs {
			if j, ok := producer[in]; ok {
				vals = append(vals, fmt.Sprintf("t%d", j))
			} else {
				vals = append(vals, fmt.Sprintf("%q", in))
			}
		}
		arg := "nil"
		if len(vals) > 0 {
			arg = strings.Join(vals, " ")
		}
		fmt.Fprintf(&b, "let t%d = %s( x: %s idx: \"%d\" );\n", i, t.Name, arg, i)
	}
	for _, i := range sinkIndexes(specs) {
		fmt.Fprintf(&b, "t%d;\n", i)
	}
	return b.String(), nil
}

// RenderCWL renders the scenario's DAG as a CWL v1.2 $graph document: one
// CommandLineTool per signature (File[] input `x`, string input `idx`,
// hiway:Profile hint carrying the normalized resources), one step per task
// in spec order, workflow inputs for the staged paths, and workflow
// outputs for the sinks. The JSON is deterministic (arrays in spec order,
// object keys sorted by the marshaller).
func RenderCWL(sc *Scenario) (string, error) {
	if err := portable(sc); err != nil {
		return "", fmt.Errorf("verify: cwl rendering: %v", err)
	}
	specs := portSpecs(sc)
	producer := producerIndex(specs)

	// Workflow inputs: every consumed path no task produces, in first-use
	// order, named f0, f1, … .
	inputID := map[string]string{}
	var wfInputs []any
	for _, t := range specs {
		for _, p := range t.Inputs {
			if _, produced := producer[p]; produced {
				continue
			}
			if _, ok := inputID[p]; ok {
				continue
			}
			id := fmt.Sprintf("f%d", len(inputID))
			inputID[p] = id
			wfInputs = append(wfInputs, map[string]any{
				"id": id, "type": "File",
				"default": map[string]any{"class": "File", "location": p},
			})
		}
	}

	var steps []any
	for i, t := range specs {
		var sources []string
		for _, in := range t.Inputs {
			if j, ok := producer[in]; ok {
				sources = append(sources, fmt.Sprintf("t%d/out", j))
			} else {
				sources = append(sources, inputID[in])
			}
		}
		if sources == nil {
			sources = []string{}
		}
		steps = append(steps, map[string]any{
			"id":  fmt.Sprintf("t%d", i),
			"run": "#" + t.Name,
			"in": []any{
				map[string]any{"id": "x", "source": sources},
				map[string]any{"id": "idx", "default": fmt.Sprintf("%d", i)},
			},
			"out": []any{"out"},
		})
	}

	var wfOutputs []any
	for _, i := range sinkIndexes(specs) {
		wfOutputs = append(wfOutputs, map[string]any{
			"id":           fmt.Sprintf("o%d", i),
			"type":         "File",
			"outputSource": fmt.Sprintf("t%d/out", i),
		})
	}

	graph := []any{map[string]any{
		"class":   "Workflow",
		"id":      "main",
		"inputs":  wfInputs,
		"outputs": wfOutputs,
		"steps":   steps,
	}}
	for _, p := range sigProfiles(specs) {
		graph = append(graph, map[string]any{
			"class":       "CommandLineTool",
			"id":          p.name,
			"baseCommand": []any{"run", p.name},
			"hints": []any{map[string]any{
				"class":      "hiway:Profile",
				"cpuSeconds": p.cpu,
				"outSizeMB":  map[string]any{"out": p.size},
			}},
			"inputs": []any{
				map[string]any{"id": "x", "type": "File[]"},
				map[string]any{"id": "idx", "type": "string"},
			},
			"outputs": []any{map[string]any{"id": "out", "type": "File"}},
		})
	}
	b, err := json.MarshalIndent(map[string]any{"cwlVersion": "v1.2", "$graph": graph}, "", "  ")
	if err != nil { // impossible: the document is plain data
		return "", err
	}
	return string(b) + "\n", nil
}

// specCanonical is the canonical outcome a correct run of any rendering
// must produce, computed straight from the specs: the multiset of
// (label | canonical inputs | output arity) keys plus the canonicalized
// final outputs.
func (s *Scenario) specCanonical() (map[string]int, []string) {
	specs := portSpecs(s)
	producer := producerIndex(specs)
	label := func(i int) string { return specs[i].Name + "#" + fmt.Sprint(i) }
	expected := make(map[string]int, len(specs))
	for i, t := range specs {
		var ins []string
		for _, p := range t.Inputs {
			if j, ok := producer[p]; ok {
				ins = append(ins, "«"+label(j)+"»")
			} else {
				ins = append(ins, p)
			}
		}
		sort.Strings(ins)
		expected[label(i)+"|"+strings.Join(ins, ",")+"|out:1"]++
	}
	var outs []string
	for _, i := range sinkIndexes(specs) {
		outs = append(outs, "«"+label(i)+"»")
	}
	sort.Strings(outs)
	return expected, outs
}

// resultPaths are the output paths one completed task actually produced:
// the provenance record (res.Outputs) when present — required for dynamic
// aggregate outputs whose cardinality only materializes at run time — with
// the statically declared paths as fallback for results that carry no
// outcome (e.g. recovered entries).
func resultPaths(res *wf.TaskResult) []string {
	if len(res.Outputs) > 0 {
		var ps []string
		for _, fis := range res.Outputs {
			for _, fi := range fis {
				ps = append(ps, fi.Path)
			}
		}
		sort.Strings(ps)
		return ps
	}
	return res.Task.DeclaredPaths()
}

// CanonicalOutcome rewrites one run's results into the path-independent
// form specCanonical expects: labels as name#idx (from the `idx` value
// parameter every rendered task carries; tasks without one compare by
// signature alone), inputs as «producer-label» references (paths no
// completed task produced stay literal), outputs likewise. Exported so
// cross-language workload ports — e.g. the CWL rendering of the SNV
// reference pipeline — can assert outcome equivalence the same way the
// portability verifier does.
func CanonicalOutcome(results []*wf.TaskResult, outputs []string) (map[string]int, []string) {
	label := func(t *wf.Task) string { return t.Name + "#" + t.Env["idx"] }
	producedBy := map[string]string{}
	for _, res := range results {
		if !res.Succeeded() {
			continue
		}
		for _, p := range resultPaths(res) {
			producedBy[p] = label(res.Task)
		}
	}
	canonPath := func(p string) string {
		if l, ok := producedBy[p]; ok {
			return "«" + l + "»"
		}
		return p
	}
	multiset := map[string]int{}
	for _, res := range results {
		if !res.Succeeded() {
			continue
		}
		var ins []string
		for _, p := range res.Task.Inputs {
			ins = append(ins, canonPath(p))
		}
		sort.Strings(ins)
		key := fmt.Sprintf("%s|%s|out:%d", label(res.Task), strings.Join(ins, ","), len(resultPaths(res)))
		multiset[key]++
	}
	var outs []string
	for _, p := range outputs {
		outs = append(outs, canonPath(p))
	}
	sort.Strings(outs)
	return multiset, outs
}

// portDrivers returns the per-language driver factories for the scenario's
// renderings. Each call to a factory re-parses the source — exactly what a
// fresh AM incarnation does — so task IDs and synthesized paths differ
// between incarnations and only the canonical outcome is comparable.
func portDrivers(sc *Scenario) (cf, cwlF func() wf.Driver, err error) {
	cfSrc, err := RenderCuneiform(sc)
	if err != nil {
		return nil, nil, err
	}
	cwlSrc, err := RenderCWL(sc)
	if err != nil {
		return nil, nil, err
	}
	name := fmt.Sprintf("port-%d", sc.Seed)
	cf = func() wf.Driver { return cuneiform.NewDriver(name, cfSrc) }
	cwlF = func() wf.Driver { return cwl.NewDriver(name, cwlSrc, cwl.Options{}) }
	return cf, cwlF, nil
}

// runPortability executes the differential portability matrix: the
// Cuneiform rendering under every dynamic policy, the CWL rendering under
// every applicable policy (it is a static workflow even for iterative
// scenarios, since the iteration chain is folded in), plus a kill/resume
// variant per language. Every successful run's canonical outcome must
// equal the spec-derived expectation — which transitively proves the two
// language renderings equivalent under every policy.
func runPortability(sc *Scenario, opts Options) ([]PolicyRun, []string) {
	if err := portable(sc); err != nil {
		return nil, []string{fmt.Sprintf("portability: %v", err)}
	}
	cfFactory, cwlFactory, err := portDrivers(sc)
	if err != nil {
		return nil, []string{fmt.Sprintf("portability: %v", err)}
	}
	expected, expOuts := sc.specCanonical()

	var runs []PolicyRun
	var fails []string
	check := func(run PolicyRun) *PolicyRun {
		runs = append(runs, run)
		r := &runs[len(runs)-1]
		tag := fmt.Sprintf("portability %s/%s", r.Lang, r.Policy)
		for _, v := range r.Violations {
			fails = append(fails, fmt.Sprintf("%s: %s", tag, v))
		}
		if !r.Succeeded {
			fails = append(fails, fmt.Sprintf("%s: workflow failed: %s", tag, r.Err))
			return r
		}
		if d := diffCompleted(expected, r.Canonical); d != "" {
			fails = append(fails, fmt.Sprintf("%s: canonical completions diverge from spec: %s", tag, d))
		}
		if strings.Join(r.CanonOutputs, "\n") != strings.Join(expOuts, "\n") {
			fails = append(fails, fmt.Sprintf("%s: canonical outputs %v, want %v", tag, r.CanonOutputs, expOuts))
		}
		return r
	}

	type rendering struct {
		lang    string
		factory func() wf.Driver
		// static reports whether the rendering parses into a static DAG:
		// the CWL document does; the Cuneiform program evaluates
		// dynamically, so static planners cannot drive it.
		static bool
	}
	renderings := []rendering{
		{lang: "cuneiform", factory: cfFactory, static: false},
		{lang: "cwl", factory: cwlFactory, static: true},
	}
	for _, rd := range renderings {
		var baseline *PolicyRun
		for _, policy := range opts.policies() {
			if staticPolicies[policy] {
				if !rd.static {
					continue
				}
				if sc.KillsNode() || sc.Elastic.Disruptive() {
					// A static plan cannot reroute around a dying or
					// draining node, rendering or not.
					continue
				}
			}
			r := check(runPolicyDriver(sc, policy, opts.Tamper, rd.factory, rd.lang))
			if baseline == nil && r.Succeeded {
				baseline = r
			}
		}
		if !opts.SkipResume && baseline != nil {
			frac := opts.ResumeFraction
			if frac <= 0 || frac >= 1 {
				frac = 0.5
			}
			check(runResumeDriver(sc, baseline.MakespanSec, frac, opts.Tamper, rd.factory, rd.lang))
		}
	}
	return runs, fails
}
