// Package verify is the property-based scenario verifier: it generates
// random-but-reproducible workflow scenarios (DAG shape, cluster size, chaos
// schedule), executes each one under every scheduler policy with a runtime
// invariant auditor attached to the YARN RM and the AM, and differentially
// compares the runs — all policies must satisfy the shared invariants and
// complete the same task set, and a kill/resume variant must re-execute zero
// completed tasks. A failing seed is minimized by shrinking the task list
// and the chaos schedule before it is reported (see Shrink).
//
// Everything is keyed by a single int64 seed: Generate(seed) is a pure
// function, and the chaos plan inside a scenario uses only bounded,
// targeted directives (never rate-based faults), so a scenario that passes
// once passes forever — which is what lets CI run a seed batch as a gate.
package verify

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"

	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/recipes"
	"hiway/internal/sim"
	"hiway/internal/wf"
	"hiway/internal/workloads"
	"hiway/internal/yarn"
)

// TaskSpec declares one task of a generated scenario. Specs are serializable
// (unlike wf.Task, whose IDs are process-local), so a scenario JSON is a
// complete reproducer.
type TaskSpec struct {
	Name       string   `json:"name"`    // signature; shared across tasks of the same kind
	Inputs     []string `json:"inputs"`  // paths; produced by earlier tasks or staged inputs
	Outputs    []string `json:"outputs"` // paths; unique per task
	OutSizeMB  float64  `json:"outSizeMB"`
	CPUSeconds float64  `json:"cpuSeconds"`
}

// InputSpec declares one staged initial file.
type InputSpec struct {
	Path   string  `json:"path"`
	SizeMB float64 `json:"sizeMB"`
}

// Scenario is one generated verification case. Tasks are in topological
// order with every producer preceding its consumers, so any prefix of Tasks
// is a dependency-closed workflow — the property the shrinker relies on.
type Scenario struct {
	Seed  int64  `json:"seed"`
	Shape string `json:"shape"`
	Nodes int    `json:"nodes"`

	Inputs []InputSpec `json:"inputs"`
	Tasks  []TaskSpec  `json:"tasks"`
	// IterTasks is a chain of tasks revealed one at a time by an iterative
	// driver (never part of the static graph); non-empty IterTasks make the
	// scenario incompatible with static policies, exactly like Cuneiform.
	IterTasks []TaskSpec `json:"iterTasks,omitempty"`

	// Chaos is a bounded fault plan in the chaos.Parse DSL (targeted
	// crash/hang rules and node events only — no rates), with ChaosSeed
	// making any residual draws deterministic.
	Chaos     string `json:"chaos,omitempty"`
	ChaosSeed int64  `json:"chaosSeed,omitempty"`

	// TimeoutFloorSec is non-zero whenever the chaos plan can hang an
	// attempt, so the fault-tolerance layer can always recover.
	TimeoutFloorSec float64 `json:"timeoutFloorSec,omitempty"`
	Speculate       bool    `json:"speculate,omitempty"`

	// Service, when present, additionally runs an open-loop multi-tenant
	// service load on the scenario's cluster (under the scenario's chaos
	// plan) and audits the tenant-quota and admission-order invariants.
	Service *ServiceSpec `json:"service,omitempty"`

	// Elastic, when present, applies a seeded membership plan (joins,
	// graceful drains, two-phase spot reclaims) to every policy run and the
	// resume variant, auditing the membership-safety and cost-conservation
	// invariants through the churn.
	Elastic *ElasticSpec `json:"elastic,omitempty"`

	// Portability, when set, additionally renders the scenario's DAG as
	// both a Cuneiform program and a CWL document, executes each rendering
	// through its real frontend under the applicable policies plus
	// kill/resume, and requires every run's canonical lineage outcome to
	// equal the spec-derived expectation (see portability.go).
	Portability bool `json:"portability,omitempty"`

	// Memo, when set, additionally runs the memoization family (memo.go): a
	// cold-table run that must equal the memo-off baseline with zero hits, a
	// warm-table run on a fresh substrate that must splice every task
	// without allocating a single worker container, and a kill/resume run
	// with memoization on — all required to reproduce the baseline's
	// completed multiset and outputs.
	Memo bool `json:"memo,omitempty"`
}

// Iterative reports whether the scenario unfolds at run time, which static
// planners cannot schedule.
func (s *Scenario) Iterative() bool { return len(s.IterTasks) > 0 }

// KillsNode reports whether the chaos plan destroys a cluster node. A static
// plan pins tasks to nodes up front and cannot reroute around a node that
// dies mid-run, so such scenarios — like iterative ones — are checked under
// dynamic policies only.
func (s *Scenario) KillsNode() bool { return strings.Contains(s.Chaos, "kill=") }

// TotalTasks is the number of tasks a successful run must complete.
func (s *Scenario) TotalTasks() int { return len(s.Tasks) + len(s.IterTasks) }

// Marshal renders the scenario as indented JSON — the reproducer format
// printed for failing seeds.
func (s *Scenario) Marshal() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil { // impossible: the type is plain data
		panic(err)
	}
	return b
}

// ParseScenario decodes a scenario reproducer.
func ParseScenario(data []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("verify: parsing scenario: %w", err)
	}
	return &s, nil
}

// Clone returns a deep copy (the shrinker mutates candidates freely).
func (s *Scenario) Clone() *Scenario {
	c := *s
	c.Inputs = append([]InputSpec(nil), s.Inputs...)
	c.Tasks = cloneSpecs(s.Tasks)
	c.IterTasks = cloneSpecs(s.IterTasks)
	if s.Service != nil {
		sv := *s.Service
		sv.Tenants = append([]ServiceTenantSpec(nil), s.Service.Tenants...)
		c.Service = &sv
	}
	if s.Elastic != nil {
		es := *s.Elastic
		es.Events = append([]ElasticEvent(nil), s.Elastic.Events...)
		c.Elastic = &es
	}
	return &c
}

func cloneSpecs(in []TaskSpec) []TaskSpec {
	if in == nil {
		return nil
	}
	out := make([]TaskSpec, len(in))
	for i, t := range in {
		out[i] = t
		out[i].Inputs = append([]string(nil), t.Inputs...)
		out[i].Outputs = append([]string(nil), t.Outputs...)
	}
	return out
}

// signature pool: shared names give the estimator-driven policies (HEFT,
// adaptive-greedy) runtime history to work with and give chaos rules
// something to target.
var sigPool = []string{"alpha", "beta", "gamma", "delta"}

// shapes a generated workflow can take.
var shapes = []string{"chain", "fanout", "fanin", "diamond", "layered", "iterative"}

// Generate derives a scenario from the seed. It is a pure function: the
// same seed always yields the same scenario on every platform (math/rand's
// seeded sequence is stable by compatibility promise).
func Generate(seed int64) *Scenario {
	r := rand.New(rand.NewSource(seed))
	sc := &Scenario{
		Seed:  seed,
		Shape: shapes[r.Intn(len(shapes))],
		Nodes: 3 + r.Intn(6), // 3..8
	}

	// Staged inputs.
	nin := 1 + r.Intn(3)
	for i := 0; i < nin; i++ {
		sc.Inputs = append(sc.Inputs, InputSpec{
			Path:   fmt.Sprintf("/data/in-%d.dat", i),
			SizeMB: float64(16 + r.Intn(241)),
		})
	}
	input := func(i int) string { return sc.Inputs[i%len(sc.Inputs)].Path }

	// Task construction. Every task writes exactly one output named by its
	// index, so output paths are unique and prefixes stay dependency-closed.
	out := func(i int) string { return fmt.Sprintf("/wf/t%03d.dat", i) }
	add := func(inputs ...string) int {
		i := len(sc.Tasks)
		sc.Tasks = append(sc.Tasks, TaskSpec{
			Name:       sigPool[r.Intn(len(sigPool))],
			Inputs:     inputs,
			Outputs:    []string{out(i)},
			OutSizeMB:  float64(8 + r.Intn(121)),
			CPUSeconds: float64(5 + r.Intn(116)),
		})
		return i
	}

	switch sc.Shape {
	case "chain":
		n := 3 + r.Intn(6)
		prev := add(input(0))
		for i := 1; i < n; i++ {
			prev = add(out(prev))
		}
	case "fanout":
		width := 3 + r.Intn(6)
		src := add(input(0))
		var mids []string
		for i := 0; i < width; i++ {
			mids = append(mids, out(add(out(src))))
		}
		add(mids...)
	case "fanin":
		width := 3 + r.Intn(6)
		var mids []string
		for i := 0; i < width; i++ {
			mids = append(mids, out(add(input(i))))
		}
		add(mids...)
	case "diamond":
		src := add(input(0))
		left := add(out(src))
		right := add(out(src))
		add(out(left), out(right))
	case "layered":
		layers := 2 + r.Intn(3)
		width := 2 + r.Intn(3)
		prev := []string{}
		for i := range sc.Inputs {
			prev = append(prev, input(i))
		}
		for l := 0; l < layers; l++ {
			var next []string
			for w := 0; w < width; w++ {
				// Consume 1–2 distinct artifacts of the previous layer.
				a := prev[r.Intn(len(prev))]
				ins := []string{a}
				if len(prev) > 1 && r.Intn(2) == 0 {
					b := prev[r.Intn(len(prev))]
					if b != a {
						ins = append(ins, b)
					}
				}
				next = append(next, out(add(ins...)))
			}
			prev = next
		}
	case "iterative":
		base := 2 + r.Intn(2)
		prev := add(input(0))
		for i := 1; i < base; i++ {
			prev = add(out(prev))
		}
		iters := 1 + r.Intn(4)
		last := out(prev)
		for i := 0; i < iters; i++ {
			iout := fmt.Sprintf("/wf/iter-%02d.dat", i)
			sc.IterTasks = append(sc.IterTasks, TaskSpec{
				Name:       "iterate",
				Inputs:     []string{last},
				Outputs:    []string{iout},
				OutSizeMB:  float64(8 + r.Intn(57)),
				CPUSeconds: float64(5 + r.Intn(56)),
			})
			last = iout
		}
	}

	sc.genChaos(r)
	sc.genService(r)
	sc.genElastic(r)
	sc.genPortability(r)
	sc.genMemo(r)
	return sc
}

// genMemo opts about a quarter of all scenarios into the memoization
// family. It draws after every other family so adding it did not perturb
// existing seeds.
func (s *Scenario) genMemo(r *rand.Rand) {
	s.Memo = r.Intn(4) == 0
}

// genPortability opts about a quarter of all scenarios into the
// differential cross-language family. It draws after every other family so
// adding it did not perturb existing seeds. Every generated scenario is
// renderable (one output per task, pooled identifier signatures), so no
// shape gating is needed.
func (s *Scenario) genPortability(r *rand.Rand) {
	s.Portability = r.Intn(4) == 0
}

// genChaos composes a bounded fault plan. Only targeted rules with counts
// and single node events are generated — never rate-based faults — so every
// generated scenario is recoverable by construction: crashes are capped
// below MaxRetries, hangs always come with an attempt timeout, and at most
// one non-AM node dies while HDFS keeps two replicas of every block.
func (s *Scenario) genChaos(r *rand.Rand) {
	s.ChaosSeed = r.Int63n(1 << 30)
	if r.Intn(2) == 0 { // half of all scenarios run fault-free
		return
	}
	sig := func() string {
		// Prefer a signature the scenario actually uses.
		t := s.Tasks[r.Intn(len(s.Tasks))]
		return t.Name
	}
	var dirs []string
	for i, n := 0, r.Intn(3); i < n; i++ { // 0..2 bounded crash rules
		dirs = append(dirs, fmt.Sprintf("crash=%s@0:%d", sig(), 1+r.Intn(2)))
	}
	if r.Intn(3) == 0 { // hang exactly one first attempt; timeouts recover it
		dirs = append(dirs, fmt.Sprintf("hang=%s@0:1", sig()))
		s.TimeoutFloorSec = 600
	}
	if s.Nodes >= 4 && r.Intn(3) == 0 {
		// Kill one non-AM node (node-00 hosts the AM). Replication 2 keeps
		// every block readable after a single node loss.
		victim := 1 + r.Intn(s.Nodes-1)
		dirs = append(dirs, fmt.Sprintf("kill=node-%02d@%d", victim, 30+r.Intn(211)))
	}
	if r.Intn(3) == 0 {
		slow := r.Intn(s.Nodes)
		dirs = append(dirs, fmt.Sprintf("slow=node-%02d@%d:%d", slow, 20+r.Intn(181), 1+r.Intn(2)))
	}
	if len(dirs) == 0 {
		return
	}
	if s.TimeoutFloorSec == 0 && r.Intn(2) == 0 {
		s.TimeoutFloorSec = 600
	}
	if s.TimeoutFloorSec > 0 {
		s.Speculate = r.Intn(2) == 0
	}
	s.Chaos = strings.Join(dirs, ";")
}

// Materialize builds the simulated substrate for one run of the scenario:
// a homogeneous cluster with a zero-vcore AM container (so worker capacity
// is uniform across nodes), replication-2 HDFS, and the staged inputs.
func (s *Scenario) Materialize() (*sim.Engine, core.Env, error) {
	var inputs []workloads.Input
	for _, in := range s.Inputs {
		inputs = append(inputs, workloads.Input{Path: in.Path, SizeMB: in.SizeMB})
	}
	r := &recipes.Recipe{
		Name:       fmt.Sprintf("verify-%d", s.Seed),
		Groups:     []recipes.NodeGroup{{Count: s.Nodes, Spec: cluster.M3Large()}},
		SwitchMBps: 2000,
		HDFS:       hdfs.Config{BlockSizeMB: 256, Replication: 2},
		YARN:       yarn.Config{AMResource: yarn.Resource{VCores: 0, MemMB: 512}},
		Seed:       s.Seed,
		Inputs:     inputs,
	}
	return r.Materialize()
}

// task materializes the spec as a fresh wf.Task (IDs are process-local, so
// every run builds its own tasks).
func (t TaskSpec) task() *wf.Task {
	outs := make([]wf.FileInfo, len(t.Outputs))
	for i, p := range t.Outputs {
		outs[i] = wf.FileInfo{Path: p, SizeMB: t.OutSizeMB}
	}
	task := wf.NewTask(t.Name, append([]string(nil), t.Inputs...), outs)
	task.CPUSeconds = t.CPUSeconds
	task.Threads = 1
	return task
}

// Driver builds a fresh workflow driver for the scenario. Non-iterative
// scenarios return a static driver (so static planners can run them);
// iterative ones return a dynamic driver that reveals the iteration chain
// one task at a time.
func (s *Scenario) Driver() wf.Driver {
	base := &wf.StaticBase{
		WFName: fmt.Sprintf("verify-%d-%s", s.Seed, s.Shape),
		Build: func() ([]*wf.Task, []string, []wf.Edge, error) {
			tasks := make([]*wf.Task, len(s.Tasks))
			for i, spec := range s.Tasks {
				tasks[i] = spec.task()
			}
			var inputs []string
			for _, in := range s.Inputs {
				inputs = append(inputs, in.Path)
			}
			return tasks, inputs, nil, nil
		},
	}
	if !s.Iterative() {
		return base
	}
	return &dynamicDriver{base: base, iters: s.IterTasks}
}

// dynamicDriver runs the static base graph and then unfolds the iteration
// chain one task at a time, each discovered only when its predecessor
// completes — the workflow class static policies cannot schedule (§3.4).
// It deliberately does not implement wf.StaticDriver.
type dynamicDriver struct {
	base  *wf.StaticBase
	iters []TaskSpec
	next  int  // index of the next iteration task to emit
	live  bool // an iteration task is in flight
	done  bool
	outs  []string
}

// Name implements wf.Driver.
func (d *dynamicDriver) Name() string { return d.base.WFName + "-dyn" }

// Parse implements wf.Driver.
func (d *dynamicDriver) Parse() ([]*wf.Task, error) { return d.base.Parse() }

func (d *dynamicDriver) emit() *wf.Task {
	spec := d.iters[d.next]
	d.next++
	d.live = true
	t := spec.task()
	t.Meta = map[string]string{"verify-iter": fmt.Sprint(d.next)}
	return t
}

// OnTaskComplete implements wf.Driver: base results feed the static DAG;
// once the base graph drains, the iteration chain unfolds.
func (d *dynamicDriver) OnTaskComplete(res *wf.TaskResult) ([]*wf.Task, error) {
	if res.Task.Meta["verify-iter"] != "" {
		if !res.Succeeded() {
			return nil, fmt.Errorf("verify: iteration task failed (exit %d): %s", res.ExitCode, res.Error)
		}
		d.live = false
		for _, fi := range res.OutputFiles() {
			d.outs = append(d.outs, fi.Path)
		}
		if d.next < len(d.iters) {
			return []*wf.Task{d.emit()}, nil
		}
		d.done = true
		return nil, nil
	}
	nts, err := d.base.OnTaskComplete(res)
	if err != nil {
		return nil, err
	}
	if d.base.Done() && d.next == 0 && !d.live {
		nts = append(nts, d.emit())
	}
	return nts, nil
}

// Done implements wf.Driver.
func (d *dynamicDriver) Done() bool { return d.done }

// Outputs implements wf.Driver: the base sinks plus the iteration outputs.
func (d *dynamicDriver) Outputs() []string {
	return append(append([]string(nil), d.base.Outputs()...), d.outs...)
}
