package verify

import (
	"strings"
	"testing"

	"hiway/internal/scheduler"
)

// TestMemoSeedBatch is the memo-correctness differential property: for a
// batch of generated scenarios forced into the memoization family, the
// cold run must match the memo-off baseline exactly, the warm run must
// splice every task without allocating a worker container, and the
// kill/resume run must compose recovery with splicing — all under the full
// invariant auditor.
func TestMemoSeedBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("memo batch triples the execution count per seed")
	}
	for seed := int64(1); seed <= 12; seed++ {
		sc := Generate(seed)
		sc.Memo = true
		res := CheckScenario(sc, Options{})
		if !res.OK() {
			t.Fatalf("seed %d (%s): %s\n%s", seed, sc.Shape, strings.Join(res.Failures, "\n"), sc.Marshal())
		}
		var cold, warm, resume *PolicyRun
		for i := range res.Runs {
			switch res.Runs[i].Policy {
			case "memo-cold":
				cold = &res.Runs[i]
			case "memo-warm":
				warm = &res.Runs[i]
			case "memo-resume":
				resume = &res.Runs[i]
			}
		}
		if cold == nil || warm == nil || resume == nil {
			t.Fatalf("seed %d: memo family incomplete (cold=%v warm=%v resume=%v)",
				seed, cold != nil, warm != nil, resume != nil)
		}
		if cold.Memoized != 0 {
			t.Fatalf("seed %d: cold run spliced %d tasks", seed, cold.Memoized)
		}
		if warm.Memoized != sc.TotalTasks() {
			t.Fatalf("seed %d: warm run spliced %d of %d tasks", seed, warm.Memoized, sc.TotalTasks())
		}
		if warm.Containers != 0 {
			t.Fatalf("seed %d: warm run allocated %d containers", seed, warm.Containers)
		}
	}
}

// TestGenMemoFrequency pins the family's share of generated seeds near the
// intended quarter.
func TestGenMemoFrequency(t *testing.T) {
	n := 0
	for seed := int64(1); seed <= 200; seed++ {
		if Generate(seed).Memo {
			n++
		}
	}
	if n < 30 || n > 70 {
		t.Fatalf("memo family hit %d/200 seeds; want roughly a quarter", n)
	}
}

// TestMemoFamilyDetectsBaselineDivergence feeds runMemoFamily a doctored
// baseline — an output the memoized runs cannot reproduce — and requires
// the comparator to flag every family member, so the equality checks
// cannot silently pass.
func TestMemoFamilyDetectsBaselineDivergence(t *testing.T) {
	sc := Generate(2)
	base := runPolicy(sc, scheduler.PolicyFCFS, nil)
	if !base.Succeeded {
		t.Fatalf("baseline failed: %s", base.Err)
	}
	doctored := base
	doctored.Outputs = append([]string{"/wf/never-produced.dat"}, base.Outputs...)
	_, fails := runMemoFamily(sc, &doctored, Options{})
	if len(fails) < 3 {
		t.Fatalf("divergent baseline surfaced %d failures, want one per family run: %v", len(fails), fails)
	}
	for _, f := range fails {
		if !strings.Contains(f, "outputs") {
			t.Fatalf("unexpected failure kind: %s", f)
		}
	}
}

// TestMemoFamilySurfacesTamperedRuns routes the release-skew tamper through
// the family: every memo run carries the full auditor, so an accounting bug
// inside a memoized execution must surface as family failures, not just in
// the policy matrix.
func TestMemoFamilySurfacesTamperedRuns(t *testing.T) {
	sc := Generate(2)
	base := runPolicy(sc, scheduler.PolicyFCFS, nil)
	if !base.Succeeded {
		t.Fatalf("baseline failed: %s", base.Err)
	}
	_, fails := runMemoFamily(sc, &base, Options{Tamper: skewTamper})
	if len(fails) == 0 {
		t.Fatal("tampered memo runs produced no failures")
	}
}

// TestShrinkDropsMemo: when the failure lives in the spec-driver matrix,
// the shrunk reproducer sheds the memoization family first.
func TestShrinkDropsMemo(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking runs many full checks")
	}
	var sc *Scenario
	for seed := int64(1); seed <= 80; seed++ {
		c := Generate(seed)
		if c.Memo && c.Service == nil && c.Elastic == nil && !c.Portability {
			sc = c
			break
		}
	}
	if sc == nil {
		t.Fatal("no plain memo seed in range")
	}
	opts := Options{Policies: []string{scheduler.PolicyFCFS}, Tamper: skewTamper}
	rep := Shrink(sc, opts)
	if len(rep.Failures) == 0 {
		t.Fatal("tampered scenario did not fail")
	}
	if rep.Scenario.Memo {
		t.Fatal("shrink kept the memo family for a spec-side failure")
	}
}
