package verify

import (
	"fmt"
	"math/rand"
	"reflect"

	"hiway/internal/chaos"
	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/recipes"
	"hiway/internal/scheduler"
	"hiway/internal/service"
	"hiway/internal/sim"
	"hiway/internal/yarn"
)

// Service-tier invariants, audited when a scenario carries a ServiceSpec.
const (
	// InvTenantQuota: a tenant's live worker-container count never exceeds
	// its MaxContainers cap at any instant.
	InvTenantQuota = "tenant-quota"
	// InvAdmitOrder: within one tenant, workflows are admitted in exactly
	// the order they entered the submission queue, and the global
	// concurrent-AM cap is never exceeded.
	InvAdmitOrder = "admission-order"
)

// ServiceTenantSpec declares one tenant of a generated service scenario.
type ServiceTenantSpec struct {
	Name          string  `json:"name"`
	Weight        int     `json:"weight"`
	MaxContainers int     `json:"maxContainers"`
	RatePerSec    float64 `json:"ratePerSec"`
	Burst         int     `json:"burst,omitempty"`
}

// ServiceSpec makes a scenario multi-tenant: alongside the single-workflow
// policy matrix, the verifier runs an open-loop multi-workflow service load
// with these tenants and audits the service-tier invariants.
type ServiceSpec struct {
	Tenants       []ServiceTenantSpec `json:"tenants"`
	DurationSec   float64             `json:"durationSec"`
	MaxConcurrent int                 `json:"maxConcurrent"`
	MaxQueue      int                 `json:"maxQueue"`
}

// genService attaches a service tier to roughly a third of all scenarios.
// It draws from the rng strictly after genChaos, so seeds generated before
// the service tier existed keep their exact task list and chaos plan.
func (s *Scenario) genService(r *rand.Rand) {
	if r.Intn(3) != 0 {
		return
	}
	spec := &ServiceSpec{
		DurationSec:   200 + float64(r.Intn(201)), // 200..400s arrival window
		MaxConcurrent: 2 + r.Intn(3),
		MaxQueue:      4 + r.Intn(9),
	}
	n := 2 + r.Intn(2) // 2..3 tenants
	for i := 0; i < n; i++ {
		spec.Tenants = append(spec.Tenants, ServiceTenantSpec{
			Name:          fmt.Sprintf("tenant-%d", i),
			Weight:        r.Intn(3), // 0 = background tenant
			MaxContainers: 2 + r.Intn(6),
			RatePerSec:    0.01 + float64(r.Intn(4))*0.005,
			Burst:         1 + r.Intn(2),
		})
	}
	s.Service = spec
}

// profiles materializes the spec as service tenant profiles. Workflows are
// kept tiny: a service scenario runs many instances, and the invariants
// under test live in admission and quota accounting, not task runtimes.
func (s *ServiceSpec) profiles() []service.TenantProfile {
	out := make([]service.TenantProfile, len(s.Tenants))
	for i, t := range s.Tenants {
		out[i] = service.TenantProfile{
			Name: t.Name, Weight: t.Weight, MaxContainers: t.MaxContainers,
			RatePerSec: t.RatePerSec, Burst: t.Burst,
			Workload: service.WorkloadSpec{FileSizeMB: 32, CPUSeconds: 20},
		}
	}
	return out
}

// TenantAuditor checks the tenant-quota invariant at the RM's container
// lifecycle hooks: worker containers are counted per tenant the instant they
// are allocated, so a cap breach is caught at the exact event that caused
// it, not at end-of-run. AM containers are quota-exempt by design (§3.1:
// one lightweight AM per workflow) and are ignored.
type TenantAuditor struct {
	caps       map[string]int
	use        map[string]int
	violations []Violation
	dropped    int
}

var _ yarn.AuditHook = (*TenantAuditor)(nil)

// NewTenantAuditor builds an auditor over the tenant policies the RM was
// configured with.
func NewTenantAuditor(policies map[string]yarn.TenantPolicy) *TenantAuditor {
	caps := make(map[string]int, len(policies))
	for name, p := range policies {
		caps[name] = p.MaxContainers
	}
	return &TenantAuditor{caps: caps, use: make(map[string]int)}
}

func (a *TenantAuditor) report(now float64, invariant, format string, args ...any) {
	if len(a.violations) >= maxViolations {
		a.dropped++
		return
	}
	a.violations = append(a.violations, Violation{TimeSec: now, Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// OnContainerAllocated implements yarn.AuditHook.
func (a *TenantAuditor) OnContainerAllocated(now float64, c *yarn.Container) {
	if c.AM || c.Tenant == "" {
		return
	}
	a.use[c.Tenant]++
	if cap, ok := a.caps[c.Tenant]; ok && cap > 0 && a.use[c.Tenant] > cap {
		a.report(now, InvTenantQuota, "tenant %s holds %d worker containers, cap is %d",
			c.Tenant, a.use[c.Tenant], cap)
	}
}

// OnContainerReleased implements yarn.AuditHook.
func (a *TenantAuditor) OnContainerReleased(now float64, c *yarn.Container, double bool) {
	if double || c.AM || c.Tenant == "" {
		return
	}
	a.use[c.Tenant]--
	if a.use[c.Tenant] < 0 {
		a.report(now, InvTenantQuota, "tenant %s container count went negative", c.Tenant)
	}
}

// OnContainerLost implements yarn.AuditHook: a node death frees the tenant's
// quota slot exactly like a release.
func (a *TenantAuditor) OnContainerLost(now float64, c *yarn.Container) {
	a.OnContainerReleased(now, c, false)
}

// OnNodeDead implements yarn.AuditHook.
func (a *TenantAuditor) OnNodeDead(now float64, node string) {}

// Violations returns everything recorded so far.
func (a *TenantAuditor) Violations() []Violation { return a.violations }

// FinalCheck verifies every tenant's count returned to zero and returns the
// full violation list.
func (a *TenantAuditor) FinalCheck(now float64) []Violation {
	for tenant, n := range a.use {
		if n != 0 {
			a.report(now, InvQuiesce, "tenant %s ended with %d containers accounted live", tenant, n)
		}
	}
	if a.dropped > 0 {
		a.report(now, InvQuiesce, "%d further violations suppressed", a.dropped)
	}
	return a.violations
}

// orderRecorder captures the service lifecycle to check the admission-order
// invariant after the run.
type orderRecorder struct {
	queued   map[string][]string
	admitted map[string][]string
	running  int
	maxRun   int
	maxRunAt float64
}

var _ service.Hook = (*orderRecorder)(nil)

func newOrderRecorder() *orderRecorder {
	return &orderRecorder{queued: map[string][]string{}, admitted: map[string][]string{}}
}

func (h *orderRecorder) OnQueued(now float64, tenant, id string) {
	h.queued[tenant] = append(h.queued[tenant], id)
}

func (h *orderRecorder) OnRejected(now float64, tenant, id string, retryAfterSec float64) {}

func (h *orderRecorder) OnAdmitted(now float64, tenant, id string) {
	h.admitted[tenant] = append(h.admitted[tenant], id)
	h.running++
	if h.running > h.maxRun {
		h.maxRun, h.maxRunAt = h.running, now
	}
}

func (h *orderRecorder) OnFinished(now float64, tenant, id string, succeeded bool) { h.running-- }

// check audits the recorded lifecycle: per-tenant admission order must equal
// queue-entry order (every queued workflow is eventually admitted — the
// queue drains only through admission), and the concurrent-AM cap holds.
func (h *orderRecorder) check(now float64, maxConcurrent int) []Violation {
	var out []Violation
	if h.maxRun > maxConcurrent {
		out = append(out, Violation{TimeSec: h.maxRunAt, Invariant: InvAdmitOrder,
			Detail: fmt.Sprintf("%d AMs ran concurrently, cap is %d", h.maxRun, maxConcurrent)})
	}
	for tenant, q := range h.queued {
		if !reflect.DeepEqual(q, h.admitted[tenant]) {
			out = append(out, Violation{TimeSec: now, Invariant: InvAdmitOrder,
				Detail: fmt.Sprintf("tenant %s admitted %v, queue order was %v", tenant, h.admitted[tenant], q)})
		}
	}
	return out
}

// materializeService builds the substrate for the service-tier run: the
// scenario's cluster with fair scheduling, tenant policies installed in the
// RM, a zero-vcore AM container, and replication-2 HDFS so the generated
// single-node kills never destroy the only copy of a block.
func (s *Scenario) materializeService(profiles []service.TenantProfile) (*sim.Engine, core.Env, error) {
	r := &recipes.Recipe{
		Name:       fmt.Sprintf("verify-svc-%d", s.Seed),
		Groups:     []recipes.NodeGroup{{Count: s.Nodes, Spec: cluster.M3Large()}},
		SwitchMBps: 2000,
		HDFS:       hdfs.Config{BlockSizeMB: 256, Replication: 2},
		YARN: yarn.Config{
			Fair:       true,
			AMResource: yarn.Resource{VCores: 0, MemMB: 256},
			Tenants:    service.TenantPolicies(profiles),
		},
		Seed: s.Seed,
	}
	return r.Materialize()
}

// runService executes the scenario's service tier to quiescence and audits
// the tenant-quota and admission-order invariants. The scenario's chaos plan
// is re-armed for this run; its task-signature rules target the generated
// DAG's signatures (which the service workloads do not use), so the service
// tier sees exactly the plan's node-level faults. AMs are pinned to node-00,
// which genChaos never kills.
func runService(sc *Scenario, tamper func(core.Env)) PolicyRun {
	run := PolicyRun{Policy: "service", Completed: map[string]int{}}
	profiles := sc.Service.profiles()
	eng, env, err := sc.materializeService(profiles)
	if err != nil {
		run.Err = fmt.Sprintf("materialize: %v", err)
		return run
	}
	if tamper != nil {
		tamper(env)
	}
	aud := NewTenantAuditor(service.TenantPolicies(profiles))
	env.RM.SetAudit(aud)
	rec := newOrderRecorder()
	cfg := service.Config{
		Seed:          sc.Seed,
		DurationSec:   sc.Service.DurationSec,
		MaxConcurrent: sc.Service.MaxConcurrent,
		MaxQueue:      sc.Service.MaxQueue,
		RetryAfterSec: 15,
		RetryLimit:    2,
		Policy:        scheduler.PolicyFCFS,
		AMNode:        "node-00",
		Hook:          rec,
	}
	if sc.Chaos != "" {
		plan, err := chaos.Parse(sc.Chaos, sc.ChaosSeed)
		if err != nil {
			run.Err = fmt.Sprintf("chaos plan: %v", err)
			return run
		}
		plan.Arm(eng, env.RM, env.FS, env.Cluster)
		cfg.Chaos = plan
	}
	svc, err := service.New(eng, env, cfg, profiles)
	if err != nil {
		run.Err = fmt.Sprintf("service: %v", err)
		return run
	}
	svc.Start()
	eng.Run()

	now := eng.Now()
	run.Violations = aud.FinalCheck(now)
	run.Violations = append(run.Violations, rec.check(now, cfg.MaxConcurrent)...)
	if d, r := svc.QueueDepth(), svc.Running(); d != 0 || r != 0 {
		run.Violations = append(run.Violations, Violation{TimeSec: now, Invariant: InvQuiesce,
			Detail: fmt.Sprintf("service never drained: %d queued, %d running at quiesce", d, r)})
	}
	run.Violations = append(run.Violations, costViolations(env.RM.CostReport(), now)...)
	st := svc.Stats()
	if st.Submitted != st.Admitted+st.Dropped {
		run.Violations = append(run.Violations, Violation{TimeSec: now, Invariant: InvQuiesce,
			Detail: fmt.Sprintf("accounting leak: submitted %d != admitted %d + dropped %d",
				st.Submitted, st.Admitted, st.Dropped)})
	}
	run.Succeeded = true
	run.MakespanSec = st.WindowSec
	run.Executed = st.Admitted
	return run
}
