package verify

import (
	"fmt"
	"sort"

	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/wf"
	"hiway/internal/yarn"
)

// Violation is one observed invariant breach, timestamped in virtual time.
type Violation struct {
	TimeSec   float64 `json:"timeSec"`
	Invariant string  `json:"invariant"`
	Detail    string  `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%.3f %s: %s", v.TimeSec, v.Invariant, v.Detail)
}

// Names of the invariants the auditor checks; failures reference these.
const (
	InvCapacity  = "capacity-conservation" // free + in-use == node spec on every container event
	InvContainer = "container-lifecycle"   // no leaked, unknown, or double-accounted containers
	InvTerminal  = "exactly-one-terminal"  // a task completes at most once and never resubmits
	InvDepOrder  = "dependency-order"      // an attempt starts only once its inputs exist
	InvMonotone  = "monotone-time"         // hook timestamps never go backwards
	InvQuiesce   = "quiescence"            // after the run: no live containers, full capacity restored

	// InvMembership: no container is ever allocated on a draining or removed
	// node, and membership transitions themselves are well-formed (no double
	// removal, no join of a still-live node).
	InvMembership = "membership-safety"
	// InvCost: per-tenant core-second accounting sums to the cluster's
	// busy-core integral, separately per node class (on-demand vs. spot).
	InvCost = "cost-conservation"
)

// maxViolations bounds how many violations one run records; a broken
// invariant usually cascades, and the first few entries carry the signal.
const maxViolations = 64

// usage tracks the capacity the auditor believes a node has handed out.
type usage struct{ cores, mem int }

// Auditor checks runtime invariants of one workflow execution. It implements
// both yarn.AuditHook (container lifecycle, capacity conservation) and
// core.AuditSink (task lifecycle, dependency order); install it with
// rm.SetAudit and core.Config.Audit before launching. All hooks run on the
// single-threaded simulation loop, so the auditor needs no locking.
//
// One auditor may span an AM kill/resume pair: task identity is per-AM
// (process-local IDs), while container and capacity state live in the RM,
// which survives the crash — exactly what the auditor models.
type Auditor struct {
	rm *yarn.ResourceManager
	fs *hdfs.FS

	total    map[string]usage // node → declared capacity
	used     map[string]usage // node → capacity handed to live containers
	dead     map[string]bool
	draining map[string]bool
	removed  map[string]bool

	live     map[int64]*yarn.Container // allocated, unreleased containers
	released map[int64]bool            // ever-released container IDs

	submitted map[int64]string // task ID → signature
	completed map[int64]bool
	known     map[string]bool // staged inputs + outputs of completed tasks

	last       float64
	wfEnds     int
	dropped    int // violations beyond maxViolations
	violations []Violation
}

// The auditor must satisfy both hook interfaces, plus the membership
// extension so elastic scenarios are audited through node churn.
var (
	_ yarn.AuditHook           = (*Auditor)(nil)
	_ yarn.MembershipAuditHook = (*Auditor)(nil)
	_ core.AuditSink           = (*Auditor)(nil)
)

// NewAuditor builds an auditor over the environment's cluster, RM, and HDFS.
// Staged input paths must be granted via Grant before the run starts.
func NewAuditor(env core.Env) *Auditor {
	a := &Auditor{
		rm:        env.RM,
		fs:        env.FS,
		total:     make(map[string]usage),
		used:      make(map[string]usage),
		dead:      make(map[string]bool),
		draining:  make(map[string]bool),
		removed:   make(map[string]bool),
		live:      make(map[int64]*yarn.Container),
		released:  make(map[int64]bool),
		submitted: make(map[int64]string),
		completed: make(map[int64]bool),
		known:     make(map[string]bool),
	}
	for _, n := range env.Cluster.Nodes() {
		a.total[n.ID] = usage{cores: n.Spec.VCores, mem: n.Spec.MemMB}
	}
	return a
}

// Grant registers paths that legitimately exist before any task ran (the
// scenario's staged inputs).
func (a *Auditor) Grant(paths ...string) {
	for _, p := range paths {
		a.known[p] = true
	}
}

// OnResume marks the boundary between AM incarnations: task-level state is
// per-AM (a killed incarnation legitimately leaves submitted-but-never-
// completed tasks behind), while container, capacity, and node-death state
// belong to the RM, which survives the crash — late defensive re-releases
// of first-incarnation containers and nodes that died before the resume
// must not read as violations.
func (a *Auditor) OnResume() {
	a.submitted = make(map[int64]string)
	a.completed = make(map[int64]bool)
}

// Violations returns everything recorded so far.
func (a *Auditor) Violations() []Violation { return a.violations }

func (a *Auditor) report(now float64, invariant, format string, args ...any) {
	if len(a.violations) >= maxViolations {
		a.dropped++
		return
	}
	a.violations = append(a.violations, Violation{TimeSec: now, Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

func (a *Auditor) mono(now float64) {
	if now < a.last {
		a.report(now, InvMonotone, "event at t=%.3f after t=%.3f", now, a.last)
		return
	}
	a.last = now
}

// checkNode cross-checks the RM's reported free capacity on one live node
// against the auditor's independently tracked in-use total.
func (a *Auditor) checkNode(now float64, node string) {
	if a.dead[node] || a.removed[node] {
		return
	}
	tot, ok := a.total[node]
	if !ok {
		a.report(now, InvCapacity, "container event on unknown node %s", node)
		return
	}
	freeC, freeM := a.rm.FreeCapacity(node)
	u := a.used[node]
	if u.cores < 0 || u.mem < 0 {
		a.report(now, InvCapacity, "node %s in-use went negative (%d cores, %d MB)", node, u.cores, u.mem)
	}
	if freeC+u.cores != tot.cores || freeM+u.mem != tot.mem {
		a.report(now, InvCapacity,
			"node %s: free %d cores/%d MB + in-use %d cores/%d MB != spec %d cores/%d MB",
			node, freeC, freeM, u.cores, u.mem, tot.cores, tot.mem)
	}
}

// OnContainerAllocated implements yarn.AuditHook.
func (a *Auditor) OnContainerAllocated(now float64, c *yarn.Container) {
	a.mono(now)
	if _, ok := a.live[c.ID]; ok {
		a.report(now, InvContainer, "container %d allocated twice", c.ID)
		return
	}
	if a.released[c.ID] {
		a.report(now, InvContainer, "container ID %d reused after release", c.ID)
	}
	if a.dead[c.NodeID] {
		a.report(now, InvContainer, "container %d allocated on dead node %s", c.ID, c.NodeID)
	}
	if a.draining[c.NodeID] {
		a.report(now, InvMembership, "container %d allocated on draining node %s", c.ID, c.NodeID)
	}
	if a.removed[c.NodeID] {
		a.report(now, InvMembership, "container %d allocated on removed node %s", c.ID, c.NodeID)
	}
	a.live[c.ID] = c
	u := a.used[c.NodeID]
	u.cores += c.Resource.VCores
	u.mem += c.Resource.MemMB
	a.used[c.NodeID] = u
	a.checkNode(now, c.NodeID)
}

// OnContainerReleased implements yarn.AuditHook. A double release (the AM
// defensively re-releases containers on several paths) is legitimate as
// long as it does not change accounting; releasing a container the RM never
// allocated is not.
func (a *Auditor) OnContainerReleased(now float64, c *yarn.Container, double bool) {
	a.mono(now)
	if double {
		if _, stillLive := a.live[c.ID]; stillLive {
			a.report(now, InvContainer, "container %d marked released but still accounted live", c.ID)
		}
		if !a.released[c.ID] {
			a.report(now, InvContainer, "container %d re-released but never seen released", c.ID)
		}
		a.checkNode(now, c.NodeID)
		return
	}
	if _, ok := a.live[c.ID]; !ok {
		a.report(now, InvContainer, "release of unknown container %d on %s", c.ID, c.NodeID)
		return
	}
	delete(a.live, c.ID)
	a.released[c.ID] = true
	u := a.used[c.NodeID]
	u.cores -= c.Resource.VCores
	u.mem -= c.Resource.MemMB
	a.used[c.NodeID] = u
	a.checkNode(now, c.NodeID)
}

// OnContainerLost implements yarn.AuditHook: the node died with the
// container on it, so its capacity vanishes rather than being credited back.
func (a *Auditor) OnContainerLost(now float64, c *yarn.Container) {
	a.mono(now)
	if _, ok := a.live[c.ID]; !ok {
		a.report(now, InvContainer, "lost container %d was not live", c.ID)
		return
	}
	delete(a.live, c.ID)
	a.released[c.ID] = true
	u := a.used[c.NodeID]
	u.cores -= c.Resource.VCores
	u.mem -= c.Resource.MemMB
	a.used[c.NodeID] = u
}

// OnNodeDead implements yarn.AuditHook.
func (a *Auditor) OnNodeDead(now float64, node string) {
	a.mono(now)
	if a.dead[node] {
		a.report(now, InvContainer, "node %s died twice", node)
	}
	a.dead[node] = true
}

// OnNodeJoined implements yarn.MembershipAuditHook: the node's capacity
// enters the audited total, and a fresh incarnation starts with a clean
// slate — rejoining under a previously used ID is legitimate only after the
// old incarnation died or was removed.
func (a *Auditor) OnNodeJoined(now float64, node string, vcores, memMB int) {
	a.mono(now)
	if _, ok := a.total[node]; ok && !a.dead[node] && !a.removed[node] {
		a.report(now, InvMembership, "node %s joined while still registered live", node)
	}
	a.total[node] = usage{cores: vcores, mem: memMB}
	a.used[node] = usage{}
	delete(a.dead, node)
	delete(a.removed, node)
	delete(a.draining, node)
}

// OnNodeDraining implements yarn.MembershipAuditHook: from this instant any
// allocation on the node is a membership-safety violation.
func (a *Auditor) OnNodeDraining(now float64, node string) {
	a.mono(now)
	if a.dead[node] || a.removed[node] {
		a.report(now, InvMembership, "dead or removed node %s started draining", node)
	}
	a.draining[node] = true
}

// OnNodeRemoved implements yarn.MembershipAuditHook. Running containers were
// already reported lost by the time this fires, so the node's remaining
// accounting must be empty; its capacity leaves the audited total.
func (a *Auditor) OnNodeRemoved(now float64, node string) {
	a.mono(now)
	if a.removed[node] {
		a.report(now, InvMembership, "node %s removed twice", node)
	}
	a.removed[node] = true
	delete(a.draining, node)
}

// OnTaskSubmitted implements core.AuditSink.
func (a *Auditor) OnTaskSubmitted(now float64, t *wf.Task) {
	a.mono(now)
	if sig, ok := a.submitted[t.ID]; ok {
		a.report(now, InvTerminal, "%s (sig %s) submitted twice", t, sig)
	}
	if a.completed[t.ID] {
		a.report(now, InvTerminal, "%s submitted after completing", t)
	}
	a.submitted[t.ID] = t.Name
}

// OnAttemptStart implements core.AuditSink: every input must already exist
// — staged, produced by a completed task, or (after a resume) recovered
// into HDFS — before an attempt may start.
func (a *Auditor) OnAttemptStart(now float64, t *wf.Task, node string, attempt int) {
	a.mono(now)
	if _, ok := a.submitted[t.ID]; !ok {
		a.report(now, InvTerminal, "attempt %d of %s started before submission", attempt, t)
	}
	if a.completed[t.ID] {
		a.report(now, InvTerminal, "attempt %d of %s started after the task completed", attempt, t)
	}
	for _, in := range t.Inputs {
		if !a.known[in] && !a.fs.Exists(in) {
			a.report(now, InvDepOrder, "attempt %d of %s started before input %s exists", attempt, t, in)
		}
	}
}

// OnAttemptEnd implements core.AuditSink.
func (a *Auditor) OnAttemptEnd(now float64, t *wf.Task, node string, attempt int, exitCode int, accepted bool) {
	a.mono(now)
	if accepted && a.completed[t.ID] {
		a.report(now, InvTerminal, "attempt %d of %s accepted after the task already completed", attempt, t)
	}
	if accepted && exitCode != 0 {
		a.report(now, InvTerminal, "attempt %d of %s accepted with exit code %d", attempt, t, exitCode)
	}
}

// OnTaskCompleted implements core.AuditSink.
func (a *Auditor) OnTaskCompleted(now float64, t *wf.Task, node string) {
	a.mono(now)
	if a.completed[t.ID] {
		a.report(now, InvTerminal, "%s reached a second terminal state", t)
	}
	a.completed[t.ID] = true
	for _, p := range t.DeclaredPaths() {
		a.known[p] = true
	}
}

// OnWorkflowEnd implements core.AuditSink.
func (a *Auditor) OnWorkflowEnd(now float64, succeeded bool) {
	a.mono(now)
	a.wfEnds++
}

// FinalCheck audits end-of-run state once the engine has quiesced:
// every container returned, full capacity restored on surviving nodes, and
// (for a successful run) every submitted task reached its terminal state.
// It appends to the violation list and returns the complete set.
func (a *Auditor) FinalCheck(succeeded bool) []Violation {
	now := a.last
	if a.wfEnds == 0 {
		a.report(now, InvQuiesce, "workflow never reached a terminal event")
	} else if a.wfEnds > 1 {
		a.report(now, InvQuiesce, "workflow ended %d times", a.wfEnds)
	}
	if n := len(a.live); n > 0 {
		ids := make([]int64, 0, n)
		for id := range a.live {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		a.report(now, InvQuiesce, "%d containers leaked (first: %d on %s)", n, ids[0], a.live[ids[0]].NodeID)
	}
	if rc := a.rm.RunningContainers(); rc != 0 {
		a.report(now, InvQuiesce, "RM reports %d containers still running after quiesce", rc)
	}
	for node, tot := range a.total {
		if a.dead[node] || a.removed[node] {
			continue
		}
		freeC, freeM := a.rm.FreeCapacity(node)
		if freeC != tot.cores || freeM != tot.mem {
			a.report(now, InvQuiesce, "node %s ended with %d/%d cores and %d/%d MB free",
				node, freeC, tot.cores, freeM, tot.mem)
		}
	}
	if succeeded {
		for id, sig := range a.submitted {
			if !a.completed[id] {
				a.report(now, InvQuiesce, "task %d (sig %s) submitted but never completed in a successful run", id, sig)
			}
		}
	}
	for _, v := range costViolations(a.rm.CostReport(), now) {
		a.report(v.TimeSec, v.Invariant, "%s", v.Detail)
	}
	if a.dropped > 0 {
		a.report(now, InvQuiesce, "%d further violations suppressed", a.dropped)
	}
	return a.violations
}
