package verify

import (
	"fmt"
	"math/rand"

	"hiway/internal/autoscale"
	"hiway/internal/sim"
	"hiway/internal/yarn"
)

// ElasticEvent is one scheduled membership transition of an elastic plan.
type ElasticEvent struct {
	AtSec float64 `json:"atSec"`
	// Kind is "join" (on-demand node), "join-spot" (preemptible node),
	// "drain" (graceful decommission with the plan's deadline), or "spot"
	// (two-phase notice→reclaim preemption).
	Kind string `json:"kind"`
	Node string `json:"node"`
}

// ElasticSpec is a seeded membership plan applied to every policy run of a
// scenario: nodes join, drain, and get spot-reclaimed at fixed virtual
// times, driven through the autoscale Manager so each transition exercises
// the full cluster/RM/HDFS leave path. The auditor checks that no container
// is ever allocated on a draining or removed node and that per-tenant cost
// accounting stays conserved through the churn.
type ElasticSpec struct {
	DrainDeadlineSec float64        `json:"drainDeadlineSec"`
	SpotNoticeSec    float64        `json:"spotNoticeSec"`
	Events           []ElasticEvent `json:"events"`
}

// Disruptive reports whether the plan removes capacity mid-run (a drain or
// spot reclaim). Like a chaos node kill, that breaks static up-front plans,
// so disruptive scenarios are checked under dynamic policies only. Safe on a
// nil spec.
func (e *ElasticSpec) Disruptive() bool {
	if e == nil {
		return false
	}
	for _, ev := range e.Events {
		if ev.Kind == "drain" || ev.Kind == "spot" {
			return true
		}
	}
	return false
}

// genElastic attaches a membership plan to roughly a quarter of all
// scenarios. It draws from the rng strictly after genChaos and genService,
// so seeds generated before the elastic family existed keep their exact task
// list, chaos plan, and service tier. Recoverability by construction:
// node-00 (the AM host) never leaves, and at most one capacity-destroying
// event is planned — and only when the chaos plan does not already kill a
// node — so replication-2 HDFS never loses both copies of a block.
func (s *Scenario) genElastic(r *rand.Rand) {
	if r.Intn(4) != 0 {
		return
	}
	es := &ElasticSpec{
		DrainDeadlineSec: float64(60 + r.Intn(121)),
		SpotNoticeSec:    float64(30 + r.Intn(91)),
	}
	njoin := 1 + r.Intn(2)
	for k := 0; k < njoin; k++ {
		ev := ElasticEvent{
			AtSec: float64(10 + r.Intn(151)),
			Kind:  "join",
			Node:  fmt.Sprintf("node-%02d", s.Nodes+k),
		}
		if r.Intn(2) == 0 {
			ev.Kind = "join-spot"
		}
		es.Events = append(es.Events, ev)
	}
	spotJoin := -1
	for i, ev := range es.Events {
		if ev.Kind == "join-spot" {
			spotJoin = i
			break
		}
	}
	if !s.KillsNode() && r.Intn(2) == 0 {
		switch {
		case spotJoin >= 0:
			// Reclaim the joined spot node after it has been live a while.
			es.Events = append(es.Events, ElasticEvent{
				AtSec: es.Events[spotJoin].AtSec + float64(20+r.Intn(121)),
				Kind:  "spot",
				Node:  es.Events[spotJoin].Node,
			})
		case s.Nodes >= 4:
			// Gracefully drain one original non-AM node.
			es.Events = append(es.Events, ElasticEvent{
				AtSec: float64(40 + r.Intn(151)),
				Kind:  "drain",
				Node:  fmt.Sprintf("node-%02d", 1+r.Intn(s.Nodes-1)),
			})
		}
	}
	s.Elastic = es
}

// arm schedules the plan's events against a freshly built run. Spot events
// use the same two-phase notice→reclaim flow the chaos spot mode drives.
func (e *ElasticSpec) arm(eng *sim.Engine, m *autoscale.Manager) {
	for _, ev := range e.Events {
		ev := ev
		switch ev.Kind {
		case "join":
			eng.At(ev.AtSec, func() { m.Join(ev.Node, false) })
		case "join-spot":
			eng.At(ev.AtSec, func() { m.Join(ev.Node, true) })
		case "drain":
			eng.At(ev.AtSec, func() { m.Drain(ev.Node) })
		case "spot":
			eng.At(ev.AtSec, func() { m.NoticeNode(ev.Node) })
			eng.At(ev.AtSec+e.SpotNoticeSec, func() { m.ReclaimNode(ev.Node) })
		}
	}
}

// costViolations audits cost conservation on a quiesced RM: summed
// per-tenant core-seconds must equal the cluster's busy-core integral,
// separately for on-demand and spot capacity. The tolerance is relative —
// the two sides accumulate the same products in different orders.
func costViolations(rep yarn.CostReport, now float64) []Violation {
	var tenantOD, tenantSpot float64
	for _, tc := range rep.Tenants {
		tenantOD += tc.OnDemandCoreSec
		tenantSpot += tc.SpotCoreSec
	}
	var out []Violation
	check := func(class string, tenants, busy float64) {
		tol := 1e-6 * (1 + busy)
		if d := tenants - busy; d > tol || d < -tol {
			out = append(out, Violation{TimeSec: now, Invariant: InvCost,
				Detail: fmt.Sprintf("%s: tenants account %.6f core-sec, cluster busy integral is %.6f", class, tenants, busy)})
		}
	}
	check("on-demand", tenantOD, rep.OnDemandBusySec)
	check("spot", tenantSpot, rep.SpotBusySec)
	return out
}
