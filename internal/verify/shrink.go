package verify

import "strings"

// ShrinkReport describes a minimization: the reduced scenario plus how many
// candidate executions the search spent.
type ShrinkReport struct {
	Scenario *Scenario `json:"scenario"`
	Probes   int       `json:"probes"`
	// Failures of the minimized scenario (re-checked last, so they describe
	// exactly what the reproducer reproduces).
	Failures []string `json:"failures"`
}

// Shrink minimizes a failing scenario while preserving the failure:
//
//  1. drop the memoization family if the memo-off matrix alone still fails,
//     then the iteration chain if the base graph alone still fails, then
//     the service tier, then the elastic membership plan,
//  2. binary-search the shortest failing task prefix — tasks are stored in
//     topological order with producers before consumers, so every prefix is
//     a dependency-closed workflow,
//  3. greedily remove chaos directives that are not needed for the failure.
//
// The predicate is re-evaluated with a full CheckScenario per candidate, so
// shrinking a scenario that only fails nondeterministically converges to
// whatever still fails — generated scenarios are deterministic, and Tamper
// hooks carried in opts are re-applied to every candidate.
//
// If sc does not fail under opts, Shrink returns it unchanged with zero
// shrink steps applied.
func Shrink(sc *Scenario, opts Options) ShrinkReport {
	probes := 0
	fails := func(s *Scenario) []string {
		probes++
		return CheckScenario(s, opts).Failures
	}
	cur := sc.Clone()
	last := fails(cur)
	if len(last) == 0 {
		return ShrinkReport{Scenario: cur, Probes: probes}
	}

	// 0. Memo family gone? The memo runs triple the execution count, so the
	// reproducer sheds them first; if only a memo run diverges, the flag
	// survives and the case stays a cold/warm/resume triple.
	if cur.Memo {
		cand := cur.Clone()
		cand.Memo = false
		if f := fails(cand); len(f) > 0 {
			cur, last = cand, f
		}
	}

	// 1. Iterations gone?
	if len(cur.IterTasks) > 0 {
		cand := cur.Clone()
		cand.IterTasks = nil
		if f := fails(cand); len(f) > 0 {
			cur, last = cand, f
		}
	}

	// 1b. Service tier gone? (The policy matrix and the service run are
	// independent, so whichever one carries the failure survives.)
	if cur.Service != nil {
		cand := cur.Clone()
		cand.Service = nil
		if f := fails(cand); len(f) > 0 {
			cur, last = cand, f
		}
	}

	// 1c. Elastic plan gone? (Membership churn is orthogonal to the task
	// graph; if the failure survives without it, the reproducer sheds it.)
	if cur.Elastic != nil {
		cand := cur.Clone()
		cand.Elastic = nil
		if f := fails(cand); len(f) > 0 {
			cur, last = cand, f
		}
	}

	// 1d. Portability family gone? If the spec-driver matrix alone still
	// fails, the reproducer sheds the cross-language runs; if only a
	// rendering diverges, the flag survives and the reproducer stays a
	// two-language case.
	if cur.Portability {
		cand := cur.Clone()
		cand.Portability = false
		if f := fails(cand); len(f) > 0 {
			cur, last = cand, f
		}
	}

	// 2. Shortest failing task prefix, by binary search. The search assumes
	// prefix-monotonicity; when the failure is not monotone the final
	// re-check below rejects a passing candidate and keeps the last known
	// failing scenario. Skipped while an iteration chain survives: its first
	// task consumes the base graph's final artifact, which a shorter prefix
	// would not produce, and the resulting stall would fail for the wrong
	// reason.
	if len(cur.IterTasks) == 0 {
		lo, hi := 1, len(cur.Tasks)
		for lo < hi {
			mid := (lo + hi) / 2
			cand := cur.Clone()
			cand.Tasks = cand.Tasks[:mid]
			if f := fails(cand); len(f) > 0 {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if lo < len(cur.Tasks) {
			cand := cur.Clone()
			cand.Tasks = cand.Tasks[:lo]
			if f := fails(cand); len(f) > 0 {
				cur, last = cand, f
			}
		}
	}

	// 3. Drop chaos directives one at a time while the failure holds.
	if cur.Chaos != "" {
		dirs := strings.Split(cur.Chaos, ";")
		for i := 0; i < len(dirs); {
			kept := append(append([]string(nil), dirs[:i]...), dirs[i+1:]...)
			cand := cur.Clone()
			cand.Chaos = strings.Join(kept, ";")
			if f := fails(cand); len(f) > 0 {
				dirs = kept
				cur, last = cand, f
			} else {
				i++
			}
		}
	}

	return ShrinkReport{Scenario: cur, Probes: probes, Failures: last}
}
