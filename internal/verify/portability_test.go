package verify

import (
	"strings"
	"testing"

	"hiway/internal/lang/cuneiform"
	"hiway/internal/lang/cwl"
	"hiway/internal/scheduler"
	"hiway/internal/wf"
)

// TestRenderingsParse checks both emitters against both real frontends for
// a seed batch: every generated scenario must render into sources the
// Cuneiform and CWL parsers accept.
func TestRenderingsParse(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		sc := Generate(seed)
		cfSrc, err := RenderCuneiform(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := cuneiform.NewDriver("port", cfSrc).Parse(); err != nil {
			t.Fatalf("seed %d: cuneiform frontend rejects rendering: %v\n%s", seed, err, cfSrc)
		}
		cwlSrc, err := RenderCWL(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d := cwl.NewDriver("port", cwlSrc, cwl.Options{})
		if _, err := d.Parse(); err != nil {
			t.Fatalf("seed %d: cwl frontend rejects rendering: %v\n%s", seed, err, cwlSrc)
		}
		// The CWL rendering is static: its task count must be the whole
		// scenario, iteration chain folded in.
		if got := len(d.Graph().All()); got != sc.TotalTasks() {
			t.Fatalf("seed %d: cwl rendering has %d tasks, scenario has %d", seed, got, sc.TotalTasks())
		}
	}
}

// TestPortabilitySeedBatch is the core differential property: for a batch
// of generated scenarios forced into the portability family, both language
// renderings must reach the spec's canonical outcome under every
// applicable policy and under kill/resume.
func TestPortabilitySeedBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("portability batch is a long differential run")
	}
	for seed := int64(1); seed <= 12; seed++ {
		sc := Generate(seed)
		sc.Portability = true
		res := CheckScenario(sc, Options{})
		if !res.OK() {
			t.Fatalf("seed %d (%s): %s\n%s", seed, sc.Shape, strings.Join(res.Failures, "\n"), sc.Marshal())
		}
		var langs []string
		for _, r := range res.Runs {
			if r.Lang != "" {
				langs = append(langs, r.Lang+"/"+r.Policy)
			}
		}
		if len(langs) == 0 {
			t.Fatalf("seed %d: no portability runs executed", seed)
		}
		hasCF, hasCWL := false, false
		for _, l := range langs {
			hasCF = hasCF || strings.HasPrefix(l, "cuneiform/")
			hasCWL = hasCWL || strings.HasPrefix(l, "cwl/")
		}
		if !hasCF || !hasCWL {
			t.Fatalf("seed %d: portability matrix incomplete: %v", seed, langs)
		}
	}
}

// TestGenPortabilityFrequency pins the family's share of generated seeds
// near the intended quarter.
func TestGenPortabilityFrequency(t *testing.T) {
	n := 0
	for seed := int64(1); seed <= 200; seed++ {
		if Generate(seed).Portability {
			n++
		}
	}
	if n < 30 || n > 70 {
		t.Fatalf("portability family hit %d/200 seeds; want roughly a quarter", n)
	}
}

// TestCanonicalDetectsDivergence feeds the comparator a doctored run — one
// task's input rewired to a different producer — and requires a diff, so
// canonical comparison cannot silently pass on lineage changes that keep
// task counts intact.
func TestCanonicalDetectsDivergence(t *testing.T) {
	sc := &Scenario{
		Seed:   7,
		Inputs: []InputSpec{{Path: "/data/in-0.dat", SizeMB: 16}},
		Tasks: []TaskSpec{
			{Name: "alpha", Inputs: []string{"/data/in-0.dat"}, Outputs: []string{"/wf/t000.dat"}, OutSizeMB: 8, CPUSeconds: 5},
			{Name: "beta", Inputs: []string{"/data/in-0.dat"}, Outputs: []string{"/wf/t001.dat"}, OutSizeMB: 8, CPUSeconds: 5},
			{Name: "gamma", Inputs: []string{"/wf/t000.dat"}, Outputs: []string{"/wf/t002.dat"}, OutSizeMB: 8, CPUSeconds: 5},
		},
	}
	expected, expOuts := sc.specCanonical()

	mkTask := func(idx string, name string, inputs []string, out string) *wf.Task {
		return &wf.Task{
			Name:         name,
			Inputs:       inputs,
			OutputParams: []string{"out"},
			Declared:     map[string][]wf.FileInfo{"out": {{Path: out, SizeMB: 1}}},
			Env:          map[string]string{"idx": idx},
		}
	}
	faithful := []*wf.TaskResult{
		{Task: mkTask("0", "alpha", []string{"/data/in-0.dat"}, "/w/a/out")},
		{Task: mkTask("1", "beta", []string{"/data/in-0.dat"}, "/w/b/out")},
		{Task: mkTask("2", "gamma", []string{"/w/a/out"}, "/w/c/out")},
	}
	got, gotOuts := CanonicalOutcome(faithful, []string{"/w/b/out", "/w/c/out"})
	if d := diffCompleted(expected, got); d != "" {
		t.Fatalf("faithful run should match the spec, diff: %s", d)
	}
	if strings.Join(gotOuts, "\n") != strings.Join(expOuts, "\n") {
		t.Fatalf("faithful outputs %v, want %v", gotOuts, expOuts)
	}

	// Divergent lineage: gamma consumed beta's output instead of alpha's.
	// Completed-task counts per signature are identical; only the canonical
	// inputs differ.
	divergent := []*wf.TaskResult{
		{Task: mkTask("0", "alpha", []string{"/data/in-0.dat"}, "/w/a/out")},
		{Task: mkTask("1", "beta", []string{"/data/in-0.dat"}, "/w/b/out")},
		{Task: mkTask("2", "gamma", []string{"/w/b/out"}, "/w/c/out")},
	}
	got, _ = CanonicalOutcome(divergent, []string{"/w/b/out", "/w/c/out"})
	if d := diffCompleted(expected, got); d == "" {
		t.Fatal("rewired lineage not detected")
	}
}

// TestPortabilityRunsFailOnBrokenRendering forces a real divergence through
// the full runner: a scenario whose chaos plan crashes a signature more
// times than MaxRetries allows would fail anyway, so instead the scenario
// is given an impossible expectation by mutating a task after the
// expectation is derived — the cheap stand-in is a direct runPortability
// call on a scenario whose Tasks are edited between rendering and
// expectation. Since runPortability derives both from the same scenario,
// the equivalent end-to-end check is: a scenario that fails under a policy
// (unsatisfiable chaos) must surface portability failures too.
func TestPortabilityRunsFailOnBrokenRendering(t *testing.T) {
	sc := &Scenario{
		Seed:   11,
		Nodes:  3,
		Inputs: []InputSpec{{Path: "/data/in-0.dat", SizeMB: 16}},
		Tasks: []TaskSpec{
			{Name: "alpha", Inputs: []string{"/data/in-0.dat"}, Outputs: []string{"/wf/t000.dat"}, OutSizeMB: 8, CPUSeconds: 5},
		},
		// Crash every attempt (no @N pin): MaxRetries is 5, so six straight
		// crashes exhaust the retry budget and the workflow fails.
		Chaos:       "crash=alpha:6",
		Portability: true,
	}
	runs, fails := runPortability(sc, Options{Policies: []string{scheduler.PolicyFCFS}})
	if len(runs) == 0 {
		t.Fatal("no portability runs executed")
	}
	if len(fails) == 0 {
		t.Fatal("unrunnable scenario produced no portability failures")
	}
}

// TestPortabilityNotRenderable pins the guard: a scenario with a
// multi-output task is reported, not rendered.
func TestPortabilityNotRenderable(t *testing.T) {
	sc := &Scenario{
		Seed:   3,
		Inputs: []InputSpec{{Path: "/data/in-0.dat", SizeMB: 16}},
		Tasks: []TaskSpec{
			{Name: "alpha", Inputs: []string{"/data/in-0.dat"}, Outputs: []string{"/wf/a.dat", "/wf/b.dat"}},
		},
	}
	if _, err := RenderCuneiform(sc); err == nil {
		t.Fatal("multi-output task rendered")
	}
	_, fails := runPortability(sc, Options{})
	if len(fails) != 1 || !strings.Contains(fails[0], "renderings need exactly 1") {
		t.Fatalf("fails = %v", fails)
	}
}

// TestShrinkDropsPortability: when the failure lives in the spec-driver
// matrix (an auditor tamper), the shrunk reproducer sheds the portability
// family.
func TestShrinkDropsPortability(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking runs many full checks")
	}
	var sc *Scenario
	for seed := int64(1); seed <= 50; seed++ {
		c := Generate(seed)
		if c.Portability && c.Service == nil && c.Elastic == nil {
			sc = c
			break
		}
	}
	if sc == nil {
		t.Fatal("no plain portability seed in range")
	}
	opts := Options{Policies: []string{scheduler.PolicyFCFS}, Tamper: skewTamper}
	rep := Shrink(sc, opts)
	if len(rep.Failures) == 0 {
		t.Fatal("tampered scenario did not fail")
	}
	if rep.Scenario.Portability {
		t.Fatal("shrink kept the portability family for a spec-side failure")
	}
}
