// Package yarn simulates the Hadoop YARN resource management layer as seen
// by an application master (AM): a ResourceManager that tracks per-node
// capacity through NodeManagers, allocates containers (a fixed bundle of
// virtual cores and memory) against queued requests, honors node placement
// hints (relaxed or strict, the latter used by static workflow schedulers),
// and notifies applications when nodes are lost.
//
// Hi-WAY is "yet another application master for YARN"; this package is the
// counterpart protocol it talks to. One application is submitted per
// workflow, mirroring the paper's one-AM-per-workflow design (§3.1).
//
// When observability is enabled (RM.SetObs), the ResourceManager emits a
// container span per allocation on the hosting node's track and maintains
// the hiway_yarn_* metric family: request/allocation/loss counters,
// per-node allocation counts, and an allocation-latency histogram in
// virtual seconds. With no observer attached every hook is a nil-receiver
// no-op.
package yarn
