// Package yarn simulates the Hadoop YARN resource management layer as seen
// by an application master (AM): a ResourceManager that tracks per-node
// capacity through NodeManagers, allocates containers (a fixed bundle of
// virtual cores and memory) against queued requests, honors node placement
// hints (relaxed or strict, the latter used by static workflow schedulers),
// and notifies applications when nodes are lost.
//
// Hi-WAY is "yet another application master for YARN"; this package is the
// counterpart protocol it talks to. One application is submitted per
// workflow, mirroring the paper's one-AM-per-workflow design (§3.1).
//
// When observability is enabled (RM.SetObs), the ResourceManager emits a
// container span per allocation on the hosting node's track and maintains
// the hiway_yarn_* metric family: request/allocation/loss counters,
// per-node allocation counts, and an allocation-latency histogram in
// virtual seconds. With no observer attached every hook is a nil-receiver
// no-op.
//
// # Concurrency contract
//
// A ResourceManager is NOT goroutine-safe, and deliberately so: it advances
// in lockstep with one discrete-event engine (internal/sim), whose virtual
// clock is serial by definition — interleaving two goroutines through one
// RM would have no meaningful event order. Concurrent layers must therefore
// shard rather than lock: give each concurrently executing workflow run its
// own RM (plus engine, cluster, and HDFS namespace), as internal/shard's
// parallel -w shards and internal/service's Server (one substrate per
// admitted run, seeded from the run ID) both do. This is what keeps the
// service tier race-clean without a single mutex in this package, and what
// makes a run's outcome a pure function of its submission.
package yarn
