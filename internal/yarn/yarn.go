package yarn

import (
	"fmt"
	"sort"
	"strconv"

	"hiway/internal/cluster"
	"hiway/internal/obs"
	"hiway/internal/sim"
)

// Resource is a container's size: virtual cores and memory.
type Resource struct {
	VCores int
	MemMB  int
}

// Fits reports whether r fits into the given free capacity.
func (r Resource) Fits(freeCores, freeMem int) bool {
	return r.VCores <= freeCores && r.MemMB <= freeMem
}

func (r Resource) String() string {
	return fmt.Sprintf("<%d vcores, %d MB>", r.VCores, r.MemMB)
}

// Container is an allocated bundle of resources on one node.
type Container struct {
	ID       int64
	NodeID   string
	Resource Resource
	AppID    int
	// Tenant is the owning application's tenant ("" for untenanted apps).
	Tenant string
	// AM marks the application-master container; AM containers are exempt
	// from per-tenant worker-container quotas.
	AM bool

	// OnLost, if set by the owning application, is invoked when the
	// hosting node dies while the container is allocated.
	OnLost func()

	released bool
	allocAt  float64    // allocation time, for per-tenant cost attribution
	span     obs.SpanID // container span (allocate → release), 0 when obs is off
}

// Request asks the ResourceManager for one container.
type Request struct {
	Resource Resource
	// NodeHint names a preferred node. With Strict, the request waits for
	// capacity on exactly that node (static schedulers); otherwise the
	// hint is best-effort and any node may be chosen (relaxed locality).
	NodeHint string
	Strict   bool
	// OnUnplaceable fires (once, asynchronously) when a strict request's
	// pinned node dies while the request is still pending: the request is
	// withdrawn and the owner decides where to go next (typically re-plan
	// and re-request). Without it, the dead-pinned request is relaxed to
	// run anywhere rather than silently starving.
	OnUnplaceable func(req Request)
}

// Config tunes the ResourceManager.
type Config struct {
	// HeartbeatSec is the allocation latency: requests are matched to free
	// capacity one heartbeat after arrival/release, as in YARN's
	// heartbeat-driven allocation. Default 0.25s.
	HeartbeatSec float64
	// AMResource is the container size used for application masters.
	// Default 1 vcore, 1024 MB. VCores may be zero: the AM is a thin
	// process whose vcore reservation need not block task containers
	// (YARN does not enforce vcores by default).
	AMResource Resource
	// Fair switches YARN's internal scheduler (§3.4 distinguishes it from
	// Hi-WAY's workflow scheduler) from FIFO to fair sharing: allocation
	// rounds serve one request per application in turn, so a workflow
	// with many queued requests cannot starve a smaller one. With Tenants
	// configured, fair sharing additionally weights the order across
	// tenants (see TenantPolicy).
	Fair bool
	// Tenants configures per-tenant fair-share weights and hard quota caps
	// for the multi-tenant service tier. Tenants absent from the map get
	// weight 1 and no cap. Quota caps are enforced regardless of Fair;
	// tenant-weighted ordering applies only when Fair is set.
	Tenants map[string]TenantPolicy
}

// TenantPolicy tunes one tenant's share of the cluster.
type TenantPolicy struct {
	// Weight is the tenant's fair-share weight: each allocation round
	// serves up to Weight of the tenant's requests before moving on.
	// Weight 0 declares a background tenant, ordered after every
	// positively weighted tenant's requests. Tenants absent from
	// Config.Tenants default to weight 1.
	Weight int
	// MaxContainers caps the tenant's concurrently allocated worker
	// containers across all of its applications — a hard quota the
	// allocator never exceeds, even when the cluster is otherwise idle.
	// AM containers are exempt. 0 means no cap.
	MaxContainers int
}

func (c *Config) setDefaults() {
	if c.HeartbeatSec <= 0 {
		c.HeartbeatSec = 0.25
	}
	if c.AMResource.VCores <= 0 && c.AMResource.MemMB <= 0 {
		c.AMResource = Resource{VCores: 1, MemMB: 1024}
	}
}

type nodeManager struct {
	id         string
	totalCores int
	totalMem   int
	freeCores  int
	freeMem    int
	dead       bool
	spot       bool // spot instance: cheaper node-seconds, reclaimable by chaos
	draining   bool // graceful decommission in progress: no new allocations
	running    map[int64]*Container
	bucket     int // free-cores index bucket, -1 while unallocatable
	bucketPos  int // position within that bucket, for O(1) swap-removal

	// cost accounting: piecewise integral of allocated (busy) cores.
	joinedAt    float64
	busyMark    float64 // last time busyCoreSec was brought up to date
	busyCoreSec float64

	// drain bookkeeping
	drainDone func(node string, graceful bool) // pending completion callback
	drainGen  int                              // guards stale deadline events
}

type pendingReq struct {
	app   *Application
	req   Request
	onOK  func(*Container)
	seq   int64
	at    float64 // request arrival time, for allocation-latency metrics
	taken bool    // satisfied this allocation round (transient)
}

// AuditHook observes the RM's container lifecycle at the exact points
// resource accounting changes. The verify layer installs an invariant
// auditor here; a nil hook (the default) costs one nil check per event.
// Hooks run synchronously inside the RM, so they must not call back into it.
type AuditHook interface {
	// OnContainerAllocated fires when capacity is debited for a container
	// (worker and AM containers alike).
	OnContainerAllocated(now float64, c *Container)
	// OnContainerReleased fires on every Release call, before the
	// idempotency check; double is true when the container had already been
	// released (a defensive re-release, which must not credit capacity).
	OnContainerReleased(now float64, c *Container, double bool)
	// OnContainerLost fires for each running container destroyed by a node
	// failure; its capacity is gone with the node, not credited back.
	OnContainerLost(now float64, c *Container)
	// OnNodeDead fires once when a node is killed, before its containers
	// are reported lost.
	OnNodeDead(now float64, node string)
}

// MembershipAuditHook extends AuditHook for auditors that also want to
// observe node membership changes (elastic clusters). The RM invokes it via
// type assertion on the installed AuditHook, so plain AuditHook
// implementations keep working unchanged.
type MembershipAuditHook interface {
	// OnNodeJoined fires when a node joins mid-run, after its capacity is
	// registered but before any allocation can land on it.
	OnNodeJoined(now float64, node string, vcores, memMB int)
	// OnNodeDraining fires when a graceful decommission starts; from this
	// instant no new container may be allocated on the node.
	OnNodeDraining(now float64, node string)
	// OnNodeRemoved fires when a node leaves for good (drain complete or
	// spot reclaim), after its running containers were reported lost.
	OnNodeRemoved(now float64, node string)
}

// MembershipListener observes node lifecycle transitions. Events are
// "join" (node registered), "drain" (graceful decommission started), and
// "leave" (node removed). Listeners run synchronously inside the RM, so they
// must not call back into it.
type MembershipListener func(now float64, node, event string)

// ResourceManager allocates containers over the simulated cluster.
type ResourceManager struct {
	eng *sim.Engine
	cfg Config

	nms     map[string]*nodeManager
	order   []string // node IDs in deterministic order
	pending []*pendingReq
	apps    map[int]*Application

	// freeIdx buckets allocatable (alive, non-draining) nodes by free core
	// count, so pickNode finds the most-free node in O(1) instead of
	// scanning every node per container. Within a bucket nodes sit in
	// insertion order, maintained by O(1) swap-removal — deterministic for
	// a given event history, which is all byte-identical replay needs.
	freeIdx [][]*nodeManager

	// tenantUse counts live worker containers per tenant (AM containers
	// are exempt) — the quantity quota caps bound.
	tenantUse map[string]int

	// cost accounting, by node class and tenant. Departed nodes fold their
	// totals into the finalized sums so the maps stay bounded under churn.
	tenantCost      map[string]*TenantCost
	onDemandNodeSec float64 // finalized alive node-seconds, on-demand nodes
	spotNodeSec     float64 // finalized alive node-seconds, spot nodes
	onDemandBusySec float64 // finalized busy core-seconds, on-demand nodes
	spotBusySec     float64 // finalized busy core-seconds, spot nodes

	membership []MembershipListener

	nextApp       int
	nextContainer int64
	nextSeq       int64
	allocPending  bool
	allocLatEWMA  float64 // exponentially weighted recent allocation latency

	audit AuditHook // optional invariant auditor; nil disables

	// releaseSkew is a deliberate accounting error injected by tests: every
	// release credits this many extra vcores. It exists solely so the verify
	// layer can prove its capacity-conservation auditor detects broken
	// release accounting; production code never sets it.
	releaseSkew int

	// allocation-round scratch and the pendingReq free list; request
	// records recycle once their allocation callback has run.
	satScratch []*pendingReq
	ctrScratch []*Container
	reqFree    []*pendingReq

	// statistics
	Allocated int64 // total containers ever allocated (incl. AMs)
	preempted int   // running containers preempted by node removal

	// observability (nil handles when disabled — all no-ops)
	obs         *obs.Obs
	requestsC   *obs.Counter
	allocatedC  *obs.Counter
	lostC       *obs.Counter
	killedC     *obs.Counter
	preemptedC  *obs.Counter
	allocLatH   *obs.Histogram
	nodeAllocCs map[string]*obs.Counter // per-node allocation counters
}

// SetObs attaches the observability layer: container spans on per-node
// tracks, request→allocate latency, and per-node allocation counters. Call
// before submitting applications; a nil o (the default) disables all of it.
func (rm *ResourceManager) SetObs(o *obs.Obs) {
	rm.obs = o
	m := o.M()
	rm.requestsC = m.Counter("hiway_yarn_requests_total", "container requests queued at the RM")
	rm.allocatedC = m.Counter("hiway_yarn_containers_allocated_total", "containers allocated (incl. AM containers)")
	rm.lostC = m.Counter("hiway_yarn_containers_lost_total", "running containers lost to node failures")
	rm.killedC = m.Counter("hiway_yarn_nodes_killed_total", "nodes failed during the run")
	rm.preemptedC = m.Counter("hiway_yarn_preempted_total", "running containers preempted by node removal (spot reclaim or drain-deadline expiry)")
	rm.allocLatH = m.Histogram("hiway_yarn_allocation_latency_seconds",
		"virtual seconds from container request to allocation",
		[]float64{0.25, 0.5, 1, 2, 5, 10, 30, 60, 120})
	rm.nodeAllocCs = make(map[string]*obs.Counter, len(rm.order))
	for _, id := range rm.order {
		rm.nodeAllocCs[id] = m.CounterL("hiway_yarn_node_containers_total",
			"containers allocated per node", "node", id)
	}
}

// SetAudit installs an invariant auditor over the RM's container lifecycle.
// Call before submitting applications; a nil hook (the default) disables it.
func (rm *ResourceManager) SetAudit(h AuditHook) { rm.audit = h }

// SetReleaseSkewForTesting injects a deliberate off-by-skew accounting error
// into container release: every release credits skew extra vcores back to the
// node. It exists so tests can prove the capacity-conservation auditor
// actually detects broken release accounting; never call it outside tests.
func (rm *ResourceManager) SetReleaseSkewForTesting(skew int) { rm.releaseSkew = skew }

// NewResourceManager builds an RM over the cluster's nodes.
func NewResourceManager(eng *sim.Engine, c *cluster.Cluster, cfg Config) *ResourceManager {
	cfg.setDefaults()
	rm := &ResourceManager{
		eng:        eng,
		cfg:        cfg,
		nms:        make(map[string]*nodeManager),
		apps:       make(map[int]*Application),
		tenantUse:  make(map[string]int),
		tenantCost: make(map[string]*TenantCost),
	}
	now := eng.Now()
	for _, n := range c.Nodes() {
		nm := &nodeManager{
			id:         n.ID,
			totalCores: n.Spec.VCores,
			totalMem:   n.Spec.MemMB,
			freeCores:  n.Spec.VCores,
			freeMem:    n.Spec.MemMB,
			running:    make(map[int64]*Container),
			joinedAt:   now,
			busyMark:   now,
			bucket:     -1,
		}
		rm.nms[n.ID] = nm
		rm.order = append(rm.order, n.ID)
		rm.idxSync(nm)
	}
	sort.Strings(rm.order)
	return rm
}

// OnMembership registers a listener for node join/drain/leave events.
// Listeners fire synchronously, in registration order, after the RM state
// change they describe.
func (rm *ResourceManager) OnMembership(fn MembershipListener) {
	rm.membership = append(rm.membership, fn)
}

func (rm *ResourceManager) notifyMembership(node, event string) {
	now := rm.eng.Now()
	for _, fn := range rm.membership {
		fn(now, node, event)
	}
}

// accrueBusy brings a node's busy-core integral up to now. It must run
// before every capacity change on the node and before reading cost totals.
func (rm *ResourceManager) accrueBusy(nm *nodeManager) {
	now := rm.eng.Now()
	if !nm.dead {
		nm.busyCoreSec += float64(nm.totalCores-nm.freeCores) * (now - nm.busyMark)
	}
	nm.busyMark = now
}

// chargeTenant attributes a finished (released or lost) container's core
// usage to its tenant, split by the hosting node's class. Containers with
// zero vcores (thin AMs) cost nothing, matching the busy-core integral.
func (rm *ResourceManager) chargeTenant(c *Container, spot bool) {
	coreSec := float64(c.Resource.VCores) * (rm.eng.Now() - c.allocAt)
	if coreSec == 0 {
		return
	}
	tc := rm.tenantCost[c.Tenant]
	if tc == nil {
		tc = &TenantCost{}
		rm.tenantCost[c.Tenant] = tc
	}
	if spot {
		tc.SpotCoreSec += coreSec
	} else {
		tc.OnDemandCoreSec += coreSec
	}
}

// finalizeNodeCost folds a departing (killed or removed) node's alive time
// and busy integral into the RM-wide sums. Must run after accrueBusy and at
// most once per node incarnation.
func (rm *ResourceManager) finalizeNodeCost(nm *nodeManager) {
	alive := rm.eng.Now() - nm.joinedAt
	if nm.spot {
		rm.spotNodeSec += alive
		rm.spotBusySec += nm.busyCoreSec
	} else {
		rm.onDemandNodeSec += alive
		rm.onDemandBusySec += nm.busyCoreSec
	}
	nm.busyCoreSec = 0
	nm.joinedAt = rm.eng.Now()
}

// AddNode registers a node that joined the cluster mid-run. spot marks it as
// a preemptible spot instance for cost accounting and chaos targeting. A
// node may rejoin under the ID of a previously killed or removed node — the
// new incarnation starts with full capacity and fresh cost accounting.
// Adding over a live registration is an error.
func (rm *ResourceManager) AddNode(nodeID string, vcores, memMB int, spot bool) error {
	if vcores <= 0 || memMB <= 0 {
		return fmt.Errorf("yarn: node %s needs positive capacity, got %d vcores / %d MB", nodeID, vcores, memMB)
	}
	if old := rm.nms[nodeID]; old != nil {
		if !old.dead {
			return fmt.Errorf("yarn: node %s already registered", nodeID)
		}
		// Dead incarnation: its cost was finalized at kill time; replace it.
		delete(rm.nms, nodeID)
		rm.dropFromOrder(nodeID)
	}
	now := rm.eng.Now()
	nm := &nodeManager{
		id:         nodeID,
		totalCores: vcores,
		totalMem:   memMB,
		freeCores:  vcores,
		freeMem:    memMB,
		spot:       spot,
		running:    make(map[int64]*Container),
		joinedAt:   now,
		busyMark:   now,
		bucket:     -1,
	}
	rm.nms[nodeID] = nm
	rm.idxSync(nm)
	i := sort.SearchStrings(rm.order, nodeID)
	rm.order = append(rm.order, "")
	copy(rm.order[i+1:], rm.order[i:])
	rm.order[i] = nodeID
	if rm.obs != nil && rm.nodeAllocCs != nil {
		if _, ok := rm.nodeAllocCs[nodeID]; !ok {
			rm.nodeAllocCs[nodeID] = rm.obs.M().CounterL("hiway_yarn_node_containers_total",
				"containers allocated per node", "node", nodeID)
		}
	}
	rm.obs.T().Instant("membership", "node-joined", nodeID)
	if mh, ok := rm.audit.(MembershipAuditHook); ok {
		mh.OnNodeJoined(now, nodeID, vcores, memMB)
	}
	rm.notifyMembership(nodeID, "join")
	rm.kick()
	return nil
}

// DrainNode starts a graceful decommission: the node immediately stops
// receiving allocations, running containers keep executing, and once the
// last one releases — or deadlineSec elapses, whichever comes first — onDone
// fires (asynchronously, once) with graceful reporting whether the node
// emptied in time. On deadline expiry the remaining containers are preempted
// exactly like a spot reclaim. The node itself stays registered (draining)
// until the caller removes it; pending strict requests pinned to it are
// re-routed just as for a node failure.
func (rm *ResourceManager) DrainNode(nodeID string, deadlineSec float64, onDone func(node string, graceful bool)) error {
	nm := rm.nms[nodeID]
	if nm == nil || nm.dead {
		return fmt.Errorf("yarn: cannot drain unknown or dead node %s", nodeID)
	}
	if nm.draining {
		return fmt.Errorf("yarn: node %s already draining", nodeID)
	}
	nm.draining = true
	rm.idxSync(nm)
	nm.drainDone = onDone
	nm.drainGen++
	gen := nm.drainGen
	now := rm.eng.Now()
	rm.obs.T().Instant("membership", "node-draining", nodeID)
	if mh, ok := rm.audit.(MembershipAuditHook); ok {
		mh.OnNodeDraining(now, nodeID)
	}
	rm.notifyMembership(nodeID, "drain")
	rm.rerouteStrict(nodeID)
	if len(nm.running) == 0 {
		rm.completeDrain(nm, true)
	} else if deadlineSec > 0 {
		rm.eng.Schedule(deadlineSec, func() {
			if rm.nms[nodeID] != nm || nm.dead || !nm.draining || nm.drainGen != gen || nm.drainDone == nil {
				return
			}
			rm.preemptRunning(nm)
			rm.completeDrain(nm, false)
		})
	}
	rm.kick()
	return nil
}

// completeDrain fires the drain callback once, asynchronously.
func (rm *ResourceManager) completeDrain(nm *nodeManager, graceful bool) {
	done := nm.drainDone
	if done == nil {
		return
	}
	nm.drainDone = nil
	id := nm.id
	rm.eng.Schedule(0, func() { done(id, graceful) })
}

// preemptRunning destroys a node's running containers the way a spot
// reclaim does: capacity is not credited back (the node is leaving), tenants
// are charged for usage up to now, quota slots free, OnLost fires, and the
// preemption counter advances.
func (rm *ResourceManager) preemptRunning(nm *nodeManager) {
	rm.accrueBusy(nm)
	lost := make([]*Container, 0, len(nm.running))
	for _, c := range nm.running {
		lost = append(lost, c)
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i].ID < lost[j].ID })
	nm.running = make(map[int64]*Container)
	nm.freeCores = nm.totalCores
	nm.freeMem = nm.totalMem
	rm.idxSync(nm)
	for _, c := range lost {
		c.released = true
		rm.chargeTenant(c, nm.spot)
		rm.creditTenant(c)
		rm.preempted++
		rm.preemptedC.Inc()
		if rm.audit != nil {
			rm.audit.OnContainerLost(rm.eng.Now(), c)
		}
		if tr := rm.obs.T(); tr.Enabled() {
			tr.Arg(c.span, "preempted", "true")
			tr.End(c.span)
		}
		if c.OnLost != nil {
			cb := c.OnLost
			rm.eng.Schedule(0, cb)
		}
	}
}

// RemoveNode deregisters a node. Running containers (if any) are preempted
// — the two-phase spot flow is notice (DrainNode) followed by RemoveNode at
// the reclaim instant, and an un-noticed hard reclaim is simply RemoveNode
// alone. Removing a dead node just deletes its bookkeeping (its containers
// were already lost at kill time). All per-node index state is deleted so
// long elastic runs stay bounded.
func (rm *ResourceManager) RemoveNode(nodeID string) error {
	nm := rm.nms[nodeID]
	if nm == nil {
		return fmt.Errorf("yarn: cannot remove unknown node %s", nodeID)
	}
	if !nm.dead {

		rm.preemptRunning(nm)
		rm.accrueBusy(nm)
		rm.finalizeNodeCost(nm)
		nm.drainDone = nil // a pending drain callback is superseded by removal
	}
	rm.idxRemove(nm)
	delete(rm.nms, nodeID)
	rm.dropFromOrder(nodeID)
	delete(rm.nodeAllocCs, nodeID)
	rm.rerouteStrict(nodeID)
	now := rm.eng.Now()
	rm.obs.T().Instant("membership", "node-removed", nodeID)
	if mh, ok := rm.audit.(MembershipAuditHook); ok {
		mh.OnNodeRemoved(now, nodeID)
	}
	rm.notifyMembership(nodeID, "leave")
	rm.kick()
	return nil
}

func (rm *ResourceManager) dropFromOrder(nodeID string) {
	for i, id := range rm.order {
		if id == nodeID {
			rm.order = append(rm.order[:i], rm.order[i+1:]...)
			return
		}
	}
}

// rerouteStrict re-routes pending strict requests pinned to a node that can
// no longer host them — withdrawn through OnUnplaceable when set, relaxed to
// run anywhere otherwise.
func (rm *ResourceManager) rerouteStrict(nodeID string) {
	kept := rm.pending[:0]
	for _, p := range rm.pending {
		if !p.req.Strict || p.req.NodeHint != nodeID {
			kept = append(kept, p)
			continue
		}
		if cb := p.req.OnUnplaceable; cb != nil {
			req := p.req
			rm.eng.Schedule(0, func() { cb(req) })
			continue // withdrawn; the owner re-requests
		}
		p.req.Strict = false
		p.req.NodeHint = ""
		kept = append(kept, p)
	}
	rm.pending = kept
}

// Application is one submitted app (one Hi-WAY AM per workflow).
type Application struct {
	rm   *ResourceManager
	ID   int
	Name string
	// Tenant is the submitting tenant ("" for untenanted apps); worker
	// containers of the application count against the tenant's quota.
	Tenant string
	// AMContainer hosts the application master itself.
	AMContainer *Container
	finished    bool
}

// SubmitApplication registers an untenanted application and synchronously
// allocates its AM container on the emptiest node (or a specific node if
// amNode is non-empty). It fails if no node can host the AM.
func (rm *ResourceManager) SubmitApplication(name, amNode string) (*Application, error) {
	return rm.SubmitApplicationFor("", name, amNode)
}

// SubmitApplicationFor registers an application on behalf of a tenant. The
// tenant's policy in Config.Tenants (if any) governs the fair-share weight
// and quota cap of the application's worker containers; the AM container
// itself is exempt from the quota.
func (rm *ResourceManager) SubmitApplicationFor(tenant, name, amNode string) (*Application, error) {
	rm.nextApp++
	app := &Application{rm: rm, ID: rm.nextApp, Name: name, Tenant: tenant}
	var nm *nodeManager
	if amNode != "" {
		cand := rm.nms[amNode]
		if cand == nil || cand.dead || cand.draining {
			return nil, fmt.Errorf("yarn: AM node %q unavailable", amNode)
		}
		if !rm.cfg.AMResource.Fits(cand.freeCores, cand.freeMem) {
			return nil, fmt.Errorf("yarn: AM node %q lacks capacity for %v", amNode, rm.cfg.AMResource)
		}
		nm = cand
	} else {
		nm = rm.pickNode(rm.cfg.AMResource, "", false)
		if nm == nil {
			return nil, fmt.Errorf("yarn: no capacity for AM container %v", rm.cfg.AMResource)
		}
	}
	app.AMContainer = rm.allocateOn(nm, app, rm.cfg.AMResource, true)
	rm.apps[app.ID] = app
	return app, nil
}

// Request queues a container request; onAllocated fires (after at least one
// heartbeat) once a container is placed.
func (a *Application) Request(req Request, onAllocated func(*Container)) {
	if a.finished {
		return
	}
	if req.Resource.VCores <= 0 {
		req.Resource.VCores = 1
	}
	if req.Resource.MemMB <= 0 {
		req.Resource.MemMB = 1024
	}
	a.rm.nextSeq++
	a.rm.requestsC.Inc()
	p := a.rm.newPendingReq()
	*p = pendingReq{app: a, req: req, onOK: onAllocated, seq: a.rm.nextSeq, at: a.rm.eng.Now()}
	a.rm.pending = append(a.rm.pending, p)
	a.rm.kick()
}

// PendingRequests returns the number of queued, unallocated requests for
// this application.
func (a *Application) PendingRequests() int {
	n := 0
	for _, p := range a.rm.pending {
		if p.app == a {
			n++
		}
	}
	return n
}

// Release returns a container's resources to its node and triggers a new
// allocation round. Releasing twice is a no-op.
func (a *Application) Release(c *Container) {
	if c == nil {
		return
	}
	if c.released {
		if a.rm.audit != nil {
			a.rm.audit.OnContainerReleased(a.rm.eng.Now(), c, true)
		}
		return
	}
	c.released = true
	a.rm.obs.T().End(c.span)
	a.rm.creditTenant(c)
	nm := a.rm.nms[c.NodeID]
	if nm != nil {
		delete(nm.running, c.ID)
		if !nm.dead {
			a.rm.accrueBusy(nm)
			a.rm.chargeTenant(c, nm.spot)
			nm.freeCores += c.Resource.VCores + a.rm.releaseSkew
			nm.freeMem += c.Resource.MemMB
			a.rm.idxSync(nm)
		}
	}
	// The audit hook fires after accounting so a capacity cross-check at
	// this instant sees the post-release state.
	if a.rm.audit != nil {
		a.rm.audit.OnContainerReleased(a.rm.eng.Now(), c, false)
	}
	if nm != nil && nm.draining && !nm.dead && len(nm.running) == 0 {
		a.rm.completeDrain(nm, true)
	}
	a.rm.kick()
}

// Finish releases the AM container and drops any outstanding requests.
func (a *Application) Finish() {
	if a.finished {
		return
	}
	a.finished = true
	kept := a.rm.pending[:0]
	for _, p := range a.rm.pending {
		if p.app != a {
			kept = append(kept, p)
		}
	}
	a.rm.pending = kept
	a.Release(a.AMContainer)
	delete(a.rm.apps, a.ID)
}

// kick schedules an allocation round one heartbeat from now (coalesced).
func (rm *ResourceManager) kick() {
	if rm.allocPending {
		return
	}
	rm.allocPending = true
	rm.eng.Schedule(rm.cfg.HeartbeatSec, func() {
		rm.allocPending = false
		rm.allocate()
	})
}

// allocate matches pending requests to free capacity — in FIFO order, or
// (tenant-weighted) round-robin across applications when fair sharing is
// configured. Requests of tenants at their quota cap are passed over and
// stay pending; releasing one of the tenant's containers re-kicks the round.
func (rm *ResourceManager) allocate() {
	order := rm.pending
	if rm.cfg.Fair {
		order = fairOrder(rm.pending, rm.cfg.Tenants)
	}
	satisfied := rm.satScratch[:0]
	containers := rm.ctrScratch[:0]
	for _, p := range order {
		if rm.tenantAtCap(p.app.Tenant) {
			continue
		}
		nm := rm.pickNode(p.req.Resource, p.req.NodeHint, p.req.Strict)
		if nm == nil {
			continue
		}
		c := rm.allocateOn(nm, p.app, p.req.Resource, false)
		lat := rm.eng.Now() - p.at
		rm.allocLatH.Observe(lat)
		rm.allocLatEWMA = 0.8*rm.allocLatEWMA + 0.2*lat
		p.taken = true
		satisfied = append(satisfied, p)
		containers = append(containers, c)
	}
	kept := rm.pending[:0]
	for _, p := range rm.pending {
		if !p.taken {
			kept = append(kept, p)
		}
	}
	for i := len(kept); i < len(rm.pending); i++ {
		rm.pending[i] = nil
	}
	rm.pending = kept
	// Callbacks after queue surgery so they can request more containers.
	for i, p := range satisfied {
		if p.onOK != nil {
			p.onOK(containers[i])
		}
		// The request record is unreferenced once its callback ran; recycle.
		*p = pendingReq{}
		rm.reqFree = append(rm.reqFree, p)
		satisfied[i] = nil
		containers[i] = nil
	}
	rm.satScratch = satisfied[:0]
	rm.ctrScratch = containers[:0]
}

// fairOrder orders pending requests for one allocation round. Within a
// tenant, requests interleave round-robin across applications (apps ordered
// by ID, requests within an app in arrival order). Across tenants, each
// round serves up to Weight requests per positively weighted tenant
// (tenants in name order); zero-weight (background) tenants follow after
// every weighted tenant's requests, one per round. Without tenant
// configuration every application belongs to the anonymous weight-1 tenant
// and the order degenerates to the classic per-application round-robin.
func fairOrder(pending []*pendingReq, tenants map[string]TenantPolicy) []*pendingReq {
	// Group by tenant, then flatten each tenant into its own
	// per-application round-robin stream.
	perTenant := make(map[string]map[int][]*pendingReq)
	var names []string
	for _, p := range pending {
		tn := p.app.Tenant
		apps, ok := perTenant[tn]
		if !ok {
			apps = make(map[int][]*pendingReq)
			perTenant[tn] = apps
			names = append(names, tn)
		}
		apps[p.app.ID] = append(apps[p.app.ID], p)
	}
	sort.Strings(names)
	streams := make(map[string][]*pendingReq, len(names))
	for tn, apps := range perTenant {
		ids := make([]int, 0, len(apps))
		total := 0
		for id, q := range apps {
			ids = append(ids, id)
			total += len(q)
		}
		sort.Ints(ids)
		s := make([]*pendingReq, 0, total)
		for round := 0; len(s) < total; round++ {
			for _, id := range ids {
				if q := apps[id]; round < len(q) {
					s = append(s, q[round])
				}
			}
		}
		streams[tn] = s
	}
	weight := func(tn string) int {
		pol, ok := tenants[tn]
		if !ok {
			return 1
		}
		if pol.Weight < 0 {
			return 0
		}
		return pol.Weight
	}
	out := make([]*pendingReq, 0, len(pending))
	idx := make(map[string]int, len(names))
	// Weighted tenants: up to Weight requests per tenant per round.
	for {
		progressed := false
		for _, tn := range names {
			w := weight(tn)
			for k := 0; k < w && idx[tn] < len(streams[tn]); k++ {
				out = append(out, streams[tn][idx[tn]])
				idx[tn]++
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	// Background (zero-weight) tenants: whatever remains, one per round.
	for len(out) < len(pending) {
		for _, tn := range names {
			if idx[tn] < len(streams[tn]) {
				out = append(out, streams[tn][idx[tn]])
				idx[tn]++
			}
		}
	}
	return out
}

// tenantAtCap reports whether the tenant's worker-container quota is
// exhausted. Untenanted and uncapped tenants are never at cap.
func (rm *ResourceManager) tenantAtCap(tenant string) bool {
	pol, ok := rm.cfg.Tenants[tenant]
	if !ok || pol.MaxContainers <= 0 {
		return false
	}
	return rm.tenantUse[tenant] >= pol.MaxContainers
}

// creditTenant returns a worker container's quota slot to its tenant.
func (rm *ResourceManager) creditTenant(c *Container) {
	if c.AM || c.Tenant == "" {
		return
	}
	rm.tenantUse[c.Tenant]--
}

// TenantContainers returns the number of live (allocated, unreleased)
// worker containers currently charged to the tenant — the quantity
// TenantPolicy.MaxContainers caps. AM containers are exempt.
func (rm *ResourceManager) TenantContainers(tenant string) int {
	return rm.tenantUse[tenant]
}

// newPendingReq takes a request record from the free list, or allocates.
func (rm *ResourceManager) newPendingReq() *pendingReq {
	if n := len(rm.reqFree); n > 0 {
		p := rm.reqFree[n-1]
		rm.reqFree[n-1] = nil
		rm.reqFree = rm.reqFree[:n-1]
		return p
	}
	return &pendingReq{}
}

// idxBucket maps a free-core count into the index range.
func (rm *ResourceManager) idxBucket(freeCores int) int {
	if freeCores < 0 {
		return 0
	}
	if n := len(rm.freeIdx); freeCores >= n {
		return n - 1
	}
	return freeCores
}

// idxSync reconciles a node's position in the free-cores index with its
// current state. Call after any change to freeCores, dead, or draining.
func (rm *ResourceManager) idxSync(nm *nodeManager) {
	want := -1
	if !nm.dead && !nm.draining {
		if nm.totalCores >= len(rm.freeIdx) {
			rm.growIdx(nm.totalCores)
		}
		want = rm.idxBucket(nm.freeCores)
	}
	if nm.bucket == want {
		return
	}
	rm.idxRemove(nm)
	nm.bucket = want
	if want >= 0 {
		nm.bucketPos = len(rm.freeIdx[want])
		rm.freeIdx[want] = append(rm.freeIdx[want], nm)
	}
}

// idxRemove unlinks a node from the free-cores index (no-op if absent).
func (rm *ResourceManager) idxRemove(nm *nodeManager) {
	if nm.bucket < 0 {
		return
	}
	b := rm.freeIdx[nm.bucket]
	last := len(b) - 1
	moved := b[last]
	b[nm.bucketPos] = moved
	moved.bucketPos = nm.bucketPos
	b[last] = nil
	rm.freeIdx[nm.bucket] = b[:last]
	nm.bucket = -1
}

// growIdx widens the index to cover nodes with more cores than any seen so
// far; existing buckets keep their contents.
func (rm *ResourceManager) growIdx(maxCores int) {
	for len(rm.freeIdx) <= maxCores {
		rm.freeIdx = append(rm.freeIdx, nil)
	}
}

// pickNode chooses a node for the resource. With strict placement only the
// hinted node qualifies. Otherwise the hint is preferred if it fits, then
// the node with the most free cores (ties: more free memory, then ID). The
// bucketed index narrows the search to the highest non-empty free-cores
// bucket; scanning that one bucket for the (freeMem, ID) winner keeps the
// choice identical to the old full scan over every node.
func (rm *ResourceManager) pickNode(res Resource, hint string, strict bool) *nodeManager {
	if strict {
		nm := rm.nms[hint]
		if nm != nil && !nm.dead && !nm.draining && res.Fits(nm.freeCores, nm.freeMem) {
			return nm
		}
		return nil
	}
	if hint != "" {
		if nm := rm.nms[hint]; nm != nil && !nm.dead && !nm.draining && res.Fits(nm.freeCores, nm.freeMem) {
			return nm
		}
	}
	for k := len(rm.freeIdx) - 1; k >= res.VCores; k-- {
		var best *nodeManager
		for _, nm := range rm.freeIdx[k] {
			if !res.Fits(nm.freeCores, nm.freeMem) {
				continue
			}
			if best == nil || nm.freeMem > best.freeMem ||
				(nm.freeMem == best.freeMem && nm.id < best.id) {
				best = nm
			}
		}
		if best != nil {
			return best
		}
	}
	return nil
}

func (rm *ResourceManager) allocateOn(nm *nodeManager, app *Application, res Resource, am bool) *Container {
	rm.accrueBusy(nm)
	nm.freeCores -= res.VCores
	nm.freeMem -= res.MemMB
	rm.idxSync(nm)
	rm.nextContainer++
	rm.Allocated++
	c := &Container{ID: rm.nextContainer, NodeID: nm.id, Resource: res, AppID: app.ID, Tenant: app.Tenant, AM: am, allocAt: rm.eng.Now()}
	if !am && app.Tenant != "" {
		rm.tenantUse[app.Tenant]++
	}
	nm.running[c.ID] = c
	rm.allocatedC.Inc()
	rm.nodeAllocCs[nm.id].Inc()
	if tr := rm.obs.T(); tr.Enabled() {
		c.span = tr.Begin("container", "c"+strconv.FormatInt(c.ID, 10), nm.id, 0)
		tr.ArgInt(c.span, "vcores", int64(res.VCores))
		tr.ArgInt(c.span, "memMB", int64(res.MemMB))
	}
	if rm.audit != nil {
		rm.audit.OnContainerAllocated(rm.eng.Now(), c)
	}
	return c
}

// KillNode fails a node: running containers are lost (OnLost fires), no new
// containers are placed there, and pending strict requests pinned to it are
// re-routed — withdrawn through their OnUnplaceable callback when set,
// relaxed to run anywhere otherwise — so they cannot silently starve.
func (rm *ResourceManager) KillNode(nodeID string) {
	nm := rm.nms[nodeID]
	if nm == nil || nm.dead {
		return
	}
	rm.accrueBusy(nm)
	rm.finalizeNodeCost(nm)
	nm.dead = true
	nm.freeCores = 0
	nm.freeMem = 0
	rm.idxSync(nm)
	if nm.drainDone != nil {
		// A crash during graceful decommission ends the drain ungracefully.
		rm.completeDrain(nm, false)
	}
	rm.killedC.Inc()
	if rm.audit != nil {
		rm.audit.OnNodeDead(rm.eng.Now(), nodeID)
	}
	rm.obs.T().Instant("fault", "node-killed", nodeID)
	lost := make([]*Container, 0, len(nm.running))
	for _, c := range nm.running {
		lost = append(lost, c)
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i].ID < lost[j].ID })
	nm.running = make(map[int64]*Container)
	for _, c := range lost {
		c.released = true
		// The node's capacity is gone, but the tenant's quota slot frees:
		// the container no longer runs anywhere. Usage up to the crash is
		// still charged — the tenant occupied the cores until now.
		rm.chargeTenant(c, nm.spot)
		rm.creditTenant(c)
		rm.lostC.Inc()
		if rm.audit != nil {
			rm.audit.OnContainerLost(rm.eng.Now(), c)
		}
		if tr := rm.obs.T(); tr.Enabled() {
			tr.Arg(c.span, "lost", "true")
			tr.End(c.span)
		}
		if c.OnLost != nil {
			cb := c.OnLost
			rm.eng.Schedule(0, cb)
		}
	}
	// Re-route pending strict requests pinned to the dead node.
	rm.rerouteStrict(nodeID)
	rm.kick()
}

// RunningContainers returns the number of live (allocated, unreleased)
// containers across all nodes, including AM containers — the quantity leak
// tests assert returns to zero after workflows finish.
func (rm *ResourceManager) RunningContainers() int {
	n := 0
	for _, id := range rm.order {
		n += len(rm.nms[id].running)
	}
	return n
}

// FreeCapacity returns the free cores and memory on a node (0,0 if dead or
// unknown).
func (rm *ResourceManager) FreeCapacity(nodeID string) (cores, memMB int) {
	nm := rm.nms[nodeID]
	if nm == nil || nm.dead {
		return 0, 0
	}
	return nm.freeCores, nm.freeMem
}

// LiveNodes returns the IDs of nodes eligible for new allocations — not
// killed, not draining, not removed — sorted.
func (rm *ResourceManager) LiveNodes() []string {
	out := make([]string, 0, len(rm.order))
	for _, id := range rm.order {
		nm := rm.nms[id]
		if !nm.dead && !nm.draining {
			out = append(out, id)
		}
	}
	return out
}

// SpotNodes returns the IDs of live spot nodes that are not yet draining —
// the candidate set for a spot-market preemption notice — sorted.
func (rm *ResourceManager) SpotNodes() []string {
	out := make([]string, 0, len(rm.order))
	for _, id := range rm.order {
		nm := rm.nms[id]
		if nm.spot && !nm.dead && !nm.draining {
			out = append(out, id)
		}
	}
	return out
}

// IsDraining reports whether the node is mid graceful decommission.
func (rm *ResourceManager) IsDraining(nodeID string) bool {
	nm := rm.nms[nodeID]
	return nm != nil && nm.draining && !nm.dead
}

// NodeRunning returns the number of containers currently running on the
// node (0 for unknown or dead nodes).
func (rm *ResourceManager) NodeRunning(nodeID string) int {
	nm := rm.nms[nodeID]
	if nm == nil || nm.dead {
		return 0
	}
	return len(nm.running)
}

// RegisteredNodes returns how many nodes the RM currently tracks, including
// dead and draining ones — the quantity the bounded-state regression test
// asserts on.
func (rm *ResourceManager) RegisteredNodes() int { return len(rm.nms) }

// QueuedRequests returns the RM-wide count of pending, unallocated container
// requests — an autoscaling pressure signal.
func (rm *ResourceManager) QueuedRequests() int { return len(rm.pending) }

// Preempted returns how many running containers were preempted by node
// removal (spot reclaim or drain-deadline expiry) over the RM's lifetime.
func (rm *ResourceManager) Preempted() int { return rm.preempted }

// AllocLatencyEWMA returns an exponentially weighted moving average of
// recent request→allocation latencies in virtual seconds (0 before the
// first allocation) — an autoscaling pressure signal.
func (rm *ResourceManager) AllocLatencyEWMA() float64 { return rm.allocLatEWMA }

// TenantCost is one tenant's accumulated container usage in core-seconds,
// split by the class of node the containers ran on.
type TenantCost struct {
	OnDemandCoreSec float64 `json:"on_demand_core_sec"`
	SpotCoreSec     float64 `json:"spot_core_sec"`
}

// CostReport is a snapshot of the RM's cost accounting. Node-seconds bill
// wall-clock node lifetime by class (the cloud bill); core-seconds meter
// allocated capacity (the attribution). Conservation: the sum over tenants
// of core-seconds equals the cluster busy-core integral, per class — no
// usage is lost or double-billed, even across joins, drains, reclaims, and
// crashes.
type CostReport struct {
	OnDemandNodeSec float64               `json:"on_demand_node_sec"` // alive node-seconds, on-demand
	SpotNodeSec     float64               `json:"spot_node_sec"`      // alive node-seconds, spot
	OnDemandBusySec float64               `json:"on_demand_busy_sec"` // busy core-seconds, on-demand
	SpotBusySec     float64               `json:"spot_busy_sec"`      // busy core-seconds, spot
	Tenants         map[string]TenantCost `json:"tenants"`            // per-tenant usage ("" = untenanted apps)
}

// CostUnits converts the bill to abstract cost units: one unit per
// on-demand node-second, spotPrice units per spot node-second.
func (r CostReport) CostUnits(spotPrice float64) float64 {
	return r.OnDemandNodeSec + spotPrice*r.SpotNodeSec
}

// CostReport returns the cost accounting as of now. The snapshot is pure:
// live nodes and still-running containers contribute their usage up to the
// current instant without mutating RM state.
func (rm *ResourceManager) CostReport() CostReport {
	now := rm.eng.Now()
	rep := CostReport{
		OnDemandNodeSec: rm.onDemandNodeSec,
		SpotNodeSec:     rm.spotNodeSec,
		OnDemandBusySec: rm.onDemandBusySec,
		SpotBusySec:     rm.spotBusySec,
		Tenants:         make(map[string]TenantCost, len(rm.tenantCost)),
	}
	for tn, tc := range rm.tenantCost {
		rep.Tenants[tn] = *tc
	}
	for _, id := range rm.order {
		nm := rm.nms[id]
		if nm.dead {
			continue // finalized at kill time
		}
		alive := now - nm.joinedAt
		busy := nm.busyCoreSec + float64(nm.totalCores-nm.freeCores)*(now-nm.busyMark)
		if nm.spot {
			rep.SpotNodeSec += alive
			rep.SpotBusySec += busy
		} else {
			rep.OnDemandNodeSec += alive
			rep.OnDemandBusySec += busy
		}
		// Iterate running containers in ID order so float accumulation is
		// identical across runs (map order would not be).
		ids := make([]int64, 0, len(nm.running))
		for cid := range nm.running {
			ids = append(ids, cid)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, cid := range ids {
			c := nm.running[cid]
			coreSec := float64(c.Resource.VCores) * (now - c.allocAt)
			if coreSec == 0 {
				continue
			}
			tc := rep.Tenants[c.Tenant]
			if nm.spot {
				tc.SpotCoreSec += coreSec
			} else {
				tc.OnDemandCoreSec += coreSec
			}
			rep.Tenants[c.Tenant] = tc
		}
	}
	return rep
}
