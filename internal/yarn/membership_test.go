package yarn

import (
	"fmt"
	"testing"
)

func TestAddNodeJoinsAndAllocates(t *testing.T) {
	eng, rm := newRM(t, 1, spec4(), Config{})
	if err := rm.AddNode("node-01", 4, 4096, true); err != nil {
		t.Fatal(err)
	}
	if got := rm.LiveNodes(); len(got) != 2 {
		t.Fatalf("live = %v, want 2 nodes", got)
	}
	if got := rm.SpotNodes(); len(got) != 1 || got[0] != "node-01" {
		t.Fatalf("spot = %v, want [node-01]", got)
	}
	if err := rm.AddNode("node-01", 4, 4096, false); err == nil {
		t.Fatal("expected error re-adding a live node")
	}
	// The new node is allocatable.
	app, err := rm.SubmitApplication("wf", "node-01")
	if err != nil {
		t.Fatal(err)
	}
	_ = app
	eng.Run()
}

func TestDrainNodeStopsAllocationsAndCompletes(t *testing.T) {
	eng, rm := newRM(t, 2, spec4(), Config{})
	app, err := rm.SubmitApplication("wf", "node-00")
	if err != nil {
		t.Fatal(err)
	}
	var c *Container
	app.Request(Request{Resource: Resource{VCores: 1, MemMB: 512}, NodeHint: "node-01", Strict: true}, func(got *Container) { c = got })
	eng.Run()
	if c == nil || c.NodeID != "node-01" {
		t.Fatalf("container = %+v, want on node-01", c)
	}

	var drained []string
	graceful := false
	// deadline 0: no forced deadline — the drain only completes when the
	// node empties (the spot-notice flow, where the market ends the drain).
	if err := rm.DrainNode("node-01", 0, func(node string, g bool) { drained = append(drained, node); graceful = g }); err != nil {
		t.Fatal(err)
	}
	if got := rm.LiveNodes(); len(got) != 1 || got[0] != "node-00" {
		t.Fatalf("live during drain = %v, want [node-00]", got)
	}
	if !rm.IsDraining("node-01") {
		t.Fatal("node-01 should be draining")
	}
	// New requests route elsewhere or wait; the draining node gets nothing.
	var c2 *Container
	app.Request(Request{Resource: Resource{VCores: 1, MemMB: 512}}, func(got *Container) { c2 = got })
	eng.Run()
	if c2 == nil || c2.NodeID != "node-00" {
		t.Fatalf("post-drain allocation on %v, want node-00", c2)
	}
	if len(drained) != 0 {
		t.Fatal("drain must not complete while the container runs")
	}
	app.Release(c)
	eng.Run()
	if len(drained) != 1 || drained[0] != "node-01" || !graceful {
		t.Fatalf("drain completion = %v graceful=%v, want [node-01] true", drained, graceful)
	}
}

func TestDrainDeadlineExpiryPreempts(t *testing.T) {
	eng, rm := newRM(t, 2, spec4(), Config{})
	app, err := rm.SubmitApplication("wf", "node-00")
	if err != nil {
		t.Fatal(err)
	}
	var c *Container
	lost := 0
	app.Request(Request{Resource: Resource{VCores: 1, MemMB: 512}, NodeHint: "node-01", Strict: true}, func(got *Container) {
		c = got
		c.OnLost = func() { lost++ }
	})
	eng.Run()
	if c == nil {
		t.Fatal("no container")
	}
	graceful := true
	done := 0
	if err := rm.DrainNode("node-01", 30, func(node string, g bool) { done++; graceful = g }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if done != 1 || graceful {
		t.Fatalf("done=%d graceful=%v, want 1 false", done, graceful)
	}
	if lost != 1 {
		t.Fatalf("OnLost fired %d times, want 1 (preempted at deadline)", lost)
	}
}

func TestDrainEmptyNodeCompletesImmediately(t *testing.T) {
	eng, rm := newRM(t, 2, spec4(), Config{})
	done := 0
	graceful := false
	if err := rm.DrainNode("node-01", 60, func(node string, g bool) { done++; graceful = g }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if done != 1 || !graceful {
		t.Fatalf("done=%d graceful=%v, want 1 true", done, graceful)
	}
	if err := rm.DrainNode("node-01", 60, func(string, bool) {}); err == nil {
		t.Fatal("expected error draining an already-draining node")
	}
}

func TestRemoveNodePreemptsAndCleansState(t *testing.T) {
	eng, rm := newRM(t, 3, spec4(), Config{})
	app, err := rm.SubmitApplication("wf", "node-00")
	if err != nil {
		t.Fatal(err)
	}
	var c *Container
	lost := 0
	app.Request(Request{Resource: Resource{VCores: 2, MemMB: 1024}, NodeHint: "node-02", Strict: true}, func(got *Container) {
		c = got
		c.OnLost = func() { lost++ }
	})
	eng.Run()
	if c == nil || c.NodeID != "node-02" {
		t.Fatalf("container = %+v, want on node-02", c)
	}
	before := rm.RegisteredNodes()
	if err := rm.RemoveNode("node-02"); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if lost != 1 {
		t.Fatalf("OnLost fired %d times, want 1", lost)
	}
	if rm.RegisteredNodes() != before-1 {
		t.Fatalf("registered = %d, want %d", rm.RegisteredNodes(), before-1)
	}
	if cores, mem := rm.FreeCapacity("node-02"); cores != 0 || mem != 0 {
		t.Fatalf("removed node capacity = %d/%d, want 0/0", cores, mem)
	}
	if err := rm.RemoveNode("node-02"); err == nil {
		t.Fatal("expected error removing an unknown node")
	}
	// Releasing the preempted container later is a harmless no-op.
	app.Release(c)
}

func TestRejoinAfterRemoveAndAfterKill(t *testing.T) {
	eng, rm := newRM(t, 2, spec4(), Config{})
	if err := rm.RemoveNode("node-01"); err != nil {
		t.Fatal(err)
	}
	if err := rm.AddNode("node-01", 8, 8192, true); err != nil {
		t.Fatalf("rejoin after remove: %v", err)
	}
	if cores, mem := rm.FreeCapacity("node-01"); cores != 8 || mem != 8192 {
		t.Fatalf("rejoined capacity = %d/%d, want 8/8192", cores, mem)
	}
	rm.KillNode("node-01")
	if err := rm.AddNode("node-01", 4, 4096, false); err != nil {
		t.Fatalf("rejoin after kill: %v", err)
	}
	if cores, _ := rm.FreeCapacity("node-01"); cores != 4 {
		t.Fatalf("second rejoin capacity = %d, want 4", cores)
	}
	eng.Run()
}

// TestChurnKeepsStateBounded is the regression test for the node-removal
// satellite: joining and leaving 1k nodes must not leak per-node entries in
// the RM's index maps.
func TestChurnKeepsStateBounded(t *testing.T) {
	eng, rm := newRM(t, 2, spec4(), Config{})
	const churn = 1000
	for i := 0; i < churn; i++ {
		id := fmt.Sprintf("churn-%04d", i)
		if err := rm.AddNode(id, 2, 2048, i%2 == 0); err != nil {
			t.Fatal(err)
		}
		if err := rm.RemoveNode(id); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if got := rm.RegisteredNodes(); got != 2 {
		t.Fatalf("registered after churn = %d, want 2", got)
	}
	if got := len(rm.order); got != 2 {
		t.Fatalf("order after churn = %d entries, want 2", got)
	}
	if got := len(rm.nodeAllocCs); got != 0 {
		t.Fatalf("nodeAllocCs after churn = %d entries, want 0 (obs off)", got)
	}
	// Cost accounting must survive churn with zero busy usage.
	rep := rm.CostReport()
	if rep.OnDemandBusySec != 0 || rep.SpotBusySec != 0 {
		t.Fatalf("busy sec = %g/%g, want 0/0", rep.OnDemandBusySec, rep.SpotBusySec)
	}
}

// TestCostConservation checks the invariant the verifier audits end to end:
// summed per-tenant core-seconds equal the cluster busy-core integral, per
// node class, across allocation, release, drain preemption, and node death.
func TestCostConservation(t *testing.T) {
	eng, rm := newRM(t, 2, spec4(), Config{Tenants: map[string]TenantPolicy{"a": {Weight: 1}}})
	if err := rm.AddNode("spot-00", 4, 4096, true); err != nil {
		t.Fatal(err)
	}
	app, err := rm.SubmitApplicationFor("a", "wf", "node-00")
	if err != nil {
		t.Fatal(err)
	}
	var c1, c2 *Container
	app.Request(Request{Resource: Resource{VCores: 2, MemMB: 1024}, NodeHint: "node-01", Strict: true}, func(c *Container) { c1 = c })
	app.Request(Request{Resource: Resource{VCores: 2, MemMB: 1024}, NodeHint: "spot-00", Strict: true}, func(c *Container) { c2 = c })
	eng.Run()
	if c1 == nil || c2 == nil {
		t.Fatal("containers not allocated")
	}
	eng.Schedule(100, func() { app.Release(c1) })
	eng.Schedule(150, func() { rm.RemoveNode("spot-00") }) // preempts c2
	eng.Run()
	eng.Schedule(50, func() {})
	eng.Run()

	rep := rm.CostReport()
	var tenantOnDemand, tenantSpot float64
	for _, tc := range rep.Tenants {
		tenantOnDemand += tc.OnDemandCoreSec
		tenantSpot += tc.SpotCoreSec
	}
	if diff := tenantOnDemand - rep.OnDemandBusySec; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("on-demand: tenants=%g busy=%g", tenantOnDemand, rep.OnDemandBusySec)
	}
	if diff := tenantSpot - rep.SpotBusySec; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("spot: tenants=%g busy=%g", tenantSpot, rep.SpotBusySec)
	}
	if rep.SpotNodeSec <= 0 || rep.OnDemandNodeSec <= rep.SpotNodeSec {
		t.Fatalf("node-sec = %g on-demand / %g spot: want both positive, on-demand larger", rep.OnDemandNodeSec, rep.SpotNodeSec)
	}
	if units := rep.CostUnits(0.3); units != rep.OnDemandNodeSec+0.3*rep.SpotNodeSec {
		t.Fatalf("cost units = %g", units)
	}
}

func TestDrainReroutesStrictPending(t *testing.T) {
	eng, rm := newRM(t, 2, spec4(), Config{})
	app, err := rm.SubmitApplication("wf", "node-00")
	if err != nil {
		t.Fatal(err)
	}
	// Fill node-01 so the strict request stays pending.
	var filler *Container
	app.Request(Request{Resource: Resource{VCores: 4, MemMB: 3072}, NodeHint: "node-01", Strict: true}, func(c *Container) { filler = c })
	eng.Run()
	if filler == nil {
		t.Fatal("filler not placed")
	}
	withdrawn := 0
	app.Request(Request{Resource: Resource{VCores: 1, MemMB: 512}, NodeHint: "node-01", Strict: true,
		OnUnplaceable: func(Request) { withdrawn++ }}, nil)
	eng.Run()
	if err := rm.DrainNode("node-01", 1000, func(string, bool) {}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if withdrawn != 1 {
		t.Fatalf("OnUnplaceable fired %d times, want 1", withdrawn)
	}
}
