package yarn

import (
	"testing"

	"hiway/internal/cluster"
	"hiway/internal/sim"
)

func newRM(t *testing.T, nodes int, spec cluster.NodeSpec, cfg Config) (*sim.Engine, *ResourceManager) {
	t.Helper()
	eng := sim.NewEngine()
	c, err := cluster.Uniform(eng, cluster.Config{SwitchMBps: 1000}, nodes, spec)
	if err != nil {
		t.Fatal(err)
	}
	return eng, NewResourceManager(eng, c, cfg)
}

func spec4() cluster.NodeSpec {
	return cluster.NodeSpec{VCores: 4, MemMB: 4096, CPUFactor: 1, DiskMBps: 100, NetMBps: 100}
}

func TestSubmitApplicationAllocatesAM(t *testing.T) {
	_, rm := newRM(t, 2, spec4(), Config{})
	app, err := rm.SubmitApplication("wf", "")
	if err != nil {
		t.Fatal(err)
	}
	if app.AMContainer == nil || app.AMContainer.NodeID == "" {
		t.Fatal("AM container not allocated")
	}
	cores, mem := rm.FreeCapacity(app.AMContainer.NodeID)
	if cores != 3 || mem != 4096-1024 {
		t.Fatalf("free after AM = %d cores %d MB", cores, mem)
	}
}

func TestSubmitApplicationOnSpecificNode(t *testing.T) {
	_, rm := newRM(t, 3, spec4(), Config{})
	app, err := rm.SubmitApplication("wf", "node-02")
	if err != nil {
		t.Fatal(err)
	}
	if app.AMContainer.NodeID != "node-02" {
		t.Fatalf("AM on %s, want node-02", app.AMContainer.NodeID)
	}
	if _, err := rm.SubmitApplication("wf2", "node-99"); err == nil {
		t.Fatal("expected error for unknown AM node")
	}
}

func TestSubmitApplicationNoCapacity(t *testing.T) {
	_, rm := newRM(t, 1, cluster.NodeSpec{VCores: 1, MemMB: 512, CPUFactor: 1, DiskMBps: 1, NetMBps: 1}, Config{})
	if _, err := rm.SubmitApplication("wf", ""); err == nil {
		t.Fatal("expected error: node too small for default AM container")
	}
}

func TestZeroVCoreAM(t *testing.T) {
	// A zero-vcore AM (thin JVM) must not block a full-node task
	// container on the same node.
	eng, rm := newRM(t, 1, spec4(), Config{AMResource: Resource{VCores: 0, MemMB: 512}})
	app, err := rm.SubmitApplication("wf", "node-00")
	if err != nil {
		t.Fatal(err)
	}
	if app.AMContainer.Resource.VCores != 0 {
		t.Fatalf("AM resource = %+v", app.AMContainer.Resource)
	}
	cores, mem := rm.FreeCapacity("node-00")
	if cores != 4 || mem != 4096-512 {
		t.Fatalf("free = %d cores %d MB", cores, mem)
	}
	var got *Container
	app.Request(Request{Resource: Resource{VCores: 4, MemMB: 3500}}, func(c *Container) { got = c })
	eng.Run()
	if got == nil {
		t.Fatal("full-node container should fit beside the zero-vcore AM")
	}
}

func TestRequestAllocatesAfterHeartbeat(t *testing.T) {
	eng, rm := newRM(t, 2, spec4(), Config{HeartbeatSec: 0.5})
	app, _ := rm.SubmitApplication("wf", "")
	var got *Container
	var at float64
	app.Request(Request{Resource: Resource{VCores: 1, MemMB: 1024}}, func(c *Container) {
		got = c
		at = eng.Now()
	})
	eng.Run()
	if got == nil {
		t.Fatal("container not allocated")
	}
	if at < 0.5 {
		t.Fatalf("allocated at %g, want >= heartbeat 0.5", at)
	}
}

func TestRequestDefaultsZeroResource(t *testing.T) {
	eng, rm := newRM(t, 1, spec4(), Config{})
	app, _ := rm.SubmitApplication("wf", "")
	var got *Container
	app.Request(Request{}, func(c *Container) { got = c })
	eng.Run()
	if got == nil || got.Resource.VCores != 1 || got.Resource.MemMB != 1024 {
		t.Fatalf("defaulted container = %+v", got)
	}
}

func TestRequestsQueueWhenFull(t *testing.T) {
	eng, rm := newRM(t, 1, spec4(), Config{})
	app, _ := rm.SubmitApplication("wf", "") // uses 1 core, leaves 3
	res := Resource{VCores: 3, MemMB: 1024}
	var first, second *Container
	app.Request(Request{Resource: res}, func(c *Container) { first = c })
	app.Request(Request{Resource: res}, func(c *Container) { second = c })
	eng.RunUntil(10)
	if first == nil {
		t.Fatal("first request should be satisfied")
	}
	if second != nil {
		t.Fatal("second request should wait: node is full")
	}
	if app.PendingRequests() != 1 {
		t.Fatalf("pending = %d, want 1", app.PendingRequests())
	}
	app.Release(first)
	eng.Run()
	if second == nil {
		t.Fatal("second request should be satisfied after release")
	}
}

func TestStrictPlacementWaitsForNode(t *testing.T) {
	eng, rm := newRM(t, 2, spec4(), Config{})
	app, _ := rm.SubmitApplication("wf", "node-00")
	// Fill node-01 completely.
	var filler *Container
	app.Request(Request{Resource: Resource{VCores: 4, MemMB: 4096}, NodeHint: "node-01", Strict: true},
		func(c *Container) { filler = c })
	eng.RunUntil(5)
	if filler == nil || filler.NodeID != "node-01" {
		t.Fatalf("filler = %+v", filler)
	}
	var strictC *Container
	app.Request(Request{Resource: Resource{VCores: 1, MemMB: 512}, NodeHint: "node-01", Strict: true},
		func(c *Container) { strictC = c })
	eng.RunUntil(10)
	if strictC != nil {
		t.Fatal("strict request must wait for the hinted node even with capacity elsewhere")
	}
	app.Release(filler)
	eng.Run()
	if strictC == nil || strictC.NodeID != "node-01" {
		t.Fatalf("strict request not satisfied on hinted node: %+v", strictC)
	}
}

func TestRelaxedHintFallsBack(t *testing.T) {
	eng, rm := newRM(t, 2, spec4(), Config{})
	app, _ := rm.SubmitApplication("wf", "node-00")
	var filler *Container
	app.Request(Request{Resource: Resource{VCores: 4, MemMB: 4096}, NodeHint: "node-01", Strict: true},
		func(c *Container) { filler = c })
	eng.RunUntil(5)
	var got *Container
	app.Request(Request{Resource: Resource{VCores: 1, MemMB: 512}, NodeHint: "node-01"},
		func(c *Container) { got = c })
	eng.Run()
	if got == nil || got.NodeID != "node-00" {
		t.Fatalf("relaxed hint should fall back to another node, got %+v", got)
	}
	_ = filler
}

func TestReleaseIdempotent(t *testing.T) {
	eng, rm := newRM(t, 1, spec4(), Config{})
	app, _ := rm.SubmitApplication("wf", "")
	var c *Container
	app.Request(Request{Resource: Resource{VCores: 1, MemMB: 512}}, func(x *Container) { c = x })
	eng.Run()
	app.Release(c)
	app.Release(c) // must not double-free
	cores, _ := rm.FreeCapacity("node-00")
	if cores != 3 { // 4 - AM(1)
		t.Fatalf("free cores = %d, want 3", cores)
	}
}

func TestFinishDropsPendingAndReleasesAM(t *testing.T) {
	eng, rm := newRM(t, 1, spec4(), Config{})
	app, _ := rm.SubmitApplication("wf", "")
	fired := false
	app.Request(Request{Resource: Resource{VCores: 64, MemMB: 512}}, func(*Container) { fired = true })
	app.Finish()
	eng.Run()
	if fired {
		t.Fatal("pending request fired after Finish")
	}
	cores, mem := rm.FreeCapacity("node-00")
	if cores != 4 || mem != 4096 {
		t.Fatalf("capacity not fully restored: %d cores %d MB", cores, mem)
	}
	// Requests after Finish are ignored.
	app.Request(Request{}, func(*Container) { fired = true })
	eng.Run()
	if fired {
		t.Fatal("request after Finish fired")
	}
}

func TestKillNodeNotifiesAndReallocates(t *testing.T) {
	eng, rm := newRM(t, 2, spec4(), Config{})
	app, _ := rm.SubmitApplication("wf", "node-00")
	var c *Container
	app.Request(Request{Resource: Resource{VCores: 1, MemMB: 512}, NodeHint: "node-01", Strict: true},
		func(x *Container) { c = x })
	eng.Run()
	lost := false
	c.OnLost = func() { lost = true }
	rm.KillNode("node-01")
	eng.Run()
	if !lost {
		t.Fatal("OnLost not fired")
	}
	if got := rm.LiveNodes(); len(got) != 1 || got[0] != "node-00" {
		t.Fatalf("live nodes = %v", got)
	}
	// New allocation lands on the surviving node.
	var c2 *Container
	app.Request(Request{Resource: Resource{VCores: 1, MemMB: 512}}, func(x *Container) { c2 = x })
	eng.Run()
	if c2 == nil || c2.NodeID != "node-00" {
		t.Fatalf("post-crash container = %+v", c2)
	}
}

func TestKillNodeTwiceHarmless(t *testing.T) {
	eng, rm := newRM(t, 2, spec4(), Config{})
	rm.KillNode("node-01")
	rm.KillNode("node-01")
	rm.KillNode("node-77")
	eng.Run()
	if len(rm.LiveNodes()) != 1 {
		t.Fatalf("live = %v", rm.LiveNodes())
	}
}

func TestAllocationPrefersEmptiestNode(t *testing.T) {
	eng, rm := newRM(t, 2, spec4(), Config{})
	app, _ := rm.SubmitApplication("wf", "node-00") // node-00 now has 3 free cores
	var got *Container
	app.Request(Request{Resource: Resource{VCores: 1, MemMB: 512}}, func(c *Container) { got = c })
	eng.Run()
	if got.NodeID != "node-01" {
		t.Fatalf("allocated on %s, want emptiest node-01", got.NodeID)
	}
}

func TestManyContainersAcrossNodes(t *testing.T) {
	eng, rm := newRM(t, 4, spec4(), Config{})
	app, _ := rm.SubmitApplication("wf", "node-00")
	nodes := map[string]int{}
	count := 0
	for i := 0; i < 15; i++ { // 16 total cores - 1 AM = 15
		app.Request(Request{Resource: Resource{VCores: 1, MemMB: 256}}, func(c *Container) {
			nodes[c.NodeID]++
			count++
		})
	}
	eng.Run()
	if count != 15 {
		t.Fatalf("allocated %d containers, want 15", count)
	}
	if len(nodes) != 4 {
		t.Fatalf("containers should spread over all nodes: %v", nodes)
	}
	if rm.Allocated != 16 { // incl. AM
		t.Fatalf("Allocated = %d, want 16", rm.Allocated)
	}
}

func TestFairSharingInterleavesApps(t *testing.T) {
	// One node with 4 free cores after two AMs; app1 floods the queue
	// before app2 submits a single request. FIFO starves app2; fair
	// sharing serves it in the first round.
	run := func(fair bool) (app2Got bool) {
		eng, rm := newRM(t, 1, cluster.NodeSpec{VCores: 6, MemMB: 8192, CPUFactor: 1, DiskMBps: 1, NetMBps: 1},
			Config{Fair: fair})
		app1, _ := rm.SubmitApplication("big", "")
		app2, _ := rm.SubmitApplication("small", "")
		res := Resource{VCores: 1, MemMB: 512}
		for i := 0; i < 8; i++ {
			app1.Request(Request{Resource: res}, func(c *Container) {})
		}
		app2.Request(Request{Resource: res}, func(*Container) { app2Got = true })
		// One allocation round: 4 containers fit (6 cores - 2 AMs).
		eng.RunUntil(0.3)
		return app2Got
	}
	if run(false) {
		t.Fatal("FIFO should serve app1's earlier requests first")
	}
	if !run(true) {
		t.Fatal("fair sharing should serve app2 within the first round")
	}
}

func TestFairOrderRoundRobin(t *testing.T) {
	a1 := &Application{ID: 1}
	a2 := &Application{ID: 2}
	mk := func(app *Application, seq int64) *pendingReq {
		return &pendingReq{app: app, seq: seq}
	}
	pending := []*pendingReq{mk(a1, 1), mk(a1, 2), mk(a1, 3), mk(a2, 4), mk(a2, 5)}
	got := fairOrder(pending, nil)
	wantApps := []int{1, 2, 1, 2, 1}
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
	for i, w := range wantApps {
		if got[i].app.ID != w {
			t.Fatalf("position %d: app %d, want %d", i, got[i].app.ID, w)
		}
	}
}

// TestFairOrderTenantTable pins the tenant-weighted ordering contract with
// table-driven edge cases: weighted interleave, the single-tenant degenerate
// case (plain per-app round-robin), and zero-weight background tenants
// ordered strictly after every weighted tenant's requests.
func TestFairOrderTenantTable(t *testing.T) {
	app := func(id int, tenant string) *Application { return &Application{ID: id, Tenant: tenant} }
	cases := []struct {
		name    string
		tenants map[string]TenantPolicy
		reqs    []*Application // one pending request per entry, arrival order
		want    []int          // expected app IDs in fair order
	}{
		{
			name:    "single tenant degenerates to per-app round-robin",
			tenants: map[string]TenantPolicy{"acme": {Weight: 3}},
			reqs: []*Application{
				app(1, "acme"), app(1, "acme"), app(2, "acme"), app(2, "acme"), app(1, "acme"),
			},
			want: []int{1, 2, 1, 2, 1},
		},
		{
			name:    "weight 2 tenant gets two slots per round",
			tenants: map[string]TenantPolicy{"big": {Weight: 2}, "small": {Weight: 1}},
			reqs: []*Application{
				app(1, "big"), app(1, "big"), app(1, "big"), app(1, "big"),
				app(2, "small"), app(2, "small"),
			},
			want: []int{1, 1, 2, 1, 1, 2},
		},
		{
			name:    "unconfigured tenants default to weight 1",
			tenants: nil,
			reqs: []*Application{
				app(1, "a"), app(1, "a"), app(2, "b"), app(2, "b"),
			},
			want: []int{1, 2, 1, 2},
		},
		{
			name:    "zero-weight tenant is ordered after all weighted requests",
			tenants: map[string]TenantPolicy{"bg": {Weight: 0}, "fg": {Weight: 1}},
			reqs: []*Application{
				app(1, "bg"), app(1, "bg"), app(2, "fg"), app(2, "fg"),
			},
			want: []int{2, 2, 1, 1},
		},
		{
			name:    "negative weight treated as background",
			tenants: map[string]TenantPolicy{"neg": {Weight: -1}, "fg": {Weight: 1}},
			reqs: []*Application{
				app(1, "neg"), app(2, "fg"),
			},
			want: []int{2, 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var pending []*pendingReq
			for i, a := range tc.reqs {
				pending = append(pending, &pendingReq{app: a, seq: int64(i + 1)})
			}
			got := fairOrder(pending, tc.tenants)
			if len(got) != len(tc.want) {
				t.Fatalf("len = %d, want %d", len(got), len(tc.want))
			}
			for i, w := range tc.want {
				if got[i].app.ID != w {
					ids := make([]int, len(got))
					for j, p := range got {
						ids[j] = p.app.ID
					}
					t.Fatalf("order %v, want %v", ids, tc.want)
				}
			}
		})
	}
}

// TestTenantQuotaCap exercises the hard quota path end to end: a capped
// tenant never holds more than MaxContainers worker containers at any
// instant, even with idle cluster capacity, and a queued request is served
// as soon as a slot frees.
func TestTenantQuotaCap(t *testing.T) {
	eng, rm := newRM(t, 2, spec4(), Config{
		Fair:    true,
		Tenants: map[string]TenantPolicy{"capped": {Weight: 1, MaxContainers: 2}},
	})
	appc, err := rm.SubmitApplicationFor("capped", "wf", "")
	if err != nil {
		t.Fatal(err)
	}
	res := Resource{VCores: 1, MemMB: 512}
	var got []*Container
	for i := 0; i < 4; i++ {
		appc.Request(Request{Resource: res}, func(c *Container) { got = append(got, c) })
	}
	eng.RunUntil(1)
	if len(got) != 2 {
		t.Fatalf("allocated %d containers, want quota cap 2", len(got))
	}
	if n := rm.TenantContainers("capped"); n != 2 {
		t.Fatalf("TenantContainers = %d, want 2", n)
	}
	// Releasing one frees a quota slot; the pending request is served on the
	// next heartbeat.
	appc.Release(got[0])
	eng.RunUntil(2)
	if len(got) != 3 {
		t.Fatalf("allocated %d containers after release, want 3", len(got))
	}
	if n := rm.TenantContainers("capped"); n != 2 {
		t.Fatalf("TenantContainers after release = %d, want 2", n)
	}
}

// TestTenantQuotaAllExhaustedFallback covers the all-quota-exhausted round:
// when every pending request belongs to a tenant at its cap, the allocation
// round allocates nothing and keeps the queue intact — and an uncapped
// tenant's requests still flow around the stalled ones.
func TestTenantQuotaAllExhaustedFallback(t *testing.T) {
	eng, rm := newRM(t, 2, spec4(), Config{
		Fair: true,
		Tenants: map[string]TenantPolicy{
			"a": {Weight: 1, MaxContainers: 1},
			"b": {Weight: 1, MaxContainers: 1},
		},
	})
	appa, err := rm.SubmitApplicationFor("a", "wa", "")
	if err != nil {
		t.Fatal(err)
	}
	appb, err := rm.SubmitApplicationFor("b", "wb", "")
	if err != nil {
		t.Fatal(err)
	}
	res := Resource{VCores: 1, MemMB: 512}
	allocated := 0
	for i := 0; i < 3; i++ {
		appa.Request(Request{Resource: res}, func(*Container) { allocated++ })
		appb.Request(Request{Resource: res}, func(*Container) { allocated++ })
	}
	eng.RunUntil(1)
	if allocated != 2 {
		t.Fatalf("allocated %d, want one per capped tenant", allocated)
	}
	if n := appa.PendingRequests() + appb.PendingRequests(); n != 4 {
		t.Fatalf("pending = %d, want 4 kept while both tenants at cap", n)
	}
	// A third, uncapped tenant is not blocked by the exhausted ones.
	appc, err := rm.SubmitApplicationFor("c", "wc", "")
	if err != nil {
		t.Fatal(err)
	}
	cGot := 0
	appc.Request(Request{Resource: res}, func(*Container) { cGot++ })
	eng.RunUntil(2)
	if cGot != 1 {
		t.Fatalf("uncapped tenant got %d containers, want 1", cGot)
	}
}

// TestFairAllocationAppFinishMidRound covers an application finishing from
// inside an allocation callback of the same round: its remaining pending
// requests are dropped, later rounds never serve them, and the AM container
// frees its resources without disturbing the sibling tenant.
func TestFairAllocationAppFinishMidRound(t *testing.T) {
	eng, rm := newRM(t, 1, cluster.NodeSpec{VCores: 6, MemMB: 8192, CPUFactor: 1, DiskMBps: 1, NetMBps: 1},
		Config{Fair: true, Tenants: map[string]TenantPolicy{"a": {Weight: 1}, "b": {Weight: 1}}})
	app1, err := rm.SubmitApplicationFor("a", "wa", "")
	if err != nil {
		t.Fatal(err)
	}
	app2, err := rm.SubmitApplicationFor("b", "wb", "")
	if err != nil {
		t.Fatal(err)
	}
	res := Resource{VCores: 1, MemMB: 512}
	var app1Got, app2Got int
	for i := 0; i < 5; i++ {
		app1.Request(Request{Resource: res}, func(*Container) {
			app1Got++
			if app1Got == 1 {
				app1.Finish() // finish mid-round, with requests still queued
			}
		})
	}
	for i := 0; i < 2; i++ {
		app2.Request(Request{Resource: res}, func(*Container) { app2Got++ })
	}
	// Round 1 fits 4 workers (6 cores - 2 AMs); fair order interleaves
	// a,b,a,b, so both apps land 2 each before app1 finishes dropping its
	// 3 still-pending requests.
	eng.Run()
	if app1Got != 2 {
		t.Fatalf("app1 allocations = %d, want 2 (round-1 allocations only)", app1Got)
	}
	if app2Got != 2 {
		t.Fatalf("app2 allocations = %d, want 2", app2Got)
	}
	if n := app1.PendingRequests(); n != 0 {
		t.Fatalf("app1 pending = %d, want 0 after mid-round Finish", n)
	}
	// app1's AM core is back; the sibling tenant can still allocate.
	app2.Request(Request{Resource: res}, func(*Container) { app2Got++ })
	eng.Run()
	if app2Got != 3 {
		t.Fatalf("app2 allocations after AM release = %d, want 3", app2Got)
	}
}

func TestRequestFromAllocationCallback(t *testing.T) {
	eng, rm := newRM(t, 1, spec4(), Config{})
	app, _ := rm.SubmitApplication("wf", "")
	var chain int
	var recurse func(c *Container)
	recurse = func(c *Container) {
		chain++
		app.Release(c)
		if chain < 3 {
			app.Request(Request{Resource: Resource{VCores: 1, MemMB: 256}}, recurse)
		}
	}
	app.Request(Request{Resource: Resource{VCores: 1, MemMB: 256}}, recurse)
	eng.Run()
	if chain != 3 {
		t.Fatalf("chained allocations = %d, want 3", chain)
	}
}

func TestKillNodeRelaxesPendingStrictRequests(t *testing.T) {
	// A strict request pinned to a node that dies while the request is
	// pending must not starve: without OnUnplaceable it is relaxed and
	// placed on a surviving node.
	eng, rm := newRM(t, 2, spec4(), Config{})
	app, _ := rm.SubmitApplication("wf", "node-00")
	var filler *Container
	app.Request(Request{Resource: Resource{VCores: 4, MemMB: 4096}, NodeHint: "node-01", Strict: true},
		func(c *Container) { filler = c })
	eng.RunUntil(5)
	if filler == nil {
		t.Fatal("filler not allocated")
	}
	var got *Container
	app.Request(Request{Resource: Resource{VCores: 1, MemMB: 512}, NodeHint: "node-01", Strict: true},
		func(c *Container) { got = c })
	eng.RunUntil(10)
	if got != nil {
		t.Fatalf("strict request satisfied early on %s", got.NodeID)
	}
	rm.KillNode("node-01")
	eng.Run()
	if got == nil {
		t.Fatal("strict request starved after its pinned node died")
	}
	if got.NodeID != "node-00" {
		t.Fatalf("relaxed request landed on %s, want surviving node-00", got.NodeID)
	}
}

func TestKillNodeWithdrawsStrictRequestsViaOnUnplaceable(t *testing.T) {
	eng, rm := newRM(t, 2, spec4(), Config{})
	app, _ := rm.SubmitApplication("wf", "node-00")
	var filler *Container
	app.Request(Request{Resource: Resource{VCores: 4, MemMB: 4096}, NodeHint: "node-01", Strict: true},
		func(c *Container) { filler = c })
	eng.RunUntil(5)
	if filler == nil {
		t.Fatal("filler not allocated")
	}
	allocated := false
	var withdrawn []Request
	app.Request(Request{
		Resource: Resource{VCores: 1, MemMB: 512}, NodeHint: "node-01", Strict: true,
		OnUnplaceable: func(req Request) { withdrawn = append(withdrawn, req) },
	}, func(*Container) { allocated = true })
	eng.RunUntil(10)
	rm.KillNode("node-01")
	eng.Run()
	if allocated {
		t.Fatal("withdrawn request must not allocate")
	}
	if len(withdrawn) != 1 {
		t.Fatalf("OnUnplaceable fired %d times, want 1", len(withdrawn))
	}
	if withdrawn[0].NodeHint != "node-01" || !withdrawn[0].Strict {
		t.Fatalf("withdrawn request = %+v", withdrawn[0])
	}
	if app.PendingRequests() != 0 {
		t.Fatalf("pending = %d, want 0 after withdrawal", app.PendingRequests())
	}
}

func TestKillNodeLeavesOtherStrictRequestsPinned(t *testing.T) {
	// Strict requests pinned to a *surviving* node keep their pin when an
	// unrelated node dies.
	eng, rm := newRM(t, 3, spec4(), Config{})
	app, _ := rm.SubmitApplication("wf", "node-00")
	var filler *Container
	app.Request(Request{Resource: Resource{VCores: 4, MemMB: 4096}, NodeHint: "node-01", Strict: true},
		func(c *Container) { filler = c })
	eng.RunUntil(5)
	var got *Container
	app.Request(Request{Resource: Resource{VCores: 1, MemMB: 512}, NodeHint: "node-01", Strict: true},
		func(c *Container) { got = c })
	eng.RunUntil(10)
	rm.KillNode("node-02")
	eng.RunUntil(20)
	if got != nil {
		t.Fatalf("strict pin to node-01 violated: landed on %s", got.NodeID)
	}
	app.Release(filler)
	eng.Run()
	if got == nil || got.NodeID != "node-01" {
		t.Fatalf("strict request not satisfied on its pinned node: %+v", got)
	}
}

func TestRunningContainersAccounting(t *testing.T) {
	eng, rm := newRM(t, 2, spec4(), Config{})
	app, _ := rm.SubmitApplication("wf", "node-00")
	if rm.RunningContainers() != 1 { // the AM
		t.Fatalf("RunningContainers = %d, want 1", rm.RunningContainers())
	}
	var c *Container
	app.Request(Request{Resource: Resource{VCores: 1, MemMB: 512}}, func(x *Container) { c = x })
	eng.Run()
	if rm.RunningContainers() != 2 {
		t.Fatalf("RunningContainers = %d, want 2", rm.RunningContainers())
	}
	app.Release(c)
	app.Finish()
	eng.Run()
	if rm.RunningContainers() != 0 {
		t.Fatalf("RunningContainers = %d, want 0 after finish", rm.RunningContainers())
	}
}
