package memo

import (
	"fmt"
	"path/filepath"
	"testing"

	"hiway/internal/provdb"
)

// keyN builds a distinct valid key per index.
func keyN(i int) string {
	return Key{
		Sig:     "sig",
		Profile: Profile{VCores: 1, MemMB: 1024},
		Inputs:  []string{StagedIdentity(fmt.Sprintf("/data/in-%d.dat", i), 64)},
		Outputs: []OutputID{{Path: fmt.Sprintf("/wf/t%03d.dat", i), SizeMB: 8}},
	}.Encode()
}

// TestTierBoundaries is the table-driven sweep over the hot/cold boundary:
// eviction without a cold log, spill-and-promote through one, eviction
// triggered mid-lookup by a promotion, and bounded hot memory under a soak
// of commits far beyond capacity.
func TestTierBoundaries(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"eviction-without-cold-drops", func(t *testing.T) {
			tab := New(2)
			for i := 0; i < 3; i++ {
				if err := tab.Commit(keyN(i), Entry{SourceWF: fmt.Sprintf("wf-%d", i)}); err != nil {
					t.Fatal(err)
				}
			}
			if _, ok := tab.Lookup(keyN(0)); ok {
				t.Fatal("evicted entry survived without a cold log")
			}
			for i := 1; i < 3; i++ {
				if _, ok := tab.Lookup(keyN(i)); !ok {
					t.Fatalf("recent entry %d evicted too early", i)
				}
			}
			st := tab.Stats()
			if st.Evictions != 1 || st.HotEntries != 2 || st.ColdEntries != 0 {
				t.Fatalf("stats: %+v", st)
			}
		}},
		{"spill-to-cold-and-promote", func(t *testing.T) {
			db, err := provdb.Open(filepath.Join(t.TempDir(), "memo.db"))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			tab := New(2)
			tab.AttachCold(db)
			for i := 0; i < 4; i++ {
				if err := tab.Commit(keyN(i), Entry{SourceWF: fmt.Sprintf("wf-%d", i), CPUSeconds: float64(i)}); err != nil {
					t.Fatal(err)
				}
			}
			st := tab.Stats()
			if st.Evictions != 2 || st.ColdEntries != 2 {
				t.Fatalf("after spills: %+v", st)
			}
			// Cold hit: promoted back, with attribution intact.
			e, ok := tab.Lookup(keyN(0))
			if !ok || e.SourceWF != "wf-0" {
				t.Fatalf("cold lookup: %+v ok=%v", e, ok)
			}
			if st := tab.Stats(); st.Promotions != 1 {
				t.Fatalf("promotions: %+v", st)
			}
		}},
		{"promotion-evicts-mid-lookup", func(t *testing.T) {
			db, err := provdb.Open(filepath.Join(t.TempDir(), "memo.db"))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			tab := New(2)
			tab.AttachCold(db)
			for i := 0; i < 3; i++ {
				if err := tab.Commit(keyN(i), Entry{SourceWF: fmt.Sprintf("wf-%d", i)}); err != nil {
					t.Fatal(err)
				}
			}
			// keyN(0) is cold; promoting it must spill the current LRU
			// (keyN(1)) without losing it: the displaced entry is still
			// servable from the cold log afterwards.
			if _, ok := tab.Lookup(keyN(0)); !ok {
				t.Fatal("cold entry not promoted")
			}
			if _, ok := tab.Lookup(keyN(1)); !ok {
				t.Fatal("entry displaced by the promotion was lost")
			}
			if _, ok := tab.Lookup(keyN(2)); !ok {
				t.Fatal("entry displaced by the second promotion was lost")
			}
		}},
		{"bounded-memory-under-soak", func(t *testing.T) {
			db, err := provdb.Open(filepath.Join(t.TempDir(), "memo.db"))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			tab := New(64)
			tab.AttachCold(db)
			const n = 5000
			for i := 0; i < n; i++ {
				if err := tab.Commit(keyN(i), Entry{SourceWF: "soak"}); err != nil {
					t.Fatal(err)
				}
			}
			st := tab.Stats()
			if st.HotEntries > 64 {
				t.Fatalf("hot tier exceeded its bound: %+v", st)
			}
			if st.ColdEntries != n-64 {
				t.Fatalf("cold log population: %+v", st)
			}
			// Every entry ever committed is still servable.
			for _, i := range []int{0, 1, n / 2, n - 1} {
				if _, ok := tab.Lookup(keyN(i)); !ok {
					t.Fatalf("entry %d lost under soak", i)
				}
			}
		}},
		{"corrupt-cold-record-degrades-to-miss", func(t *testing.T) {
			db, err := provdb.Open(filepath.Join(t.TempDir(), "memo.db"))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if err := db.Put(keyN(0), []byte("{not json")); err != nil {
				t.Fatal(err)
			}
			tab := New(2)
			tab.AttachCold(db)
			if _, ok := tab.Lookup(keyN(0)); ok {
				t.Fatal("corrupt cold record served as a hit")
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}

// TestTierCompactionAndReopen drives the cold log through churn that leaves
// garbage, compacts it, then reopens the compacted segment in a fresh table
// — the resume-over-a-compacted-segment case: a restarted service keeps
// hitting on entries that only survive in the compacted cold log.
func TestTierCompactionAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "memo.db")
	db, err := provdb.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tab := New(2)
	tab.AttachCold(db)
	// Churn: re-commit the same keys repeatedly so spills overwrite cold
	// records, leaving superseded garbage in the log.
	for round := 0; round < 6; round++ {
		for i := 0; i < 6; i++ {
			if err := tab.Commit(keyN(i), Entry{SourceWF: fmt.Sprintf("round-%d", round), CPUSeconds: float64(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Flush the still-hot tail so the cold log holds the whole table.
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	before := db.GarbageRatio()
	if before <= 0.2 {
		t.Fatalf("churn produced too little garbage (%v); the test lost its premise", before)
	}
	// Below-threshold compaction is a no-op; above-threshold compacts.
	if err := tab.Compact(0.99); err != nil {
		t.Fatal(err)
	}
	if db.GarbageRatio() != before {
		t.Fatal("compaction fired below its garbage threshold")
	}
	if err := tab.Compact(0.2); err != nil {
		t.Fatal(err)
	}
	// Header overhead keeps the ratio above zero; the superseded records
	// themselves must be gone.
	if after := db.GarbageRatio(); after >= before/2 {
		t.Fatalf("garbage ratio %v after compaction (was %v)", after, before)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the compacted segment under a fresh table: everything spilled
	// must still hit.
	db2, err := provdb.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tab2 := New(2)
	tab2.AttachCold(db2)
	for i := 0; i < 6; i++ {
		e, ok := tab2.Lookup(keyN(i))
		if !ok {
			t.Fatalf("entry %d missing after compaction and reopen", i)
		}
		if e.SourceWF != "round-5" {
			t.Fatalf("entry %d is stale: %+v", i, e)
		}
	}
}

// TestTableCompactWithoutCold pins the no-op path.
func TestTableCompactWithoutCold(t *testing.T) {
	if err := New(2).Compact(0); err != nil {
		t.Fatal(err)
	}
}
