package memo

import "sort"

// defaultHistoryWindow bounds the per-signature duration ring when the
// caller does not.
const defaultHistoryWindow = 256

// History keeps a bounded ring of observed durations per task signature —
// the hot tier of the provenance store. It replaces the provenance
// manager's unbounded per-signature slices: memory stays bounded under
// soak (window × signatures), and quantiles are served from a cached sorted
// window instead of copying and sorting the full history on every call.
type History struct {
	window int
	rings  map[string]*durationRing
}

// durationRing is one signature's sliding window.
type durationRing struct {
	buf    []float64
	next   int
	n      int
	sorted []float64
	dirty  bool
}

// NewHistory builds a history keeping at most window samples per signature
// (window <= 0 selects the default, 256).
func NewHistory(window int) *History {
	if window <= 0 {
		window = defaultHistoryWindow
	}
	return &History{window: window, rings: make(map[string]*durationRing)}
}

// Add records one observed duration for the signature, displacing the
// oldest sample once the window is full.
func (h *History) Add(sig string, v float64) {
	r := h.rings[sig]
	if r == nil {
		r = &durationRing{buf: make([]float64, h.window)}
		h.rings[sig] = r
	}
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.dirty = true
}

// Count returns how many samples the signature's window currently holds.
func (h *History) Count(sig string) int {
	if r := h.rings[sig]; r != nil {
		return r.n
	}
	return 0
}

// Quantile returns the nearest-rank q-quantile of the signature's current
// window. The sorted window is cached between calls and rebuilt only after
// new samples arrive, so repeated estimate queries between task completions
// are O(1).
func (h *History) Quantile(sig string, q float64) (float64, bool) {
	r := h.rings[sig]
	if r == nil || r.n == 0 {
		return 0, false
	}
	if r.dirty {
		r.sorted = append(r.sorted[:0], r.buf[:r.n]...)
		sort.Float64s(r.sorted)
		r.dirty = false
	}
	idx := int(float64(r.n)*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= r.n {
		idx = r.n - 1
	}
	return r.sorted[idx], true
}
