package memo

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestAdversarialKeySeparation is the differential collision guard for the
// b468fe5 class of bug (recovery keys that ignored outputs let one fan-out
// branch steal another's completion). A seeded adversarial generator emits
// families of tasks sharing signature and canonical inputs while varying
// exactly one identity dimension — container profile, output arity, output
// paths, or output sizes — and every variation must produce a distinct key,
// while re-deriving the same task must reproduce the same key.
func TestAdversarialKeySeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := func(fam int) Key {
		nIn := 1 + rng.Intn(3)
		ins := make([]string, nIn)
		for i := range ins {
			ins[i] = StagedIdentity(fmt.Sprintf("/data/f%d-%d.dat", fam, i), float64(8+rng.Intn(64)))
		}
		return Key{
			Sig:     fmt.Sprintf("sig%d", fam%4),
			Profile: Profile{VCores: 1 + rng.Intn(4), MemMB: 1024 * (1 + rng.Intn(4))},
			Inputs:  ins,
			Outputs: []OutputID{{Path: fmt.Sprintf("/wf/f%d.dat", fam), SizeMB: float64(8 + rng.Intn(64))}},
		}
	}
	seen := map[string]string{} // encoded key → description
	record := func(k Key, desc string) {
		enc := k.Encode()
		if prev, ok := seen[enc]; ok {
			t.Fatalf("key collision between %q and %q:\n%s", prev, desc, enc)
		}
		seen[enc] = desc
		// Determinism: re-encoding an equal key is byte-identical.
		if again := k.Encode(); again != enc {
			t.Fatalf("%s: Encode is not deterministic:\n%s\n%s", desc, enc, again)
		}
	}
	for fam := 0; fam < 64; fam++ {
		k := base(fam)
		record(k, fmt.Sprintf("fam%d/base", fam))

		// Same signature, same inputs, different container profile.
		p := k
		p.Profile = Profile{VCores: k.Profile.VCores + 1, MemMB: k.Profile.MemMB}
		record(p, fmt.Sprintf("fam%d/vcores", fam))
		m := k
		m.Profile = Profile{VCores: k.Profile.VCores, MemMB: k.Profile.MemMB + 512}
		record(m, fmt.Sprintf("fam%d/memMB", fam))

		// Same signature, same inputs, different output arity.
		a := k
		a.Outputs = append(append([]OutputID(nil), k.Outputs...),
			OutputID{Path: fmt.Sprintf("/wf/f%d-extra.dat", fam), SizeMB: 4})
		record(a, fmt.Sprintf("fam%d/arity", fam))

		// Same arity, different output path.
		op := k
		op.Outputs = []OutputID{{Path: k.Outputs[0].Path + ".alt", SizeMB: k.Outputs[0].SizeMB}}
		record(op, fmt.Sprintf("fam%d/outpath", fam))

		// Same arity and path, different declared size.
		os := k
		os.Outputs = []OutputID{{Path: k.Outputs[0].Path, SizeMB: k.Outputs[0].SizeMB + 1}}
		record(os, fmt.Sprintf("fam%d/outsize", fam))

		// Different input identity (same canonical path, different size —
		// a re-staged file with other content must not alias).
		in := k
		in.Inputs = append([]string(nil), k.Inputs...)
		in.Inputs[0] += "x"
		record(in, fmt.Sprintf("fam%d/input", fam))
	}
}

// TestTableSeparatesCollidingCommits drives the same families through a
// live table: a commit under one variant must never satisfy a lookup under
// another.
func TestTableSeparatesCollidingCommits(t *testing.T) {
	tab := New(0)
	k := Key{
		Sig:     "call",
		Profile: Profile{VCores: 2, MemMB: 2048},
		Inputs:  []string{StagedIdentity("/data/sample.dat", 512)},
		Outputs: []OutputID{{Path: "/wf/calls.vcf", SizeMB: 32}},
	}
	if err := tab.Commit(k.Encode(), Entry{SourceWF: "wf-a", CPUSeconds: 100}); err != nil {
		t.Fatal(err)
	}
	bigger := k
	bigger.Profile.VCores = 8
	if _, ok := tab.Lookup(bigger.Encode()); ok {
		t.Fatal("lookup with a different container profile hit")
	}
	twoOut := k
	twoOut.Outputs = append(append([]OutputID(nil), k.Outputs...), OutputID{Path: "/wf/calls.idx", SizeMB: 1})
	if _, ok := tab.Lookup(twoOut.Encode()); ok {
		t.Fatal("lookup with a different output arity hit")
	}
	if _, ok := tab.Lookup(k.Encode()); !ok {
		t.Fatal("identical re-derivation missed")
	}
}
