package memo

import (
	"math"
	"strings"
	"testing"
)

// FuzzMemoKey fuzzes both directions of the canonical key serialization:
// a key built from arbitrary components must round-trip exactly through
// Encode/ParseKey, and ParseKey must never panic on arbitrary input (the
// raw component doubles as a hostile serialized key).
func FuzzMemoKey(f *testing.F) {
	f.Add("align", 2, 4096, "s:/data/in.dat:64", "/wf/t000.dat", 8.0, "m1|sig|1x2||")
	f.Add("we|ird,sig", 1, 1024, "p:m1|x|1x1||#out#0", "/o|u,t", 1.5, "m1|sig|1x2|a,b|c:1,d:2")
	f.Add("", 0, 0, "", "", 0.0, "%zz|||||")
	f.Add("sig\nwith\nnewlines", 16, 65536, "s:p%25ath:1", "out:colon", 1e-9, "m1|s|1x1|%")
	f.Fuzz(func(t *testing.T, sig string, vcores, memMB int, input, outPath string, outSize float64, raw string) {
		// Direction 1: hostile input never panics the parser.
		if k, err := ParseKey(raw); err == nil {
			// A successfully parsed key re-encodes to something that parses
			// back equal once normalized (Encode canonicalizes ordering).
			k2, err := ParseKey(k.Encode())
			if err != nil {
				t.Fatalf("re-encoded key does not parse: %v", err)
			}
			k.Normalize()
			if !keysEquivalent(k, k2) {
				t.Fatalf("parse/encode/parse diverged:\n%+v\n%+v", k, k2)
			}
		}

		// Direction 2: constructed keys round-trip exactly.
		if math.IsNaN(outSize) || math.IsInf(outSize, 0) {
			return // sizes of real files are finite
		}
		k := Key{
			Sig:     sig,
			Profile: Profile{VCores: vcores, MemMB: memMB},
			Inputs:  []string{input},
			Outputs: []OutputID{{Path: outPath, SizeMB: outSize}},
		}
		got, err := ParseKey(k.Encode())
		if err != nil {
			t.Fatalf("constructed key does not parse: %v\nkey: %q", err, k.Encode())
		}
		k.Normalize()
		if !keysEquivalent(k, got) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, k)
		}
	})
}

// keysEquivalent compares keys treating nil and empty sets as equal and
// sizes bit-exactly (including negative zero collapsing, which FormatFloat
// preserves).
func keysEquivalent(a, b Key) bool {
	if a.Sig != b.Sig || a.Profile != b.Profile {
		return false
	}
	if strings.Join(a.Inputs, "\x00") != strings.Join(b.Inputs, "\x00") {
		return false
	}
	if len(a.Outputs) != len(b.Outputs) {
		return false
	}
	for i := range a.Outputs {
		if a.Outputs[i].Path != b.Outputs[i].Path {
			return false
		}
		if math.Float64bits(a.Outputs[i].SizeMB) != math.Float64bits(b.Outputs[i].SizeMB) {
			return false
		}
	}
	return true
}
