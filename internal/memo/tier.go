package memo

import (
	"container/list"
	"encoding/json"
	"fmt"
)

// ColdStore is the slice of internal/provdb the cold tier needs: a durable
// keyed log with compaction. *provdb.DB satisfies it.
type ColdStore interface {
	// Put writes or overwrites one entry.
	Put(key string, value []byte) error
	// Get reads one entry.
	Get(key string) ([]byte, bool)
	// Len counts live entries.
	Len() int
	// GarbageRatio is the fraction of the log occupied by superseded
	// records.
	GarbageRatio() float64
	// Compact rewrites the log without garbage.
	Compact() error
}

// defaultHotCapacity bounds the hot tier when the caller does not.
const defaultHotCapacity = 4096

// tier is the two-level entry store: a bounded LRU hot map in front of an
// optional cold log. All methods are called with the Table's lock held.
type tier struct {
	cap  int
	hot  map[string]*list.Element
	lru  *list.List // front = most recently used
	cold ColdStore

	evictions  int64
	promotions int64
}

// hotEntry is one LRU element's payload.
type hotEntry struct {
	key string
	e   Entry
}

func newTier(capacity int) *tier {
	if capacity <= 0 {
		capacity = defaultHotCapacity
	}
	return &tier{cap: capacity, hot: make(map[string]*list.Element), lru: list.New()}
}

func (tr *tier) hotLen() int { return tr.lru.Len() }

// get returns the entry for key, promoting a cold hit into the hot tier.
// The third result reports whether a promotion happened (the promotion may
// itself evict the LRU entry back to the cold log — the "eviction
// mid-lookup" case the tier tests pin).
func (tr *tier) get(key string) (Entry, bool, bool) {
	if el, ok := tr.hot[key]; ok {
		tr.lru.MoveToFront(el)
		return el.Value.(*hotEntry).e, true, false
	}
	if tr.cold == nil {
		return Entry{}, false, false
	}
	raw, ok := tr.cold.Get(key)
	if !ok {
		return Entry{}, false, false
	}
	var e Entry
	if err := json.Unmarshal(raw, &e); err != nil {
		// A corrupt cold record degrades to a miss; the execution recommits.
		return Entry{}, false, false
	}
	tr.promotions++
	tr.insert(key, e)
	return e, true, true
}

// put writes the entry into the hot tier, reporting whether it displaced
// another entry.
func (tr *tier) put(key string, e Entry) (bool, error) {
	if el, ok := tr.hot[key]; ok {
		el.Value.(*hotEntry).e = e
		tr.lru.MoveToFront(el)
		return false, nil
	}
	return tr.insert(key, e)
}

// insert adds a fresh hot entry, spilling the LRU entry to the cold log if
// the tier is full.
func (tr *tier) insert(key string, e Entry) (bool, error) {
	evicted := false
	var spillErr error
	for tr.lru.Len() >= tr.cap {
		tail := tr.lru.Back()
		if tail == nil {
			break
		}
		he := tail.Value.(*hotEntry)
		if tr.cold != nil {
			raw, err := json.Marshal(he.e)
			if err == nil {
				err = tr.cold.Put(he.key, raw)
			}
			if err != nil && spillErr == nil {
				spillErr = fmt.Errorf("memo: spilling %q: %w", he.key, err)
			}
		}
		tr.lru.Remove(tail)
		delete(tr.hot, he.key)
		tr.evictions++
		evicted = true
	}
	tr.hot[key] = tr.lru.PushFront(&hotEntry{key: key, e: e})
	return evicted, spillErr
}

// flush writes every hot entry through to the cold log (keeping it hot),
// so a restart serves the whole table from the reopened log.
func (tr *tier) flush() error {
	if tr.cold == nil {
		return nil
	}
	for el := tr.lru.Front(); el != nil; el = el.Next() {
		he := el.Value.(*hotEntry)
		raw, err := json.Marshal(he.e)
		if err == nil {
			err = tr.cold.Put(he.key, raw)
		}
		if err != nil {
			return fmt.Errorf("memo: flushing %q: %w", he.key, err)
		}
	}
	return nil
}

// compact rewrites the cold log once at least minGarbage of it is
// superseded records.
func (tr *tier) compact(minGarbage float64) error {
	if tr.cold == nil {
		return nil
	}
	if tr.cold.GarbageRatio() < minGarbage {
		return nil
	}
	return tr.cold.Compact()
}
