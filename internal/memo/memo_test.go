package memo

import (
	"math"
	"reflect"
	"testing"

	"hiway/internal/obs"
)

func sampleKey() Key {
	return Key{
		Sig:     "align",
		Profile: Profile{VCores: 2, MemMB: 4096},
		Inputs:  []string{"s:/data/in-1.dat:64", "s:/data/in-0.dat:32"},
		Outputs: []OutputID{{Path: "/wf/t001.dat", SizeMB: 16}, {Path: "/wf/t000.dat", SizeMB: 8}},
	}
}

func TestKeyEncodeParseRoundTrip(t *testing.T) {
	k := sampleKey()
	enc := k.Encode()
	got, err := ParseKey(enc)
	if err != nil {
		t.Fatalf("ParseKey(%q): %v", enc, err)
	}
	want := sampleKey()
	want.Normalize()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Encoding is order-insensitive: permuting the sets yields the same key.
	perm := sampleKey()
	perm.Inputs[0], perm.Inputs[1] = perm.Inputs[1], perm.Inputs[0]
	perm.Outputs[0], perm.Outputs[1] = perm.Outputs[1], perm.Outputs[0]
	if perm.Encode() != enc {
		t.Fatalf("permuted key encodes differently:\n%s\n%s", perm.Encode(), enc)
	}
}

func TestKeyEncodeEscapesStructuralBytes(t *testing.T) {
	k := Key{
		Sig:     "we|ird,sig:with%bytes\nnewline",
		Profile: Profile{VCores: 1, MemMB: 1024},
		Inputs:  []string{"s:/p|a,t:h%0:1"},
		Outputs: []OutputID{{Path: "/o|u,t:put%", SizeMB: 1.5}},
	}
	got, err := ParseKey(k.Encode())
	if err != nil {
		t.Fatalf("ParseKey: %v", err)
	}
	k.Normalize()
	if !reflect.DeepEqual(got, k) {
		t.Fatalf("escaped round trip mismatch:\n got %+v\nwant %+v", got, k)
	}
}

func TestParseKeyRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"", "m1", "m1|a|b", "m0|sig|1x2||", "m1|sig|12||", "m1|sig|ax2||",
		"m1|sig|1xb||", "m1|sig|1x2||out", "m1|sig|1x2||out:zzz",
		"m1|si%2|1x2||", "m1|si%zz|1x2||",
	} {
		if _, err := ParseKey(s); err == nil {
			t.Errorf("ParseKey(%q): want error, got nil", s)
		}
	}
}

func TestIdentityHelpers(t *testing.T) {
	if got := StagedIdentity("/data/in.dat", 64); got != "s:/data/in.dat:64" {
		t.Fatalf("StagedIdentity = %q", got)
	}
	a := ProducedIdentity("m1|sig|1x2||", "out", 0)
	b := ProducedIdentity("m1|sig|1x2||", "out", 1)
	if a == b {
		t.Fatal("ProducedIdentity must separate output indices")
	}
}

func TestTableLookupCommitAndStats(t *testing.T) {
	tab := New(8)
	o := obs.New(func() float64 { return 0 })
	tab.SetObs(o)
	key := sampleKey().Encode()
	if _, ok := tab.Lookup(key); ok {
		t.Fatal("lookup on empty table hit")
	}
	if err := tab.Commit(key, Entry{SourceWF: "wf-a", CPUSeconds: 40, DurationSec: 20}); err != nil {
		t.Fatal(err)
	}
	e, ok := tab.Lookup(key)
	if !ok || e.SourceWF != "wf-a" || e.CPUSeconds != 40 {
		t.Fatalf("lookup after commit: %+v ok=%v", e, ok)
	}
	st := tab.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Commits != 1 || st.CPUSavedSec != 40 || st.HotEntries != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if got := tab.HitProbability("align"); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("HitProbability = %v, want 0.5", got)
	}
	if got := tab.HitProbability("never-seen"); got != 0 {
		t.Fatalf("HitProbability(unseen) = %v, want 0", got)
	}
}

func TestTableOptOut(t *testing.T) {
	tab := New(8)
	if tab.OptedOut("genomics") {
		t.Fatal("fresh table has opt-outs")
	}
	tab.SetOptOut("genomics")
	if !tab.OptedOut("genomics") || tab.OptedOut("rnaseq") {
		t.Fatal("opt-out registry wrong")
	}
}

func TestHistoryBoundedWindowAndQuantiles(t *testing.T) {
	h := NewHistory(4)
	if _, ok := h.Quantile("sig", 0.95); ok {
		t.Fatal("quantile on empty history")
	}
	for _, v := range []float64{10, 20, 30} {
		h.Add("sig", v)
	}
	if got, _ := h.Quantile("sig", 0.95); got != 30 {
		t.Fatalf("p95 of {10,20,30} = %v", got)
	}
	if got, _ := h.Quantile("sig", 0.5); got != 20 {
		t.Fatalf("p50 of {10,20,30} = %v", got)
	}
	// Overflow the window: the oldest samples fall out.
	for _, v := range []float64{40, 50, 60} {
		h.Add("sig", v)
	}
	if h.Count("sig") != 4 {
		t.Fatalf("window count = %d, want 4", h.Count("sig"))
	}
	if got, _ := h.Quantile("sig", 0.95); got != 60 {
		t.Fatalf("p95 of sliding window = %v, want 60", got)
	}
	if got, _ := h.Quantile("sig", 0.0); got != 30 {
		t.Fatalf("min of sliding window = %v, want 30", got)
	}
	// Cached sorted window survives repeated queries.
	if got, _ := h.Quantile("sig", 0.95); got != 60 {
		t.Fatal("cached quantile diverged")
	}
}
