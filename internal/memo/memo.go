// Package memo implements the cluster-wide, tenant-agnostic task memo
// table: executions are keyed on (task signature, canonical input set,
// canonical declared output set, container profile), so an AM that is about
// to run a task another workflow — possibly another tenant's — already ran
// can skip the attempt entirely and splice the recorded outcome into its own
// provenance. The premise is the one the verifier's recovery keys already
// proved (b468fe5): a task execution in this system is fully determined by
// its signature, its inputs, and the resources it runs in.
//
// Keys are canonical: paths are taken relative to a per-workflow prefix
// (the service tier rebases every run under /svc/<tenant>/<name>, so two
// tenants running the same reference pipeline produce identical canonical
// keys), input files are identified by lineage (a produced file's identity
// is derived from its producer's memo key, a staged file's from its
// canonical path and size), and declared outputs carry their sizes — which
// is what separates two same-signature tasks with different output arities
// or shapes, the b468fe5 class of collision.
//
// The table itself is tiered: a bounded in-memory hot tier answers lookups
// in O(1) and spills least-recently-used entries to a compacted cold log in
// internal/provdb, from which they are promoted back on demand. Memory
// stays bounded under soak no matter how many distinct executions the
// cluster has seen.
package memo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hiway/internal/obs"
)

// Profile is the container resource profile a task executes in. Identical
// work in a different profile is a different execution — a 1-core and an
// 8-core run of the same command are not interchangeable results.
type Profile struct {
	// VCores is the container's virtual core count.
	VCores int
	// MemMB is the container's memory grant.
	MemMB int
}

// OutputID identifies one canonical declared output: prefix-stripped path
// plus declared size. Declared outputs are part of the key so that
// same-signature tasks with different output arities or shapes never
// collide.
type OutputID struct {
	// Path is the canonical (prefix-stripped) output path.
	Path string
	// SizeMB is the declared output size.
	SizeMB float64
}

// Key is the canonical identity of one task execution.
type Key struct {
	// Sig is the task signature (its name — one signature per tool).
	Sig string
	// Profile is the container resource profile.
	Profile Profile
	// Inputs are the canonical input identities, sorted. A produced input
	// is identified by its producer's key ("p:" identities), a staged one
	// by canonical path and size ("s:" identities).
	Inputs []string
	// Outputs are the canonical declared outputs, sorted by path then size.
	Outputs []OutputID
}

// Normalize sorts the key's input and output sets into canonical order.
func (k *Key) Normalize() {
	sort.Strings(k.Inputs)
	sort.Slice(k.Outputs, func(i, j int) bool {
		if k.Outputs[i].Path != k.Outputs[j].Path {
			return k.Outputs[i].Path < k.Outputs[j].Path
		}
		return k.Outputs[i].SizeMB < k.Outputs[j].SizeMB
	})
}

// keyEscaper protects the encoding's structural bytes inside path and
// signature strings; percent comes first so unescaping is unambiguous.
var keyEscaper = strings.NewReplacer(
	"%", "%25", "|", "%7C", ",", "%2C", ":", "%3A", "\n", "%0A",
)

func escapeField(s string) string { return keyEscaper.Replace(s) }

func unescapeField(s string) (string, error) {
	if !strings.Contains(s, "%") {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			b.WriteByte(s[i])
			continue
		}
		if i+2 >= len(s) {
			return "", fmt.Errorf("memo: truncated escape in %q", s)
		}
		v, err := strconv.ParseUint(s[i+1:i+3], 16, 8)
		if err != nil {
			return "", fmt.Errorf("memo: bad escape in %q: %v", s, err)
		}
		b.WriteByte(byte(v))
		i += 2
	}
	return b.String(), nil
}

// fmtSize renders a size so it round-trips exactly through ParseFloat.
func fmtSize(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// keyVersion tags the encoding so a future format change cannot silently
// alias old entries.
const keyVersion = "m1"

// Encode renders the key in its canonical serialized form — the string the
// table indexes on. Encoding normalizes the key first, so two keys built
// from the same sets in different orders encode identically.
func (k Key) Encode() string {
	k.Inputs = append([]string(nil), k.Inputs...)
	k.Outputs = append([]OutputID(nil), k.Outputs...)
	k.Normalize()
	ins := make([]string, len(k.Inputs))
	for i, in := range k.Inputs {
		ins[i] = escapeField(in)
	}
	outs := make([]string, len(k.Outputs))
	for i, o := range k.Outputs {
		outs[i] = escapeField(o.Path) + ":" + fmtSize(o.SizeMB)
	}
	return keyVersion + "|" + escapeField(k.Sig) +
		"|" + strconv.Itoa(k.Profile.VCores) + "x" + strconv.Itoa(k.Profile.MemMB) +
		"|" + strings.Join(ins, ",") +
		"|" + strings.Join(outs, ",")
}

// ParseKey decodes a serialized key. It is the inverse of Encode on every
// key Encode can produce, and returns an error (never panics) on anything
// else — the FuzzMemoKey target pins both properties.
func ParseKey(s string) (Key, error) {
	parts := strings.Split(s, "|")
	if len(parts) != 5 {
		return Key{}, fmt.Errorf("memo: key has %d fields, want 5", len(parts))
	}
	if parts[0] != keyVersion {
		return Key{}, fmt.Errorf("memo: unknown key version %q", parts[0])
	}
	var k Key
	var err error
	if k.Sig, err = unescapeField(parts[1]); err != nil {
		return Key{}, err
	}
	cores, mem, ok := strings.Cut(parts[2], "x")
	if !ok {
		return Key{}, fmt.Errorf("memo: malformed profile %q", parts[2])
	}
	if k.Profile.VCores, err = strconv.Atoi(cores); err != nil {
		return Key{}, fmt.Errorf("memo: bad vcores: %v", err)
	}
	if k.Profile.MemMB, err = strconv.Atoi(mem); err != nil {
		return Key{}, fmt.Errorf("memo: bad memMB: %v", err)
	}
	if parts[3] != "" {
		for _, f := range strings.Split(parts[3], ",") {
			in, err := unescapeField(f)
			if err != nil {
				return Key{}, err
			}
			k.Inputs = append(k.Inputs, in)
		}
	}
	if parts[4] != "" {
		for _, f := range strings.Split(parts[4], ",") {
			pathF, sizeF, ok := strings.Cut(f, ":")
			if !ok {
				return Key{}, fmt.Errorf("memo: malformed output %q", f)
			}
			p, err := unescapeField(pathF)
			if err != nil {
				return Key{}, err
			}
			sz, err := strconv.ParseFloat(sizeF, 64)
			if err != nil {
				return Key{}, fmt.Errorf("memo: bad output size %q: %v", sizeF, err)
			}
			k.Outputs = append(k.Outputs, OutputID{Path: p, SizeMB: sz})
		}
	}
	return k, nil
}

// StagedIdentity is the canonical identity of an input file no completed
// task produced: its canonical path plus its size.
func StagedIdentity(canonPath string, sizeMB float64) string {
	return "s:" + canonPath + ":" + fmtSize(sizeMB)
}

// ProducedIdentity is the canonical identity of a file a memoized task
// produced: derived from the producer's serialized key plus the output
// parameter and index, so consumers of equal files build equal keys across
// runs and tenants without comparing bytes.
func ProducedIdentity(producerKey, param string, index int) string {
	return "p:" + producerKey + "#" + param + "#" + strconv.Itoa(index)
}

// Entry is what a committed execution leaves in the table: enough to
// attribute a later hit and account the work it saved. The outputs
// themselves are not stored — key equality already guarantees the hitting
// task's own declared outputs (paths and sizes) match the recorded ones, so
// the splice materializes them from the hitting task's declaration.
type Entry struct {
	// SourceWF is the workflow that committed the entry.
	SourceWF string `json:"sourceWF"`
	// SourceTenant is the tenant whose run committed the entry.
	SourceTenant string `json:"sourceTenant,omitempty"`
	// CPUSeconds is the compute the original execution spent — the work a
	// hit saves.
	CPUSeconds float64 `json:"cpuSeconds"`
	// DurationSec is the original execution's wall duration.
	DurationSec float64 `json:"durationSec"`
}

// TableStats snapshots the table's lifetime counters.
type TableStats struct {
	// Lookups counts Lookup calls.
	Lookups int64 `json:"lookups"`
	// Hits counts lookups that found an entry.
	Hits int64 `json:"hits"`
	// Commits counts entries written.
	Commits int64 `json:"commits"`
	// Evictions counts hot-tier entries displaced to the cold log (or
	// dropped, when no cold log is attached).
	Evictions int64 `json:"evictions"`
	// Promotions counts cold-log entries promoted back into the hot tier.
	Promotions int64 `json:"promotions"`
	// CPUSavedSec totals the CPU-seconds hits avoided re-spending.
	CPUSavedSec float64 `json:"cpuSavedSec"`
	// HotEntries is the current hot-tier population.
	HotEntries int `json:"hotEntries"`
	// ColdEntries is the current cold-log population (0 without a cold log).
	ColdEntries int `json:"coldEntries"`
}

// Table is the shared memo table. It is safe for concurrent use: the serve
// front-end shares one table across goroutine-per-AM runs, while the
// single-threaded simulation engines use it without contention.
type Table struct {
	mu      sync.Mutex
	tier    *tier
	optOut  map[string]bool
	lookups int64
	hits    int64
	commits int64
	saved   float64

	sigLookups map[string]int64
	sigHits    map[string]int64

	lookupsC *obs.Counter
	hitsC    *obs.Counter
	commitsC *obs.Counter
	evictC   *obs.Counter
	promoteC *obs.Counter
	hotG     *obs.Gauge
	savedG   *obs.Gauge
}

// New builds a table whose hot tier holds at most capacity entries
// (capacity <= 0 selects the default, 4096). Entries evicted from a table
// with no cold log are dropped.
func New(capacity int) *Table {
	return &Table{
		tier:       newTier(capacity),
		optOut:     make(map[string]bool),
		sigLookups: make(map[string]int64),
		sigHits:    make(map[string]int64),
	}
}

// AttachCold gives the table a cold log: hot-tier evictions spill into db
// and lookups that miss the hot tier consult it, promoting hits back.
func (t *Table) AttachCold(db ColdStore) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tier.cold = db
}

// SetObs registers the hiway_memo_* metric family on o.
func (t *Table) SetObs(o *obs.Obs) {
	if o == nil {
		return
	}
	m := o.M()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lookupsC = m.Counter("hiway_memo_lookups_total", "memo table lookups")
	t.hitsC = m.Counter("hiway_memo_hits_total", "memo table hits (executions skipped)")
	t.commitsC = m.Counter("hiway_memo_commits_total", "memo entries committed")
	t.evictC = m.Counter("hiway_memo_evictions_total", "hot-tier entries evicted to the cold log")
	t.promoteC = m.Counter("hiway_memo_promotions_total", "cold-log entries promoted to the hot tier")
	t.hotG = m.Gauge("hiway_memo_hot_entries", "current hot-tier population")
	t.savedG = m.Gauge("hiway_memo_cpu_seconds_saved", "CPU-seconds memo hits avoided re-spending")
}

// SetOptOut excludes a tenant from memoization: its runs neither consume
// nor contribute entries.
func (t *Table) SetOptOut(tenant string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.optOut[tenant] = true
}

// OptedOut reports whether the tenant is excluded from memoization.
func (t *Table) OptedOut(tenant string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.optOut[tenant]
}

// Lookup consults the table for a prior execution of key. A hit records the
// saved work against the entry and counts toward the signature's hit rate.
func (t *Table) Lookup(key string) (Entry, bool) {
	sig := sigOf(key)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lookups++
	t.sigLookups[sig]++
	if t.lookupsC != nil {
		t.lookupsC.Inc()
	}
	e, ok, promoted := t.tier.get(key)
	if promoted {
		incIf(t.promoteC)
	}
	t.syncGaugesLocked()
	if !ok {
		return Entry{}, false
	}
	t.hits++
	t.sigHits[sig]++
	t.saved += e.CPUSeconds
	if t.hitsC != nil {
		t.hitsC.Inc()
	}
	if t.savedG != nil {
		t.savedG.Set(t.saved)
	}
	return e, true
}

// Commit records a finished execution under key. Committing an existing key
// refreshes the entry.
func (t *Table) Commit(key string, e Entry) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.commits++
	if t.commitsC != nil {
		t.commitsC.Inc()
	}
	evicted, err := t.tier.put(key, e)
	if evicted {
		incIf(t.evictC)
	}
	t.syncGaugesLocked()
	return err
}

// incIf guards the nil case so metric updates stay one-liners.
func incIf(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (t *Table) syncGaugesLocked() {
	if t.hotG != nil {
		t.hotG.Set(float64(t.tier.hotLen()))
	}
}

// sigOf extracts the signature field of a serialized key without a full
// parse — Lookup is on the submit path of every task.
func sigOf(key string) string {
	rest := key[strings.IndexByte(key, '|')+1:]
	if i := strings.IndexByte(rest, '|'); i >= 0 {
		rest = rest[:i]
	}
	s, err := unescapeField(rest)
	if err != nil {
		return rest
	}
	return s
}

// HitProbability implements the scheduler's admission-time hit predictor:
// the observed hit rate of the signature's lookups so far, 0 with no
// history. The adaptive policy uses it to stop spending decline budget on
// placing work that is likely to be memoized away.
func (t *Table) HitProbability(sig string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.sigLookups[sig]
	if n == 0 {
		return 0
	}
	return float64(t.sigHits[sig]) / float64(n)
}

// Stats snapshots the table's counters.
func (t *Table) Stats() TableStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TableStats{
		Lookups:     t.lookups,
		Hits:        t.hits,
		Commits:     t.commits,
		Evictions:   t.tier.evictions,
		Promotions:  t.tier.promotions,
		CPUSavedSec: t.saved,
		HotEntries:  t.tier.hotLen(),
	}
	if t.tier.cold != nil {
		st.ColdEntries = t.tier.cold.Len()
	}
	return st
}

// Flush writes every hot entry through to the cold log without evicting
// it, so a restarted process serves the full table from the reopened log.
// A table without a cold log is a no-op.
func (t *Table) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tier.flush()
}

// Compact compacts the cold log once its garbage ratio reaches minGarbage
// (rewrites from eviction/promotion churn). A table without a cold log is a
// no-op.
func (t *Table) Compact(minGarbage float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tier.compact(minGarbage)
}
