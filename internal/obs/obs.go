package obs

// Obs bundles the three observability facilities that instrumented
// components share: the span tracer, the metrics registry, and the
// scheduler decision log. A nil *Obs is the disabled state; T, M, and D
// then return nil handles whose methods are all no-ops.
type Obs struct {
	Tracer    *Tracer
	Metrics   *Registry
	Decisions *DecisionLog
}

// New returns a fully enabled observability bundle. clock supplies the
// current time in seconds — the simulator passes its virtual clock, so
// traces and decision logs are deterministic across runs.
func New(clock func() float64) *Obs {
	return &Obs{
		Tracer:    NewTracer(clock),
		Metrics:   NewRegistry(),
		Decisions: NewDecisionLog(clock),
	}
}

// T returns the tracer, or nil when o is nil (disabled).
func (o *Obs) T() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// M returns the metrics registry, or nil when o is nil (disabled).
func (o *Obs) M() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// D returns the decision log, or nil when o is nil (disabled).
func (o *Obs) D() *DecisionLog {
	if o == nil {
		return nil
	}
	return o.Decisions
}
