package obs

import (
	"strconv"
	"sync"
)

// SpanID identifies a span within one Tracer. The zero SpanID means "no
// span" and is returned by all Begin variants on a nil tracer; passing it
// to End or Arg is a no-op, so disabled call sites need no guards.
type SpanID int32

// Arg is one key/value annotation attached to a span or instant event.
type Arg struct {
	Key, Val string
}

// Span is one timed interval in the execution, with a causal parent.
type Span struct {
	Cat    string // taxonomy category: workflow, task, attempt, phase, container
	Name   string // display name, e.g. the task signature
	Track  string // timeline the span renders on: node ID, "workflow", "tasks"
	Parent SpanID // enclosing span, 0 for roots
	Async  bool   // overlapping spans (tasks): exported as async begin/end pairs
	Start  float64
	End    float64 // negative while the span is still open
	Args   []Arg
}

// Open reports whether the span has not been ended yet.
func (s *Span) Open() bool { return s.End < s.Start }

// instant is a point-in-time event.
type instant struct {
	Cat, Name, Track string
	At               float64
	Args             []Arg
}

// sample is one point of a named counter time series.
type sample struct {
	Track, Name string
	At, Value   float64
}

// Tracer records spans, instant events, and counter samples against a
// caller-supplied clock. All methods are safe on a nil *Tracer and safe for
// concurrent use (the local executor runs attempts from multiple
// goroutines; the simulator is single-threaded).
type Tracer struct {
	mu       sync.Mutex
	clock    func() float64
	spans    []Span
	instants []instant
	samples  []sample
	every    int            // keep every Nth sample per series; <=1 keeps all
	strides  map[string]int // series key → samples seen
}

// NewTracer returns an enabled tracer reading time from clock.
func NewTracer(clock func() float64) *Tracer {
	return &Tracer{clock: clock, every: 1, strides: make(map[string]int)}
}

// Enabled reports whether the tracer records anything. Call sites use it to
// guard work that only feeds the tracer (e.g. formatting a span name).
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the tracer's current time, 0 on a nil tracer.
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// SetSampleEvery keeps only every nth Sample call per (track, name) series;
// n <= 1 keeps all samples. Spans and instants are never sampled away.
func (t *Tracer) SetSampleEvery(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 1 {
		n = 1
	}
	t.every = n
}

// Begin opens a span and returns its ID. parent may be 0 for a root span.
func (t *Tracer) Begin(cat, name, track string, parent SpanID) SpanID {
	return t.begin(cat, name, track, parent, false)
}

// BeginAsync opens an async span: one whose siblings on the same track may
// overlap it (task spans — many tasks are ready at once). Async spans are
// exported as trace_event async begin/end pairs instead of complete events.
func (t *Tracer) BeginAsync(cat, name, track string, parent SpanID) SpanID {
	return t.begin(cat, name, track, parent, true)
}

func (t *Tracer) begin(cat, name, track string, parent SpanID, async bool) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{
		Cat: cat, Name: name, Track: track, Parent: parent, Async: async,
		Start: t.clock(), End: -1,
	})
	return SpanID(len(t.spans))
}

// End closes the span. Ending the zero span or an already-ended span is a
// no-op.
func (t *Tracer) End(id SpanID) {
	if t == nil || id <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &t.spans[id-1]
	if sp.Open() {
		sp.End = t.clock()
	}
}

// Arg attaches a string annotation to a span.
func (t *Tracer) Arg(id SpanID, key, val string) {
	if t == nil || id <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &t.spans[id-1]
	sp.Args = append(sp.Args, Arg{Key: key, Val: val})
}

// ArgInt attaches an integer annotation to a span. The value is formatted
// inside the tracer so disabled call sites never format.
func (t *Tracer) ArgInt(id SpanID, key string, val int64) {
	if t == nil {
		return
	}
	t.Arg(id, key, strconv.FormatInt(val, 10))
}

// ArgFloat attaches a float annotation to a span.
func (t *Tracer) ArgFloat(id SpanID, key string, val float64) {
	if t == nil {
		return
	}
	t.Arg(id, key, strconv.FormatFloat(val, 'g', -1, 64))
}

// Instant records a point-in-time event (a timeout firing, a node death).
func (t *Tracer) Instant(cat, name, track string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.instants = append(t.instants, instant{Cat: cat, Name: name, Track: track, At: t.clock()})
}

// Sample appends one point to a named counter time series (event-queue
// depth, running containers). Series are decimated by SetSampleEvery.
func (t *Tracer) Sample(track, name string, value float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.every > 1 {
		key := track + "\x00" + name
		seen := t.strides[key]
		t.strides[key] = seen + 1
		if seen%t.every != 0 {
			return
		}
	}
	t.samples = append(t.samples, sample{Track: track, Name: name, At: t.clock(), Value: value})
}

// Spans returns a copy of all recorded spans, in Begin order. Span IDs are
// indexes+1 into this slice.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Counts returns how many spans, instants, and samples were recorded.
func (t *Tracer) Counts() (spans, instants, samples int) {
	if t == nil {
		return 0, 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans), len(t.instants), len(t.samples)
}
