package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. Methods are no-ops
// on a nil *Counter, so components cache the handle once and use it
// unconditionally.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative n is ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into cumulative buckets, Prometheus
// style. Bounds are upper bucket edges; an implicit +Inf bucket catches the
// rest.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1, last = +Inf
	sum    float64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// family is all series sharing one metric name: either a single unlabeled
// series or one series per value of a single label.
type family struct {
	name, help, kind string // kind: counter | gauge | histogram
	label            string // label name; "" for unlabeled families
	counters         map[string]*Counter
	gauges           map[string]*Gauge
	hists            map[string]*Histogram
	bounds           []float64 // histogram bucket bounds
}

// Registry holds named metrics and renders them as Prometheus text. All
// lookup methods return nil handles on a nil *Registry, keeping the
// disabled path allocation-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, kind, label string, bounds []float64) *family {
	f := r.families[name]
	if f == nil {
		f = &family{
			name: name, help: help, kind: kind, label: label, bounds: bounds,
			counters: make(map[string]*Counter),
			gauges:   make(map[string]*Gauge),
			hists:    make(map[string]*Histogram),
		}
		r.families[name] = f
	}
	return f
}

// Counter returns the unlabeled counter with the given name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterL(name, help, "", "")
}

// CounterL returns the counter for one value of a single-label family
// (e.g. CounterL("containers_total", "...", "node", "node-03")).
func (r *Registry) CounterL(name, help, label, value string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "counter", label, nil)
	c := f.counters[value]
	if c == nil {
		c = &Counter{}
		f.counters[value] = c
	}
	return c
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeL(name, help, "", "")
}

// GaugeL returns the gauge for one value of a single-label family.
func (r *Registry) GaugeL(name, help, label, value string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "gauge", label, nil)
	g := f.gauges[value]
	if g == nil {
		g = &Gauge{}
		f.gauges[value] = g
	}
	return g
}

// Histogram returns the histogram with the given name and bucket bounds
// (ascending upper edges; +Inf is implicit). Bounds are fixed at creation.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "histogram", "", bounds)
	h := f.hists[""]
	if h == nil {
		h = &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]int64, len(bounds)+1)}
		f.hists[""] = h
	}
	return h
}

// fnum formats a float the way Prometheus expects.
func fnum(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, families sorted by name and label values sorted within a family,
// so the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := r.families[n]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		var err error
		switch f.kind {
		case "counter":
			err = writeSeries(w, f, len(f.counters), func(v string) string {
				return strconv.FormatInt(f.counters[v].Value(), 10)
			}, f.counters)
		case "gauge":
			err = writeSeries(w, f, len(f.gauges), func(v string) string {
				return fnum(f.gauges[v].Value())
			}, f.gauges)
		case "histogram":
			err = writeHistogram(w, f)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeSeries renders one family's series in sorted label-value order.
func writeSeries[M any](w io.Writer, f *family, n int, value func(string) string, series map[string]M) error {
	vals := make([]string, 0, n)
	for v := range series {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	for _, v := range vals {
		var err error
		if f.label == "" {
			_, err = fmt.Fprintf(w, "%s %s\n", f.name, value(v))
		} else {
			_, err = fmt.Fprintf(w, "%s{%s=%q} %s\n", f.name, f.label, v, value(v))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, f *family) error {
	h := f.hists[""]
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", f.name, fnum(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", f.name, fnum(h.sum), f.name, h.n)
	return err
}
