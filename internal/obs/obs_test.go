package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedClock returns a clock that advances by step on every reading, so
// golden outputs are reproducible.
func fixedClock(step float64) func() float64 {
	t := 0.0
	return func() float64 {
		t += step
		return t - step
	}
}

// buildFixture records a small but representative trace: a workflow span,
// an async task span, an attempt with phases on a node track, a container
// span, an instant, and counter samples.
func buildFixture() *Obs {
	o := New(fixedClock(0.5))
	tr := o.T()
	wf := tr.Begin("workflow", "demo", "workflow", 0)
	task := tr.BeginAsync("task", "gen", "tasks", wf)
	cont := tr.Begin("container", "c1", "node-01", 0)
	att := tr.Begin("attempt", "gen", "node-01", task)
	tr.ArgInt(att, "attempt", 0)
	ph := tr.Begin("phase", "stage-in", "node-01", att)
	tr.End(ph)
	tr.Instant("fault", "timeout", "node-01")
	tr.Sample("sim", "event_queue_depth", 3)
	tr.Sample("sim", "event_queue_depth", 7)
	tr.End(att)
	tr.Arg(att, "exit", "0")
	tr.End(cont)
	tr.End(task)
	tr.End(wf)

	m := o.M()
	m.Counter("hiway_core_attempts_total", "attempts launched").Add(2)
	m.CounterL("hiway_yarn_containers_total", "containers per node", "node", "node-01").Inc()
	m.CounterL("hiway_yarn_containers_total", "containers per node", "node", "node-02").Add(3)
	m.Gauge("hiway_sim_event_queue_max_depth", "high-water mark").Set(41)
	h := m.Histogram("hiway_yarn_allocation_latency_seconds", "request to allocate",
		[]float64{0.25, 0.5, 1, 2})
	for _, v := range []float64{0.1, 0.3, 0.3, 1.5, 9} {
		h.Observe(v)
	}

	o.D().Record(Decision{Policy: "dataaware", Node: "node-01", Outcome: OutcomeAssign,
		Task: "gen", TaskID: 7, Queued: 3, Scanned: 2, LocalFrac: 0.75})
	o.D().Record(Decision{Policy: "dataaware", Node: "node-02", Outcome: OutcomeBlacklist,
		Queued: 2, Scanned: 0, LocalFrac: -1})
	return o
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestChromeGolden(t *testing.T) {
	o := buildFixture()
	var buf bytes.Buffer
	if err := o.T().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("exporter emitted invalid JSON:\n%s", buf.String())
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	// Async begin must precede its end; every event needs ph/pid/ts.
	for _, ev := range parsed.TraceEvents {
		if _, ok := ev["ph"]; !ok {
			t.Fatalf("event without ph: %v", ev)
		}
	}
	checkGolden(t, "chrome.golden.json", buf.Bytes())
}

func TestPrometheusGolden(t *testing.T) {
	o := buildFixture()
	var buf bytes.Buffer
	if err := o.M().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE hiway_core_attempts_total counter",
		`hiway_yarn_containers_total{node="node-01"} 1`,
		`hiway_yarn_allocation_latency_seconds_bucket{le="+Inf"} 5`,
		"hiway_yarn_allocation_latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	checkGolden(t, "metrics.golden.prom", buf.Bytes())
}

func TestDecisionLogRender(t *testing.T) {
	o := buildFixture()
	got := o.D().Render()
	// The fixture's clock is shared with the tracer, which consumed the
	// first 13 ticks of 0.5s while building spans.
	want := "6.500 dataaware node-01 assign task=gen id=7 queued=3 scanned=2 local=0.750\n" +
		"7.000 dataaware node-02 blacklist queued=2 scanned=0\n"
	if got != want {
		t.Errorf("render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	stable := o.D().RenderStable()
	if strings.Contains(stable, "id=") {
		t.Errorf("RenderStable leaked task IDs:\n%s", stable)
	}
}

// TestTracerOffZeroAlloc pins the disabled fast path: with a nil tracer,
// registry, counter, and decision log, a full instrumented event sequence
// performs zero heap allocations.
func TestTracerOffZeroAlloc(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	var c *Counter
	var g *Gauge
	var h *Histogram
	var dl *DecisionLog
	allocs := testing.AllocsPerRun(200, func() {
		id := tr.Begin("attempt", "sig", "node-01", 0)
		tr.ArgInt(id, "attempt", 3)
		tr.ArgFloat(id, "frac", 0.5)
		tr.Arg(id, "k", "v")
		tr.Sample("sim", "depth", 12)
		tr.Instant("fault", "timeout", "node-01")
		tr.End(id)
		c.Inc()
		c.Add(5)
		g.Set(2.5)
		h.Observe(0.3)
		dl.Record(Decision{Policy: "fcfs", Node: "n", Outcome: OutcomeAssign})
		_ = reg.Counter("x", "y")
		_ = tr.Enabled()
	})
	if allocs != 0 {
		t.Fatalf("disabled observability path allocated %v times per event batch, want 0", allocs)
	}
}

func TestSampling(t *testing.T) {
	tr := NewTracer(fixedClock(1))
	tr.SetSampleEvery(3)
	for i := 0; i < 10; i++ {
		tr.Sample("sim", "depth", float64(i))
	}
	_, _, samples := tr.Counts()
	if samples != 4 { // indices 0, 3, 6, 9
		t.Fatalf("samples = %d, want 4", samples)
	}
}

func TestOpenSpansExport(t *testing.T) {
	tr := NewTracer(fixedClock(1))
	id := tr.Begin("workflow", "crashed", "workflow", 0)
	_ = id // never ended: the AM was killed
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("open-span trace invalid: %s", buf.String())
	}
	if !strings.Contains(buf.String(), `"name":"crashed"`) {
		t.Fatal("open span missing from export")
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "l", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-55.5) > 1e-9 {
		t.Fatalf("sum = %g", h.Sum())
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 1`, `lat_bucket{le="10"} 2`, `lat_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestNilObsAccessors(t *testing.T) {
	var o *Obs
	if o.T() != nil || o.M() != nil || o.D() != nil {
		t.Fatal("nil Obs accessors must return nil handles")
	}
	if o.T().Now() != 0 {
		t.Fatal("nil tracer Now")
	}
	var buf bytes.Buffer
	if err := o.T().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("nil tracer export invalid")
	}
	if err := o.M().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}
