package obs

import (
	"fmt"
	"strings"
	"sync"
)

// Decision outcomes.
const (
	// OutcomeAssign: the policy handed a task to the container.
	OutcomeAssign = "assign"
	// OutcomeDecline: the policy declined the container with tasks still
	// queued (adaptive-greedy on a known-slow node, static policies on a
	// node with no planned work); the AM re-requests elsewhere.
	OutcomeDecline = "decline"
	// OutcomeBlacklist: the node failed the health gate; no policy may use
	// it until the blacklist window expires.
	OutcomeBlacklist = "blacklist"
)

// Decision is one scheduling decision: what a policy did with one allocated
// container. The stream of decisions is the scheduler's side of the
// execution trace — deterministic for a deterministic run, which the
// chaos-determinism test asserts by comparing rendered logs byte for byte.
type Decision struct {
	At        float64 // stamped by the log's clock at Record time
	Policy    string
	Node      string  // the node whose container was offered
	Outcome   string  // OutcomeAssign, OutcomeDecline, OutcomeBlacklist
	Task      string  // chosen task's signature (assign only)
	TaskID    int64   // chosen task's ID (assign only)
	Queued    int     // ready tasks queued when the decision was made
	Scanned   int     // candidates the policy actually examined
	LocalFrac float64 // input-locality fraction of the choice; -1 = not considered
}

// DecisionLog accumulates scheduling decisions. Nil-safe: a nil
// *DecisionLog records nothing and allocates nothing.
type DecisionLog struct {
	mu    sync.Mutex
	clock func() float64
	recs  []Decision
}

// NewDecisionLog returns an empty log stamping decisions with clock.
func NewDecisionLog(clock func() float64) *DecisionLog {
	return &DecisionLog{clock: clock}
}

// Record appends one decision, stamping its time.
func (l *DecisionLog) Record(d Decision) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	d.At = l.clock()
	l.recs = append(l.recs, d)
}

// Len returns the number of recorded decisions.
func (l *DecisionLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Decisions returns a copy of the recorded decisions in order.
func (l *DecisionLog) Decisions() []Decision {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Decision, len(l.recs))
	copy(out, l.recs)
	return out
}

// Render formats the log as one line per decision. The format is stable and
// fully determined by the decision stream; task IDs are process-local, so
// cross-process comparisons should use RenderStable instead.
func (l *DecisionLog) Render() string {
	return l.render(true)
}

// RenderStable renders without process-local task IDs, making logs from two
// separate runs of the same deterministic execution byte-identical.
func (l *DecisionLog) RenderStable() string {
	return l.render(false)
}

func (l *DecisionLog) render(withIDs bool) string {
	if l == nil {
		return ""
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var b strings.Builder
	for _, d := range l.recs {
		fmt.Fprintf(&b, "%.3f %s %s %s", d.At, d.Policy, d.Node, d.Outcome)
		if d.Outcome == OutcomeAssign {
			fmt.Fprintf(&b, " task=%s", d.Task)
			if withIDs {
				fmt.Fprintf(&b, " id=%d", d.TaskID)
			}
		}
		fmt.Fprintf(&b, " queued=%d scanned=%d", d.Queued, d.Scanned)
		if d.LocalFrac >= 0 {
			fmt.Fprintf(&b, " local=%.3f", d.LocalFrac)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
