package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// chromeEvent is one entry of the trace_event JSON array. Field order
// follows the trace_event spec's conventional ordering; encoding/json keeps
// struct order and sorts the Args map, so output is deterministic.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    int64          `json:"ts"` // microseconds
	Dur   *int64         `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

func micros(sec float64) int64 { return int64(sec * 1e6) }

func argMap(args []Arg) map[string]any {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]any, len(args))
	for _, a := range args {
		m[a.Key] = a.Val
	}
	return m
}

// WriteChrome renders everything the tracer recorded as Chrome trace_event
// JSON — the format chrome://tracing and Perfetto load directly. Each track
// becomes one named thread of a single "hiway" process; normal spans become
// complete ("X") events, async spans become async begin/end ("b"/"e")
// pairs keyed by span ID, instants become "i" events, and counter samples
// become "C" events. Spans still open at export time are closed at the
// tracer's current clock so a killed AM's trace remains loadable. Span and
// parent IDs ride along in args, preserving the causal tree exactly.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock()

	// Assign tids in first-appearance order across spans, instants, samples.
	tids := make(map[string]int)
	var tracks []string
	tid := func(track string) int {
		if id, ok := tids[track]; ok {
			return id
		}
		id := len(tids) + 1
		tids[track] = id
		tracks = append(tracks, track)
		return id
	}
	for i := range t.spans {
		tid(t.spans[i].Track)
	}
	for i := range t.instants {
		tid(t.instants[i].Track)
	}
	for i := range t.samples {
		tid(t.samples[i].Track)
	}

	events := make([]chromeEvent, 0, 2+len(tids)*2+2*len(t.spans)+len(t.instants)+len(t.samples))
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Args: map[string]any{"name": "hiway"},
	})
	for i, track := range tracks {
		events = append(events,
			chromeEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: i + 1, Args: map[string]any{"name": track}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: 1, Tid: i + 1, Args: map[string]any{"sort_index": i + 1}},
		)
	}

	for i := range t.spans {
		sp := &t.spans[i]
		end := sp.End
		if sp.Open() {
			end = now
		}
		args := argMap(sp.Args)
		if args == nil {
			args = make(map[string]any, 2)
		}
		args["span"] = strconv.Itoa(i + 1)
		if sp.Parent != 0 {
			args["parent"] = strconv.Itoa(int(sp.Parent))
		}
		if sp.Async {
			id := strconv.Itoa(i + 1)
			events = append(events,
				chromeEvent{Name: sp.Name, Cat: sp.Cat, Ph: "b", Ts: micros(sp.Start), Pid: 1, Tid: tids[sp.Track], ID: id, Args: args},
				chromeEvent{Name: sp.Name, Cat: sp.Cat, Ph: "e", Ts: micros(end), Pid: 1, Tid: tids[sp.Track], ID: id},
			)
			continue
		}
		dur := micros(end) - micros(sp.Start)
		events = append(events, chromeEvent{
			Name: sp.Name, Cat: sp.Cat, Ph: "X", Ts: micros(sp.Start), Dur: &dur,
			Pid: 1, Tid: tids[sp.Track], Args: args,
		})
	}
	for i := range t.instants {
		in := &t.instants[i]
		events = append(events, chromeEvent{
			Name: in.Name, Cat: in.Cat, Ph: "i", Ts: micros(in.At),
			Pid: 1, Tid: tids[in.Track], Scope: "t", Args: argMap(in.Args),
		})
	}
	for i := range t.samples {
		s := &t.samples[i]
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "C", Ts: micros(s.At),
			Pid: 1, Tid: tids[s.Track], Args: map[string]any{"value": s.Value},
		})
	}

	// Viewers require begin events before their matching end; sort by (ts,
	// metadata first, original order for ties) to keep output stable.
	sort.SliceStable(events, func(a, b int) bool {
		ea, eb := &events[a], &events[b]
		if (ea.Ph == "M") != (eb.Ph == "M") {
			return ea.Ph == "M"
		}
		return ea.Ts < eb.Ts
	})

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i := range events {
		b, err := json.Marshal(&events[i])
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
