// Package obs is the execution observability layer: a structured span and
// event tracer, a counter/gauge/histogram metrics registry, and a scheduler
// decision log, with exporters for the Chrome trace_event JSON format
// (loadable in chrome://tracing and Perfetto) and Prometheus-style text.
//
// The layer is threaded through the whole execution path — the simulation
// kernel (internal/sim), the YARN model (internal/yarn), the workflow
// scheduler policies (internal/scheduler), the application master
// (internal/core), and the provenance manager (internal/provenance) — and
// surfaces through `hiway sim -trace out.json -metrics out.prom`.
//
// # Span taxonomy
//
// Spans form a causal tree via parent IDs:
//
//	workflow                 one per AM, track "workflow"
//	└─ task                  ready → completed, async (tasks overlap freely)
//	   └─ attempt            one container execution, track = hosting node
//	      ├─ stage-in        HDFS reads of the attempt's inputs
//	      ├─ exec            the compute phase
//	      └─ stage-out       HDFS writes of the produced files
//	container                allocate → release, track = hosting node
//
// Container spans live on the same per-node track as the attempts they
// host, so the attempt nests visually inside its container in a trace
// viewer even though containers are allocated by YARN before the scheduler
// binds a task to them.
//
// # Zero-overhead off switch
//
// Every handle in this package — *Obs, *Tracer, *Registry, *DecisionLog,
// *Counter, *Gauge, *Histogram — is safe to use as nil: all methods are
// no-ops on nil receivers, and the no-op paths neither allocate nor format.
// Instrumented components therefore call the layer unconditionally; an
// execution with observability off (the default) pays only a nil check per
// event. TestTracerOffZeroAlloc pins this down.
//
// High-frequency time series recorded with Tracer.Sample can additionally
// be decimated with SetSampleEvery to bound trace size on long runs.
package obs
