package autoscale

import (
	"fmt"
	"testing"

	"hiway/internal/chaos"
	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/provenance"
	"hiway/internal/scheduler"
	"hiway/internal/sim"
	"hiway/internal/wf"
	"hiway/internal/yarn"
)

func testSpec() cluster.NodeSpec {
	return cluster.NodeSpec{VCores: 4, MemMB: 8192, CPUFactor: 1, DiskMBps: 200, NetMBps: 200}
}

type env struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	rm  *yarn.ResourceManager
	fs  *hdfs.FS
	ce  core.Env
}

func newEnv(t *testing.T, nodes int) *env {
	t.Helper()
	eng := sim.NewEngine()
	cl, err := cluster.Uniform(eng, cluster.Config{SwitchMBps: 1000, ExternalPerFlowMBps: 50}, nodes, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	fs := hdfs.New(cl, hdfs.Config{BlockSizeMB: 64, Replication: 2}, 42)
	rm := yarn.NewResourceManager(eng, cl, yarn.Config{})
	prov, err := provenance.NewManager(provenance.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	return &env{eng: eng, cl: cl, rm: rm, fs: fs,
		ce: core.Env{Cluster: cl, FS: fs, RM: rm, Prov: prov}}
}

func (e *env) manager(t *testing.T, cfg ManagerConfig) *Manager {
	t.Helper()
	if cfg.Spec.VCores == 0 {
		cfg.Spec = testSpec()
	}
	return NewManager(e.eng, e.cl, e.rm, e.fs, cfg)
}

// chainDriver builds prep → work ×n → merge.
func chainDriver(n int) wf.StaticDriver {
	prep := wf.NewTask("prep", []string{"/in/seed"}, []wf.FileInfo{{Path: "/tmp/split", SizeMB: 10}})
	prep.CPUSeconds = 5
	tasks := []*wf.Task{prep}
	var mergeIn []string
	for i := 0; i < n; i++ {
		out := fmt.Sprintf("/tmp/part%d", i)
		w := wf.NewTask("work", []string{"/tmp/split"}, []wf.FileInfo{{Path: out, SizeMB: 5}})
		w.CPUSeconds = 30
		tasks = append(tasks, w)
		mergeIn = append(mergeIn, out)
	}
	merge := wf.NewTask("merge", mergeIn, []wf.FileInfo{{Path: "/tmp/result", SizeMB: 1}})
	merge.CPUSeconds = 2
	tasks = append(tasks, merge)
	sb := &wf.StaticBase{WFName: "chain"}
	sb.Build = func() ([]*wf.Task, []string, []wf.Edge, error) {
		return tasks, []string{"/in/seed"}, nil, nil
	}
	return sb
}

func TestManagerJoinDrainLeaveAcrossLayers(t *testing.T) {
	e := newEnv(t, 2)
	m := e.manager(t, ManagerConfig{})
	id, err := m.Join("", true)
	if err != nil {
		t.Fatal(err)
	}
	if id != "node-02" {
		t.Fatalf("joined id = %s, want node-02", id)
	}
	if e.cl.Node(id) == nil || e.rm.NodeRunning(id) != 0 {
		t.Fatal("join did not register across layers")
	}
	if err := m.Drain(id); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	if e.cl.Node(id) != nil {
		t.Fatal("drained node still in cluster")
	}
	if got := m.Size(); got != 2 {
		t.Fatalf("size after leave = %d, want 2", got)
	}
	if m.Joins != 1 || m.Leaves != 1 {
		t.Fatalf("joins/leaves = %d/%d, want 1/1", m.Joins, m.Leaves)
	}
	// The departed id can rejoin as a fresh machine.
	if _, err := m.Join(id, false); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
}

func TestControllerScalesUpAndDownWithHysteresis(t *testing.T) {
	e := newEnv(t, 2)
	m := e.manager(t, ManagerConfig{})
	backlog := 6
	ctl := NewController(e.eng, m, &Reactive{PerNode: 1}, func() Signals {
		return Signals{QueueDepth: backlog}
	}, ControllerConfig{IntervalSec: 10, CooldownSec: 15, UpAfter: 2, DownAfter: 2,
		MinNodes: 2, MaxNodes: 8, SpotScaleOut: true, HorizonSec: 400})
	ctl.Start()
	e.eng.RunUntil(100)
	if got := m.Size(); got != 6 {
		t.Fatalf("size under backlog 6 = %d, want 6", got)
	}
	if ctl.ScaleUps == 0 {
		t.Fatal("no scale-up recorded")
	}
	backlog = 1
	e.eng.Run()
	if got := m.Size(); got != 2 {
		t.Fatalf("size after lull = %d, want MinNodes 2", got)
	}
	if ctl.ScaleDowns == 0 {
		t.Fatal("no scale-down recorded")
	}
	if ctl.Flaps != 1 {
		t.Fatalf("flaps = %d, want 1 (one direction reversal)", ctl.Flaps)
	}
}

func TestControllerCooldownDampsOscillation(t *testing.T) {
	e := newEnv(t, 2)
	m := e.manager(t, ManagerConfig{})
	flip := false
	ctl := NewController(e.eng, m, &Reactive{PerNode: 1}, func() Signals {
		flip = !flip
		if flip {
			return Signals{QueueDepth: 8}
		}
		return Signals{QueueDepth: 1}
	}, ControllerConfig{IntervalSec: 10, CooldownSec: 120, UpAfter: 2, DownAfter: 2,
		MinNodes: 2, MaxNodes: 8, HorizonSec: 600})
	ctl.Start()
	e.eng.Run()
	actions := ctl.ScaleUps + ctl.ScaleDowns
	// A per-tick follower would act on nearly every evaluation; hysteresis
	// demands two consecutive agreeing evaluations, which a strict
	// alternation never produces.
	if actions != 0 {
		t.Fatalf("oscillating signal caused %d scale actions, want 0", actions)
	}
	if ctl.Evals < 50 {
		t.Fatalf("evals = %d, want the full horizon's worth", ctl.Evals)
	}
}

func TestPredictiveLeadsBuildingBurst(t *testing.T) {
	p := &Predictive{PerNode: 1, Alpha: 0.5, LeadEvals: 3}
	r := &Reactive{PerNode: 1}
	var pd, rd int
	for i, backlog := range []int{0, 2, 4, 6, 8} {
		s := Signals{QueueDepth: backlog}
		pd = p.Desired(float64(i*30), s, 4)
		rd = r.Desired(float64(i*30), s, 4)
	}
	if pd <= rd {
		t.Fatalf("predictive desired %d not ahead of reactive %d on a building ramp", pd, rd)
	}
}

func TestSpotChaosIsDeterministic(t *testing.T) {
	run := func() (notices, leaves int, order []string) {
		e := newEnv(t, 2)
		m := e.manager(t, ManagerConfig{Protected: []string{"node-00"}, SpotNoticeSec: 30})
		m.AddNodes(4, true)
		var events []string
		e.rm.OnMembership(func(now float64, node, event string) {
			events = append(events, fmt.Sprintf("%g:%s:%s", now, node, event))
		})
		plan, err := chaos.Parse("spotrate=0.5;spotnotice=30;spotevery=20", 7)
		if err != nil {
			t.Fatal(err)
		}
		plan.ArmSpot(e.eng, m, 200)
		e.eng.Run()
		return m.Notices, m.Leaves, events
	}
	n1, l1, ev1 := run()
	n2, l2, ev2 := run()
	if n1 == 0 || l1 == 0 {
		t.Fatalf("expected some spot churn, got notices=%d leaves=%d", n1, l1)
	}
	if n1 != n2 || l1 != l2 || fmt.Sprint(ev1) != fmt.Sprint(ev2) {
		t.Fatalf("same seed diverged: %v vs %v", ev1, ev2)
	}
}

// TestMembershipEdgeCases drives the satellite scenarios end to end on the
// full core stack: workflows must survive every planned-membership hazard
// without leaking containers.
func TestMembershipEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"drain-deadline-expiry", func(t *testing.T) {
			// A busy node is drained with a short deadline: the drain ends
			// ungracefully, the preempted task retries elsewhere, and the
			// node leaves every layer.
			e := newEnv(t, 3)
			m := e.manager(t, ManagerConfig{DrainDeadlineSec: 10, Protected: []string{"node-00"}})
			e.fs.Put("/in/seed", 20, "")
			am, err := core.Launch(e.ce, chainDriver(4), scheduler.NewFCFS(), core.Config{AMNode: "node-00", MaxRetries: 5})
			if err != nil {
				t.Fatal(err)
			}
			e.eng.RunUntil(12) // mid work phase
			if err := m.Drain("node-02"); err != nil {
				t.Fatal(err)
			}
			e.eng.Run()
			rep, err := am.Report()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Succeeded {
				t.Fatal("workflow failed after drain-deadline preemption")
			}
			if e.cl.Node("node-02") != nil {
				t.Fatal("node-02 still in cluster after drain deadline")
			}
			if e.rm.RunningContainers() != 0 {
				t.Fatalf("leaked containers: %d", e.rm.RunningContainers())
			}
		}},
		{"spot-reclaim-of-am-node", func(t *testing.T) {
			// The node hosting the AM is spot-reclaimed. The AM dies with
			// it; recovery is a fresh incarnation via core.Resume on the
			// surviving substrate (plus the node rejoining as a new
			// machine), re-executing zero completed work.
			e := newEnv(t, 4)
			m := e.manager(t, ManagerConfig{})
			e.fs.Put("/in/seed", 20, "")
			cfg := core.Config{WorkflowID: "wf-elastic-am", AMNode: "node-00", MaxRetries: 5}
			am, err := core.Launch(e.ce, chainDriver(4), scheduler.NewFCFS(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			e.eng.RunUntil(12)
			completedAtKill := am.CompletedTasks()
			m.ReclaimNode("node-00")
			am.Kill()
			if _, err := m.Join("node-00", false); err != nil {
				t.Fatal(err)
			}
			am2, err := core.Resume(e.ce, chainDriver(4), scheduler.NewFCFS(), cfg, e.ce.Prov.Store())
			if err != nil {
				t.Fatal(err)
			}
			e.eng.Run()
			rep, err := am2.Report()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Succeeded {
				t.Fatal("workflow failed after AM-node reclaim + resume")
			}
			if completedAtKill > 0 && rep.Recovered < completedAtKill {
				t.Fatalf("recovered %d < completed-at-kill %d: lost completions", rep.Recovered, completedAtKill)
			}
			if e.rm.RunningContainers() != 0 {
				t.Fatalf("leaked containers: %d", e.rm.RunningContainers())
			}
		}},
		{"rejoin-same-id-after-blacklist", func(t *testing.T) {
			// A node is blacklisted, leaves, and rejoins under the same ID:
			// the new incarnation must start with a clean health record.
			e := newEnv(t, 3)
			health := scheduler.NewNodeHealthTracker(e.eng.Now, 3, 600)
			m := e.manager(t, ManagerConfig{Health: health, Protected: []string{"node-00"}})
			for i := 0; i < 3; i++ {
				health.ReportFailure("node-02")
			}
			if health.Healthy("node-02") {
				t.Fatal("node-02 should be blacklisted")
			}
			if err := m.Drain("node-02"); err != nil {
				t.Fatal(err)
			}
			e.eng.Run()
			if got := health.Blacklisted(); len(got) != 0 {
				t.Fatalf("blacklist after leave = %v, want empty", got)
			}
			if _, err := m.Join("node-02", false); err != nil {
				t.Fatal(err)
			}
			if !health.Healthy("node-02") {
				t.Fatal("rejoined node inherited the old incarnation's blacklist")
			}
		}},
		{"drain-last-non-blacklisted-node", func(t *testing.T) {
			// Every worker except one is blacklisted; draining that last
			// healthy worker must not strand the workflow — the drain
			// deadline preempts, and retries fall back to the blacklisted
			// node once its penalty lapses (backoff re-admission).
			e := newEnv(t, 3)
			health := scheduler.NewNodeHealthTracker(e.eng.Now, 3, 30)
			m := e.manager(t, ManagerConfig{DrainDeadlineSec: 10, Protected: []string{"node-00"}, Health: health})
			for i := 0; i < 3; i++ {
				health.ReportFailure("node-01")
			}
			e.fs.Put("/in/seed", 20, "")
			am, err := core.Launch(e.ce, chainDriver(3), scheduler.NewFCFS(),
				core.Config{AMNode: "node-00", MaxRetries: 5, Health: health})
			if err != nil {
				t.Fatal(err)
			}
			e.eng.RunUntil(12)
			if err := m.Drain("node-02"); err != nil {
				t.Fatal(err)
			}
			e.eng.Run()
			rep, err := am.Report()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Succeeded {
				t.Fatal("workflow failed after draining the last non-blacklisted worker")
			}
			if e.rm.RunningContainers() != 0 {
				t.Fatalf("leaked containers: %d", e.rm.RunningContainers())
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}
