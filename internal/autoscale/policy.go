package autoscale

import "math"

// Signals is the load snapshot a Policy sizes the cluster from. The service
// tier supplies queue depth and backlog; the RM supplies allocation
// pressure.
type Signals struct {
	// QueueDepth is the service admission queue length (workflows waiting
	// to be admitted).
	QueueDepth int
	// Running is the number of workflows currently executing.
	Running int
	// PendingRequests is the RM-wide count of container requests waiting
	// for capacity.
	PendingRequests int
	// AllocLatencySec is the RM's recent request→allocation latency (EWMA).
	AllocLatencySec float64
}

// Backlog is the total demand in workflows: queued plus running.
func (s Signals) Backlog() int { return s.QueueDepth + s.Running }

// Policy maps a load snapshot to a desired cluster size. Implementations
// may keep state across evaluations (the predictive policy does); they are
// evaluated at deterministic virtual times, so stateful policies stay
// reproducible.
type Policy interface {
	// Name identifies the policy in reports and metrics.
	Name() string
	// Desired returns the target node count given the signals and the
	// current size. The controller clamps the result to [MinNodes,
	// MaxNodes] and applies hysteresis and cooldown.
	Desired(now float64, s Signals, current int) int
}

// Static pins the cluster at a fixed size — the over-provisioned baseline
// every elastic policy is judged against.
type Static struct {
	// Nodes is the fixed target size.
	Nodes int
}

// Name implements Policy.
func (p *Static) Name() string { return "static" }

// Desired implements Policy.
func (p *Static) Desired(now float64, s Signals, current int) int { return p.Nodes }

// Reactive sizes the cluster proportionally to the current backlog, with an
// allocation-latency escape hatch: when containers wait too long for
// capacity, it asks for one more node than it has regardless of backlog.
type Reactive struct {
	// PerNode is how many concurrent workflows one node is expected to
	// carry. Default 1.
	PerNode float64
	// LatencyHighSec triggers the +1 escalation. Default 5s.
	LatencyHighSec float64
}

// Name implements Policy.
func (p *Reactive) Name() string { return "reactive" }

// Desired implements Policy.
func (p *Reactive) Desired(now float64, s Signals, current int) int {
	perNode := p.PerNode
	if perNode <= 0 {
		perNode = 1
	}
	latHigh := p.LatencyHighSec
	if latHigh <= 0 {
		latHigh = 5
	}
	desired := int(math.Ceil(float64(s.Backlog()) / perNode))
	if s.AllocLatencySec > latHigh && s.PendingRequests > 0 && desired <= current {
		desired = current + 1
	}
	return desired
}

// Predictive extrapolates demand: it tracks an exponentially weighted
// moving average of the backlog and its per-evaluation trend, and sizes the
// cluster for the forecast a few evaluations ahead — so capacity arrives
// before a building burst peaks, at the price of overshooting on spikes
// that immediately recede.
type Predictive struct {
	// PerNode is how many concurrent workflows one node is expected to
	// carry. Default 1.
	PerNode float64
	// Alpha is the EWMA smoothing factor in (0,1]. Default 0.4.
	Alpha float64
	// LeadEvals is how many evaluations ahead to forecast. Default 3.
	LeadEvals int
	// LatencyHighSec triggers the +1 escalation, as in Reactive. Default 5s.
	LatencyHighSec float64

	initialized bool
	ewma        float64
	trend       float64
}

// Name implements Policy.
func (p *Predictive) Name() string { return "predictive" }

// Desired implements Policy.
func (p *Predictive) Desired(now float64, s Signals, current int) int {
	perNode := p.PerNode
	if perNode <= 0 {
		perNode = 1
	}
	alpha := p.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.4
	}
	lead := p.LeadEvals
	if lead <= 0 {
		lead = 3
	}
	latHigh := p.LatencyHighSec
	if latHigh <= 0 {
		latHigh = 5
	}
	demand := float64(s.Backlog())
	if !p.initialized {
		p.initialized = true
		p.ewma = demand
	} else {
		prev := p.ewma
		p.ewma = alpha*demand + (1-alpha)*p.ewma
		p.trend = alpha*(p.ewma-prev) + (1-alpha)*p.trend
	}
	forecast := p.ewma + float64(lead)*p.trend
	if forecast < 0 {
		forecast = 0
	}
	desired := int(math.Ceil(forecast / perNode))
	if s.AllocLatencySec > latHigh && s.PendingRequests > 0 && desired <= current {
		desired = current + 1
	}
	return desired
}

// NewPolicy builds a policy by name ("static", "reactive", "predictive")
// with default tuning; staticNodes sizes the static policy. Unknown names
// return nil.
func NewPolicy(name string, staticNodes int) Policy {
	switch name {
	case "static":
		return &Static{Nodes: staticNodes}
	case "reactive":
		return &Reactive{}
	case "predictive":
		return &Predictive{}
	}
	return nil
}
