package autoscale

import (
	"hiway/internal/obs"
	"hiway/internal/sim"
)

// ControllerConfig tunes the autoscaling control loop.
type ControllerConfig struct {
	// IntervalSec is the evaluation period. Default 30s.
	IntervalSec float64
	// CooldownSec is the minimum gap between two scale actions. Default 90s.
	CooldownSec float64
	// UpAfter is how many consecutive evaluations must want a larger
	// cluster before scaling up. Default 2.
	UpAfter int
	// DownAfter is how many consecutive evaluations must want a smaller
	// cluster before scaling down — more conservative than UpAfter so a
	// brief lull does not shed capacity a burst still needs. Default 4.
	DownAfter int
	// MinNodes and MaxNodes clamp the desired size. MinNodes defaults to 1;
	// MaxNodes defaults to unbounded.
	MinNodes int
	MaxNodes int
	// SpotScaleOut makes scale-ups join spot nodes (cheap, reclaimable)
	// instead of on-demand ones.
	SpotScaleOut bool
	// HorizonSec stops the loop after this virtual time, letting the
	// engine quiesce. Required: a controller without a horizon would tick
	// forever.
	HorizonSec float64
	// Done, when set, stops the loop early (e.g. when the service window
	// closed and the queue drained).
	Done func() bool
}

// Controller periodically evaluates a Policy against live Signals and
// resizes the cluster through the Manager, with hysteresis (consecutive
// evaluations must agree before acting) and a cooldown between actions so
// bursty arrivals do not make membership flap.
type Controller struct {
	eng *sim.Engine
	m   *Manager
	pol Policy
	sig func() Signals
	cfg ControllerConfig

	lastAction float64
	lastDir    int // +1 grew, -1 shrank, 0 never acted
	upStreak   int
	downStreak int

	// lifetime statistics, readable after a run
	ScaleUps, ScaleDowns, Flaps, Evals int

	desiredG *obs.Gauge
	actualG  *obs.Gauge
	upsC     *obs.Counter
	downsC   *obs.Counter
	flapsC   *obs.Counter
}

// NewController builds a control loop over the manager. sig is consulted
// once per evaluation.
func NewController(eng *sim.Engine, m *Manager, pol Policy, sig func() Signals, cfg ControllerConfig) *Controller {
	if cfg.IntervalSec <= 0 {
		cfg.IntervalSec = 30
	}
	if cfg.CooldownSec <= 0 {
		cfg.CooldownSec = 90
	}
	if cfg.UpAfter <= 0 {
		cfg.UpAfter = 2
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 4
	}
	if cfg.MinNodes <= 0 {
		cfg.MinNodes = 1
	}
	return &Controller{eng: eng, m: m, pol: pol, sig: sig, cfg: cfg, lastAction: -cfg.CooldownSec}
}

// SetObs attaches the hiway_autoscale_* metrics. A nil o (the default)
// disables them.
func (c *Controller) SetObs(o *obs.Obs) {
	m := o.M()
	c.desiredG = m.Gauge("hiway_autoscale_desired_nodes", "cluster size the policy wants")
	c.actualG = m.Gauge("hiway_autoscale_actual_nodes", "cluster size eligible for allocations")
	c.upsC = m.Counter("hiway_autoscale_scale_ups_total", "scale-up actions taken")
	c.downsC = m.Counter("hiway_autoscale_scale_downs_total", "scale-down actions taken")
	c.flapsC = m.Counter("hiway_autoscale_flaps_total", "scale actions that reversed the previous direction")
}

// Start schedules the first evaluation one interval from now. The loop
// re-arms itself until HorizonSec passes or Done reports true.
func (c *Controller) Start() {
	c.eng.Schedule(c.cfg.IntervalSec, c.tick)
}

func (c *Controller) tick() {
	if c.cfg.Done != nil && c.cfg.Done() {
		return
	}
	c.evaluate()
	if c.eng.Now()+c.cfg.IntervalSec <= c.cfg.HorizonSec {
		c.eng.Schedule(c.cfg.IntervalSec, c.tick)
	}
}

func (c *Controller) evaluate() {
	c.Evals++
	now := c.eng.Now()
	cur := c.m.Size()
	des := c.pol.Desired(now, c.sig(), cur)
	if des < c.cfg.MinNodes {
		des = c.cfg.MinNodes
	}
	if c.cfg.MaxNodes > 0 && des > c.cfg.MaxNodes {
		des = c.cfg.MaxNodes
	}
	c.desiredG.Set(float64(des))
	c.actualG.Set(float64(cur))
	switch {
	case des > cur:
		c.upStreak++
		c.downStreak = 0
	case des < cur:
		c.downStreak++
		c.upStreak = 0
	default:
		c.upStreak = 0
		c.downStreak = 0
		return
	}
	if now-c.lastAction < c.cfg.CooldownSec {
		return
	}
	if des > cur && c.upStreak >= c.cfg.UpAfter {
		c.m.AddNodes(des-cur, c.cfg.SpotScaleOut)
		c.ScaleUps++
		c.upsC.Inc()
		if c.lastDir == -1 {
			c.Flaps++
			c.flapsC.Inc()
		}
		c.lastDir = 1
		c.lastAction = now
		c.upStreak = 0
	} else if des < cur && c.downStreak >= c.cfg.DownAfter {
		c.m.RemoveNodes(cur - des)
		c.ScaleDowns++
		c.downsC.Inc()
		if c.lastDir == 1 {
			c.Flaps++
			c.flapsC.Inc()
		}
		c.lastDir = -1
		c.lastAction = now
		c.downStreak = 0
	}
}
