// Package autoscale adds elastic cluster membership on top of the simulated
// substrate: a Manager that joins, drains, and removes nodes consistently
// across the cluster, YARN, and HDFS layers, and a Controller that sizes the
// cluster from load signals through pluggable policies (static, reactive,
// predictive) with hysteresis and cooldown so burst arrivals do not make it
// flap.
//
// The Manager is also the chaos.NodeReclaimer: the spot-preemption chaos
// mode drives the same two-phase notice→reclaim flow an autoscaler-initiated
// graceful decommission uses, so every membership transition — planned or
// hostile — goes through one audited code path. Everything is deterministic
// under seed: decisions derive from virtual time and seeded hashes, never
// from wall-clock or map iteration order.
package autoscale

import (
	"fmt"
	"sort"

	"hiway/internal/cluster"
	"hiway/internal/hdfs"
	"hiway/internal/obs"
	"hiway/internal/scheduler"
	"hiway/internal/sim"
	"hiway/internal/yarn"
)

// SpotPrice is the default price of a spot node-second relative to an
// on-demand node-second — the discount that makes preemptible capacity
// worth the churn.
const SpotPrice = 0.3

// ManagerConfig tunes the membership manager.
type ManagerConfig struct {
	// Spec is the hardware profile for nodes joined by the manager.
	Spec cluster.NodeSpec
	// DrainDeadlineSec bounds a graceful decommission: containers still
	// running when it expires are preempted. Default 120s.
	DrainDeadlineSec float64
	// SpotNoticeSec is the notice→reclaim gap honored when a spot node is
	// preempted through NoticeNode. Default 120s.
	SpotNoticeSec float64
	// Protected nodes are never drained or reclaimed — typically the node
	// hosting application masters.
	Protected []string
	// Rereplicate restores HDFS replication after a node leaves.
	Rereplicate bool
	// Health, when set, forgets departed nodes so blacklist state cannot
	// leak or outlive a node's incarnation.
	Health *scheduler.NodeHealthTracker
}

// Manager performs node membership transitions consistently across the
// cluster, RM, and filesystem layers. It implements chaos.NodeReclaimer.
type Manager struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	rm  *yarn.ResourceManager
	fs  *hdfs.FS
	cfg ManagerConfig

	protected map[string]bool
	spans     map[string]obs.SpanID

	obs     *obs.Obs
	noticeC *obs.Counter

	// lifetime statistics, readable after a run
	Joins, Leaves, Notices int
}

// NewManager builds a membership manager. fs may be nil for runs without a
// filesystem.
func NewManager(eng *sim.Engine, cl *cluster.Cluster, rm *yarn.ResourceManager, fs *hdfs.FS, cfg ManagerConfig) *Manager {
	if cfg.DrainDeadlineSec <= 0 {
		cfg.DrainDeadlineSec = 120
	}
	if cfg.SpotNoticeSec <= 0 {
		cfg.SpotNoticeSec = 120
	}
	m := &Manager{
		eng:       eng,
		cl:        cl,
		rm:        rm,
		fs:        fs,
		cfg:       cfg,
		protected: make(map[string]bool, len(cfg.Protected)),
		spans:     make(map[string]obs.SpanID),
	}
	for _, id := range cfg.Protected {
		m.protected[id] = true
	}
	return m
}

// SetObs attaches observability: node-lifecycle spans (join → leave) and
// the preemption-notice counter. A nil o (the default) disables all of it.
func (m *Manager) SetObs(o *obs.Obs) {
	m.obs = o
	m.noticeC = o.M().Counter("hiway_autoscale_spot_notices_total",
		"spot preemption notices delivered to nodes")
}

// Size returns the number of nodes currently eligible for allocations
// (live, not draining).
func (m *Manager) Size() int { return len(m.rm.LiveNodes()) }

// Join adds one node across all layers. An empty id auto-assigns the next
// unused name; a non-empty id lets a departed node rejoin (as a fresh
// machine — its previous replicas were forgotten when it left). Returns the
// node's id.
func (m *Manager) Join(id string, spot bool) (string, error) {
	n, err := m.cl.AddNode(id, m.cfg.Spec)
	if err != nil {
		return "", err
	}
	if err := m.rm.AddNode(n.ID, m.cfg.Spec.VCores, m.cfg.Spec.MemMB, spot); err != nil {
		m.cl.RemoveNode(n.ID)
		return "", err
	}
	m.Joins++
	if tr := m.obs.T(); tr.Enabled() {
		sp := tr.Begin("node-lifecycle", n.ID, n.ID, 0)
		if spot {
			tr.Arg(sp, "class", "spot")
		} else {
			tr.Arg(sp, "class", "on-demand")
		}
		m.spans[n.ID] = sp
	}
	return n.ID, nil
}

// AddNodes joins n nodes of the configured class and returns their ids.
func (m *Manager) AddNodes(n int, spot bool) []string {
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id, err := m.Join("", spot)
		if err != nil {
			break
		}
		ids = append(ids, id)
	}
	return ids
}

// drainCandidates returns removable nodes in preferred-first order: spot
// before on-demand, then fewer running containers, then higher id (newest
// naming first) — so scale-down sheds the cheapest, emptiest capacity.
func (m *Manager) drainCandidates() []string {
	live := m.rm.LiveNodes()
	spot := make(map[string]bool)
	for _, id := range m.rm.SpotNodes() {
		spot[id] = true
	}
	cands := live[:0:0]
	for _, id := range live {
		if !m.protected[id] {
			cands = append(cands, id)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if spot[a] != spot[b] {
			return spot[a]
		}
		ra, rb := m.rm.NodeRunning(a), m.rm.NodeRunning(b)
		if ra != rb {
			return ra < rb
		}
		return a > b
	})
	return cands
}

// RemoveNodes gracefully drains up to n removable nodes and returns the ids
// chosen. Each node leaves for good once empty or at the drain deadline.
func (m *Manager) RemoveNodes(n int) []string {
	cands := m.drainCandidates()
	if n > len(cands) {
		n = len(cands)
	}
	var out []string
	for _, id := range cands[:n] {
		if err := m.Drain(id); err == nil {
			out = append(out, id)
		}
	}
	return out
}

// Drain starts a graceful decommission with the configured deadline; the
// node is removed from all layers when the drain completes. Its HDFS blocks
// start evacuating immediately, so the drain window doubles as the data
// migration window.
func (m *Manager) Drain(id string) error {
	if m.protected[id] {
		return fmt.Errorf("autoscale: node %s is protected", id)
	}
	if err := m.rm.DrainNode(id, m.cfg.DrainDeadlineSec, m.onDrained); err != nil {
		return err
	}
	m.evacuate(id)
	return nil
}

// evacuate marks a departing node as decommissioning in HDFS and kicks off
// the copies that move its blocks to staying nodes. Without this, two
// concurrent drains could take away both replicas of a block before either
// drain finishes.
func (m *Manager) evacuate(id string) {
	if m.fs == nil || !m.cfg.Rereplicate {
		return
	}
	m.fs.DecommissionNode(id)
	m.fs.Rereplicate(func(int) {})
}

func (m *Manager) onDrained(node string, graceful bool) {
	m.finalizeLeave(node)
}

// finalizeLeave removes a node from every layer. Idempotent: the first
// caller (drain completion, reclaim, or deadline expiry) wins.
func (m *Manager) finalizeLeave(node string) {
	if m.cl.Node(node) == nil {
		return // already gone
	}
	m.rm.RemoveNode(node) // no-op error if the RM already dropped it
	if m.fs != nil {
		m.fs.KillNode(node)
		m.fs.ForgetNode(node)
		if m.cfg.Rereplicate {
			m.fs.Rereplicate(func(int) {})
		}
	}
	m.cl.RemoveNode(node)
	if m.cfg.Health != nil {
		m.cfg.Health.Forget(node)
	}
	m.Leaves++
	if tr := m.obs.T(); tr.Enabled() {
		if sp, ok := m.spans[node]; ok {
			tr.End(sp)
			delete(m.spans, node)
		} else {
			tr.Instant("node-lifecycle", "node-left", node)
		}
	}
}

// SpotNodes implements chaos.NodeReclaimer: live, not-yet-draining spot
// nodes minus protected ones, sorted.
func (m *Manager) SpotNodes() []string {
	all := m.rm.SpotNodes()
	out := all[:0:0]
	for _, id := range all {
		if !m.protected[id] {
			out = append(out, id)
		}
	}
	return out
}

// NoticeNode implements chaos.NodeReclaimer: a spot preemption notice
// starts an un-deadlined drain (the market's reclaim, not a timer, ends
// it). Notices for unknown, protected, or already-draining nodes are
// dropped.
func (m *Manager) NoticeNode(id string) {
	if m.protected[id] || m.cl.Node(id) == nil || m.rm.IsDraining(id) {
		return
	}
	if err := m.rm.DrainNode(id, 0, m.onDrained); err != nil {
		return
	}
	m.evacuate(id) // use the notice window to move data off the node
	m.Notices++
	m.noticeC.Inc()
	m.obs.T().Instant("node-lifecycle", "spot-notice", id)
}

// ReclaimNode implements chaos.NodeReclaimer: the node is taken away now.
// Containers still running are preempted (their tasks retry elsewhere); a
// node that already finished draining is a no-op.
func (m *Manager) ReclaimNode(id string) {
	if m.protected[id] {
		return
	}
	m.finalizeLeave(id)
}
