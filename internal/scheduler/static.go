package scheduler

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hiway/internal/obs"
	"hiway/internal/wf"
)

// staticBase holds the machinery shared by static policies: a fixed
// task→node assignment computed by Plan, per-node FIFO queues of ready
// tasks, and strict container placement.
type staticBase struct {
	healthGate
	obsSink
	policy     string
	assignment map[int64]string // task ID → node
	order      map[int64]int    // task ID → dispatch priority (lower first)
	ready      map[string][]*wf.Task
	queued     int
	planned    bool
}

func (s *staticBase) Name() string { return s.policy }

// OnTaskReady implements Scheduler.
func (s *staticBase) OnTaskReady(t *wf.Task) {
	node := s.assignment[t.ID]
	s.ready[node] = s.insertByOrder(s.ready[node], t)
	s.queued++
}

// insertByOrder places t into q keeping plan priority order (binary search
// plus shift, instead of re-sorting the queue on every insertion). Equal
// priorities keep insertion order, like the stable sort they replace.
func (s *staticBase) insertByOrder(q []*wf.Task, t *wf.Task) []*wf.Task {
	pos := s.order[t.ID]
	i := sort.Search(len(q), func(k int) bool { return s.order[q[k].ID] > pos })
	q = append(q, nil)
	copy(q[i+1:], q[i:])
	q[i] = t
	return q
}

// Placement implements Scheduler: static policies enforce their plan.
func (s *staticBase) Placement(t *wf.Task) (string, bool) {
	node, ok := s.assignment[t.ID]
	if !ok {
		return "", false
	}
	return node, true
}

// Select implements Scheduler: only tasks planned for this node qualify.
func (s *staticBase) Select(node string) *wf.Task {
	q := s.ready[node]
	if len(q) == 0 {
		return nil
	}
	if !s.nodeOK(node) {
		s.noteDecline(s.policy, node, obs.OutcomeBlacklist, s.queued, 0)
		return nil
	}
	queuedBefore := s.queued
	t := q[0]
	copy(q, q[1:])
	q[len(q)-1] = nil
	s.ready[node] = q[:len(q)-1]
	s.queued--
	s.noteAssign(s.policy, node, t, queuedBefore, 1, -1)
	return t
}

// Queued implements Scheduler.
func (s *staticBase) Queued() int { return s.queued }

// Reassign re-pins a task to a different node — used by the AM when a task
// failed on its planned node and must be retried elsewhere (§3.1), and when
// a pinned node dies with the task still queued. A queued task moves to the
// new node's ready list so it cannot starve under a dead node.
func (s *staticBase) Reassign(t *wf.Task, node string) {
	old, ok := s.assignment[t.ID]
	s.assignment[t.ID] = node
	if !ok || old == node {
		return
	}
	q := s.ready[old]
	for i, qt := range q {
		if qt.ID == t.ID {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			s.ready[old] = q[:len(q)-1]
			s.ready[node] = s.insertByOrder(s.ready[node], t)
			break
		}
	}
}

func (s *staticBase) init(policy string) {
	s.policy = policy
	s.assignment = make(map[int64]string)
	s.order = make(map[int64]int)
	s.ready = make(map[string][]*wf.Task)
}

// RoundRobin assigns tasks to nodes in turn and thus in equal numbers — the
// basic static policy of §3.4. Tasks are walked in topological order so
// early pipeline stages spread evenly.
type RoundRobin struct {
	staticBase
}

// NewRoundRobin returns an unplanned round-robin scheduler.
func NewRoundRobin() *RoundRobin {
	rr := &RoundRobin{}
	rr.init(PolicyRoundRobin)
	return rr
}

// Plan implements StaticPlanner.
func (s *RoundRobin) Plan(dag *wf.DAG, nodes []NodeInfo) error {
	if s.planned {
		return fmt.Errorf("scheduler: %s already planned", s.policy)
	}
	if len(nodes) == 0 {
		return fmt.Errorf("scheduler: no nodes to plan onto")
	}
	for i, t := range dag.TopoOrder() {
		s.assignment[t.ID] = nodes[i%len(nodes)].ID
		s.order[t.ID] = i
	}
	s.planned = true
	return nil
}

// HEFT is the heterogeneous-earliest-finish-time policy [Topcuoglu et al.]:
// tasks are ranked by their expected time from task onset to workflow
// terminus (upward rank) and assigned, by decreasing rank, to the node with
// the earliest finish time under insertion-based scheduling. Runtime
// estimates come from provenance; untried (signature, node) pairs estimate
// zero, which makes unexplored nodes attractive and drives the exploration
// visible in the paper's Fig. 9.
// EstimateMode selects how HEFT treats (signature, node) pairs without any
// observation.
type EstimateMode int

const (
	// EstimateLatestZeroDefault is the paper's strategy: use the latest
	// observation; assume zero for untried pairs, which makes unexplored
	// nodes attractive and drives exploration.
	EstimateLatestZeroDefault EstimateMode = iota
	// EstimateMeanFallback substitutes the signature's mean across nodes
	// for untried pairs — no exploration incentive. Used by the ablation
	// benchmarks to quantify what the default-zero strategy buys.
	EstimateMeanFallback
)

type HEFT struct {
	staticBase
	est  Estimator
	rng  *rand.Rand
	mode EstimateMode
}

// NewHEFT returns an unplanned HEFT scheduler over the estimator.
func NewHEFT(est Estimator) *HEFT {
	h := &HEFT{est: est}
	h.init(PolicyHEFT)
	return h
}

// NewHEFTSeeded returns a HEFT scheduler whose tie-breaking between
// equally-estimated nodes is randomized — with a default estimate of zero
// for untried pairs, ties are exactly the unexplored nodes, so the seed
// varies the exploration order between repetitions (as non-determinism
// does on a real cluster).
func NewHEFTSeeded(est Estimator, seed int64) *HEFT {
	h := NewHEFT(est)
	h.rng = rand.New(rand.NewSource(seed))
	return h
}

// SetEstimateMode switches the treatment of unobserved pairs; must be
// called before Plan.
func (s *HEFT) SetEstimateMode(m EstimateMode) { s.mode = m }

// estimate returns the runtime estimate for signature on node. Untried
// pairs default to zero (the paper's exploration strategy) or to the
// signature mean, per the configured mode.
func (s *HEFT) estimate(signature, node string) float64 {
	d, ok := s.est.LastRuntime(signature, node)
	if ok {
		return d
	}
	if s.mode == EstimateMeanFallback {
		if mean, ok := s.est.MeanRuntime(signature); ok {
			return mean
		}
	}
	return 0
}

// Plan implements StaticPlanner.
func (s *HEFT) Plan(dag *wf.DAG, nodes []NodeInfo) error {
	if s.planned {
		return fmt.Errorf("scheduler: %s already planned", s.policy)
	}
	if len(nodes) == 0 {
		return fmt.Errorf("scheduler: no nodes to plan onto")
	}
	if s.rng != nil {
		nodes = append([]NodeInfo(nil), nodes...)
		s.rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	}

	// Upward ranks over mean estimates, computed in reverse topological
	// order so successors are ranked before their predecessors.
	topo := dag.TopoOrder()
	rank := make(map[int64]float64, len(topo))
	for i := len(topo) - 1; i >= 0; i-- {
		t := topo[i]
		w := 0.0
		for _, n := range nodes {
			w += s.estimate(t.Name, n.ID)
		}
		w /= float64(len(nodes))
		maxSucc := 0.0
		for _, succ := range dag.Successors(t) {
			if r := rank[succ.ID]; r > maxSucc {
				maxSucc = r
			}
		}
		rank[t.ID] = w + maxSucc
	}

	// Decreasing rank; ties broken by topological position for
	// determinism (and sanity when all estimates are zero).
	topoPos := make(map[int64]int, len(topo))
	for i, t := range topo {
		topoPos[t.ID] = i
	}
	byRank := append([]*wf.Task(nil), topo...)
	sort.SliceStable(byRank, func(i, j int) bool {
		ri, rj := rank[byRank[i].ID], rank[byRank[j].ID]
		if ri != rj {
			return ri > rj
		}
		return topoPos[byRank[i].ID] < topoPos[byRank[j].ID]
	})

	// Insertion-based earliest-finish-time assignment.
	busy := make(map[string][]slot, len(nodes))
	aft := make(map[int64]float64, len(topo)) // actual finish time in the plan
	assignedCount := make(map[string]int, len(nodes))

	for pos, t := range byRank {
		ready := 0.0
		for _, p := range dag.Predecessors(t) {
			if aft[p.ID] > ready {
				ready = aft[p.ID]
			}
		}
		bestNode := ""
		bestEFT := math.Inf(1)
		bestStart := 0.0
		for _, n := range nodes {
			w := s.estimate(t.Name, n.ID)
			start := earliestSlot(busy[n.ID], ready, w)
			eft := start + w
			// Strictly-better EFT wins; on ties prefer the node with
			// fewer assignments so zero-estimate plans spread out and
			// explore (the paper's default-zero strategy).
			if eft < bestEFT-1e-12 ||
				(math.Abs(eft-bestEFT) <= 1e-12 && assignedCount[n.ID] < assignedCount[bestNode]) {
				bestNode, bestEFT, bestStart = n.ID, eft, start
			}
		}
		busy[bestNode] = insertSlot(busy[bestNode], slot{bestStart, bestEFT})
		aft[t.ID] = bestEFT
		assignedCount[bestNode]++
		s.assignment[t.ID] = bestNode
		s.order[t.ID] = pos
	}
	s.planned = true
	return nil
}

// slot is one occupied interval in a node's planned schedule.
type slot struct{ start, end float64 }

// earliestSlot finds the earliest start ≥ ready where a task of length w
// fits into the node's schedule, considering insertion between existing
// slots. busy must be sorted by start time.
func earliestSlot(busy []slot, ready, w float64) float64 {
	start := ready
	for _, s := range busy {
		if start+w <= s.start+1e-12 {
			return start // fits in the gap before this slot
		}
		if s.end > start {
			start = s.end
		}
	}
	return start
}

// insertSlot adds a slot keeping the list sorted by start time.
func insertSlot(busy []slot, s slot) []slot {
	i := sort.Search(len(busy), func(i int) bool { return busy[i].start >= s.start })
	busy = append(busy, slot{})
	copy(busy[i+1:], busy[i:])
	busy[i] = s
	return busy
}
