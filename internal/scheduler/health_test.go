package scheduler

import (
	"testing"

	"hiway/internal/wf"
)

func TestNodeHealthTrackerBlacklistAndProbation(t *testing.T) {
	now := 0.0
	h := NewNodeHealthTracker(func() float64 { return now }, 3, 60)

	if !h.Healthy("n1") {
		t.Fatal("unknown node must be healthy")
	}
	h.ReportFailure("n1")
	h.ReportFailure("n1")
	if !h.Healthy("n1") {
		t.Fatal("two failures are below the threshold")
	}
	h.ReportFailure("n1")
	if h.Healthy("n1") {
		t.Fatal("third consecutive failure must blacklist")
	}
	if bl := h.Blacklisted(); len(bl) != 1 || bl[0] != "n1" {
		t.Fatalf("Blacklisted = %v", bl)
	}

	// Penalty window expires: node is re-admitted on probation.
	now = 61
	if !h.Healthy("n1") {
		t.Fatal("node must be re-admitted after the penalty window")
	}
	// One failure on probation re-blacklists immediately, doubled window.
	h.ReportFailure("n1")
	if h.Healthy("n1") {
		t.Fatal("probation failure must re-blacklist immediately")
	}
	now = 61 + 61 // one base window later: still inside the doubled window
	if h.Healthy("n1") {
		t.Fatal("doubled penalty must outlast the base window")
	}
	now = 61 + 121
	if !h.Healthy("n1") {
		t.Fatal("doubled window expired")
	}

	// Success on probation fully rehabilitates: three more failures needed.
	h.ReportSuccess("n1")
	h.ReportFailure("n1")
	h.ReportFailure("n1")
	if !h.Healthy("n1") {
		t.Fatal("success must reset the failure streak and penalty")
	}
}

func TestNodeHealthTrackerSuccessResetsStreak(t *testing.T) {
	now := 0.0
	h := NewNodeHealthTracker(func() float64 { return now }, 3, 60)
	h.ReportFailure("n1")
	h.ReportFailure("n1")
	h.ReportSuccess("n1")
	h.ReportFailure("n1")
	h.ReportFailure("n1")
	if !h.Healthy("n1") {
		t.Fatal("streak interrupted by success must not blacklist")
	}
}

func TestSchedulersDeclineBlacklistedNodes(t *testing.T) {
	now := 0.0
	h := NewNodeHealthTracker(func() float64 { return now }, 1, 60)
	h.ReportFailure("bad")

	task := wf.NewTask("tool", nil, []wf.FileInfo{{Path: "o", SizeMB: 1}})

	for _, s := range []Scheduler{NewFCFS(), NewDataAware(fracOracle{}), NewAdaptiveGreedy(zeroEstimator{})} {
		ha, ok := s.(HealthAware)
		if !ok {
			t.Fatalf("%s does not implement HealthAware", s.Name())
		}
		ha.SetNodeHealth(h)
		s.OnTaskReady(task)
		if got := s.Select("bad"); got != nil {
			t.Fatalf("%s handed a task to a blacklisted node", s.Name())
		}
		if got := s.Select("good"); got != task {
			t.Fatalf("%s withheld a task from a healthy node", s.Name())
		}
	}
}

func TestStaticSelectDeclinesBlacklistedAndReassignMovesQueued(t *testing.T) {
	now := 0.0
	h := NewNodeHealthTracker(func() float64 { return now }, 1, 60)

	a := wf.NewTask("a", nil, []wf.FileInfo{{Path: "a.out", SizeMB: 1}})
	b := wf.NewTask("b", []string{"a.out"}, []wf.FileInfo{{Path: "b.out", SizeMB: 1}})
	dag, err := wf.NewDAG([]*wf.Task{a, b}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	s := NewRoundRobin()
	if err := s.Plan(dag, []NodeInfo{{ID: "n1"}, {ID: "n2"}}); err != nil {
		t.Fatal(err)
	}
	s.SetNodeHealth(h)
	s.OnTaskReady(a) // planned on n1

	h.ReportFailure("n1")
	if got := s.Select("n1"); got != nil {
		t.Fatal("static Select handed a task to a blacklisted node")
	}
	// Reassign moves the already-queued task to the new node's list.
	s.Reassign(a, "n2")
	if got := s.Select("n1"); got != nil {
		t.Fatal("task still queued under old node after Reassign")
	}
	if got := s.Select("n2"); got != a {
		t.Fatalf("Select(n2) = %v, want task a", got)
	}
	if s.Queued() != 0 {
		t.Fatalf("Queued = %d, want 0", s.Queued())
	}
}

// TestNodeHealthTrackerEdgeCases pins the tracker's boundary behavior as a
// table: each case drives a fresh tracker through a scripted sequence of
// failures, successes, and clock jumps, then asserts the health verdict.
func TestNodeHealthTrackerEdgeCases(t *testing.T) {
	type step struct {
		at      float64 // clock value before the action
		fail    string  // node to fail, if non-empty
		succeed string  // node to rehabilitate, if non-empty
	}
	cases := []struct {
		name        string
		steps       []step
		at          float64 // clock value for the final assertions
		healthy     []string
		unhealthy   []string
		blacklisted []string // expected Blacklisted() at `at`
	}{
		{
			name: "expiry at the exact deadline re-admits",
			// Blacklisted at t=10 for 60s: the window is [10, 70), so the
			// node is unhealthy at 69.999… and healthy again at exactly 70.
			steps:       []step{{at: 10, fail: "n1"}, {at: 10, fail: "n1"}, {at: 10, fail: "n1"}},
			at:          70,
			healthy:     []string{"n1"},
			blacklisted: nil,
		},
		{
			name:        "one tick before the deadline still blacklisted",
			steps:       []step{{at: 10, fail: "n1"}, {at: 10, fail: "n1"}, {at: 10, fail: "n1"}},
			at:          69.999,
			unhealthy:   []string{"n1"},
			blacklisted: []string{"n1"},
		},
		{
			name: "re-blacklist after full recovery uses the base penalty again",
			// Blacklist, wait out the window, succeed (full rehabilitation),
			// then three fresh failures: the streak threshold applies again
			// and the penalty is the base 60s, not the doubled probation one.
			steps: []step{
				{at: 0, fail: "n1"}, {at: 0, fail: "n1"}, {at: 0, fail: "n1"},
				{at: 60, succeed: "n1"},
				{at: 100, fail: "n1"}, {at: 100, fail: "n1"},
				// Two failures stay below the threshold after a reset…
				{at: 100, fail: "n1"},
				// …and the third blacklists until 160, not 100+120.
			},
			at:          160,
			healthy:     []string{"n1"},
			blacklisted: nil,
		},
		{
			name: "recovered node re-blacklists below doubled window",
			steps: []step{
				{at: 0, fail: "n1"}, {at: 0, fail: "n1"}, {at: 0, fail: "n1"},
				{at: 60, succeed: "n1"},
				{at: 100, fail: "n1"}, {at: 100, fail: "n1"}, {at: 100, fail: "n1"},
			},
			at:          159.999,
			unhealthy:   []string{"n1"},
			blacklisted: []string{"n1"},
		},
		{
			name: "all nodes blacklisted, earliest window re-admits first",
			// Both nodes go down; no healthy node exists until n1's window
			// expires — the cluster-wide fallback is waiting out the penalty,
			// not handing work to a blacklisted node.
			steps: []step{
				{at: 0, fail: "n1"}, {at: 0, fail: "n1"}, {at: 0, fail: "n1"},
				{at: 30, fail: "n2"}, {at: 30, fail: "n2"}, {at: 30, fail: "n2"},
			},
			at:          60,
			healthy:     []string{"n1"},
			unhealthy:   []string{"n2"},
			blacklisted: []string{"n2"},
		},
		{
			name: "all nodes blacklisted simultaneously",
			steps: []step{
				{at: 0, fail: "n1"}, {at: 0, fail: "n1"}, {at: 0, fail: "n1"},
				{at: 0, fail: "n2"}, {at: 0, fail: "n2"}, {at: 0, fail: "n2"},
			},
			at:          59,
			unhealthy:   []string{"n1", "n2"},
			blacklisted: []string{"n1", "n2"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			now := 0.0
			h := NewNodeHealthTracker(func() float64 { return now }, 3, 60)
			for _, s := range tc.steps {
				now = s.at
				if s.fail != "" {
					h.ReportFailure(s.fail)
				}
				if s.succeed != "" {
					h.ReportSuccess(s.succeed)
				}
			}
			now = tc.at
			for _, n := range tc.healthy {
				if !h.Healthy(n) {
					t.Errorf("at t=%v node %s should be healthy", tc.at, n)
				}
			}
			for _, n := range tc.unhealthy {
				if h.Healthy(n) {
					t.Errorf("at t=%v node %s should be blacklisted", tc.at, n)
				}
			}
			got := h.Blacklisted()
			if len(got) != len(tc.blacklisted) {
				t.Fatalf("Blacklisted() = %v, want %v", got, tc.blacklisted)
			}
			for i := range got {
				if got[i] != tc.blacklisted[i] {
					t.Fatalf("Blacklisted() = %v, want %v", got, tc.blacklisted)
				}
			}
		})
	}
}

// TestAllNodesBlacklistedSchedulerWithholdsUntilExpiry pins the cluster-wide
// fallback at the scheduler layer: with every node blacklisted the policy
// declines all containers (the AM keeps re-requesting), and the first window
// to expire starts receiving work again — no task is ever handed to a
// blacklisted node, and no task is lost while waiting.
func TestAllNodesBlacklistedSchedulerWithholdsUntilExpiry(t *testing.T) {
	now := 0.0
	h := NewNodeHealthTracker(func() float64 { return now }, 1, 60)
	h.ReportFailure("n1")
	h.ReportFailure("n2")

	s := NewFCFS()
	s.SetNodeHealth(h)
	task := wf.NewTask("tool", nil, []wf.FileInfo{{Path: "o", SizeMB: 1}})
	s.OnTaskReady(task)

	for _, n := range []string{"n1", "n2"} {
		if got := s.Select(n); got != nil {
			t.Fatalf("Select(%s) handed out a task with every node blacklisted", n)
		}
	}
	if s.Queued() != 1 {
		t.Fatalf("Queued = %d after declines, want 1 (task must not be lost)", s.Queued())
	}
	now = 60 // n1 and n2 expire together; either may serve now
	if got := s.Select("n1"); got != task {
		t.Fatalf("Select(n1) = %v after expiry, want the queued task", got)
	}
}

type fracOracle struct{}

func (fracOracle) LocalFraction(paths []string, nodeID string) float64 { return 0 }

type zeroEstimator struct{}

func (zeroEstimator) LastRuntime(sig, node string) (float64, bool) { return 0, false }
func (zeroEstimator) MeanRuntime(sig string) (float64, bool)       { return 0, false }
