package scheduler

import (
	"testing"

	"hiway/internal/wf"
)

func TestNodeHealthTrackerBlacklistAndProbation(t *testing.T) {
	now := 0.0
	h := NewNodeHealthTracker(func() float64 { return now }, 3, 60)

	if !h.Healthy("n1") {
		t.Fatal("unknown node must be healthy")
	}
	h.ReportFailure("n1")
	h.ReportFailure("n1")
	if !h.Healthy("n1") {
		t.Fatal("two failures are below the threshold")
	}
	h.ReportFailure("n1")
	if h.Healthy("n1") {
		t.Fatal("third consecutive failure must blacklist")
	}
	if bl := h.Blacklisted(); len(bl) != 1 || bl[0] != "n1" {
		t.Fatalf("Blacklisted = %v", bl)
	}

	// Penalty window expires: node is re-admitted on probation.
	now = 61
	if !h.Healthy("n1") {
		t.Fatal("node must be re-admitted after the penalty window")
	}
	// One failure on probation re-blacklists immediately, doubled window.
	h.ReportFailure("n1")
	if h.Healthy("n1") {
		t.Fatal("probation failure must re-blacklist immediately")
	}
	now = 61 + 61 // one base window later: still inside the doubled window
	if h.Healthy("n1") {
		t.Fatal("doubled penalty must outlast the base window")
	}
	now = 61 + 121
	if !h.Healthy("n1") {
		t.Fatal("doubled window expired")
	}

	// Success on probation fully rehabilitates: three more failures needed.
	h.ReportSuccess("n1")
	h.ReportFailure("n1")
	h.ReportFailure("n1")
	if !h.Healthy("n1") {
		t.Fatal("success must reset the failure streak and penalty")
	}
}

func TestNodeHealthTrackerSuccessResetsStreak(t *testing.T) {
	now := 0.0
	h := NewNodeHealthTracker(func() float64 { return now }, 3, 60)
	h.ReportFailure("n1")
	h.ReportFailure("n1")
	h.ReportSuccess("n1")
	h.ReportFailure("n1")
	h.ReportFailure("n1")
	if !h.Healthy("n1") {
		t.Fatal("streak interrupted by success must not blacklist")
	}
}

func TestSchedulersDeclineBlacklistedNodes(t *testing.T) {
	now := 0.0
	h := NewNodeHealthTracker(func() float64 { return now }, 1, 60)
	h.ReportFailure("bad")

	task := wf.NewTask("tool", nil, []wf.FileInfo{{Path: "o", SizeMB: 1}})

	for _, s := range []Scheduler{NewFCFS(), NewDataAware(fracOracle{}), NewAdaptiveGreedy(zeroEstimator{})} {
		ha, ok := s.(HealthAware)
		if !ok {
			t.Fatalf("%s does not implement HealthAware", s.Name())
		}
		ha.SetNodeHealth(h)
		s.OnTaskReady(task)
		if got := s.Select("bad"); got != nil {
			t.Fatalf("%s handed a task to a blacklisted node", s.Name())
		}
		if got := s.Select("good"); got != task {
			t.Fatalf("%s withheld a task from a healthy node", s.Name())
		}
	}
}

func TestStaticSelectDeclinesBlacklistedAndReassignMovesQueued(t *testing.T) {
	now := 0.0
	h := NewNodeHealthTracker(func() float64 { return now }, 1, 60)

	a := wf.NewTask("a", nil, []wf.FileInfo{{Path: "a.out", SizeMB: 1}})
	b := wf.NewTask("b", []string{"a.out"}, []wf.FileInfo{{Path: "b.out", SizeMB: 1}})
	dag, err := wf.NewDAG([]*wf.Task{a, b}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	s := NewRoundRobin()
	if err := s.Plan(dag, []NodeInfo{{ID: "n1"}, {ID: "n2"}}); err != nil {
		t.Fatal(err)
	}
	s.SetNodeHealth(h)
	s.OnTaskReady(a) // planned on n1

	h.ReportFailure("n1")
	if got := s.Select("n1"); got != nil {
		t.Fatal("static Select handed a task to a blacklisted node")
	}
	// Reassign moves the already-queued task to the new node's list.
	s.Reassign(a, "n2")
	if got := s.Select("n1"); got != nil {
		t.Fatal("task still queued under old node after Reassign")
	}
	if got := s.Select("n2"); got != a {
		t.Fatalf("Select(n2) = %v, want task a", got)
	}
	if s.Queued() != 0 {
		t.Fatalf("Queued = %d, want 0", s.Queued())
	}
}

type fracOracle struct{}

func (fracOracle) LocalFraction(paths []string, nodeID string) float64 { return 0 }

type zeroEstimator struct{}

func (zeroEstimator) LastRuntime(sig, node string) (float64, bool) { return 0, false }
func (zeroEstimator) MeanRuntime(sig string) (float64, bool)       { return 0, false }
