package scheduler

import (
	"testing"

	"hiway/internal/wf"
)

func TestAdaptiveGreedyPrefersRelativelyFastNode(t *testing.T) {
	est := &fakeEstimator{runtimes: map[string]map[string]float64{
		// "heavy" is fast on n1 relative to its mean; "light" indifferent.
		"heavy": {"n1": 10, "n2": 200},
		"light": {"n1": 20, "n2": 20},
	}}
	s := NewAdaptiveGreedy(est)
	light := mkTask("light", nil, "o1")
	heavy := mkTask("heavy", nil, "o2")
	s.OnTaskReady(light)
	s.OnTaskReady(heavy)
	// A container on n1 should run heavy there (advantage 105−10=95 over
	// light's 0), even though light arrived first.
	if got := s.Select("n1"); got != heavy {
		t.Fatalf("n1 got %v, want heavy", got)
	}
	if got := s.Select("n2"); got != light {
		t.Fatalf("n2 got %v, want light", got)
	}
	if s.Queued() != 0 {
		t.Fatalf("queued = %d", s.Queued())
	}
}

func TestAdaptiveGreedyAvoidsKnownSlowAssignment(t *testing.T) {
	est := &fakeEstimator{runtimes: map[string]map[string]float64{
		"a": {"slow": 500, "fast": 10},
		"b": {"slow": 50, "fast": 40},
	}}
	s := NewAdaptiveGreedy(est)
	ta := mkTask("a", nil, "oa")
	tb := mkTask("b", nil, "ob")
	s.OnTaskReady(ta)
	s.OnTaskReady(tb)
	// On "slow": a's advantage = 255−500 = −245; b's = 45−50 = −5 ⇒ b.
	if got := s.Select("slow"); got != tb {
		t.Fatalf("slow node got %s, want b", got.Name)
	}
}

func TestAdaptiveGreedyExploresUnknownNodes(t *testing.T) {
	est := &fakeEstimator{runtimes: map[string]map[string]float64{
		"a": {"n1": 100}, // never seen on n2
	}}
	s := NewAdaptiveGreedy(est)
	ta := mkTask("a", nil, "oa")
	tb := mkTask("fresh", nil, "ob") // signature with no data at all
	s.OnTaskReady(ta)
	s.OnTaskReady(tb)
	// On unexplored n2, task a has advantage 100−0 = 100 (explore!),
	// fresh has 0 ⇒ a dispatches first.
	if got := s.Select("n2"); got != ta {
		t.Fatalf("n2 got %s, want a (exploration)", got.Name)
	}
}

func TestAdaptiveGreedyEmptyAndDynamics(t *testing.T) {
	s := NewAdaptiveGreedy(&fakeEstimator{})
	if s.Select("n") != nil {
		t.Fatal("empty queue must return nil")
	}
	if hint, strict := s.Placement(mkTask("x", nil, "o")); hint != "" || strict {
		t.Fatal("adaptive-greedy is dynamic, no pinning")
	}
	if s.Name() != "adaptive-greedy" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestFactoryAdaptiveGreedy(t *testing.T) {
	if _, err := New(PolicyAdaptiveGreedy, Deps{}); err == nil {
		t.Fatal("adaptive without estimator must fail")
	}
	s, err := New(PolicyAdaptiveGreedy, Deps{Estimator: &fakeEstimator{}})
	if err != nil || s.Name() != "adaptive-greedy" {
		t.Fatalf("factory: %v %v", s, err)
	}
}

func TestHEFTEstimateModes(t *testing.T) {
	est := &fakeEstimator{runtimes: map[string]map[string]float64{
		"w": {"n1": 10, "n2": 1000},
	}}
	latest := NewHEFT(est)
	if got := latest.estimate("w", "n3"); got != 0 {
		t.Fatalf("zero-default estimate = %g", got)
	}
	mean := NewHEFT(est)
	mean.SetEstimateMode(EstimateMeanFallback)
	if got := mean.estimate("w", "n3"); got != 505 {
		t.Fatalf("mean-fallback estimate = %g, want 505", got)
	}
	if got := mean.estimate("w", "n1"); got != 10 {
		t.Fatalf("observed estimate = %g, want 10", got)
	}
	if got := mean.estimate("unknown", "n1"); got != 0 {
		t.Fatalf("unknown signature estimate = %g", got)
	}
}

func TestHEFTMeanFallbackSkipsExploration(t *testing.T) {
	// With mean-fallback, a task whose good node is known should stay
	// there instead of exploring the unknown node.
	est := &fakeEstimator{runtimes: map[string]map[string]float64{
		"w": {"good": 10, "bad": 1000},
	}}
	var tasks []*wf.Task
	for i := 0; i < 3; i++ {
		tasks = append(tasks, mkTask("w", nil, mkName(i)))
	}
	dag, _ := wf.NewDAG(tasks, nil, nil)
	h := NewHEFT(est)
	h.SetEstimateMode(EstimateMeanFallback)
	if err := h.Plan(dag, nodes("good", "bad", "mystery")); err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if node, _ := h.Placement(task); node != "good" {
			t.Fatalf("mean-fallback should serialize on the known-good node, got %s", node)
		}
	}
	// The paper's zero-default strategy, by contrast, explores "mystery".
	h2 := NewHEFT(est)
	if err := h2.Plan(dag, nodes("good", "bad", "mystery")); err != nil {
		t.Fatal(err)
	}
	explored := false
	for _, task := range tasks {
		if node, _ := h2.Placement(task); node == "mystery" {
			explored = true
		}
	}
	if !explored {
		t.Fatal("zero-default HEFT should try the unobserved node")
	}
}

func mkName(i int) string {
	return string(rune('p'+i)) + "-out"
}

func TestAdaptiveGreedyDeclinesKnownSlowNode(t *testing.T) {
	est := &fakeEstimator{runtimes: map[string]map[string]float64{
		"w": {"good": 10, "awful": 500}, // awful is 50x the good node
	}}
	s := NewAdaptiveGreedy(est)
	task := mkTask("w", nil, "o")
	s.OnTaskReady(task)
	// mean = 255; est on awful = 500 > 3×255? No (765) — not declined.
	if got := s.Select("awful"); got != task {
		t.Fatalf("500 < 3×mean: should accept, got %v", got)
	}
	// Make the node bad enough to cross the 3× threshold.
	est.runtimes["w"]["awful"] = 5000 // mean 2505? no: (10+5000)/2 = 2505; 5000 < 3×2505
	est.runtimes["w"] = map[string]float64{"good": 10, "ok": 20, "awful": 5000}
	// mean = 1676.7; 5000 < 3×1676.7 = 5030 — still accepts. Use a wider pool.
	est.runtimes["w"] = map[string]float64{"a": 10, "b": 12, "c": 9, "awful": 500}
	// mean = 132.75; 500 > 398.25 ⇒ decline.
	s2 := NewAdaptiveGreedy(est)
	s2.OnTaskReady(task)
	if got := s2.Select("awful"); got != nil {
		t.Fatalf("should decline the known-slow node, got %v", got)
	}
	if s2.Queued() != 1 {
		t.Fatal("declined task must stay queued")
	}
	if got := s2.Select("a"); got != task {
		t.Fatalf("good node should get the task, got %v", got)
	}
}

func TestAdaptiveGreedyDeclineBudgetExhausts(t *testing.T) {
	est := &fakeEstimator{runtimes: map[string]map[string]float64{
		"w": {"a": 10, "b": 12, "c": 9, "awful": 500},
	}}
	s := NewAdaptiveGreedy(est)
	s.declineBudget = 2
	task := mkTask("w", nil, "o")
	s.OnTaskReady(task)
	if s.Select("awful") != nil || s.Select("awful") != nil {
		t.Fatal("first two offers should be declined")
	}
	// Budget exhausted: progress is guaranteed even on the bad node.
	if got := s.Select("awful"); got != task {
		t.Fatalf("exhausted budget must accept, got %v", got)
	}
}

// fakePredictor reports a fixed memo-hit probability per signature.
type fakePredictor struct{ p map[string]float64 }

func (f *fakePredictor) HitProbability(sig string) float64 { return f.p[sig] }

func TestAdaptiveGreedyHitPredictorSuppressesDeclines(t *testing.T) {
	est := &fakeEstimator{runtimes: map[string]map[string]float64{
		"w": {"a": 10, "b": 12, "c": 9, "awful": 500},
	}}
	task := mkTask("w", nil, "o")
	// Baseline: mean 132.75, 500 > 3×132.75 ⇒ the slow node is declined.
	s := NewAdaptiveGreedy(est)
	s.OnTaskReady(task)
	if s.Select("awful") != nil {
		t.Fatal("baseline: slow node should be declined")
	}
	// A likely memo hit raises the decline bar by 1/(1−p): at p=0.8 the
	// threshold becomes 5×398.25 ⇒ the same offer is accepted. Wired
	// through Deps to cover the PredictorAware plumbing in New.
	s2, err := New(PolicyAdaptiveGreedy, Deps{
		Estimator: est,
		Predictor: &fakePredictor{p: map[string]float64{"w": 0.8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s2.OnTaskReady(task)
	if got := s2.Select("awful"); got != task {
		t.Fatalf("high hit probability must suppress the decline, got %v", got)
	}
	// p=1 disables declining outright, however slow the node.
	s3 := NewAdaptiveGreedy(est)
	s3.SetHitPredictor(&fakePredictor{p: map[string]float64{"w": 1}})
	s3.OnTaskReady(task)
	if got := s3.Select("awful"); got != task {
		t.Fatalf("certain hit must never decline, got %v", got)
	}
	// p=0 (or an unknown signature) leaves behavior untouched.
	s4 := NewAdaptiveGreedy(est)
	s4.SetHitPredictor(&fakePredictor{p: map[string]float64{}})
	s4.OnTaskReady(task)
	if s4.Select("awful") != nil {
		t.Fatal("zero hit probability must keep the decline")
	}
}
