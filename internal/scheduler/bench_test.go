package scheduler

import (
	"fmt"
	"strings"
	"testing"

	"hiway/internal/wf"
)

// benchOracle answers locality queries from a deterministic hash — the
// stand-in for hdfs.FS in scheduler-only benchmarks. Like real HDFS
// placement, each input set is local to a minority of nodes (hash-selected),
// and LocalFraction is positive exactly on those, so CandidateNodes is
// consistent with LocalFraction as the CandidateOracle contract requires.
type benchOracle struct {
	nodes []string
	cand  map[string][]string // joined paths → candidate nodes (the namenode answers this from block metadata in O(replicas))
}

func benchHash(paths []string, nodeID string) uint64 {
	h := uint64(14695981039346656037)
	for _, p := range paths {
		for i := 0; i < len(p); i++ {
			h = (h ^ uint64(p[i])) * 1099511628211
		}
	}
	for i := 0; i < len(nodeID); i++ {
		h = (h ^ uint64(nodeID[i])) * 1099511628211
	}
	return h
}

func (o *benchOracle) LocalFraction(paths []string, nodeID string) float64 {
	h := benchHash(paths, nodeID)
	if h%16 != 0 {
		return 0
	}
	return float64(h/16%1000+1) / 1001
}

func (o *benchOracle) CandidateNodes(paths []string) []string {
	key := strings.Join(paths, "\x00")
	if c, ok := o.cand[key]; ok {
		return c
	}
	var out []string
	for _, n := range o.nodes {
		if benchHash(paths, n)%16 == 0 {
			out = append(out, n)
		}
	}
	if o.cand == nil {
		o.cand = make(map[string][]string)
	}
	o.cand[key] = out
	return out
}

func (o *benchOracle) LocalityEpoch() uint64 { return 0 }

// benchEstimator answers runtime-estimate queries deterministically.
type benchEstimator struct{}

func (benchEstimator) LastRuntime(signature, node string) (float64, bool) {
	if (len(signature)+len(node))%3 == 0 {
		return 0, false
	}
	return float64((len(signature)*7+len(node)*13)%50 + 1), true
}

func (benchEstimator) MeanRuntime(signature string) (float64, bool) {
	return float64(len(signature)%40 + 5), true
}

// benchTasks builds n tasks over s distinct signatures with small input sets.
func benchTasks(n, s int) []*wf.Task {
	tasks := make([]*wf.Task, n)
	for i := range tasks {
		tasks[i] = &wf.Task{
			ID:     int64(i + 1),
			Name:   fmt.Sprintf("sig-%02d", i%s),
			Inputs: []string{fmt.Sprintf("/in/part-%03d", i%64), "/ref/genome"},
		}
	}
	return tasks
}

// churn drives a policy through a large-cluster schedule: tasks become ready
// in waves and every Select mimics a freed container on a rotating node —
// the per-container hot path of the Workflow Scheduler.
func churn(b *testing.B, mk func() Scheduler, tasks []*wf.Task, nodes int) {
	b.Helper()
	b.ReportAllocs()
	nodeIDs := make([]string, nodes)
	for i := range nodeIDs {
		nodeIDs[i] = fmt.Sprintf("node-%03d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := mk()
		next := 0
		selected := 0
		for selected < len(tasks) {
			// A wave of tasks becomes ready (upstream completions).
			for w := 0; w < 32 && next < len(tasks); w++ {
				s.OnTaskReady(tasks[next])
				next++
			}
			// Containers free up on rotating nodes; each picks a task.
			for c := 0; c < 16 && s.Queued() > 0; c++ {
				if t := s.Select(nodeIDs[(selected+c)%nodes]); t != nil {
					selected++
				}
			}
		}
	}
}

func BenchmarkFCFSChurn(b *testing.B) {
	tasks := benchTasks(10000, 8)
	churn(b, func() Scheduler { return NewFCFS() }, tasks, 256)
}

func benchNodeIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%03d", i)
	}
	return ids
}

func BenchmarkDataAwareChurn(b *testing.B) {
	tasks := benchTasks(4000, 8)
	oracle := &benchOracle{nodes: benchNodeIDs(256)}
	churn(b, func() Scheduler { return NewDataAware(oracle) }, tasks, 256)
}

// BenchmarkDataAwareChurnScan forces the linear-scan fallback (a plain
// LocalityOracle without candidate indexing) for comparison.
func BenchmarkDataAwareChurnScan(b *testing.B) {
	tasks := benchTasks(4000, 8)
	oracle := &benchOracle{nodes: benchNodeIDs(256)}
	churn(b, func() Scheduler { return NewDataAware(scanOnly{oracle}) }, tasks, 256)
}

// scanOnly hides the CandidateOracle methods of the wrapped oracle.
type scanOnly struct{ o *benchOracle }

func (s scanOnly) LocalFraction(paths []string, nodeID string) float64 {
	return s.o.LocalFraction(paths, nodeID)
}

func BenchmarkAdaptiveGreedyChurn(b *testing.B) {
	tasks := benchTasks(4000, 8)
	churn(b, func() Scheduler { return NewAdaptiveGreedy(benchEstimator{}) }, tasks, 256)
}
