package scheduler

import (
	"fmt"

	"hiway/internal/obs"
	"hiway/internal/wf"
)

// NodeInfo describes one compute node to static planners.
type NodeInfo struct {
	ID     string
	VCores int
	MemMB  int
}

// Estimator answers runtime-estimate queries; provenance.Manager implements
// it. Estimates follow the paper's strategy: the latest observation for a
// (signature, node) pair, with zero assumed for unobserved pairs.
type Estimator interface {
	LastRuntime(signature, node string) (float64, bool)
	MeanRuntime(signature string) (float64, bool)
}

// LocalityOracle answers data-locality queries; hdfs.FS implements it.
type LocalityOracle interface {
	LocalFraction(paths []string, nodeID string) float64
}

// CandidateOracle is the optional fast-path extension of LocalityOracle:
// CandidateNodes must return a superset of the nodes where LocalFraction of
// the paths is positive, and LocalityEpoch must advance whenever the
// locality of an existing file can change. hdfs.FS implements it; when the
// oracle does, DataAware indexes queued tasks by node instead of scanning
// the whole queue per freed container.
type CandidateOracle interface {
	LocalityOracle
	CandidateNodes(paths []string) []string
	LocalityEpoch() uint64
}

// EstimateVersioner is the optional extension of Estimator that lets
// schedulers memoize estimate-derived values: Version(signature) advances
// whenever a new observation for the signature arrives.
// provenance.Manager implements it.
type EstimateVersioner interface {
	EstimateVersion(signature string) uint64
}

// HitPredictor estimates the probability that a future task with the given
// signature will be served from the cluster memo table instead of executing.
// memo.Table implements it from its per-signature lookup/hit history.
type HitPredictor interface {
	HitProbability(signature string) float64
}

// Scheduler assigns ready tasks to allocated containers.
type Scheduler interface {
	// Name identifies the policy.
	Name() string
	// OnTaskReady enqueues a task whose data dependencies are met.
	OnTaskReady(t *wf.Task)
	// Placement returns the container request hint for the task: a node
	// preference and whether it is strict. Dynamic policies return
	// ("", false); static policies pin tasks to their planned node.
	Placement(t *wf.Task) (node string, strict bool)
	// Select removes and returns the queued task to run in a container on
	// the given node, or nil if no suitable task is queued.
	Select(node string) *wf.Task
	// Queued reports how many ready tasks await a container.
	Queued() int
}

// StaticPlanner is implemented by static policies (round-robin, HEFT) that
// build their whole schedule before execution starts. Plan must be called
// once, after parsing, with the complete DAG — hence static policies are
// incompatible with iterative languages like Cuneiform (§3.4).
type StaticPlanner interface {
	Scheduler
	Plan(dag *wf.DAG, nodes []NodeInfo) error
}

// Reassigner is implemented by static policies whose plan can be amended
// when a task must be retried on a different node after a failure.
type Reassigner interface {
	Reassign(t *wf.Task, node string)
}

// Deps carries the services policies may need.
type Deps struct {
	Locality  LocalityOracle
	Estimator Estimator
	// Predictor, when set, informs memo-aware policies how likely each
	// signature is to be served from the cluster memo table; policies that
	// ignore memoization leave it unused.
	Predictor HitPredictor
	// Obs, when set, makes every policy record its per-decision trace
	// (policy, candidates considered, locality outcome, blacklist hits)
	// into the decision log and metrics registry.
	Obs *obs.Obs
}

// Policy names accepted by New.
const (
	PolicyFCFS           = "fcfs"
	PolicyDataAware      = "dataaware"
	PolicyRoundRobin     = "roundrobin"
	PolicyHEFT           = "heft"
	PolicyAdaptiveGreedy = "adaptive"
)

// New builds a scheduler by policy name. The data-aware policy requires a
// locality oracle; HEFT and adaptive-greedy require an estimator.
func New(policy string, deps Deps) (Scheduler, error) {
	var s Scheduler
	switch policy {
	case PolicyFCFS, "greedy", "":
		s = NewFCFS()
	case PolicyDataAware:
		if deps.Locality == nil {
			return nil, fmt.Errorf("scheduler: data-aware policy needs a locality oracle")
		}
		s = NewDataAware(deps.Locality)
	case PolicyRoundRobin:
		s = NewRoundRobin()
	case PolicyHEFT:
		if deps.Estimator == nil {
			return nil, fmt.Errorf("scheduler: HEFT policy needs a runtime estimator")
		}
		s = NewHEFT(deps.Estimator)
	case PolicyAdaptiveGreedy:
		if deps.Estimator == nil {
			return nil, fmt.Errorf("scheduler: adaptive-greedy policy needs a runtime estimator")
		}
		s = NewAdaptiveGreedy(deps.Estimator)
	default:
		return nil, fmt.Errorf("scheduler: unknown policy %q", policy)
	}
	if deps.Predictor != nil {
		if pa, ok := s.(PredictorAware); ok {
			pa.SetHitPredictor(deps.Predictor)
		}
	}
	if deps.Obs != nil {
		if oa, ok := s.(ObsAware); ok {
			oa.SetObs(deps.Obs)
		}
	}
	return s, nil
}

// PredictorAware is implemented by policies that consult a memo-table hit
// predictor; AdaptiveGreedy implements it.
type PredictorAware interface {
	SetHitPredictor(p HitPredictor)
}

// ObsAware is implemented by schedulers that can record per-decision
// observability. Every policy in this package implements it via obsSink.
type ObsAware interface {
	SetObs(o *obs.Obs)
}

// obsSink is the shared observability hook embedded in every policy: a
// decision log plus decision-outcome counters. All handles are nil until
// SetObs, so uninstrumented schedulers pay only nil checks.
type obsSink struct {
	dec        *obs.DecisionLog
	assignsC   *obs.Counter
	declinesC  *obs.Counter
	blacklistC *obs.Counter
	localC     *obs.Counter
}

// SetObs implements ObsAware.
func (s *obsSink) SetObs(o *obs.Obs) {
	s.dec = o.D()
	m := o.M()
	s.assignsC = m.Counter("hiway_sched_assignments_total", "tasks handed to allocated containers")
	s.declinesC = m.Counter("hiway_sched_declines_total", "containers declined by the policy (non-blacklist)")
	s.blacklistC = m.Counter("hiway_sched_blacklist_declines_total", "containers declined because the node was blacklisted")
	s.localC = m.Counter("hiway_sched_local_assignments_total", "assignments with positive input locality on the hosting node")
}

// noteAssign records one task→container binding. frac is the input-locality
// fraction of the choice on the node, or -1 when the policy did not
// consider locality.
func (s *obsSink) noteAssign(policy, node string, t *wf.Task, queued, scanned int, frac float64) {
	s.assignsC.Inc()
	if frac > 0 {
		s.localC.Inc()
	}
	s.dec.Record(obs.Decision{
		Policy: policy, Node: node, Outcome: obs.OutcomeAssign,
		Task: t.Name, TaskID: t.ID, Queued: queued, Scanned: scanned, LocalFrac: frac,
	})
}

// noteDecline records a declined container: outcome obs.OutcomeBlacklist
// when the health gate rejected the node, obs.OutcomeDecline otherwise.
func (s *obsSink) noteDecline(policy, node, outcome string, queued, scanned int) {
	if outcome == obs.OutcomeBlacklist {
		s.blacklistC.Inc()
	} else {
		s.declinesC.Inc()
	}
	s.dec.Record(obs.Decision{
		Policy: policy, Node: node, Outcome: outcome,
		Queued: queued, Scanned: scanned, LocalFrac: -1,
	})
}

// healthGate is the shared NodeHealth hook: a nil health means every node
// qualifies. Embedding it makes a policy HealthAware.
type healthGate struct {
	health NodeHealth
}

// SetNodeHealth implements HealthAware.
func (g *healthGate) SetNodeHealth(h NodeHealth) { g.health = h }

// nodeOK reports whether the node may receive work.
func (g *healthGate) nodeOK(node string) bool {
	return g.health == nil || g.health.Healthy(node)
}

// FCFS runs tasks in arrival order on whatever container comes up first.
// The queue is a head-indexed ring: pops advance the head and nil the
// vacated slot (so completed tasks are not retained by the backing array),
// and the buffer is reclaimed once drained or mostly stale.
type FCFS struct {
	healthGate
	obsSink
	queue []*wf.Task
	head  int
}

// NewFCFS returns an empty FCFS queue.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements Scheduler.
func (s *FCFS) Name() string { return PolicyFCFS }

// OnTaskReady implements Scheduler.
func (s *FCFS) OnTaskReady(t *wf.Task) { s.queue = append(s.queue, t) }

// Placement implements Scheduler: FCFS expresses no preference.
func (s *FCFS) Placement(*wf.Task) (string, bool) { return "", false }

// Select implements Scheduler: pop the head of the queue. Containers on
// blacklisted nodes are declined (nil) so the AM re-requests elsewhere.
func (s *FCFS) Select(node string) *wf.Task {
	if s.head >= len(s.queue) {
		return nil
	}
	if !s.nodeOK(node) {
		s.noteDecline(PolicyFCFS, node, obs.OutcomeBlacklist, s.Queued(), 0)
		return nil
	}
	queued := s.Queued()
	t := s.queue[s.head]
	s.queue[s.head] = nil
	s.head++
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
	} else if s.head > 64 && s.head > len(s.queue)/2 {
		s.queue = append(s.queue[:0], s.queue[s.head:]...)
		s.head = 0
	}
	s.noteAssign(PolicyFCFS, node, t, queued, 1, -1)
	return t
}

// Queued implements Scheduler.
func (s *FCFS) Queued() int { return len(s.queue) - s.head }

// daEntry is one live enqueueing of a task in the DataAware index. A task
// re-queued after a failure gets a fresh entry; superseded entries are
// detected by pointer identity against the live map and dropped lazily.
type daEntry struct {
	t   *wf.Task
	seq int64
}

// daScored is a bucket slot: an entry plus its locality fraction on the
// bucket's node, computed once at insertion (valid until the epoch moves).
type daScored struct {
	e    *daEntry
	frac float64
}

// DataAware minimizes data transfer for I/O-intensive workflows: whenever a
// container is allocated it selects, among all pending tasks, the one with
// the highest fraction of input data locally available (in HDFS) on the
// hosting node. Ties fall back to arrival order.
//
// With a plain LocalityOracle every Select scans the whole queue. With a
// CandidateOracle (hdfs.FS) the queue is indexed: each ready task is scored
// once into per-node buckets covering every node where its locality is
// positive, so Select only examines the handful of tasks with data on the
// freed node, falling back to plain FIFO order when none has any. Buckets
// are rebuilt when the oracle's locality epoch moves (node death, deletes,
// re-replication — rare), and stale entries are dropped lazily.
type DataAware struct {
	healthGate
	obsSink
	locality LocalityOracle
	cand     CandidateOracle // nil → linear-scan fallback

	// linear-scan fallback state
	queue []*wf.Task

	// indexed fast-path state
	queued  map[int64]*daEntry // task ID → live entry
	fifo    []*daEntry         // arrival order (zero-locality fallback)
	head    int                // first possibly-live fifo slot
	buckets map[string][]daScored
	epoch   uint64
	seq     int64
}

// NewDataAware returns the policy backed by the given locality oracle.
func NewDataAware(locality LocalityOracle) *DataAware {
	s := &DataAware{locality: locality}
	if c, ok := locality.(CandidateOracle); ok {
		s.cand = c
		s.queued = make(map[int64]*daEntry)
		s.buckets = make(map[string][]daScored)
		s.epoch = c.LocalityEpoch()
	}
	return s
}

// Name implements Scheduler.
func (s *DataAware) Name() string { return PolicyDataAware }

// OnTaskReady implements Scheduler.
func (s *DataAware) OnTaskReady(t *wf.Task) {
	if s.cand == nil {
		s.queue = append(s.queue, t)
		return
	}
	s.maybeInvalidate()
	s.seq++
	e := &daEntry{t: t, seq: s.seq}
	s.queued[t.ID] = e
	s.fifo = append(s.fifo, e)
	s.score(e)
}

// score inserts the entry into the bucket of every node where its inputs
// have positive locality.
func (s *DataAware) score(e *daEntry) {
	for _, n := range s.cand.CandidateNodes(e.t.Inputs) {
		if frac := s.locality.LocalFraction(e.t.Inputs, n); frac > 0 {
			s.buckets[n] = append(s.buckets[n], daScored{e: e, frac: frac})
		}
	}
}

// maybeInvalidate rebuilds all buckets when the oracle's locality epoch has
// moved since they were scored.
func (s *DataAware) maybeInvalidate() {
	ep := s.cand.LocalityEpoch()
	if ep == s.epoch {
		return
	}
	s.epoch = ep
	s.buckets = make(map[string][]daScored)
	for i := s.head; i < len(s.fifo); i++ {
		if e := s.fifo[i]; e != nil && s.queued[e.t.ID] == e {
			s.score(e)
		}
	}
}

// Placement implements Scheduler: containers may land anywhere; the task
// choice adapts to wherever the container was placed.
func (s *DataAware) Placement(*wf.Task) (string, bool) { return "", false }

// Select implements Scheduler.
func (s *DataAware) Select(node string) *wf.Task {
	if s.cand == nil {
		return s.selectScan(node)
	}
	s.maybeInvalidate()
	if len(s.queued) == 0 {
		return nil
	}
	if !s.nodeOK(node) {
		s.noteDecline(PolicyDataAware, node, obs.OutcomeBlacklist, len(s.queued), 0)
		return nil
	}
	queuedBefore := len(s.queued)
	// Best positive-locality candidate from this node's bucket, compacting
	// stale entries in place as we scan. Ties go to the earliest arrival.
	var best *daEntry
	bestFrac := 0.0
	scanned := 0
	b := s.buckets[node]
	w := 0
	for _, sc := range b {
		if s.queued[sc.e.t.ID] != sc.e {
			continue // selected or superseded since scoring
		}
		b[w] = sc
		w++
		scanned++
		if sc.frac > bestFrac || (sc.frac == bestFrac && best != nil && sc.e.seq < best.seq) {
			best, bestFrac = sc.e, sc.frac
		}
	}
	for i := w; i < len(b); i++ {
		b[i] = daScored{}
	}
	if len(b) > 0 {
		s.buckets[node] = b[:w]
	}
	if best == nil {
		// No local data anywhere on this node: plain arrival order, exactly
		// what the linear scan degenerates to when every fraction is zero.
		bestFrac = 0
		for s.head < len(s.fifo) {
			e := s.fifo[s.head]
			s.fifo[s.head] = nil
			s.head++
			scanned++
			if e != nil && s.queued[e.t.ID] == e {
				best = e
				break
			}
		}
		if s.head == len(s.fifo) {
			s.fifo = s.fifo[:0]
			s.head = 0
		}
		if best == nil {
			return nil
		}
	}
	delete(s.queued, best.t.ID)
	s.noteAssign(PolicyDataAware, node, best.t, queuedBefore, scanned, bestFrac)
	return best.t
}

// selectScan is the O(queue) fallback for plain locality oracles.
func (s *DataAware) selectScan(node string) *wf.Task {
	if len(s.queue) == 0 {
		return nil
	}
	if !s.nodeOK(node) {
		s.noteDecline(PolicyDataAware, node, obs.OutcomeBlacklist, len(s.queue), 0)
		return nil
	}
	queuedBefore := len(s.queue)
	best, bestFrac := 0, -1.0
	for i, t := range s.queue {
		frac := s.locality.LocalFraction(t.Inputs, node)
		if frac > bestFrac {
			best, bestFrac = i, frac
		}
	}
	t := s.queue[best]
	copy(s.queue[best:], s.queue[best+1:])
	s.queue[len(s.queue)-1] = nil
	s.queue = s.queue[:len(s.queue)-1]
	s.noteAssign(PolicyDataAware, node, t, queuedBefore, queuedBefore, bestFrac)
	return t
}

// Queued implements Scheduler.
func (s *DataAware) Queued() int {
	if s.cand == nil {
		return len(s.queue)
	}
	return len(s.queued)
}
