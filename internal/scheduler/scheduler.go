// Package scheduler implements Hi-WAY's Workflow Scheduler policies (§3.4):
//
//   - FCFS: first-come-first-served queueing, the baseline most SWfMSs use;
//   - data-aware (Hi-WAY's default): when a container is allocated, pick the
//     pending task with the highest fraction of input data already local to
//     the hosting node;
//   - static round-robin: pre-assign tasks to nodes in turn;
//   - static HEFT: heterogeneous-earliest-finish-time planning driven by
//     runtime estimates from the Provenance Manager, with a default estimate
//     of zero for untried task/node pairs to encourage exploration.
//
// This higher-level scheduler is distinct from YARN's internal schedulers:
// it decides which *task* runs in an allocated container, and (for static
// policies) on which node containers must be placed.
package scheduler

import (
	"fmt"

	"hiway/internal/wf"
)

// NodeInfo describes one compute node to static planners.
type NodeInfo struct {
	ID     string
	VCores int
	MemMB  int
}

// Estimator answers runtime-estimate queries; provenance.Manager implements
// it. Estimates follow the paper's strategy: the latest observation for a
// (signature, node) pair, with zero assumed for unobserved pairs.
type Estimator interface {
	LastRuntime(signature, node string) (float64, bool)
	MeanRuntime(signature string) (float64, bool)
}

// LocalityOracle answers data-locality queries; hdfs.FS implements it.
type LocalityOracle interface {
	LocalFraction(paths []string, nodeID string) float64
}

// Scheduler assigns ready tasks to allocated containers.
type Scheduler interface {
	// Name identifies the policy.
	Name() string
	// OnTaskReady enqueues a task whose data dependencies are met.
	OnTaskReady(t *wf.Task)
	// Placement returns the container request hint for the task: a node
	// preference and whether it is strict. Dynamic policies return
	// ("", false); static policies pin tasks to their planned node.
	Placement(t *wf.Task) (node string, strict bool)
	// Select removes and returns the queued task to run in a container on
	// the given node, or nil if no suitable task is queued.
	Select(node string) *wf.Task
	// Queued reports how many ready tasks await a container.
	Queued() int
}

// StaticPlanner is implemented by static policies (round-robin, HEFT) that
// build their whole schedule before execution starts. Plan must be called
// once, after parsing, with the complete DAG — hence static policies are
// incompatible with iterative languages like Cuneiform (§3.4).
type StaticPlanner interface {
	Scheduler
	Plan(dag *wf.DAG, nodes []NodeInfo) error
}

// Reassigner is implemented by static policies whose plan can be amended
// when a task must be retried on a different node after a failure.
type Reassigner interface {
	Reassign(t *wf.Task, node string)
}

// Deps carries the services policies may need.
type Deps struct {
	Locality  LocalityOracle
	Estimator Estimator
}

// Policy names accepted by New.
const (
	PolicyFCFS           = "fcfs"
	PolicyDataAware      = "dataaware"
	PolicyRoundRobin     = "roundrobin"
	PolicyHEFT           = "heft"
	PolicyAdaptiveGreedy = "adaptive"
)

// New builds a scheduler by policy name. The data-aware policy requires a
// locality oracle; HEFT requires an estimator.
func New(policy string, deps Deps) (Scheduler, error) {
	switch policy {
	case PolicyFCFS, "greedy", "":
		return NewFCFS(), nil
	case PolicyDataAware:
		if deps.Locality == nil {
			return nil, fmt.Errorf("scheduler: data-aware policy needs a locality oracle")
		}
		return NewDataAware(deps.Locality), nil
	case PolicyRoundRobin:
		return NewRoundRobin(), nil
	case PolicyHEFT:
		if deps.Estimator == nil {
			return nil, fmt.Errorf("scheduler: HEFT policy needs a runtime estimator")
		}
		return NewHEFT(deps.Estimator), nil
	case PolicyAdaptiveGreedy:
		if deps.Estimator == nil {
			return nil, fmt.Errorf("scheduler: adaptive-greedy policy needs a runtime estimator")
		}
		return NewAdaptiveGreedy(deps.Estimator), nil
	default:
		return nil, fmt.Errorf("scheduler: unknown policy %q", policy)
	}
}

// healthGate is the shared NodeHealth hook: a nil health means every node
// qualifies. Embedding it makes a policy HealthAware.
type healthGate struct {
	health NodeHealth
}

// SetNodeHealth implements HealthAware.
func (g *healthGate) SetNodeHealth(h NodeHealth) { g.health = h }

// nodeOK reports whether the node may receive work.
func (g *healthGate) nodeOK(node string) bool {
	return g.health == nil || g.health.Healthy(node)
}

// FCFS runs tasks in arrival order on whatever container comes up first.
type FCFS struct {
	healthGate
	queue []*wf.Task
}

// NewFCFS returns an empty FCFS queue.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements Scheduler.
func (s *FCFS) Name() string { return PolicyFCFS }

// OnTaskReady implements Scheduler.
func (s *FCFS) OnTaskReady(t *wf.Task) { s.queue = append(s.queue, t) }

// Placement implements Scheduler: FCFS expresses no preference.
func (s *FCFS) Placement(*wf.Task) (string, bool) { return "", false }

// Select implements Scheduler: pop the head of the queue. Containers on
// blacklisted nodes are declined (nil) so the AM re-requests elsewhere.
func (s *FCFS) Select(node string) *wf.Task {
	if len(s.queue) == 0 || !s.nodeOK(node) {
		return nil
	}
	t := s.queue[0]
	s.queue = s.queue[1:]
	return t
}

// Queued implements Scheduler.
func (s *FCFS) Queued() int { return len(s.queue) }

// DataAware minimizes data transfer for I/O-intensive workflows: whenever a
// container is allocated it skims all pending tasks and selects the one
// with the highest fraction of input data locally available (in HDFS) on
// the hosting node. Ties fall back to arrival order.
type DataAware struct {
	healthGate
	locality LocalityOracle
	queue    []*wf.Task
}

// NewDataAware returns the policy backed by the given locality oracle.
func NewDataAware(locality LocalityOracle) *DataAware {
	return &DataAware{locality: locality}
}

// Name implements Scheduler.
func (s *DataAware) Name() string { return PolicyDataAware }

// OnTaskReady implements Scheduler.
func (s *DataAware) OnTaskReady(t *wf.Task) { s.queue = append(s.queue, t) }

// Placement implements Scheduler: containers may land anywhere; the task
// choice adapts to wherever the container was placed.
func (s *DataAware) Placement(*wf.Task) (string, bool) { return "", false }

// Select implements Scheduler.
func (s *DataAware) Select(node string) *wf.Task {
	if len(s.queue) == 0 || !s.nodeOK(node) {
		return nil
	}
	best, bestFrac := 0, -1.0
	for i, t := range s.queue {
		frac := s.locality.LocalFraction(t.Inputs, node)
		if frac > bestFrac {
			best, bestFrac = i, frac
		}
	}
	t := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	return t
}

// Queued implements Scheduler.
func (s *DataAware) Queued() int { return len(s.queue) }
