package scheduler

import (
	"sort"
	"sync"
)

// NodeHealth answers "should this node receive work right now?". All
// scheduling policies consult it (when set) before handing a task to an
// allocated container, so a node that keeps failing or timing out attempts
// stops attracting work regardless of policy.
type NodeHealth interface {
	Healthy(node string) bool
}

// HealthAware is implemented by schedulers that can consult a NodeHealth.
// Every policy in this package implements it.
type HealthAware interface {
	SetNodeHealth(h NodeHealth)
}

// NodeHealthTracker is the default NodeHealth: consecutive failures or
// timeouts on a node blacklist it for a penalty window; each expiry leaves
// the node on probation, where a single further failure re-blacklists it
// with a doubled penalty (backoff-style re-admission), and a success fully
// rehabilitates it. Time is whatever clock the constructor is given — the
// simulator passes its virtual clock.
type NodeHealthTracker struct {
	mu        sync.Mutex
	now       func() float64
	threshold int     // consecutive failures that trigger a blacklist
	baseSec   float64 // first penalty window length
	nodes     map[string]*nodeState
}

type nodeState struct {
	consecutive int
	penaltySec  float64 // current penalty window; doubles per re-admission failure
	until       float64 // blacklisted until this time; 0 = not blacklisted
}

// NewNodeHealthTracker builds a tracker over the given clock. threshold <= 0
// defaults to 3 consecutive failures; basePenaltySec <= 0 defaults to 60s.
func NewNodeHealthTracker(now func() float64, threshold int, basePenaltySec float64) *NodeHealthTracker {
	if threshold <= 0 {
		threshold = 3
	}
	if basePenaltySec <= 0 {
		basePenaltySec = 60
	}
	return &NodeHealthTracker{
		now:       now,
		threshold: threshold,
		baseSec:   basePenaltySec,
		nodes:     make(map[string]*nodeState),
	}
}

// Healthy implements NodeHealth.
func (h *NodeHealthTracker) Healthy(node string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.nodes[node]
	return st == nil || h.now() >= st.until
}

// ReportSuccess fully rehabilitates the node: the failure streak, penalty,
// and probation state are cleared.
func (h *NodeHealthTracker) ReportSuccess(node string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.nodes, node)
}

// ReportFailure records one failed or timed-out attempt on the node. Once
// the consecutive-failure streak reaches the threshold the node is
// blacklisted for the penalty window; a failure on probation (after the
// window expired) re-blacklists immediately with a doubled window.
func (h *NodeHealthTracker) ReportFailure(node string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.nodes[node]
	if st == nil {
		st = &nodeState{}
		h.nodes[node] = st
	}
	st.consecutive++
	onProbation := st.penaltySec > 0 && h.now() >= st.until
	switch {
	case onProbation:
		// Re-admission failed: double the penalty, no threshold grace.
		st.penaltySec *= 2
		st.until = h.now() + st.penaltySec
		st.consecutive = 0
	case st.consecutive >= h.threshold && h.now() >= st.until:
		if st.penaltySec == 0 {
			st.penaltySec = h.baseSec
		}
		st.until = h.now() + st.penaltySec
		st.consecutive = 0
	}
}

// Forget drops all tracked state for a node that left the cluster. Unlike
// ReportSuccess (same effect, different intent) this is membership cleanup:
// without it a long elastic run leaks one entry per departed node, and a
// node rejoining under the same ID would inherit the old machine's penalty.
func (h *NodeHealthTracker) Forget(node string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.nodes, node)
}

// Blacklisted returns the currently blacklisted nodes, sorted.
func (h *NodeHealthTracker) Blacklisted() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for n, st := range h.nodes {
		if h.now() < st.until {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
