package scheduler

import (
	"hiway/internal/obs"
	"hiway/internal/wf"
)

// agEntry is one queued task plus its global arrival sequence number, used
// to preserve FCFS tie-breaking across signature buckets.
type agEntry struct {
	t   *wf.Task
	seq int64
}

// agBucket is the FIFO of queued tasks sharing one signature, head-indexed
// so pops are O(1) and vacated slots are nil'd.
type agBucket struct {
	entries []agEntry
	head    int
}

func (b *agBucket) empty() bool { return b.head >= len(b.entries) }

func (b *agBucket) peek() *agEntry { return &b.entries[b.head] }

func (b *agBucket) pop() *wf.Task {
	e := b.entries[b.head]
	b.entries[b.head] = agEntry{}
	b.head++
	if b.empty() {
		b.entries = b.entries[:0]
		b.head = 0
	}
	return e.t
}

// agAdv is a memoized advantage for one (signature, node) pair, valid while
// the estimator's version for the signature is unchanged.
type agAdv struct {
	adv float64
	ver uint64
}

// AdaptiveGreedy is a dynamic, provenance-driven policy of the kind §3.4
// announces as follow-up work to the static HEFT: when YARN allocates a
// container, it picks — among all queued tasks — the one whose runtime
// estimate on the hosting node compares most favorably to that task's mean
// runtime across nodes. Unlike HEFT it needs no upfront plan, so it also
// works for iterative workflows; unlike plain data-aware scheduling it
// adapts to heterogeneous *compute* performance rather than data locality.
//
// Estimates follow the paper's strategy: the latest observation per
// (signature, node), with unobserved pairs treated as zero so that new
// assignments get explored.
//
// The advantage of a task on a node depends only on its signature, so the
// queue is bucketed by signature: Select compares one candidate per
// distinct signature (the earliest queued) instead of scanning every task,
// and the advantage per (signature, node) is memoized, invalidated when
// the estimator reports a new observation for the signature.
type AdaptiveGreedy struct {
	healthGate
	obsSink
	est  Estimator
	ver  EstimateVersioner // nil → no memoization
	pred HitPredictor      // nil → memo-blind declines
	sigs map[string]*agBucket
	adv  map[string]map[string]agAdv // signature → node → memo
	n    int
	seq  int64

	// declineBudget bounds how often the policy may turn down an
	// allocated container on a node known to be much slower than average
	// (the AM then re-requests elsewhere). A finite budget guarantees
	// progress even when every node looks bad.
	declineBudget int
	// declineFactor: decline when the best candidate's estimate on this
	// node exceeds declineFactor × its mean. Unobserved pairs estimate
	// zero and are never declined, preserving exploration.
	declineFactor float64
}

// NewAdaptiveGreedy returns the policy backed by the estimator.
func NewAdaptiveGreedy(est Estimator) *AdaptiveGreedy {
	s := &AdaptiveGreedy{
		est:           est,
		sigs:          make(map[string]*agBucket),
		adv:           make(map[string]map[string]agAdv),
		declineBudget: 64,
		declineFactor: 3,
	}
	if v, ok := est.(EstimateVersioner); ok {
		s.ver = v
	}
	return s
}

// Name implements Scheduler.
func (s *AdaptiveGreedy) Name() string { return "adaptive-greedy" }

// SetHitPredictor implements PredictorAware: the policy consults the memo
// table's admission-time hit predictor when weighing container declines.
func (s *AdaptiveGreedy) SetHitPredictor(p HitPredictor) { s.pred = p }

// OnTaskReady implements Scheduler.
func (s *AdaptiveGreedy) OnTaskReady(t *wf.Task) {
	b := s.sigs[t.Name]
	if b == nil {
		b = &agBucket{}
		s.sigs[t.Name] = b
	}
	s.seq++
	b.entries = append(b.entries, agEntry{t: t, seq: s.seq})
	s.n++
}

// Placement implements Scheduler: fully dynamic, no pinning.
func (s *AdaptiveGreedy) Placement(*wf.Task) (string, bool) { return "", false }

// Select implements Scheduler: maximize the relative advantage of running
// each candidate on this node. advantage = mean(sig) − est(sig, node); an
// unobserved pair estimates zero, making exploration maximally attractive,
// exactly like HEFT's default-zero strategy. If even the best candidate is
// known to run declineFactor× slower here than its cross-node mean, the
// container is declined (nil) while the decline budget lasts; the AM
// re-requests a container elsewhere.
//
// Within a signature all tasks tie, so only each bucket's head competes;
// across signatures, equal advantages fall back to arrival order via the
// global sequence number — the same choice the linear scan made, but in
// O(distinct signatures). The map iteration order is irrelevant because
// (advantage, seq) is a total order.
func (s *AdaptiveGreedy) Select(node string) *wf.Task {
	if s.n == 0 {
		return nil
	}
	if !s.nodeOK(node) {
		s.noteDecline(s.Name(), node, obs.OutcomeBlacklist, s.n, 0)
		return nil
	}
	var bestB *agBucket
	var bestSeq int64
	bestAdv := 0.0
	scanned := 0
	for sig, b := range s.sigs {
		if b.empty() {
			continue
		}
		scanned++
		adv := s.advantage(sig, node)
		head := b.peek()
		if bestB == nil || adv > bestAdv || (adv == bestAdv && head.seq < bestSeq) {
			bestB, bestAdv, bestSeq = b, adv, head.seq
		}
	}
	if bestB == nil {
		return nil
	}
	t := bestB.peek().t
	if s.declineBudget > 0 && s.shouldDecline(t, node) {
		s.declineBudget--
		s.noteDecline(s.Name(), node, obs.OutcomeDecline, s.n, scanned)
		return nil
	}
	bestB.pop()
	s.n--
	s.noteAssign(s.Name(), node, t, s.n+1, scanned, -1)
	return t
}

// shouldDecline reports whether the task is known to run far slower on the
// node than its mean suggests. A hit predictor raises the bar by 1/(1−p):
// signatures the memo table is likely to serve will mostly never execute
// again, so spending the bounded decline budget hunting a faster node for
// them has little future payoff (p→1 disables declining entirely).
func (s *AdaptiveGreedy) shouldDecline(t *wf.Task, node string) bool {
	mean, ok := s.est.MeanRuntime(t.Name)
	if !ok || mean <= 0 {
		return false
	}
	last, ok := s.est.LastRuntime(t.Name, node)
	if !ok {
		return false // unobserved: explore instead
	}
	threshold := s.declineFactor * mean
	if s.pred != nil {
		if p := s.pred.HitProbability(t.Name); p > 0 {
			if p >= 1 {
				return false
			}
			threshold /= 1 - p
		}
	}
	return last > threshold
}

// advantage returns mean(sig) − last(sig, node), memoized per
// (signature, node) when the estimator exposes observation versions.
func (s *AdaptiveGreedy) advantage(sig, node string) float64 {
	if s.ver == nil {
		return s.computeAdvantage(sig, node)
	}
	ver := s.ver.EstimateVersion(sig)
	byNode := s.adv[sig]
	if m, ok := byNode[node]; ok && m.ver == ver {
		return m.adv
	}
	adv := s.computeAdvantage(sig, node)
	if byNode == nil {
		byNode = make(map[string]agAdv)
		s.adv[sig] = byNode
	}
	byNode[node] = agAdv{adv: adv, ver: ver}
	return adv
}

func (s *AdaptiveGreedy) computeAdvantage(sig, node string) float64 {
	mean, ok := s.est.MeanRuntime(sig)
	if !ok {
		return 0 // nothing known about the signature: neutral
	}
	last, ok := s.est.LastRuntime(sig, node)
	if !ok {
		last = 0 // unobserved here: explore
	}
	return mean - last
}

// Queued implements Scheduler.
func (s *AdaptiveGreedy) Queued() int { return s.n }
