package scheduler

import "hiway/internal/wf"

// AdaptiveGreedy is a dynamic, provenance-driven policy of the kind §3.4
// announces as follow-up work to the static HEFT: when YARN allocates a
// container, it picks — among all queued tasks — the one whose runtime
// estimate on the hosting node compares most favorably to that task's mean
// runtime across nodes. Unlike HEFT it needs no upfront plan, so it also
// works for iterative workflows; unlike plain data-aware scheduling it
// adapts to heterogeneous *compute* performance rather than data locality.
//
// Estimates follow the paper's strategy: the latest observation per
// (signature, node), with unobserved pairs treated as zero so that new
// assignments get explored.
type AdaptiveGreedy struct {
	healthGate
	est   Estimator
	queue []*wf.Task

	// declineBudget bounds how often the policy may turn down an
	// allocated container on a node known to be much slower than average
	// (the AM then re-requests elsewhere). A finite budget guarantees
	// progress even when every node looks bad.
	declineBudget int
	// declineFactor: decline when the best candidate's estimate on this
	// node exceeds declineFactor × its mean. Unobserved pairs estimate
	// zero and are never declined, preserving exploration.
	declineFactor float64
}

// NewAdaptiveGreedy returns the policy backed by the estimator.
func NewAdaptiveGreedy(est Estimator) *AdaptiveGreedy {
	return &AdaptiveGreedy{est: est, declineBudget: 64, declineFactor: 3}
}

// Name implements Scheduler.
func (s *AdaptiveGreedy) Name() string { return "adaptive-greedy" }

// OnTaskReady implements Scheduler.
func (s *AdaptiveGreedy) OnTaskReady(t *wf.Task) { s.queue = append(s.queue, t) }

// Placement implements Scheduler: fully dynamic, no pinning.
func (s *AdaptiveGreedy) Placement(*wf.Task) (string, bool) { return "", false }

// Select implements Scheduler: maximize the relative advantage of running
// each candidate on this node. advantage = mean(sig) − est(sig, node); an
// unobserved pair estimates zero, making exploration maximally attractive,
// exactly like HEFT's default-zero strategy. If even the best candidate is
// known to run declineFactor× slower here than its cross-node mean, the
// container is declined (nil) while the decline budget lasts; the AM
// re-requests a container elsewhere.
func (s *AdaptiveGreedy) Select(node string) *wf.Task {
	if len(s.queue) == 0 || !s.nodeOK(node) {
		return nil
	}
	best := 0
	bestAdv := s.advantage(s.queue[0], node)
	for i := 1; i < len(s.queue); i++ {
		if adv := s.advantage(s.queue[i], node); adv > bestAdv {
			best, bestAdv = i, adv
		}
	}
	t := s.queue[best]
	if s.declineBudget > 0 && s.shouldDecline(t, node) {
		s.declineBudget--
		return nil
	}
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	return t
}

// shouldDecline reports whether the task is known to run far slower on the
// node than its mean suggests.
func (s *AdaptiveGreedy) shouldDecline(t *wf.Task, node string) bool {
	mean, ok := s.est.MeanRuntime(t.Name)
	if !ok || mean <= 0 {
		return false
	}
	last, ok := s.est.LastRuntime(t.Name, node)
	if !ok {
		return false // unobserved: explore instead
	}
	return last > s.declineFactor*mean
}

func (s *AdaptiveGreedy) advantage(t *wf.Task, node string) float64 {
	mean, ok := s.est.MeanRuntime(t.Name)
	if !ok {
		return 0 // nothing known about the signature: neutral
	}
	last, ok := s.est.LastRuntime(t.Name, node)
	if !ok {
		last = 0 // unobserved here: explore
	}
	return mean - last
}

// Queued implements Scheduler.
func (s *AdaptiveGreedy) Queued() int { return len(s.queue) }
