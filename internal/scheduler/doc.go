// Package scheduler implements Hi-WAY's Workflow Scheduler policies (§3.4):
//
//   - FCFS: first-come-first-served queueing, the baseline most SWfMSs use;
//   - data-aware (Hi-WAY's default): when a container is allocated, pick the
//     pending task with the highest fraction of input data already local to
//     the hosting node;
//   - static round-robin: pre-assign tasks to nodes in turn;
//   - static HEFT: heterogeneous-earliest-finish-time planning driven by
//     runtime estimates from the Provenance Manager, with a default estimate
//     of zero for untried task/node pairs to encourage exploration;
//   - adaptive-greedy: online per-signature/node runtime averaging that
//     declines containers on nodes observed to be slow for the queued work.
//
// Every policy also consults per-node health reports: containers on
// blacklisted (unhealthy) nodes are declined before the policy's own logic
// runs, which is how AM-level fault detection steers placement.
//
// This higher-level scheduler is distinct from YARN's internal schedulers:
// it decides which *task* runs in an allocated container, and (for static
// policies) on which node containers must be placed.
//
// Policies that embed obsSink (all of them) record one Decision per Select
// call — assign, decline, or blacklist, with queue depth, candidates
// scanned, and the chosen task's locality fraction — plus the
// hiway_sched_* counters. The hooks are nil-receiver no-ops until
// Deps.Obs wires an observer in.
package scheduler
