package scheduler

import (
	"fmt"
	"testing"

	"hiway/internal/wf"
)

func mkTask(name string, inputs []string, outputs ...string) *wf.Task {
	fis := make([]wf.FileInfo, len(outputs))
	for i, o := range outputs {
		fis[i] = wf.FileInfo{Path: o, SizeMB: 1}
	}
	return wf.NewTask(name, inputs, fis)
}

// fakeLocality maps "taskInput→node" fractions.
type fakeLocality struct {
	frac map[string]map[string]float64 // input path → node → fraction
}

func (f *fakeLocality) LocalFraction(paths []string, node string) float64 {
	if len(paths) == 0 {
		return 0
	}
	var sum float64
	for _, p := range paths {
		sum += f.frac[p][node]
	}
	return sum / float64(len(paths))
}

// fakeEstimator returns runtimes from a fixed table.
type fakeEstimator struct {
	runtimes map[string]map[string]float64 // signature → node → seconds
}

func (f *fakeEstimator) LastRuntime(sig, node string) (float64, bool) {
	d, ok := f.runtimes[sig][node]
	return d, ok
}

func (f *fakeEstimator) MeanRuntime(sig string) (float64, bool) {
	byNode, ok := f.runtimes[sig]
	if !ok || len(byNode) == 0 {
		return 0, false
	}
	var sum float64
	for _, d := range byNode {
		sum += d
	}
	return sum / float64(len(byNode)), true
}

func nodes(ids ...string) []NodeInfo {
	out := make([]NodeInfo, len(ids))
	for i, id := range ids {
		out[i] = NodeInfo{ID: id, VCores: 2, MemMB: 4096}
	}
	return out
}

func TestNewFactory(t *testing.T) {
	if s, err := New("", Deps{}); err != nil || s.Name() != PolicyFCFS {
		t.Fatalf("default policy: %v %v", s, err)
	}
	if s, err := New("greedy", Deps{}); err != nil || s.Name() != PolicyFCFS {
		t.Fatalf("greedy alias: %v %v", s, err)
	}
	if _, err := New(PolicyDataAware, Deps{}); err == nil {
		t.Fatal("data-aware without oracle must fail")
	}
	if _, err := New(PolicyHEFT, Deps{}); err == nil {
		t.Fatal("HEFT without estimator must fail")
	}
	if _, err := New("mystery", Deps{}); err == nil {
		t.Fatal("unknown policy must fail")
	}
	if s, err := New(PolicyRoundRobin, Deps{}); err != nil || s.Name() != PolicyRoundRobin {
		t.Fatalf("roundrobin: %v %v", s, err)
	}
	if s, err := New(PolicyDataAware, Deps{Locality: &fakeLocality{}}); err != nil || s.Name() != PolicyDataAware {
		t.Fatalf("dataaware: %v %v", s, err)
	}
	if s, err := New(PolicyHEFT, Deps{Estimator: &fakeEstimator{}}); err != nil || s.Name() != PolicyHEFT {
		t.Fatalf("heft: %v %v", s, err)
	}
}

func TestFCFSOrder(t *testing.T) {
	s := NewFCFS()
	a, b := mkTask("a", nil, "x"), mkTask("b", nil, "y")
	s.OnTaskReady(a)
	s.OnTaskReady(b)
	if s.Queued() != 2 {
		t.Fatalf("queued = %d", s.Queued())
	}
	if hint, strict := s.Placement(a); hint != "" || strict {
		t.Fatal("FCFS must not pin")
	}
	if got := s.Select("anynode"); got != a {
		t.Fatalf("first = %v", got)
	}
	if got := s.Select("anynode"); got != b {
		t.Fatalf("second = %v", got)
	}
	if got := s.Select("anynode"); got != nil {
		t.Fatalf("empty = %v", got)
	}
}

func TestDataAwarePicksMostLocalTask(t *testing.T) {
	loc := &fakeLocality{frac: map[string]map[string]float64{
		"f1": {"node-00": 1.0, "node-01": 0.0},
		"f2": {"node-00": 0.0, "node-01": 1.0},
	}}
	s := NewDataAware(loc)
	t1 := mkTask("t1", []string{"f1"}, "o1")
	t2 := mkTask("t2", []string{"f2"}, "o2")
	s.OnTaskReady(t1)
	s.OnTaskReady(t2)
	// A container on node-01 should run t2 (its data is local there) even
	// though t1 arrived first.
	if got := s.Select("node-01"); got != t2 {
		t.Fatalf("node-01 got %v, want t2", got)
	}
	if got := s.Select("node-00"); got != t1 {
		t.Fatalf("node-00 got %v, want t1", got)
	}
}

func TestDataAwareTieFallsBackToFIFO(t *testing.T) {
	loc := &fakeLocality{frac: map[string]map[string]float64{}}
	s := NewDataAware(loc)
	t1 := mkTask("t1", []string{"f1"}, "o1")
	t2 := mkTask("t2", []string{"f2"}, "o2")
	s.OnTaskReady(t1)
	s.OnTaskReady(t2)
	if got := s.Select("n"); got != t1 {
		t.Fatalf("tie should pick FIFO head, got %v", got)
	}
}

func TestRoundRobinSpreadsEvenly(t *testing.T) {
	var tasks []*wf.Task
	for i := 0; i < 9; i++ {
		tasks = append(tasks, mkTask(fmt.Sprintf("t%d", i), nil, fmt.Sprintf("o%d", i)))
	}
	dag, err := wf.NewDAG(tasks, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewRoundRobin()
	if err := s.Plan(dag, nodes("n0", "n1", "n2")); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, task := range tasks {
		node, strict := s.Placement(task)
		if !strict || node == "" {
			t.Fatalf("round-robin must pin strictly: %q %v", node, strict)
		}
		counts[node]++
	}
	for n, c := range counts {
		if c != 3 {
			t.Fatalf("node %s got %d tasks, want 3 (counts=%v)", n, c, counts)
		}
	}
	// Select only serves tasks pinned to the node.
	s.OnTaskReady(tasks[0])
	pinned, _ := s.Placement(tasks[0])
	other := "n0"
	if pinned == "n0" {
		other = "n1"
	}
	if got := s.Select(other); got != nil {
		t.Fatalf("select on wrong node returned %v", got)
	}
	if got := s.Select(pinned); got != tasks[0] {
		t.Fatalf("select on pinned node returned %v", got)
	}
}

func TestRoundRobinPlanErrors(t *testing.T) {
	dag, _ := wf.NewDAG([]*wf.Task{mkTask("a", nil, "o")}, nil, nil)
	s := NewRoundRobin()
	if err := s.Plan(dag, nil); err == nil {
		t.Fatal("plan with no nodes must fail")
	}
	if err := s.Plan(dag, nodes("n0")); err != nil {
		t.Fatal(err)
	}
	if err := s.Plan(dag, nodes("n0")); err == nil {
		t.Fatal("double plan must fail")
	}
}

// chainDAG builds a: t0 → t1 → t2 pipeline plus a parallel branch.
func heftDAG(t *testing.T) (*wf.DAG, []*wf.Task) {
	t.Helper()
	t0 := mkTask("prep", nil, "d0")
	t1 := mkTask("heavy", []string{"d0"}, "d1")
	t2 := mkTask("light", []string{"d0"}, "d2")
	t3 := mkTask("final", []string{"d1", "d2"}, "d3")
	dag, err := wf.NewDAG([]*wf.Task{t0, t1, t2, t3}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return dag, []*wf.Task{t0, t1, t2, t3}
}

func TestHEFTPrefersFastNodes(t *testing.T) {
	// node-fast runs everything in 10s, node-slow in 100s.
	est := &fakeEstimator{runtimes: map[string]map[string]float64{
		"prep":  {"fast": 10, "slow": 100},
		"heavy": {"fast": 10, "slow": 100},
		"light": {"fast": 10, "slow": 100},
		"final": {"fast": 10, "slow": 100},
	}}
	dag, tasks := heftDAG(t)
	s := NewHEFT(est)
	if err := s.Plan(dag, nodes("slow", "fast")); err != nil {
		t.Fatal(err)
	}
	// The critical chain prep→heavy→final must be on the fast node.
	for _, task := range []*wf.Task{tasks[0], tasks[3]} {
		if node, _ := s.Placement(task); node != "fast" {
			t.Fatalf("task %s placed on %s, want fast", task.Name, node)
		}
	}
	// "light" can run on slow in parallel (10s ready + 100s = 110 vs
	// inserting serially on fast); either way the plan must be strict.
	if _, strict := s.Placement(tasks[2]); !strict {
		t.Fatal("HEFT placement must be strict")
	}
}

func TestHEFTCriticalTaskFirst(t *testing.T) {
	// heavy has a long downstream chain; HEFT must dispatch it before
	// light when both are queued on the same node.
	est := &fakeEstimator{runtimes: map[string]map[string]float64{
		"prep":  {"n0": 10},
		"heavy": {"n0": 100},
		"light": {"n0": 1},
		"final": {"n0": 10},
	}}
	dag, tasks := heftDAG(t)
	s := NewHEFT(est)
	if err := s.Plan(dag, nodes("n0")); err != nil {
		t.Fatal(err)
	}
	s.OnTaskReady(tasks[2]) // light arrives first
	s.OnTaskReady(tasks[1]) // heavy second
	if got := s.Select("n0"); got != tasks[1] {
		t.Fatalf("higher-rank task must dispatch first, got %s", got.Name)
	}
}

func TestHEFTZeroEstimatesSpreadForExploration(t *testing.T) {
	// No provenance at all: everything estimates zero; ties must spread
	// tasks across nodes rather than piling onto one.
	est := &fakeEstimator{runtimes: map[string]map[string]float64{}}
	var tasks []*wf.Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, mkTask(fmt.Sprintf("t%d", i), nil, fmt.Sprintf("o%d", i)))
	}
	dag, _ := wf.NewDAG(tasks, nil, nil)
	s := NewHEFT(est)
	if err := s.Plan(dag, nodes("n0", "n1", "n2", "n3")); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, task := range tasks {
		node, _ := s.Placement(task)
		counts[node]++
	}
	for n, c := range counts {
		if c != 2 {
			t.Fatalf("zero-estimate plan should spread 8 tasks over 4 nodes evenly, %s got %d (%v)", n, c, counts)
		}
	}
}

func TestHEFTPartialKnowledgeAvoidsKnownSlowNode(t *testing.T) {
	// Node n1 is known to be very slow for "work"; n0 known fast; n2
	// unobserved (estimate 0 → attractive, exploration).
	est := &fakeEstimator{runtimes: map[string]map[string]float64{
		"work": {"n0": 10, "n1": 1000},
	}}
	var tasks []*wf.Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, mkTask("work", nil, fmt.Sprintf("o%d", i)))
	}
	dag, _ := wf.NewDAG(tasks, nil, nil)
	s := NewHEFT(est)
	if err := s.Plan(dag, nodes("n0", "n1", "n2")); err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if node, _ := s.Placement(task); node == "n1" {
			t.Fatalf("task placed on known-slow node n1")
		}
	}
}

func TestHEFTInsertionFillsGaps(t *testing.T) {
	// earliestSlot must reuse a gap before an existing reservation.
	busy := []slot{{10, 20}}
	if got := earliestSlot(busy, 0, 5); got != 0 {
		t.Fatalf("gap start = %g, want 0", got)
	}
	if got := earliestSlot(busy, 0, 15); got != 20 {
		t.Fatalf("no-fit start = %g, want 20", got)
	}
	if got := earliestSlot(busy, 12, 3); got != 20 {
		t.Fatalf("overlap start = %g, want 20", got)
	}
	b2 := insertSlot(busy, slot{0, 5})
	if b2[0].start != 0 || b2[1].start != 10 {
		t.Fatalf("insertSlot order: %v", b2)
	}
}

func TestStaticUnplannedTaskFallsBackToDynamic(t *testing.T) {
	s := NewRoundRobin()
	stray := mkTask("stray", nil, "o")
	if node, strict := s.Placement(stray); node != "" || strict {
		t.Fatal("unplanned task must not be pinned")
	}
}
