package hdfs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hiway/internal/cluster"
	"hiway/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func newTestCluster(t *testing.T, n int) (*sim.Engine, *cluster.Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	spec := cluster.NodeSpec{VCores: 4, MemMB: 8192, CPUFactor: 1, DiskMBps: 100, NetMBps: 100}
	c, err := cluster.Uniform(eng, cluster.Config{SwitchMBps: 1000, ExternalPerFlowMBps: 50}, n, spec)
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func TestPutPlacesWriterLocalFirstReplica(t *testing.T) {
	_, c := newTestCluster(t, 5)
	fs := New(c, Config{BlockSizeMB: 64, Replication: 3}, 1)
	f, err := fs.Put("/data/a", 200, "node-02")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 4 { // 64+64+64+8
		t.Fatalf("blocks = %d, want 4", len(f.Blocks))
	}
	for i, b := range f.Blocks {
		if b.Replicas[0] != "node-02" {
			t.Fatalf("block %d first replica = %s, want node-02", i, b.Replicas[0])
		}
		if len(b.Replicas) != 3 {
			t.Fatalf("block %d replication = %d", i, len(b.Replicas))
		}
		seen := map[string]bool{}
		for _, r := range b.Replicas {
			if seen[r] {
				t.Fatalf("block %d has duplicate replica %s", i, r)
			}
			seen[r] = true
		}
	}
	if !almost(f.Blocks[3].SizeMB, 8, 1e-9) {
		t.Fatalf("tail block = %g, want 8", f.Blocks[3].SizeMB)
	}
}

func TestPutRandomPlacementWithoutWriter(t *testing.T) {
	_, c := newTestCluster(t, 8)
	fs := New(c, Config{BlockSizeMB: 32, Replication: 2}, 42)
	f, _ := fs.Put("/data/b", 320, "")
	firsts := map[string]bool{}
	for _, b := range f.Blocks {
		firsts[b.Replicas[0]] = true
	}
	if len(firsts) < 2 {
		t.Fatalf("random placement always picked the same first node: %v", firsts)
	}
}

func TestReplicationClampedToClusterSize(t *testing.T) {
	_, c := newTestCluster(t, 2)
	fs := New(c, Config{Replication: 3}, 1)
	if fs.Config().Replication != 2 {
		t.Fatalf("replication = %d, want 2", fs.Config().Replication)
	}
}

func TestZeroByteFile(t *testing.T) {
	_, c := newTestCluster(t, 3)
	fs := New(c, Config{}, 1)
	f, err := fs.Put("/empty", 0, "node-00")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 1 || f.Blocks[0].SizeMB != 0 {
		t.Fatalf("zero-byte file blocks = %+v", f.Blocks)
	}
	if !fs.Readable("/empty") {
		t.Fatal("zero-byte file should be readable")
	}
}

func TestPutRejectsBadArgs(t *testing.T) {
	_, c := newTestCluster(t, 3)
	fs := New(c, Config{}, 1)
	if _, err := fs.Put("/x", -1, ""); err == nil {
		t.Fatal("expected error for negative size")
	}
	if _, err := fs.Put("/x", 1, "node-99"); err == nil {
		t.Fatal("expected error for unknown writer")
	}
}

func TestLocalMBAndFraction(t *testing.T) {
	_, c := newTestCluster(t, 5)
	fs := New(c, Config{BlockSizeMB: 1000, Replication: 1}, 1)
	fs.Put("/a", 100, "node-00")
	fs.Put("/b", 300, "node-01")
	if got := fs.LocalMB("/a", "node-00"); !almost(got, 100, 1e-9) {
		t.Fatalf("LocalMB = %g, want 100", got)
	}
	if got := fs.LocalMB("/a", "node-01"); got != 0 {
		t.Fatalf("LocalMB on other node = %g", got)
	}
	paths := []string{"/a", "/b"}
	if got := fs.LocalFraction(paths, "node-01"); !almost(got, 0.75, 1e-9) {
		t.Fatalf("LocalFraction = %g, want 0.75", got)
	}
	if got := fs.LocalFraction(nil, "node-00"); got != 0 {
		t.Fatalf("empty input fraction = %g", got)
	}
	if got := fs.TotalMB(paths); !almost(got, 400, 1e-9) {
		t.Fatalf("TotalMB = %g", got)
	}
}

func TestPlanClassifiesBytes(t *testing.T) {
	_, c := newTestCluster(t, 4)
	fs := New(c, Config{BlockSizeMB: 1000, Replication: 1}, 1)
	fs.Put("/local", 50, "node-00")
	fs.Put("/remote", 70, "node-01")
	fs.PutExternal("/s3/reads", 500)
	plan := fs.Plan([]string{"/local", "/remote", "/s3/reads", "/missing"}, "node-00")
	if !almost(plan.LocalMB, 50, 1e-9) || !almost(plan.RemoteMB, 70, 1e-9) || !almost(plan.ExternalMB, 500, 1e-9) {
		t.Fatalf("plan = %+v", plan)
	}
	if len(plan.Missing) != 1 || plan.Missing[0] != "/missing" {
		t.Fatalf("missing = %v", plan.Missing)
	}
}

func TestReadLocalOnlyUsesDisk(t *testing.T) {
	eng, c := newTestCluster(t, 3)
	fs := New(c, Config{BlockSizeMB: 1000, Replication: 1}, 1)
	fs.Put("/a", 100, "node-00") // disk at 100 MB/s → 1s
	var doneAt float64
	fs.Read("node-00", []string{"/a"}, func(err error) {
		if err != nil {
			t.Errorf("read error: %v", err)
		}
		doneAt = eng.Now()
	})
	eng.Run()
	if !almost(doneAt, 1, 1e-9) {
		t.Fatalf("local read at %g, want 1", doneAt)
	}
	if c.Switch.Utilization() != 0 {
		t.Fatal("local read must not touch the switch")
	}
}

func TestReadRemoteUsesSwitch(t *testing.T) {
	eng, c := newTestCluster(t, 3)
	fs := New(c, Config{BlockSizeMB: 1000, Replication: 1}, 1)
	fs.Put("/a", 200, "node-01") // NIC 100 MB/s → 2s via switch
	var doneAt float64
	fs.Read("node-00", []string{"/a"}, func(err error) {
		if err != nil {
			t.Errorf("read error: %v", err)
		}
		doneAt = eng.Now()
	})
	eng.Run()
	if !almost(doneAt, 2, 1e-9) {
		t.Fatalf("remote read at %g, want 2", doneAt)
	}
	if c.Switch.Utilization() == 0 {
		t.Fatal("remote read should cross the switch")
	}
}

func TestReadExternalUsesNIC(t *testing.T) {
	eng, c := newTestCluster(t, 2)
	fs := New(c, Config{}, 1)
	fs.PutExternal("/s3/x", 100) // 50 MB/s per flow → 2s
	var doneAt float64
	fs.Read("node-00", []string{"/s3/x"}, func(err error) {
		if err != nil {
			t.Errorf("read error: %v", err)
		}
		doneAt = eng.Now()
	})
	eng.Run()
	if !almost(doneAt, 2, 1e-9) {
		t.Fatalf("external read at %g, want 2", doneAt)
	}
	if c.Switch.Utilization() != 0 {
		t.Fatal("external read must not cross the switch")
	}
}

func TestReadMissingFileErrors(t *testing.T) {
	eng, c := newTestCluster(t, 2)
	fs := New(c, Config{}, 1)
	var gotErr error
	fs.Read("node-00", []string{"/nope"}, func(err error) { gotErr = err })
	eng.Run()
	if gotErr == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestReadUnknownNodeErrors(t *testing.T) {
	eng, c := newTestCluster(t, 2)
	fs := New(c, Config{}, 1)
	var gotErr error
	fs.Read("node-77", nil, func(err error) { gotErr = err })
	eng.Run()
	if gotErr == nil {
		t.Fatal("expected error for unknown node")
	}
}

func TestReadEmptySetCompletes(t *testing.T) {
	eng, c := newTestCluster(t, 2)
	fs := New(c, Config{}, 1)
	called := false
	fs.Read("node-00", nil, func(err error) {
		if err != nil {
			t.Errorf("err = %v", err)
		}
		called = true
	})
	eng.Run()
	if !called {
		t.Fatal("callback not invoked")
	}
}

func TestWriteRegistersMetadataMatchingTraffic(t *testing.T) {
	eng, c := newTestCluster(t, 4)
	fs := New(c, Config{BlockSizeMB: 1000, Replication: 3}, 7)
	var doneAt float64
	fs.Write("node-00", "/out", 100, func(err error) {
		if err != nil {
			t.Errorf("write error: %v", err)
		}
		doneAt = eng.Now()
	})
	eng.Run()
	f, ok := fs.Stat("/out")
	if !ok {
		t.Fatal("file not registered")
	}
	if f.Blocks[0].Replicas[0] != "node-00" {
		t.Fatalf("first replica = %s, want writer-local", f.Blocks[0].Replicas[0])
	}
	if len(f.Blocks[0].Replicas) != 3 {
		t.Fatalf("replicas = %v", f.Blocks[0].Replicas)
	}
	// Local write 100MB at 100MB/s = 1s; two replica flows of 100MB each
	// share nothing (switch 1000), NIC capped at 100 → 1s. Total ~1s.
	if !almost(doneAt, 1, 0.5) {
		t.Fatalf("write completed at %g, want ~1", doneAt)
	}
	if got := fs.LocalMB("/out", "node-00"); !almost(got, 100, 1e-9) {
		t.Fatalf("writer-local MB = %g", got)
	}
}

func TestWriteBeforeCompletionNotVisible(t *testing.T) {
	eng, c := newTestCluster(t, 3)
	fs := New(c, Config{}, 1)
	fs.Write("node-00", "/slow", 100, func(error) {})
	if fs.Exists("/slow") {
		t.Fatal("file visible before write completed")
	}
	eng.Run()
	if !fs.Exists("/slow") {
		t.Fatal("file missing after write completed")
	}
}

func TestWriteZeroBytes(t *testing.T) {
	eng, c := newTestCluster(t, 3)
	fs := New(c, Config{}, 1)
	var called bool
	fs.Write("node-00", "/zero", 0, func(err error) {
		if err != nil {
			t.Errorf("err = %v", err)
		}
		called = true
	})
	eng.Run()
	if !called || !fs.Exists("/zero") {
		t.Fatal("zero-byte write failed")
	}
}

func TestKillNodeFailover(t *testing.T) {
	eng, c := newTestCluster(t, 3)
	fs := New(c, Config{BlockSizeMB: 1000, Replication: 2}, 1)
	fs.Put("/a", 100, "node-00")
	f, _ := fs.Stat("/a")
	second := f.Blocks[0].Replicas[1]
	fs.KillNode("node-00")
	if !fs.Readable("/a") {
		t.Fatal("file should survive one node crash with replication 2")
	}
	if fs.LocalMB("/a", "node-00") != 0 {
		t.Fatal("dead node must not report local bytes")
	}
	plan := fs.Plan([]string{"/a"}, second)
	if !almost(plan.LocalMB, 100, 1e-9) {
		t.Fatalf("surviving replica should be local on %s: %+v", second, plan)
	}
	// Reading still works.
	var gotErr error
	fs.Read(second, []string{"/a"}, func(err error) { gotErr = err })
	eng.Run()
	if gotErr != nil {
		t.Fatalf("read after crash: %v", gotErr)
	}
	// Killing the second replica too breaks the file.
	fs.KillNode(second)
	if fs.Readable("/a") {
		t.Fatal("file should be unreadable with all replicas dead")
	}
	fs.ReviveNode(second)
	if !fs.Readable("/a") {
		t.Fatal("revive should restore readability")
	}
}

func TestDeadNodeReceivesNoNewReplicas(t *testing.T) {
	_, c := newTestCluster(t, 3)
	fs := New(c, Config{Replication: 3}, 1)
	fs.KillNode("node-01")
	f, _ := fs.Put("/a", 10, "node-00")
	for _, r := range f.Blocks[0].Replicas {
		if r == "node-01" {
			t.Fatal("replica placed on dead node")
		}
	}
	if len(f.Blocks[0].Replicas) != 2 {
		t.Fatalf("replicas = %v, want 2 live nodes", f.Blocks[0].Replicas)
	}
}

func TestDeleteAndFiles(t *testing.T) {
	_, c := newTestCluster(t, 2)
	fs := New(c, Config{}, 1)
	fs.Put("/b", 1, "")
	fs.Put("/a", 1, "")
	got := fs.Files()
	if len(got) != 2 || got[0] != "/a" || got[1] != "/b" {
		t.Fatalf("Files() = %v", got)
	}
	fs.Delete("/a")
	if fs.Exists("/a") || !fs.Exists("/b") {
		t.Fatal("delete broken")
	}
}

func TestRereplicateRestoresFactor(t *testing.T) {
	eng, c := newTestCluster(t, 5)
	fs := New(c, Config{BlockSizeMB: 32, Replication: 3}, 9)
	fs.Put("/a", 100, "node-00")
	fs.Put("/b", 50, "node-01")
	if n := fs.UnderReplicated(); n != 0 {
		t.Fatalf("fresh fs under-replicated = %d", n)
	}
	fs.KillNode("node-00")
	under := fs.UnderReplicated()
	if under == 0 {
		t.Fatal("killing a replica holder should leave under-replicated blocks")
	}
	var copies int
	fs.Rereplicate(func(n int) { copies = n })
	eng.Run()
	if copies == 0 {
		t.Fatal("no copies made")
	}
	if n := fs.UnderReplicated(); n != 0 {
		t.Fatalf("still %d under-replicated blocks after recovery", n)
	}
	// The recovered replicas are on live nodes only.
	for _, p := range fs.Files() {
		f, _ := fs.Stat(p)
		for _, b := range f.Blocks {
			live := 0
			for _, r := range b.Replicas {
				if r != "node-00" {
					live++
				}
			}
			if live < 3 {
				t.Fatalf("block of %s has %d live replicas", p, live)
			}
		}
	}
	// Idempotent: nothing further to copy.
	ran := false
	fs.Rereplicate(func(n int) {
		ran = true
		if n != 0 {
			t.Fatalf("second pass copied %d", n)
		}
	})
	eng.Run()
	if !ran {
		t.Fatal("done callback not invoked")
	}
}

// TestDecommissionEvacuatesBlocks pins graceful-decommission semantics: a
// decommissioning node keeps serving reads, receives no new replicas, no
// longer counts toward the replication factor, and Rereplicate copies its
// blocks to staying nodes — so concurrent drains cannot strand a block with
// all of its holders departing.
func TestDecommissionEvacuatesBlocks(t *testing.T) {
	eng, c := newTestCluster(t, 4)
	fs := New(c, Config{BlockSizeMB: 64, Replication: 2}, 9)
	f, _ := fs.Put("/a", 64, "node-00")
	holder := f.Blocks[0].Replicas[1]
	fs.DecommissionNode(holder)

	// Still readable: the decommissioning replica serves until departure.
	if !fs.Readable("/a") {
		t.Fatal("file unreadable during decommission")
	}
	// No longer a placement target.
	g, _ := fs.Put("/b", 64, "")
	for _, r := range g.Blocks[0].Replicas {
		if r == holder {
			t.Fatalf("decommissioning node %s received a new replica", holder)
		}
	}
	// Evacuation: the factor is restored on staying nodes only.
	var copies int
	fs.Rereplicate(func(n int) { copies = n })
	eng.Run()
	if copies == 0 {
		t.Fatal("no evacuation copies made")
	}
	staying := 0
	f, _ = fs.Stat("/a")
	for _, r := range f.Blocks[0].Replicas {
		if r != holder && !fs.dead[r] {
			staying++
		}
	}
	if staying < 2 {
		t.Fatalf("block has %d staying replicas after evacuation, want 2 (replicas %v)",
			staying, f.Blocks[0].Replicas)
	}
	// ForgetNode clears the decommission mark so a same-ID rejoin is a
	// blank, placeable machine again.
	fs.KillNode(holder)
	fs.ForgetNode(holder)
	if fs.excluded[holder] {
		t.Fatal("ForgetNode left the decommission mark in place")
	}
}

// TestRereplicateDestinationDepartsMidFlight pins the elastic-membership
// hazard: a rereplication copy is in flight toward a node that is reclaimed
// (removed from the cluster and forgotten by the namespace) before the copy
// completes. The completed transfer must NOT register the departed node as a
// replica holder — otherwise a later Rereplicate would pick the phantom
// machine as a copy source and dereference a node that no longer exists.
func TestRereplicateDestinationDepartsMidFlight(t *testing.T) {
	eng, c := newTestCluster(t, 3)
	fs := New(c, Config{BlockSizeMB: 64, Replication: 2}, 9)
	f, _ := fs.Put("/a", 64, "node-00")
	// Kill the second replica holder; the sole rereplication candidate is
	// the remaining third node.
	var dst string
	fs.KillNode(f.Blocks[0].Replicas[1])
	for _, id := range c.NodeIDs() {
		if id != f.Blocks[0].Replicas[0] && id != f.Blocks[0].Replicas[1] {
			dst = id
		}
	}
	fs.Rereplicate(func(int) {})
	// Reclaim the destination while the copy is still on the wire.
	c.RemoveNode(dst)
	fs.KillNode(dst)
	fs.ForgetNode(dst)
	eng.Run()
	for _, b := range f.Blocks {
		for _, r := range b.Replicas {
			if c.Node(r) == nil {
				t.Fatalf("replica registered on departed node %s: %v", r, b.Replicas)
			}
		}
	}
	// A further pass must not panic on a phantom source (and has nowhere
	// left to copy to).
	fs.Rereplicate(func(int) {})
	eng.Run()
}

func TestRereplicateSkipsLostBlocks(t *testing.T) {
	eng, c := newTestCluster(t, 3)
	fs := New(c, Config{BlockSizeMB: 1000, Replication: 1}, 9)
	f, _ := fs.Put("/a", 10, "node-00")
	fs.KillNode(f.Blocks[0].Replicas[0])
	var copies int
	fs.Rereplicate(func(n int) { copies = n })
	eng.Run()
	if copies != 0 {
		t.Fatalf("lost block cannot be copied, got %d copies", copies)
	}
	if fs.Readable("/a") {
		t.Fatal("block with no replicas should stay unreadable")
	}
}

func TestExcludeNodesReceiveNoReplicas(t *testing.T) {
	_, c := newTestCluster(t, 4)
	fs := New(c, Config{BlockSizeMB: 16, Replication: 3, ExcludeNodes: []string{"node-00", "node-01"}}, 3)
	// Replication clamps to the two datanodes.
	if fs.Config().Replication != 2 {
		t.Fatalf("replication = %d, want 2", fs.Config().Replication)
	}
	f, err := fs.Put("/a", 100, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Blocks {
		for _, r := range b.Replicas {
			if r == "node-00" || r == "node-01" {
				t.Fatalf("replica placed on excluded master node %s", r)
			}
		}
	}
	// A writer on an excluded node gets no local first replica.
	f2, _ := fs.Put("/b", 10, "node-00")
	for _, r := range f2.Blocks[0].Replicas {
		if r == "node-00" {
			t.Fatal("excluded writer received a replica")
		}
	}
	// Reading from an excluded node still works (all bytes remote).
	plan := fs.Plan([]string{"/a"}, "node-00")
	if plan.LocalMB != 0 || plan.RemoteMB != 100 {
		t.Fatalf("plan from master = %+v", plan)
	}
}

// Property: block sizes always sum to the file size and every block has
// min(replication, liveNodes) distinct replicas.
func TestPutInvariantsProperty(t *testing.T) {
	f := func(seed int64, sizeQ uint16, repQ, nodesQ uint8) bool {
		nodes := int(nodesQ%6) + 1
		rep := int(repQ%4) + 1
		size := float64(sizeQ % 2000)
		eng := sim.NewEngine()
		spec := cluster.NodeSpec{VCores: 2, MemMB: 1024, CPUFactor: 1, DiskMBps: 10, NetMBps: 10}
		c, err := cluster.Uniform(eng, cluster.Config{SwitchMBps: 100}, nodes, spec)
		if err != nil {
			return false
		}
		fs := New(c, Config{BlockSizeMB: 64, Replication: rep}, seed)
		file, err := fs.Put("/f", size, "")
		if err != nil {
			return false
		}
		var sum float64
		wantRep := rep
		if wantRep > nodes {
			wantRep = nodes
		}
		for _, b := range file.Blocks {
			sum += b.SizeMB
			if len(b.Replicas) != wantRep {
				return false
			}
			seen := map[string]bool{}
			for _, r := range b.Replicas {
				if seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		return almost(sum, size, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: LocalMB never exceeds file size, and summing LocalMB over all
// nodes equals size × replication (each replica counted once).
func TestLocalMBProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		spec := cluster.NodeSpec{VCores: 2, MemMB: 1024, CPUFactor: 1, DiskMBps: 10, NetMBps: 10}
		nodes := rng.Intn(8) + 3
		c, _ := cluster.Uniform(eng, cluster.Config{SwitchMBps: 100}, nodes, spec)
		fs := New(c, Config{BlockSizeMB: 32, Replication: 3}, seed)
		size := rng.Float64() * 500
		file, _ := fs.Put("/f", size, "")
		var total float64
		for _, id := range c.NodeIDs() {
			lm := fs.LocalMB("/f", id)
			if lm > size+1e-9 {
				return false
			}
			total += lm
		}
		_ = file
		return almost(total, size*3, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
