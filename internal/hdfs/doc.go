// Package hdfs simulates the Hadoop Distributed File System as seen by a
// workflow engine: files split into blocks, each block replicated across
// nodes, writer-local first-replica placement, and locality metadata that
// Hi-WAY's data-aware scheduler queries to place tasks near their input.
//
// The package also simulates the I/O itself on the cluster model: local
// block reads go through the node's disk, remote block reads through the
// shared switch, writes pipeline replicas to other nodes, and files marked
// external (the paper's S3 bucket) are fetched over the node NIC without
// crossing the cluster switch.
package hdfs
