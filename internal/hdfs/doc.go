// Package hdfs simulates the Hadoop Distributed File System as seen by a
// workflow engine: files split into blocks, each block replicated across
// nodes, writer-local first-replica placement, and locality metadata that
// Hi-WAY's data-aware scheduler queries to place tasks near their input.
//
// The package also simulates the I/O itself on the cluster model: local
// block reads go through the node's disk, remote block reads through the
// shared switch, writes pipeline replicas to other nodes, and files marked
// external (the paper's S3 bucket) are fetched over the node NIC without
// crossing the cluster switch.
//
// # Concurrency contract
//
// An FS is NOT goroutine-safe, and deliberately so: block placement draws
// from a seeded rng and I/O completion rides the single-threaded
// discrete-event engine, so any cross-goroutine interleaving would destroy
// both determinism and the virtual-clock ordering. Concurrent layers shard
// rather than lock: each concurrently executing workflow run owns a private
// FS (internal/shard's parallel -w shards; internal/service's Server, which
// materializes one namespace per admitted run and stages the run's inputs
// under its own /svc/<tenant>/<name>/ prefix). Sharing is confined to the
// layers above — an admission gate and a run registry — never the
// namespace itself.
package hdfs
