package hdfs

import (
	"fmt"
	"math/rand"
	"sort"

	"hiway/internal/cluster"
)

// Config controls block layout.
type Config struct {
	BlockSizeMB float64 // default 128, matching Hadoop 2.x
	Replication int     // default 3
	// ExcludeNodes never receive replicas — master nodes running only the
	// NameNode/ResourceManager, as in the paper's EC2 experiments.
	ExcludeNodes []string `json:"excludeNodes,omitempty"`
}

func (c *Config) setDefaults() {
	if c.BlockSizeMB <= 0 {
		c.BlockSizeMB = 128
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
}

// Block is one replicated chunk of a file.
type Block struct {
	SizeMB   float64
	Replicas []string // node IDs holding the block
}

// File is namenode metadata for one file.
type File struct {
	Path     string
	SizeMB   float64
	External bool // lives in the external source (S3), not on cluster disks
	Blocks   []Block
}

// FS is the simulated namenode plus datanode I/O model.
type FS struct {
	cfg      Config
	cluster  *cluster.Cluster
	rng      *rand.Rand
	files    map[string]*File
	dead     map[string]bool // decommissioned/crashed nodes
	excluded map[string]bool // non-datanode (master) nodes
	epoch    uint64          // bumped whenever existing files' locality can change

	// liveNodes cache: every dead/excluded mutation bumps epoch and every
	// membership change bumps the cluster version, so the pair keys
	// invalidation exactly. liveOwned is the FS-owned backing buffer; the
	// cache may instead alias the cluster's read-only NodeIDs slice.
	liveCache    []string
	liveOwned    []string
	liveValid    bool
	liveCV       uint64
	liveEpoch    uint64
	placeScratch []string // reusable candidate buffer for placeReplicas

	// readFault, when set, is consulted before each Read; a non-nil error
	// fails that read as a transient I/O error (the chaos harness's model
	// of flaky datanode reads). The caller is expected to retry.
	readFault func(nodeID string, paths []string) error
}

// New creates an empty filesystem over the cluster. The seed makes replica
// placement deterministic for a given experiment.
func New(c *cluster.Cluster, cfg Config, seed int64) *FS {
	cfg.setDefaults()
	datanodes := c.Size() - len(cfg.ExcludeNodes)
	if datanodes < 1 {
		datanodes = 1
	}
	if cfg.Replication > datanodes {
		cfg.Replication = datanodes
	}
	fs := &FS{
		cfg:      cfg,
		cluster:  c,
		rng:      rand.New(rand.NewSource(seed)),
		files:    make(map[string]*File),
		dead:     make(map[string]bool),
		excluded: make(map[string]bool),
	}
	for _, id := range cfg.ExcludeNodes {
		fs.excluded[id] = true
	}
	return fs
}

// Config returns the effective configuration.
func (fs *FS) Config() Config { return fs.cfg }

// LocalityEpoch is a counter that advances whenever the locality of an
// already-registered file can have changed: node death/revival, deletes,
// re-replication, or overwrites. Registering a brand-new file does not
// advance it — a task only becomes ready once its inputs exist, so new
// files cannot affect queued tasks. Schedulers cache locality lookups and
// invalidate when the epoch moves.
func (fs *FS) LocalityEpoch() uint64 { return fs.epoch }

// CandidateNodes returns every node holding a live replica of any block of
// the given paths — exactly the nodes where LocalFraction can be positive.
// The data-aware scheduler uses it to bucket queued tasks by node instead
// of scoring every queued task against every freed container. The order is
// deterministic (path, block, replica order).
func (fs *FS) CandidateNodes(paths []string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, p := range paths {
		f, ok := fs.files[p]
		if !ok || f.External {
			continue
		}
		for _, b := range f.Blocks {
			for _, r := range b.Replicas {
				if !seen[r] && !fs.dead[r] {
					seen[r] = true
					out = append(out, r)
				}
			}
		}
	}
	return out
}

// Stat returns file metadata.
func (fs *FS) Stat(path string) (*File, bool) {
	f, ok := fs.files[path]
	return f, ok
}

// Exists reports whether the path is known.
func (fs *FS) Exists(path string) bool {
	_, ok := fs.files[path]
	return ok
}

// Delete removes a file's metadata (no I/O is simulated for deletes).
func (fs *FS) Delete(path string) {
	if _, ok := fs.files[path]; ok {
		fs.epoch++
	}
	delete(fs.files, path)
}

// Files returns all paths in sorted order.
func (fs *FS) Files() []string {
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Put creates file metadata without simulating any I/O — used to stage
// initial input data. If writerNode is non-empty the first replica of each
// block lands there; remaining replicas go to distinct random live nodes.
func (fs *FS) Put(path string, sizeMB float64, writerNode string) (*File, error) {
	f, err := fs.buildFile(path, sizeMB, writerNode)
	if err != nil {
		return nil, err
	}
	fs.register(path, f)
	return f, nil
}

// register installs file metadata, advancing the locality epoch only on
// overwrite (see LocalityEpoch).
func (fs *FS) register(path string, f *File) {
	if _, ok := fs.files[path]; ok {
		fs.epoch++
	}
	fs.files[path] = f
}

// buildFile lays out blocks and replica placement without registering the
// file, so Write can simulate exactly the traffic the final metadata shows.
func (fs *FS) buildFile(path string, sizeMB float64, writerNode string) (*File, error) {
	if sizeMB < 0 {
		return nil, fmt.Errorf("hdfs: negative size for %q", path)
	}
	if writerNode != "" && fs.cluster.Node(writerNode) == nil {
		return nil, fmt.Errorf("hdfs: unknown writer node %q", writerNode)
	}
	f := &File{Path: path, SizeMB: sizeMB}
	for off := 0.0; off < sizeMB || (sizeMB == 0 && off == 0); off += fs.cfg.BlockSizeMB {
		sz := fs.cfg.BlockSizeMB
		if off+sz > sizeMB {
			sz = sizeMB - off
		}
		f.Blocks = append(f.Blocks, Block{SizeMB: sz, Replicas: fs.placeReplicas(writerNode)})
		if sizeMB == 0 {
			break
		}
	}
	return f, nil
}

// PutExternal registers a file that lives in the external source (S3).
func (fs *FS) PutExternal(path string, sizeMB float64) *File {
	f := &File{Path: path, SizeMB: sizeMB, External: true}
	fs.register(path, f)
	return f
}

// placeReplicas picks replica nodes: first on the writer (if live), the
// rest on distinct random live nodes. The candidate buffer is reused
// across calls; the full shuffle is kept (rather than a partial draw) so
// the placement rng stream matches the original implementation exactly.
func (fs *FS) placeReplicas(writerNode string) []string {
	live := fs.liveNodes()
	reps := make([]string, 0, fs.cfg.Replication)
	if writerNode != "" && !fs.dead[writerNode] && !fs.excluded[writerNode] {
		reps = append(reps, writerNode)
	}
	cands := fs.placeScratch[:0]
	for _, id := range live {
		if len(reps) > 0 && id == reps[0] {
			continue
		}
		cands = append(cands, id)
	}
	fs.placeScratch = cands
	fs.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	for _, id := range cands {
		if len(reps) >= fs.cfg.Replication {
			break
		}
		reps = append(reps, id)
	}
	return reps
}

// liveNodes returns the IDs of nodes that can hold new replicas, in ID
// order. The result is cached between liveness/membership changes and must
// be treated as read-only.
func (fs *FS) liveNodes() []string {
	cv := fs.cluster.Version()
	if fs.liveValid && fs.liveCV == cv && fs.liveEpoch == fs.epoch {
		return fs.liveCache
	}
	ids := fs.cluster.NodeIDs()
	if len(fs.dead) == 0 && len(fs.excluded) == 0 {
		fs.liveCache = ids // alias the cluster's cache; both are read-only
	} else {
		out := fs.liveOwned[:0]
		for _, id := range ids {
			if !fs.dead[id] && !fs.excluded[id] {
				out = append(out, id)
			}
		}
		fs.liveOwned = out
		fs.liveCache = out
	}
	fs.liveValid, fs.liveCV, fs.liveEpoch = true, cv, fs.epoch
	return fs.liveCache
}

// KillNode marks a node as crashed: its replicas become unreadable and it
// receives no new replicas. Files survive as long as one live replica per
// block remains — the redundancy property of §3.1.
func (fs *FS) KillNode(nodeID string) {
	fs.dead[nodeID] = true
	fs.epoch++
}

// ReviveNode brings a node back (existing replica metadata is retained).
func (fs *FS) ReviveNode(nodeID string) {
	delete(fs.dead, nodeID)
	fs.epoch++
}

// DecommissionNode marks a node as decommissioning, mirroring HDFS graceful
// decommission: it receives no new replicas and its existing replicas no
// longer count toward the replication factor — so Rereplicate evacuates its
// blocks — but it keeps serving reads until it actually departs. Call
// Rereplicate after this to start the evacuation copies.
func (fs *FS) DecommissionNode(nodeID string) {
	fs.excluded[nodeID] = true
	fs.epoch++
}

// ForgetNode erases a departed node from the namespace: every replica it
// held is dropped from block metadata and its dead-marker is cleared. Use it
// when a node leaves for good (spot reclaim, decommission complete) — unlike
// ReviveNode, a node re-added after ForgetNode is a blank machine, so a
// same-ID rejoin does not resurrect data that physically went away with the
// old instance.
func (fs *FS) ForgetNode(nodeID string) {
	for _, f := range fs.files {
		for i := range f.Blocks {
			reps := f.Blocks[i].Replicas
			kept := reps[:0]
			for _, r := range reps {
				if r != nodeID {
					kept = append(kept, r)
				}
			}
			f.Blocks[i].Replicas = kept
		}
	}
	delete(fs.dead, nodeID)
	delete(fs.excluded, nodeID)
	fs.epoch++
}

// Readable reports whether every block of the file has at least one live
// replica (external files are always readable).
func (fs *FS) Readable(path string) bool {
	f, ok := fs.files[path]
	if !ok {
		return false
	}
	if f.External {
		return true
	}
	for _, b := range f.Blocks {
		if fs.liveReplica(b, "") == "" {
			return false
		}
	}
	return true
}

// liveReplica returns a live replica node for the block, preferring the
// given node if it holds one; "" if none is live.
func (fs *FS) liveReplica(b Block, prefer string) string {
	for _, r := range b.Replicas {
		if r == prefer && !fs.dead[r] {
			return r
		}
	}
	for _, r := range b.Replicas {
		if !fs.dead[r] {
			return r
		}
	}
	return ""
}

// LocalMB returns how many of the file's megabytes have a live replica on
// the given node. External files are never local.
func (fs *FS) LocalMB(path, nodeID string) float64 {
	f, ok := fs.files[path]
	if !ok || f.External || fs.dead[nodeID] {
		return 0
	}
	var local float64
	for _, b := range f.Blocks {
		for _, r := range b.Replicas {
			if r == nodeID {
				local += b.SizeMB
				break
			}
		}
	}
	return local
}

// LocalFraction returns locally available MB / total MB over a set of
// paths from the perspective of one node — the quantity Hi-WAY's
// data-aware scheduler maximizes. Missing files contribute zero local
// bytes; an empty or zero-size input set yields 0.
func (fs *FS) LocalFraction(paths []string, nodeID string) float64 {
	var local, total float64
	for _, p := range paths {
		if f, ok := fs.files[p]; ok {
			total += f.SizeMB
			local += fs.LocalMB(p, nodeID)
		}
	}
	if total <= 0 {
		return 0
	}
	return local / total
}

// TotalMB sums sizes of the given paths (missing files count zero).
func (fs *FS) TotalMB(paths []string) float64 {
	var total float64
	for _, p := range paths {
		if f, ok := fs.files[p]; ok {
			total += f.SizeMB
		}
	}
	return total
}

// UnderReplicated returns the number of blocks whose live replica count is
// below the effective replication target.
func (fs *FS) UnderReplicated() int {
	target := fs.replicationTarget()
	n := 0
	for _, f := range fs.files {
		if f.External {
			continue
		}
		for _, b := range f.Blocks {
			if fs.liveReplicaCount(b) < target {
				n++
			}
		}
	}
	return n
}

func (fs *FS) replicationTarget() int {
	target := fs.cfg.Replication
	if live := len(fs.liveNodes()); target > live {
		target = live
	}
	return target
}

func (fs *FS) liveReplicaCount(b Block) int {
	n := 0
	for _, r := range b.Replicas {
		if !fs.dead[r] {
			n++
		}
	}
	return n
}

// Rereplicate restores the replication factor of under-replicated blocks —
// the NameNode's recovery behaviour after a datanode loss. Each missing
// replica is copied from a surviving holder to a fresh live node over the
// switch; done(copies) fires when all transfers finished (copies may be 0).
// Blocks with no live replica at all are lost and skipped.
func (fs *FS) Rereplicate(done func(copies int)) {
	target := fs.replicationTarget()
	type job struct {
		b      *Block
		src    string
		dst    string
		sizeMB float64
	}
	var jobs []job
	paths := fs.Files()
	for _, p := range paths {
		f := fs.files[p]
		if f.External {
			continue
		}
		for i := range f.Blocks {
			b := &f.Blocks[i]
			src := fs.liveReplica(*b, "")
			if src == "" {
				continue // block lost
			}
			// Decommissioning (excluded) holders still serve reads but no
			// longer count toward the factor, so their blocks evacuate.
			holders, counted := map[string]bool{}, 0
			for _, r := range b.Replicas {
				if !fs.dead[r] {
					holders[r] = true
					if !fs.excluded[r] {
						counted++
					}
				}
			}
			// Candidates: live datanodes not yet holding the block.
			var cands []string
			for _, id := range fs.liveNodes() {
				if !holders[id] {
					cands = append(cands, id)
				}
			}
			fs.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
			for counted < target && len(cands) > 0 {
				dst := cands[0]
				cands = cands[1:]
				holders[dst] = true
				counted++
				jobs = append(jobs, job{b: b, src: src, dst: dst, sizeMB: b.SizeMB})
			}
		}
	}
	if len(jobs) == 0 {
		fs.cluster.Engine.Schedule(0, func() { done(0) })
		return
	}
	pending := len(jobs)
	for _, j := range jobs {
		j := j
		fs.cluster.Transfer(fs.cluster.Node(j.src), fs.cluster.Node(j.dst), j.sizeMB, func() {
			// The destination may have departed (spot reclaim, decommission)
			// while the copy was in flight; registering it as a replica
			// holder would resurrect a machine that no longer exists.
			if fs.cluster.Node(j.dst) != nil && !fs.dead[j.dst] {
				j.b.Replicas = append(j.b.Replicas, j.dst)
				fs.epoch++
			}
			pending--
			if pending == 0 {
				done(len(jobs))
			}
		})
	}
}

// ReadPlan describes the I/O needed to read a file set from a node.
type ReadPlan struct {
	LocalMB    float64
	RemoteMB   float64 // read from other live datanodes through the switch
	ExternalMB float64 // fetched from the external source over the NIC
	Missing    []string
	Broken     []string // files with a block that has no live replica
}

// Plan computes the read plan for paths from nodeID.
func (fs *FS) Plan(paths []string, nodeID string) ReadPlan {
	var plan ReadPlan
	for _, p := range paths {
		f, ok := fs.files[p]
		if !ok {
			plan.Missing = append(plan.Missing, p)
			continue
		}
		if f.External {
			plan.ExternalMB += f.SizeMB
			continue
		}
		for _, b := range f.Blocks {
			src := fs.liveReplica(b, nodeID)
			switch src {
			case "":
				plan.Broken = append(plan.Broken, p)
			case nodeID:
				plan.LocalMB += b.SizeMB
			default:
				plan.RemoteMB += b.SizeMB
			}
		}
	}
	return plan
}

// SetReadFault installs (or clears, with nil) a hook consulted at the start
// of every Read. A non-nil return fails the read with that error after an
// instant, modeling transient datanode flakiness for fault injection.
func (fs *FS) SetReadFault(hook func(nodeID string, paths []string) error) {
	fs.readFault = hook
}

// Read simulates reading the file set onto the node: local bytes via the
// node's disk, remote bytes via the switch from replica holders, external
// bytes via the NIC. done(err) fires once everything has arrived.
func (fs *FS) Read(nodeID string, paths []string, done func(error)) {
	if fs.readFault != nil {
		if err := fs.readFault(nodeID, paths); err != nil {
			fs.cluster.Engine.Schedule(0, func() { done(err) })
			return
		}
	}
	node := fs.cluster.Node(nodeID)
	if node == nil {
		fs.cluster.Engine.Schedule(0, func() { done(fmt.Errorf("hdfs: unknown node %q", nodeID)) })
		return
	}
	// Gather per-source remote bytes so each (src→dst) pair is one flow.
	remote := make(map[string]float64)
	var localMB, externalMB float64
	var firstErr error
	for _, p := range paths {
		f, ok := fs.files[p]
		if !ok {
			firstErr = fmt.Errorf("hdfs: file not found: %s", p)
			break
		}
		if f.External {
			externalMB += f.SizeMB
			continue
		}
		for _, b := range f.Blocks {
			src := fs.liveReplica(b, nodeID)
			switch src {
			case "":
				firstErr = fmt.Errorf("hdfs: no live replica for a block of %s", p)
			case nodeID:
				localMB += b.SizeMB
			default:
				remote[src] += b.SizeMB
			}
		}
		if firstErr != nil {
			break
		}
	}
	if firstErr != nil {
		err := firstErr
		fs.cluster.Engine.Schedule(0, func() { done(err) })
		return
	}
	pending := 0
	finish := func() {
		pending--
		if pending == 0 {
			done(nil)
		}
	}
	if localMB > 0 {
		pending++
	}
	if externalMB > 0 {
		pending++
	}
	pending += len(remote)
	if pending == 0 {
		fs.cluster.Engine.Schedule(0, func() { done(nil) })
		return
	}
	if localMB > 0 {
		fs.cluster.ReadLocal(node, localMB, finish)
	}
	if externalMB > 0 {
		fs.cluster.FetchExternal(node, externalMB, finish)
	}
	// Deterministic iteration order over sources.
	srcs := make([]string, 0, len(remote))
	for s := range remote {
		srcs = append(srcs, s)
	}
	sort.Strings(srcs)
	for _, s := range srcs {
		fs.cluster.Transfer(fs.cluster.Node(s), node, remote[s], finish)
	}
}

// Write simulates creating a file of sizeMB from the node: a local disk
// write plus pipelined replication of (replication-1) copies through the
// switch. Metadata is registered when the write completes.
func (fs *FS) Write(nodeID, path string, sizeMB float64, done func(error)) {
	node := fs.cluster.Node(nodeID)
	if node == nil {
		fs.cluster.Engine.Schedule(0, func() { done(fmt.Errorf("hdfs: unknown node %q", nodeID)) })
		return
	}
	if sizeMB < 0 {
		fs.cluster.Engine.Schedule(0, func() { done(fmt.Errorf("hdfs: negative size for %q", path)) })
		return
	}
	// Lay the file out now so the simulated replication traffic matches
	// the metadata registered on completion.
	f, err := fs.buildFile(path, sizeMB, nodeID)
	if err != nil {
		fs.cluster.Engine.Schedule(0, func() { done(err) })
		return
	}
	register := func() {
		fs.register(path, f)
		done(nil)
	}
	if sizeMB == 0 {
		fs.cluster.Engine.Schedule(0, register)
		return
	}
	// Sum per-peer replica bytes over all blocks.
	perPeer := make(map[string]float64)
	for _, b := range f.Blocks {
		for _, r := range b.Replicas {
			if r != nodeID {
				perPeer[r] += b.SizeMB
			}
		}
	}
	pending := 1 + len(perPeer)
	finish := func() {
		pending--
		if pending == 0 {
			register()
		}
	}
	fs.cluster.WriteLocal(node, sizeMB, finish)
	peers := make([]string, 0, len(perPeer))
	for p := range perPeer {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	for _, p := range peers {
		fs.cluster.Transfer(node, fs.cluster.Node(p), perPeer[p], finish)
	}
}
