package cloudman

import (
	"fmt"
	"math"
	"testing"

	"hiway/internal/cluster"
	"hiway/internal/sim"
	"hiway/internal/wf"
)

func newCluster(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	eng := sim.NewEngine()
	c, err := cluster.Uniform(eng, cluster.Config{SwitchMBps: 10000},
		nodes, cluster.C32XLarge())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func pipelineDriver(lanes int) wf.StaticDriver {
	var tasks []*wf.Task
	for i := 0; i < lanes; i++ {
		in := fmt.Sprintf("/in/lane%d", i)
		a := wf.NewTask("tophat", []string{in}, []wf.FileInfo{{Path: fmt.Sprintf("/mid/%d", i), SizeMB: 500}})
		a.CPUSeconds = 100
		a.Threads = 8
		b := wf.NewTask("cufflinks", []string{fmt.Sprintf("/mid/%d", i)}, []wf.FileInfo{{Path: fmt.Sprintf("/out/%d", i), SizeMB: 50}})
		b.CPUSeconds = 50
		tasks = append(tasks, a, b)
	}
	sb := &wf.StaticBase{WFName: "rnaseq"}
	sb.Build = func() ([]*wf.Task, []string, []wf.Edge, error) {
		var ins []string
		for i := 0; i < lanes; i++ {
			ins = append(ins, fmt.Sprintf("/in/lane%d", i))
		}
		return tasks, ins, nil, nil
	}
	return sb
}

func inputSizes(lanes int) map[string]float64 {
	m := map[string]float64{}
	for i := 0; i < lanes; i++ {
		m[fmt.Sprintf("/in/lane%d", i)] = 1000
	}
	return m
}

func TestCloudManRunsPipeline(t *testing.T) {
	cl := newCluster(t, 2)
	rep, err := Run(cl, pipelineDriver(2), Config{InputSizesMB: inputSizes(2)})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded || len(rep.Results) != 4 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.MakespanSec <= 0 {
		t.Fatal("no time passed?")
	}
}

func TestCloudManRejectsLargeClusters(t *testing.T) {
	cl := newCluster(t, 21)
	if _, err := Run(cl, pipelineDriver(1), Config{}); err == nil {
		t.Fatal("21 nodes must exceed the CloudMan limit")
	}
}

func TestSharedVolumeContention(t *testing.T) {
	// Same workload, same node count; slower volume → slower run.
	run := func(volMBps float64) float64 {
		cl := newCluster(t, 4)
		rep, err := Run(cl, pipelineDriver(4), Config{VolumeMBps: volMBps, InputSizesMB: inputSizes(4)})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MakespanSec
	}
	slow, fast := run(50), run(2000)
	if slow <= fast {
		t.Fatalf("volume contention should hurt: slow=%.1f fast=%.1f", slow, fast)
	}
}

func TestSingleTaskPerNodeSerializes(t *testing.T) {
	// 4 independent CPU tasks on 1 node with 1 slot: strictly serial.
	var tasks []*wf.Task
	for i := 0; i < 4; i++ {
		w := wf.NewTask("w", nil, []wf.FileInfo{{Path: fmt.Sprintf("/o/%d", i), SizeMB: 0.1}})
		w.CPUSeconds = 10
		tasks = append(tasks, w)
	}
	sb := &wf.StaticBase{WFName: "serial"}
	sb.Build = func() ([]*wf.Task, []string, []wf.Edge, error) { return tasks, nil, nil, nil }
	cl := newCluster(t, 1)
	rep, err := Run(cl, sb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// c3.2xlarge has factor 1.15: each 10 core-second task takes 10/1.15s
	// serially.
	want := 4 * 10 / 1.15
	if math.Abs(rep.MakespanSec-want) > 1 {
		t.Fatalf("makespan = %.2f, want ~%.2f (serialized)", rep.MakespanSec, want)
	}
}

func TestFailedTaskAborts(t *testing.T) {
	cl := newCluster(t, 2)
	cfg := Config{
		InputSizesMB: inputSizes(1),
		Behavior: func(task *wf.Task) wf.Outcome {
			out := wf.DefaultOutcome(task)
			out.Error = "tool crashed"
			return out
		},
	}
	rep, err := Run(cl, pipelineDriver(1), cfg)
	if err == nil || rep.Succeeded {
		t.Fatalf("expected failure: %+v", rep)
	}
}
