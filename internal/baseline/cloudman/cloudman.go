// Package cloudman models Galaxy CloudMan — the comparator of the paper's
// RNA-seq experiment (§4.2, Fig. 8): Galaxy workflows executed by a
// Slurm-style FCFS batch scheduler on an EC2 cluster whose storage is a
// single Amazon EBS volume shared over the network by all nodes.
//
// The decisive difference from Hi-WAY (per the paper's analysis) is
// storage: every byte a task reads or writes crosses the shared volume,
// while Hi-WAY uses the workers' transient local SSDs through HDFS. Like
// CloudMan, the engine refuses clusters beyond 20 nodes.
package cloudman

import (
	"fmt"
	"sort"

	"hiway/internal/cluster"
	"hiway/internal/sim"
	"hiway/internal/wf"
)

// MaxNodes is CloudMan's documented automated-setup limit (§4.2).
const MaxNodes = 20

// Config tunes the engine.
type Config struct {
	// VolumeMBps is the shared EBS volume's aggregate throughput.
	// Default 120 (a ~1 Gb/s-attached volume).
	VolumeMBps float64
	// TasksPerNode bounds concurrent tasks per node. The paper configured
	// Slurm to run a single task per worker to avoid OOM; default 1.
	TasksPerNode int
	// InputSizesMB supplies the sizes of the workflow's initial inputs.
	InputSizesMB map[string]float64
	// Behavior computes simulated task outcomes (default: declared).
	Behavior wf.Behavior
}

// Report summarizes a CloudMan run.
type Report struct {
	WorkflowName string
	MakespanSec  float64
	Succeeded    bool
	Err          error
	Results      []*wf.TaskResult
}

// Run executes the static workflow on the cluster.
func Run(cl *cluster.Cluster, driver wf.StaticDriver, cfg Config) (*Report, error) {
	if cl.Size() > MaxNodes {
		return nil, fmt.Errorf("cloudman: cluster of %d nodes exceeds the %d-node setup limit", cl.Size(), MaxNodes)
	}
	if cfg.VolumeMBps <= 0 {
		cfg.VolumeMBps = 120
	}
	if cfg.TasksPerNode <= 0 {
		cfg.TasksPerNode = 1
	}
	if cfg.Behavior == nil {
		cfg.Behavior = wf.DefaultOutcome
	}
	ready, err := driver.Parse()
	if err != nil {
		return nil, fmt.Errorf("cloudman: parsing: %w", err)
	}

	e := &engine{
		cl:     cl,
		cfg:    cfg,
		driver: driver,
		volume: sim.NewSharedResource(cl.Engine, "ebs-volume", cfg.VolumeMBps),
		slots:  make(map[string]int, cl.Size()),
		sizes:  make(map[string]float64, len(cfg.InputSizesMB)),
		queue:  append([]*wf.Task(nil), ready...),
		start:  cl.Engine.Now(),
	}
	for _, n := range cl.Nodes() {
		e.slots[n.ID] = cfg.TasksPerNode
	}
	for p, s := range cfg.InputSizesMB {
		e.sizes[p] = s
	}
	e.dispatch()
	cl.Engine.Run()
	if e.report == nil {
		return nil, fmt.Errorf("cloudman: workflow %s stalled: queue=%d running=%d", driver.Name(), len(e.queue), e.running)
	}
	if e.report.Err != nil {
		return e.report, e.report.Err
	}
	return e.report, nil
}

type engine struct {
	cl     *cluster.Cluster
	cfg    Config
	driver wf.StaticDriver
	volume *sim.SharedResource

	slots   map[string]int
	sizes   map[string]float64 // path → MB on the shared volume
	queue   []*wf.Task
	running int
	results []*wf.TaskResult
	start   float64
	report  *Report
}

// dispatch assigns queued tasks FCFS to nodes with a free Slurm slot.
func (e *engine) dispatch() {
	if e.report != nil {
		return
	}
	for len(e.queue) > 0 {
		node := e.freeNode()
		if node == nil {
			return
		}
		t := e.queue[0]
		e.queue = e.queue[1:]
		e.slots[node.ID]--
		e.run(t, node)
	}
}

// freeNode returns the node with a free slot (most free slots first).
func (e *engine) freeNode() *cluster.Node {
	ids := make([]string, 0, len(e.slots))
	for id := range e.slots {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var best string
	bestFree := 0
	for _, id := range ids {
		if e.slots[id] > bestFree {
			best, bestFree = id, e.slots[id]
		}
	}
	if best == "" {
		return nil
	}
	return e.cl.Node(best)
}

// run executes a task: all file traffic crosses the shared volume, capped
// by the node's NIC.
func (e *engine) run(t *wf.Task, node *cluster.Node) {
	eng := e.cl.Engine
	e.running++
	res := &wf.TaskResult{Task: t, Node: node.ID, Start: eng.Now()}

	var inMB float64
	for _, in := range t.Inputs {
		inMB += e.sizes[in]
	}
	stageInStart := eng.Now()
	e.volume.Submit(inMB, node.Spec.NetMBps, func() {
		if e.report != nil {
			return
		}
		res.StageInSec = eng.Now() - stageInStart
		execStart := eng.Now()
		e.cl.Compute(node, t.CPUSeconds, t.Threads, func() {
			if e.report != nil {
				return
			}
			res.ExecSec = eng.Now() - execStart
			outcome := e.cfg.Behavior(t)
			res.ExitCode = outcome.ExitCode
			res.Error = outcome.Error
			res.Outputs = outcome.Outputs
			if !res.Succeeded() {
				e.finish(fmt.Errorf("cloudman: task %s failed (exit %d): %s", t, res.ExitCode, res.Error))
				return
			}
			var outMB float64
			for _, fi := range res.OutputFiles() {
				outMB += fi.SizeMB
				e.sizes[fi.Path] = fi.SizeMB
			}
			stageOutStart := eng.Now()
			e.volume.Submit(outMB, node.Spec.NetMBps, func() {
				if e.report != nil {
					return
				}
				res.StageOutSec = eng.Now() - stageOutStart
				res.End = eng.Now()
				e.onDone(t, node, res)
			})
		})
	})
}

func (e *engine) onDone(t *wf.Task, node *cluster.Node, res *wf.TaskResult) {
	e.running--
	e.slots[node.ID]++
	e.results = append(e.results, res)
	next, err := e.driver.OnTaskComplete(res)
	if err != nil {
		e.finish(err)
		return
	}
	e.queue = append(e.queue, next...)
	if e.driver.Done() {
		e.finish(nil)
		return
	}
	e.dispatch()
	if e.report == nil && e.running == 0 && len(e.queue) == 0 {
		e.finish(fmt.Errorf("cloudman: workflow %s stalled", e.driver.Name()))
	}
}

func (e *engine) finish(err error) {
	if e.report != nil {
		return
	}
	e.report = &Report{
		WorkflowName: e.driver.Name(),
		MakespanSec:  e.cl.Engine.Now() - e.start,
		Succeeded:    err == nil,
		Err:          err,
		Results:      e.results,
	}
}
