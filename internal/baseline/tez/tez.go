// Package tez implements a Tez-like DAG execution engine on the simulated
// YARN substrate — the comparator of the paper's first experiment (§4.1,
// Fig. 4). Like Apache Tez, it runs a DAG of tasks inside a pool of
// long-lived, reused containers; unlike Hi-WAY, task-to-container
// assignment is locality-oblivious FIFO, so input data is fetched from
// wherever its HDFS replicas happen to live.
package tez

import (
	"fmt"

	"hiway/internal/core"
	"hiway/internal/wf"
	"hiway/internal/yarn"
)

// Config tunes the engine.
type Config struct {
	// Containers is the size of the reused container pool (the x-axis of
	// Fig. 4). Default: one per cluster node.
	Containers      int
	ContainerVCores int // default 1
	ContainerMemMB  int // default 1024
	// Behavior computes simulated task outcomes (default: declared).
	Behavior wf.Behavior
}

// Run executes the static workflow to completion and reports like the
// Hi-WAY AM, so experiments can compare directly.
func Run(env core.Env, driver wf.StaticDriver, cfg Config) (*core.Report, error) {
	if cfg.Containers <= 0 {
		cfg.Containers = env.Cluster.Size()
	}
	if cfg.ContainerVCores <= 0 {
		cfg.ContainerVCores = 1
	}
	if cfg.ContainerMemMB <= 0 {
		cfg.ContainerMemMB = 1024
	}
	if cfg.Behavior == nil {
		cfg.Behavior = wf.DefaultOutcome
	}

	ready, err := driver.Parse()
	if err != nil {
		return nil, fmt.Errorf("tez: parsing: %w", err)
	}
	app, err := env.RM.SubmitApplication("tez-"+driver.Name(), "")
	if err != nil {
		return nil, fmt.Errorf("tez: submitting AM: %w", err)
	}

	eng := env.Cluster.Engine
	e := &engine{
		env: env, cfg: cfg, driver: driver, app: app,
		queue: append([]*wf.Task(nil), ready...),
		start: eng.Now(),
	}
	// Acquire the long-lived container pool once; each container becomes
	// a worker that repeatedly pulls tasks (Tez's container reuse).
	res := yarn.Resource{VCores: cfg.ContainerVCores, MemMB: cfg.ContainerMemMB}
	for i := 0; i < cfg.Containers; i++ {
		app.Request(yarn.Request{Resource: res}, func(c *yarn.Container) {
			e.pool = append(e.pool, c)
			e.next(c)
		})
	}
	eng.Run()
	if e.report == nil {
		return nil, fmt.Errorf("tez: workflow %s stalled: queue=%d running=%d done=%v",
			driver.Name(), len(e.queue), e.running, driver.Done())
	}
	if e.report.Err != nil {
		return e.report, e.report.Err
	}
	return e.report, nil
}

type engine struct {
	env    core.Env
	cfg    Config
	driver wf.StaticDriver
	app    *yarn.Application

	queue   []*wf.Task
	idle    []*yarn.Container
	pool    []*yarn.Container
	running int
	results []*wf.TaskResult
	start   float64
	report  *core.Report
}

// next assigns the container its next task, or parks it.
func (e *engine) next(c *yarn.Container) {
	if e.report != nil {
		return
	}
	if len(e.queue) == 0 {
		e.idle = append(e.idle, c)
		return
	}
	t := e.queue[0]
	e.queue = e.queue[1:]
	e.run(t, c)
}

// wake dispatches parked containers onto newly ready tasks.
func (e *engine) wake() {
	for len(e.idle) > 0 && len(e.queue) > 0 {
		c := e.idle[0]
		e.idle = e.idle[1:]
		t := e.queue[0]
		e.queue = e.queue[1:]
		e.run(t, c)
	}
}

// run executes one task inside the (reused) container: stage-in from HDFS,
// compute, stage-out to HDFS.
func (e *engine) run(t *wf.Task, c *yarn.Container) {
	eng := e.env.Cluster.Engine
	node := e.env.Cluster.Node(c.NodeID)
	e.running++
	res := &wf.TaskResult{Task: t, Node: c.NodeID, Start: eng.Now()}

	stageInStart := eng.Now()
	e.env.FS.Read(c.NodeID, t.Inputs, func(err error) {
		if e.report != nil {
			return
		}
		if err != nil {
			e.finish(fmt.Errorf("tez: task %s stage-in: %w", t, err))
			return
		}
		res.StageInSec = eng.Now() - stageInStart
		threads := t.Threads
		if threads > c.Resource.VCores {
			threads = c.Resource.VCores
		}
		execStart := eng.Now()
		e.env.Cluster.Compute(node, t.CPUSeconds, threads, func() {
			if e.report != nil {
				return
			}
			res.ExecSec = eng.Now() - execStart
			outcome := e.cfg.Behavior(t)
			res.ExitCode = outcome.ExitCode
			res.Error = outcome.Error
			res.Outputs = outcome.Outputs
			if !res.Succeeded() {
				e.finish(fmt.Errorf("tez: task %s failed (exit %d): %s", t, res.ExitCode, res.Error))
				return
			}
			files := res.OutputFiles()
			pending := len(files)
			stageOutStart := eng.Now()
			complete := func() {
				res.StageOutSec = eng.Now() - stageOutStart
				res.End = eng.Now()
				e.onDone(t, c, res)
			}
			if pending == 0 {
				complete()
				return
			}
			for _, fi := range files {
				e.env.FS.Write(c.NodeID, fi.Path, fi.SizeMB, func(err error) {
					if e.report != nil {
						return
					}
					if err != nil {
						e.finish(fmt.Errorf("tez: task %s stage-out: %w", t, err))
						return
					}
					pending--
					if pending == 0 {
						complete()
					}
				})
			}
		})
	})
}

func (e *engine) onDone(t *wf.Task, c *yarn.Container, res *wf.TaskResult) {
	e.running--
	e.results = append(e.results, res)
	next, err := e.driver.OnTaskComplete(res)
	if err != nil {
		e.finish(err)
		return
	}
	e.queue = append(e.queue, next...)
	if e.driver.Done() {
		e.finish(nil)
		return
	}
	e.next(c)
	e.wake()
	if e.report == nil && e.running == 0 && len(e.queue) == 0 && !e.driver.Done() {
		e.finish(fmt.Errorf("tez: workflow %s stalled", e.driver.Name()))
	}
}

func (e *engine) finish(err error) {
	if e.report != nil {
		return
	}
	eng := e.env.Cluster.Engine
	e.report = &core.Report{
		WorkflowID:   "tez-" + e.driver.Name(),
		WorkflowName: e.driver.Name(),
		Scheduler:    "tez-fifo",
		Start:        e.start,
		End:          eng.Now(),
		MakespanSec:  eng.Now() - e.start,
		Succeeded:    err == nil,
		Err:          err,
		Results:      e.results,
		Containers:   int64(len(e.pool)),
	}
	if err == nil {
		e.report.Outputs = e.driver.Outputs()
	}
	for _, c := range e.pool {
		e.app.Release(c)
	}
	e.app.Finish()
}
