package tez

import (
	"fmt"
	"testing"

	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/sim"
	"hiway/internal/wf"
	"hiway/internal/yarn"
)

func newEnv(t *testing.T, nodes int, switchMBps float64) (core.Env, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	spec := cluster.NodeSpec{VCores: 4, MemMB: 8192, CPUFactor: 1, DiskMBps: 200, NetMBps: 200}
	c, err := cluster.Uniform(eng, cluster.Config{SwitchMBps: switchMBps}, nodes, spec)
	if err != nil {
		t.Fatal(err)
	}
	fs := hdfs.New(c, hdfs.Config{BlockSizeMB: 64, Replication: 2}, 11)
	rm := yarn.NewResourceManager(eng, c, yarn.Config{})
	return core.Env{Cluster: c, FS: fs, RM: rm}, eng
}

func fanDriver(n int, inputs []string) wf.StaticDriver {
	var tasks []*wf.Task
	for i := 0; i < n; i++ {
		w := wf.NewTask("work", inputs, []wf.FileInfo{{Path: fmt.Sprintf("/o/%d", i), SizeMB: 1}})
		w.CPUSeconds = 10
		tasks = append(tasks, w)
	}
	sb := &wf.StaticBase{WFName: "fan"}
	sb.Build = func() ([]*wf.Task, []string, []wf.Edge, error) { return tasks, inputs, nil, nil }
	return sb
}

func TestTezRunsDAGToCompletion(t *testing.T) {
	env, _ := newEnv(t, 3, 1000)
	env.FS.Put("/in/x", 10, "")
	rep, err := Run(env, fanDriver(6, []string{"/in/x"}), Config{Containers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded || len(rep.Results) != 6 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Containers != 3 {
		t.Fatalf("pool = %d", rep.Containers)
	}
	if !env.FS.Exists("/o/5") {
		t.Fatal("outputs not staged to HDFS")
	}
}

func TestTezContainerReuse(t *testing.T) {
	env, _ := newEnv(t, 2, 1000)
	env.FS.Put("/in/x", 1, "")
	rep, err := Run(env, fanDriver(8, []string{"/in/x"}), Config{Containers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Only 2 containers were ever allocated for 8 tasks (plus the AM).
	if env.RM.Allocated != 3 {
		t.Fatalf("allocated = %d, want 3 (reuse!)", env.RM.Allocated)
	}
	_ = rep
}

func TestTezMoreContainersFaster(t *testing.T) {
	run := func(containers int) float64 {
		env, _ := newEnv(t, 4, 10000)
		env.FS.Put("/in/x", 1, "")
		rep, err := Run(env, fanDriver(16, []string{"/in/x"}), Config{Containers: containers})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MakespanSec
	}
	if t4, t12 := run(4), run(12); t12 >= t4 {
		t.Fatalf("12 containers (%.1fs) should beat 4 (%.1fs)", t12, t4)
	}
}

func TestTezFailedTaskAborts(t *testing.T) {
	env, _ := newEnv(t, 2, 1000)
	env.FS.Put("/in/x", 1, "")
	cfg := Config{Behavior: func(task *wf.Task) wf.Outcome {
		out := wf.DefaultOutcome(task)
		out.ExitCode = 1
		return out
	}}
	rep, err := Run(env, fanDriver(2, []string{"/in/x"}), cfg)
	if err == nil || rep.Succeeded {
		t.Fatalf("expected failure: %+v", rep)
	}
}

func TestTezParseErrorPropagates(t *testing.T) {
	env, _ := newEnv(t, 2, 1000)
	sb := &wf.StaticBase{WFName: "bad", Build: func() ([]*wf.Task, []string, []wf.Edge, error) {
		return nil, nil, nil, fmt.Errorf("bad workflow")
	}}
	if _, err := Run(env, sb, Config{}); err == nil {
		t.Fatal("parse error must propagate")
	}
}
