package provenance

import (
	"fmt"
	"sort"
	"strings"
)

// This file provides the ad-hoc query and aggregation layer the paper
// motivates for database-backed provenance (§3.5: "the usage of a database
// ... brings the added benefit of facilitating manual queries and
// aggregation"). Queries run over any Store.

// TaskSummary aggregates the executions of one task signature.
type TaskSummary struct {
	Signature   string
	Count       int
	MeanSec     float64
	MinSec      float64
	MaxSec      float64
	TotalSec    float64
	NodesSeen   int
	FailedCount int
}

// SummarizeTasks aggregates all task-end events by signature, sorted by
// total time descending — "where did the hours go?".
func SummarizeTasks(store Store) ([]TaskSummary, error) {
	events, err := store.Events()
	if err != nil {
		return nil, err
	}
	type acc struct {
		TaskSummary
		nodes map[string]bool
	}
	bySig := map[string]*acc{}
	for _, ev := range events {
		if ev.Type != TaskEnd {
			continue
		}
		a := bySig[ev.Signature]
		if a == nil {
			a = &acc{TaskSummary: TaskSummary{Signature: ev.Signature, MinSec: ev.DurationSec}, nodes: map[string]bool{}}
			bySig[ev.Signature] = a
		}
		a.Count++
		a.TotalSec += ev.DurationSec
		if ev.DurationSec < a.MinSec {
			a.MinSec = ev.DurationSec
		}
		if ev.DurationSec > a.MaxSec {
			a.MaxSec = ev.DurationSec
		}
		if ev.Node != "" {
			a.nodes[ev.Node] = true
		}
		if ev.ExitCode != 0 || ev.Error != "" {
			a.FailedCount++
		}
	}
	out := make([]TaskSummary, 0, len(bySig))
	for _, a := range bySig {
		a.MeanSec = a.TotalSec / float64(a.Count)
		a.NodesSeen = len(a.nodes)
		out = append(out, a.TaskSummary)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalSec != out[j].TotalSec {
			return out[i].TotalSec > out[j].TotalSec
		}
		return out[i].Signature < out[j].Signature
	})
	return out, nil
}

// WorkflowSummary aggregates one workflow run.
type WorkflowSummary struct {
	WorkflowID   string
	WorkflowName string
	MakespanSec  float64
	Tasks        int
	Succeeded    bool
}

// SummarizeWorkflows lists all recorded workflow runs in trace order.
func SummarizeWorkflows(store Store) ([]WorkflowSummary, error) {
	events, err := store.Events()
	if err != nil {
		return nil, err
	}
	order := []string{}
	byID := map[string]*WorkflowSummary{}
	for _, ev := range events {
		switch ev.Type {
		case WorkflowStart:
			if _, ok := byID[ev.WorkflowID]; !ok {
				byID[ev.WorkflowID] = &WorkflowSummary{WorkflowID: ev.WorkflowID, WorkflowName: ev.WorkflowName}
				order = append(order, ev.WorkflowID)
			}
		case TaskEnd:
			if w := byID[ev.WorkflowID]; w != nil {
				w.Tasks++
			}
		case WorkflowEnd:
			if w := byID[ev.WorkflowID]; w != nil {
				w.MakespanSec = ev.DurationSec
				w.Succeeded = ev.Succeeded
			}
		}
	}
	out := make([]WorkflowSummary, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out, nil
}

// NodeUsage aggregates busy time per compute node.
type NodeUsage struct {
	Node     string
	Tasks    int
	BusySec  float64
	MeanSec  float64
	Failures int
}

// SummarizeNodes aggregates task-end events per node, sorted by busy time
// descending — the skew view behind adaptive scheduling decisions.
func SummarizeNodes(store Store) ([]NodeUsage, error) {
	events, err := store.Events()
	if err != nil {
		return nil, err
	}
	byNode := map[string]*NodeUsage{}
	for _, ev := range events {
		if ev.Type != TaskEnd || ev.Node == "" {
			continue
		}
		u := byNode[ev.Node]
		if u == nil {
			u = &NodeUsage{Node: ev.Node}
			byNode[ev.Node] = u
		}
		u.Tasks++
		u.BusySec += ev.DurationSec
		if ev.ExitCode != 0 || ev.Error != "" {
			u.Failures++
		}
	}
	out := make([]NodeUsage, 0, len(byNode))
	for _, u := range byNode {
		u.MeanSec = u.BusySec / float64(u.Tasks)
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].BusySec != out[j].BusySec {
			return out[i].BusySec > out[j].BusySec
		}
		return out[i].Node < out[j].Node
	})
	return out, nil
}

// RenderTaskSummaries formats SummarizeTasks output as a text table.
func RenderTaskSummaries(sums []TaskSummary) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %6s %9s %9s %9s %10s %6s %6s\n",
		"signature", "count", "mean (s)", "min (s)", "max (s)", "total (s)", "nodes", "failed")
	for _, s := range sums {
		fmt.Fprintf(&sb, "%-16s %6d %9.2f %9.2f %9.2f %10.2f %6d %6d\n",
			s.Signature, s.Count, s.MeanSec, s.MinSec, s.MaxSec, s.TotalSec, s.NodesSeen, s.FailedCount)
	}
	return sb.String()
}
