package provenance

import (
	"strings"
	"testing"
)

func queryFixture(t *testing.T) Store {
	t.Helper()
	store := NewMemStore()
	events := []Event{
		{Type: WorkflowStart, WorkflowID: "w1", WorkflowName: "snv"},
		{Type: TaskEnd, WorkflowID: "w1", Signature: "align", Node: "n1", DurationSec: 100},
		{Type: TaskEnd, WorkflowID: "w1", Signature: "align", Node: "n2", DurationSec: 300},
		{Type: TaskEnd, WorkflowID: "w1", Signature: "call", Node: "n1", DurationSec: 50, ExitCode: 1},
		{Type: TaskEnd, WorkflowID: "w1", Signature: "call", Node: "n1", DurationSec: 60},
		{Type: WorkflowEnd, WorkflowID: "w1", DurationSec: 500, Succeeded: true},
		{Type: WorkflowStart, WorkflowID: "w2", WorkflowName: "snv"},
		{Type: TaskEnd, WorkflowID: "w2", Signature: "align", Node: "n1", DurationSec: 110},
		{Type: WorkflowEnd, WorkflowID: "w2", DurationSec: 130, Succeeded: false},
	}
	for _, ev := range events {
		if err := store.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

func TestSummarizeTasks(t *testing.T) {
	sums, err := SummarizeTasks(queryFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	// align has the larger total, so it sorts first.
	align := sums[0]
	if align.Signature != "align" || align.Count != 3 || align.TotalSec != 510 {
		t.Fatalf("align = %+v", align)
	}
	if align.MinSec != 100 || align.MaxSec != 300 || align.NodesSeen != 2 {
		t.Fatalf("align stats = %+v", align)
	}
	call := sums[1]
	if call.Count != 2 || call.FailedCount != 1 {
		t.Fatalf("call = %+v", call)
	}
	out := RenderTaskSummaries(sums)
	if !strings.Contains(out, "align") || !strings.Contains(out, "510.00") {
		t.Fatalf("render = %q", out)
	}
}

func TestSummarizeWorkflows(t *testing.T) {
	sums, err := SummarizeWorkflows(queryFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("workflows = %d", len(sums))
	}
	if sums[0].WorkflowID != "w1" || sums[0].Tasks != 4 || !sums[0].Succeeded || sums[0].MakespanSec != 500 {
		t.Fatalf("w1 = %+v", sums[0])
	}
	if sums[1].WorkflowID != "w2" || sums[1].Succeeded {
		t.Fatalf("w2 = %+v", sums[1])
	}
}

func TestSummarizeNodes(t *testing.T) {
	sums, err := SummarizeNodes(queryFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("nodes = %d", len(sums))
	}
	// n1: 100+50+60+110 = 320; n2: 300.
	if sums[0].Node != "n1" || sums[0].BusySec != 320 || sums[0].Tasks != 4 || sums[0].Failures != 1 {
		t.Fatalf("n1 = %+v", sums[0])
	}
	if sums[1].Node != "n2" || sums[1].BusySec != 300 {
		t.Fatalf("n2 = %+v", sums[1])
	}
}

func TestQueriesOnEmptyStore(t *testing.T) {
	store := NewMemStore()
	if sums, err := SummarizeTasks(store); err != nil || len(sums) != 0 {
		t.Fatalf("tasks: %v %v", sums, err)
	}
	if sums, err := SummarizeWorkflows(store); err != nil || len(sums) != 0 {
		t.Fatalf("workflows: %v %v", sums, err)
	}
	if sums, err := SummarizeNodes(store); err != nil || len(sums) != 0 {
		t.Fatalf("nodes: %v %v", sums, err)
	}
}
