package provenance

import (
	"path/filepath"
	"strings"
	"testing"

	"hiway/internal/provdb"
	"hiway/internal/wf"
)

func sampleResult(sig, node string, dur float64) *wf.TaskResult {
	task := wf.NewTask(sig, []string{"in.dat"}, []wf.FileInfo{{Path: "out.dat", SizeMB: 10}})
	task.CPUSeconds = 30
	task.Threads = 2
	task.MemMB = 1024
	task.Command = sig + " --run"
	return &wf.TaskResult{
		Task:       task,
		Node:       node,
		Start:      100,
		End:        100 + dur,
		StageInSec: 1, ExecSec: dur - 2, StageOutSec: 1,
		Outputs: map[string][]wf.FileInfo{"out": task.Declared["out"]},
	}
}

func TestManagerRecordsAndIndexes(t *testing.T) {
	m, err := NewManager(NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RecordWorkflowStart("wf1", "snv", 0); err != nil {
		t.Fatal(err)
	}
	res := sampleResult("bowtie2", "node-00", 120)
	if err := m.RecordTaskStart("wf1", "snv", res.Task, "node-00", 0, 100); err != nil {
		t.Fatal(err)
	}
	if err := m.RecordTaskEnd("wf1", "snv", res, map[string]float64{"in.dat": 5}); err != nil {
		t.Fatal(err)
	}
	if err := m.RecordWorkflowEnd("wf1", "snv", 250, 250, true); err != nil {
		t.Fatal(err)
	}

	if d, ok := m.LastRuntime("bowtie2", "node-00"); !ok || d != 120 {
		t.Fatalf("LastRuntime = %g %v", d, ok)
	}
	if _, ok := m.LastRuntime("bowtie2", "node-99"); ok {
		t.Fatal("unobserved node must report ok=false")
	}
	if _, ok := m.LastRuntime("ghost", "node-00"); ok {
		t.Fatal("unobserved signature must report ok=false")
	}
	if nodes := m.ObservedNodes("bowtie2"); len(nodes) != 1 || nodes[0] != "node-00" {
		t.Fatalf("nodes = %v", nodes)
	}
	if sigs := m.Signatures(); len(sigs) != 1 || sigs[0] != "bowtie2" {
		t.Fatalf("signatures = %v", sigs)
	}
	if s, ok := m.FileSizeMB("out.dat"); !ok || s != 10 {
		t.Fatalf("file size = %g %v", s, ok)
	}
	if s, ok := m.FileSizeMB("in.dat"); !ok || s != 5 {
		t.Fatalf("input size = %g %v", s, ok)
	}
	tasks, wfs := m.Counts()
	if tasks != 1 || wfs != 1 {
		t.Fatalf("counts = %d %d", tasks, wfs)
	}
	events, _ := m.Store().Events()
	if len(events) != 4 {
		t.Fatalf("stored %d events, want 4", len(events))
	}
}

func TestLatestObservationWins(t *testing.T) {
	m, _ := NewManager(NewMemStore())
	m.RecordTaskEnd("wf", "w", sampleResult("tool", "n1", 100), nil)
	m.RecordTaskEnd("wf", "w", sampleResult("tool", "n1", 50), nil)
	if d, _ := m.LastRuntime("tool", "n1"); d != 50 {
		t.Fatalf("latest runtime = %g, want 50 (the paper uses the latest observation)", d)
	}
}

func TestMeanRuntimeAcrossNodes(t *testing.T) {
	m, _ := NewManager(NewMemStore())
	if _, ok := m.MeanRuntime("tool"); ok {
		t.Fatal("mean of nothing must be not-ok")
	}
	m.RecordTaskEnd("wf", "w", sampleResult("tool", "n1", 100), nil)
	m.RecordTaskEnd("wf", "w", sampleResult("tool", "n2", 200), nil)
	if mean, ok := m.MeanRuntime("tool"); !ok || mean != 150 {
		t.Fatalf("mean = %g %v", mean, ok)
	}
}

func TestManagerLoadsPriorEvents(t *testing.T) {
	store := NewMemStore()
	m1, _ := NewManager(store)
	m1.RecordTaskEnd("wf1", "w", sampleResult("tool", "n1", 77), nil)
	if err := m1.Flush(); err != nil {
		t.Fatal(err)
	}
	// A second manager over the same store sees the earlier run — the
	// mechanism behind Fig. 9's consecutive executions.
	m2, err := NewManager(store)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := m2.LastRuntime("tool", "n1"); !ok || d != 77 {
		t.Fatalf("prior run not loaded: %g %v", d, ok)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewManager(fs)
	m.RecordWorkflowStart("wf1", "demo", 0)
	m.RecordTaskEnd("wf1", "demo", sampleResult("tool", "n1", 10), nil)
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := fs.Events()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Signature != "tool" {
		t.Fatalf("events = %+v", events)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(Event{}); err == nil {
		t.Fatal("append after close must fail")
	}
	// Reopen appends rather than truncating.
	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	fs2.Append(Event{ID: "x", Type: WorkflowEnd})
	events, _ = fs2.Events()
	if len(events) != 3 {
		t.Fatalf("after reopen: %d events", len(events))
	}
}

func TestParseTraceErrors(t *testing.T) {
	if _, err := ParseTrace("not-json\n"); err == nil {
		t.Fatal("garbage line must error")
	}
	evs, err := ParseTrace("\n\n")
	if err != nil || len(evs) != 0 {
		t.Fatalf("blank trace: %v %v", evs, err)
	}
}

func TestDBStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prov.db")
	db, err := provdb.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	store := NewDBStore(db)
	m, _ := NewManager(store)
	for i := 0; i < 5; i++ {
		m.RecordTaskEnd("wf1", "demo", sampleResult("tool", "n1", float64(10+i)), nil)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := store.Events()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("events = %d", len(events))
	}
	// Append order preserved (fixed-width keys).
	for i := 1; i < len(events); i++ {
		if events[i].DurationSec <= events[i-1].DurationSec {
			t.Fatalf("order broken: %v", events)
		}
	}
	store.Close()

	// Reopen: sequence continues, prior events inform a new manager.
	db2, err := provdb.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	store2 := NewDBStore(db2)
	defer store2.Close()
	m2, err := NewManager(store2)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := m2.LastRuntime("tool", "n1"); !ok || d != 14 {
		t.Fatalf("latest after reopen = %g %v", d, ok)
	}
	m2.RecordTaskEnd("wf2", "demo", sampleResult("tool", "n2", 99), nil)
	// m2.Store() flushes the buffered event before exposing the store.
	events, _ = m2.Store().Events()
	if len(events) != 6 {
		t.Fatalf("after reopen append: %d events", len(events))
	}
}

func TestTaskEndEventFields(t *testing.T) {
	res := sampleResult("varscan", "node-07", 60)
	res.Stdout = "ok"
	ev := TaskEndEvent("wfX", "snv", res, map[string]float64{"in.dat": 3})
	if ev.Type != TaskEnd || ev.Signature != "varscan" || ev.Node != "node-07" {
		t.Fatalf("event = %+v", ev)
	}
	if ev.DurationSec != 60 || ev.CPUSeconds != 30 || ev.Threads != 2 {
		t.Fatalf("profile = %+v", ev)
	}
	if len(ev.Inputs) != 1 || ev.Inputs[0].SizeMB != 3 {
		t.Fatalf("inputs = %+v", ev.Inputs)
	}
	if len(ev.Outputs) != 1 || ev.Outputs[0].Param != "out" {
		t.Fatalf("outputs = %+v", ev.Outputs)
	}
	if !strings.Contains(ev.ID, "wfX") {
		t.Fatalf("id = %q", ev.ID)
	}
}
