package provenance

import (
	"fmt"
	"sort"
	"sync"

	"hiway/internal/memo"
	"hiway/internal/obs"
	"hiway/internal/wf"
)

// Manager gathers, stores, and serves provenance (§3.5). It appends every
// event to the configured Store and maintains in-memory indexes that answer
// the Workflow Scheduler's queries: the latest observed runtime of a task
// signature on a compute node, the set of nodes a signature has run on, and
// observed file sizes and transfer times.
//
// Following the paper's estimation strategy, the runtime estimate for a
// (signature, node) pair is always the latest observation, so the scheduler
// adapts quickly to performance changes in the infrastructure.
// flushEvery is the buffered-append high-water mark: Record hands events to
// the store in batches of this size (or earlier, at an explicit Flush).
const flushEvery = 128

type Manager struct {
	mu    sync.Mutex
	store Store
	buf   []Event // recorded but not yet handed to the store

	lastRuntime map[string]map[string]float64 // signature → node → latest duration
	runtimeSum  map[string]float64            // signature → Σ lastRuntime values (O(1) mean)
	estVer      map[string]uint64             // signature → observation version
	history     *memo.History                 // signature → bounded ring of successful durations
	fileSizes   map[string]float64            // path → size MB
	transferSec map[string]float64            // path → latest transfer time
	signatures  map[string]bool
	nodes       map[string]bool

	taskCount     int64
	workflowCount int64

	// observability (nil handles until SetObs — no-ops)
	eventsC  *obs.Counter
	flushesC *obs.Counter
}

// SetObs registers provenance throughput counters with the registry:
// events recorded and store flushes performed.
func (m *Manager) SetObs(o *obs.Obs) {
	reg := o.M()
	m.eventsC = reg.Counter("hiway_prov_events_total", "provenance events recorded")
	m.flushesC = reg.Counter("hiway_prov_flushes_total", "buffered provenance batches handed to the store")
}

// NewManager creates a manager over the given store. Existing events in the
// store are loaded into the indexes, so provenance from earlier workflow
// runs immediately informs adaptive scheduling (the mechanism behind the
// paper's Fig. 9).
func NewManager(store Store) (*Manager, error) {
	m := &Manager{
		store:       store,
		lastRuntime: make(map[string]map[string]float64),
		runtimeSum:  make(map[string]float64),
		estVer:      make(map[string]uint64),
		history:     memo.NewHistory(0),
		fileSizes:   make(map[string]float64),
		transferSec: make(map[string]float64),
		signatures:  make(map[string]bool),
		nodes:       make(map[string]bool),
	}
	events, err := store.Events()
	if err != nil {
		return nil, fmt.Errorf("provenance: loading prior events: %w", err)
	}
	for _, ev := range events {
		m.index(ev)
	}
	return m, nil
}

// Store exposes the underlying store (e.g. to re-read a trace). Buffered
// events are flushed first so the store always reflects everything recorded.
func (m *Manager) Store() Store {
	m.mu.Lock()
	defer m.mu.Unlock()
	_ = m.flushLocked()
	return m.store
}

// Record updates the indexes immediately (so scheduling estimates never lag)
// and buffers the event for the store; the buffer is handed over in batches
// of flushEvery, or at an explicit Flush. Persistence errors surface at the
// flush that hits them.
func (m *Manager) Record(ev Event) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.index(ev)
	m.eventsC.Inc()
	m.buf = append(m.buf, ev)
	if len(m.buf) >= flushEvery {
		return m.flushLocked()
	}
	return nil
}

// Flush persists all buffered events to the store. Callers invoke it at
// durability boundaries: workflow completion, AM kill, and resume — the
// points crash recovery reads the store back from.
func (m *Manager) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flushLocked()
}

func (m *Manager) flushLocked() error {
	if len(m.buf) == 0 {
		return nil
	}
	m.flushesC.Inc()
	buf := m.buf
	m.buf = m.buf[:0]
	if ba, ok := m.store.(BatchAppender); ok {
		return ba.AppendBatch(buf)
	}
	for _, ev := range buf {
		if err := m.store.Append(ev); err != nil {
			return err
		}
	}
	return nil
}

// RecordWorkflowStart emits a workflow-start event.
func (m *Manager) RecordWorkflowStart(wfID, wfName string, at float64) error {
	return m.Record(Event{
		ID: wfID + "-start", Type: WorkflowStart, Timestamp: at,
		WorkflowID: wfID, WorkflowName: wfName,
	})
}

// RecordWorkflowEnd emits a workflow-end event with the total makespan.
func (m *Manager) RecordWorkflowEnd(wfID, wfName string, at, makespan float64, ok bool) error {
	return m.Record(Event{
		ID: wfID + "-end", Type: WorkflowEnd, Timestamp: at,
		WorkflowID: wfID, WorkflowName: wfName,
		DurationSec: makespan, Succeeded: ok,
	})
}

// RecordTaskStart emits a task-start event for one attempt of a task.
// Retries and speculative duplicates pass attempt > 0 and get distinct IDs.
func (m *Manager) RecordTaskStart(wfID, wfName string, t *wf.Task, node string, attempt int, at float64) error {
	id := fmt.Sprintf("%s-task-%d-start", wfID, t.ID)
	if attempt > 0 {
		id = fmt.Sprintf("%s-a%d", id, attempt)
	}
	return m.Record(Event{
		ID:   id,
		Type: TaskStart, Timestamp: at,
		WorkflowID: wfID, WorkflowName: wfName,
		TaskID: t.ID, Attempt: attempt, Signature: t.Name, Command: t.Command, Node: node,
	})
}

// RecordWorkflowResume emits a workflow-resumed event: an AM recovered the
// workflow from this store's provenance, reconstructing recovered completed
// tasks instead of re-running them.
func (m *Manager) RecordWorkflowResume(wfID, wfName string, at float64, recovered int) error {
	return m.Record(Event{
		ID: fmt.Sprintf("%s-resume-%g", wfID, at), Type: WorkflowResumed, Timestamp: at,
		WorkflowID: wfID, WorkflowName: wfName, Recovered: recovered,
	})
}

// RecordTaskEnd emits the task-end event (with file-level records) for a
// completed result.
func (m *Manager) RecordTaskEnd(wfID, wfName string, res *wf.TaskResult, inputSizes map[string]float64) error {
	return m.Record(TaskEndEvent(wfID, wfName, res, inputSizes))
}

// index updates the scheduler-facing indexes from one event.
func (m *Manager) index(ev Event) {
	switch ev.Type {
	case TaskEnd:
		m.taskCount++
		if ev.Signature == "" {
			return
		}
		m.signatures[ev.Signature] = true
		if ev.Node != "" {
			m.nodes[ev.Node] = true
			byNode := m.lastRuntime[ev.Signature]
			if byNode == nil {
				byNode = make(map[string]float64)
				m.lastRuntime[ev.Signature] = byNode
			}
			old, seen := byNode[ev.Node]
			byNode[ev.Node] = ev.DurationSec
			if seen {
				m.runtimeSum[ev.Signature] += ev.DurationSec - old
			} else {
				m.runtimeSum[ev.Signature] += ev.DurationSec
			}
			m.estVer[ev.Signature]++
		}
		// Only successful attempts feed the runtime distribution; a crashed
		// or killed attempt's duration says nothing about how long the task
		// legitimately takes, and a memo-spliced completion (duration 0)
		// reflects no execution at all.
		if ev.ExitCode == 0 && ev.Error == "" && ev.DurationSec > 0 {
			m.history.Add(ev.Signature, ev.DurationSec)
		}
		for _, f := range append(append([]FileEvent{}, ev.Inputs...), ev.Outputs...) {
			if f.SizeMB > 0 {
				m.fileSizes[f.Path] = f.SizeMB
			}
			if f.TransferSec > 0 {
				m.transferSec[f.Path] = f.TransferSec
			}
		}
	case WorkflowEnd:
		m.workflowCount++
	}
}

// LastRuntime returns the latest observed duration of signature on node.
// Per the paper, unobserved pairs report ok=false and the scheduler assumes
// a default of zero to encourage trying out new assignments.
func (m *Manager) LastRuntime(signature, node string) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byNode, ok := m.lastRuntime[signature]
	if !ok {
		return 0, false
	}
	d, ok := byNode[node]
	return d, ok
}

// MeanRuntime returns the mean of the latest observations of signature
// across nodes — HEFT's node-independent ranking input. O(1): the sum of
// latest observations is maintained incrementally by index.
func (m *Manager) MeanRuntime(signature string) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byNode, ok := m.lastRuntime[signature]
	if !ok || len(byNode) == 0 {
		return 0, false
	}
	return m.runtimeSum[signature] / float64(len(byNode)), true
}

// EstimateVersion returns a counter that advances with every new runtime
// observation for the signature. Schedulers memoize estimate-derived values
// (scheduler.EstimateVersioner) and invalidate when it moves.
func (m *Manager) EstimateVersion(signature string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.estVer[signature]
}

// RuntimeP95 returns the 95th-percentile duration over the bounded window
// of recent successful observations of signature (any node). The
// fault-tolerance layer derives attempt deadlines from it: deadline =
// p95 × slack. ok is false when the signature has never completed
// successfully. The distribution lives in a memo.History ring — the hot
// tier of the provenance store — so memory stays bounded under soak and the
// sorted window is cached between observations instead of re-sorted per
// query.
func (m *Manager) RuntimeP95(signature string) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.history.Quantile(signature, 0.95)
}

// ObservedNodes returns the nodes that signature has run on, sorted.
func (m *Manager) ObservedNodes(signature string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for n := range m.lastRuntime[signature] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Signatures returns all observed task signatures, sorted.
func (m *Manager) Signatures() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for s := range m.signatures {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// FileSizeMB returns the latest observed size of a file.
func (m *Manager) FileSizeMB(path string) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.fileSizes[path]
	return s, ok
}

// Counts returns the number of indexed task-end and workflow-end events.
func (m *Manager) Counts() (tasks, workflows int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.taskCount, m.workflowCount
}
