// Package provenance implements Hi-WAY's Provenance Manager (§3.5): it
// surveys workflow execution and registers events at three levels of
// granularity — workflow, task, and file — each timestamped and uniquely
// identified, stored as JSON objects.
//
// The resulting traces serve three purposes, all reproduced here:
//   - adaptive scheduling: the Workflow Scheduler queries the manager for
//     the latest observed runtime of a task signature on a node;
//   - reproducibility: a trace can be parsed back into an executable
//     workflow (package lang/trace);
//   - long-term storage: traces can live in a JSONL file (the paper's
//     HDFS trace file) or an embedded database (package provdb, the
//     MySQL/Couchbase stand-in).
package provenance

import (
	"fmt"

	"hiway/internal/wf"
)

// EventType discriminates provenance events.
type EventType string

// Event types at workflow, task, and file granularity.
const (
	WorkflowStart EventType = "workflow-start"
	WorkflowEnd   EventType = "workflow-end"
	TaskStart     EventType = "task-start"
	TaskEnd       EventType = "task-end"
	// WorkflowResumed marks an AM recovering a workflow from this store's
	// own provenance: completed tasks were reconstructed rather than re-run.
	WorkflowResumed EventType = "workflow-resumed"
)

// FileEvent records one file consumed or produced by a task, including the
// time spent moving it between HDFS and the local file system.
type FileEvent struct {
	Path        string  `json:"path"`
	SizeMB      float64 `json:"sizeMB"`
	Param       string  `json:"param,omitempty"`
	TransferSec float64 `json:"transferSec,omitempty"`
}

// Event is one provenance record. Fields are populated according to Type.
type Event struct {
	ID           string    `json:"id"`
	Type         EventType `json:"type"`
	Timestamp    float64   `json:"timestamp"`
	WorkflowID   string    `json:"workflowId"`
	WorkflowName string    `json:"workflowName,omitempty"`

	// Task-level fields.
	TaskID    int64  `json:"taskId,omitempty"`
	Attempt   int    `json:"attempt,omitempty"`
	Signature string `json:"signature,omitempty"`
	Command   string `json:"command,omitempty"`
	Node      string `json:"node,omitempty"`
	ExitCode  int    `json:"exitCode,omitempty"`
	Error     string `json:"error,omitempty"`
	Stdout    string `json:"stdout,omitempty"`
	Stderr    string `json:"stderr,omitempty"`

	// Timing breakdown (task-end) or total makespan (workflow-end).
	DurationSec float64 `json:"durationSec,omitempty"`
	StageInSec  float64 `json:"stageInSec,omitempty"`
	ExecSec     float64 `json:"execSec,omitempty"`
	StageOutSec float64 `json:"stageOutSec,omitempty"`

	// Resource profile, recorded so traces are re-executable.
	CPUSeconds float64 `json:"cpuSeconds,omitempty"`
	Threads    int     `json:"threads,omitempty"`
	MemMB      int     `json:"memMB,omitempty"`

	// File-level records attached to task events.
	Inputs  []FileEvent `json:"inputs,omitempty"`
	Outputs []FileEvent `json:"outputs,omitempty"`

	// Workflow-end summary.
	Succeeded bool `json:"succeeded,omitempty"`

	// Workflow-resumed summary: completed tasks recovered from provenance.
	Recovered int `json:"recovered,omitempty"`

	// MemoHit marks a task-end that was spliced from the cluster memo table
	// rather than executed: the task completed with zero attempts, zero
	// duration, and no node.
	MemoHit bool `json:"memoHit,omitempty"`
	// MemoSource is the workflow whose execution populated the memo entry a
	// hit was served from — the attribution edge the memo-hit provenance
	// query walks.
	MemoSource string `json:"memoSource,omitempty"`
}

// TaskEndEvent builds the task-end event for a completed task result. Each
// attempt of a task yields a distinct event (retries and speculative
// duplicates suffix the ID), so failed attempts stay visible in the trace.
func TaskEndEvent(wfID, wfName string, res *wf.TaskResult, inputSizes map[string]float64) Event {
	id := fmt.Sprintf("%s-task-%d", wfID, res.Task.ID)
	if res.Attempt > 0 {
		id = fmt.Sprintf("%s-a%d", id, res.Attempt)
	}
	ev := Event{
		ID:           id,
		Type:         TaskEnd,
		Timestamp:    res.End,
		WorkflowID:   wfID,
		WorkflowName: wfName,
		TaskID:       res.Task.ID,
		Attempt:      res.Attempt,
		Signature:    res.Task.Name,
		Command:      res.Task.Command,
		Node:         res.Node,
		ExitCode:     res.ExitCode,
		Error:        res.Error,
		Stdout:       res.Stdout,
		Stderr:       res.Stderr,
		DurationSec:  res.End - res.Start,
		StageInSec:   res.StageInSec,
		ExecSec:      res.ExecSec,
		StageOutSec:  res.StageOutSec,
		CPUSeconds:   res.Task.CPUSeconds,
		Threads:      res.Task.Threads,
		MemMB:        res.Task.MemMB,
	}
	for _, in := range res.Task.Inputs {
		ev.Inputs = append(ev.Inputs, FileEvent{Path: in, SizeMB: inputSizes[in]})
	}
	for _, param := range res.Task.OutputParams {
		for _, fi := range res.Outputs[param] {
			ev.Outputs = append(ev.Outputs, FileEvent{Path: fi.Path, SizeMB: fi.SizeMB, Param: param})
		}
	}
	return ev
}
