package provenance

import (
	"encoding/json"
	"fmt"
	"sync"

	"hiway/internal/provdb"
)

// DBStore persists provenance events in an embedded provdb database — the
// stand-in for the paper's MySQL/Couchbase backends, intended for
// heavily-used installations with thousands of trace files. Keys are
// monotonically increasing sequence numbers, so Events() returns records in
// append order and ad-hoc queries can Range over the database directly.
type DBStore struct {
	mu  sync.Mutex
	db  *provdb.DB
	seq int64
}

// NewDBStore wraps an open database. Existing events are preserved;
// appends continue after the highest existing sequence number.
func NewDBStore(db *provdb.DB) *DBStore {
	s := &DBStore{db: db}
	keys := db.Keys()
	if len(keys) > 0 {
		// Keys sort lexicographically; fixed-width encoding makes the
		// last key the highest sequence number.
		last := keys[len(keys)-1]
		var n int64
		fmt.Sscanf(last, "ev%020d", &n)
		s.seq = n
	}
	return s
}

// Append implements Store.
func (s *DBStore) Append(ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("provenance: encoding event %s: %w", ev.ID, err)
	}
	s.seq++
	return s.db.Put(fmt.Sprintf("ev%020d", s.seq), b)
}

// AppendBatch implements BatchAppender.
func (s *DBStore) AppendBatch(evs []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ev := range evs {
		b, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("provenance: encoding event %s: %w", ev.ID, err)
		}
		s.seq++
		if err := s.db.Put(fmt.Sprintf("ev%020d", s.seq), b); err != nil {
			return err
		}
	}
	return nil
}

// Events implements Store.
func (s *DBStore) Events() ([]Event, error) {
	var events []Event
	var firstErr error
	s.db.Range(func(key string, value []byte) bool {
		var ev Event
		if err := json.Unmarshal(value, &ev); err != nil {
			firstErr = fmt.Errorf("provenance: decoding %s: %w", key, err)
			return false
		}
		events = append(events, ev)
		return true
	})
	return events, firstErr
}

// Close implements Store.
func (s *DBStore) Close() error { return s.db.Close() }
