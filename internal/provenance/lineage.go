package provenance

import (
	"fmt"
	"sort"
	"strings"
)

// This file extends the query layer with the three questions the tiered
// provenance store is asked by operators: how a file came to be (lineage),
// how two runs of the same pipeline differ (cross-run diff), and which
// earlier run paid for a memoized completion (memo-hit attribution). All
// queries run over any Store; a small parsed query language (ParseQuery)
// lets `hiway prov -query` and the service's GET /v1/provenance share one
// grammar.

// QueryOp discriminates parsed provenance queries.
type QueryOp string

// The supported query operations.
const (
	// OpLineage walks producer links backward from one file path.
	OpLineage QueryOp = "lineage"
	// OpDiff compares two workflow runs signature by signature.
	OpDiff QueryOp = "diff"
	// OpMemoHits lists memoized completions and the runs that paid for them.
	OpMemoHits QueryOp = "memo-hits"
)

// Query is one parsed provenance query. Fields are populated according to
// Op: Path for lineage, RunA/RunB for diff, and Run (optional filter) for
// memo-hits.
type Query struct {
	Op   QueryOp
	Path string
	RunA string
	RunB string
	Run  string
}

// ParseQuery parses the provenance query mini-language:
//
//	lineage <path>
//	diff <runA> <runB>
//	memo-hits [run]
//
// Tokens are whitespace-separated; parsed queries round-trip through
// String.
func ParseQuery(s string) (Query, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return Query{}, fmt.Errorf("provenance: empty query")
	}
	switch QueryOp(fields[0]) {
	case OpLineage:
		if len(fields) != 2 {
			return Query{}, fmt.Errorf("provenance: usage: lineage <path>")
		}
		return Query{Op: OpLineage, Path: fields[1]}, nil
	case OpDiff:
		if len(fields) != 3 {
			return Query{}, fmt.Errorf("provenance: usage: diff <runA> <runB>")
		}
		return Query{Op: OpDiff, RunA: fields[1], RunB: fields[2]}, nil
	case OpMemoHits:
		switch len(fields) {
		case 1:
			return Query{Op: OpMemoHits}, nil
		case 2:
			return Query{Op: OpMemoHits, Run: fields[1]}, nil
		}
		return Query{}, fmt.Errorf("provenance: usage: memo-hits [run]")
	}
	return Query{}, fmt.Errorf("provenance: unknown query op %q", fields[0])
}

// String renders the query back into its parseable form.
func (q Query) String() string {
	switch q.Op {
	case OpLineage:
		return string(OpLineage) + " " + q.Path
	case OpDiff:
		return fmt.Sprintf("%s %s %s", OpDiff, q.RunA, q.RunB)
	case OpMemoHits:
		if q.Run == "" {
			return string(OpMemoHits)
		}
		return string(OpMemoHits) + " " + q.Run
	}
	return string(q.Op)
}

// RunQuery executes a parsed query against a store and renders the result
// as text — the shared backend of `hiway prov -query` and GET
// /v1/provenance.
func RunQuery(store Store, q Query) (string, error) {
	switch q.Op {
	case OpLineage:
		n, err := Lineage(store, q.Path)
		if err != nil {
			return "", err
		}
		return RenderLineage(n), nil
	case OpDiff:
		d, err := DiffRuns(store, q.RunA, q.RunB)
		if err != nil {
			return "", err
		}
		return RenderRunDiff(d), nil
	case OpMemoHits:
		hits, err := MemoHits(store, q.Run)
		if err != nil {
			return "", err
		}
		return RenderMemoHits(hits), nil
	}
	return "", fmt.Errorf("provenance: unknown query op %q", q.Op)
}

// LineageNode is one file in a lineage tree. Producer is nil for external
// (staged) inputs that no recorded task produced.
type LineageNode struct {
	Path     string
	SizeMB   float64
	Producer *LineageStep
}

// LineageStep is the task execution that produced a file, with the inputs
// it consumed — the recursive edge of the lineage walk. MemoHit/MemoSource
// carry memo attribution through the tree: a spliced completion's lineage
// names the run whose execution actually produced the bytes.
type LineageStep struct {
	Signature   string
	WorkflowID  string
	TaskID      int64
	DurationSec float64
	MemoHit     bool
	MemoSource  string
	Inputs      []*LineageNode
}

// Lineage walks producer links backward from path: the latest task-end
// event producing path becomes its producer, and each of that task's
// inputs is resolved recursively. Paths with no recorded producer are
// leaves (staged inputs). Shared subtrees are revisited but cycles are cut,
// so diamond-shaped dataflow renders fully while malformed traces cannot
// recurse forever.
func Lineage(store Store, path string) (*LineageNode, error) {
	events, err := store.Events()
	if err != nil {
		return nil, err
	}
	// Latest producer wins: later events overwrite earlier ones, matching
	// the manager's latest-observation indexing.
	producer := map[string]Event{}
	sizes := map[string]float64{}
	for _, ev := range events {
		if ev.Type != TaskEnd {
			continue
		}
		for _, f := range ev.Outputs {
			producer[f.Path] = ev
			if f.SizeMB > 0 {
				sizes[f.Path] = f.SizeMB
			}
		}
		for _, f := range ev.Inputs {
			if f.SizeMB > 0 {
				sizes[f.Path] = f.SizeMB
			}
		}
	}
	var walk func(p string, onPath map[string]bool) *LineageNode
	walk = func(p string, onPath map[string]bool) *LineageNode {
		n := &LineageNode{Path: p, SizeMB: sizes[p]}
		ev, ok := producer[p]
		if !ok || onPath[p] {
			return n
		}
		onPath[p] = true
		defer delete(onPath, p)
		step := &LineageStep{
			Signature:   ev.Signature,
			WorkflowID:  ev.WorkflowID,
			TaskID:      ev.TaskID,
			DurationSec: ev.DurationSec,
			MemoHit:     ev.MemoHit,
			MemoSource:  ev.MemoSource,
		}
		for _, in := range ev.Inputs {
			step.Inputs = append(step.Inputs, walk(in.Path, onPath))
		}
		n.Producer = step
		return n
	}
	return walk(path, map[string]bool{}), nil
}

// RenderLineage formats a lineage tree as an indented text derivation.
func RenderLineage(n *LineageNode) string {
	var sb strings.Builder
	var rec func(n *LineageNode, depth int)
	rec = func(n *LineageNode, depth int) {
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(&sb, "%s%s", indent, n.Path)
		if n.SizeMB > 0 {
			fmt.Fprintf(&sb, " (%g MB)", n.SizeMB)
		}
		if n.Producer == nil {
			sb.WriteString(" [staged]\n")
			return
		}
		p := n.Producer
		fmt.Fprintf(&sb, " <- %s task %d @ %s", p.Signature, p.TaskID, p.WorkflowID)
		if p.MemoHit {
			fmt.Fprintf(&sb, " [memo hit from %s]", p.MemoSource)
		}
		sb.WriteString("\n")
		for _, in := range p.Inputs {
			rec(in, depth+1)
		}
	}
	rec(n, 0)
	return sb.String()
}

// SigDelta compares one task signature between two runs.
type SigDelta struct {
	Signature string
	CountA    int
	CountB    int
	TotalSecA float64
	TotalSecB float64
	MemoHitsA int
	MemoHitsB int
}

// RunDiff is the cross-run comparison of two workflow runs: signatures
// unique to each side, shared signatures with execution-time deltas, and
// the makespans.
type RunDiff struct {
	RunA      string
	RunB      string
	MakespanA float64
	MakespanB float64
	OnlyA     []string
	OnlyB     []string
	Common    []SigDelta
}

// DiffRuns compares two recorded workflow runs signature by signature —
// "what changed between yesterday's run and today's?". Memo-hit counts per
// side make memoization's contribution to a faster run visible in the
// diff.
func DiffRuns(store Store, runA, runB string) (*RunDiff, error) {
	events, err := store.Events()
	if err != nil {
		return nil, err
	}
	d := &RunDiff{RunA: runA, RunB: runB}
	type acc struct {
		count, memo int
		total       float64
	}
	a := map[string]*acc{}
	b := map[string]*acc{}
	seenA, seenB := false, false
	for _, ev := range events {
		var side map[string]*acc
		switch ev.WorkflowID {
		case runA:
			side, seenA = a, true
		case runB:
			side, seenB = b, true
		default:
			continue
		}
		switch ev.Type {
		case TaskEnd:
			s := side[ev.Signature]
			if s == nil {
				s = &acc{}
				side[ev.Signature] = s
			}
			s.count++
			s.total += ev.DurationSec
			if ev.MemoHit {
				s.memo++
			}
		case WorkflowEnd:
			if ev.WorkflowID == runA {
				d.MakespanA = ev.DurationSec
			} else {
				d.MakespanB = ev.DurationSec
			}
		}
	}
	if !seenA {
		return nil, fmt.Errorf("provenance: run %q not in trace", runA)
	}
	if !seenB {
		return nil, fmt.Errorf("provenance: run %q not in trace", runB)
	}
	for sig, sa := range a {
		sb, ok := b[sig]
		if !ok {
			d.OnlyA = append(d.OnlyA, sig)
			continue
		}
		d.Common = append(d.Common, SigDelta{
			Signature: sig,
			CountA:    sa.count, CountB: sb.count,
			TotalSecA: sa.total, TotalSecB: sb.total,
			MemoHitsA: sa.memo, MemoHitsB: sb.memo,
		})
	}
	for sig := range b {
		if _, ok := a[sig]; !ok {
			d.OnlyB = append(d.OnlyB, sig)
		}
	}
	sort.Strings(d.OnlyA)
	sort.Strings(d.OnlyB)
	sort.Slice(d.Common, func(i, j int) bool { return d.Common[i].Signature < d.Common[j].Signature })
	return d, nil
}

// RenderRunDiff formats a RunDiff as a text report.
func RenderRunDiff(d *RunDiff) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "diff %s vs %s\n", d.RunA, d.RunB)
	fmt.Fprintf(&sb, "makespan: %.2f s vs %.2f s\n", d.MakespanA, d.MakespanB)
	for _, sig := range d.OnlyA {
		fmt.Fprintf(&sb, "only in %s: %s\n", d.RunA, sig)
	}
	for _, sig := range d.OnlyB {
		fmt.Fprintf(&sb, "only in %s: %s\n", d.RunB, sig)
	}
	if len(d.Common) > 0 {
		fmt.Fprintf(&sb, "%-16s %6s %6s %10s %10s %6s %6s\n",
			"signature", "n(A)", "n(B)", "sec(A)", "sec(B)", "memoA", "memoB")
		for _, c := range d.Common {
			fmt.Fprintf(&sb, "%-16s %6d %6d %10.2f %10.2f %6d %6d\n",
				c.Signature, c.CountA, c.CountB, c.TotalSecA, c.TotalSecB, c.MemoHitsA, c.MemoHitsB)
		}
	}
	return sb.String()
}

// MemoAttribution records one memoized completion and the run whose real
// execution it was served from.
type MemoAttribution struct {
	WorkflowID string
	TaskID     int64
	Signature  string
	MemoSource string
	// CPUSavedSec is the CPU work the hit avoided — the task's recorded
	// CPU-seconds profile.
	CPUSavedSec float64
}

// MemoHits lists memo-hit task-ends in trace order, optionally filtered to
// one consuming run — the attribution side of cross-tenant memoization:
// which earlier run paid for each skipped execution.
func MemoHits(store Store, run string) ([]MemoAttribution, error) {
	events, err := store.Events()
	if err != nil {
		return nil, err
	}
	var out []MemoAttribution
	for _, ev := range events {
		if ev.Type != TaskEnd || !ev.MemoHit {
			continue
		}
		if run != "" && ev.WorkflowID != run {
			continue
		}
		out = append(out, MemoAttribution{
			WorkflowID:  ev.WorkflowID,
			TaskID:      ev.TaskID,
			Signature:   ev.Signature,
			MemoSource:  ev.MemoSource,
			CPUSavedSec: ev.CPUSeconds,
		})
	}
	return out, nil
}

// RenderMemoHits formats memo-hit attributions as a text table.
func RenderMemoHits(hits []MemoAttribution) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %6s %-16s %-14s %10s\n",
		"run", "task", "signature", "source", "cpu-saved")
	var saved float64
	for _, h := range hits {
		src := h.MemoSource
		if src == "" {
			src = "-"
		}
		fmt.Fprintf(&sb, "%-14s %6d %-16s %-14s %10.2f\n",
			h.WorkflowID, h.TaskID, h.Signature, src, h.CPUSavedSec)
		saved += h.CPUSavedSec
	}
	fmt.Fprintf(&sb, "%d memo hits, %.2f cpu-seconds saved\n", len(hits), saved)
	return sb.String()
}
