package provenance

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
)

// Store is long-term storage for provenance events. Implementations:
// MemStore (in-process), FileStore (JSONL trace file, the paper's default),
// and the provdb-backed store in internal/provdb (the MySQL/Couchbase
// alternative for heavily-used installations).
type Store interface {
	Append(ev Event) error
	// Events returns all stored events in append order.
	Events() ([]Event, error)
	Close() error
}

// BatchAppender is the optional bulk extension of Store: AppendBatch
// persists all events with one lock acquisition and (for file-backed
// stores) one flush, which is what makes the Manager's buffered appends
// cheaper than event-at-a-time writes.
type BatchAppender interface {
	AppendBatch(evs []Event) error
}

// MemStore keeps events in memory. The zero value is ready to use.
type MemStore struct {
	mu     sync.Mutex
	events []Event
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Append implements Store.
func (s *MemStore) Append(ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, ev)
	return nil
}

// AppendBatch implements BatchAppender.
func (s *MemStore) AppendBatch(evs []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, evs...)
	return nil
}

// Events implements Store.
func (s *MemStore) Events() ([]Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out, nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// FileStore appends events as JSON lines to a trace file — the format the
// paper stores in HDFS and that package lang/trace re-executes.
type FileStore struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer
}

// OpenFileStore opens (creating or appending to) a JSONL trace file.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("provenance: opening trace file: %w", err)
	}
	return &FileStore{path: path, f: f, w: bufio.NewWriter(f)}, nil
}

// Append implements Store.
func (s *FileStore) Append(ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return fmt.Errorf("provenance: store %s is closed", s.path)
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("provenance: encoding event %s: %w", ev.ID, err)
	}
	if _, err := s.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("provenance: writing trace: %w", err)
	}
	return s.w.Flush()
}

// AppendBatch implements BatchAppender: all lines are written under one
// lock and flushed to the OS once at the end.
func (s *FileStore) AppendBatch(evs []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return fmt.Errorf("provenance: store %s is closed", s.path)
	}
	for _, ev := range evs {
		b, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("provenance: encoding event %s: %w", ev.ID, err)
		}
		if _, err := s.w.Write(append(b, '\n')); err != nil {
			return fmt.Errorf("provenance: writing trace: %w", err)
		}
	}
	return s.w.Flush()
}

// Events implements Store by re-reading the trace file.
func (s *FileStore) Events() ([]Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w != nil {
		if err := s.w.Flush(); err != nil {
			return nil, err
		}
	}
	data, err := os.ReadFile(s.path)
	if err != nil {
		return nil, fmt.Errorf("provenance: reading trace file: %w", err)
	}
	return ParseTrace(string(data))
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	s.w = nil
	err := s.f.Close()
	s.f = nil
	return err
}

// ParseTrace decodes a JSONL trace text into events, skipping blank lines.
func ParseTrace(text string) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("provenance: trace line %d: %w", lineNo, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("provenance: scanning trace: %w", err)
	}
	return events, nil
}
