package provenance

import (
	"strings"
	"testing"
)

// traceFixture builds a two-run store: wf-a executes a two-stage chain for
// real; wf-b re-runs the same pipeline with the second stage spliced from
// the memo table (attributed to wf-a) plus one extra signature.
func traceFixture(t *testing.T) Store {
	t.Helper()
	st := NewMemStore()
	evs := []Event{
		{ID: "wf-a-start", Type: WorkflowStart, WorkflowID: "wf-a"},
		{ID: "wf-a-task-1", Type: TaskEnd, WorkflowID: "wf-a", TaskID: 1,
			Signature: "align", Node: "n0", DurationSec: 10, CPUSeconds: 40,
			Inputs:  []FileEvent{{Path: "/data/sample.fq", SizeMB: 512}},
			Outputs: []FileEvent{{Path: "/wf/aligned.bam", SizeMB: 256}}},
		{ID: "wf-a-task-2", Type: TaskEnd, WorkflowID: "wf-a", TaskID: 2,
			Signature: "call", Node: "n1", DurationSec: 5, CPUSeconds: 20,
			Inputs:  []FileEvent{{Path: "/wf/aligned.bam", SizeMB: 256}},
			Outputs: []FileEvent{{Path: "/wf/calls.vcf", SizeMB: 32}}},
		{ID: "wf-a-end", Type: WorkflowEnd, WorkflowID: "wf-a", DurationSec: 15, Succeeded: true},
		{ID: "wf-b-start", Type: WorkflowStart, WorkflowID: "wf-b"},
		{ID: "wf-b-task-1", Type: TaskEnd, WorkflowID: "wf-b", TaskID: 1,
			Signature: "align", Node: "n0", DurationSec: 9, CPUSeconds: 40,
			Inputs:  []FileEvent{{Path: "/data/sample.fq", SizeMB: 512}},
			Outputs: []FileEvent{{Path: "/wf2/aligned.bam", SizeMB: 256}}},
		{ID: "wf-b-task-2", Type: TaskEnd, WorkflowID: "wf-b", TaskID: 2,
			Signature: "call", MemoHit: true, MemoSource: "wf-a", CPUSeconds: 20,
			Inputs:  []FileEvent{{Path: "/wf2/aligned.bam", SizeMB: 256}},
			Outputs: []FileEvent{{Path: "/wf2/calls.vcf", SizeMB: 32}}},
		{ID: "wf-b-task-3", Type: TaskEnd, WorkflowID: "wf-b", TaskID: 3,
			Signature: "annotate", Node: "n1", DurationSec: 2, CPUSeconds: 4,
			Inputs:  []FileEvent{{Path: "/wf2/calls.vcf", SizeMB: 32}},
			Outputs: []FileEvent{{Path: "/wf2/annotated.vcf", SizeMB: 33}}},
		{ID: "wf-b-end", Type: WorkflowEnd, WorkflowID: "wf-b", DurationSec: 11, Succeeded: true},
	}
	for _, ev := range evs {
		if err := st.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestLineageWalksProducersToStagedLeaves(t *testing.T) {
	n, err := Lineage(traceFixture(t), "/wf2/annotated.vcf")
	if err != nil {
		t.Fatal(err)
	}
	if n.Producer == nil || n.Producer.Signature != "annotate" {
		t.Fatalf("root producer: %+v", n.Producer)
	}
	calls := n.Producer.Inputs[0]
	if calls.Producer == nil || calls.Producer.Signature != "call" {
		t.Fatalf("calls producer: %+v", calls.Producer)
	}
	if !calls.Producer.MemoHit || calls.Producer.MemoSource != "wf-a" {
		t.Fatalf("memo attribution lost in lineage: %+v", calls.Producer)
	}
	aligned := calls.Producer.Inputs[0]
	if aligned.Producer == nil || aligned.Producer.Signature != "align" {
		t.Fatalf("aligned producer: %+v", aligned.Producer)
	}
	leaf := aligned.Producer.Inputs[0]
	if leaf.Path != "/data/sample.fq" || leaf.Producer != nil {
		t.Fatalf("staged leaf: %+v", leaf)
	}
	text := RenderLineage(n)
	for _, want := range []string{"[staged]", "[memo hit from wf-a]", "/wf2/annotated.vcf"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered lineage missing %q:\n%s", want, text)
		}
	}
}

func TestLineageCutsCycles(t *testing.T) {
	st := NewMemStore()
	// Malformed trace: a and b produce each other.
	_ = st.Append(Event{ID: "t1", Type: TaskEnd, WorkflowID: "wf", TaskID: 1, Signature: "s1",
		Inputs: []FileEvent{{Path: "/b"}}, Outputs: []FileEvent{{Path: "/a"}}})
	_ = st.Append(Event{ID: "t2", Type: TaskEnd, WorkflowID: "wf", TaskID: 2, Signature: "s2",
		Inputs: []FileEvent{{Path: "/a"}}, Outputs: []FileEvent{{Path: "/b"}}})
	n, err := Lineage(st, "/a")
	if err != nil {
		t.Fatal(err)
	}
	// /a <- s1 <- /b <- s2 <- /a (cut: leaf, no producer)
	inner := n.Producer.Inputs[0].Producer.Inputs[0]
	if inner.Path != "/a" || inner.Producer != nil {
		t.Fatalf("cycle not cut: %+v", inner)
	}
}

func TestDiffRunsSeparatesAndDeltas(t *testing.T) {
	d, err := DiffRuns(traceFixture(t), "wf-a", "wf-b")
	if err != nil {
		t.Fatal(err)
	}
	if d.MakespanA != 15 || d.MakespanB != 11 {
		t.Fatalf("makespans: %+v", d)
	}
	if len(d.OnlyA) != 0 || len(d.OnlyB) != 1 || d.OnlyB[0] != "annotate" {
		t.Fatalf("onlys: %+v %+v", d.OnlyA, d.OnlyB)
	}
	if len(d.Common) != 2 {
		t.Fatalf("common: %+v", d.Common)
	}
	call := d.Common[1]
	if call.Signature != "call" || call.MemoHitsA != 0 || call.MemoHitsB != 1 {
		t.Fatalf("call delta: %+v", call)
	}
	if call.TotalSecA != 5 || call.TotalSecB != 0 {
		t.Fatalf("call durations: %+v", call)
	}
	if _, err := DiffRuns(traceFixture(t), "wf-a", "nope"); err == nil {
		t.Fatal("diff against an unknown run did not error")
	}
	if !strings.Contains(RenderRunDiff(d), "only in wf-b: annotate") {
		t.Fatal("rendered diff missing only-in row")
	}
}

func TestMemoHitsAttribution(t *testing.T) {
	hits, err := MemoHits(traceFixture(t), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("hits: %+v", hits)
	}
	h := hits[0]
	if h.WorkflowID != "wf-b" || h.Signature != "call" || h.MemoSource != "wf-a" || h.CPUSavedSec != 20 {
		t.Fatalf("attribution: %+v", h)
	}
	filtered, err := MemoHits(traceFixture(t), "wf-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) != 0 {
		t.Fatalf("wf-a executed everything for real, got %+v", filtered)
	}
	if !strings.Contains(RenderMemoHits(hits), "1 memo hits, 20.00 cpu-seconds saved") {
		t.Fatal("rendered memo-hits missing total")
	}
}

func TestParseQueryRoundTripAndErrors(t *testing.T) {
	good := []string{
		"lineage /wf/calls.vcf",
		"diff wf-a wf-b",
		"memo-hits",
		"memo-hits wf-b",
	}
	for _, s := range good {
		q, err := ParseQuery(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if q.String() != s {
			t.Fatalf("round trip: %q -> %q", s, q.String())
		}
		q2, err := ParseQuery(q.String())
		if err != nil || q2 != q {
			t.Fatalf("re-parse: %+v vs %+v (%v)", q, q2, err)
		}
	}
	bad := []string{"", "   ", "lineage", "lineage a b", "diff one", "diff a b c", "memo-hits a b", "explode"}
	for _, s := range bad {
		if _, err := ParseQuery(s); err == nil {
			t.Fatalf("%q parsed", s)
		}
	}
}

func TestRunQueryDispatch(t *testing.T) {
	st := traceFixture(t)
	for _, tc := range []struct{ q, want string }{
		{"lineage /wf2/calls.vcf", "[memo hit from wf-a]"},
		{"diff wf-a wf-b", "makespan: 15.00 s vs 11.00 s"},
		{"memo-hits wf-b", "cpu-seconds saved"},
	} {
		q, err := ParseQuery(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		out, err := RunQuery(st, q)
		if err != nil {
			t.Fatalf("%q: %v", tc.q, err)
		}
		if !strings.Contains(out, tc.want) {
			t.Fatalf("%q output missing %q:\n%s", tc.q, tc.want, out)
		}
	}
	if _, err := RunQuery(st, Query{Op: "bogus"}); err == nil {
		t.Fatal("bogus op did not error")
	}
}

// FuzzProvQuery fuzzes the query parser: arbitrary input must never panic,
// and any successfully parsed query must round-trip through String.
func FuzzProvQuery(f *testing.F) {
	f.Add("lineage /wf/calls.vcf")
	f.Add("diff wf-a wf-b")
	f.Add("memo-hits wf-b")
	f.Add("memo-hits")
	f.Add("  lineage\t/odd path  ")
	f.Add("explode | ; $(boom)")
	f.Fuzz(func(t *testing.T, s string) {
		q, err := ParseQuery(s)
		if err != nil {
			return
		}
		q2, err := ParseQuery(q.String())
		if err != nil {
			t.Fatalf("parsed query %+v does not re-parse: %v", q, err)
		}
		if q2 != q {
			t.Fatalf("round trip diverged: %+v vs %+v", q, q2)
		}
	})
}
