package core

import (
	"fmt"
	"sort"
	"strings"

	"hiway/internal/wf"
)

// TimelineCSV exports the execution record as CSV (one row per task
// attempt that completed), ready for external plotting.
func (r *Report) TimelineCSV() string {
	var sb strings.Builder
	sb.WriteString("task_id,signature,node,start_s,stage_in_s,exec_s,stage_out_s,end_s,exit_code\n")
	results := append([]*wf.TaskResult(nil), r.Results...)
	sort.Slice(results, func(i, j int) bool {
		if results[i].Start != results[j].Start {
			return results[i].Start < results[j].Start
		}
		return results[i].Task.ID < results[j].Task.ID
	})
	for _, res := range results {
		fmt.Fprintf(&sb, "%d,%s,%s,%.3f,%.3f,%.3f,%.3f,%.3f,%d\n",
			res.Task.ID, res.Task.Name, res.Node,
			res.Start, res.StageInSec, res.ExecSec, res.StageOutSec, res.End, res.ExitCode)
	}
	return sb.String()
}

// Gantt renders a coarse per-node timeline: each task attempt occupies a
// span of the node's row, labeled with the first letter of its signature.
// width is the number of character cells spanning the whole makespan.
func (r *Report) Gantt(width int) string {
	if width <= 10 {
		width = 80
	}
	span := r.End - r.Start
	if span <= 0 || len(r.Results) == 0 {
		return "(empty timeline)\n"
	}
	cell := span / float64(width)

	nodes := map[string][]byte{}
	var nodeIDs []string
	rowFor := func(node string) []byte {
		if row, ok := nodes[node]; ok {
			return row
		}
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		nodes[node] = row
		nodeIDs = append(nodeIDs, node)
		return row
	}
	for _, res := range r.Results {
		row := rowFor(res.Node)
		from := int((res.Start - r.Start) / cell)
		to := int((res.End - r.Start) / cell)
		if to >= width {
			to = width - 1
		}
		if from > to {
			from = to
		}
		label := byte('?')
		if len(res.Task.Name) > 0 {
			label = res.Task.Name[0]
		}
		for i := from; i <= to; i++ {
			row[i] = label
		}
	}
	sort.Strings(nodeIDs)
	var sb strings.Builder
	fmt.Fprintf(&sb, "makespan %.1fs, %d tasks, one row per node (letter = task signature initial)\n",
		r.MakespanSec, len(r.Results))
	for _, id := range nodeIDs {
		fmt.Fprintf(&sb, "%-10s %s\n", id, nodes[id])
	}
	return sb.String()
}

// Summary is a one-paragraph human-readable digest.
func (r *Report) Summary() string {
	status := "succeeded"
	if !r.Succeeded {
		status = fmt.Sprintf("FAILED (%v)", r.Err)
	}
	bySig := map[string]int{}
	var stageIn, exec, stageOut float64
	for _, res := range r.Results {
		bySig[res.Task.Name]++
		stageIn += res.StageInSec
		exec += res.ExecSec
		stageOut += res.StageOutSec
	}
	sigs := make([]string, 0, len(bySig))
	for s := range bySig {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	parts := make([]string, 0, len(sigs))
	for _, s := range sigs {
		parts = append(parts, fmt.Sprintf("%s×%d", s, bySig[s]))
	}
	s := fmt.Sprintf(
		"workflow %s (%s scheduler) %s in %.1fs: %d tasks [%s], %d containers, %d retries; task time split: stage-in %.1fs, execute %.1fs, stage-out %.1fs",
		r.WorkflowName, r.Scheduler, status, r.MakespanSec,
		len(r.Results), strings.Join(parts, " "), r.Containers, r.Retries,
		stageIn, exec, stageOut)
	if r.Recovered > 0 || r.TimedOut > 0 || r.Speculative > 0 {
		s += fmt.Sprintf("; fault tolerance: %d recovered, %d timed out, %d speculative", r.Recovered, r.TimedOut, r.Speculative)
	}
	return s
}
