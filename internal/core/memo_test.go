package core

import (
	"testing"

	"hiway/internal/memo"
	"hiway/internal/provenance"
	"hiway/internal/scheduler"
	"hiway/internal/wf"
)

// TestMemoWarmTableSplicesWholeWorkflow is the core hit/miss differential:
// a cold run over a shared table executes everything and commits entries; a
// second run of the same pipeline on a fresh substrate splices every task
// from the table — zero containers, zero attempts, identical outputs — and
// its provenance attributes each hit to the first run.
func TestMemoWarmTableSplicesWholeWorkflow(t *testing.T) {
	tab := memo.New(0)

	envA := newEnv(t, 3, spec(), 1000)
	envA.FS.Put("/in/seed", 20, "")
	repA, err := Run(envA.Env, chainDriver(t, 4), scheduler.NewFCFS(), Config{WorkflowID: "run-a", Memo: tab})
	if err != nil {
		t.Fatal(err)
	}
	if repA.Memoized != 0 {
		t.Fatalf("cold run memoized %d tasks", repA.Memoized)
	}
	if st := tab.Stats(); st.Commits != 6 || st.Hits != 0 {
		t.Fatalf("cold-run table stats: %+v", st)
	}

	envB := newEnv(t, 3, spec(), 1000)
	envB.FS.Put("/in/seed", 20, "")
	repB, err := Run(envB.Env, chainDriver(t, 4), scheduler.NewFCFS(), Config{WorkflowID: "run-b", Memo: tab})
	if err != nil {
		t.Fatal(err)
	}
	if repB.Memoized != 6 || len(repB.Results) != 6 {
		t.Fatalf("warm run: memoized=%d results=%d", repB.Memoized, len(repB.Results))
	}
	if repB.Containers != 0 {
		t.Fatalf("warm run allocated %d worker containers", repB.Containers)
	}
	for _, res := range repB.Results {
		if res.Node != "" || res.End != res.Start {
			t.Fatalf("spliced result executed: %+v", res)
		}
	}
	if len(repB.Outputs) != len(repA.Outputs) {
		t.Fatalf("outputs diverged: %v vs %v", repB.Outputs, repA.Outputs)
	}
	if !envB.FS.Readable("/tmp/result") {
		t.Fatal("spliced final output not materialized in HDFS")
	}
	// Every hit is attributed to the cold run in provenance.
	hits, err := provenance.MemoHits(envB.Prov.Store(), "run-b")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 6 {
		t.Fatalf("memo-hit events: %d", len(hits))
	}
	for _, h := range hits {
		if h.MemoSource != "run-a" {
			t.Fatalf("attribution: %+v", h)
		}
	}
	if st := tab.Stats(); st.Hits != 6 {
		t.Fatalf("warm-run table stats: %+v", st)
	}
}

// TestMemoTenantOptOut pins the per-tenant escape hatch: an opted-out
// tenant neither reads nor writes the shared table, even when warm.
func TestMemoTenantOptOut(t *testing.T) {
	tab := memo.New(0)

	envA := newEnv(t, 3, spec(), 1000)
	envA.FS.Put("/in/seed", 20, "")
	if _, err := Run(envA.Env, chainDriver(t, 2), scheduler.NewFCFS(), Config{WorkflowID: "run-a", Memo: tab}); err != nil {
		t.Fatal(err)
	}

	tab.SetOptOut("paranoid")
	envB := newEnv(t, 3, spec(), 1000)
	envB.FS.Put("/in/seed", 20, "")
	rep, err := Run(envB.Env, chainDriver(t, 2), scheduler.NewFCFS(),
		Config{WorkflowID: "run-b", Tenant: "paranoid", Memo: tab})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Memoized != 0 || rep.Containers == 0 {
		t.Fatalf("opted-out tenant got memoized work: %+v", rep)
	}
	if st := tab.Stats(); st.Commits != 4 || st.Lookups != 4 {
		// 4 commits and 4 lookups from run A only (prep, 2×work, merge).
		t.Fatalf("opted-out tenant touched the table: %+v", st)
	}
}

// TestMemoSkipsDynamicOutcomes pins the commit precondition: a task whose
// produced outputs differ from its declaration must never be memoized,
// since a splice replays the declaration.
func TestMemoSkipsDynamicOutcomes(t *testing.T) {
	tab := memo.New(0)
	dynamic := func(task *wf.Task) wf.Outcome {
		out := wf.DefaultOutcome(task)
		if task.Name == "work" {
			// An aggregate output growing an extra file at run time.
			out.Outputs["out"] = append(out.Outputs["out"], wf.FileInfo{Path: out.Outputs["out"][0].Path + ".extra", SizeMB: 1})
		}
		return out
	}

	for i, id := range []string{"run-a", "run-b"} {
		env := newEnv(t, 3, spec(), 1000)
		env.FS.Put("/in/seed", 20, "")
		rep, err := Run(env.Env, chainDriver(t, 2), scheduler.NewFCFS(),
			Config{WorkflowID: id, Memo: tab, Behavior: dynamic})
		if err != nil {
			t.Fatal(err)
		}
		// prep and merge match their declarations and memoize; the dynamic
		// work tasks must re-execute in the second run (their producer
		// identities are deterministic, so merge still hits downstream).
		wantMemoized := 0
		if i == 1 {
			wantMemoized = 2 // prep and merge
		}
		if rep.Memoized != wantMemoized {
			t.Fatalf("run %s memoized %d, want %d", id, rep.Memoized, wantMemoized)
		}
		for _, res := range rep.Results {
			if res.Task.Name == "work" && res.Node == "" {
				t.Fatalf("run %s spliced a dynamic-outcome task", id)
			}
		}
	}
	// Only declaration-true tasks ever committed.
	if st := tab.Stats(); st.Commits < 2 || st.Commits > 4 {
		t.Fatalf("table stats: %+v", st)
	}
}

// TestMemoPrefixCanonicalizesAcrossRoots proves the cross-tenant premise:
// the same pipeline staged under two different run-private roots derives
// identical keys once the prefix is stripped, so tenant B's run hits on
// tenant A's executions.
func TestMemoPrefixCanonicalizesAcrossRoots(t *testing.T) {
	tab := memo.New(0)
	build := func(root string) (wf.StaticDriver, string) {
		seed := root + "/in/seed"
		prep := wf.NewTask("prep", []string{seed}, []wf.FileInfo{{Path: root + "/tmp/split", SizeMB: 10}})
		prep.CPUSeconds = 5
		work := wf.NewTask("work", []string{root + "/tmp/split"}, []wf.FileInfo{{Path: root + "/tmp/part", SizeMB: 5}})
		work.CPUSeconds = 20
		sb := &wf.StaticBase{WFName: "rooted"}
		sb.Build = func() ([]*wf.Task, []string, []wf.Edge, error) {
			return []*wf.Task{prep, work}, []string{seed}, nil, nil
		}
		return sb, seed
	}

	envA := newEnv(t, 3, spec(), 1000)
	drvA, seedA := build("/svc/alice/w000")
	envA.FS.Put(seedA, 20, "")
	if _, err := Run(envA.Env, drvA, scheduler.NewFCFS(),
		Config{WorkflowID: "alice-w000", Tenant: "alice", Memo: tab, MemoPrefix: "/svc/alice/w000"}); err != nil {
		t.Fatal(err)
	}

	envB := newEnv(t, 3, spec(), 1000)
	drvB, seedB := build("/svc/bob/w007")
	envB.FS.Put(seedB, 20, "")
	rep, err := Run(envB.Env, drvB, scheduler.NewFCFS(),
		Config{WorkflowID: "bob-w007", Tenant: "bob", Memo: tab, MemoPrefix: "/svc/bob/w007"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Memoized != 2 {
		t.Fatalf("cross-root run memoized %d of 2 tasks", rep.Memoized)
	}
	if !envB.FS.Readable("/svc/bob/w007/tmp/part") {
		t.Fatal("spliced output missing under tenant B's root")
	}
}
