// Package core implements the Hi-WAY application master (AM): the thin
// layer between workflow specifications in multiple languages and (here,
// simulated) Hadoop YARN described in §3 of the paper.
//
// One AM instance runs one workflow. Its Workflow Driver loop parses the
// workflow, requests a worker container for every ready task, lets the
// Workflow Scheduler pick which task runs in each allocated container, and
// supervises the container lifecycle: (i) obtain input data from HDFS,
// (ii) invoke the task, (iii) store outputs in HDFS for downstream tasks
// possibly running on other nodes. Completed results feed back into the
// driver, which — for iterative languages — may discover entirely new
// tasks. Failed tasks are retried on other compute nodes; provenance is
// emitted at workflow, task, and file granularity.
//
// The fault-tolerance layer adds: per-attempt deadlines derived from
// provenance runtime estimates, after which an attempt is killed and
// retried or raced against a speculative duplicate on another node; node
// health reporting that feeds scheduler blacklists; chaos-driven fault
// injection; an abrupt Kill (the AM process dying); and Resume, which
// reconstructs completed work from the provenance store instead of
// re-executing it.
//
// When Env.Obs is set the AM emits the span hierarchy that OBSERVABILITY.md
// documents — a workflow span, an async span per task, an attempt span per
// container execution with stage-in/exec/stage-out phase children, and
// fault instants for timeouts and kills — alongside the hiway_core_*
// counters (attempts, completions, failures, timeouts, retries,
// speculation launches/wins/losses, recovered tasks). A nil Env.Obs
// disables every hook.
package core
