package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hiway/internal/chaos"
	"hiway/internal/cluster"
	"hiway/internal/hdfs"
	"hiway/internal/memo"
	"hiway/internal/obs"
	"hiway/internal/provenance"
	"hiway/internal/scheduler"
	"hiway/internal/sim"
	"hiway/internal/wf"
	"hiway/internal/yarn"
)

// Env bundles the platform a workflow executes on.
type Env struct {
	Cluster *cluster.Cluster
	FS      *hdfs.FS
	RM      *yarn.ResourceManager
	Prov    *provenance.Manager // optional
	Obs     *obs.Obs            // optional observability; nil disables every hook
}

// HealthReporter receives per-attempt node outcomes; the AM reports every
// success, failure, and timeout. scheduler.NodeHealthTracker implements it
// (and, via scheduler.NodeHealth, feeds the blacklist all policies consult).
type HealthReporter interface {
	ReportSuccess(node string)
	ReportFailure(node string)
}

// Config tunes one workflow execution.
type Config struct {
	// WorkflowID uniquely identifies the run in provenance; derived from
	// the driver name if empty. Resume requires it to match the crashed
	// run's ID.
	WorkflowID string

	// Tenant attributes the workflow's YARN application to a tenant; the
	// RM's TenantPolicy for it (weight, quota cap) then governs the
	// workflow's worker containers. Empty means untenanted.
	Tenant string

	// ContainerVCores/ContainerMemMB size the identical worker containers
	// (the paper's default mode: all containers share one configuration).
	ContainerVCores int // default 1
	ContainerMemMB  int // default 1024

	// SizeContainersByTask enables the future-work mode of §5: containers
	// are custom-tailored to each task's threads and memory demand.
	SizeContainersByTask bool

	// MaxRetries is how many times a failed task is re-tried on another
	// node before the workflow fails. Default 3.
	MaxRetries int

	// AMNode optionally pins the AM container (experiments isolate it on
	// a master node).
	AMNode string

	// Behavior computes what a simulated task produces; defaults to the
	// declared outputs with exit code 0.
	Behavior wf.Behavior

	// FaultInjector, if set, is consulted per attempt; returning true
	// makes that attempt fail (the stand-in for real tool crashes).
	// Superseded by Chaos, which can also hang attempts; both may be set.
	FaultInjector func(t *wf.Task, node string, attempt int) bool

	// Chaos, if set, decides the fate of every attempt (run, crash, or
	// hang forever). chaos.Plan implements it deterministically.
	Chaos chaos.Injector

	// Health, if set, receives the outcome of every attempt per node.
	// When the scheduler is HealthAware and Health implements
	// scheduler.NodeHealth (as NodeHealthTracker does), the AM wires the
	// two together so blacklisted nodes stop receiving tasks.
	Health HealthReporter

	// TaskTimeoutFloorSec enables per-attempt deadlines: an attempt's
	// deadline is max(floor, p95 runtime × TimeoutSlack), with the p95
	// taken from provenance. Zero disables timeouts (and with them,
	// speculation) — a hung attempt then stalls the workflow loudly.
	TaskTimeoutFloorSec float64

	// TimeoutSlack multiplies the p95 runtime estimate; default 3.
	TimeoutSlack float64

	// Speculate launches a duplicate attempt on another node when the
	// deadline passes (at most one duplicate per task) instead of killing
	// the attempt outright; the faster copy wins, the loser is canceled
	// and its container released.
	Speculate bool

	// Audit, if set, observes the AM's task lifecycle so an external
	// invariant auditor (internal/verify) can check ordering and terminal-
	// state properties on every event. Nil disables auditing entirely.
	Audit AuditSink

	// Memo, if set, is the cluster-wide memo table: a submitted task whose
	// canonical key (signature, container profile, canonical input set,
	// declared outputs) hits skips execution entirely and splices the
	// recorded outputs; successful executions matching their declaration
	// commit entries for later runs. Nil disables memoization.
	Memo *memo.Table

	// MemoPrefix is the run-scoped staging prefix stripped from paths when
	// deriving memo keys, so tenant- or run-private staging roots do not
	// fragment the cross-tenant table.
	MemoPrefix string

	// OnTerminal, if set, fires exactly once when the AM terminates with a
	// report (success or failure), after all containers are released and the
	// application is finished. Kill does not fire it (a killed AM leaves no
	// report). The service tier uses it to drive queued→admitted→finished
	// lifecycle accounting.
	OnTerminal func(*Report)
}

// AuditSink observes AM task-lifecycle events. The verify layer's invariant
// auditor implements it; hooks run synchronously inside the AM and must not
// call back into it.
type AuditSink interface {
	// OnTaskSubmitted fires when a ready task is handed to the scheduler
	// (once per task instance; retries do not re-fire it).
	OnTaskSubmitted(now float64, t *wf.Task)
	// OnAttemptStart fires when an attempt begins on a container.
	OnAttemptStart(now float64, t *wf.Task, node string, attempt int)
	// OnAttemptEnd fires when an attempt finishes, is canceled, or is lost.
	// accepted is true only for the attempt whose result completed the task.
	OnAttemptEnd(now float64, t *wf.Task, node string, attempt int, exitCode int, accepted bool)
	// OnTaskCompleted fires exactly once per task, when its first
	// successful attempt is accepted.
	OnTaskCompleted(now float64, t *wf.Task, node string)
	// OnWorkflowEnd fires when the AM terminates, successfully or not.
	OnWorkflowEnd(now float64, succeeded bool)
}

func (c *Config) setDefaults() {
	if c.ContainerVCores <= 0 {
		c.ContainerVCores = 1
	}
	if c.ContainerMemMB <= 0 {
		c.ContainerMemMB = 1024
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.Behavior == nil {
		c.Behavior = wf.DefaultOutcome
	}
	if c.TimeoutSlack <= 0 {
		c.TimeoutSlack = 3
	}
}

// Report summarizes a finished workflow execution.
type Report struct {
	WorkflowID   string
	WorkflowName string
	Scheduler    string

	Start, End  float64
	MakespanSec float64
	Succeeded   bool
	Err         error

	Results    []*wf.TaskResult
	Outputs    []string
	Retries    int
	Containers int64 // worker containers allocated for this workflow

	// Fault-tolerance accounting.
	Recovered   int // tasks reconstructed from provenance by Resume
	TimedOut    int // attempts that hit their deadline
	Speculative int // speculative duplicate attempts launched

	// Memoized counts tasks completed by memo-table splice instead of
	// execution.
	Memoized int
}

// attempt is one container execution of a task. A task has one live attempt
// normally, two while a speculative duplicate races the original.
type attempt struct {
	t   *wf.Task
	c   *yarn.Container
	res *wf.TaskResult
	idx int // zero-based attempt index, unique per task

	job   *sim.Job   // compute phase, cancellable
	timer *sim.Event // pending deadline
	span  obs.SpanID // attempt span, 0 when tracing is off

	canceled bool // killed (timeout kill or superseded by a sibling)
	lost     bool // hosting node died
	done     bool // outcome already processed
}

// dead reports whether the attempt's async callbacks should stop.
func (a *attempt) dead(am *AM) bool {
	return a.canceled || a.lost || a.done || am.finished
}

// AM is one Hi-WAY application master instance.
type AM struct {
	env    Env
	cfg    Config
	driver wf.Driver
	sched  scheduler.Scheduler
	app    *yarn.Application

	attempts   map[int64][]*attempt // task ID → live attempts
	attemptSeq map[int64]int        // task ID → next attempt index
	speculated map[int64]bool       // task ID → duplicate already launched
	completed  map[int64]bool       // task ID → a result was accepted
	retries    map[int64]int
	excluded   map[int64]map[string]bool
	results    []*wf.TaskResult
	containers int64
	retriesSum int

	recovered   int
	timedOut    int
	speculative int

	// memoization state (see memo.go)
	memoIDs        map[string]string // produced path → canonical identity
	memoKeys       map[int64]string  // task ID → derived memo key
	memoized       int               // tasks spliced from the memo table
	pendingSplices int               // hits scheduled but not yet spliced

	start    float64
	finished bool
	killed   bool
	report   *Report

	// observability (all handles nil when Env.Obs is unset — every call
	// below degrades to a nil-receiver no-op)
	tr         *obs.Tracer
	wfSpan     obs.SpanID
	taskSpans  map[int64]obs.SpanID
	attemptsC  *obs.Counter
	completedC *obs.Counter
	failuresC  *obs.Counter
	timeoutsC  *obs.Counter
	specC      *obs.Counter
	specWinC   *obs.Counter
	specLossC  *obs.Counter
	recoveredC *obs.Counter
	retriesC   *obs.Counter
}

// newAM builds the AM, submits its application, parses the workflow, and
// plans static schedules — the plumbing shared by Launch and Resume. It
// returns the initially ready tasks.
func newAM(env Env, driver wf.Driver, sched scheduler.Scheduler, cfg Config) (*AM, []*wf.Task, error) {
	am := &AM{
		env:        env,
		cfg:        cfg,
		driver:     driver,
		sched:      sched,
		attempts:   make(map[int64][]*attempt),
		attemptSeq: make(map[int64]int),
		speculated: make(map[int64]bool),
		completed:  make(map[int64]bool),
		retries:    make(map[int64]int),
		excluded:   make(map[int64]map[string]bool),
		taskSpans:  make(map[int64]obs.SpanID),
		memoIDs:    make(map[string]string),
		memoKeys:   make(map[int64]string),
	}
	am.tr = env.Obs.T()
	m := env.Obs.M()
	am.attemptsC = m.Counter("hiway_core_attempts_total", "task attempts launched, incl. retries and speculation")
	am.completedC = m.Counter("hiway_core_tasks_completed_total", "tasks with an accepted successful result")
	am.failuresC = m.Counter("hiway_core_attempt_failures_total", "attempts that ended in failure")
	am.timeoutsC = m.Counter("hiway_core_attempt_timeouts_total", "attempts that hit their deadline")
	am.specC = m.Counter("hiway_core_speculative_launches_total", "speculative duplicate attempts launched")
	am.specWinC = m.Counter("hiway_core_speculation_wins_total", "speculated tasks won by the duplicate attempt")
	am.specLossC = m.Counter("hiway_core_speculation_losses_total", "speculated tasks won by the original attempt")
	am.recoveredC = m.Counter("hiway_core_recovered_tasks_total", "tasks reconstructed from provenance by Resume")
	am.retriesC = m.Counter("hiway_core_retries_total", "task retries after failed attempts")
	if cfg.Health != nil {
		if ha, ok := sched.(scheduler.HealthAware); ok {
			if nh, ok := cfg.Health.(scheduler.NodeHealth); ok {
				ha.SetNodeHealth(nh)
			}
		}
	}
	app, err := env.RM.SubmitApplicationFor(cfg.Tenant, cfg.WorkflowID, cfg.AMNode)
	if err != nil {
		return nil, nil, fmt.Errorf("core: submitting AM: %w", err)
	}
	am.app = app
	am.start = env.Cluster.Engine.Now()
	am.wfSpan = am.tr.Begin("workflow", cfg.WorkflowID, "workflow", 0)

	ready, err := driver.Parse()
	if err != nil {
		app.Finish()
		return nil, nil, fmt.Errorf("core: parsing workflow %s: %w", driver.Name(), err)
	}
	if planner, ok := sched.(scheduler.StaticPlanner); ok {
		static, ok := driver.(wf.StaticDriver)
		if !ok {
			app.Finish()
			return nil, nil, fmt.Errorf("core: static policy %q cannot run iterative %s workflows (§3.4)", sched.Name(), driver.Name())
		}
		if err := planner.Plan(static.Graph(), am.plannableNodes()); err != nil {
			app.Finish()
			return nil, nil, fmt.Errorf("core: planning: %w", err)
		}
	}
	return am, ready, nil
}

// Launch submits a new AM for the driver's workflow and begins execution.
// The caller advances the simulation engine; once it quiesces (or the
// workflow finishes) the report is available via Report.
func Launch(env Env, driver wf.Driver, sched scheduler.Scheduler, cfg Config) (*AM, error) {
	cfg.setDefaults()
	if cfg.WorkflowID == "" {
		cfg.WorkflowID = fmt.Sprintf("hiway-%s-%d", driver.Name(), wf.NextID())
	}
	am, ready, err := newAM(env, driver, sched, cfg)
	if err != nil {
		return nil, err
	}
	am.provWorkflowStart()
	if len(ready) == 0 && driver.Done() {
		// Degenerate workflow with no work (e.g. mapping over nil).
		am.finish(nil)
		return am, nil
	}
	if len(ready) == 0 {
		am.finish(fmt.Errorf("core: workflow %s has no initially ready tasks", driver.Name()))
		return am, nil
	}
	for _, t := range ready {
		am.submit(t)
	}
	return am, nil
}

// Run launches the workflow and drives the engine until it quiesces,
// returning the final report. It is the synchronous convenience wrapper
// around Launch for callers running one workflow at a time.
func Run(env Env, driver wf.Driver, sched scheduler.Scheduler, cfg Config) (*Report, error) {
	am, err := Launch(env, driver, sched, cfg)
	if err != nil {
		return nil, err
	}
	env.Cluster.Engine.Run()
	return am.Report()
}

// Resume continues a workflow whose AM died mid-run. Completed tasks are
// reconstructed from the provenance store — matched by task signature plus
// input and output paths against the freshly parsed workflow, accepted only if every
// recorded output is still readable in HDFS — and fed back to the driver
// as if they had just finished, so only lost work re-executes. This is the
// operational form of the paper's re-executable traces (§3.5): provenance
// is the recovery substrate, not just a log.
//
// cfg.WorkflowID must be the crashed run's ID, and env must be the same
// substrate (the cluster and HDFS survive an AM crash; only the AM state
// is lost).
func Resume(env Env, driver wf.Driver, sched scheduler.Scheduler, cfg Config, store provenance.Store) (*AM, error) {
	cfg.setDefaults()
	if cfg.WorkflowID == "" {
		return nil, fmt.Errorf("core: Resume needs the crashed run's WorkflowID")
	}
	events, err := store.Events()
	if err != nil {
		return nil, fmt.Errorf("core: reading provenance for resume: %w", err)
	}
	// Successful recorded attempts of this workflow, keyed by signature +
	// input + output paths. Task IDs are process-local and differ across AM
	// incarnations; structure identifies the task.
	recorded := make(map[string][]provenance.Event)
	for _, ev := range events {
		if ev.Type == provenance.TaskEnd && ev.WorkflowID == cfg.WorkflowID && ev.ExitCode == 0 && ev.Error == "" {
			key := recoveryKeyFromEvent(ev)
			recorded[key] = append(recorded[key], ev)
		}
	}

	am, ready, err := newAM(env, driver, sched, cfg)
	if err != nil {
		return nil, err
	}

	// Recover the frontier transitively: a recovered task may unlock
	// successors that are themselves recoverable.
	var torun []*wf.Task
	frontier := ready
	for len(frontier) > 0 {
		var next []*wf.Task
		for _, t := range frontier {
			key := recoveryKey(t.Name, t.Inputs, t.DeclaredPaths())
			evs := recorded[key]
			if len(evs) == 0 || !am.outputsIntact(evs[0]) {
				torun = append(torun, t)
				continue
			}
			ev := evs[0]
			recorded[key] = evs[1:]
			res := synthesizeResult(t, ev)
			am.recovered++
			nts, err := driver.OnTaskComplete(res)
			if err != nil {
				am.finish(err)
				return am, nil
			}
			next = append(next, nts...)
		}
		frontier = next
	}

	am.recoveredC.Add(int64(am.recovered))
	if env.Prov != nil {
		_ = env.Prov.RecordWorkflowResume(cfg.WorkflowID, driver.Name(), env.Cluster.Engine.Now(), am.recovered)
		// Resume is a durability boundary like Kill: the resume marker must
		// be on storage before new attempts start appending.
		_ = env.Prov.Flush()
	}
	if driver.Done() {
		am.finish(nil)
		return am, nil
	}
	if len(torun) == 0 {
		am.finish(fmt.Errorf("core: resume of %s recovered %d tasks but found no runnable work", driver.Name(), am.recovered))
		return am, nil
	}
	for _, t := range torun {
		am.submit(t)
	}
	return am, nil
}

// recoveryKey identifies a task structurally across AM incarnations. Both
// inputs and declared outputs participate: two tasks may share a signature
// and consume the same files yet produce different artifacts (fan-out), and
// matching on inputs alone would let one steal the other's recorded
// completion, marking a task done whose outputs were never materialized.
func recoveryKey(signature string, inputs, outputs []string) string {
	ins := append([]string(nil), inputs...)
	sort.Strings(ins)
	outs := append([]string(nil), outputs...)
	sort.Strings(outs)
	return signature + "\x00" + strings.Join(ins, "\x00") + "\x01" + strings.Join(outs, "\x00")
}

func recoveryKeyFromEvent(ev provenance.Event) string {
	ins := make([]string, 0, len(ev.Inputs))
	for _, in := range ev.Inputs {
		ins = append(ins, in.Path)
	}
	outs := make([]string, 0, len(ev.Outputs))
	for _, out := range ev.Outputs {
		outs = append(outs, out.Path)
	}
	return recoveryKey(ev.Signature, ins, outs)
}

// outputsIntact verifies every output the recorded attempt produced is
// still fully readable in HDFS (a datanode loss may have destroyed blocks
// since the run; such tasks must re-execute).
func (am *AM) outputsIntact(ev provenance.Event) bool {
	for _, out := range ev.Outputs {
		if !am.env.FS.Readable(out.Path) {
			return false
		}
	}
	return true
}

// synthesizeResult rebuilds the TaskResult a recorded attempt would have
// produced, bound to the freshly parsed task object.
func synthesizeResult(t *wf.Task, ev provenance.Event) *wf.TaskResult {
	res := &wf.TaskResult{
		Task:        t,
		Node:        ev.Node,
		Start:       ev.Timestamp - ev.DurationSec,
		End:         ev.Timestamp,
		StageInSec:  ev.StageInSec,
		ExecSec:     ev.ExecSec,
		StageOutSec: ev.StageOutSec,
		Attempt:     ev.Attempt,
		Outputs:     make(map[string][]wf.FileInfo),
	}
	for _, out := range ev.Outputs {
		param := out.Param
		if param == "" {
			param = "out"
		}
		res.Outputs[param] = append(res.Outputs[param], wf.FileInfo{Path: out.Path, SizeMB: out.SizeMB})
	}
	return res
}

// Report returns the execution report; an error if the workflow has not
// terminated (the engine quiesced with work outstanding — a deadlock).
func (am *AM) Report() (*Report, error) {
	if am.report == nil {
		if am.killed {
			return nil, fmt.Errorf("core: AM for workflow %s was killed", am.driver.Name())
		}
		return nil, fmt.Errorf("core: workflow %s stalled: %d attempts running, %d queued, %d requests pending, driver done=%v",
			am.driver.Name(), am.runningAttempts(), am.sched.Queued(), am.app.PendingRequests(), am.driver.Done())
	}
	if am.report.Err != nil {
		return am.report, am.report.Err
	}
	return am.report, nil
}

// Finished reports whether the workflow has terminated (either way).
func (am *AM) Finished() bool { return am.finished }

// CompletedTasks returns the number of successfully completed tasks so far
// (load models and monitors poll it during execution).
func (am *AM) CompletedTasks() int { return len(am.results) }

// RecoveredTasks returns how many tasks Resume reconstructed from
// provenance instead of executing.
func (am *AM) RecoveredTasks() int { return am.recovered }

// AMNodeID returns the node hosting the AM container.
func (am *AM) AMNodeID() string { return am.app.AMContainer.NodeID }

// runningAttempts counts live attempts across all tasks.
func (am *AM) runningAttempts() int {
	n := 0
	for _, list := range am.attempts {
		n += len(list)
	}
	return n
}

// Kill terminates the AM abruptly — the simulated equivalent of the AM
// process dying mid-run. Live attempts stop, every container (workers and
// AM) is released, and deliberately no workflow-end provenance is written:
// the trace is left exactly as a crash leaves it, which is what Resume
// recovers from.
func (am *AM) Kill() {
	if am.finished {
		return
	}
	am.finished = true
	am.killed = true
	am.tr.Instant("fault", "am-killed", "workflow")
	eng := am.env.Cluster.Engine
	ids := make([]int64, 0, len(am.attempts))
	for id := range am.attempts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, a := range am.attempts[id] {
			a.canceled = true
			a.done = true
			if a.timer != nil {
				eng.Cancel(a.timer)
				a.timer = nil
			}
			if a.job != nil {
				a.job.Cancel()
			}
			am.app.Release(a.c)
		}
		delete(am.attempts, id)
	}
	// Task-end provenance is committed at each task boundary in the real
	// system, so it survives an AM crash; flushing the buffered events here
	// models exactly that durability. No workflow-end event is written.
	if am.env.Prov != nil {
		_ = am.env.Prov.Flush()
	}
	am.app.Finish()
}

// plannableNodes lists nodes that can host at least one worker container
// right now — the view a static planner gets.
func (am *AM) plannableNodes() []scheduler.NodeInfo {
	var out []scheduler.NodeInfo
	for _, id := range am.env.RM.LiveNodes() {
		cores, mem := am.env.RM.FreeCapacity(id)
		if cores >= am.cfg.ContainerVCores && mem >= am.cfg.ContainerMemMB {
			out = append(out, scheduler.NodeInfo{ID: id, VCores: cores, MemMB: mem})
		}
	}
	return out
}

// containerResource sizes the container for a task.
func (am *AM) containerResource(t *wf.Task) yarn.Resource {
	if am.cfg.SizeContainersByTask {
		res := yarn.Resource{VCores: t.Threads, MemMB: t.MemMB}
		if res.VCores <= 0 {
			res.VCores = 1
		}
		if res.MemMB <= 0 {
			res.MemMB = am.cfg.ContainerMemMB
		}
		return res
	}
	return yarn.Resource{VCores: am.cfg.ContainerVCores, MemMB: am.cfg.ContainerMemMB}
}

// submit registers a ready task with the scheduler and requests a container.
func (am *AM) submit(t *wf.Task) {
	if am.finished {
		return
	}
	if err := t.Validate(); err != nil {
		am.finish(err)
		return
	}
	if am.tr.Enabled() {
		if _, ok := am.taskSpans[t.ID]; !ok {
			am.taskSpans[t.ID] = am.tr.BeginAsync("task", t.Name, "tasks", am.wfSpan)
		}
	}
	if am.cfg.Audit != nil {
		am.cfg.Audit.OnTaskSubmitted(am.env.Cluster.Engine.Now(), t)
	}
	if am.tryMemoHit(t) {
		return
	}
	am.sched.OnTaskReady(t)
	am.requestContainer(t)
}

// hintAvoiding picks the live node with the most free cores that is not in
// the exclusion set — the destination hint for retried tasks.
func (am *AM) hintAvoiding(excl map[string]bool) string {
	best, bestCores := "", -1
	for _, id := range am.env.RM.LiveNodes() {
		if excl[id] {
			continue
		}
		cores, _ := am.env.RM.FreeCapacity(id)
		if cores > bestCores {
			best, bestCores = id, cores
		}
	}
	return best
}

// retryTarget picks the live node to re-pin a task onto: not excluded,
// preferring one where the task's container currently fits — the AM node,
// for instance, may never have room for a worker container, and a strict
// request pinned there would wait forever.
func (am *AM) retryTarget(t *wf.Task, excl map[string]bool) string {
	res := am.containerResource(t)
	// Capacity our own live attempts hold per node: it will be released
	// when they finish, so a node busy with our work is still viable —
	// unlike the AM node, whose deficit is permanent.
	heldCores := map[string]int{}
	heldMem := map[string]int{}
	for _, list := range am.attempts {
		for _, a := range list {
			heldCores[a.c.NodeID] += a.c.Resource.VCores
			heldMem[a.c.NodeID] += a.c.Resource.MemMB
		}
	}
	best, bestCores := "", -1
	roomy, fallback := "", ""
	for _, id := range am.env.RM.LiveNodes() {
		if excl[id] {
			continue
		}
		if fallback == "" {
			fallback = id
		}
		cores, mem := am.env.RM.FreeCapacity(id)
		if cores >= res.VCores && mem >= res.MemMB && cores > bestCores {
			best, bestCores = id, cores
		}
		if roomy == "" && cores+heldCores[id] >= res.VCores && mem+heldMem[id] >= res.MemMB {
			roomy = id
		}
	}
	switch {
	case best != "":
		return best
	case roomy != "":
		return roomy
	default:
		return fallback
	}
}

// requestContainer asks YARN for a container suitable for t. The request is
// anonymous unless the policy pins tasks or containers are task-sized.
// Tasks with failed attempts steer their request away from excluded nodes.
// A strict request whose pinned node dies while pending is re-planned onto
// a surviving node and re-requested.
func (am *AM) requestContainer(t *wf.Task) {
	hint, strict := am.sched.Placement(t)
	if excl := am.excluded[t.ID]; len(excl) > 0 && !strict {
		if h := am.hintAvoiding(excl); h != "" {
			hint = h
		}
	}
	req := yarn.Request{Resource: am.containerResource(t), NodeHint: hint, Strict: strict}
	if strict {
		req.OnUnplaceable = func(yarn.Request) { am.onUnplaceable(t) }
	}
	if am.cfg.SizeContainersByTask {
		// Task-addressed container: run exactly this task on allocation.
		am.app.Request(req, func(c *yarn.Container) { am.launchAttempt(t, c, false) })
		return
	}
	am.app.Request(req, am.onAnonymousContainer)
}

// onUnplaceable re-routes a task whose strictly pinned node died while the
// container request was pending: the static plan moves to a surviving node
// and the request is reissued there.
func (am *AM) onUnplaceable(t *wf.Task) {
	if am.finished || am.completed[t.ID] {
		return
	}
	live := am.env.RM.LiveNodes()
	if len(live) == 0 {
		am.finish(fmt.Errorf("core: no live nodes left to place %s", t))
		return
	}
	if ra, ok := am.sched.(scheduler.Reassigner); ok {
		target := am.retryTarget(t, am.excluded[t.ID])
		if target == "" {
			target = live[0]
		}
		ra.Reassign(t, target)
	}
	am.requestContainer(t)
}

// onAnonymousContainer matches an allocated container to a queued task via
// the scheduling policy. A nil selection with work still queued means the
// policy declined this node (adaptive-greedy on a known-slow machine, any
// policy on a blacklisted one): release the container and re-request one
// steered elsewhere.
func (am *AM) onAnonymousContainer(c *yarn.Container) {
	task := am.sched.Select(c.NodeID)
	if task == nil {
		am.app.Release(c)
		if !am.finished && am.sched.Queued() > am.app.PendingRequests() {
			hint := am.hintAvoiding(map[string]bool{c.NodeID: true})
			am.app.Request(yarn.Request{
				Resource: yarn.Resource{VCores: am.cfg.ContainerVCores, MemMB: am.cfg.ContainerMemMB},
				NodeHint: hint,
			}, am.onAnonymousContainer)
		}
		return
	}
	am.launchAttempt(task, c, false)
}

// attemptDeadline computes the per-attempt deadline for a task: the
// configured floor, raised to p95 × slack once provenance has runtime
// history for the signature. Zero means no deadline.
func (am *AM) attemptDeadline(t *wf.Task) float64 {
	if am.cfg.TaskTimeoutFloorSec <= 0 {
		return 0
	}
	d := am.cfg.TaskTimeoutFloorSec
	if am.env.Prov != nil {
		if p95, ok := am.env.Prov.RuntimeP95(t.Name); ok {
			if s := p95 * am.cfg.TimeoutSlack; s > d {
				d = s
			}
		}
	}
	return d
}

// fate consults the fault injectors for this attempt.
func (am *AM) fate(t *wf.Task, node string, attempt int) chaos.Fate {
	if am.cfg.FaultInjector != nil && am.cfg.FaultInjector(t, node, attempt) {
		return chaos.FateCrash
	}
	if am.cfg.Chaos != nil {
		return am.cfg.Chaos.TaskFate(t, node, attempt)
	}
	return chaos.FateRun
}

// launchAttempt drives one container lifecycle for the task.
func (am *AM) launchAttempt(t *wf.Task, c *yarn.Container, speculative bool) {
	if am.finished || am.completed[t.ID] {
		am.app.Release(c)
		return
	}
	if am.excluded[t.ID][c.NodeID] && !speculative {
		// The task already failed on this node; re-queue it and ask for a
		// different container (the paper's retry-on-different-node).
		am.sched.OnTaskReady(t)
		am.app.Release(c)
		am.requestContainer(t)
		return
	}
	node := am.env.Cluster.Node(c.NodeID)
	if node == nil {
		am.finish(fmt.Errorf("core: container on unknown node %s", c.NodeID))
		return
	}
	eng := am.env.Cluster.Engine
	idx := am.attemptSeq[t.ID]
	am.attemptSeq[t.ID]++
	a := &attempt{
		t: t, c: c, idx: idx,
		res: &wf.TaskResult{Task: t, Node: c.NodeID, Start: eng.Now(), Attempt: idx, Speculative: speculative},
	}
	am.attempts[t.ID] = append(am.attempts[t.ID], a)
	am.containers++
	am.attemptsC.Inc()
	if am.tr.Enabled() {
		a.span = am.tr.Begin("attempt", t.Name, c.NodeID, am.taskSpans[t.ID])
		am.tr.ArgInt(a.span, "attempt", int64(idx))
		if speculative {
			am.tr.Arg(a.span, "speculative", "true")
		}
	}
	am.provTaskStart(t, c.NodeID, idx)
	if am.cfg.Audit != nil {
		am.cfg.Audit.OnAttemptStart(eng.Now(), t, c.NodeID, idx)
	}

	if d := am.attemptDeadline(t); d > 0 {
		a.timer = eng.ScheduleEphemeral(d, func() { am.onAttemptTimeout(a) })
	}

	c.OnLost = func() {
		if a.dead(am) {
			return
		}
		a.lost = true
		a.res.End = eng.Now()
		a.res.ExitCode = -1
		a.res.Error = fmt.Sprintf("node %s lost during execution", c.NodeID)
		am.onAttemptFinished(a, false)
	}

	stageInStart := eng.Now()
	siSpan := am.tr.Begin("phase", "stage-in", c.NodeID, a.span)
	am.env.FS.Read(c.NodeID, t.Inputs, func(err error) {
		am.tr.End(siSpan)
		if a.dead(am) {
			am.app.Release(c)
			return
		}
		if err != nil {
			a.res.End = eng.Now()
			a.res.ExitCode = 1
			a.res.Error = fmt.Sprintf("stage-in: %v", err)
			am.onAttemptFinished(a, false)
			return
		}
		a.res.StageInSec = eng.Now() - stageInStart

		threads := t.Threads
		if threads > c.Resource.VCores {
			threads = c.Resource.VCores
		}
		fate := am.fate(t, c.NodeID, idx)
		work := t.CPUSeconds
		if fate == chaos.FateHang {
			// A wedged process: computes forever, never calls back. Only
			// the attempt deadline (kill or speculation) recovers from it.
			work = math.Inf(1)
		}
		execStart := eng.Now()
		exSpan := am.tr.Begin("phase", "exec", c.NodeID, a.span)
		a.job = am.env.Cluster.Compute(node, work, threads, func() {
			am.tr.End(exSpan)
			if a.dead(am) {
				am.app.Release(c)
				return
			}
			a.res.ExecSec = eng.Now() - execStart

			if fate == chaos.FateCrash {
				a.res.End = eng.Now()
				a.res.ExitCode = 1
				a.res.Error = "injected fault"
				am.onAttemptFinished(a, false)
				return
			}
			outcome := am.cfg.Behavior(t)
			a.res.ExitCode = outcome.ExitCode
			a.res.Error = outcome.Error
			a.res.Outputs = outcome.Outputs
			if !a.res.Succeeded() {
				a.res.End = eng.Now()
				am.onAttemptFinished(a, false)
				return
			}

			// Stage out every produced file to HDFS.
			stageOutStart := eng.Now()
			files := a.res.OutputFiles()
			pending := len(files)
			if pending == 0 {
				a.res.End = eng.Now()
				am.onAttemptFinished(a, true)
				return
			}
			soSpan := am.tr.Begin("phase", "stage-out", c.NodeID, a.span)
			var writeErr error
			for _, fi := range files {
				am.env.FS.Write(c.NodeID, fi.Path, fi.SizeMB, func(err error) {
					if err != nil && writeErr == nil {
						writeErr = err
					}
					pending--
					if pending > 0 {
						return
					}
					am.tr.End(soSpan)
					if a.dead(am) {
						am.app.Release(c)
						return
					}
					a.res.StageOutSec = eng.Now() - stageOutStart
					a.res.End = eng.Now()
					if writeErr != nil {
						a.res.ExitCode = 1
						a.res.Error = fmt.Sprintf("stage-out: %v", writeErr)
						am.onAttemptFinished(a, false)
						return
					}
					am.onAttemptFinished(a, true)
				})
			}
		})
	})
}

// onAttemptTimeout fires when an attempt outlives its deadline. With
// speculation available the attempt keeps running and a duplicate races it
// from another node; otherwise (or once the task has already speculated)
// every live attempt of the task is killed and the task retries.
func (am *AM) onAttemptTimeout(a *attempt) {
	a.timer = nil
	if a.dead(am) || am.completed[a.t.ID] {
		return
	}
	am.timedOut++
	am.timeoutsC.Inc()
	am.tr.Instant("fault", "attempt-timeout", a.res.Node)
	t := a.t
	if am.cfg.Health != nil {
		am.cfg.Health.ReportFailure(a.res.Node)
	}
	if am.cfg.Speculate && !am.speculated[t.ID] {
		am.speculated[t.ID] = true
		am.speculative++
		am.specC.Inc()
		avoid := map[string]bool{a.res.Node: true}
		for n := range am.excluded[t.ID] {
			avoid[n] = true
		}
		req := yarn.Request{Resource: am.containerResource(t), NodeHint: am.hintAvoiding(avoid)}
		am.app.Request(req, func(c *yarn.Container) { am.launchAttempt(t, c, true) })
		// Re-arm this attempt's deadline: if the duplicate dies too (or
		// never gets a container), the second firing takes the
		// kill-and-retry path instead of leaving a hung attempt behind.
		if d := am.attemptDeadline(t); d > 0 {
			a.timer = am.env.Cluster.Engine.ScheduleEphemeral(d, func() { am.onAttemptTimeout(a) })
		}
		return
	}
	// Kill-and-retry: cancel any sibling attempts first (a sibling is
	// either itself past deadline or about to be superseded by the retry),
	// then fail this attempt through the normal path.
	for _, sib := range append([]*attempt(nil), am.attempts[t.ID]...) {
		if sib != a {
			am.cancelAttempt(sib, "killed after a sibling attempt timed out")
		}
	}
	if a.job != nil {
		a.job.Cancel()
	}
	now := am.env.Cluster.Engine.Now()
	a.res.End = now
	a.res.ExitCode = 124
	a.res.Error = fmt.Sprintf("attempt timed out after %.1fs on %s", now-a.res.Start, a.res.Node)
	am.onAttemptFinished(a, false)
}

// cancelAttempt withdraws a live attempt without routing it through retry:
// its compute job stops contending, its container returns to YARN, and a
// task-end event records why it was killed.
func (am *AM) cancelAttempt(a *attempt, reason string) {
	if a.done || a.canceled {
		return
	}
	a.canceled = true
	a.done = true
	eng := am.env.Cluster.Engine
	if a.timer != nil {
		eng.Cancel(a.timer)
		a.timer = nil
	}
	if a.job != nil {
		a.job.Cancel()
	}
	am.removeAttempt(a)
	a.res.End = eng.Now()
	a.res.ExitCode = 137
	a.res.Error = reason
	am.tr.Arg(a.span, "canceled", "true")
	am.tr.End(a.span)
	am.provTaskEnd(a.res)
	if am.cfg.Audit != nil {
		am.cfg.Audit.OnAttemptEnd(eng.Now(), a.t, a.res.Node, a.idx, a.res.ExitCode, false)
	}
	am.app.Release(a.c)
}

// removeAttempt drops the attempt from the task's live list.
func (am *AM) removeAttempt(a *attempt) {
	list := am.attempts[a.t.ID]
	for i, x := range list {
		if x == a {
			list = append(list[:i:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(am.attempts, a.t.ID)
	} else {
		am.attempts[a.t.ID] = list
	}
}

// onAttemptFinished handles completion (ok) or failure of one attempt.
func (am *AM) onAttemptFinished(a *attempt, ok bool) {
	if a.done {
		return
	}
	a.done = true
	if a.timer != nil {
		am.env.Cluster.Engine.Cancel(a.timer)
		a.timer = nil
	}
	am.removeAttempt(a)
	am.app.Release(a.c)
	am.tr.ArgInt(a.span, "exit", int64(a.res.ExitCode))
	am.tr.End(a.span)
	am.provTaskEnd(a.res)
	if am.cfg.Audit != nil {
		accepted := ok && !am.finished && !am.completed[a.t.ID]
		am.cfg.Audit.OnAttemptEnd(am.env.Cluster.Engine.Now(), a.t, a.res.Node, a.idx, a.res.ExitCode, accepted)
	}
	if am.finished {
		return
	}
	t := a.t

	if ok {
		if am.completed[t.ID] {
			return
		}
		am.completed[t.ID] = true
		am.completedC.Inc()
		if am.cfg.Audit != nil {
			am.cfg.Audit.OnTaskCompleted(am.env.Cluster.Engine.Now(), t, a.res.Node)
		}
		if am.speculated[t.ID] {
			if a.res.Speculative {
				am.specWinC.Inc()
			} else {
				am.specLossC.Inc()
			}
		}
		if ts, open := am.taskSpans[t.ID]; open {
			am.tr.End(ts)
			delete(am.taskSpans, t.ID)
		}
		if am.cfg.Health != nil {
			am.cfg.Health.ReportSuccess(a.res.Node)
		}
		// A speculative race has a loser: cancel it and release its
		// container (no retry — the task is done).
		for _, sib := range append([]*attempt(nil), am.attempts[t.ID]...) {
			am.cancelAttempt(sib, "superseded: a duplicate attempt finished first")
		}
		am.memoCommit(a.res)
		am.results = append(am.results, a.res)
		next, err := am.driver.OnTaskComplete(a.res)
		if err != nil {
			am.finish(err)
			return
		}
		for _, nt := range next {
			am.submit(nt)
		}
		if am.driver.Done() {
			am.finish(nil)
			return
		}
		am.checkStalled()
		return
	}

	// Failure (crash, stage-in/out error, node loss, or timeout kill).
	am.failuresC.Inc()
	if am.cfg.Health != nil {
		am.cfg.Health.ReportFailure(a.res.Node)
	}
	if len(am.attempts[t.ID]) > 0 {
		// A sibling attempt is still racing; it decides the task's fate.
		return
	}
	am.retries[t.ID]++
	am.retriesSum++
	am.retriesC.Inc()
	if am.retries[t.ID] > am.cfg.MaxRetries {
		am.results = append(am.results, a.res)
		am.finish(fmt.Errorf("core: task %s failed %d times (last on %s): %s",
			t, am.retries[t.ID], a.res.Node, a.res.Error))
		return
	}
	// Exclude the failing node and retry elsewhere. If every node is
	// excluded, start over (the node set may be partly dead).
	excl := am.excluded[t.ID]
	if excl == nil {
		excl = make(map[string]bool)
		am.excluded[t.ID] = excl
	}
	excl[a.res.Node] = true
	if len(excl) >= len(am.env.RM.LiveNodes()) {
		am.excluded[t.ID] = make(map[string]bool)
		excl = am.excluded[t.ID]
	}
	// Static plans pin tasks to nodes; move the pin off the failing
	// node so the strict retry request can be satisfied.
	if ra, ok := am.sched.(scheduler.Reassigner); ok {
		if target := am.retryTarget(t, excl); target != "" {
			ra.Reassign(t, target)
		}
	}
	am.sched.OnTaskReady(t)
	am.requestContainer(t)
}

// checkStalled fails the workflow if nothing is running, queued, requested,
// or awaiting a memo splice while the driver still expects progress.
func (am *AM) checkStalled() {
	if len(am.attempts) == 0 && am.sched.Queued() == 0 && am.app.PendingRequests() == 0 && am.pendingSplices == 0 {
		am.finish(fmt.Errorf("core: workflow %s stalled with %d tasks finished", am.driver.Name(), len(am.results)))
	}
}

// finish terminates the workflow and assembles the report.
func (am *AM) finish(err error) {
	if am.finished {
		return
	}
	am.finished = true
	eng := am.env.Cluster.Engine
	am.report = &Report{
		WorkflowID:   am.cfg.WorkflowID,
		WorkflowName: am.driver.Name(),
		Scheduler:    am.sched.Name(),
		Start:        am.start,
		End:          eng.Now(),
		MakespanSec:  eng.Now() - am.start,
		Succeeded:    err == nil,
		Err:          err,
		Results:      am.results,
		Retries:      am.retriesSum,
		Containers:   am.containers,
		Recovered:    am.recovered,
		TimedOut:     am.timedOut,
		Speculative:  am.speculative,
		Memoized:     am.memoized,
	}
	if err == nil {
		am.report.Outputs = am.driver.Outputs()
	}
	// Release any attempts still live (e.g. a failure elsewhere aborted
	// the workflow while attempts were in flight).
	ids := make([]int64, 0, len(am.attempts))
	for id := range am.attempts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, a := range am.attempts[id] {
			a.canceled = true
			a.done = true
			if a.timer != nil {
				eng.Cancel(a.timer)
				a.timer = nil
			}
			if a.job != nil {
				a.job.Cancel()
			}
			am.app.Release(a.c)
		}
		delete(am.attempts, id)
	}
	if err == nil {
		am.tr.Arg(am.wfSpan, "succeeded", "true")
	} else {
		am.tr.Arg(am.wfSpan, "succeeded", "false")
	}
	am.tr.End(am.wfSpan)
	am.provWorkflowEnd(err == nil)
	if am.cfg.Audit != nil {
		am.cfg.Audit.OnWorkflowEnd(eng.Now(), err == nil)
	}
	// Workflow completion is a durability boundary: hand buffered
	// provenance to the store before the AM goes away.
	if am.env.Prov != nil {
		_ = am.env.Prov.Flush()
	}
	am.app.Finish()
	if am.cfg.OnTerminal != nil {
		am.cfg.OnTerminal(am.report)
	}
}

func (am *AM) provWorkflowStart() {
	if am.env.Prov == nil {
		return
	}
	_ = am.env.Prov.RecordWorkflowStart(am.cfg.WorkflowID, am.driver.Name(), am.env.Cluster.Engine.Now())
}

func (am *AM) provWorkflowEnd(ok bool) {
	if am.env.Prov == nil {
		return
	}
	now := am.env.Cluster.Engine.Now()
	_ = am.env.Prov.RecordWorkflowEnd(am.cfg.WorkflowID, am.driver.Name(), now, now-am.start, ok)
}

func (am *AM) provTaskStart(t *wf.Task, node string, attempt int) {
	if am.env.Prov == nil {
		return
	}
	_ = am.env.Prov.RecordTaskStart(am.cfg.WorkflowID, am.driver.Name(), t, node, attempt, am.env.Cluster.Engine.Now())
}

func (am *AM) provTaskEnd(res *wf.TaskResult) {
	if am.env.Prov == nil {
		return
	}
	sizes := make(map[string]float64, len(res.Task.Inputs))
	for _, in := range res.Task.Inputs {
		if f, ok := am.env.FS.Stat(in); ok {
			sizes[in] = f.SizeMB
		}
	}
	_ = am.env.Prov.RecordTaskEnd(am.cfg.WorkflowID, am.driver.Name(), res, sizes)
}
