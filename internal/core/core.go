// Package core implements the Hi-WAY application master (AM): the thin
// layer between workflow specifications in multiple languages and (here,
// simulated) Hadoop YARN described in §3 of the paper.
//
// One AM instance runs one workflow. Its Workflow Driver loop parses the
// workflow, requests a worker container for every ready task, lets the
// Workflow Scheduler pick which task runs in each allocated container, and
// supervises the container lifecycle: (i) obtain input data from HDFS,
// (ii) invoke the task, (iii) store outputs in HDFS for downstream tasks
// possibly running on other nodes. Completed results feed back into the
// driver, which — for iterative languages — may discover entirely new
// tasks. Failed tasks are retried on other compute nodes; provenance is
// emitted at workflow, task, and file granularity.
package core

import (
	"fmt"

	"hiway/internal/cluster"
	"hiway/internal/hdfs"
	"hiway/internal/provenance"
	"hiway/internal/scheduler"
	"hiway/internal/wf"
	"hiway/internal/yarn"
)

// Env bundles the platform a workflow executes on.
type Env struct {
	Cluster *cluster.Cluster
	FS      *hdfs.FS
	RM      *yarn.ResourceManager
	Prov    *provenance.Manager // optional
}

// Config tunes one workflow execution.
type Config struct {
	// WorkflowID uniquely identifies the run in provenance; derived from
	// the driver name if empty.
	WorkflowID string

	// ContainerVCores/ContainerMemMB size the identical worker containers
	// (the paper's default mode: all containers share one configuration).
	ContainerVCores int // default 1
	ContainerMemMB  int // default 1024

	// SizeContainersByTask enables the future-work mode of §5: containers
	// are custom-tailored to each task's threads and memory demand.
	SizeContainersByTask bool

	// MaxRetries is how many times a failed task is re-tried on another
	// node before the workflow fails. Default 3.
	MaxRetries int

	// AMNode optionally pins the AM container (experiments isolate it on
	// a master node).
	AMNode string

	// Behavior computes what a simulated task produces; defaults to the
	// declared outputs with exit code 0.
	Behavior wf.Behavior

	// FaultInjector, if set, is consulted per attempt; returning true
	// makes that attempt fail (the stand-in for real tool crashes).
	FaultInjector func(t *wf.Task, node string, attempt int) bool
}

func (c *Config) setDefaults() {
	if c.ContainerVCores <= 0 {
		c.ContainerVCores = 1
	}
	if c.ContainerMemMB <= 0 {
		c.ContainerMemMB = 1024
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.Behavior == nil {
		c.Behavior = wf.DefaultOutcome
	}
}

// Report summarizes a finished workflow execution.
type Report struct {
	WorkflowID   string
	WorkflowName string
	Scheduler    string

	Start, End  float64
	MakespanSec float64
	Succeeded   bool
	Err         error

	Results    []*wf.TaskResult
	Outputs    []string
	Retries    int
	Containers int64 // worker containers allocated for this workflow
}

// AM is one Hi-WAY application master instance.
type AM struct {
	env    Env
	cfg    Config
	driver wf.Driver
	sched  scheduler.Scheduler
	app    *yarn.Application

	running    map[int64]bool
	retries    map[int64]int
	excluded   map[int64]map[string]bool
	results    []*wf.TaskResult
	containers int64
	retriesSum int

	start    float64
	finished bool
	report   *Report
}

// Launch submits a new AM for the driver's workflow and begins execution.
// The caller advances the simulation engine; once it quiesces (or the
// workflow finishes) the report is available via Report.
func Launch(env Env, driver wf.Driver, sched scheduler.Scheduler, cfg Config) (*AM, error) {
	cfg.setDefaults()
	if cfg.WorkflowID == "" {
		cfg.WorkflowID = fmt.Sprintf("hiway-%s-%d", driver.Name(), wf.NextID())
	}
	am := &AM{
		env:      env,
		cfg:      cfg,
		driver:   driver,
		sched:    sched,
		running:  make(map[int64]bool),
		retries:  make(map[int64]int),
		excluded: make(map[int64]map[string]bool),
	}
	app, err := env.RM.SubmitApplication(cfg.WorkflowID, cfg.AMNode)
	if err != nil {
		return nil, fmt.Errorf("core: submitting AM: %w", err)
	}
	am.app = app
	am.start = env.Cluster.Engine.Now()
	am.provWorkflowStart()

	ready, err := driver.Parse()
	if err != nil {
		app.Finish()
		return nil, fmt.Errorf("core: parsing workflow %s: %w", driver.Name(), err)
	}
	if planner, ok := sched.(scheduler.StaticPlanner); ok {
		static, ok := driver.(wf.StaticDriver)
		if !ok {
			app.Finish()
			return nil, fmt.Errorf("core: static policy %q cannot run iterative %s workflows (§3.4)", sched.Name(), driver.Name())
		}
		if err := planner.Plan(static.Graph(), am.plannableNodes()); err != nil {
			app.Finish()
			return nil, fmt.Errorf("core: planning: %w", err)
		}
	}
	if len(ready) == 0 && driver.Done() {
		// Degenerate workflow with no work (e.g. mapping over nil).
		am.finish(nil)
		return am, nil
	}
	if len(ready) == 0 {
		am.finish(fmt.Errorf("core: workflow %s has no initially ready tasks", driver.Name()))
		return am, nil
	}
	for _, t := range ready {
		am.submit(t)
	}
	return am, nil
}

// Run launches the workflow and drives the engine until it quiesces,
// returning the final report. It is the synchronous convenience wrapper
// around Launch for callers running one workflow at a time.
func Run(env Env, driver wf.Driver, sched scheduler.Scheduler, cfg Config) (*Report, error) {
	am, err := Launch(env, driver, sched, cfg)
	if err != nil {
		return nil, err
	}
	env.Cluster.Engine.Run()
	return am.Report()
}

// Report returns the execution report; an error if the workflow has not
// terminated (the engine quiesced with work outstanding — a deadlock).
func (am *AM) Report() (*Report, error) {
	if am.report == nil {
		return nil, fmt.Errorf("core: workflow %s stalled: %d running, %d queued, %d requests pending, driver done=%v",
			am.driver.Name(), len(am.running), am.sched.Queued(), am.app.PendingRequests(), am.driver.Done())
	}
	if am.report.Err != nil {
		return am.report, am.report.Err
	}
	return am.report, nil
}

// Finished reports whether the workflow has terminated (either way).
func (am *AM) Finished() bool { return am.finished }

// CompletedTasks returns the number of successfully completed tasks so far
// (load models and monitors poll it during execution).
func (am *AM) CompletedTasks() int { return len(am.results) }

// AMNodeID returns the node hosting the AM container.
func (am *AM) AMNodeID() string { return am.app.AMContainer.NodeID }

// plannableNodes lists nodes that can host at least one worker container
// right now — the view a static planner gets.
func (am *AM) plannableNodes() []scheduler.NodeInfo {
	var out []scheduler.NodeInfo
	for _, id := range am.env.RM.LiveNodes() {
		cores, mem := am.env.RM.FreeCapacity(id)
		if cores >= am.cfg.ContainerVCores && mem >= am.cfg.ContainerMemMB {
			out = append(out, scheduler.NodeInfo{ID: id, VCores: cores, MemMB: mem})
		}
	}
	return out
}

// containerResource sizes the container for a task.
func (am *AM) containerResource(t *wf.Task) yarn.Resource {
	if am.cfg.SizeContainersByTask {
		res := yarn.Resource{VCores: t.Threads, MemMB: t.MemMB}
		if res.VCores <= 0 {
			res.VCores = 1
		}
		if res.MemMB <= 0 {
			res.MemMB = am.cfg.ContainerMemMB
		}
		return res
	}
	return yarn.Resource{VCores: am.cfg.ContainerVCores, MemMB: am.cfg.ContainerMemMB}
}

// submit registers a ready task with the scheduler and requests a container.
func (am *AM) submit(t *wf.Task) {
	if am.finished {
		return
	}
	if err := t.Validate(); err != nil {
		am.finish(err)
		return
	}
	am.sched.OnTaskReady(t)
	am.requestContainer(t)
}

// hintAvoiding picks the live node with the most free cores that is not in
// the exclusion set — the destination hint for retried tasks.
func (am *AM) hintAvoiding(excl map[string]bool) string {
	best, bestCores := "", -1
	for _, id := range am.env.RM.LiveNodes() {
		if excl[id] {
			continue
		}
		cores, _ := am.env.RM.FreeCapacity(id)
		if cores > bestCores {
			best, bestCores = id, cores
		}
	}
	return best
}

// requestContainer asks YARN for a container suitable for t. The request is
// anonymous unless the policy pins tasks or containers are task-sized.
// Tasks with failed attempts steer their request away from excluded nodes.
func (am *AM) requestContainer(t *wf.Task) {
	hint, strict := am.sched.Placement(t)
	if excl := am.excluded[t.ID]; len(excl) > 0 && !strict {
		if h := am.hintAvoiding(excl); h != "" {
			hint = h
		}
	}
	req := yarn.Request{Resource: am.containerResource(t), NodeHint: hint, Strict: strict}
	if am.cfg.SizeContainersByTask {
		// Task-addressed container: run exactly this task on allocation.
		am.app.Request(req, func(c *yarn.Container) { am.launchTask(t, c) })
		return
	}
	am.app.Request(req, am.onAnonymousContainer)
}

// onAnonymousContainer matches an allocated container to a queued task via
// the scheduling policy. A nil selection with work still queued means the
// policy declined this node (e.g. adaptive-greedy on a known-slow machine):
// release the container and re-request one steered elsewhere.
func (am *AM) onAnonymousContainer(c *yarn.Container) {
	task := am.sched.Select(c.NodeID)
	if task == nil {
		am.app.Release(c)
		if !am.finished && am.sched.Queued() > am.app.PendingRequests() {
			hint := am.hintAvoiding(map[string]bool{c.NodeID: true})
			am.app.Request(yarn.Request{
				Resource: yarn.Resource{VCores: am.cfg.ContainerVCores, MemMB: am.cfg.ContainerMemMB},
				NodeHint: hint,
			}, am.onAnonymousContainer)
		}
		return
	}
	am.launchTask(task, c)
}

// launchTask drives one container lifecycle for the task.
func (am *AM) launchTask(t *wf.Task, c *yarn.Container) {
	if am.finished {
		am.app.Release(c)
		return
	}
	if am.excluded[t.ID][c.NodeID] {
		// The task already failed on this node; re-queue it and ask for a
		// different container (the paper's retry-on-different-node).
		am.sched.OnTaskReady(t)
		am.app.Release(c)
		am.requestContainer(t)
		return
	}
	node := am.env.Cluster.Node(c.NodeID)
	if node == nil {
		am.finish(fmt.Errorf("core: container on unknown node %s", c.NodeID))
		return
	}
	am.running[t.ID] = true
	am.containers++
	eng := am.env.Cluster.Engine
	res := &wf.TaskResult{Task: t, Node: c.NodeID, Start: eng.Now()}
	am.provTaskStart(t, c.NodeID)

	lost := false
	c.OnLost = func() {
		lost = true
		res.End = eng.Now()
		res.ExitCode = -1
		res.Error = fmt.Sprintf("node %s lost during execution", c.NodeID)
		am.onTaskFinished(t, c, res, false)
	}

	stageInStart := eng.Now()
	am.env.FS.Read(c.NodeID, t.Inputs, func(err error) {
		if lost || am.finished {
			am.app.Release(c)
			return
		}
		if err != nil {
			res.End = eng.Now()
			res.ExitCode = 1
			res.Error = fmt.Sprintf("stage-in: %v", err)
			am.onTaskFinished(t, c, res, false)
			return
		}
		res.StageInSec = eng.Now() - stageInStart

		threads := t.Threads
		if threads > c.Resource.VCores {
			threads = c.Resource.VCores
		}
		execStart := eng.Now()
		am.env.Cluster.Compute(node, t.CPUSeconds, threads, func() {
			if lost || am.finished {
				am.app.Release(c)
				return
			}
			res.ExecSec = eng.Now() - execStart

			attempt := am.retries[t.ID]
			if am.cfg.FaultInjector != nil && am.cfg.FaultInjector(t, c.NodeID, attempt) {
				res.End = eng.Now()
				res.ExitCode = 1
				res.Error = "injected fault"
				am.onTaskFinished(t, c, res, false)
				return
			}
			outcome := am.cfg.Behavior(t)
			res.ExitCode = outcome.ExitCode
			res.Error = outcome.Error
			res.Outputs = outcome.Outputs
			if !res.Succeeded() {
				res.End = eng.Now()
				am.onTaskFinished(t, c, res, false)
				return
			}

			// Stage out every produced file to HDFS.
			stageOutStart := eng.Now()
			files := res.OutputFiles()
			pending := len(files)
			if pending == 0 {
				res.End = eng.Now()
				am.onTaskFinished(t, c, res, true)
				return
			}
			var writeErr error
			for _, fi := range files {
				am.env.FS.Write(c.NodeID, fi.Path, fi.SizeMB, func(err error) {
					if err != nil && writeErr == nil {
						writeErr = err
					}
					pending--
					if pending > 0 {
						return
					}
					if lost || am.finished {
						am.app.Release(c)
						return
					}
					res.StageOutSec = eng.Now() - stageOutStart
					res.End = eng.Now()
					if writeErr != nil {
						res.ExitCode = 1
						res.Error = fmt.Sprintf("stage-out: %v", writeErr)
						am.onTaskFinished(t, c, res, false)
						return
					}
					am.onTaskFinished(t, c, res, true)
				})
			}
		})
	})
}

// onTaskFinished handles completion (ok) or failure of one attempt.
func (am *AM) onTaskFinished(t *wf.Task, c *yarn.Container, res *wf.TaskResult, ok bool) {
	delete(am.running, t.ID)
	am.app.Release(c)
	am.provTaskEnd(res)
	if am.finished {
		return
	}

	if !ok {
		am.retries[t.ID]++
		am.retriesSum++
		if am.retries[t.ID] > am.cfg.MaxRetries {
			am.results = append(am.results, res)
			am.finish(fmt.Errorf("core: task %s failed %d times (last on %s): %s",
				t, am.retries[t.ID], res.Node, res.Error))
			return
		}
		// Exclude the failing node and retry elsewhere. If every node is
		// excluded, start over (the node set may be partly dead).
		excl := am.excluded[t.ID]
		if excl == nil {
			excl = make(map[string]bool)
			am.excluded[t.ID] = excl
		}
		excl[res.Node] = true
		if len(excl) >= len(am.env.RM.LiveNodes()) {
			am.excluded[t.ID] = make(map[string]bool)
			excl = am.excluded[t.ID]
		}
		// Static plans pin tasks to nodes; move the pin off the failing
		// node so the strict retry request can be satisfied.
		if ra, ok := am.sched.(scheduler.Reassigner); ok {
			for _, id := range am.env.RM.LiveNodes() {
				if !excl[id] {
					ra.Reassign(t, id)
					break
				}
			}
		}
		am.sched.OnTaskReady(t)
		am.requestContainer(t)
		return
	}

	am.results = append(am.results, res)
	next, err := am.driver.OnTaskComplete(res)
	if err != nil {
		am.finish(err)
		return
	}
	for _, nt := range next {
		am.submit(nt)
	}
	if am.driver.Done() {
		am.finish(nil)
		return
	}
	// Deadlock check: nothing running, nothing queued, nothing requested,
	// but the driver still expects progress.
	if len(am.running) == 0 && am.sched.Queued() == 0 && am.app.PendingRequests() == 0 {
		am.finish(fmt.Errorf("core: workflow %s stalled with %d tasks finished", am.driver.Name(), len(am.results)))
	}
}

// finish terminates the workflow and assembles the report.
func (am *AM) finish(err error) {
	if am.finished {
		return
	}
	am.finished = true
	eng := am.env.Cluster.Engine
	am.report = &Report{
		WorkflowID:   am.cfg.WorkflowID,
		WorkflowName: am.driver.Name(),
		Scheduler:    am.sched.Name(),
		Start:        am.start,
		End:          eng.Now(),
		MakespanSec:  eng.Now() - am.start,
		Succeeded:    err == nil,
		Err:          err,
		Results:      am.results,
		Retries:      am.retriesSum,
		Containers:   am.containers,
	}
	if err == nil {
		am.report.Outputs = am.driver.Outputs()
	}
	am.provWorkflowEnd(err == nil)
	am.app.Finish()
}

func (am *AM) provWorkflowStart() {
	if am.env.Prov == nil {
		return
	}
	_ = am.env.Prov.RecordWorkflowStart(am.cfg.WorkflowID, am.driver.Name(), am.env.Cluster.Engine.Now())
}

func (am *AM) provWorkflowEnd(ok bool) {
	if am.env.Prov == nil {
		return
	}
	now := am.env.Cluster.Engine.Now()
	_ = am.env.Prov.RecordWorkflowEnd(am.cfg.WorkflowID, am.driver.Name(), now, now-am.start, ok)
}

func (am *AM) provTaskStart(t *wf.Task, node string) {
	if am.env.Prov == nil {
		return
	}
	_ = am.env.Prov.RecordTaskStart(am.cfg.WorkflowID, am.driver.Name(), t, node, am.env.Cluster.Engine.Now())
}

func (am *AM) provTaskEnd(res *wf.TaskResult) {
	if am.env.Prov == nil {
		return
	}
	sizes := make(map[string]float64, len(res.Task.Inputs))
	for _, in := range res.Task.Inputs {
		if f, ok := am.env.FS.Stat(in); ok {
			sizes[in] = f.SizeMB
		}
	}
	_ = am.env.Prov.RecordTaskEnd(am.cfg.WorkflowID, am.driver.Name(), res, sizes)
}
