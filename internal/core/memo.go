package core

import (
	"strings"

	"hiway/internal/memo"
	"hiway/internal/provenance"
	"hiway/internal/wf"
)

// This file integrates the cluster-wide memo table (internal/memo) into the
// AM's task lifecycle. At submit time each task derives a canonical memo
// key; a hit short-circuits execution entirely — the recorded outputs are
// spliced into HDFS and the driver sees a synthesized completion with no
// attempt, no node, and no simulated time spent. Successful executions
// whose produced outputs exactly match their declaration commit entries, so
// later runs (any tenant, unless opted out) can skip them.

// memoEnabled reports whether this AM participates in memoization at all.
func (am *AM) memoEnabled() bool {
	return am.cfg.Memo != nil && !am.cfg.Memo.OptedOut(am.cfg.Tenant)
}

// memoCanon strips the run-scoped staging prefix from a path, so the same
// pipeline submitted under /svc/tenantA/w003 and /svc/tenantB/w017 derives
// identical keys.
func (am *AM) memoCanon(path string) string {
	if am.cfg.MemoPrefix != "" {
		return strings.TrimPrefix(path, am.cfg.MemoPrefix)
	}
	return path
}

// inputIdentity resolves one input path to its canonical identity: the
// producer-derived identity when a task of this run produced it, else the
// staged identity (canonical path + size) of the file in HDFS. ok is false
// when the file is unknown, which disables memoization for the consumer.
func (am *AM) inputIdentity(path string) (string, bool) {
	if id, ok := am.memoIDs[path]; ok {
		return id, true
	}
	f, ok := am.env.FS.Stat(path)
	if !ok {
		return "", false
	}
	return memo.StagedIdentity(am.memoCanon(path), f.SizeMB), true
}

// memoKey derives the canonical memo key for a task: signature, container
// profile, canonical input identities, and declared outputs. ok is false
// when any input cannot be identified; such tasks execute normally.
func (am *AM) memoKey(t *wf.Task) (string, bool) {
	res := am.containerResource(t)
	k := memo.Key{
		Sig:     t.Name,
		Profile: memo.Profile{VCores: res.VCores, MemMB: res.MemMB},
	}
	for _, in := range t.Inputs {
		id, ok := am.inputIdentity(in)
		if !ok {
			return "", false
		}
		k.Inputs = append(k.Inputs, id)
	}
	for _, fi := range t.DeclaredOutputs() {
		k.Outputs = append(k.Outputs, memo.OutputID{Path: am.memoCanon(fi.Path), SizeMB: fi.SizeMB})
	}
	return k.Encode(), true
}

// tryMemoHit consults the memo table for a freshly submitted task. On a hit
// the splice is deferred through the engine (delay 0) so deep chains of
// hitting tasks unwind iteratively rather than recursing through submit;
// pendingSplices keeps checkStalled honest in the gap. The derived key is
// remembered either way for the commit after a real execution.
func (am *AM) tryMemoHit(t *wf.Task) bool {
	if !am.memoEnabled() {
		return false
	}
	key, ok := am.memoKey(t)
	if !ok {
		return false
	}
	am.memoKeys[t.ID] = key
	entry, ok := am.cfg.Memo.Lookup(key)
	if !ok {
		return false
	}
	am.pendingSplices++
	am.env.Cluster.Engine.ScheduleEphemeral(0, func() { am.spliceMemoHit(t, key, entry) })
	return true
}

// registerProducedIdentities binds each produced file to its
// producer-derived identity, so downstream tasks key on "output #i of task
// <key>" — equal across runs and tenants — rather than on raw paths.
func (am *AM) registerProducedIdentities(key string, t *wf.Task, outputs map[string][]wf.FileInfo) {
	for _, param := range t.OutputParams {
		for idx, fi := range outputs[param] {
			am.memoIDs[fi.Path] = memo.ProducedIdentity(key, param, idx)
		}
	}
}

// spliceMemoHit completes a task from the memo table: the declared outputs
// are registered in HDFS as externally materialized files (no simulated
// I/O — they come from the provenance store, not a worker), a result with
// no node and no duration is accepted, and the task-end provenance event
// carries the memo attribution.
func (am *AM) spliceMemoHit(t *wf.Task, key string, e memo.Entry) {
	am.pendingSplices--
	if am.finished || am.completed[t.ID] {
		return
	}
	now := am.env.Cluster.Engine.Now()
	outs := make(map[string][]wf.FileInfo, len(t.OutputParams))
	for _, param := range t.OutputParams {
		for _, fi := range t.Declared[param] {
			am.env.FS.PutExternal(fi.Path, fi.SizeMB)
			outs[param] = append(outs[param], fi)
		}
	}
	res := &wf.TaskResult{
		Task:    t,
		Start:   now,
		End:     now,
		Outputs: outs,
	}
	am.completed[t.ID] = true
	am.completedC.Inc()
	am.memoized++
	if am.cfg.Audit != nil {
		am.cfg.Audit.OnTaskCompleted(now, t, "")
	}
	if ts, open := am.taskSpans[t.ID]; open {
		am.tr.Arg(ts, "memo", "hit")
		am.tr.End(ts)
		delete(am.taskSpans, t.ID)
	}
	am.provMemoHit(res, e)
	am.results = append(am.results, res)
	am.registerProducedIdentities(key, t, outs)
	next, err := am.driver.OnTaskComplete(res)
	if err != nil {
		am.finish(err)
		return
	}
	for _, nt := range next {
		am.submit(nt)
	}
	if am.driver.Done() {
		am.finish(nil)
		return
	}
	am.checkStalled()
}

// memoCommit runs after a real execution succeeded: produced files get
// producer identities, and — when the outcome exactly matches the
// declaration, so replaying the declaration reproduces it — an entry is
// committed to the table. Dynamic outcomes (aggregate outputs that differ
// from the declaration) are never memoized.
func (am *AM) memoCommit(res *wf.TaskResult) {
	if !am.memoEnabled() {
		return
	}
	t := res.Task
	key, ok := am.memoKeys[t.ID]
	if !ok {
		return
	}
	am.registerProducedIdentities(key, t, res.Outputs)
	if !outcomeMatchesDeclaration(t, res.Outputs) {
		return
	}
	_ = am.cfg.Memo.Commit(key, memo.Entry{
		SourceWF:     am.cfg.WorkflowID,
		SourceTenant: am.cfg.Tenant,
		CPUSeconds:   t.CPUSeconds,
		DurationSec:  res.End - res.Start,
	})
}

// outcomeMatchesDeclaration reports whether a result produced exactly the
// declared files (per parameter, in order, path and size) — the condition
// under which a memo hit can splice the declaration in place of execution.
func outcomeMatchesDeclaration(t *wf.Task, outputs map[string][]wf.FileInfo) bool {
	for _, param := range t.OutputParams {
		decl := t.Declared[param]
		got := outputs[param]
		if len(decl) != len(got) {
			return false
		}
		for i := range decl {
			if decl[i] != got[i] {
				return false
			}
		}
	}
	return len(outputs) <= len(t.OutputParams)
}

// provMemoHit records the task-end event for a spliced completion, marked
// with the memo attribution the provenance queries surface.
func (am *AM) provMemoHit(res *wf.TaskResult, e memo.Entry) {
	if am.env.Prov == nil {
		return
	}
	sizes := make(map[string]float64, len(res.Task.Inputs))
	for _, in := range res.Task.Inputs {
		if f, ok := am.env.FS.Stat(in); ok {
			sizes[in] = f.SizeMB
		}
	}
	ev := provenance.TaskEndEvent(am.cfg.WorkflowID, am.driver.Name(), res, sizes)
	ev.MemoHit = true
	ev.MemoSource = e.SourceWF
	_ = am.env.Prov.Record(ev)
}
