package core

import (
	"strings"
	"testing"

	"hiway/internal/scheduler"
)

func runChainForReport(t *testing.T) *Report {
	t.Helper()
	env := newEnv(t, 3, spec(), 1000)
	env.FS.Put("/in/seed", 20, "")
	rep, err := Run(env.Env, chainDriver(t, 4), scheduler.NewFCFS(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestTimelineCSV(t *testing.T) {
	rep := runChainForReport(t)
	csv := rep.TimelineCSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(rep.Results) {
		t.Fatalf("csv lines = %d, want %d", len(lines), 1+len(rep.Results))
	}
	if !strings.HasPrefix(lines[0], "task_id,signature,node,") {
		t.Fatalf("header = %q", lines[0])
	}
	// Rows sorted by start time.
	if !strings.Contains(lines[1], "prep") {
		t.Fatalf("first row should be prep: %q", lines[1])
	}
	for _, l := range lines[1:] {
		if cols := strings.Split(l, ","); len(cols) != 9 {
			t.Fatalf("row %q has %d columns", l, len(cols))
		}
	}
}

func TestGantt(t *testing.T) {
	rep := runChainForReport(t)
	g := rep.Gantt(60)
	if !strings.Contains(g, "makespan") {
		t.Fatalf("gantt = %q", g)
	}
	// Every node that ran a task has a row; rows contain task initials.
	nodes := map[string]bool{}
	for _, res := range rep.Results {
		nodes[res.Node] = true
	}
	for n := range nodes {
		if !strings.Contains(g, n) {
			t.Fatalf("gantt missing node %s:\n%s", n, g)
		}
	}
	if !strings.Contains(g, "w") { // "work" tasks
		t.Fatalf("gantt missing task marks:\n%s", g)
	}
	// Degenerate width falls back to the default.
	if out := rep.Gantt(0); !strings.Contains(out, "makespan") {
		t.Fatal("zero width should fall back")
	}
	empty := &Report{}
	if out := empty.Gantt(40); !strings.Contains(out, "empty") {
		t.Fatalf("empty report gantt = %q", out)
	}
}

func TestSummary(t *testing.T) {
	rep := runChainForReport(t)
	s := rep.Summary()
	for _, want := range []string{"succeeded", "work×4", "prep×1", "fcfs", "containers"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q: %s", want, s)
		}
	}
	failed := &Report{WorkflowName: "x", Scheduler: "fcfs", Err: errTest}
	if !strings.Contains(failed.Summary(), "FAILED") {
		t.Fatalf("failed summary = %q", failed.Summary())
	}
}

var errTest = errFor("boom")

type errFor string

func (e errFor) Error() string { return string(e) }
