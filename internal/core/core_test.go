package core

import (
	"fmt"
	"strings"
	"testing"

	"hiway/internal/cluster"
	"hiway/internal/hdfs"
	"hiway/internal/lang/cuneiform"
	"hiway/internal/lang/dax"
	"hiway/internal/provenance"
	"hiway/internal/scheduler"
	"hiway/internal/sim"
	"hiway/internal/wf"
	"hiway/internal/yarn"
)

type testEnv struct {
	Env
	eng *sim.Engine
}

func newEnv(t *testing.T, nodes int, spec cluster.NodeSpec, switchMBps float64) *testEnv {
	t.Helper()
	eng := sim.NewEngine()
	c, err := cluster.Uniform(eng, cluster.Config{SwitchMBps: switchMBps, ExternalPerFlowMBps: 50}, nodes, spec)
	if err != nil {
		t.Fatal(err)
	}
	fs := hdfs.New(c, hdfs.Config{BlockSizeMB: 64, Replication: 2}, 42)
	rm := yarn.NewResourceManager(eng, c, yarn.Config{})
	prov, err := provenance.NewManager(provenance.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{Env: Env{Cluster: c, FS: fs, RM: rm, Prov: prov}, eng: eng}
}

func spec() cluster.NodeSpec {
	return cluster.NodeSpec{VCores: 4, MemMB: 8192, CPUFactor: 1, DiskMBps: 200, NetMBps: 200}
}

// chainDriver returns a static driver: prep → work ×n → merge.
func chainDriver(t *testing.T, n int) wf.StaticDriver {
	t.Helper()
	prep := wf.NewTask("prep", []string{"/in/seed"}, []wf.FileInfo{{Path: "/tmp/split", SizeMB: 10}})
	prep.CPUSeconds = 5
	tasks := []*wf.Task{prep}
	var mergeIn []string
	for i := 0; i < n; i++ {
		out := fmt.Sprintf("/tmp/part%d", i)
		w := wf.NewTask("work", []string{"/tmp/split"}, []wf.FileInfo{{Path: out, SizeMB: 5}})
		w.CPUSeconds = 20
		tasks = append(tasks, w)
		mergeIn = append(mergeIn, out)
	}
	merge := wf.NewTask("merge", mergeIn, []wf.FileInfo{{Path: "/tmp/result", SizeMB: 1}})
	merge.CPUSeconds = 2
	tasks = append(tasks, merge)
	sb := &wf.StaticBase{WFName: "chain"}
	sb.Build = func() ([]*wf.Task, []string, []wf.Edge, error) {
		return tasks, []string{"/in/seed"}, nil, nil
	}
	return sb
}

func TestRunSimpleChain(t *testing.T) {
	env := newEnv(t, 3, spec(), 1000)
	env.FS.Put("/in/seed", 20, "")
	rep, err := Run(env.Env, chainDriver(t, 4), scheduler.NewFCFS(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded || rep.MakespanSec <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Results) != 6 {
		t.Fatalf("results = %d, want 6", len(rep.Results))
	}
	if len(rep.Outputs) != 1 || rep.Outputs[0] != "/tmp/result" {
		t.Fatalf("outputs = %v", rep.Outputs)
	}
	if !env.FS.Exists("/tmp/result") {
		t.Fatal("final output not in HDFS")
	}
	// Provenance: 1 wf-start + 6 task-start + 6 task-end + 1 wf-end.
	events, _ := env.Prov.Store().Events()
	if len(events) != 14 {
		t.Fatalf("provenance events = %d, want 14", len(events))
	}
	if d, ok := env.Prov.LastRuntime("work", rep.Results[1].Node); !ok || d <= 0 {
		t.Fatalf("runtime not indexed: %g %v", d, ok)
	}
	if rep.Containers != 6 {
		t.Fatalf("containers = %d", rep.Containers)
	}
}

func TestParallelismSpeedsUp(t *testing.T) {
	// 8 independent 40-core-second single-thread tasks.
	mk := func() wf.StaticDriver {
		var tasks []*wf.Task
		for i := 0; i < 8; i++ {
			w := wf.NewTask("work", nil, []wf.FileInfo{{Path: fmt.Sprintf("/o/%d", i), SizeMB: 0.1}})
			w.CPUSeconds = 40
			tasks = append(tasks, w)
		}
		sb := &wf.StaticBase{WFName: "par"}
		sb.Build = func() ([]*wf.Task, []string, []wf.Edge, error) { return tasks, nil, nil, nil }
		return sb
	}
	env1 := newEnv(t, 1, cluster.NodeSpec{VCores: 2, MemMB: 8192, CPUFactor: 1, DiskMBps: 200, NetMBps: 200}, 1000)
	rep1, err := Run(env1.Env, mk(), scheduler.NewFCFS(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	env4 := newEnv(t, 4, cluster.NodeSpec{VCores: 2, MemMB: 8192, CPUFactor: 1, DiskMBps: 200, NetMBps: 200}, 1000)
	rep4, err := Run(env4.Env, mk(), scheduler.NewFCFS(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep4.MakespanSec >= rep1.MakespanSec/2.5 {
		t.Fatalf("4 nodes (%.1fs) should be much faster than 1 node (%.1fs)", rep4.MakespanSec, rep1.MakespanSec)
	}
}

func TestDataAwareBeatsFCFSUnderTightNetwork(t *testing.T) {
	// Large inputs pinned to distinct nodes, tiny switch: picking the
	// local task saves most transfer time. The policy factory receives
	// the run's FS so the data-aware oracle sees the right metadata.
	run := func(mkPolicy func(*hdfs.FS) scheduler.Scheduler) float64 {
		env := newEnv(t, 4, spec(), 40) // constrained switch
		env.FS = hdfs.New(env.Cluster, hdfs.Config{BlockSizeMB: 10000, Replication: 1}, 7)
		var tasks []*wf.Task
		var inputs []string
		for i := 0; i < 4; i++ {
			in := fmt.Sprintf("/in/big%d", i)
			env.FS.Put(in, 2000, fmt.Sprintf("node-0%d", i))
			w := wf.NewTask("align", []string{in}, []wf.FileInfo{{Path: fmt.Sprintf("/o/%d", i), SizeMB: 1}})
			w.CPUSeconds = 10
			tasks = append(tasks, w)
			inputs = append(inputs, in)
		}
		sb := &wf.StaticBase{WFName: "locality"}
		sb.Build = func() ([]*wf.Task, []string, []wf.Edge, error) {
			return tasks, inputs, nil, nil
		}
		rep, err := Run(env.Env, sb, mkPolicy(env.FS), Config{ContainerVCores: 2})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MakespanSec
	}
	daTime := run(func(fs *hdfs.FS) scheduler.Scheduler { return scheduler.NewDataAware(fs) })
	fcfsTime := run(func(*hdfs.FS) scheduler.Scheduler { return scheduler.NewFCFS() })
	if daTime >= fcfsTime {
		t.Fatalf("data-aware (%.1fs) should beat FCFS (%.1fs) when inputs are node-local", daTime, fcfsTime)
	}
	// With perfect locality, no remote transfer: ~2000/200(disk)+cpu.
	if daTime > 60 {
		t.Fatalf("data-aware makespan %.1fs, expected near-local I/O time", daTime)
	}
}

func TestRetryOnDifferentNodeAfterFault(t *testing.T) {
	env := newEnv(t, 3, spec(), 1000)
	env.FS.Put("/in/seed", 1, "")
	var failedNode string
	cfg := Config{
		FaultInjector: func(task *wf.Task, node string, attempt int) bool {
			if task.Name == "work" && attempt == 0 {
				failedNode = node
				return true
			}
			return false
		},
	}
	rep, err := Run(env.Env, chainDriver(t, 1), scheduler.NewFCFS(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries != 1 {
		t.Fatalf("retries = %d, want 1", rep.Retries)
	}
	var workResult *wf.TaskResult
	for _, r := range rep.Results {
		if r.Task.Name == "work" {
			workResult = r
		}
	}
	if workResult == nil || workResult.Node == failedNode {
		t.Fatalf("retry ran on the failing node %s again", failedNode)
	}
}

func TestRetriesExhaustedFailsWorkflow(t *testing.T) {
	env := newEnv(t, 2, spec(), 1000)
	env.FS.Put("/in/seed", 1, "")
	cfg := Config{
		MaxRetries:    2,
		FaultInjector: func(task *wf.Task, node string, attempt int) bool { return task.Name == "work" },
	}
	rep, err := Run(env.Env, chainDriver(t, 1), scheduler.NewFCFS(), cfg)
	if err == nil || rep.Succeeded {
		t.Fatalf("workflow should fail after retries: %+v", rep)
	}
	if !strings.Contains(err.Error(), "failed") {
		t.Fatalf("err = %v", err)
	}
	if rep.Retries != 3 { // initial + 2 retries, all failed
		t.Fatalf("retries = %d", rep.Retries)
	}
}

func TestNodeDeathTriggersRetry(t *testing.T) {
	env := newEnv(t, 3, spec(), 1000)
	env.FS.Put("/in/seed", 1, "")
	am, err := Launch(env.Env, chainDriver(t, 2), scheduler.NewFCFS(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Let execution begin, then kill a node hosting a worker container.
	env.eng.RunUntil(6) // prep (5 cpu-s) done or running; workers starting
	var victim string
	for _, id := range env.RM.LiveNodes() {
		cores, _ := env.RM.FreeCapacity(id)
		full := env.Cluster.Node(id).Spec.VCores
		if cores < full && id != am.app.AMContainer.NodeID {
			victim = id
			break
		}
	}
	if victim == "" {
		t.Skip("no busy non-AM node at t=6; timing drifted")
	}
	killTime := env.eng.Now()
	env.RM.KillNode(victim)
	env.FS.KillNode(victim)
	env.eng.Run()
	rep, err := am.Report()
	if err != nil {
		t.Fatalf("workflow should survive a node death: %v", err)
	}
	if !rep.Succeeded {
		t.Fatalf("report = %+v", rep)
	}
	// Nothing may complete on the victim after it died; earlier
	// completions there are legitimate.
	for _, r := range rep.Results {
		if r.Node == victim && r.End > killTime {
			t.Fatalf("result attributed to dead node %s after the crash", victim)
		}
	}
	if rep.Retries == 0 {
		t.Fatal("the lost container should count as a retry")
	}
}

const miniDAX = `<adag name="mini">
  <job id="A" name="first" runtime="10">
    <uses file="/in/x" link="input"/>
    <uses file="/mid/y" link="output" sizeMB="5"/>
  </job>
  <job id="B" name="second" runtime="10">
    <uses file="/mid/y" link="input"/>
    <uses file="/out/z" link="output" sizeMB="1"/>
  </job>
</adag>`

func TestStaticHEFTWithDAXDriver(t *testing.T) {
	env := newEnv(t, 3, spec(), 1000)
	env.FS.Put("/in/x", 10, "")
	h := scheduler.NewHEFT(env.Prov)
	rep, err := Run(env.Env, dax.NewDriver("mini", miniDAX, dax.Options{}), h, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded || len(rep.Results) != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestStaticPolicyRejectsIterativeLanguage(t *testing.T) {
	env := newEnv(t, 2, spec(), 1000)
	d := cuneiform.NewDriver("iter", `
deftask a( out : inp ) in bash *{ x }*
a( inp: "seed" );`)
	_, err := Launch(env.Env, d, scheduler.NewHEFT(env.Prov), Config{})
	if err == nil || !strings.Contains(err.Error(), "iterative") {
		t.Fatalf("static policy must reject Cuneiform: %v", err)
	}
}

func TestIterativeCuneiformEndToEnd(t *testing.T) {
	env := newEnv(t, 2, spec(), 1000)
	env.FS.Put("init", 1, "")
	d := cuneiform.NewDriver("kmeans", `
deftask step( out : cur ) @cpu 5 in bash *{ refine }*
deftask check( <flag> : cur ) @cpu 1 in bash *{ converged? }*
defun loop( cur ) {
  if check( cur: cur ) then loop( cur: step( cur: cur ) ) else cur end
}
loop( cur: "init" );`)
	checks := 0
	cfg := Config{Behavior: func(task *wf.Task) wf.Outcome {
		out := wf.DefaultOutcome(task)
		if task.Name == "check" {
			checks++
			if checks <= 3 {
				out.Outputs["flag"] = []wf.FileInfo{{Path: fmt.Sprintf("flag-%d", task.ID), SizeMB: 0.01}}
			} else {
				out.Outputs["flag"] = nil
			}
		}
		return out
	}}
	rep, err := Run(env.Env, d, scheduler.NewDataAware(env.FS), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded {
		t.Fatalf("report err = %v", rep.Err)
	}
	// 4 checks + 3 steps.
	if len(rep.Results) != 7 {
		t.Fatalf("results = %d, want 7", len(rep.Results))
	}
	if len(rep.Outputs) != 1 || !strings.Contains(rep.Outputs[0], "step_") {
		t.Fatalf("outputs = %v", rep.Outputs)
	}
	if !env.FS.Exists(rep.Outputs[0]) {
		t.Fatal("iterative result not in HDFS")
	}
}

func TestSizeContainersByTaskLimitsConcurrency(t *testing.T) {
	// Two 6 GB tasks on one 8 GB node: task-sized containers force them
	// to run serially.
	mk := func() wf.StaticDriver {
		var tasks []*wf.Task
		for i := 0; i < 2; i++ {
			w := wf.NewTask("big", nil, []wf.FileInfo{{Path: fmt.Sprintf("/o/%d", i), SizeMB: 0.1}})
			w.CPUSeconds = 10
			w.MemMB = 6000
			tasks = append(tasks, w)
		}
		sb := &wf.StaticBase{WFName: "mem"}
		sb.Build = func() ([]*wf.Task, []string, []wf.Edge, error) { return tasks, nil, nil, nil }
		return sb
	}
	env := newEnv(t, 2, spec(), 1000)
	rep, err := Run(env.Env, mk(), scheduler.NewFCFS(), Config{SizeContainersByTask: true})
	if err != nil {
		t.Fatal(err)
	}
	// One node hosts the AM (1024 MB), so only one 6 GB container fits a
	// node at a time; with 2 nodes both run in parallel. Force serial by
	// checking results' nodes differ OR makespan reflects serialization.
	if !rep.Succeeded {
		t.Fatal(rep.Err)
	}
	// Now on a single node: must serialize (makespan ≥ 20s of CPU).
	env1 := newEnv(t, 1, spec(), 1000)
	rep1, err := Run(env1.Env, mk(), scheduler.NewFCFS(), Config{SizeContainersByTask: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.MakespanSec < 20 {
		t.Fatalf("memory gating should serialize: makespan %.1f", rep1.MakespanSec)
	}
}

func TestTwoWorkflowsConcurrently(t *testing.T) {
	// One AM per workflow (§3.1): two independent workflows share the
	// cluster and both finish.
	env := newEnv(t, 4, spec(), 1000)
	env.FS.Put("/in/seed", 5, "")
	am1, err := Launch(env.Env, chainDriver(t, 3), scheduler.NewFCFS(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	d2 := chainDriver(t, 3)
	// Second driver writes to distinct paths? chainDriver reuses paths —
	// rebuild with a prefix instead.
	_ = d2
	prep := wf.NewTask("prep2", []string{"/in/seed"}, []wf.FileInfo{{Path: "/w2/split", SizeMB: 10}})
	prep.CPUSeconds = 5
	w := wf.NewTask("work2", []string{"/w2/split"}, []wf.FileInfo{{Path: "/w2/out", SizeMB: 1}})
	w.CPUSeconds = 20
	sb := &wf.StaticBase{WFName: "wf2"}
	sb.Build = func() ([]*wf.Task, []string, []wf.Edge, error) {
		return []*wf.Task{prep, w}, []string{"/in/seed"}, nil, nil
	}
	am2, err := Launch(env.Env, sb, scheduler.NewFCFS(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	env.eng.Run()
	r1, err1 := am1.Report()
	r2, err2 := am2.Report()
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	if !r1.Succeeded || !r2.Succeeded {
		t.Fatal("both workflows should succeed")
	}
}

func TestEmptyWorkflowFinishesImmediately(t *testing.T) {
	env := newEnv(t, 2, spec(), 1000)
	d := cuneiform.NewDriver("empty", `
deftask a( out : inp ) in bash *{ x }*
a( inp: nil );`)
	rep, err := Run(env.Env, d, scheduler.NewFCFS(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded || len(rep.Results) != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestMissingInputFailsTask(t *testing.T) {
	env := newEnv(t, 2, spec(), 1000)
	// /in/seed never staged: stage-in fails, retries exhaust, workflow fails.
	rep, err := Run(env.Env, chainDriver(t, 1), scheduler.NewFCFS(), Config{MaxRetries: 1})
	if err == nil || rep.Succeeded {
		t.Fatalf("missing input should fail the workflow: %+v", rep)
	}
	if !strings.Contains(err.Error(), "stage-in") && !strings.Contains(err.Error(), "not found") {
		t.Fatalf("err = %v", err)
	}
}

func TestAdaptiveGreedyDeclinesSlowNodeEndToEnd(t *testing.T) {
	// Two nodes, one crippled by CPU stress. Warm the estimator with
	// observations, then check the adaptive policy routes work away from
	// the slow node by declining containers there.
	// Three clean nodes and one heavily stressed one: with most of the
	// fleet fast, the signature mean stays low and the slow node's
	// estimate crosses the decline threshold.
	eng := sim.NewEngine()
	fast := cluster.M3Large()
	slow := cluster.M3Large()
	slow.CPUHogs = 64
	c, err := cluster.New(eng, cluster.Config{SwitchMBps: 1000},
		[]cluster.NodeSpec{fast, fast, fast, slow})
	if err != nil {
		t.Fatal(err)
	}
	fsys := hdfs.New(c, hdfs.Config{Replication: 1}, 1)
	rm := yarn.NewResourceManager(eng, c, yarn.Config{AMResource: yarn.Resource{VCores: 0, MemMB: 256}})
	prov, _ := provenance.NewManager(provenance.NewMemStore())
	env := Env{Cluster: c, FS: fsys, RM: rm, Prov: prov}

	mkDriver := func(round int) wf.StaticDriver {
		var tasks []*wf.Task
		for i := 0; i < 6; i++ {
			w := wf.NewTask("work", nil, []wf.FileInfo{{Path: fmt.Sprintf("/r%d/o%d", round, i), SizeMB: 0.1}})
			w.CPUSeconds = 10
			tasks = append(tasks, w)
		}
		sb := &wf.StaticBase{WFName: fmt.Sprintf("adapt-%d", round)}
		sb.Build = func() ([]*wf.Task, []string, []wf.Edge, error) { return tasks, nil, nil, nil }
		return sb
	}
	// Round 0: FCFS to gather observations on both nodes.
	if _, err := Run(env, mkDriver(0), scheduler.NewFCFS(), Config{ContainerVCores: 2, ContainerMemMB: 2048}); err != nil {
		t.Fatal(err)
	}
	if _, ok := prov.LastRuntime("work", "node-03"); !ok {
		t.Skip("slow node received no work in the warmup round")
	}
	// Round 1: adaptive-greedy should keep everything off the slow node.
	rep, err := Run(env, mkDriver(1), scheduler.NewAdaptiveGreedy(prov), Config{ContainerVCores: 2, ContainerMemMB: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		if res.Node == "node-03" {
			t.Fatalf("adaptive policy ran %s on the known-slow node", res.Task)
		}
	}
}

func TestAMOnPinnedNode(t *testing.T) {
	env := newEnv(t, 3, spec(), 1000)
	env.FS.Put("/in/seed", 1, "")
	am, err := Launch(env.Env, chainDriver(t, 1), scheduler.NewFCFS(), Config{AMNode: "node-02"})
	if err != nil {
		t.Fatal(err)
	}
	if am.app.AMContainer.NodeID != "node-02" {
		t.Fatalf("AM on %s", am.app.AMContainer.NodeID)
	}
	env.eng.Run()
	if _, err := am.Report(); err != nil {
		t.Fatal(err)
	}
}

// TestRetryExhaustionRecordsEveryAttempt is the regression test for the
// fault-tolerance accounting: a task that fails on every node must fail
// the workflow with a clear error, and provenance must carry a start/end
// pair for every individual failed attempt — distinct IDs, distinct
// attempt indices — so post-mortems can see the whole retry history.
func TestRetryExhaustionRecordsEveryAttempt(t *testing.T) {
	env := newEnv(t, 2, spec(), 1000)
	env.FS.Put("/in/seed", 1, "")
	cfg := Config{
		MaxRetries:    2,
		FaultInjector: func(task *wf.Task, node string, attempt int) bool { return task.Name == "work" },
	}
	rep, err := Run(env.Env, chainDriver(t, 1), scheduler.NewFCFS(), cfg)
	if err == nil || rep.Succeeded {
		t.Fatalf("workflow should fail: %+v", rep)
	}
	if !strings.Contains(err.Error(), "failed 3 times") {
		t.Fatalf("error should name the attempt count, got: %v", err)
	}

	events, _ := env.Prov.Store().Events()
	starts, ends := 0, 0
	ids := map[string]bool{}
	attempts := map[int]bool{}
	for _, ev := range events {
		if ev.Signature != "work" {
			continue
		}
		switch ev.Type {
		case provenance.TaskStart:
			starts++
		case provenance.TaskEnd:
			ends++
			if ev.ExitCode == 0 {
				t.Fatalf("failed attempt recorded as success: %+v", ev)
			}
			if ev.Error == "" {
				t.Fatalf("failed attempt recorded without error: %+v", ev)
			}
			if ids[ev.ID] {
				t.Fatalf("duplicate provenance ID %s across attempts", ev.ID)
			}
			ids[ev.ID] = true
			attempts[ev.Attempt] = true
		}
	}
	if starts != 3 || ends != 3 {
		t.Fatalf("starts=%d ends=%d, want 3/3 (initial + 2 retries)", starts, ends)
	}
	for i := 0; i < 3; i++ {
		if !attempts[i] {
			t.Fatalf("attempt index %d missing from provenance (got %v)", i, attempts)
		}
	}
	// The workflow-end event records the failure.
	last := events[len(events)-1]
	if last.Type != provenance.WorkflowEnd || last.Succeeded {
		t.Fatalf("last event = %+v, want failed workflow-end", last)
	}
}
