// Package workloads generates the paper's evaluation workflows with
// resource profiles calibrated to the reported runtimes:
//
//   - the single-nucleotide-variant (SNV) calling workflow of §4.1
//     (Bowtie 2 → SAMtools sort → VarScan → ANNOVAR over 1000-Genomes
//     reads);
//   - the RNA-seq TRAPLINE workflow of §4.2 (TopHat 2 → Cufflinks →
//     merge/diff over six replicate lanes);
//   - the Montage astronomy workflow of §4.3 (emitted as a Pegasus DAX
//     document, exercising the DAX frontend exactly as the paper did);
//   - the k-means Cuneiform workflow of §3.3 (iterative clustering).
//
// File contents are synthetic — only DAG shape, degrees of parallelism,
// data volumes, and CPU demands matter to scheduling and scalability, and
// those follow the paper.
package workloads

import (
	"fmt"
	"strings"

	"hiway/internal/hdfs"
	"hiway/internal/wf"
)

// Input is one initial input file to stage before execution.
type Input struct {
	Path     string
	SizeMB   float64
	External bool   // lives in S3 rather than HDFS
	Node     string // optional preferred first-replica node
}

// Stage puts the inputs into the filesystem.
func Stage(fs *hdfs.FS, inputs []Input) error {
	for _, in := range inputs {
		if in.External {
			fs.PutExternal(in.Path, in.SizeMB)
			continue
		}
		if _, err := fs.Put(in.Path, in.SizeMB, in.Node); err != nil {
			return fmt.Errorf("workloads: staging %s: %w", in.Path, err)
		}
	}
	return nil
}

// Paths returns the input paths.
func Paths(inputs []Input) []string {
	out := make([]string, len(inputs))
	for i, in := range inputs {
		out[i] = in.Path
	}
	return out
}

// ---------------------------------------------------------------------------
// SNV calling (§4.1)

// SNVConfig parameterizes the variant-calling workflow.
type SNVConfig struct {
	// Samples is the number of genomic samples (the paper doubles this
	// together with the worker count, 1→128).
	Samples int
	// FilesPerSample is the number of read files per sample (paper: 8).
	FilesPerSample int
	// FileSizeMB is the size of one read file (paper: ~1 GB).
	FileSizeMB float64
	// External reads inputs from S3 during execution instead of HDFS
	// (the second experiment's network-load reduction).
	External bool
	// CRAM compresses intermediate alignments (referential compression),
	// shrinking intermediate data ~3x.
	CRAM bool
	// RefLocal treats the reference index as locally installed on every
	// node (the paper's Chef recipes install tools and reference data on
	// all workers, §3.6), so it is neither staged nor read from HDFS.
	RefLocal bool
	// CallSplitRegions splits each sample's variant calling into this many
	// parallel per-region tasks (chromosome-wise calling), shortening the
	// critical path for highly parallel clusters. Default 1 (no split).
	CallSplitRegions int
	// AlignCPUSeconds etc. scale the per-task CPU demand; zero picks the
	// calibrated defaults reproducing the ~340 min single-sample runtime
	// on an m3.large (2 cores). With CallSplitRegions > 1,
	// CallCPUSeconds is the demand per region task.
	AlignCPUSeconds, SortCPUSeconds, CallCPUSeconds, AnnotateCPUSeconds float64
}

// ApplyDefaults fills zero fields with the calibrated defaults — exported
// so experiment harnesses can perturb the effective values.
func (c *SNVConfig) ApplyDefaults() { c.setDefaults() }

func (c *SNVConfig) setDefaults() {
	if c.Samples <= 0 {
		c.Samples = 1
	}
	if c.FilesPerSample <= 0 {
		c.FilesPerSample = 8
	}
	if c.FileSizeMB <= 0 {
		c.FileSizeMB = 1024
	}
	if c.CallSplitRegions <= 0 {
		c.CallSplitRegions = 1
	}
	// Calibration: one sample ⇒ 8 alignments ×3000 + sort 2400 + call
	// 12000 + annotate 1600 = 40000 core-seconds ≈ 333 min on 2 cores,
	// plus I/O ⇒ ~340 min, matching Table 2's single-worker row.
	if c.AlignCPUSeconds <= 0 {
		c.AlignCPUSeconds = 3000
	}
	if c.SortCPUSeconds <= 0 {
		c.SortCPUSeconds = 2400
	}
	if c.CallCPUSeconds <= 0 {
		c.CallCPUSeconds = 12000
	}
	if c.AnnotateCPUSeconds <= 0 {
		c.AnnotateCPUSeconds = 1600
	}
}

// SNV builds the variant-calling workflow: per read file, a Bowtie 2
// alignment against the reference; per sample, a SAMtools sort/merge, a
// VarScan variant call, and an ANNOVAR annotation.
func SNV(cfg SNVConfig) (wf.StaticDriver, []Input) {
	cfg.setDefaults()
	ref := Input{Path: "/ref/hg38.idx", SizeMB: 3500}
	var inputs []Input
	refInputs := []string{ref.Path}
	if cfg.RefLocal {
		refInputs = nil
	} else {
		inputs = append(inputs, ref)
	}

	alignedSize := cfg.FileSizeMB * 1.2 // SAM/BAM slightly larger than reads
	if cfg.CRAM {
		alignedSize = cfg.FileSizeMB * 0.4 // referential compression
	}

	var tasks []*wf.Task
	for s := 0; s < cfg.Samples; s++ {
		var bams []string
		for f := 0; f < cfg.FilesPerSample; f++ {
			reads := Input{
				Path:     fmt.Sprintf("/reads/sample%03d/part%02d.fq", s, f),
				SizeMB:   cfg.FileSizeMB,
				External: cfg.External,
			}
			inputs = append(inputs, reads)
			bam := fmt.Sprintf("/work/sample%03d/part%02d.bam", s, f)
			align := &wf.Task{
				ID:           wf.NextID(),
				Name:         "bowtie2",
				Command:      fmt.Sprintf("bowtie2 -x /ref/hg38.idx -U %s -S %s", reads.Path, bam),
				Inputs:       append([]string{reads.Path}, refInputs...),
				OutputParams: []string{"out"},
				Declared:     map[string][]wf.FileInfo{"out": {{Path: bam, SizeMB: alignedSize}}},
				CPUSeconds:   cfg.AlignCPUSeconds,
				Threads:      8,
				MemMB:        6500,
			}
			tasks = append(tasks, align)
			bams = append(bams, bam)
		}
		// Sorting scatters the merged alignment into one file per calling
		// region (a single file when CallSplitRegions is 1), so each
		// variant caller reads only its slice.
		sortedSizeMB := alignedSize * float64(cfg.FilesPerSample) * 0.9
		var regionFiles []wf.FileInfo
		for r := 0; r < cfg.CallSplitRegions; r++ {
			regionFiles = append(regionFiles, wf.FileInfo{
				Path:   fmt.Sprintf("/work/sample%03d/sorted_r%02d.bam", s, r),
				SizeMB: sortedSizeMB / float64(cfg.CallSplitRegions),
			})
		}
		sort := &wf.Task{
			ID:           wf.NextID(),
			Name:         "samtools-sort",
			Command:      "samtools sort " + strings.Join(bams, " "),
			Inputs:       bams,
			OutputParams: []string{"out"},
			Declared:     map[string][]wf.FileInfo{"out": regionFiles},
			CPUSeconds:   cfg.SortCPUSeconds,
			Threads:      4,
			MemMB:        4000,
		}
		var vcfs []string
		var calls []*wf.Task
		for r := 0; r < cfg.CallSplitRegions; r++ {
			region := regionFiles[r].Path
			vcf := fmt.Sprintf("/work/sample%03d/variants_r%02d.vcf", s, r)
			call := &wf.Task{
				ID:           wf.NextID(),
				Name:         "varscan",
				Command:      fmt.Sprintf("varscan mpileup2snp %s > %s", region, vcf),
				Inputs:       []string{region},
				OutputParams: []string{"out"},
				Declared:     map[string][]wf.FileInfo{"out": {{Path: vcf, SizeMB: 80 / float64(cfg.CallSplitRegions)}}},
				CPUSeconds:   cfg.CallCPUSeconds,
				Threads:      8,
				MemMB:        6500,
			}
			vcfs = append(vcfs, vcf)
			calls = append(calls, call)
		}
		annotated := fmt.Sprintf("/out/sample%03d/annotated.vcf", s)
		annotate := &wf.Task{
			ID:           wf.NextID(),
			Name:         "annovar",
			Command:      fmt.Sprintf("annovar %s > %s", strings.Join(vcfs, " "), annotated),
			Inputs:       vcfs,
			OutputParams: []string{"out"},
			Declared:     map[string][]wf.FileInfo{"out": {{Path: annotated, SizeMB: 90}}},
			CPUSeconds:   cfg.AnnotateCPUSeconds,
			Threads:      2,
			MemMB:        3000,
		}
		tasks = append(tasks, sort)
		tasks = append(tasks, calls...)
		tasks = append(tasks, annotate)
	}

	sb := &wf.StaticBase{WFName: fmt.Sprintf("snv-calling-%dx%d", cfg.Samples, cfg.FilesPerSample)}
	sb.Build = func() ([]*wf.Task, []string, []wf.Edge, error) {
		return tasks, Paths(inputs), nil, nil
	}
	return sb, inputs
}

// TotalInputMB sums the data volume of the inputs excluding shared
// references — the "data volume" row of Table 2 counts read data.
func TotalInputMB(inputs []Input) float64 {
	var sum float64
	for _, in := range inputs {
		if !strings.HasPrefix(in.Path, "/ref/") {
			sum += in.SizeMB
		}
	}
	return sum
}

// ---------------------------------------------------------------------------
// RNA-seq TRAPLINE (§4.2)

// TRAPLINEConfig parameterizes the RNA-seq workflow.
type TRAPLINEConfig struct {
	// LanesPerGroup is the number of replicates per sample group
	// (paper: triplicates, two groups, degree of parallelism six).
	LanesPerGroup int
	// ReadsSizeMB is one lane's input size (paper: >10 GB total over six
	// lanes).
	ReadsSizeMB float64
	// TophatCPUSeconds etc. override the calibrated defaults.
	TophatCPUSeconds, CufflinksCPUSeconds, MergeCPUSeconds, DiffCPUSeconds float64
}

func (c *TRAPLINEConfig) setDefaults() {
	if c.LanesPerGroup <= 0 {
		c.LanesPerGroup = 3
	}
	if c.ReadsSizeMB <= 0 {
		c.ReadsSizeMB = 1800
	}
	// Calibration for c3.2xlarge (8 cores, factor 1.15): per-lane chain
	// ≈ (11000 + 5500)/(8·1.15) ≈ 30 min of compute plus I/O ⇒ ~33 min;
	// shared tail ≈ (2500 + 8500)/(8·1.15) ≈ 20 min. One node ⇒ ~220
	// min, six nodes ⇒ ~55 min — Fig. 8's Hi-WAY endpoints.
	if c.TophatCPUSeconds <= 0 {
		c.TophatCPUSeconds = 11000
	}
	if c.CufflinksCPUSeconds <= 0 {
		c.CufflinksCPUSeconds = 5500
	}
	if c.MergeCPUSeconds <= 0 {
		c.MergeCPUSeconds = 2500
	}
	if c.DiffCPUSeconds <= 0 {
		c.DiffCPUSeconds = 8500
	}
}

// TRAPLINE builds the RNA-seq comparison workflow: per lane TopHat 2 and
// Cufflinks, then one Cuffmerge join and one Cuffdiff comparing the two
// groups. TopHat 2 is the multithreaded, intermediate-heavy step the paper
// singles out.
func TRAPLINE(cfg TRAPLINEConfig) (wf.StaticDriver, []Input) {
	cfg.setDefaults()
	genome := Input{Path: "/ref/mm10.fa", SizeMB: 2800}
	inputs := []Input{genome}
	lanes := cfg.LanesPerGroup * 2

	var tasks []*wf.Task
	var quantified []string
	for l := 0; l < lanes; l++ {
		group := "young"
		if l >= cfg.LanesPerGroup {
			group = "aged"
		}
		reads := Input{Path: fmt.Sprintf("/reads/%s/rep%d.fastq", group, l%cfg.LanesPerGroup), SizeMB: cfg.ReadsSizeMB}
		inputs = append(inputs, reads)
		hits := fmt.Sprintf("/work/lane%d/accepted_hits.bam", l)
		tophat := &wf.Task{
			ID:           wf.NextID(),
			Name:         "tophat2",
			Command:      fmt.Sprintf("tophat2 -o /work/lane%d /ref/mm10 %s", l, reads.Path),
			Inputs:       []string{reads.Path, genome.Path},
			OutputParams: []string{"out"},
			// TopHat generates large intermediate files (§4.2).
			Declared:   map[string][]wf.FileInfo{"out": {{Path: hits, SizeMB: cfg.ReadsSizeMB * 1.6}}},
			CPUSeconds: cfg.TophatCPUSeconds,
			Threads:    8,
			MemMB:      12000,
		}
		gtf := fmt.Sprintf("/work/lane%d/transcripts.gtf", l)
		cufflinks := &wf.Task{
			ID:           wf.NextID(),
			Name:         "cufflinks",
			Command:      fmt.Sprintf("cufflinks -o /work/lane%d %s", l, hits),
			Inputs:       []string{hits},
			OutputParams: []string{"out"},
			Declared:     map[string][]wf.FileInfo{"out": {{Path: gtf, SizeMB: 120}}},
			CPUSeconds:   cfg.CufflinksCPUSeconds,
			Threads:      8,
			MemMB:        10000,
		}
		tasks = append(tasks, tophat, cufflinks)
		quantified = append(quantified, gtf)
	}
	merged := "/work/merged.gtf"
	merge := &wf.Task{
		ID:           wf.NextID(),
		Name:         "cuffmerge",
		Command:      "cuffmerge " + strings.Join(quantified, " "),
		Inputs:       append(append([]string{}, quantified...), genome.Path),
		OutputParams: []string{"out"},
		Declared:     map[string][]wf.FileInfo{"out": {{Path: merged, SizeMB: 200}}},
		CPUSeconds:   cfg.MergeCPUSeconds,
		Threads:      8,
		MemMB:        8000,
	}
	diff := &wf.Task{
		ID:           wf.NextID(),
		Name:         "cuffdiff",
		Command:      "cuffdiff " + merged,
		Inputs:       []string{merged},
		OutputParams: []string{"out"},
		Declared:     map[string][]wf.FileInfo{"out": {{Path: "/out/diff_results.txt", SizeMB: 40}}},
		CPUSeconds:   cfg.DiffCPUSeconds,
		Threads:      8,
		MemMB:        12000,
	}
	tasks = append(tasks, merge, diff)

	sb := &wf.StaticBase{WFName: "trapline-rnaseq"}
	sb.Build = func() ([]*wf.Task, []string, []wf.Edge, error) {
		return tasks, Paths(inputs), nil, nil
	}
	return sb, inputs
}

// InputSizes maps input paths to sizes (for engines without HDFS metadata,
// e.g. the CloudMan baseline).
func InputSizes(inputs []Input) map[string]float64 {
	m := make(map[string]float64, len(inputs))
	for _, in := range inputs {
		m[in.Path] = in.SizeMB
	}
	return m
}
