package workloads

import (
	"encoding/json"
	"fmt"

	"hiway/internal/lang/cwl"
)

// This file renders the SNV-calling pipeline as a CWL v1.2 document — the
// same workflow snv_cuneiform.go expresses in the paper's native language.
// CWL is static, so the sort step's aggregate output (per-region alignment
// slices, runtime-cardinality in Cuneiform) is declared up front through
// the hiway:Profile outCount hint: the region count is known from the
// configuration, and the per-region variant calls scatter over the declared
// array. Both renderings compile into the same task graph, which
// TestSNVCuneiformCWLEquivalence pins by canonical lineage.

// SNVCWL renders the workflow document for the given configuration plus
// the inputs to stage, mirroring SNVCuneiform exactly: same tool names,
// same resource profile, same data volumes, same input list.
func SNVCWL(cfg SNVConfig) (string, []Input) {
	cfg.setDefaults()
	alignedSize := cfg.FileSizeMB * 1.2
	if cfg.CRAM {
		alignedSize = cfg.FileSizeMB * 0.4 // referential compression
	}
	regionSizeMB := alignedSize * float64(cfg.FilesPerSample) * 0.9 / float64(cfg.CallSplitRegions)

	tool := func(id string, cmd []any, cpu float64, cores, ram int, ins, outs []any, profile map[string]any) map[string]any {
		profile["class"] = "hiway:Profile"
		profile["cpuSeconds"] = cpu
		return map[string]any{
			"class":       "CommandLineTool",
			"id":          id,
			"baseCommand": cmd,
			"requirements": []any{map[string]any{
				"class": "ResourceRequirement", "coresMin": cores, "ramMin": ram,
			}},
			"hints":   []any{profile},
			"inputs":  ins,
			"outputs": outs,
		}
	}
	tools := []any{
		tool("align",
			[]any{"bowtie2", "-x", "/ref/hg38.idx", "-U", "$reads", "-S", "$bam"},
			cfg.AlignCPUSeconds, 8, 6500,
			[]any{map[string]any{"id": "reads", "type": "File"}},
			[]any{map[string]any{"id": "bam", "type": "File"}},
			map[string]any{"outSizeMB": map[string]any{"bam": alignedSize}}),
		tool("sortscatter",
			[]any{"samtools", "sort", "$bams", "|", "split-regions", "--n", "$nregions", "--out-dir", "$regions"},
			cfg.SortCPUSeconds, 4, 4000,
			[]any{
				map[string]any{"id": "bams", "type": "File[]"},
				map[string]any{"id": "nregions", "type": "string"},
			},
			[]any{map[string]any{"id": "regions", "type": "File[]"}},
			map[string]any{
				"outSizeMB": map[string]any{"regions": regionSizeMB},
				"outCount":  map[string]any{"regions": cfg.CallSplitRegions},
			}),
		tool("call",
			[]any{"varscan", "mpileup2snp", "$region", ">", "$vcf"},
			cfg.CallCPUSeconds, 8, 6500,
			[]any{map[string]any{"id": "region", "type": "File"}},
			[]any{map[string]any{"id": "vcf", "type": "File"}},
			map[string]any{"outSizeMB": map[string]any{"vcf": 80 / float64(cfg.CallSplitRegions)}}),
		tool("annotate",
			[]any{"annovar", "$vcfs", ">", "$out"},
			cfg.AnnotateCPUSeconds, 2, 3000,
			[]any{map[string]any{"id": "vcfs", "type": "File[]"}},
			[]any{map[string]any{"id": "out", "type": "File"}},
			map[string]any{"outSizeMB": map[string]any{"out": 90.0}}),
	}

	var inputs []Input
	var wfInputs, steps, wfOutputs []any
	for s := 0; s < cfg.Samples; s++ {
		var readFiles []any
		for f := 0; f < cfg.FilesPerSample; f++ {
			p := fmt.Sprintf("/reads/sample%03d/part%02d.fq", s, f)
			readFiles = append(readFiles, map[string]any{"class": "File", "location": p})
			inputs = append(inputs, Input{Path: p, SizeMB: cfg.FileSizeMB, External: cfg.External})
		}
		readsID := fmt.Sprintf("reads_s%03d", s)
		wfInputs = append(wfInputs, map[string]any{
			"id": readsID, "type": "File[]", "default": readFiles,
		})
		alignID := fmt.Sprintf("align_s%03d", s)
		sortID := fmt.Sprintf("sort_s%03d", s)
		callID := fmt.Sprintf("call_s%03d", s)
		annotateID := fmt.Sprintf("annotate_s%03d", s)
		steps = append(steps,
			map[string]any{
				"id": alignID, "run": "#align", "scatter": "reads",
				"in":  []any{map[string]any{"id": "reads", "source": readsID}},
				"out": []any{"bam"},
			},
			map[string]any{
				"id": sortID, "run": "#sortscatter",
				"in": []any{
					map[string]any{"id": "bams", "source": alignID + "/bam"},
					map[string]any{"id": "nregions", "default": fmt.Sprintf("%d", cfg.CallSplitRegions)},
				},
				"out": []any{"regions"},
			},
			map[string]any{
				"id": callID, "run": "#call", "scatter": "region",
				"in":  []any{map[string]any{"id": "region", "source": sortID + "/regions"}},
				"out": []any{"vcf"},
			},
			map[string]any{
				"id": annotateID, "run": "#annotate",
				"in":  []any{map[string]any{"id": "vcfs", "source": callID + "/vcf"}},
				"out": []any{"out"},
			},
		)
		wfOutputs = append(wfOutputs, map[string]any{
			"id":           fmt.Sprintf("annotated_s%03d", s),
			"type":         "File",
			"outputSource": annotateID + "/out",
		})
	}
	if !cfg.RefLocal {
		inputs = append(inputs, Input{Path: "/ref/hg38.idx", SizeMB: 3500})
	}

	doc := map[string]any{
		"cwlVersion": "v1.2",
		"$graph": append([]any{map[string]any{
			"class":   "Workflow",
			"id":      "main",
			"doc":     "SNV calling with Bowtie 2, SAMtools, VarScan, and ANNOVAR (paper section 4.1)",
			"inputs":  wfInputs,
			"outputs": wfOutputs,
			"steps":   steps,
		}}, tools...),
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil { // impossible: the document is plain data
		panic(err)
	}
	return string(b) + "\n", inputs
}

// SNVCWLDriver builds the CWL driver for the workflow. No Behavior hook is
// needed: the region scatter that is dynamic in the Cuneiform rendering is
// declared statically here via outCount.
func SNVCWLDriver(name string, cfg SNVConfig) (*cwl.Driver, []Input) {
	cfg.setDefaults()
	src, inputs := SNVCWL(cfg)
	return cwl.NewDriver(name, src, cwl.Options{}), inputs
}
