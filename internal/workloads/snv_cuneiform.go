package workloads

import (
	"fmt"
	"strings"

	"hiway/internal/lang/cuneiform"
	"hiway/internal/wf"
)

// This file renders the SNV-calling pipeline as Cuneiform source — the
// language the paper used for Hi-WAY in §4.1 ("we implemented this
// workflow in both Cuneiform and Tez"). The sort step scatters the merged
// alignment into per-region files through an *aggregate output*, whose
// cardinality only materializes at run time; the subsequent per-region
// variant calls are then discovered dynamically — the part of the workflow
// a static DAG language cannot express.

// SNVCuneiform renders the workflow source for the given configuration.
// CPU attributes may be pre-scaled by the caller for run-to-run jitter.
func SNVCuneiform(cfg SNVConfig) (string, []Input) {
	cfg.setDefaults()
	alignedSize := cfg.FileSizeMB * 1.2
	if cfg.CRAM {
		alignedSize = cfg.FileSizeMB * 0.4 // referential compression
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `%%%% SNV calling (Bowtie 2 → SAMtools → VarScan → ANNOVAR), paper §4.1.
deftask align( bam : reads ) @cpu %.0f @threads 8 @mem 6500 @size bam %.0f in bash *{
  bowtie2 -x /ref/hg38.idx -U $reads -S $bam
}*
deftask sortscatter( <regions> : <bams> ~nregions ) @cpu %.0f @threads 4 @mem 4000 in bash *{
  samtools sort $bams | split-regions --n "$nregions" --out-dir "$regions"
}*
deftask call( vcf : region ) @cpu %.0f @threads 8 @mem 6500 @size vcf %.0f in bash *{
  varscan mpileup2snp $region > $vcf
}*
deftask annotate( out : <vcfs> ) @cpu %.0f @threads 2 @mem 3000 @size out 90 in bash *{
  annovar $vcfs > $out
}*
`,
		cfg.AlignCPUSeconds, alignedSize,
		cfg.SortCPUSeconds,
		cfg.CallCPUSeconds, 80/float64(cfg.CallSplitRegions),
		cfg.AnnotateCPUSeconds)

	var inputs []Input
	for s := 0; s < cfg.Samples; s++ {
		var readPaths []string
		for f := 0; f < cfg.FilesPerSample; f++ {
			p := fmt.Sprintf("/reads/sample%03d/part%02d.fq", s, f)
			readPaths = append(readPaths, fmt.Sprintf("%q", p))
			inputs = append(inputs, Input{Path: p, SizeMB: cfg.FileSizeMB, External: cfg.External})
		}
		fmt.Fprintf(&sb, "\nlet s%03d_reads = %s;\n", s, strings.Join(readPaths, " "))
		fmt.Fprintf(&sb, "let s%03d_bams = align( reads: s%03d_reads );\n", s, s)
		fmt.Fprintf(&sb, "let s%03d_regions = sortscatter( bams: s%03d_bams nregions: \"%d\" );\n", s, s, cfg.CallSplitRegions)
		fmt.Fprintf(&sb, "let s%03d_vcfs = call( region: s%03d_regions );\n", s, s)
		fmt.Fprintf(&sb, "annotate( vcfs: s%03d_vcfs );\n", s)
	}
	if !cfg.RefLocal {
		inputs = append(inputs, Input{Path: "/ref/hg38.idx", SizeMB: 3500})
	}
	return sb.String(), inputs
}

// SNVCuneiformDriver builds the driver plus the Behavior hook that stands
// in for the real tools: the sortscatter task's aggregate output resolves
// to nregions region files sized from the sample's alignment volume.
func SNVCuneiformDriver(name string, cfg SNVConfig) (*cuneiform.Driver, []Input, wf.Behavior) {
	cfg.setDefaults()
	src, inputs := SNVCuneiform(cfg)
	driver := cuneiform.NewDriver(name, src)
	alignedSize := cfg.FileSizeMB * 1.2
	if cfg.CRAM {
		alignedSize = cfg.FileSizeMB * 0.4
	}
	regionSizeMB := alignedSize * float64(cfg.FilesPerSample) * 0.9 / float64(cfg.CallSplitRegions)
	behavior := func(t *wf.Task) wf.Outcome {
		out := wf.DefaultOutcome(t)
		if t.Name == "sortscatter" {
			files := make([]wf.FileInfo, cfg.CallSplitRegions)
			for r := range files {
				files[r] = wf.FileInfo{
					Path:   fmt.Sprintf("work/sortscatter_%d/region%02d.bam", t.ID, r),
					SizeMB: regionSizeMB,
				}
			}
			out.Outputs["regions"] = files
		}
		return out
	}
	return driver, inputs, behavior
}
