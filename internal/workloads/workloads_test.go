package workloads

import (
	"strings"
	"testing"

	"hiway/internal/cluster"
	"hiway/internal/hdfs"
	"hiway/internal/lang/cuneiform"
	"hiway/internal/sim"
	"hiway/internal/wf"
)

func testFS(t *testing.T) *hdfs.FS {
	t.Helper()
	eng := sim.NewEngine()
	c, err := cluster.Uniform(eng, cluster.Config{SwitchMBps: 1000}, 4, cluster.M3Large())
	if err != nil {
		t.Fatal(err)
	}
	return hdfs.New(c, hdfs.Config{}, 3)
}

func TestSNVStructure(t *testing.T) {
	d, inputs := SNV(SNVConfig{Samples: 2, FilesPerSample: 4})
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	// Initially ready: all alignments (2 samples × 4 files).
	if len(ready) != 8 {
		t.Fatalf("ready = %d, want 8 alignments", len(ready))
	}
	all := d.Graph().All()
	// 8 align + 2 × (sort + call + annotate) = 14.
	if len(all) != 14 {
		t.Fatalf("tasks = %d, want 14", len(all))
	}
	// Inputs: reference + 8 read files.
	if len(inputs) != 9 {
		t.Fatalf("inputs = %d", len(inputs))
	}
	// Chain: annotate depends on call depends on sort depends on aligns.
	var annotate *wf.Task
	for _, task := range all {
		if task.Name == "annovar" {
			annotate = task
			break
		}
	}
	preds := d.Graph().Predecessors(annotate)
	if len(preds) != 1 || preds[0].Name != "varscan" {
		t.Fatalf("annovar preds = %v", preds)
	}
}

func TestSNVCalibrationSingleSample(t *testing.T) {
	d, _ := SNV(SNVConfig{Samples: 1})
	if _, err := d.Parse(); err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, task := range d.Graph().All() {
		total += task.CPUSeconds
	}
	// ~40000 core-seconds ⇒ ~333 min on a 2-core m3.large.
	if total < 35000 || total > 45000 {
		t.Fatalf("per-sample CPU = %.0f core-s, want ~40000", total)
	}
}

func TestSNVCRAMShrinksIntermediates(t *testing.T) {
	plain, _ := SNV(SNVConfig{Samples: 1})
	cram, _ := SNV(SNVConfig{Samples: 1, CRAM: true})
	plain.Parse()
	cram.Parse()
	sizeOf := func(d wf.StaticDriver) float64 {
		for _, task := range d.Graph().All() {
			if task.Name == "bowtie2" {
				return task.Declared["out"][0].SizeMB
			}
		}
		return 0
	}
	if sizeOf(cram) >= sizeOf(plain)/2 {
		t.Fatalf("CRAM should shrink alignments: %g vs %g", sizeOf(cram), sizeOf(plain))
	}
}

func TestSNVExternalInputs(t *testing.T) {
	_, inputs := SNV(SNVConfig{Samples: 1, External: true})
	reads := 0
	for _, in := range inputs {
		if strings.HasPrefix(in.Path, "/reads/") {
			reads++
			if !in.External {
				t.Fatalf("read input %s should be external", in.Path)
			}
		}
	}
	if reads != 8 {
		t.Fatalf("reads = %d", reads)
	}
	if TotalInputMB(inputs) != 8*1024 {
		t.Fatalf("volume = %g", TotalInputMB(inputs))
	}
}

func TestStagePlacesInputs(t *testing.T) {
	fs := testFS(t)
	inputs := []Input{
		{Path: "/a", SizeMB: 10},
		{Path: "/s3/b", SizeMB: 5, External: true},
		{Path: "/c", SizeMB: 1, Node: "node-02"},
	}
	if err := Stage(fs, inputs); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/a") || !fs.Exists("/s3/b") || !fs.Exists("/c") {
		t.Fatal("inputs not staged")
	}
	f, _ := fs.Stat("/s3/b")
	if !f.External {
		t.Fatal("external flag lost")
	}
	if fs.LocalMB("/c", "node-02") != 1 {
		t.Fatal("node placement ignored")
	}
	if err := Stage(fs, []Input{{Path: "/bad", SizeMB: -1}}); err == nil {
		t.Fatal("bad input accepted")
	}
}

func TestTRAPLINEStructure(t *testing.T) {
	d, inputs := TRAPLINE(TRAPLINEConfig{})
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	// Degree of parallelism six: six TopHat lanes start immediately.
	if len(ready) != 6 {
		t.Fatalf("ready = %d, want 6", len(ready))
	}
	all := d.Graph().All()
	// 6×(tophat+cufflinks) + merge + diff = 14.
	if len(all) != 14 {
		t.Fatalf("tasks = %d", len(all))
	}
	if len(inputs) != 7 { // genome + 6 lanes
		t.Fatalf("inputs = %d", len(inputs))
	}
	// Total input data volume: >10 GB as in the paper.
	var vol float64
	for _, in := range inputs {
		if strings.HasPrefix(in.Path, "/reads/") {
			vol += in.SizeMB
		}
	}
	if vol < 10000 {
		t.Fatalf("reads volume = %.0f MB, want >10 GB", vol)
	}
	sizes := InputSizes(inputs)
	if sizes["/ref/mm10.fa"] != 2800 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestMontageTilesByDegree(t *testing.T) {
	if n := (MontageConfig{Degree: 0.25}).tiles(); n != 11 {
		t.Fatalf("0.25° tiles = %d, want 11 (the paper's parallelism)", n)
	}
	small := (MontageConfig{Degree: 0.1}).tiles()
	big := (MontageConfig{Degree: 1}).tiles()
	if small >= big {
		t.Fatalf("tiles must grow with degree: %d vs %d", small, big)
	}
	if (MontageConfig{}).tiles() != 11 {
		t.Fatal("default degree should be 0.25")
	}
}

func TestMontageDAXParses(t *testing.T) {
	d, inputs := Montage(MontageConfig{})
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	// All 11 projections are ready initially.
	if len(ready) != 11 {
		t.Fatalf("ready = %d", len(ready))
	}
	// 11 proj + 11 diff + concat + bgmodel + 11 bg + imgtbl + add +
	// shrink + jpeg = 39.
	if got := len(d.Graph().All()); got != 39 {
		t.Fatalf("tasks = %d, want 39", got)
	}
	if len(inputs) != 12 { // region.hdr + 11 tiles
		t.Fatalf("inputs = %d", len(inputs))
	}
	// The final output is the JPEG.
	outs := d.Graph().Sinks()
	if len(outs) != 1 || outs[0] != "mosaic.jpg" {
		t.Fatalf("sinks = %v", outs)
	}
}

func TestMontageExecutesToCompletion(t *testing.T) {
	d, _ := Montage(MontageConfig{})
	ready, _ := d.Parse()
	count := 0
	for len(ready) > 0 {
		task := ready[0]
		ready = ready[1:]
		count++
		res := &wf.TaskResult{Task: task, Outputs: map[string][]wf.FileInfo{"out": task.Declared["out"]}}
		next, err := d.OnTaskComplete(res)
		if err != nil {
			t.Fatal(err)
		}
		ready = append(ready, next...)
	}
	if count != 39 || !d.Done() {
		t.Fatalf("completed %d, done=%v", count, d.Done())
	}
}

func TestKMeansCuneiformParsesAndIterates(t *testing.T) {
	src := KMeansCuneiform("/data/points.csv", 5)
	d := cuneiform.NewDriver("kmeans", src)
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 1 || ready[0].Name != "init" {
		t.Fatalf("ready = %v", ready)
	}
	// Drive three refinement iterations then converge.
	iterations := 0
	complete := func(task *wf.Task) []*wf.Task {
		outs := map[string][]wf.FileInfo{}
		for _, p := range task.OutputParams {
			if task.Meta["aggregate:"+p] == "true" {
				if task.Name == "converged" && iterations >= 3 {
					outs[p] = nil
				} else {
					outs[p] = []wf.FileInfo{{Path: strings.Join([]string{"flag", task.String()}, "-"), SizeMB: 0.01}}
				}
				continue
			}
			outs[p] = task.Declared[p]
		}
		if task.Name == "update" {
			iterations++
		}
		next, err := d.OnTaskComplete(&wf.TaskResult{Task: task, Outputs: outs})
		if err != nil {
			t.Fatal(err)
		}
		return next
	}
	queue := ready
	steps := 0
	for len(queue) > 0 && steps < 100 {
		task := queue[0]
		queue = queue[1:]
		steps++
		queue = append(queue, complete(task)...)
	}
	if !d.Done() {
		t.Fatalf("k-means did not converge (pending=%d)", d.Pending())
	}
	if iterations < 3 {
		t.Fatalf("iterations = %d", iterations)
	}
}

func TestTRAPLINEGalaxyExportParses(t *testing.T) {
	src := TRAPLINEGalaxyJSON(3)
	if !strings.Contains(src, "a_galaxy_workflow") || !strings.Contains(src, "tophat2") {
		t.Fatalf("export looks wrong: %.200s", src)
	}
	driver, inputs, err := TRAPLINEFromGalaxy(TRAPLINEConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ready, err := driver.Parse()
	if err != nil {
		t.Fatal(err)
	}
	// Six TopHat lanes ready immediately, same as the native generator.
	if len(ready) != 6 {
		t.Fatalf("ready = %d", len(ready))
	}
	all := driver.Graph().All()
	if len(all) != 14 { // 6×(tophat+cufflinks) + merge + diff
		t.Fatalf("tasks = %d", len(all))
	}
	if len(inputs) != 7 {
		t.Fatalf("inputs = %d", len(inputs))
	}
	// Profiles carried the calibration over.
	for _, task := range all {
		if task.Name == "tophat2" {
			if task.CPUSeconds != 11000 || task.Threads != 8 || task.MemMB != 12000 {
				t.Fatalf("tophat profile = %+v", task)
			}
			if task.Declared["out"][0].SizeMB != 1800*1.6 {
				t.Fatalf("tophat output size = %+v", task.Declared["out"])
			}
		}
	}
	// Structure equivalence with the native generator (task multiset by
	// signature-ish name).
	native, _ := TRAPLINE(TRAPLINEConfig{})
	if _, err := native.Parse(); err != nil {
		t.Fatal(err)
	}
	count := func(d wf.StaticDriver) map[string]int {
		m := map[string]int{}
		for _, task := range d.Graph().All() {
			m[task.Name]++
		}
		return m
	}
	g, n := count(driver), count(native)
	if g["tophat2"] != n["tophat2"] || g["cufflinks"] != n["cufflinks"] {
		t.Fatalf("structure mismatch: galaxy=%v native=%v", g, n)
	}
}

func TestTRAPLINEGalaxyExecutesToCompletion(t *testing.T) {
	driver, _, err := TRAPLINEFromGalaxy(TRAPLINEConfig{LanesPerGroup: 2})
	if err != nil {
		t.Fatal(err)
	}
	ready, err := driver.Parse()
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for len(ready) > 0 {
		task := ready[0]
		ready = ready[1:]
		done++
		res := &wf.TaskResult{Task: task, Outputs: map[string][]wf.FileInfo{"out": task.Declared["out"]}}
		next, err := driver.OnTaskComplete(res)
		if err != nil {
			t.Fatal(err)
		}
		ready = append(ready, next...)
	}
	if done != 10 || !driver.Done() { // 4×2 + merge + diff
		t.Fatalf("done=%d finished=%v", done, driver.Done())
	}
}

func TestSNVCuneiformDrivesToCompletion(t *testing.T) {
	cfg := SNVConfig{Samples: 2, FilesPerSample: 3, FileSizeMB: 64, CallSplitRegions: 4,
		AlignCPUSeconds: 10, SortCPUSeconds: 5, CallCPUSeconds: 8, AnnotateCPUSeconds: 4, RefLocal: true}
	driver, inputs, behavior := SNVCuneiformDriver("snv-test", cfg)
	if len(inputs) != 6 {
		t.Fatalf("inputs = %d", len(inputs))
	}
	ready, err := driver.Parse()
	if err != nil {
		t.Fatal(err)
	}
	// All alignments ready immediately.
	if len(ready) != 6 {
		t.Fatalf("ready = %d, want 6 aligns", len(ready))
	}
	counts := map[string]int{}
	queue := ready
	for len(queue) > 0 {
		task := queue[0]
		queue = queue[1:]
		counts[task.Name]++
		outcome := behavior(task)
		res := &wf.TaskResult{Task: task, Outputs: outcome.Outputs}
		next, err := driver.OnTaskComplete(res)
		if err != nil {
			t.Fatal(err)
		}
		queue = append(queue, next...)
	}
	if !driver.Done() {
		t.Fatalf("not done; pending = %d", driver.Pending())
	}
	// 6 aligns + 2 scatters + 2×4 calls + 2 annotates = 18.
	if counts["align"] != 6 || counts["sortscatter"] != 2 || counts["call"] != 8 || counts["annotate"] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	// The workflow outputs are the two annotated VCFs.
	if outs := driver.Outputs(); len(outs) != 2 {
		t.Fatalf("outputs = %v", outs)
	}
}

func TestSNVCuneiformCRAMSize(t *testing.T) {
	plain, _ := SNVCuneiform(SNVConfig{Samples: 1, RefLocal: true})
	cram, _ := SNVCuneiform(SNVConfig{Samples: 1, CRAM: true, RefLocal: true})
	if !strings.Contains(plain, "@size bam 1229") { // 1024 × 1.2
		t.Fatalf("plain size annotation missing:\n%.300s", plain)
	}
	if !strings.Contains(cram, "@size bam 410") { // 1024 × 0.4
		t.Fatalf("CRAM size annotation missing:\n%.300s", cram)
	}
}
