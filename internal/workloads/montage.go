package workloads

import (
	"fmt"
	"strings"

	"hiway/internal/lang/dax"
	"hiway/internal/wf"
)

// MontageConfig parameterizes the Montage mosaic workflow (§4.3). A degree
// of 0.25 yields the paper's comparably small workflow with a maximum
// degree of parallelism of eleven during the projection and background
// correction phases.
type MontageConfig struct {
	Degree float64 // mosaic size in degrees; default 0.25
	// RuntimeScale multiplies all task runtimes (default 1.0). The
	// heterogeneity experiment (§4.3) uses short tasks so that even a
	// 256-way-stressed node finishes one within the observed makespans.
	RuntimeScale float64
}

func (c MontageConfig) scale() float64 {
	if c.RuntimeScale <= 0 {
		return 1
	}
	return c.RuntimeScale
}

// montageTiles maps the degree to the number of input tiles (and thus the
// workflow's degree of parallelism).
func (c MontageConfig) tiles() int {
	d := c.Degree
	if d <= 0 {
		d = 0.25
	}
	// Montage fetches roughly (d·8+9)² /9 … for our purposes: 0.25° → 11
	// tiles, growing quadratically with the degree.
	n := int(44*d*d + 28*d + 1.25)
	if n < 2 {
		n = 2
	}
	return n
}

// MontageDAX emits the workflow as a Pegasus DAX document — the format the
// paper generated with the Montage toolkit and fed to Hi-WAY's DAX
// frontend. Runtimes are seconds on the reference machine.
func MontageDAX(cfg MontageConfig) string {
	n := cfg.tiles()
	s := cfg.scale()
	var sb strings.Builder
	sb.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	fmt.Fprintf(&sb, `<adag xmlns="http://pegasus.isi.edu/schema/DAX" name="montage-%d">`+"\n", n)

	// Phase 1: mProject — reproject each raw tile (parallelism n).
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `  <job id="proj%02d" name="mProject" runtime="%.4g" threads="1" memMB="1024">
    <uses file="raw/tile%02d.fits" link="input" sizeMB="18"/>
    <uses file="region.hdr" link="input" sizeMB="0.1"/>
    <uses file="proj/tile%02d.fits" link="output" sizeMB="35"/>
  </job>
`, i, 14*s, i, i)
	}
	// Phase 2: mDiffFit on overlapping neighbours (ring topology).
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		fmt.Fprintf(&sb, `  <job id="diff%02d" name="mDiffFit" runtime="%.4g" memMB="512">
    <uses file="proj/tile%02d.fits" link="input"/>
    <uses file="proj/tile%02d.fits" link="input"/>
    <uses file="diff/fit%02d.txt" link="output" sizeMB="0.3"/>
  </job>
`, i, 4*s, i, j, i)
	}
	// Phase 3: mConcatFit + mBgModel (sequential bottleneck).
	fmt.Fprintf(&sb, `  <job id="concat" name="mConcatFit" runtime="%.4g" memMB="512">`+"\n", 5*s)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `    <uses file="diff/fit%02d.txt" link="input"/>`+"\n", i)
	}
	sb.WriteString(`    <uses file="fits.tbl" link="output" sizeMB="0.5"/>` + "\n  </job>\n")
	fmt.Fprintf(&sb, `  <job id="bgmodel" name="mBgModel" runtime="%.4g" memMB="1024">
    <uses file="fits.tbl" link="input"/>
    <uses file="corrections.tbl" link="output" sizeMB="0.2"/>
  </job>
`, 9*s)
	// Phase 4: mBackground per tile (parallelism n again).
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `  <job id="bg%02d" name="mBackground" runtime="%.4g" memMB="1024">
    <uses file="proj/tile%02d.fits" link="input"/>
    <uses file="corrections.tbl" link="input"/>
    <uses file="corr/tile%02d.fits" link="output" sizeMB="35"/>
  </job>
`, i, 6*s, i, i)
	}
	// Phase 5: mImgtbl → mAdd → mShrink → mJPEG.
	fmt.Fprintf(&sb, `  <job id="imgtbl" name="mImgtbl" runtime="%.4g" memMB="512">`+"\n", 3*s)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `    <uses file="corr/tile%02d.fits" link="input"/>`+"\n", i)
	}
	sb.WriteString(`    <uses file="images.tbl" link="output" sizeMB="0.1"/>` + "\n  </job>\n")
	fmt.Fprintf(&sb, `  <job id="add" name="mAdd" runtime="%.4g" memMB="2048">
    <uses file="images.tbl" link="input"/>
`, 16*s)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `    <uses file="corr/tile%02d.fits" link="input"/>`+"\n", i)
	}
	fmt.Fprintf(&sb, `    <uses file="mosaic.fits" link="output" sizeMB="160"/>
  </job>
  <job id="shrink" name="mShrink" runtime="%.4g" memMB="1024">
    <uses file="mosaic.fits" link="input"/>
    <uses file="mosaic_small.fits" link="output" sizeMB="12"/>
  </job>
  <job id="jpeg" name="mJPEG" runtime="%.4g" memMB="512">
    <uses file="mosaic_small.fits" link="input"/>
    <uses file="mosaic.jpg" link="output" sizeMB="2"/>
  </job>
</adag>
`, 5*s, 3*s)
	return sb.String()
}

// Montage parses the generated DAX into a static driver plus its inputs.
func Montage(cfg MontageConfig) (wf.StaticDriver, []Input) {
	n := cfg.tiles()
	inputs := []Input{{Path: "region.hdr", SizeMB: 0.1}}
	for i := 0; i < n; i++ {
		inputs = append(inputs, Input{Path: fmt.Sprintf("raw/tile%02d.fits", i), SizeMB: 18})
	}
	return dax.NewDriver(fmt.Sprintf("montage-%.2fdeg", cfg.Degree), MontageDAX(cfg), dax.Options{}), inputs
}

// ---------------------------------------------------------------------------
// k-means (§3.3)

// KMeansCuneiform returns the iterative k-means clustering workflow in the
// Cuneiform dialect: assignment and update steps repeat until a convergence
// check emits an empty flag list.
func KMeansCuneiform(points string, k int) string {
	return fmt.Sprintf(`%%%% k-means clustering as an iterative Cuneiform workflow (paper §3.3).
deftask init( centroids : points ~k ) @cpu 5 @size centroids 2 in bash *{
  kmeans-init --k "$k" --points "$points" --out "$centroids"
}*
deftask assign( parts : points centroids ) @cpu 30 @threads 2 @size parts 40 in bash *{
  kmeans-assign --points "$points" --centroids "$centroids" --out "$parts"
}*
deftask update( centroids : parts ) @cpu 10 @size centroids 2 in bash *{
  kmeans-update --parts "$parts" --out "$centroids"
}*
deftask converged( <flag> : old new ) @cpu 2 in bash *{
  kmeans-converged --old "$old" --new "$new" --flag-dir "$flag"
}*
defun iterate( points old ) {
  new( points: points old: old )
}
defun new( points old ) {
  step( points: points old: old next: update( parts: assign( points: points centroids: old ) ) )
}
defun step( points old next ) {
  if converged( old: old new: next ) then new( points: points old: next ) else next end
}
iterate( points: %q old: init( points: %q k: "%d" ) );
`, points, points, k)
}
