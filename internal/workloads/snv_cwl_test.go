package workloads

import (
	"os"
	"testing"

	"hiway/internal/wf"
)

// TestSNVCWLDrivesToCompletion mirrors the Cuneiform drive-to-completion
// test: the CWL rendering must produce the same task counts and the same
// readiness frontier, with the region scatter declared statically instead
// of resolved by a Behavior hook.
func TestSNVCWLDrivesToCompletion(t *testing.T) {
	cfg := SNVConfig{Samples: 2, FilesPerSample: 3, FileSizeMB: 64, CallSplitRegions: 4,
		AlignCPUSeconds: 10, SortCPUSeconds: 5, CallCPUSeconds: 8, AnnotateCPUSeconds: 4, RefLocal: true}
	driver, inputs := SNVCWLDriver("snv-test", cfg)
	if len(inputs) != 6 {
		t.Fatalf("inputs = %d", len(inputs))
	}
	ready, err := driver.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 6 {
		t.Fatalf("ready = %d, want 6 aligns", len(ready))
	}
	counts := map[string]int{}
	queue := ready
	for len(queue) > 0 {
		task := queue[0]
		queue = queue[1:]
		counts[task.Name]++
		res := &wf.TaskResult{Task: task, Outputs: wf.DefaultOutcome(task).Outputs}
		next, err := driver.OnTaskComplete(res)
		if err != nil {
			t.Fatal(err)
		}
		queue = append(queue, next...)
	}
	if !driver.Done() {
		t.Fatal("driver not done after all tasks completed")
	}
	// Same shape as the Cuneiform rendering: 6 aligns + 2 scatters + 2×4
	// calls + 2 annotates.
	if counts["align"] != 6 || counts["sortscatter"] != 2 || counts["call"] != 8 || counts["annotate"] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if outs := driver.Outputs(); len(outs) != 2 {
		t.Fatalf("outputs = %v", outs)
	}
}

// TestSNVCWLResourceProfile pins the per-tool resources onto the parsed
// tasks: CWL ResourceRequirement and hiway:Profile must land where the
// Cuneiform @threads/@mem/@cpu/@size annotations do.
func TestSNVCWLResourceProfile(t *testing.T) {
	cfg := SNVConfig{Samples: 1, FilesPerSample: 2, FileSizeMB: 100, CallSplitRegions: 4, RefLocal: true}
	driver, _ := SNVCWLDriver("snv-res", cfg)
	if _, err := driver.Parse(); err != nil {
		t.Fatal(err)
	}
	byName := map[string]*wf.Task{}
	for _, task := range driver.Graph().All() {
		byName[task.Name] = task
	}
	align := byName["align"]
	if align.Threads != 8 || align.MemMB != 6500 || align.CPUSeconds != 3000 {
		t.Fatalf("align resources: threads=%d mem=%d cpu=%g", align.Threads, align.MemMB, align.CPUSeconds)
	}
	if got := align.Declared["bam"][0].SizeMB; got != 120 { // 100 × 1.2
		t.Fatalf("bam size = %g", got)
	}
	sort := byName["sortscatter"]
	if sort.Threads != 4 || sort.MemMB != 4000 {
		t.Fatalf("sortscatter resources: threads=%d mem=%d", sort.Threads, sort.MemMB)
	}
	// The aggregate output is declared up front: 4 regions, each carrying
	// its share of the merged alignment volume (120 × 2 × 0.9 / 4).
	regions := sort.Declared["regions"]
	if len(regions) != 4 {
		t.Fatalf("regions = %d, want 4", len(regions))
	}
	if got := regions[0].SizeMB; got != 54 {
		t.Fatalf("region size = %g", got)
	}
	annotate := byName["annotate"]
	if annotate.Threads != 2 || annotate.MemMB != 3000 {
		t.Fatalf("annotate resources: threads=%d mem=%d", annotate.Threads, annotate.MemMB)
	}
}

// TestSNVCWLExampleInSync keeps the committed examples/snv.cwl identical to
// the generator's output, so the runnable example never drifts from the
// code that the experiments and the equivalence tests exercise.
func TestSNVCWLExampleInSync(t *testing.T) {
	want, _ := SNVCWL(SNVConfig{CallSplitRegions: 4})
	got, err := os.ReadFile("../../examples/snv.cwl")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatal("examples/snv.cwl is out of sync with workloads.SNVCWL(SNVConfig{CallSplitRegions: 4}); regenerate it")
	}
}
