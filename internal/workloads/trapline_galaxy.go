package workloads

import (
	"encoding/json"
	"fmt"

	"hiway/internal/lang/galaxy"
	"hiway/internal/wf"
)

// This file emits the TRAPLINE RNA-seq pipeline as a Galaxy exported
// workflow (the .ga JSON format), mirroring how the paper obtained it:
// Wolfien et al. published TRAPLINE through Galaxy's public workflow
// repository, and Hi-WAY executed the export (§4.2). Routing the benchmark
// through the Galaxy frontend exercises the same code path.

type gaStep struct {
	ID               int                 `json:"id"`
	Type             string              `json:"type"`
	Label            string              `json:"label,omitempty"`
	Name             string              `json:"name,omitempty"`
	ToolID           string              `json:"tool_id,omitempty"`
	Inputs           []map[string]string `json:"inputs,omitempty"`
	Outputs          []map[string]string `json:"outputs,omitempty"`
	InputConnections map[string]gaConn   `json:"input_connections,omitempty"`
}

type gaConn struct {
	ID         int    `json:"id"`
	OutputName string `json:"output_name"`
}

// TRAPLINEGalaxyJSON renders the pipeline as a Galaxy export: one
// data-input step per replicate lane plus the reference genome, a TopHat 2
// and a Cufflinks step per lane, then Cuffmerge and Cuffdiff joins.
func TRAPLINEGalaxyJSON(lanesPerGroup int) string {
	if lanesPerGroup <= 0 {
		lanesPerGroup = 3
	}
	lanes := lanesPerGroup * 2
	steps := map[string]gaStep{}
	id := 0
	add := func(s gaStep) int {
		s.ID = id
		steps[fmt.Sprint(id)] = s
		id++
		return s.ID
	}

	genome := add(gaStep{Type: "data_input", Label: "genome"})
	var laneInputs []int
	for l := 0; l < lanes; l++ {
		group := "young"
		if l >= lanesPerGroup {
			group = "aged"
		}
		laneInputs = append(laneInputs, add(gaStep{
			Type:  "data_input",
			Label: fmt.Sprintf("%s_rep%d", group, l%lanesPerGroup),
		}))
	}
	var cuffOut []int
	for l := 0; l < lanes; l++ {
		tophat := add(gaStep{
			Type:   "tool",
			ToolID: "toolshed.g2.bx.psu.edu/repos/devteam/tophat2/tophat2/2.1.0",
			Name:   "TopHat2",
			InputConnections: map[string]gaConn{
				"input":     {ID: laneInputs[l], OutputName: "output"},
				"reference": {ID: genome, OutputName: "output"},
			},
			Outputs: []map[string]string{{"name": "accepted_hits", "type": "bam"}},
		})
		cufflinks := add(gaStep{
			Type:   "tool",
			ToolID: "toolshed.g2.bx.psu.edu/repos/devteam/cufflinks/cufflinks/2.2.1",
			Name:   "Cufflinks",
			InputConnections: map[string]gaConn{
				"input": {ID: tophat, OutputName: "accepted_hits"},
			},
			Outputs: []map[string]string{{"name": "assembly", "type": "gtf"}},
		})
		cuffOut = append(cuffOut, cufflinks)
	}
	mergeConns := map[string]gaConn{"genome": {ID: genome, OutputName: "output"}}
	for i, c := range cuffOut {
		mergeConns[fmt.Sprintf("assembly%d", i)] = gaConn{ID: c, OutputName: "assembly"}
	}
	merge := add(gaStep{
		Type:             "tool",
		ToolID:           "toolshed.g2.bx.psu.edu/repos/devteam/cuffmerge/cuffmerge/2.2.1",
		Name:             "Cuffmerge",
		InputConnections: mergeConns,
		Outputs:          []map[string]string{{"name": "merged", "type": "gtf"}},
	})
	add(gaStep{
		Type:   "tool",
		ToolID: "toolshed.g2.bx.psu.edu/repos/devteam/cuffdiff/cuffdiff/2.2.1",
		Name:   "Cuffdiff",
		InputConnections: map[string]gaConn{
			"transcripts": {ID: merge, OutputName: "merged"},
		},
		Outputs: []map[string]string{{"name": "diff", "type": "tabular"}},
	})

	doc := map[string]any{
		"a_galaxy_workflow": "true",
		"name":              "TRAPLINE",
		"annotation":        "Standardized RNA-seq analysis pipeline (Wolfien et al. 2016)",
		"steps":             steps,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic("workloads: marshaling TRAPLINE export: " + err.Error())
	}
	return string(b)
}

// TRAPLINEFromGalaxy parses the generated Galaxy export into a driver with
// the same resource calibration as TRAPLINE, plus the matching inputs.
func TRAPLINEFromGalaxy(cfg TRAPLINEConfig) (wf.StaticDriver, []Input, error) {
	cfg.setDefaults()
	lanes := cfg.LanesPerGroup * 2
	genome := Input{Path: "/ref/mm10.fa", SizeMB: 2800}
	inputs := []Input{genome}
	binds := map[string]string{"genome": genome.Path}
	for l := 0; l < lanes; l++ {
		group := "young"
		if l >= cfg.LanesPerGroup {
			group = "aged"
		}
		in := Input{Path: fmt.Sprintf("/reads/%s/rep%d.fastq", group, l%cfg.LanesPerGroup), SizeMB: cfg.ReadsSizeMB}
		inputs = append(inputs, in)
		binds[fmt.Sprintf("%s_rep%d", group, l%cfg.LanesPerGroup)] = in.Path
	}
	driver := galaxy.NewDriver("trapline-galaxy", TRAPLINEGalaxyJSON(cfg.LanesPerGroup), galaxy.Options{
		Inputs: binds,
		Profiles: map[string]wf.Profile{
			"tophat2":   {CPUSeconds: cfg.TophatCPUSeconds, Threads: 8, MemMB: 12000, OutputSizeMB: cfg.ReadsSizeMB * 1.6},
			"cufflinks": {CPUSeconds: cfg.CufflinksCPUSeconds, Threads: 8, MemMB: 10000, OutputSizeMB: 120},
			"cuffmerge": {CPUSeconds: cfg.MergeCPUSeconds, Threads: 8, MemMB: 8000, OutputSizeMB: 200},
			"cuffdiff":  {CPUSeconds: cfg.DiffCPUSeconds, Threads: 8, MemMB: 12000, OutputSizeMB: 40},
		},
	})
	// Validate the export parses before handing it out.
	if _, err := galaxy.NewDriver("probe", TRAPLINEGalaxyJSON(cfg.LanesPerGroup), galaxy.Options{Inputs: binds}).Parse(); err != nil {
		return nil, nil, fmt.Errorf("workloads: TRAPLINE Galaxy export invalid: %w", err)
	}
	return driver, inputs, nil
}
