//go:build !unix

package localexec

import "os/exec"

// setupProcessGroup is a no-op on platforms without POSIX process groups;
// exec.CommandContext's default cancel (kill the direct child) applies.
func setupProcessGroup(cmd *exec.Cmd) {}
