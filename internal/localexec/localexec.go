// Package localexec runs workflows with real processes on the local
// machine — the proof that Hi-WAY's black-box task model drives actual
// tools, not only the simulated substrate. It executes any wf.Driver
// (including iterative Cuneiform workflows) with a pool of parallel
// workers, a shared data directory standing in for HDFS, per-task
// environment bindings, and wall-clock provenance.
package localexec

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"hiway/internal/provenance"
	"hiway/internal/wf"
)

// Config tunes local execution.
type Config struct {
	// WorkDir is the staging root; its data/ subdirectory plays the role
	// of HDFS. Required.
	WorkDir string
	// Workers is the number of tasks run in parallel (default: NumCPU,
	// capped at 8).
	Workers int
	// Shell interprets task commands (default: bash, falling back to sh).
	Shell string
	// Timeout bounds one task's execution (0 = unbounded).
	Timeout time.Duration
	// Prov, if set, receives workflow/task events with wall-clock times.
	Prov *provenance.Manager
	// WorkflowID for provenance; derived from the driver name if empty.
	WorkflowID string
}

// Report summarizes a local run.
type Report struct {
	WorkflowID   string
	WorkflowName string
	MakespanSec  float64
	Succeeded    bool
	Err          error
	Results      []*wf.TaskResult
	Outputs      []string // absolute paths under the data directory
	DataDir      string
}

const maxCaptureBytes = 64 * 1024

// Run executes the workflow to completion.
func Run(driver wf.Driver, cfg Config) (*Report, error) {
	if cfg.WorkDir == "" {
		return nil, fmt.Errorf("localexec: WorkDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
		if cfg.Workers > 8 {
			cfg.Workers = 8
		}
	}
	if cfg.Shell == "" {
		if _, err := exec.LookPath("bash"); err == nil {
			cfg.Shell = "bash"
		} else {
			cfg.Shell = "sh"
		}
	}
	if cfg.WorkflowID == "" {
		cfg.WorkflowID = fmt.Sprintf("local-%s-%d", driver.Name(), os.Getpid())
	}
	dataDir := filepath.Join(cfg.WorkDir, "data")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, fmt.Errorf("localexec: creating data dir: %w", err)
	}

	r := &runner{cfg: cfg, driver: driver, dataDir: dataDir, start: time.Now()}
	return r.run()
}

type runner struct {
	cfg     Config
	driver  wf.Driver
	dataDir string
	start   time.Time
}

func (r *runner) now() float64 { return time.Since(r.start).Seconds() }

func (r *runner) provStart() {
	if r.cfg.Prov != nil {
		_ = r.cfg.Prov.RecordWorkflowStart(r.cfg.WorkflowID, r.driver.Name(), r.now())
	}
}

func (r *runner) provEnd(ok bool) {
	if r.cfg.Prov != nil {
		_ = r.cfg.Prov.RecordWorkflowEnd(r.cfg.WorkflowID, r.driver.Name(), r.now(), r.now(), ok)
	}
}

func (r *runner) provTask(res *wf.TaskResult) {
	if r.cfg.Prov == nil {
		return
	}
	sizes := make(map[string]float64, len(res.Task.Inputs))
	for _, in := range res.Task.Inputs {
		if st, err := os.Stat(filepath.Join(r.dataDir, filepath.FromSlash(in))); err == nil {
			sizes[in] = float64(st.Size()) / (1024 * 1024)
		}
	}
	_ = r.cfg.Prov.RecordTaskEnd(r.cfg.WorkflowID, r.driver.Name(), res, sizes)
}

// run is the dispatcher loop: ready tasks go to a bounded worker pool;
// completions feed the driver, which may discover more tasks.
func (r *runner) run() (*Report, error) {
	report := &Report{
		WorkflowID:   r.cfg.WorkflowID,
		WorkflowName: r.driver.Name(),
		DataDir:      r.dataDir,
	}
	r.provStart()
	finishErr := func(err error) (*Report, error) {
		report.Err = err
		report.Succeeded = err == nil
		report.MakespanSec = r.now()
		r.provEnd(err == nil)
		if err == nil {
			for _, out := range r.driver.Outputs() {
				report.Outputs = append(report.Outputs, filepath.Join(r.dataDir, filepath.FromSlash(out)))
			}
		}
		return report, err
	}

	ready, err := r.driver.Parse()
	if err != nil {
		return finishErr(fmt.Errorf("localexec: parsing: %w", err))
	}
	results := make(chan *wf.TaskResult)
	slots := make(chan struct{}, r.cfg.Workers)
	running := 0
	launch := func(t *wf.Task) {
		running++
		go func() {
			slots <- struct{}{}
			res := r.execute(t)
			<-slots
			results <- res
		}()
	}
	for _, t := range ready {
		launch(t)
	}
	for running > 0 {
		res := <-results
		running--
		report.Results = append(report.Results, res)
		r.provTask(res)
		next, err := r.driver.OnTaskComplete(res)
		if err != nil {
			// Drain remaining workers before reporting.
			for running > 0 {
				extra := <-results
				running--
				report.Results = append(report.Results, extra)
				r.provTask(extra)
			}
			return finishErr(err)
		}
		for _, t := range next {
			launch(t)
		}
	}
	if !r.driver.Done() {
		return finishErr(fmt.Errorf("localexec: workflow %s stalled after %d tasks", r.driver.Name(), len(report.Results)))
	}
	return finishErr(nil)
}

// execute runs one task as a real process in the data directory.
func (r *runner) execute(t *wf.Task) *wf.TaskResult {
	res := &wf.TaskResult{Task: t, Node: hostname(), Start: r.now()}
	fail := func(code int, format string, args ...any) *wf.TaskResult {
		res.ExitCode = code
		res.Error = fmt.Sprintf(format, args...)
		res.End = r.now()
		return res
	}

	// Stage-in check: every input must exist in the data directory.
	for _, in := range t.Inputs {
		if _, err := os.Stat(filepath.Join(r.dataDir, filepath.FromSlash(in))); err != nil {
			return fail(1, "input %s missing: %v", in, err)
		}
	}
	// Pre-create output parent directories.
	for _, fi := range t.DeclaredOutputs() {
		dir := filepath.Dir(filepath.Join(r.dataDir, filepath.FromSlash(fi.Path)))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fail(1, "creating output dir: %v", err)
		}
	}

	if strings.TrimSpace(t.Command) != "" {
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if r.cfg.Timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, r.cfg.Timeout)
		}
		defer cancel()
		cmd := exec.CommandContext(ctx, r.cfg.Shell, "-c", t.Command)
		// Kill the whole process group on timeout so background
		// grandchildren die with the shell; WaitDelay is the backstop for
		// anything that still holds the output pipes.
		setupProcessGroup(cmd)
		cmd.WaitDelay = time.Second
		cmd.Dir = r.dataDir
		cmd.Env = os.Environ()
		for k, v := range t.Env {
			cmd.Env = append(cmd.Env, fmt.Sprintf("%s=%s", k, v))
		}
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		execStart := r.now()
		err := cmd.Run()
		res.ExecSec = r.now() - execStart
		res.Stdout = clip(stdout.String())
		res.Stderr = clip(stderr.String())
		if ctx.Err() == context.DeadlineExceeded {
			return fail(124, "task timed out after %s", r.cfg.Timeout)
		}
		if err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				return fail(ee.ExitCode(), "command failed: %v", err)
			}
			return fail(1, "launching command: %v", err)
		}
	}

	// Collect declared outputs with their real sizes.
	res.Outputs = make(map[string][]wf.FileInfo, len(t.OutputParams))
	for _, param := range t.OutputParams {
		for _, fi := range t.Declared[param] {
			abs := filepath.Join(r.dataDir, filepath.FromSlash(fi.Path))
			st, err := os.Stat(abs)
			if err != nil {
				return fail(1, "declared output %s not produced", fi.Path)
			}
			res.Outputs[param] = append(res.Outputs[param],
				wf.FileInfo{Path: fi.Path, SizeMB: float64(st.Size()) / (1024 * 1024)})
		}
	}
	res.End = r.now()
	return res
}

func clip(s string) string {
	if len(s) > maxCaptureBytes {
		return s[:maxCaptureBytes] + "\n...[truncated]"
	}
	return s
}

func hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return "localhost"
	}
	return h
}

// Stage copies (or creates) an input file into the run's data directory —
// the local analogue of putting workflow input data into HDFS.
func Stage(workDir, path string, content []byte) error {
	abs := filepath.Join(workDir, "data", filepath.FromSlash(path))
	if err := os.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
		return fmt.Errorf("localexec: staging %s: %w", path, err)
	}
	return os.WriteFile(abs, content, 0o644)
}
