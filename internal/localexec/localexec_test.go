package localexec

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hiway/internal/lang/cuneiform"
	"hiway/internal/provenance"
)

func TestRunRealPipeline(t *testing.T) {
	dir := t.TempDir()
	if err := Stage(dir, "input/words.txt", []byte("alpha\nbeta\ngamma\n")); err != nil {
		t.Fatal(err)
	}
	// upper: uppercase the file; count: count lines of the uppercased file.
	d := cuneiform.NewDriver("textpipe", `
deftask upper( out : inp ) in bash *{ tr a-z A-Z < $inp > $out }*
deftask count( out : inp ) in bash *{ wc -l < $inp > $out }*
count( inp: upper( inp: "input/words.txt" ) );`)
	prov, _ := provenance.NewManager(provenance.NewMemStore())
	rep, err := Run(d, Config{WorkDir: dir, Workers: 2, Prov: prov})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded || len(rep.Results) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Outputs) != 1 {
		t.Fatalf("outputs = %v", rep.Outputs)
	}
	data, err := os.ReadFile(rep.Outputs[0])
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "3" {
		t.Fatalf("count output = %q, want 3", data)
	}
	// Provenance captured wall-clock events.
	events, _ := prov.Store().Events()
	if len(events) != 4 { // wf-start + 2 task-end + wf-end
		t.Fatalf("events = %d", len(events))
	}
	// Intermediate file really exists with uppercase content.
	var upperOut string
	for _, r := range rep.Results {
		if r.Task.Name == "upper" {
			upperOut = r.Outputs["out"][0].Path
			if r.Outputs["out"][0].SizeMB <= 0 {
				t.Fatal("real size not measured")
			}
		}
	}
	got, _ := os.ReadFile(filepath.Join(rep.DataDir, upperOut))
	if !strings.Contains(string(got), "ALPHA") {
		t.Fatalf("intermediate = %q", got)
	}
}

func TestParallelFanOut(t *testing.T) {
	dir := t.TempDir()
	for _, f := range []string{"a", "b", "c", "d"} {
		Stage(dir, "in/"+f+".txt", []byte(f+"\n"))
	}
	d := cuneiform.NewDriver("fan", `
deftask stamp( out : inp ) in bash *{ cat $inp $inp > $out }*
let files = "in/a.txt" "in/b.txt" "in/c.txt" "in/d.txt";
stamp( inp: files );`)
	rep, err := Run(d, Config{WorkDir: dir, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 4 || len(rep.Outputs) != 4 {
		t.Fatalf("results=%d outputs=%d", len(rep.Results), len(rep.Outputs))
	}
	for _, out := range rep.Outputs {
		if _, err := os.Stat(out); err != nil {
			t.Fatalf("output missing: %v", err)
		}
	}
}

func TestFailingCommandSurfacesStderrAndCode(t *testing.T) {
	dir := t.TempDir()
	d := cuneiform.NewDriver("boom", `
deftask boom( out : ~x ) in bash *{ echo kaput >&2; exit 3 }*
boom( x: "1" );`)
	rep, err := Run(d, Config{WorkDir: dir})
	if err == nil || rep.Succeeded {
		t.Fatalf("expected failure, got %+v", rep)
	}
	res := rep.Results[0]
	if res.ExitCode != 3 {
		t.Fatalf("exit = %d, want 3", res.ExitCode)
	}
	if !strings.Contains(res.Stderr, "kaput") {
		t.Fatalf("stderr = %q", res.Stderr)
	}
}

func TestMissingDeclaredOutputFails(t *testing.T) {
	dir := t.TempDir()
	d := cuneiform.NewDriver("noout", `
deftask lazy( out : ~x ) in bash *{ true }*
lazy( x: "1" );`)
	rep, err := Run(d, Config{WorkDir: dir})
	if err == nil || rep.Succeeded {
		t.Fatal("task that produces nothing must fail")
	}
	if !strings.Contains(rep.Results[0].Error, "not produced") {
		t.Fatalf("error = %q", rep.Results[0].Error)
	}
}

func TestMissingInputFails(t *testing.T) {
	dir := t.TempDir()
	d := cuneiform.NewDriver("noin", `
deftask c( out : inp ) in bash *{ cp $inp $out }*
c( inp: "ghost.txt" );`)
	rep, err := Run(d, Config{WorkDir: dir})
	if err == nil || rep.Succeeded {
		t.Fatal("missing input must fail")
	}
}

func TestTimeout(t *testing.T) {
	dir := t.TempDir()
	d := cuneiform.NewDriver("slow", `
deftask nap( out : ~x ) in bash *{ sleep 5; touch $out }*
nap( x: "1" );`)
	start := time.Now()
	rep, err := Run(d, Config{WorkDir: dir, Timeout: 200 * time.Millisecond})
	if err == nil || rep.Succeeded {
		t.Fatal("timeout must fail the task")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("timeout not enforced promptly")
	}
	if rep.Results[0].ExitCode != 124 {
		t.Fatalf("exit = %d, want 124", rep.Results[0].ExitCode)
	}
}

func TestEnvBindingsExported(t *testing.T) {
	dir := t.TempDir()
	Stage(dir, "x.txt", []byte("payload"))
	d := cuneiform.NewDriver("env", `
deftask show( out : inp ~label ) in bash *{ echo "$label" > $out; cat $inp >> $out }*
show( inp: "x.txt" label: "tag-42" );`)
	rep, err := Run(d, Config{WorkDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(rep.Outputs[0])
	if !strings.Contains(string(data), "tag-42") || !strings.Contains(string(data), "payload") {
		t.Fatalf("output = %q", data)
	}
}

func TestIterativeWorkflowLocally(t *testing.T) {
	dir := t.TempDir()
	Stage(dir, "counter", []byte("xxxx\n")) // 4 x's: loop strips one per step
	// check emits "go" while the file has >1 x; grep exits 0/1 → flag file
	// non-empty/empty; the aggregate-output convention is simulated via a
	// plain output read back by the driver: here we use a value-driven
	// conditional instead — step until the file has a single character.
	d := cuneiform.NewDriver("shrink", `
deftask strip( out : cur ) in bash *{ tail -c +2 $cur > $out }*
deftask check( <flag> : cur ) in bash *{ true }*
defun loop( cur ) {
  if check( cur: cur ) then loop( cur: strip( cur: cur ) ) else cur end
}
loop( cur: "counter" );`)
	// Aggregate outputs are decided by the engine; locally we cannot glob
	// them, so the local executor treats declared-empty aggregates as
	// empty lists. The loop therefore terminates after the first check.
	rep, err := Run(d, Config{WorkDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Outputs) != 1 || !strings.HasSuffix(rep.Outputs[0], "counter") {
		t.Fatalf("outputs = %v", rep.Outputs)
	}
}

func TestConfigValidation(t *testing.T) {
	d := cuneiform.NewDriver("x", `"t";`)
	if _, err := Run(d, Config{}); err == nil {
		t.Fatal("missing WorkDir must fail")
	}
}

func TestParseErrorReported(t *testing.T) {
	d := cuneiform.NewDriver("bad", `deftask`)
	rep, err := Run(d, Config{WorkDir: t.TempDir()})
	if err == nil || rep.Succeeded {
		t.Fatal("parse error must fail the run")
	}
}

func TestWorkerPoolBoundsParallelism(t *testing.T) {
	// 12 tasks each writing a timestamp; with 3 workers the distinct
	// concurrency observed via a lock file never exceeds the pool size.
	dir := t.TempDir()
	var sb strings.Builder
	sb.WriteString(`deftask probe( out : ~id ) in bash *{
  n=$(ls /tmp/hiway-pool-$$ 2>/dev/null | wc -l)
  touch $out
}*
let ids = `)
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&sb, "%q ", fmt.Sprintf("id%02d", i))
	}
	sb.WriteString(";\nprobe( id: ids );")
	d := cuneiform.NewDriver("pool", sb.String())
	rep, err := Run(d, Config{WorkDir: dir, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 12 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	// All outputs exist.
	for _, out := range rep.Outputs {
		if _, err := os.Stat(out); err != nil {
			t.Fatal(err)
		}
	}
}
