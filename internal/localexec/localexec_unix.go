//go:build unix

package localexec

import (
	"os/exec"
	"syscall"
)

// setupProcessGroup puts the task's shell into its own process group and
// kills the whole group on timeout. Without this, only the shell receives
// the kill and background grandchildren (e.g. `tool &` inside a task
// command) keep running — and keep the output pipes open — after the task
// is reported dead.
func setupProcessGroup(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	cmd.Cancel = func() error {
		// Negative pid addresses the process group. The group leader is
		// the shell itself because of Setpgid.
		return syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
	}
}
