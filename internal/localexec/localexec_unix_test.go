//go:build unix

package localexec

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"hiway/internal/lang/cuneiform"
)

// TestTimeoutKillsGrandchildren verifies the process-group kill: a task
// that backgrounds a long-running grandchild must not leave it alive after
// the timeout fires, or the "dead" task would keep consuming the machine.
func TestTimeoutKillsGrandchildren(t *testing.T) {
	dir := t.TempDir()
	// The shell (child) backgrounds a sleep (grandchild), records its pid,
	// then blocks. Killing only the shell would orphan the sleep.
	d := cuneiform.NewDriver("orphan", `
deftask spawn( out : ~x ) in bash *{ sleep 60 & echo $! > gc.pid; sync; wait }*
spawn( x: "1" );`)
	rep, err := Run(d, Config{WorkDir: dir, Timeout: 300 * time.Millisecond})
	if err == nil || rep.Succeeded {
		t.Fatal("timeout must fail the task")
	}
	if rep.Results[0].ExitCode != 124 {
		t.Fatalf("exit = %d, want 124", rep.Results[0].ExitCode)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "data", "gc.pid"))
	if err != nil {
		t.Fatalf("grandchild pid not recorded: %v", err)
	}
	pid, err := strconv.Atoi(strings.TrimSpace(string(raw)))
	if err != nil {
		t.Fatalf("bad pid %q: %v", raw, err)
	}
	// The group kill is synchronous with Cancel, but give the kernel a
	// moment to reap before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		// Signal 0 probes existence. ESRCH means the grandchild is gone;
		// EPERM would mean it still exists under another uid.
		err := syscall.Kill(pid, 0)
		if err == syscall.ESRCH {
			return
		}
		if time.Now().After(deadline) {
			syscall.Kill(pid, syscall.SIGKILL) // don't actually leak it
			t.Fatalf("grandchild %d still alive after timeout (err=%v)", pid, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
