package wf

// Profile supplies a resource profile for tasks parsed from workflow
// languages that do not annotate resource demands themselves (DAX without
// runtime attributes, Galaxy). The simulated substrate needs CPU seconds
// and data volumes in place of running the real tool; the local executor
// ignores profiles entirely.
type Profile struct {
	CPUSeconds   float64 // reference core-seconds of compute
	Threads      int     // maximum useful parallelism
	MemMB        int     // memory demand
	OutputSizeMB float64 // size for declared outputs without an explicit size
}

// ApplyTo fills zero-valued resource fields of the task from the profile.
// Explicit annotations from the workflow text win over the profile.
func (p Profile) ApplyTo(t *Task) {
	if t.CPUSeconds == 0 {
		t.CPUSeconds = p.CPUSeconds
	}
	if t.Threads == 0 {
		t.Threads = p.Threads
	}
	if t.MemMB == 0 {
		t.MemMB = p.MemMB
	}
	if p.OutputSizeMB > 0 {
		for param, fis := range t.Declared {
			for i := range fis {
				if fis[i].SizeMB == 0 {
					fis[i].SizeMB = p.OutputSizeMB
				}
			}
			t.Declared[param] = fis
		}
	}
	if t.Threads == 0 {
		t.Threads = 1
	}
}
