package wf

import (
	"fmt"
	"testing"
)

// layeredTasks builds a DAG of depth layers with width tasks each, every
// task consuming one file from the previous layer.
func layeredTasks(layers, width int) ([]*Task, []string) {
	var tasks []*Task
	var prev []string
	inputs := []string{"seed"}
	prev = inputs
	for l := 0; l < layers; l++ {
		var outs []string
		for w := 0; w < width; w++ {
			out := fmt.Sprintf("f-%d-%d", l, w)
			tasks = append(tasks, mkTask("t", []string{prev[w%len(prev)]}, out))
			outs = append(outs, out)
		}
		prev = outs
	}
	return tasks, inputs
}

func BenchmarkNewDAG(b *testing.B) {
	tasks, inputs := layeredTasks(10, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewDAG(tasks, inputs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDAGExecution(b *testing.B) {
	tasks, inputs := layeredTasks(10, 100)
	for i := 0; i < b.N; i++ {
		d, err := NewDAG(tasks, inputs, nil)
		if err != nil {
			b.Fatal(err)
		}
		queue := d.Ready()
		for len(queue) > 0 {
			t := queue[0]
			queue = queue[1:]
			queue = append(queue, d.Complete(t, t.DeclaredOutputs())...)
		}
		if !d.Done() {
			b.Fatal("not done")
		}
	}
}

func BenchmarkAnalyze(b *testing.B) {
	tasks, inputs := layeredTasks(10, 100)
	d, err := NewDAG(tasks, inputs, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := Analyze(d)
		if a.Tasks != 1000 {
			b.Fatal("bad analysis")
		}
	}
}
