package wf

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mkTask(name string, inputs []string, outputs ...string) *Task {
	fis := make([]FileInfo, len(outputs))
	for i, o := range outputs {
		fis[i] = FileInfo{Path: o, SizeMB: 1}
	}
	return NewTask(name, inputs, fis)
}

func TestNextIDUnique(t *testing.T) {
	a, b := NextID(), NextID()
	if a == b {
		t.Fatal("IDs not unique")
	}
}

func TestTaskValidate(t *testing.T) {
	good := mkTask("a", []string{"in"}, "out")
	if err := good.Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	for _, bad := range []*Task{
		{ID: 1},
		mkTask("neg", nil, "o"),
		mkTask("selfloop", []string{"x"}, "x"),
		mkTask("emptyin", []string{""}, "o"),
		mkTask("emptyout", nil, ""),
	} {
		if bad.Name == "neg" {
			bad.CPUSeconds = -1
		}
		if err := bad.Validate(); err == nil {
			t.Fatalf("invalid task %q accepted", bad.Name)
		}
	}
}

func TestDeclaredOutputsOrder(t *testing.T) {
	task := &Task{
		ID:           NextID(),
		Name:         "multi",
		OutputParams: []string{"bam", "log"},
		Declared: map[string][]FileInfo{
			"log": {{Path: "l", SizeMB: 1}},
			"bam": {{Path: "b1", SizeMB: 2}, {Path: "b2", SizeMB: 3}},
		},
	}
	paths := task.DeclaredPaths()
	want := []string{"b1", "b2", "l"}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("paths = %v, want %v", paths, want)
		}
	}
}

func TestDefaultOutcome(t *testing.T) {
	task := mkTask("a", nil, "o1", "o2")
	oc := DefaultOutcome(task)
	if oc.ExitCode != 0 || len(oc.Outputs["out"]) != 2 {
		t.Fatalf("outcome = %+v", oc)
	}
	// Mutating the outcome must not touch the declaration.
	oc.Outputs["out"][0].Path = "mutated"
	if task.Declared["out"][0].Path != "o1" {
		t.Fatal("DefaultOutcome aliases the declaration")
	}
}

func TestResultOutputFilesIncludesExtras(t *testing.T) {
	task := mkTask("a", nil, "o")
	res := &TaskResult{
		Task: task,
		Outputs: map[string][]FileInfo{
			"out":   {{Path: "o"}},
			"bonus": {{Path: "b"}},
		},
	}
	files := res.OutputFiles()
	if len(files) != 2 || files[0].Path != "o" || files[1].Path != "b" {
		t.Fatalf("files = %v", files)
	}
}

func TestResultSucceeded(t *testing.T) {
	if !(&TaskResult{}).Succeeded() {
		t.Fatal("clean result should succeed")
	}
	if (&TaskResult{ExitCode: 1}).Succeeded() {
		t.Fatal("exit 1 should fail")
	}
	if (&TaskResult{Error: "boom"}).Succeeded() {
		t.Fatal("error should fail")
	}
}

// Chain: a -> b -> c via files.
func TestDAGChain(t *testing.T) {
	a := mkTask("a", []string{"in"}, "x")
	b := mkTask("b", []string{"x"}, "y")
	c := mkTask("c", []string{"y"}, "z")
	d, err := NewDAG([]*Task{a, b, c}, []string{"in"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ready := d.Ready()
	if len(ready) != 1 || ready[0] != a {
		t.Fatalf("ready = %v", ready)
	}
	if d.Ready() != nil {
		t.Fatal("Ready must not re-release tasks")
	}
	next := d.Complete(a, a.DeclaredOutputs())
	if len(next) != 1 || next[0] != b {
		t.Fatalf("after a: %v", next)
	}
	next = d.Complete(b, b.DeclaredOutputs())
	if len(next) != 1 || next[0] != c {
		t.Fatalf("after b: %v", next)
	}
	if d.Done() {
		t.Fatal("not done yet")
	}
	d.Complete(c, c.DeclaredOutputs())
	if !d.Done() || d.Remaining() != 0 {
		t.Fatal("should be done")
	}
	sinks := d.Sinks()
	if len(sinks) != 1 || sinks[0] != "z" {
		t.Fatalf("sinks = %v", sinks)
	}
}

func TestDAGDiamond(t *testing.T) {
	a := mkTask("a", []string{"in"}, "x")
	b := mkTask("b", []string{"x"}, "y1")
	c := mkTask("c", []string{"x"}, "y2")
	e := mkTask("e", []string{"y1", "y2"}, "z")
	d, err := NewDAG([]*Task{a, b, c, e}, []string{"in"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Ready()
	next := d.Complete(a, a.DeclaredOutputs())
	if len(next) != 2 {
		t.Fatalf("diamond fan-out = %v", next)
	}
	d.Complete(b, b.DeclaredOutputs())
	if got := d.Complete(c, c.DeclaredOutputs()); len(got) != 1 || got[0] != e {
		t.Fatalf("join not released correctly: %v", got)
	}
	if len(d.Predecessors(e)) != 2 || len(d.Successors(a)) != 2 {
		t.Fatal("adjacency wrong")
	}
}

func TestDAGExplicitEdges(t *testing.T) {
	a := mkTask("a", nil, "x")
	b := mkTask("b", nil, "y") // no data dep on a
	d, err := NewDAG([]*Task{a, b}, nil, []Edge{{Parent: a.ID, Child: b.ID}})
	if err != nil {
		t.Fatal(err)
	}
	ready := d.Ready()
	if len(ready) != 1 || ready[0] != a {
		t.Fatalf("explicit edge ignored: %v", ready)
	}
	if got := d.Complete(a, nil); len(got) != 1 || got[0] != b {
		t.Fatalf("child not released: %v", got)
	}
}

func TestDAGRejectsCycle(t *testing.T) {
	a := mkTask("a", []string{"z"}, "x")
	b := mkTask("b", []string{"x"}, "z")
	if _, err := NewDAG([]*Task{a, b}, nil, nil); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestDAGRejectsExplicitCycle(t *testing.T) {
	a := mkTask("a", nil, "x")
	b := mkTask("b", nil, "y")
	edges := []Edge{{Parent: a.ID, Child: b.ID}, {Parent: b.ID, Child: a.ID}}
	if _, err := NewDAG([]*Task{a, b}, nil, edges); err == nil {
		t.Fatal("explicit cycle not detected")
	}
}

func TestDAGRejectsMissingProducer(t *testing.T) {
	a := mkTask("a", []string{"ghost"}, "x")
	_, err := NewDAG([]*Task{a}, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("missing producer not reported: %v", err)
	}
}

func TestDAGRejectsDuplicateProducer(t *testing.T) {
	a := mkTask("a", nil, "x")
	b := mkTask("b", nil, "x")
	if _, err := NewDAG([]*Task{a, b}, nil, nil); err == nil {
		t.Fatal("duplicate producer not detected")
	}
}

func TestDAGRejectsUnknownEdgeEndpoint(t *testing.T) {
	a := mkTask("a", nil, "x")
	if _, err := NewDAG([]*Task{a}, nil, []Edge{{Parent: a.ID, Child: 9999}}); err == nil {
		t.Fatal("unknown edge endpoint not detected")
	}
	if _, err := NewDAG([]*Task{a}, nil, []Edge{{Parent: a.ID, Child: a.ID}}); err == nil {
		t.Fatal("self edge not detected")
	}
}

func TestDAGCompleteIdempotent(t *testing.T) {
	a := mkTask("a", nil, "x")
	b := mkTask("b", []string{"x"}, "y")
	d, _ := NewDAG([]*Task{a, b}, nil, nil)
	d.Ready()
	d.Complete(a, a.DeclaredOutputs())
	if got := d.Complete(a, a.DeclaredOutputs()); got != nil {
		t.Fatalf("double complete released %v", got)
	}
}

func TestDAGTopoOrder(t *testing.T) {
	a := mkTask("a", []string{"in"}, "x")
	b := mkTask("b", []string{"x"}, "y")
	c := mkTask("c", []string{"x"}, "w")
	e := mkTask("e", []string{"y", "w"}, "z")
	d, _ := NewDAG([]*Task{a, b, c, e}, []string{"in"}, nil)
	order := d.TopoOrder()
	pos := map[int64]int{}
	for i, task := range order {
		pos[task.ID] = i
	}
	for _, task := range d.All() {
		for _, p := range d.Predecessors(task) {
			if pos[p.ID] >= pos[task.ID] {
				t.Fatalf("topo order violated: %s before %s", task, p)
			}
		}
	}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
}

func TestDAGInitialInputs(t *testing.T) {
	a := mkTask("a", []string{"in1", "in2"}, "x")
	d, _ := NewDAG([]*Task{a}, []string{"in1", "in2"}, nil)
	got := d.InitialInputs()
	if len(got) != 2 || got[0] != "in1" || got[1] != "in2" {
		t.Fatalf("initial inputs = %v", got)
	}
}

// Property: for a random layered DAG, releasing tasks in any completion
// order (i) never releases a task before all predecessors completed and
// (ii) releases every task exactly once.
func TestDAGReleaseInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		layers := rng.Intn(4) + 1
		var tasks []*Task
		var prevOutputs []string
		inputs := []string{"seed-in"}
		avail := append([]string(nil), inputs...)
		for l := 0; l < layers; l++ {
			width := rng.Intn(4) + 1
			var outs []string
			for w := 0; w < width; w++ {
				// Each task consumes 1..k files from what exists so far.
				n := rng.Intn(len(avail)) + 1
				perm := rng.Perm(len(avail))
				var ins []string
				for _, idx := range perm[:n] {
					ins = append(ins, avail[idx])
				}
				out := strings.Join([]string{"f", string(rune('a' + l)), string(rune('0' + w))}, "-")
				tasks = append(tasks, mkTask("t", ins, out))
				outs = append(outs, out)
			}
			avail = append(avail, outs...)
			prevOutputs = outs
		}
		_ = prevOutputs
		d, err := NewDAG(tasks, inputs, nil)
		if err != nil {
			return false
		}
		completed := map[int64]bool{}
		released := map[int64]int{}
		frontier := d.Ready()
		for _, task := range frontier {
			released[task.ID]++
		}
		for len(frontier) > 0 {
			// Complete a random ready task.
			i := rng.Intn(len(frontier))
			task := frontier[i]
			frontier = append(frontier[:i], frontier[i+1:]...)
			for _, p := range d.Predecessors(task) {
				if !completed[p.ID] {
					return false // released too early
				}
			}
			completed[task.ID] = true
			for _, nt := range d.Complete(task, task.DeclaredOutputs()) {
				released[nt.ID]++
				frontier = append(frontier, nt)
			}
		}
		if !d.Done() {
			return false
		}
		for _, task := range tasks {
			if released[task.ID] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticBaseDriver(t *testing.T) {
	a := mkTask("a", []string{"in"}, "x")
	b := mkTask("b", []string{"x"}, "y")
	s := &StaticBase{
		WFName: "test",
		Build: func() ([]*Task, []string, []Edge, error) {
			return []*Task{a, b}, []string{"in"}, nil, nil
		},
	}
	ready, err := s.Parse()
	if err != nil || len(ready) != 1 {
		t.Fatalf("parse: %v %v", ready, err)
	}
	if s.Done() {
		t.Fatal("done too early")
	}
	res := &TaskResult{Task: a, Outputs: map[string][]FileInfo{"out": a.Declared["out"]}}
	next, err := s.OnTaskComplete(res)
	if err != nil || len(next) != 1 || next[0] != b {
		t.Fatalf("complete: %v %v", next, err)
	}
	if _, err := s.OnTaskComplete(&TaskResult{Task: b, ExitCode: 2}); err == nil {
		t.Fatal("failed task must surface an error")
	}
	ok := &TaskResult{Task: b, Outputs: map[string][]FileInfo{"out": b.Declared["out"]}}
	if _, err := s.OnTaskComplete(ok); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("should be done")
	}
	if outs := s.Outputs(); len(outs) != 1 || outs[0] != "y" {
		t.Fatalf("outputs = %v", outs)
	}
}

func TestStaticBaseErrors(t *testing.T) {
	s := &StaticBase{WFName: "empty"}
	if _, err := s.Parse(); err == nil {
		t.Fatal("missing Build must error")
	}
	s2 := &StaticBase{WFName: "x", Build: func() ([]*Task, []string, []Edge, error) {
		return []*Task{mkTask("a", []string{"ghost"}, "o")}, nil, nil, nil
	}}
	if _, err := s2.Parse(); err == nil {
		t.Fatal("bad graph must error")
	}
	s3 := &StaticBase{WFName: "y", Build: func() ([]*Task, []string, []Edge, error) {
		return nil, nil, nil, nil
	}}
	if _, err := s3.OnTaskComplete(&TaskResult{}); err == nil {
		t.Fatal("OnTaskComplete before Parse must error")
	}
}
