package wf

import "fmt"

// StaticBase implements Driver and StaticDriver on top of a Build function
// that produces the complete task graph. The DAX, Galaxy and trace
// frontends embed it; only the parsing differs between them.
type StaticBase struct {
	WFName string
	// Build parses the workflow text into tasks, initially available
	// input paths, and explicit control edges.
	Build func() ([]*Task, []string, []Edge, error)

	dag *DAG
}

// Name implements Driver.
func (s *StaticBase) Name() string { return s.WFName }

// Parse implements Driver by building the full DAG and returning the tasks
// with no unmet dependencies.
func (s *StaticBase) Parse() ([]*Task, error) {
	if s.Build == nil {
		return nil, fmt.Errorf("wf: static driver %q has no Build function", s.WFName)
	}
	tasks, inputs, edges, err := s.Build()
	if err != nil {
		return nil, err
	}
	dag, err := NewDAG(tasks, inputs, edges)
	if err != nil {
		return nil, err
	}
	s.dag = dag
	return dag.Ready(), nil
}

// OnTaskComplete implements Driver.
func (s *StaticBase) OnTaskComplete(res *TaskResult) ([]*Task, error) {
	if s.dag == nil {
		return nil, fmt.Errorf("wf: OnTaskComplete before Parse")
	}
	if !res.Succeeded() {
		return nil, fmt.Errorf("wf: task %s failed (exit %d): %s", res.Task, res.ExitCode, res.Error)
	}
	return s.dag.Complete(res.Task, res.OutputFiles()), nil
}

// Done implements Driver.
func (s *StaticBase) Done() bool { return s.dag != nil && s.dag.Done() }

// Outputs implements Driver.
func (s *StaticBase) Outputs() []string {
	if s.dag == nil {
		return nil
	}
	return s.dag.Sinks()
}

// Graph implements StaticDriver.
func (s *StaticBase) Graph() *DAG { return s.dag }
