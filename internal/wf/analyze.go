package wf

import (
	"fmt"
	"sort"
	"strings"
)

// Analysis summarizes a static workflow's structure and resource demands —
// what `hiway inspect` prints before a run.
type Analysis struct {
	Tasks int
	Edges int
	// Depth is the length of the longest dependency chain.
	Depth int
	// MaxParallelism is the widest level of the DAG (an upper bound on
	// useful concurrent containers).
	MaxParallelism int
	// LevelWidths lists the task count per topological level.
	LevelWidths []int
	// TotalCPUSeconds sums the declared compute demand.
	TotalCPUSeconds float64
	// CriticalPathCPUSeconds sums CPU demand along the heaviest chain —
	// a lower bound on the makespan at infinite parallelism.
	CriticalPathCPUSeconds float64
	// TotalOutputMB sums declared output volumes.
	TotalOutputMB float64
	// MaxMemMB is the largest single-task memory demand.
	MaxMemMB int
	// Signatures counts tasks per signature.
	Signatures map[string]int
	// InitialInputs is the number of pre-existing input files.
	InitialInputs int
}

// Analyze computes structural statistics for a DAG.
func Analyze(d *DAG) Analysis {
	a := Analysis{
		Tasks:      len(d.tasks),
		Signatures: make(map[string]int),
	}
	a.InitialInputs = len(d.InitialInputs())

	level := make(map[int64]int, len(d.tasks))
	cpChain := make(map[int64]float64, len(d.tasks))
	for _, t := range d.TopoOrder() {
		a.Edges += len(d.preds[t.ID])
		a.Signatures[t.Name]++
		a.TotalCPUSeconds += t.CPUSeconds
		for _, fi := range t.DeclaredOutputs() {
			a.TotalOutputMB += fi.SizeMB
		}
		if t.MemMB > a.MaxMemMB {
			a.MaxMemMB = t.MemMB
		}
		lvl := 0
		chain := 0.0
		for _, p := range d.preds[t.ID] {
			if level[p.ID]+1 > lvl {
				lvl = level[p.ID] + 1
			}
			if cpChain[p.ID] > chain {
				chain = cpChain[p.ID]
			}
		}
		level[t.ID] = lvl
		cpChain[t.ID] = chain + t.CPUSeconds
		if cpChain[t.ID] > a.CriticalPathCPUSeconds {
			a.CriticalPathCPUSeconds = cpChain[t.ID]
		}
	}
	if a.Tasks > 0 {
		maxLvl := 0
		for _, l := range level {
			if l > maxLvl {
				maxLvl = l
			}
		}
		a.Depth = maxLvl + 1
		a.LevelWidths = make([]int, a.Depth)
		for _, l := range level {
			a.LevelWidths[l]++
		}
		for _, w := range a.LevelWidths {
			if w > a.MaxParallelism {
				a.MaxParallelism = w
			}
		}
	}
	return a
}

// Render formats the analysis for terminal output.
func (a Analysis) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "tasks:            %d (%d signatures)\n", a.Tasks, len(a.Signatures))
	fmt.Fprintf(&sb, "dependency edges: %d\n", a.Edges)
	fmt.Fprintf(&sb, "depth:            %d levels\n", a.Depth)
	fmt.Fprintf(&sb, "max parallelism:  %d\n", a.MaxParallelism)
	fmt.Fprintf(&sb, "level widths:     %v\n", a.LevelWidths)
	fmt.Fprintf(&sb, "initial inputs:   %d files\n", a.InitialInputs)
	fmt.Fprintf(&sb, "total CPU:        %.0f core-seconds\n", a.TotalCPUSeconds)
	fmt.Fprintf(&sb, "critical path:    %.0f core-seconds\n", a.CriticalPathCPUSeconds)
	fmt.Fprintf(&sb, "declared output:  %.1f MB\n", a.TotalOutputMB)
	fmt.Fprintf(&sb, "peak task memory: %d MB\n", a.MaxMemMB)
	sigs := make([]string, 0, len(a.Signatures))
	for s := range a.Signatures {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	for _, s := range sigs {
		fmt.Fprintf(&sb, "  %-20s × %d\n", s, a.Signatures[s])
	}
	return sb.String()
}
