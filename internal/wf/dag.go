package wf

import (
	"fmt"
	"sort"
)

// DAG tracks readiness for a static task graph: a task becomes ready when
// every input file exists (initially staged or produced by a predecessor)
// and every explicit control dependency has completed. It also exposes the
// dependency structure that static schedulers (HEFT, round-robin) consume.
type DAG struct {
	tasks []*Task
	byID  map[int64]*Task

	producer map[string]*Task  // output path → producing task
	preds    map[int64][]*Task // deduplicated predecessor lists
	succs    map[int64][]*Task

	waiting   map[int64]int // task ID → unmet dependency count
	completed map[int64]bool
	available map[string]bool // file paths that exist

	released map[int64]bool // tasks already handed out as ready
}

// Edge is an explicit control dependency (Parent must finish before Child).
type Edge struct {
	Parent, Child int64
}

// NewDAG builds a DAG over the tasks. initialInputs are files that exist
// before execution starts. Explicit edges supplement the data dependencies
// inferred from matching output→input paths. Construction fails on
// duplicate producers, unknown edge endpoints, inputs nobody provides, or
// cycles.
func NewDAG(tasks []*Task, initialInputs []string, edges []Edge) (*DAG, error) {
	d := &DAG{
		byID:      make(map[int64]*Task, len(tasks)),
		producer:  make(map[string]*Task),
		preds:     make(map[int64][]*Task),
		succs:     make(map[int64][]*Task),
		waiting:   make(map[int64]int),
		completed: make(map[int64]bool),
		available: make(map[string]bool),
		released:  make(map[int64]bool),
	}
	d.tasks = append(d.tasks, tasks...)
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if _, dup := d.byID[t.ID]; dup {
			return nil, fmt.Errorf("wf: duplicate task ID %d", t.ID)
		}
		d.byID[t.ID] = t
		for _, fi := range t.DeclaredOutputs() {
			if prev, dup := d.producer[fi.Path]; dup {
				return nil, fmt.Errorf("wf: %s produced by both %s and %s", fi.Path, prev, t)
			}
			d.producer[fi.Path] = t
		}
	}
	for _, p := range initialInputs {
		d.available[p] = true
	}

	// Infer data edges and validate that every input has a source.
	depSet := make(map[int64]map[int64]bool)
	addDep := func(child, parent *Task) {
		if parent.ID == child.ID {
			return
		}
		set := depSet[child.ID]
		if set == nil {
			set = make(map[int64]bool)
			depSet[child.ID] = set
		}
		if set[parent.ID] {
			return
		}
		set[parent.ID] = true
		d.preds[child.ID] = append(d.preds[child.ID], parent)
		d.succs[parent.ID] = append(d.succs[parent.ID], child)
	}
	for _, t := range tasks {
		for _, in := range t.Inputs {
			if d.available[in] {
				continue
			}
			p, ok := d.producer[in]
			if !ok {
				return nil, fmt.Errorf("wf: %s consumes %s, which no task produces and is not an initial input", t, in)
			}
			if p.ID == t.ID {
				return nil, fmt.Errorf("wf: %s consumes its own output %s", t, in)
			}
			addDep(t, p)
		}
	}
	for _, e := range edges {
		p, ok := d.byID[e.Parent]
		if !ok {
			return nil, fmt.Errorf("wf: edge references unknown parent %d", e.Parent)
		}
		c, ok := d.byID[e.Child]
		if !ok {
			return nil, fmt.Errorf("wf: edge references unknown child %d", e.Child)
		}
		if p.ID == c.ID {
			return nil, fmt.Errorf("wf: self edge on task %d", e.Parent)
		}
		addDep(c, p)
	}
	for _, t := range tasks {
		d.waiting[t.ID] = len(d.preds[t.ID])
	}
	if err := d.checkAcyclic(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *DAG) checkAcyclic() error {
	indeg := make(map[int64]int, len(d.tasks))
	for _, t := range d.tasks {
		indeg[t.ID] = len(d.preds[t.ID])
	}
	var queue []*Task
	for _, t := range d.tasks {
		if indeg[t.ID] == 0 {
			queue = append(queue, t)
		}
	}
	visited := 0
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		visited++
		for _, s := range d.succs[t.ID] {
			indeg[s.ID]--
			if indeg[s.ID] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if visited != len(d.tasks) {
		return fmt.Errorf("wf: workflow graph contains a cycle (%d of %d tasks reachable)", visited, len(d.tasks))
	}
	return nil
}

// All returns every task in insertion order.
func (d *DAG) All() []*Task { return d.tasks }

// Task looks up a task by ID.
func (d *DAG) Task(id int64) *Task { return d.byID[id] }

// Predecessors returns the tasks that must complete before t.
func (d *DAG) Predecessors(t *Task) []*Task { return d.preds[t.ID] }

// Successors returns the tasks that depend on t.
func (d *DAG) Successors(t *Task) []*Task { return d.succs[t.ID] }

// Ready returns tasks whose dependencies are met and that have not been
// released before, in deterministic (ID) order.
func (d *DAG) Ready() []*Task {
	var out []*Task
	for _, t := range d.tasks {
		if !d.released[t.ID] && !d.completed[t.ID] && d.waiting[t.ID] == 0 {
			d.released[t.ID] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Complete marks t done (registering its outputs as available) and returns
// the tasks that became ready as a consequence.
func (d *DAG) Complete(t *Task, produced []FileInfo) []*Task {
	if d.completed[t.ID] {
		return nil
	}
	d.completed[t.ID] = true
	for _, fi := range produced {
		d.available[fi.Path] = true
	}
	var ready []*Task
	for _, s := range d.succs[t.ID] {
		d.waiting[s.ID]--
		if d.waiting[s.ID] == 0 && !d.released[s.ID] {
			d.released[s.ID] = true
			ready = append(ready, s)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].ID < ready[j].ID })
	return ready
}

// Done reports whether every task has completed.
func (d *DAG) Done() bool {
	return len(d.completed) == len(d.tasks)
}

// Remaining returns the number of tasks not yet completed.
func (d *DAG) Remaining() int { return len(d.tasks) - len(d.completed) }

// Sinks returns the declared outputs of tasks with no successors — the
// workflow's final products.
func (d *DAG) Sinks() []string {
	var out []string
	for _, t := range d.tasks {
		if len(d.succs[t.ID]) == 0 {
			out = append(out, t.DeclaredPaths()...)
		}
	}
	sort.Strings(out)
	return out
}

// TopoOrder returns the tasks in a deterministic topological order
// (Kahn's algorithm, ties broken by task ID).
func (d *DAG) TopoOrder() []*Task {
	indeg := make(map[int64]int, len(d.tasks))
	var frontier []*Task
	for _, t := range d.tasks {
		indeg[t.ID] = len(d.preds[t.ID])
		if indeg[t.ID] == 0 {
			frontier = append(frontier, t)
		}
	}
	var order []*Task
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool { return frontier[i].ID < frontier[j].ID })
		t := frontier[0]
		frontier = frontier[1:]
		order = append(order, t)
		for _, s := range d.succs[t.ID] {
			indeg[s.ID]--
			if indeg[s.ID] == 0 {
				frontier = append(frontier, s)
			}
		}
	}
	return order
}

// InitialInputs returns the initially available files, sorted.
func (d *DAG) InitialInputs() []string {
	var out []string
	for p := range d.available {
		if _, produced := d.producer[p]; !produced {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
