package wf_test

import (
	"fmt"

	"hiway/internal/wf"
)

// ExampleAnalyze inspects a small diamond-shaped workflow.
func ExampleAnalyze() {
	prep := wf.NewTask("prep", []string{"in.dat"}, []wf.FileInfo{{Path: "split.dat", SizeMB: 10}})
	prep.CPUSeconds = 10
	left := wf.NewTask("left", []string{"split.dat"}, []wf.FileInfo{{Path: "l.dat", SizeMB: 5}})
	left.CPUSeconds = 100
	right := wf.NewTask("right", []string{"split.dat"}, []wf.FileInfo{{Path: "r.dat", SizeMB: 5}})
	right.CPUSeconds = 40
	join := wf.NewTask("join", []string{"l.dat", "r.dat"}, []wf.FileInfo{{Path: "out.dat", SizeMB: 1}})
	join.CPUSeconds = 5

	dag, err := wf.NewDAG([]*wf.Task{prep, left, right, join}, []string{"in.dat"}, nil)
	if err != nil {
		panic(err)
	}
	a := wf.Analyze(dag)
	fmt.Printf("tasks=%d depth=%d parallelism=%d critical=%.0fs\n",
		a.Tasks, a.Depth, a.MaxParallelism, a.CriticalPathCPUSeconds)
	// Output:
	// tasks=4 depth=3 parallelism=2 critical=115s
}

// ExampleDAG shows readiness tracking as tasks complete.
func ExampleDAG() {
	a := wf.NewTask("a", []string{"in"}, []wf.FileInfo{{Path: "x"}})
	b := wf.NewTask("b", []string{"x"}, []wf.FileInfo{{Path: "y"}})
	dag, err := wf.NewDAG([]*wf.Task{a, b}, []string{"in"}, nil)
	if err != nil {
		panic(err)
	}
	for _, t := range dag.Ready() {
		fmt.Println("ready:", t.Name)
	}
	for _, t := range dag.Complete(a, a.DeclaredOutputs()) {
		fmt.Println("unlocked:", t.Name)
	}
	// Output:
	// ready: a
	// unlocked: b
}
