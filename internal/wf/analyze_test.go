package wf

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// analyzeFixture: a diamond with a heavy branch.
//
//	prep → heavy → final
//	     ↘ light ↗
func analyzeFixture(t *testing.T) *DAG {
	t.Helper()
	prep := mkTask("prep", []string{"in"}, "x")
	prep.CPUSeconds = 10
	heavy := mkTask("heavy", []string{"x"}, "y1")
	heavy.CPUSeconds = 100
	heavy.MemMB = 4096
	light := mkTask("light", []string{"x"}, "y2")
	light.CPUSeconds = 5
	final := mkTask("final", []string{"y1", "y2"}, "z")
	final.CPUSeconds = 20
	d, err := NewDAG([]*Task{prep, heavy, light, final}, []string{"in"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAnalyzeStructure(t *testing.T) {
	a := Analyze(analyzeFixture(t))
	if a.Tasks != 4 || a.Edges != 4 {
		t.Fatalf("tasks=%d edges=%d", a.Tasks, a.Edges)
	}
	if a.Depth != 3 {
		t.Fatalf("depth = %d, want 3", a.Depth)
	}
	if a.MaxParallelism != 2 {
		t.Fatalf("parallelism = %d, want 2", a.MaxParallelism)
	}
	if len(a.LevelWidths) != 3 || a.LevelWidths[0] != 1 || a.LevelWidths[1] != 2 || a.LevelWidths[2] != 1 {
		t.Fatalf("level widths = %v", a.LevelWidths)
	}
	if a.TotalCPUSeconds != 135 {
		t.Fatalf("total cpu = %g", a.TotalCPUSeconds)
	}
	// Critical path: prep(10) + heavy(100) + final(20) = 130.
	if a.CriticalPathCPUSeconds != 130 {
		t.Fatalf("critical path = %g, want 130", a.CriticalPathCPUSeconds)
	}
	if a.MaxMemMB != 4096 {
		t.Fatalf("max mem = %d", a.MaxMemMB)
	}
	if a.InitialInputs != 1 {
		t.Fatalf("inputs = %d", a.InitialInputs)
	}
	if a.Signatures["heavy"] != 1 || len(a.Signatures) != 4 {
		t.Fatalf("signatures = %v", a.Signatures)
	}
	// Output volume: 4 × 1 MB from mkTask.
	if a.TotalOutputMB != 4 {
		t.Fatalf("output MB = %g", a.TotalOutputMB)
	}
}

func TestAnalyzeRender(t *testing.T) {
	out := Analyze(analyzeFixture(t)).Render()
	for _, want := range []string{"tasks:", "critical path:", "130 core-seconds", "heavy", "max parallelism:  2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeEmptyDAG(t *testing.T) {
	d, err := NewDAG(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(d)
	if a.Tasks != 0 || a.Depth != 0 || a.MaxParallelism != 0 {
		t.Fatalf("empty analysis = %+v", a)
	}
}

func TestAnalyzeWideFanOut(t *testing.T) {
	var tasks []*Task
	for i := 0; i < 20; i++ {
		task := mkTask("w", nil, "o"+string(rune('a'+i)))
		task.CPUSeconds = 1
		tasks = append(tasks, task)
	}
	d, _ := NewDAG(tasks, nil, nil)
	a := Analyze(d)
	if a.Depth != 1 || a.MaxParallelism != 20 {
		t.Fatalf("fan-out analysis = %+v", a)
	}
	if a.CriticalPathCPUSeconds != 1 {
		t.Fatalf("critical path = %g", a.CriticalPathCPUSeconds)
	}
}

// Property over random layered DAGs: level widths sum to the task count,
// depth never exceeds the task count, and the critical path never exceeds
// the total CPU demand.
func TestAnalyzeInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		layers := rng.Intn(5) + 1
		var tasks []*Task
		prev := []string{"seed"}
		for l := 0; l < layers; l++ {
			width := rng.Intn(5) + 1
			var outs []string
			for w := 0; w < width; w++ {
				out := fmt.Sprintf("o-%d-%d", l, w)
				task := mkTask("t", []string{prev[rng.Intn(len(prev))]}, out)
				task.CPUSeconds = rng.Float64() * 50
				tasks = append(tasks, task)
				outs = append(outs, out)
			}
			prev = outs
		}
		d, err := NewDAG(tasks, []string{"seed"}, nil)
		if err != nil {
			return false
		}
		a := Analyze(d)
		sum := 0
		for _, w := range a.LevelWidths {
			sum += w
		}
		return sum == a.Tasks &&
			a.Depth <= a.Tasks &&
			a.MaxParallelism <= a.Tasks &&
			a.CriticalPathCPUSeconds <= a.TotalCPUSeconds+1e-9 &&
			a.Depth == layers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
