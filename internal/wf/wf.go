// Package wf defines Hi-WAY's black-box workflow model: tasks that consume
// and produce opaque files, and the iterative Driver interface through which
// language frontends (Cuneiform, DAX, Galaxy, provenance traces) feed tasks
// to the execution engine as they become ready.
//
// Tasks are black boxes (§1 of the paper): the engine never inspects data,
// it only forwards files according to the workflow structure. Each task
// carries a resource profile (CPU core-seconds, threads, memory, output
// volumes) that the simulated substrate uses in place of running the real
// tool; the local executor ignores the profile and runs Command instead.
package wf

import (
	"fmt"
	"sort"
	"sync/atomic"
)

var idCounter atomic.Int64

// NextID returns a process-unique task ID.
func NextID() int64 { return idCounter.Add(1) }

// ReserveIDs claims a contiguous block of n process-unique task IDs and
// returns the first. Generators that will build tasks on a worker goroutine
// (sharded simulation) reserve their block up front on the serial path, so
// the IDs each shard assigns do not depend on goroutine interleaving.
func ReserveIDs(n int64) int64 { return idCounter.Add(n) - n + 1 }

// FileInfo names a produced or consumed file and its size.
type FileInfo struct {
	Path   string
	SizeMB float64
}

// Task is one black-box invocation of an external tool.
type Task struct {
	ID   int64
	Name string // signature: the tool invoked; adaptive scheduling keys on it
	// Command is the shell command the task stands for. The simulator
	// records it in provenance; the local executor actually runs it.
	Command string

	Inputs []string // paths consumed (must exist before the task is ready)

	// OutputParams lists declared output parameter names in order;
	// Declared maps each to its default produced files. Iterative
	// languages may produce a different number of files for aggregate
	// outputs at run time (see Outcome).
	OutputParams []string
	Declared     map[string][]FileInfo

	// Resource profile for simulated execution.
	CPUSeconds float64 // reference core-seconds of compute
	Threads    int     // maximum useful parallelism
	MemMB      int     // memory demand (drives container sizing)

	// Env carries named parameter bindings (parameter → space-joined
	// values, output parameter → produced paths). The local executor
	// exports them to the task's process environment.
	Env map[string]string

	// Meta carries frontend- or workload-specific annotations (e.g. the
	// iteration counter of a k-means convergence task).
	Meta map[string]string
}

// NewTask builds a task with a fresh ID and a single output parameter "out".
func NewTask(name string, inputs []string, outputs []FileInfo) *Task {
	t := &Task{
		ID:           NextID(),
		Name:         name,
		Inputs:       inputs,
		OutputParams: []string{"out"},
		Declared:     map[string][]FileInfo{"out": outputs},
		Threads:      1,
	}
	return t
}

// DeclaredOutputs returns all declared output files flattened in parameter
// order.
func (t *Task) DeclaredOutputs() []FileInfo {
	var out []FileInfo
	for _, p := range t.OutputParams {
		out = append(out, t.Declared[p]...)
	}
	return out
}

// DeclaredPaths returns the paths of DeclaredOutputs.
func (t *Task) DeclaredPaths() []string {
	fis := t.DeclaredOutputs()
	paths := make([]string, len(fis))
	for i, fi := range fis {
		paths[i] = fi.Path
	}
	return paths
}

// Validate reports structural problems with the task.
func (t *Task) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("wf: task %d has no name", t.ID)
	}
	if t.CPUSeconds < 0 {
		return fmt.Errorf("wf: task %s has negative CPU time", t.Name)
	}
	seen := map[string]bool{}
	for _, in := range t.Inputs {
		if in == "" {
			return fmt.Errorf("wf: task %s has an empty input path", t.Name)
		}
		seen[in] = true
	}
	for _, p := range t.OutputParams {
		for _, fi := range t.Declared[p] {
			if fi.Path == "" {
				return fmt.Errorf("wf: task %s output param %s has an empty path", t.Name, p)
			}
			if seen[fi.Path] {
				return fmt.Errorf("wf: task %s produces its own input %s", t.Name, fi.Path)
			}
		}
	}
	return nil
}

func (t *Task) String() string {
	return fmt.Sprintf("task %d (%s)", t.ID, t.Name)
}

// Outcome is what executing a task yields, before stage-out. The simulated
// executor derives it from a Behavior hook (or the declared outputs); the
// local executor derives it from the real process.
type Outcome struct {
	ExitCode int
	Error    string
	// Outputs maps output parameter → produced files. Aggregate (list)
	// outputs may hold zero or many files; this is how conditional and
	// convergence logic escapes a black-box task.
	Outputs map[string][]FileInfo
}

// DefaultOutcome returns a successful outcome producing exactly the
// declared outputs.
func DefaultOutcome(t *Task) Outcome {
	outs := make(map[string][]FileInfo, len(t.OutputParams))
	for _, p := range t.OutputParams {
		outs[p] = append([]FileInfo(nil), t.Declared[p]...)
	}
	return Outcome{Outputs: outs}
}

// Behavior lets a workload customize what a simulated task produces —
// the stand-in for the real tool's observable behaviour.
type Behavior func(t *Task) Outcome

// TaskResult is the completed execution record handed back to the driver
// and the provenance manager.
type TaskResult struct {
	Task *Task
	Node string

	// Attempt is the zero-based retry index of the execution that produced
	// this result; Speculative marks results from a speculative duplicate
	// launched by the fault-tolerance layer.
	Attempt     int
	Speculative bool

	Start, End  float64 // virtual (or wall-clock) seconds
	StageInSec  float64
	ExecSec     float64
	StageOutSec float64

	ExitCode int
	Error    string
	Outputs  map[string][]FileInfo

	Stdout, Stderr string // captured by the local executor
}

// OutputFiles returns all produced files flattened in parameter order.
func (r *TaskResult) OutputFiles() []FileInfo {
	var out []FileInfo
	for _, p := range r.Task.OutputParams {
		out = append(out, r.Outputs[p]...)
	}
	// Include parameters the task did not declare (defensive).
	var extras []string
	declared := map[string]bool{}
	for _, p := range r.Task.OutputParams {
		declared[p] = true
	}
	for p := range r.Outputs {
		if !declared[p] {
			extras = append(extras, p)
		}
	}
	sort.Strings(extras)
	for _, p := range extras {
		out = append(out, r.Outputs[p]...)
	}
	return out
}

// Succeeded reports whether the task exited cleanly.
func (r *TaskResult) Succeeded() bool { return r.ExitCode == 0 && r.Error == "" }

// Driver is the language-independent interface between a workflow frontend
// and the execution engine (§3.2, §3.3). Parse returns the initially ready
// tasks; OnTaskComplete registers produced data and returns tasks that
// became ready — for iterative languages these may be entirely new tasks
// discovered by evaluating the result.
type Driver interface {
	// Name identifies the workflow (used in provenance).
	Name() string
	// Parse analyses the workflow text and returns initially ready tasks.
	Parse() ([]*Task, error)
	// OnTaskComplete consumes a result and returns newly ready tasks.
	OnTaskComplete(res *TaskResult) ([]*Task, error)
	// Done reports whether the workflow has produced everything it will.
	Done() bool
	// Outputs returns the workflow's final output paths (valid once Done).
	Outputs() []string
}

// StaticDriver is implemented by frontends of non-iterative languages whose
// complete task graph is known after parsing. Static scheduling policies
// (round-robin, HEFT) require it; Cuneiform deliberately does not implement
// it (§3.4: static schedulers are incompatible with iterative workflows).
type StaticDriver interface {
	Driver
	// Graph exposes the full DAG after Parse.
	Graph() *DAG
}
