package shard

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"hiway/internal/provenance"
	"hiway/internal/wf"
)

func TestRunExecutesEveryShard(t *testing.T) {
	for _, workers := range []int{1, 4, 32} {
		var ran [17]atomic.Bool
		err := Run(len(ran), workers, func(i int) error {
			if ran[i].Swap(true) {
				return fmt.Errorf("shard %d ran twice", i)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ran {
			if !ran[i].Load() {
				t.Fatalf("workers=%d: shard %d never ran", workers, i)
			}
		}
	}
}

// The reported error must be the lowest-indexed failure whatever the worker
// count — error identity is part of the determinism contract.
func TestRunLowestIndexedErrorWins(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 8} {
		err := Run(20, workers, func(i int) error {
			if i == 3 || i == 11 {
				return fmt.Errorf("shard-local %d: %w", i, sentinel)
			}
			return nil
		})
		if err == nil || !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err=%v", workers, err)
		}
		if got := err.Error(); got != "shard 3: shard-local 3: boom" {
			t.Fatalf("workers=%d: err=%q, want the shard-3 failure", workers, got)
		}
	}
}

func TestRunRecoversPanics(t *testing.T) {
	err := Run(4, 4, func(i int) error {
		if i == 2 {
			panic("shard exploded")
		}
		return nil
	})
	if err == nil || err.Error() != "shard 2: panic: shard exploded" {
		t.Fatalf("err=%v", err)
	}
}

func TestRunZeroShards(t *testing.T) {
	if err := Run(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEventsTimestampThenShardOrder(t *testing.T) {
	ev := func(ts float64, id string) provenance.Event {
		return provenance.Event{ID: id, Timestamp: ts}
	}
	merged := MergeEvents([][]provenance.Event{
		{ev(1, "a1"), ev(5, "a2"), ev(5, "a3")},
		{ev(0, "b1"), ev(5, "b2")},
		{ev(5, "c1"), ev(9, "c2")},
	})
	want := []string{"b1", "a1", "a2", "a3", "b2", "c1", "c2"}
	if len(merged) != len(want) {
		t.Fatalf("merged %d events, want %d", len(merged), len(want))
	}
	for i, id := range want {
		if merged[i].ID != id {
			t.Fatalf("position %d: got %s, want %s (full: %v)", i, merged[i].ID, id, merged)
		}
	}
}

func TestPreParseCachesAndKeepsStaticDriver(t *testing.T) {
	parses := 0
	base := &wf.StaticBase{
		WFName: "pp",
		Build: func() ([]*wf.Task, []string, []wf.Edge, error) {
			parses++
			t := wf.NewTask("only", []string{"in"}, []wf.FileInfo{{Path: "out", SizeMB: 1}})
			return []*wf.Task{t}, []string{"in"}, nil, nil
		},
	}
	d, err := PreParse(base)
	if err != nil {
		t.Fatal(err)
	}
	if parses != 1 {
		t.Fatalf("PreParse parsed %d times", parses)
	}
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if parses != 1 {
		t.Fatalf("wrapped Parse re-parsed (%d)", parses)
	}
	if len(ready) != 1 || ready[0].Name != "only" {
		t.Fatalf("ready=%v", ready)
	}
	sd, ok := d.(wf.StaticDriver)
	if !ok {
		t.Fatal("PreParse dropped the StaticDriver interface")
	}
	if sd.Graph() == nil || len(sd.Graph().All()) != 1 {
		t.Fatal("Graph not forwarded")
	}
	if d.Name() != "pp" {
		t.Fatalf("Name=%q", d.Name())
	}
}
