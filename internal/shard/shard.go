// Package shard runs independent workflow simulations in parallel — one
// complete simulation substrate (engine, cluster, YARN RM, HDFS, provenance
// store) per shard, on a bounded pool of worker goroutines — and merges
// their outputs deterministically.
//
// Discrete-event simulation is inherently serial within one virtual clock,
// but Hi-WAY's unit of isolation is the workflow: two workflows submitted to
// different (simulated) clusters share nothing, so their simulations can
// proceed on separate engines concurrently. The contract that makes the
// parallelism invisible is determinism: for a fixed shard list, every output
// an observer can see — per-shard reports, the merged provenance stream —
// is byte-identical whatever the worker count, including Workers=1 (serial
// mode is the same framework, not a separate code path).
//
// Two rules keep that contract:
//
//  1. Shard functions share no mutable state. Each builds its own substrate
//     and writes only to its own result slot. Anything derived from global
//     counters (e.g. workflow IDs via wf.NextID) must be assigned in the
//     serial setup phase, before workers start.
//  2. Merge order is a pure function of the data: provenance events are
//     ordered by (timestamp, shard index, within-shard position), never by
//     completion order.
package shard

import (
	"fmt"
	"sort"
	"sync"

	"hiway/internal/provenance"
	"hiway/internal/wf"
)

// preParsed replays a Parse result captured during the serial setup phase.
// Frontends allocate task IDs from wf's process-global counter while
// parsing; calling Parse inside a worker goroutine would interleave those
// allocations across shards and make the IDs — which provenance records —
// depend on goroutine scheduling. PreParse moves the allocation before the
// fan-out, so static workflows carry identical task IDs at any worker count.
type preParsed struct {
	wf.Driver
	ready []*wf.Task
}

func (p *preParsed) Parse() ([]*wf.Task, error) { return p.ready, nil }

// preParsedStatic additionally forwards the full DAG so static planners
// (round-robin, HEFT) still recognize the driver as a wf.StaticDriver.
type preParsedStatic struct {
	preParsed
	static wf.StaticDriver
}

func (p *preParsedStatic) Graph() *wf.DAG { return p.static.Graph() }

// PreParse eagerly parses d — it must be called from the serial setup phase,
// never from a shard worker — and returns a driver whose Parse replays the
// cached ready set. Iterative frontends (Cuneiform) still allocate IDs for
// newly discovered tasks mid-run; only workflows whose task graph is fixed
// at parse time get the full any-worker-count ID determinism.
func PreParse(d wf.Driver) (wf.Driver, error) {
	ready, err := d.Parse()
	if err != nil {
		return nil, err
	}
	if sd, ok := d.(wf.StaticDriver); ok {
		return &preParsedStatic{preParsed{Driver: d, ready: ready}, sd}, nil
	}
	return &preParsed{Driver: d, ready: ready}, nil
}

// Run executes fn(i) for every shard i in [0, n) on at most workers
// concurrent goroutines (workers <= 1 means strictly serial, in shard
// order). It always waits for all shards; if any fail, the error of the
// lowest-indexed failing shard is returned, wrapped with its index, so the
// reported failure does not depend on goroutine interleaving.
func Run(n, workers int, fn func(shard int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							errs[i] = fmt.Errorf("panic: %v", r)
						}
					}()
					errs[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// MergeEvents merges per-shard provenance streams into one stream ordered by
// (timestamp, shard index, within-shard position). Each shard's stream is
// assumed to be in its own append order (which the per-shard Manager
// guarantees is timestamp-ordered on that shard's virtual clock); the merge
// is stable, so equal-timestamp events keep shard order first and shard-local
// order second. The result is independent of how the shards were scheduled
// onto workers.
func MergeEvents(shards [][]provenance.Event) []provenance.Event {
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	type tagged struct {
		shard int
		ev    provenance.Event
	}
	all := make([]tagged, 0, total)
	for i, s := range shards {
		for _, ev := range s {
			all = append(all, tagged{shard: i, ev: ev})
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].ev.Timestamp != all[b].ev.Timestamp {
			return all[a].ev.Timestamp < all[b].ev.Timestamp
		}
		return all[a].shard < all[b].shard
	})
	out := make([]provenance.Event, total)
	for i := range all {
		out[i] = all[i].ev
	}
	return out
}
