package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %g, want 3", e.Now())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("simultaneous events fired out of order: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	// Double-cancel and cancel-after-fire must be no-ops.
	e.Cancel(ev)
	ev2 := e.Schedule(1, func() {})
	e.Run()
	e.Cancel(ev2)
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {
		e.Schedule(-3, func() {
			if e.Now() != 5 {
				t.Fatalf("negative delay should fire now, at %g", e.Now())
			}
		})
	})
	e.Run()
}

func TestEngineNaNDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(math.NaN(), func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("NaN delay should clamp to zero (ran=%v now=%g)", ran, e.Now())
	}
}

func TestEngineScheduleDuringEvent(t *testing.T) {
	e := NewEngine()
	var trace []float64
	e.Schedule(1, func() {
		trace = append(trace, e.Now())
		e.Schedule(2, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 1 || trace[1] != 3 {
		t.Fatalf("trace = %v, want [1 3]", trace)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, d := range []float64{1, 2, 3, 4} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(2.5)
	if len(fired) != 2 || e.Now() != 2.5 {
		t.Fatalf("RunUntil: fired=%v now=%g", fired, e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events did not fire: %v", fired)
	}
}

func TestEngineAtPastClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		e.At(5, func() {
			if e.Now() != 10 {
				t.Fatalf("past At should clamp to now, got %g", e.Now())
			}
		})
	})
	e.Run()
}

// Property: N events with random delays always fire in nondecreasing time
// order, and the clock ends at the max delay.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n%50) + 1
		delays := make([]float64, count)
		var times []float64
		for i := 0; i < count; i++ {
			delays[i] = rng.Float64() * 100
			e.Schedule(delays[i], func() { times = append(times, e.Now()) })
		}
		e.Run()
		if !sort.Float64sAreSorted(times) {
			return false
		}
		maxd := 0.0
		for _, d := range delays {
			if d > maxd {
				maxd = d
			}
		}
		return almostEqual(e.Now(), maxd, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSharedResourceSingleJob(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "net", 100) // 100 units/s
	var doneAt float64
	r.Submit(500, 0, func() { doneAt = e.Now() })
	e.Run()
	if !almostEqual(doneAt, 5, 1e-9) {
		t.Fatalf("single job finished at %g, want 5", doneAt)
	}
}

func TestSharedResourceFairSharing(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "net", 100)
	var t1, t2 float64
	r.Submit(100, 0, func() { t1 = e.Now() }) // alone would take 1s
	r.Submit(100, 0, func() { t2 = e.Now() })
	e.Run()
	// Both share 50 units/s until the first finishes; identical work means
	// both finish at t=2.
	if !almostEqual(t1, 2, 1e-9) || !almostEqual(t2, 2, 1e-9) {
		t.Fatalf("fair sharing: t1=%g t2=%g, want 2, 2", t1, t2)
	}
}

func TestSharedResourceUnequalWork(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "net", 100)
	var tShort, tLong float64
	r.Submit(100, 0, func() { tShort = e.Now() })
	r.Submit(300, 0, func() { tLong = e.Now() })
	e.Run()
	// Shared at 50/s each: short finishes at 2 (100/50). Long then has
	// 300-100=200 left at full 100/s → finishes at 2+2=4.
	if !almostEqual(tShort, 2, 1e-9) {
		t.Fatalf("short job at %g, want 2", tShort)
	}
	if !almostEqual(tLong, 4, 1e-9) {
		t.Fatalf("long job at %g, want 4", tLong)
	}
}

func TestSharedResourceCapHonored(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "net", 100)
	var tCapped, tFree float64
	r.Submit(100, 10, func() { tCapped = e.Now() }) // capped at 10/s
	r.Submit(450, 0, func() { tFree = e.Now() })
	e.Run()
	// Max-min: capped job gets 10, free job gets 90. Capped: 100/10 = 10s.
	// Free: 450/90 = 5s, finishing first; cap still binds afterwards.
	if !almostEqual(tFree, 5, 1e-9) {
		t.Fatalf("free job at %g, want 5", tFree)
	}
	if !almostEqual(tCapped, 10, 1e-9) {
		t.Fatalf("capped job at %g, want 10", tCapped)
	}
}

func TestSharedResourceBackgroundLoad(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "cpu", 2) // 2 cores
	bg := r.SubmitBackground(1)         // one hog pinned to ~1 core
	var done float64
	r.Submit(2, 1, func() { done = e.Now() }) // 2 core-seconds, 1 thread
	e.Run()
	// Fair share of 2 cores between two unit-cap jobs: 1 core each →
	// the finite job takes 2 seconds.
	if !almostEqual(done, 2, 1e-9) {
		t.Fatalf("job under background load finished at %g, want 2", done)
	}
	r.Remove(bg)
	if r.Active() != 0 {
		t.Fatalf("background job not removed: %d active", r.Active())
	}
}

func TestSharedResourceHeavyBackgroundLoad(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "cpu", 2)
	// 16 hogs of cap 1 each: our 2-thread task gets 2·2/18 of the machine.
	for i := 0; i < 16; i++ {
		r.SubmitBackground(1)
	}
	var done float64
	r.Submit(2, 2, func() { done = e.Now() })
	e.Run()
	// Max-min fair: 17 jobs, capacity 2, all caps ≥ share → each gets 2/17.
	want := 2 / (2.0 / 17.0)
	if !almostEqual(done, want, 1e-6) {
		t.Fatalf("job under 16 hogs finished at %g, want %g", done, want)
	}
}

func TestSharedResourceRemoveSpeedsUpOthers(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "disk", 100)
	var done float64
	j := r.Submit(1e9, 0, nil) // effectively endless competitor
	r.Submit(100, 0, func() { done = e.Now() })
	e.Schedule(1, func() { r.Remove(j) })
	e.Run()
	// First second at 50/s → 50 units done; remaining 50 at 100/s → +0.5s.
	if !almostEqual(done, 1.5, 1e-9) {
		t.Fatalf("job finished at %g, want 1.5", done)
	}
}

func TestSharedResourceZeroWorkCompletesImmediately(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "net", 10)
	called := false
	r.Submit(0, 0, func() { called = true })
	e.Run()
	if !called || e.Now() != 0 {
		t.Fatalf("zero work: called=%v now=%g", called, e.Now())
	}
}

func TestSharedResourceResubmitFromCallback(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "net", 10)
	var second float64
	r.Submit(10, 0, func() {
		r.Submit(10, 0, func() { second = e.Now() })
	})
	e.Run()
	if !almostEqual(second, 2, 1e-9) {
		t.Fatalf("chained submit finished at %g, want 2", second)
	}
}

func TestSharedResourceMeters(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "net", 100)
	r.Submit(100, 50, nil) // runs 2s at 50/s
	e.Run()
	e.RunUntil(4) // 2s busy, 2s idle
	if u := r.Utilization(); !almostEqual(u, 0.25, 1e-9) {
		t.Fatalf("utilization = %g, want 0.25", u)
	}
	if b := r.BusyFraction(); !almostEqual(b, 0.5, 1e-9) {
		t.Fatalf("busy fraction = %g, want 0.5", b)
	}
	if th := r.Throughput(); !almostEqual(th, 25, 1e-9) {
		t.Fatalf("throughput = %g, want 25", th)
	}
	r.ResetMeters()
	e.RunUntil(5)
	if u := r.Utilization(); u != 0 {
		t.Fatalf("utilization after reset = %g, want 0", u)
	}
}

func TestSharedResourceLoadMeter(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "cpu", 2)
	j := r.SubmitBackground(1)
	e.RunUntil(10)
	if l := r.Load(); !almostEqual(l, 1, 1e-9) {
		t.Fatalf("load = %g, want 1", l)
	}
	r.Remove(j)
	_ = j
}

// Property: total work conservation — for any set of jobs the sum of work
// equals capacity integrated over the busy intervals (no work lost or
// duplicated by rate recomputation).
func TestSharedResourceConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		cap := 1 + rng.Float64()*99
		r := NewSharedResource(e, "res", cap)
		n := rng.Intn(20) + 1
		total := 0.0
		remainingDone := n
		for i := 0; i < n; i++ {
			w := rng.Float64()*50 + 0.1
			var jcap float64
			if rng.Intn(2) == 0 {
				jcap = rng.Float64()*cap + 0.01
			}
			total += w
			delay := rng.Float64() * 5
			e.Schedule(delay, func() {
				r.Submit(w, jcap, func() { remainingDone-- })
			})
		}
		e.Run()
		if remainingDone != 0 {
			return false
		}
		// All work processed: rate integral equals total submitted work.
		return almostEqual(r.rateIntegral, total, 1e-6*float64(n)+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: jobs always finish in order of work when submitted together
// with no caps (equal shares imply SJF completion order).
func TestSharedResourceCompletionOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		r := NewSharedResource(e, "res", 10)
		n := rng.Intn(10) + 2
		type rec struct{ work, at float64 }
		recs := make([]*rec, n)
		for i := 0; i < n; i++ {
			rc := &rec{work: rng.Float64()*100 + 0.5}
			recs[i] = rc
			r.Submit(rc.work, 0, func() { rc.at = e.Now() })
		}
		e.Run()
		sorted := make([]*rec, n)
		copy(sorted, recs)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a].work < sorted[b].work })
		for i := 1; i < n; i++ {
			if sorted[i].at < sorted[i-1].at-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedResourcePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive capacity")
		}
	}()
	NewSharedResource(NewEngine(), "bad", 0)
}

// Zero-work jobs must behave like any other job between Submit and their
// instantaneous completion: Active() is true, Cancel() withdraws the pending
// callback, and a canceled zero-work job never fires.
func TestSharedResourceZeroWorkJobSemantics(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "net", 10)
	fired := false
	j := r.Submit(0, 0, func() { fired = true })
	if !j.Active() {
		t.Fatal("zero-work job must be active until its completion event fires")
	}
	j.Cancel()
	if j.Active() {
		t.Fatal("canceled zero-work job must be inactive")
	}
	j.Cancel() // double-cancel is a no-op
	e.Run()
	if fired {
		t.Fatal("canceled zero-work job must not invoke its callback")
	}

	// Uncanceled: completes at the current instant and deactivates.
	done := false
	j2 := r.Submit(-1, 0, func() { done = true })
	e.Run()
	if !done || j2.Active() || e.Now() != 0 {
		t.Fatalf("zero-work completion: done=%v active=%v now=%g", done, j2.Active(), e.Now())
	}
	if j2.Remaining() != 0 {
		t.Fatalf("zero-work remaining = %g", j2.Remaining())
	}
}

// Meters must stay exact under cancel-heavy churn: the rate integral equals
// the work actually processed — completed work plus the partial progress of
// every canceled job — and never counts withdrawn work.
func TestSharedResourceMetersUnderCancelChurn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		cap := 1 + rng.Float64()*99
		r := NewSharedResource(e, "res", cap)
		processed := 0.0 // accrued at completion or cancel
		n := rng.Intn(24) + 2
		for i := 0; i < n; i++ {
			w := rng.Float64()*40 + 0.1
			var jcap float64
			if rng.Intn(2) == 0 {
				jcap = rng.Float64() * cap * 1.5 // sometimes above capacity
			}
			submitAt := rng.Float64() * 4
			cancelAt := submitAt + rng.Float64()*3
			doCancel := rng.Intn(2) == 0
			e.Schedule(submitAt, func() {
				j := r.Submit(w, jcap, func() { processed += w })
				if doCancel {
					e.At(cancelAt, func() {
						if j.Active() {
							processed += w - j.Remaining()
							j.Cancel()
						}
					})
				}
			})
		}
		e.Run()
		if r.Active() != 0 {
			return false
		}
		tol := 1e-6*float64(n) + 1e-6
		if !almostEqual(r.rateIntegral, processed, tol) {
			return false
		}
		// Utilization is the same integral normalized by capacity×elapsed.
		if el := e.Now() - r.meterStart; el > 0 {
			if !almostEqual(r.Utilization(), processed/(cap*el), tol) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Canceling events that share a timestamp — including from a callback firing
// at that same instant — must suppress exactly the canceled events and keep
// scheduling order for the survivors.
func TestEngineCancelAtIdenticalTimestamps(t *testing.T) {
	e := NewEngine()
	var order []int
	note := func(i int) func() {
		return func() { order = append(order, i) }
	}
	ev1 := e.At(5, note(1))
	ev2 := e.At(5, note(2))
	e.At(5, note(3))
	var ev4 *Event
	e.At(5, func() { e.Cancel(ev4) }) // cancels a not-yet-fired same-time event
	ev4 = e.At(5, note(4))
	e.At(5, note(5))
	e.Cancel(ev2) // cancel before the timestamp is reached
	e.Run()
	want := []int{1, 3, 5}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	// Cancel after fire stays a harmless no-op even at shared timestamps.
	e.Cancel(ev1)
	e.Cancel(ev4)
}
