package sim

import (
	"math"
	"sort"
)

// workEps is the tolerance below which a job's remaining work counts as
// finished, absorbing floating-point drift from repeated rate updates.
const workEps = 1e-9

// Job is a unit of work submitted to a SharedResource. Its progress rate is
// recomputed by max-min fair sharing whenever the resource's job set changes.
type Job struct {
	res       *SharedResource
	remaining float64
	cap       float64 // maximum rate this job can absorb; 0 means unlimited
	rate      float64 // current allocated rate
	done      func()
	active    bool
	infinite  bool // background load (hogs): never completes
	seq       int64
}

// Rate returns the job's currently allocated rate in resource units/sec.
func (j *Job) Rate() float64 { return j.rate }

// Cancel withdraws the job from its resource without invoking its done
// callback. Canceling a finished or already-canceled job is a no-op. This is
// what makes task attempts killable: a timed-out or superseded attempt's
// compute job is withdrawn so it stops contending for capacity.
func (j *Job) Cancel() {
	if j == nil || j.res == nil {
		return
	}
	j.res.Remove(j)
}

// Active reports whether the job is still submitted to its resource.
func (j *Job) Active() bool { return j != nil && j.active }

// Remaining returns the job's remaining work in resource units.
func (j *Job) Remaining() float64 { return j.remaining }

// SharedResource models a contended resource (switch, NIC, disk, CPU) with a
// fixed aggregate capacity in units per second. Concurrent jobs share the
// capacity max-min fairly, honoring per-job rate caps: jobs whose cap is
// below the fair share release their surplus to the others.
//
// This fluid-flow model reproduces the congestion phenomena the paper
// observes (a saturated 1 GbE switch, EBS-volume contention, CPU/IO stress)
// without simulating individual packets or context switches.
type SharedResource struct {
	eng      *Engine
	name     string
	capacity float64
	jobs     map[*Job]struct{}
	last     float64 // virtual time of the last state update
	wake     *Event  // pending earliest-completion event
	seq      int64

	// meters (time integrals since creation)
	meterStart   float64
	rateIntegral float64 // ∫ Σrates dt → throughput / utilization
	demandInt    float64 // ∫ Σcaps dt → "load" in the uptime sense
	busyInt      float64 // ∫ [n>0] dt → busy fraction
}

// NewSharedResource creates a resource with the given aggregate capacity
// (units/sec). The name is used in diagnostics only.
func NewSharedResource(eng *Engine, name string, capacity float64) *SharedResource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive: " + name)
	}
	return &SharedResource{
		eng:        eng,
		name:       name,
		capacity:   capacity,
		jobs:       make(map[*Job]struct{}),
		last:       eng.Now(),
		meterStart: eng.Now(),
	}
}

// Name returns the resource's diagnostic name.
func (r *SharedResource) Name() string { return r.name }

// Capacity returns the aggregate capacity in units/sec.
func (r *SharedResource) Capacity() float64 { return r.capacity }

// Active returns the number of jobs currently sharing the resource.
func (r *SharedResource) Active() int { return len(r.jobs) }

// Submit enqueues work units to be processed, calling done on completion.
// rateCap bounds the job's share (0 = unbounded). Zero or negative work
// completes at the current instant via a scheduled event, preserving
// callback ordering.
func (r *SharedResource) Submit(work, rateCap float64, done func()) *Job {
	if work <= 0 {
		j := &Job{res: r, remaining: 0, cap: rateCap, done: done}
		r.eng.Schedule(0, func() {
			if done != nil {
				done()
			}
		})
		return j
	}
	r.advance()
	r.seq++
	j := &Job{res: r, remaining: work, cap: rateCap, done: done, active: true, seq: r.seq}
	r.jobs[j] = struct{}{}
	r.reschedule()
	return j
}

// SubmitBackground adds a permanent load of rateCap units/sec that competes
// for capacity but never completes — the model of the paper's synthetic
// `stress` processes. It returns the job so callers can remove it later.
func (r *SharedResource) SubmitBackground(rateCap float64) *Job {
	if rateCap <= 0 {
		panic("sim: background load must have a positive cap")
	}
	r.advance()
	r.seq++
	j := &Job{res: r, remaining: math.Inf(1), cap: rateCap, active: true, infinite: true, seq: r.seq}
	r.jobs[j] = struct{}{}
	r.reschedule()
	return j
}

// Remove withdraws a job (finished or not) from the resource. Its done
// callback will not be invoked. Removing an inactive job is a no-op.
func (r *SharedResource) Remove(j *Job) {
	if j == nil || !j.active {
		return
	}
	r.advance()
	delete(r.jobs, j)
	j.active = false
	j.rate = 0
	r.reschedule()
}

// advance accrues progress for all jobs up to the current virtual time and
// updates the meters. It does not complete jobs; reschedule does.
func (r *SharedResource) advance() {
	now := r.eng.Now()
	dt := now - r.last
	if dt <= 0 {
		r.last = now
		return
	}
	var totalRate, totalDemand float64
	for j := range r.jobs {
		if !j.infinite {
			j.remaining -= j.rate * dt
			if j.remaining < 0 {
				j.remaining = 0
			}
		}
		totalRate += j.rate
		d := j.cap
		if d == 0 || d > r.capacity {
			d = r.capacity
		}
		totalDemand += d
	}
	r.rateIntegral += totalRate * dt
	r.demandInt += totalDemand * dt
	if len(r.jobs) > 0 {
		r.busyInt += dt
	}
	r.last = now
}

// reschedule recomputes max-min fair rates, completes any jobs that have
// exhausted their work, and schedules the next completion event.
func (r *SharedResource) reschedule() {
	// Complete jobs drained by the preceding advance.
	var finished []*Job
	for j := range r.jobs {
		if !j.infinite && j.remaining <= workEps {
			finished = append(finished, j)
		}
	}
	if len(finished) > 0 {
		sort.Slice(finished, func(a, b int) bool { return finished[a].seq < finished[b].seq })
		for _, j := range finished {
			delete(r.jobs, j)
			j.active = false
			j.rate = 0
		}
	}

	r.recomputeRates()

	if r.wake != nil {
		r.eng.Cancel(r.wake)
		r.wake = nil
	}
	// Earliest completion among finite jobs.
	soonest := math.Inf(1)
	for j := range r.jobs {
		if j.infinite || j.rate <= 0 {
			continue
		}
		t := j.remaining / j.rate
		if t < soonest {
			soonest = t
		}
	}
	if !math.IsInf(soonest, 1) {
		r.wake = r.eng.Schedule(soonest, func() {
			r.wake = nil
			r.advance()
			r.reschedule()
		})
	}

	// Fire completion callbacks after internal state is consistent, so a
	// callback may immediately submit new work to this same resource.
	for _, j := range finished {
		if j.done != nil {
			j.done()
		}
	}
}

// recomputeRates assigns each active job a max-min fair share of capacity,
// honoring per-job caps: jobs are considered in ascending cap order; each
// takes min(cap, remaining/|left|), releasing surplus to later jobs.
func (r *SharedResource) recomputeRates() {
	n := len(r.jobs)
	if n == 0 {
		return
	}
	js := make([]*Job, 0, n)
	for j := range r.jobs {
		js = append(js, j)
	}
	sort.Slice(js, func(a, b int) bool {
		ca, cb := js[a].effCap(r.capacity), js[b].effCap(r.capacity)
		if ca != cb {
			return ca < cb
		}
		return js[a].seq < js[b].seq
	})
	left := r.capacity
	for i, j := range js {
		share := left / float64(n-i)
		rate := j.effCap(r.capacity)
		if rate > share {
			rate = share
		}
		j.rate = rate
		left -= rate
	}
}

// effCap returns the job's effective rate cap, treating 0 as "capacity".
func (j *Job) effCap(capacity float64) float64 {
	if j.cap == 0 || j.cap > capacity {
		return capacity
	}
	return j.cap
}

// Utilization returns the average fraction of capacity in use since the
// resource was created (∫rates / (capacity · elapsed)).
func (r *SharedResource) Utilization() float64 {
	r.advance()
	dur := r.eng.Now() - r.meterStart
	if dur <= 0 {
		return 0
	}
	return r.rateIntegral / (r.capacity * dur)
}

// Load returns the average demand on the resource in capacity units — the
// analogue of the Unix load average the paper reports for worker CPUs
// (e.g. ~2.0 on a two-core node under full multithreaded load).
func (r *SharedResource) Load() float64 {
	r.advance()
	dur := r.eng.Now() - r.meterStart
	if dur <= 0 {
		return 0
	}
	return r.demandInt / dur
}

// Throughput returns average processed units/sec since creation — for a
// network resource, bytes (MB) per second of actual transfer.
func (r *SharedResource) Throughput() float64 {
	r.advance()
	dur := r.eng.Now() - r.meterStart
	if dur <= 0 {
		return 0
	}
	return r.rateIntegral / dur
}

// BusyFraction returns the fraction of elapsed time with at least one job —
// the iostat-style device utilization the paper reports for disks.
func (r *SharedResource) BusyFraction() float64 {
	r.advance()
	dur := r.eng.Now() - r.meterStart
	if dur <= 0 {
		return 0
	}
	return r.busyInt / dur
}

// ResetMeters restarts utilization accounting from the current instant.
func (r *SharedResource) ResetMeters() {
	r.advance()
	r.meterStart = r.eng.Now()
	r.rateIntegral = 0
	r.demandInt = 0
	r.busyInt = 0
}
