package sim

import (
	"math"
	"sort"
)

// workEps is the tolerance below which a job's remaining work counts as
// finished, absorbing floating-point drift from repeated rate updates.
const workEps = 1e-9

// Job is a unit of work submitted to a SharedResource. Its progress rate is
// recomputed by max-min fair sharing whenever the resource's job set changes.
type Job struct {
	res       *SharedResource
	remaining float64 // work left as of syncT; live value via Remaining()
	syncT     float64 // virtual time remaining refers to
	cap       float64 // maximum rate this job can absorb; 0 means unlimited
	rate      float64 // current allocated rate
	done      func()
	active    bool
	infinite  bool   // background load (hogs): never completes
	zero      *Event // pending completion event of a zero-work job
	seq       int64
}

// Rate returns the job's currently allocated rate in resource units/sec.
func (j *Job) Rate() float64 { return j.rate }

// Cancel withdraws the job from its resource without invoking its done
// callback. Canceling a finished or already-canceled job is a no-op. This is
// what makes task attempts killable: a timed-out or superseded attempt's
// compute job is withdrawn so it stops contending for capacity.
func (j *Job) Cancel() {
	if j == nil || j.res == nil {
		return
	}
	j.res.Remove(j)
}

// Active reports whether the job is still submitted to its resource.
func (j *Job) Active() bool { return j != nil && j.active }

// Remaining returns the job's remaining work in resource units as of the
// current virtual time. Progress is tracked lazily — a job's stored state is
// only synced when its rate changes — so the live value is derived here.
func (j *Job) Remaining() float64 {
	if j == nil {
		return 0
	}
	if !j.active || j.infinite || j.res == nil {
		return j.remaining
	}
	rem := j.remaining - j.rate*(j.res.eng.Now()-j.syncT)
	if rem < 0 {
		rem = 0
	}
	return rem
}

// SharedResource models a contended resource (switch, NIC, disk, CPU) with a
// fixed aggregate capacity in units per second. Concurrent jobs share the
// capacity max-min fairly, honoring per-job rate caps: jobs whose cap is
// below the fair share release their surplus to the others.
//
// This fluid-flow model reproduces the congestion phenomena the paper
// observes (a saturated 1 GbE switch, EBS-volume contention, CPU/IO stress)
// without simulating individual packets or context switches.
//
// Rates only change when the job set changes, so all bookkeeping is
// incremental: jobs live in a cap-sorted slice maintained by binary
// insertion, per-event meter accrual is O(1) from running totals, and the
// single O(n) pass in reshare runs only on membership changes. The wake
// event is coalesced — it is rescheduled only when the earliest projected
// completion actually moves.
type SharedResource struct {
	eng       *Engine
	name      string
	capacity  float64
	jobs      []*Job  // active finite+background jobs, ascending (effCap, seq)
	capSum    float64 // Σ effCap over jobs (demand meter)
	totalRate float64 // Σ allocated rates (throughput meter)
	last      float64 // virtual time of the last meter update
	wake      *Event  // pending earliest-completion event
	wakeAt    float64 // absolute time wake is armed for
	wakeFn    func()  // cached wake callback (avoids a closure per arm)
	seq       int64
	reshares  int64 // rate recomputations, exported by the observability layer

	// meters (time integrals since creation)
	meterStart   float64
	rateIntegral float64 // ∫ Σrates dt → throughput / utilization
	demandInt    float64 // ∫ Σcaps dt → "load" in the uptime sense
	busyInt      float64 // ∫ [n>0] dt → busy fraction
}

// NewSharedResource creates a resource with the given aggregate capacity
// (units/sec). The name is used in diagnostics only.
func NewSharedResource(eng *Engine, name string, capacity float64) *SharedResource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive: " + name)
	}
	r := &SharedResource{
		eng:        eng,
		name:       name,
		capacity:   capacity,
		last:       eng.Now(),
		meterStart: eng.Now(),
	}
	r.wakeFn = func() {
		r.wake = nil
		r.advance()
		r.reshare()
	}
	return r
}

// Name returns the resource's diagnostic name.
func (r *SharedResource) Name() string { return r.name }

// Capacity returns the aggregate capacity in units/sec.
func (r *SharedResource) Capacity() float64 { return r.capacity }

// Active returns the number of jobs currently sharing the resource.
func (r *SharedResource) Active() int { return len(r.jobs) }

// Submit enqueues work units to be processed, calling done on completion.
// rateCap bounds the job's share (0 = unbounded). Zero or negative work
// completes at the current instant via a scheduled event, preserving
// callback ordering; until that event fires the returned Job is a
// first-class handle — Active() reports true and Cancel() withdraws the
// pending callback — but it never contends for capacity.
func (r *SharedResource) Submit(work, rateCap float64, done func()) *Job {
	r.seq++
	if work <= 0 {
		j := &Job{res: r, cap: rateCap, done: done, active: true, seq: r.seq}
		j.zero = r.eng.Schedule(0, func() {
			j.zero = nil
			j.active = false
			if j.done != nil {
				j.done()
			}
		})
		return j
	}
	r.advance()
	j := &Job{res: r, remaining: work, syncT: r.eng.Now(), cap: rateCap, done: done, active: true, seq: r.seq}
	r.insert(j)
	r.reshare()
	return j
}

// SubmitBackground adds a permanent load of rateCap units/sec that competes
// for capacity but never completes — the model of the paper's synthetic
// `stress` processes. It returns the job so callers can remove it later.
func (r *SharedResource) SubmitBackground(rateCap float64) *Job {
	if rateCap <= 0 {
		panic("sim: background load must have a positive cap")
	}
	r.advance()
	r.seq++
	j := &Job{res: r, remaining: math.Inf(1), syncT: r.eng.Now(), cap: rateCap, active: true, infinite: true, seq: r.seq}
	r.insert(j)
	r.reshare()
	return j
}

// Remove withdraws a job (finished or not) from the resource. Its done
// callback will not be invoked. Removing an inactive job is a no-op.
func (r *SharedResource) Remove(j *Job) {
	if j == nil || !j.active {
		return
	}
	if j.zero != nil {
		r.eng.Cancel(j.zero)
		j.zero = nil
		j.active = false
		return
	}
	r.advance()
	if i := r.find(j); i >= 0 {
		r.removeAt(i)
	}
	j.active = false
	j.rate = 0
	r.reshare()
}

// insert places j into the cap-sorted job slice and accrues its demand.
func (r *SharedResource) insert(j *Job) {
	c := j.effCap(r.capacity)
	i := sort.Search(len(r.jobs), func(k int) bool {
		ck := r.jobs[k].effCap(r.capacity)
		if ck != c {
			return ck > c
		}
		return r.jobs[k].seq > j.seq
	})
	r.jobs = append(r.jobs, nil)
	copy(r.jobs[i+1:], r.jobs[i:])
	r.jobs[i] = j
	r.capSum += c
}

// find locates j in the cap-sorted slice by binary search on (effCap, seq).
func (r *SharedResource) find(j *Job) int {
	c := j.effCap(r.capacity)
	i := sort.Search(len(r.jobs), func(k int) bool {
		ck := r.jobs[k].effCap(r.capacity)
		if ck != c {
			return ck > c
		}
		return r.jobs[k].seq >= j.seq
	})
	if i < len(r.jobs) && r.jobs[i] == j {
		return i
	}
	return -1
}

// removeAt deletes the job at index i, niling the vacated tail slot.
func (r *SharedResource) removeAt(i int) {
	j := r.jobs[i]
	copy(r.jobs[i:], r.jobs[i+1:])
	r.jobs[len(r.jobs)-1] = nil
	r.jobs = r.jobs[:len(r.jobs)-1]
	r.capSum -= j.effCap(r.capacity)
}

// advance accrues the meter integrals up to the current virtual time in
// O(1) from the running totals. Per-job progress is NOT touched here: a
// job's remaining work is derived lazily from (remaining, syncT, rate),
// which stay exact because rates only change inside reshare.
func (r *SharedResource) advance() {
	now := r.eng.Now()
	dt := now - r.last
	if dt <= 0 {
		r.last = now
		return
	}
	r.rateIntegral += r.totalRate * dt
	r.demandInt += r.capSum * dt
	if len(r.jobs) > 0 {
		r.busyInt += dt
	}
	r.last = now
}

// sync accrues j's progress at its current rate up to now, so the rate can
// change without losing work done at the old rate.
func (r *SharedResource) sync(j *Job, now float64) {
	if !j.infinite {
		j.remaining -= j.rate * (now - j.syncT)
		if j.remaining < 0 {
			j.remaining = 0
		}
	}
	j.syncT = now
}

// reshare is the single O(n) step, run only on membership changes (submit,
// remove, completion wake). It fuses three passes over the cap-sorted job
// list: completing drained jobs, recomputing max-min fair rates, and
// picking the next wake time.
func (r *SharedResource) reshare() {
	r.reshares++
	now := r.eng.Now()

	// Collect jobs whose work is exhausted, keeping the rest in order.
	var finished []*Job
	kept := r.jobs[:0]
	for _, j := range r.jobs {
		if !j.infinite && j.remaining-j.rate*(now-j.syncT) <= workEps {
			finished = append(finished, j)
			continue
		}
		kept = append(kept, j)
	}
	if len(finished) > 0 {
		for i := len(kept); i < len(r.jobs); i++ {
			r.jobs[i] = nil
		}
		r.jobs = kept
		for _, j := range finished {
			r.capSum -= j.effCap(r.capacity)
			j.remaining = 0
			j.syncT = now
			j.active = false
			j.rate = 0
		}
		// Callbacks fire in submission order; finished was collected in
		// (cap, seq) order.
		sort.Slice(finished, func(a, b int) bool { return finished[a].seq < finished[b].seq })
	}

	// Max-min fair shares: ascending by cap, each job takes min(cap, equal
	// split of what remains); surplus flows to later, less constrained jobs.
	// Jobs whose rate actually changes are synced first so prior progress is
	// accrued at the old rate. The earliest projected completion falls out
	// of the same pass.
	n := len(r.jobs)
	left := r.capacity
	total := 0.0
	soonest := math.Inf(1)
	for i, j := range r.jobs {
		share := left / float64(n-i)
		rate := j.effCap(r.capacity)
		if rate > share {
			rate = share
		}
		if rate != j.rate {
			r.sync(j, now)
			j.rate = rate
		}
		left -= rate
		total += rate
		if !j.infinite && rate > 0 {
			if t := j.syncT + j.remaining/rate; t < soonest {
				soonest = t
			}
		}
	}
	r.totalRate = total

	// Re-arm the wake event only if its target moved (coalescing). When no
	// rate changed, soonest is computed from the same floats as last time,
	// so the comparison is exact.
	if math.IsInf(soonest, 1) {
		if r.wake != nil {
			r.eng.Cancel(r.wake)
			r.wake = nil
		}
	} else if r.wake == nil || r.wakeAt != soonest {
		if r.wake != nil {
			r.eng.Cancel(r.wake)
		}
		r.wakeAt = soonest
		r.wake = r.eng.atReusable(soonest, r.wakeFn)
	}

	// Fire completion callbacks after internal state is consistent, so a
	// callback may immediately submit new work to this same resource.
	for _, j := range finished {
		if j.done != nil {
			j.done()
		}
	}
}

// effCap returns the job's effective rate cap, treating 0 as "capacity".
func (j *Job) effCap(capacity float64) float64 {
	if j.cap == 0 || j.cap > capacity {
		return capacity
	}
	return j.cap
}

// Utilization returns the average fraction of capacity in use since the
// resource was created (∫rates / (capacity · elapsed)).
func (r *SharedResource) Utilization() float64 {
	r.advance()
	dur := r.eng.Now() - r.meterStart
	if dur <= 0 {
		return 0
	}
	return r.rateIntegral / (r.capacity * dur)
}

// Load returns the average demand on the resource in capacity units — the
// analogue of the Unix load average the paper reports for worker CPUs
// (e.g. ~2.0 on a two-core node under full multithreaded load).
func (r *SharedResource) Load() float64 {
	r.advance()
	dur := r.eng.Now() - r.meterStart
	if dur <= 0 {
		return 0
	}
	return r.demandInt / dur
}

// Throughput returns average processed units/sec since creation — for a
// network resource, bytes (MB) per second of actual transfer.
func (r *SharedResource) Throughput() float64 {
	r.advance()
	dur := r.eng.Now() - r.meterStart
	if dur <= 0 {
		return 0
	}
	return r.rateIntegral / dur
}

// BusyFraction returns the fraction of elapsed time with at least one job —
// the iostat-style device utilization the paper reports for disks.
func (r *SharedResource) BusyFraction() float64 {
	r.advance()
	dur := r.eng.Now() - r.meterStart
	if dur <= 0 {
		return 0
	}
	return r.busyInt / dur
}

// Reshares returns how many times the resource recomputed its max-min fair
// rates — the kernel's dominant O(n) cost, counted for the observability
// layer. One reshare per job-set change is the design target; a number far
// above (submits + removals + completions) signals a wake-coalescing bug.
func (r *SharedResource) Reshares() int64 { return r.reshares }

// ResetMeters restarts utilization accounting from the current instant.
func (r *SharedResource) ResetMeters() {
	r.advance()
	r.meterStart = r.eng.Now()
	r.rateIntegral = 0
	r.demandInt = 0
	r.busyInt = 0
}
