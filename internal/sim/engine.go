package sim

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Event is a scheduled callback. It can be canceled before it fires.
type Event struct {
	at       float64
	seq      int64
	fn       func()
	queued   bool // still in the wheel or far heap, not yet popped
	canceled bool // lazily deleted: skipped (and pooled events recycled) at pop
	reusable bool // pooled event: recycled at pop, handle must not outlive fire/cancel
}

// Time returns the virtual time at which the event fires.
func (ev *Event) Time() float64 { return ev.at }

// evLess is the engine's total order: time, then scheduling sequence, so
// simultaneous events fire deterministically in the order scheduled.
func evLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

const (
	minBuckets = 64      // initial wheel size; kept tiny so short-lived engines stay cheap
	maxBuckets = 1 << 16 // resize ceiling
)

// Engine is a discrete-event simulation engine with a virtual clock measured
// in seconds. The zero value is not usable; call NewEngine.
//
// The pending-event set is a calendar queue: a wheel of time buckets of
// adaptive width covering a window starting at wheelT0, plus a min-heap
// overflow ("far") for events beyond the window horizon. Enqueue hashes the
// timestamp to a bucket in O(1) (plus a short sorted insertion within the
// bucket); dequeue pops from the current bucket, skipping empty buckets via
// an occupancy bitmap. Cancel is lazy — the event is only flagged, and
// physically removed when its bucket is popped — so cancel-heavy churn
// (attempt deadline timers) costs O(1) instead of heap.Remove's O(log n).
// When the wheel drains, the window jumps straight to the far heap's
// earliest event: quiescent stretches of virtual time are skipped without
// touching the buckets in between (coarse time-skip).
//
// Each bucket is kept sorted descending by (at, seq) so the next event pops
// from the slice tail; bucket misplacement from float rounding is harmless
// because the bucket-index function is monotone in the timestamp and ties
// are resolved by the in-bucket sort.
type Engine struct {
	now    float64
	seq    int64
	events int64 // total events executed, for diagnostics

	live     int // scheduled and not yet fired or canceled (exact Pending count)
	queued   int // physical entries in wheel+far, including lazily canceled ones
	maxDepth int // high-water mark of live, for observability

	width    float64    // bucket width in virtual seconds
	wheelT0  float64    // absolute time of bucket 0's left edge
	wheelPos int        // current bucket index; events never land before it
	buckets  [][]*Event // wheel; each bucket sorted descending by (at, seq) once reached
	occ      []uint64   // occupancy bitmap over buckets
	dirty    []uint64   // buckets with unsorted appends, sorted lazily at first pop
	far      []*Event   // min-heap by (at, seq): events beyond the window horizon

	gapEMA  float64  // smoothed gap between consecutive event times; sizes buckets
	free    []*Event // pool of recycled reusable events
	scratch []*Event // reusable buffer for window advances and rebuilds
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() int64 { return e.events }

// MaxQueueDepth returns the high-water mark of the event queue — the most
// live events that were ever pending at once. The observability layer
// exports it as a gauge.
func (e *Engine) MaxQueueDepth() int { return e.maxDepth }

// Schedule enqueues fn to run delay seconds from now. A negative delay is
// treated as zero. The returned event may be canceled with Cancel.
func (e *Engine) Schedule(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At enqueues fn to run at absolute virtual time t. Times in the past are
// clamped to the current time.
func (e *Engine) At(t float64, fn func()) *Event {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < e.now || math.IsNaN(t) {
		t = e.now
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.insert(ev)
	return ev
}

// ScheduleEphemeral schedules fn on a pooled event that the engine recycles
// the moment it is popped (fired or lazily canceled). The public contract
// that cancel-after-fire is a safe no-op does NOT hold here: the caller must
// drop the handle when the callback runs or immediately after Cancel, and
// never touch it again. Hot cancel-heavy call sites (per-attempt deadline
// timers) use this to avoid allocating an Event per schedule.
func (e *Engine) ScheduleEphemeral(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return e.atReusable(e.now+delay, fn)
}

// atReusable enqueues fn at absolute time t on a pooled Event, recycled at
// pop. Same handle contract as ScheduleEphemeral; package-internal callers
// (SharedResource wake timers) drop the handle at fire/cancel time.
func (e *Engine) atReusable(t float64, fn func()) *Event {
	if t < e.now || math.IsNaN(t) {
		t = e.now
	}
	e.seq++
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	ev.reusable, ev.canceled = true, false
	e.insert(ev)
	return ev
}

// recycle resets a reusable event and returns it to the pool.
func (e *Engine) recycle(ev *Event) {
	*ev = Event{}
	e.free = append(e.free, ev)
}

// Cancel prevents a scheduled event from firing. Canceling an event that
// already fired or was already canceled is a no-op. The event is flagged and
// skipped at pop time (lazy deletion); its callback is released immediately.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || !ev.queued {
		return
	}
	ev.canceled = true
	ev.fn = nil
	e.live--
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	ev := e.popLive()
	if ev == nil {
		return false
	}
	if ev.at < e.now {
		panic(fmt.Sprintf("sim: event time %g before now %g", ev.at, e.now))
	}
	if d := ev.at - e.now; d > 0 {
		if e.gapEMA > 0 {
			e.gapEMA += (d - e.gapEMA) * 0.125
		} else {
			e.gapEMA = d
		}
	}
	e.now = ev.at
	e.events++
	e.live--
	fn := ev.fn
	fn()
	if ev.reusable {
		e.recycle(ev)
	}
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
func (e *Engine) RunUntil(t float64) {
	for {
		next := e.peekLive()
		if next == nil || next.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending returns the number of events still scheduled to fire. Lazily
// canceled events are excluded: the count tracks live events exactly.
func (e *Engine) Pending() int { return e.live }

// insert places ev into the wheel or the far heap.
func (e *Engine) insert(ev *Event) {
	if e.buckets == nil {
		e.initWheel(minBuckets)
		e.width = 1
		e.wheelT0 = e.now
	}
	if e.queued >= len(e.buckets)*2 && len(e.buckets) < maxBuckets {
		// Jump straight to the size the current population wants (growing at
		// least 4x) so a filling queue pays O(log log n) rebuilds, not one
		// per doubling.
		n := len(e.buckets) * 4
		for n < e.queued {
			n *= 2
		}
		if n > maxBuckets {
			n = maxBuckets
		}
		e.rebuild(n)
	}
	ev.queued = true
	e.queued++
	e.live++
	if e.live > e.maxDepth {
		e.maxDepth = e.live
	}
	if ev.at >= e.wheelT0+e.width*float64(len(e.buckets)) {
		e.farPush(ev)
		return
	}
	e.bucketInsert(e.bucketIdx(ev.at), ev)
}

// bucketIdx maps a timestamp to its wheel bucket. Monotone in t, so float
// rounding at bucket edges can never invert pop order; out-of-range and NaN
// inputs clamp into the current window.
func (e *Engine) bucketIdx(t float64) int {
	n := len(e.buckets)
	q := (t - e.wheelT0) / e.width
	if !(q >= 0) { // negative or NaN
		return e.wheelPos
	}
	if q >= float64(n) {
		return n - 1
	}
	idx := int(q)
	if idx < e.wheelPos {
		idx = e.wheelPos
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// bucketInsert places ev into bucket idx. Future buckets take a plain
// append and are sorted lazily when the wheel reaches them; only the
// current, already-sorted bucket pays a binary insertion (the zero-delay
// fast path), so bulk enqueues avoid per-insert memmoves entirely.
func (e *Engine) bucketInsert(idx int, ev *Event) {
	word, bit := idx>>6, uint64(1)<<(idx&63)
	b := e.buckets[idx]
	if idx == e.wheelPos && e.dirty[word]&bit == 0 {
		i := sort.Search(len(b), func(k int) bool { return evLess(b[k], ev) })
		b = append(b, nil)
		copy(b[i+1:], b[i:])
		b[i] = ev
	} else {
		// An append that lands at the descending tail keeps the bucket
		// sorted; only order-breaking appends mark it dirty.
		if len(b) > 0 && e.dirty[word]&bit == 0 && !evLess(ev, b[len(b)-1]) {
			e.dirty[word] |= bit
		}
		b = append(b, ev)
	}
	e.buckets[idx] = b
	e.occ[word] |= bit
}

// bucketAppend bulk-loads ev into bucket idx unsorted, deferring order to
// the lazy sort. Used by window refills, where binary insertion would
// degrade to a memmove per event.
func (e *Engine) bucketAppend(idx int, ev *Event) {
	word, bit := idx>>6, uint64(1)<<(idx&63)
	e.buckets[idx] = append(e.buckets[idx], ev)
	e.dirty[word] |= bit
	e.occ[word] |= bit
}

// sortBucket establishes bucket idx's descending (at, seq) order if it has
// unsorted appends. Called when the wheel reaches the bucket, so each event
// is sorted at most once per window pass.
func (e *Engine) sortBucket(idx int) {
	word, bit := idx>>6, uint64(1)<<(idx&63)
	if e.dirty[word]&bit == 0 {
		return
	}
	e.dirty[word] &^= bit
	b := e.buckets[idx]
	if len(b) <= 24 { // insertion sort: small buckets dodge sort.Slice overhead
		for i := 1; i < len(b); i++ {
			ev := b[i]
			j := i - 1
			for j >= 0 && evLess(b[j], ev) {
				b[j+1] = b[j]
				j--
			}
			b[j+1] = ev
		}
		return
	}
	sort.Slice(b, func(i, j int) bool { return evLess(b[j], b[i]) })
}

// nextBucket returns the first non-empty bucket at or after wheelPos, or -1
// if the wheel is empty, by scanning the occupancy bitmap word-at-a-time.
func (e *Engine) nextBucket() int {
	w := e.wheelPos >> 6
	mask := ^uint64(0) << (e.wheelPos & 63)
	for ; w < len(e.occ); w++ {
		if v := e.occ[w] & mask; v != 0 {
			return w<<6 + bits.TrailingZeros64(v)
		}
		mask = ^uint64(0)
	}
	return -1
}

// takeTail removes and returns the tail event of bucket idx, clearing the
// occupancy bit when the bucket drains.
func (e *Engine) takeTail(idx int) *Event {
	b := e.buckets[idx]
	n := len(b) - 1
	ev := b[n]
	b[n] = nil
	e.buckets[idx] = b[:n]
	if n == 0 {
		e.occ[idx>>6] &^= 1 << (idx & 63)
	}
	e.queued--
	ev.queued = false
	return ev
}

// popLive removes and returns the next live event, discarding (and, for
// pooled events, recycling) lazily canceled entries along the way. Returns
// nil when nothing is pending.
func (e *Engine) popLive() *Event {
	for {
		if e.queued == 0 {
			return nil
		}
		idx := e.nextBucket()
		if idx < 0 {
			e.advanceWindow()
			continue
		}
		e.wheelPos = idx
		e.sortBucket(idx)
		ev := e.takeTail(idx)
		if ev.canceled {
			if ev.reusable {
				e.recycle(ev)
			}
			continue
		}
		return ev
	}
}

// peekLive returns the next live event without removing it, purging lazily
// canceled entries it encounters. Returns nil when nothing is pending.
func (e *Engine) peekLive() *Event {
	for {
		if e.queued == 0 {
			return nil
		}
		idx := e.nextBucket()
		if idx < 0 {
			e.advanceWindow()
			continue
		}
		e.wheelPos = idx
		e.sortBucket(idx)
		b := e.buckets[idx]
		ev := b[len(b)-1]
		if !ev.canceled {
			return ev
		}
		e.takeTail(idx)
		if ev.reusable {
			e.recycle(ev)
		}
	}
}

// advanceWindow is called when the wheel is empty but events remain in the
// far heap: the window jumps directly to the earliest far event (skipping
// the quiescent interval) and far events inside the new window move into
// buckets. Also the shrink point for the wheel when occupancy has collapsed.
func (e *Engine) advanceWindow() {
	if e.queued < len(e.buckets)/8 && len(e.buckets) > minBuckets {
		e.rebuild(len(e.buckets) / 2)
		return
	}
	e.wheelT0 = e.far[0].at
	e.wheelPos = 0
	if e.gapEMA > 0 {
		e.width = e.gapEMA * 8
	}
	horizon := e.wheelT0 + e.width*float64(len(e.buckets))
	s := e.scratch[:0]
	s = append(s, e.farPop()) // always move at least one (guards at == horizon == +Inf)
	for len(e.far) > 0 && e.far[0].at < horizon {
		s = append(s, e.farPop())
	}
	// s is ascending; walking it backwards appends each bucket's events in
	// descending order, so the lazy sort sees an already-ordered run.
	for i := len(s) - 1; i >= 0; i-- {
		e.bucketAppend(e.bucketIdx(s[i].at), s[i])
	}
	for i := range s {
		s[i] = nil
	}
	e.scratch = s[:0]
}

// initWheel (re)allocates the wheel at n buckets, reusing prior capacity.
func (e *Engine) initWheel(n int) {
	if cap(e.buckets) >= n {
		e.buckets = e.buckets[:n]
	} else {
		old := e.buckets
		e.buckets = make([][]*Event, n)
		copy(e.buckets, old) // keep inner slice capacity
	}
	words := (n + 63) / 64
	if cap(e.occ) >= words {
		e.occ = e.occ[:words]
		e.dirty = e.dirty[:words]
		for i := range e.occ {
			e.occ[i] = 0
			e.dirty[i] = 0
		}
	} else {
		e.occ = make([]uint64, words)
		e.dirty = make([]uint64, words)
	}
	e.wheelPos = 0
}

// rebuild resizes the wheel to n buckets and redistributes every pending
// event, dropping lazily canceled entries for good. Triggered geometrically
// (double on overflow, halve on collapse), so its O(n log n) cost amortizes
// to O(1) per operation.
func (e *Engine) rebuild(n int) {
	s := e.scratch[:0]
	keep := func(ev *Event) bool {
		if !ev.canceled {
			return true
		}
		e.queued--
		ev.queued = false
		if ev.reusable {
			e.recycle(ev)
		}
		return false
	}
	for i := range e.buckets {
		for j, ev := range e.buckets[i] {
			if keep(ev) {
				s = append(s, ev)
			}
			e.buckets[i][j] = nil
		}
		e.buckets[i] = e.buckets[i][:0]
	}
	for i, ev := range e.far {
		if keep(ev) {
			s = append(s, ev)
		}
		e.far[i] = nil
	}
	e.far = e.far[:0]
	sort.Slice(s, func(a, b int) bool { return evLess(s[a], s[b]) })

	e.initWheel(n)
	if len(s) == 0 {
		e.width = 1
		e.wheelT0 = e.now
		e.scratch = s
		return
	}
	minAt, maxAt := s[0].at, s[len(s)-1].at
	w := e.gapEMA * 8
	if w <= 0 {
		if span := maxAt - minAt; span > 0 && !math.IsInf(span, 1) {
			w = span * 2 / float64(n)
		} else {
			w = 1
		}
	}
	e.width = w
	e.wheelT0 = minAt
	horizon := minAt + w*float64(n)
	cut := sort.Search(len(s), func(k int) bool { return !(s[k].at < horizon) })
	if cut == 0 {
		cut = 1 // at least one event stays in the wheel (guards +Inf timestamps)
	}
	for i := cut - 1; i >= 0; i-- {
		e.bucketAppend(e.bucketIdx(s[i].at), s[i])
	}
	// The ascending suffix is already a valid min-heap.
	e.far = append(e.far, s[cut:]...)
	for i := range s {
		s[i] = nil
	}
	e.scratch = s[:0]
}

// farPush adds ev to the beyond-horizon min-heap.
func (e *Engine) farPush(ev *Event) {
	e.far = append(e.far, ev)
	i := len(e.far) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(e.far[i], e.far[p]) {
			break
		}
		e.far[i], e.far[p] = e.far[p], e.far[i]
		i = p
	}
}

// farPop removes and returns the earliest event in the far heap.
func (e *Engine) farPop() *Event {
	h := e.far
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	e.far = h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && evLess(h[r], h[l]) {
			m = r
		}
		if !evLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return ev
}
