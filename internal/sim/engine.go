package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. It can be canceled before it fires.
type Event struct {
	at       float64
	seq      int64
	fn       func()
	canceled bool
	reusable bool // pooled event: recycled on fire/cancel, handle must not outlive either
	index    int  // heap index, -1 once popped
}

// Time returns the virtual time at which the event fires.
func (ev *Event) Time() float64 { return ev.at }

// Engine is a discrete-event simulation engine with a virtual clock
// measured in seconds. The zero value is not usable; call NewEngine.
type Engine struct {
	now      float64
	seq      int64
	queue    eventHeap
	events   int64    // total events executed, for diagnostics
	maxDepth int      // high-water mark of the event queue, for observability
	free     []*Event // pool of recycled reusable events
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() int64 { return e.events }

// MaxQueueDepth returns the high-water mark of the event queue — the most
// events that were ever pending at once. The observability layer exports it
// as a gauge; it bounds the kernel's O(log n) heap cost for the run.
func (e *Engine) MaxQueueDepth() int { return e.maxDepth }

// Schedule enqueues fn to run delay seconds from now. A negative delay is
// treated as zero. The returned event may be canceled with Cancel.
func (e *Engine) Schedule(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At enqueues fn to run at absolute virtual time t. Times in the past are
// clamped to the current time.
func (e *Engine) At(t float64, fn func()) *Event {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	if n := len(e.queue); n > e.maxDepth {
		e.maxDepth = n
	}
	return ev
}

// atReusable enqueues fn at absolute time t on a pooled Event that is
// recycled the moment it fires or is canceled. The public contract that
// cancel-after-fire is a safe no-op does NOT hold for pooled events, so this
// stays package-internal: callers (SharedResource wake timers) must drop the
// handle at fire/cancel time and never touch it again.
func (e *Engine) atReusable(t float64, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.at, ev.seq, ev.fn, ev.reusable = t, e.seq, fn, true
	heap.Push(&e.queue, ev)
	if n := len(e.queue); n > e.maxDepth {
		e.maxDepth = n
	}
	return ev
}

// recycle resets a reusable event and returns it to the pool.
func (e *Engine) recycle(ev *Event) {
	*ev = Event{index: -1}
	e.free = append(e.free, ev)
}

// Cancel prevents a scheduled event from firing. Canceling an event that
// already fired or was already canceled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
		if ev.reusable {
			e.recycle(ev)
		}
	}
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: event time %g before now %g", ev.at, e.now))
		}
		e.now = ev.at
		e.events++
		ev.fn()
		if ev.reusable {
			e.recycle(ev)
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
func (e *Engine) RunUntil(t float64) {
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending returns the number of events still queued (including canceled
// events not yet removed lazily; Cancel removes eagerly, so this is exact).
func (e *Engine) Pending() int { return e.queue.Len() }

// eventHeap orders events by time, breaking ties by scheduling sequence so
// simultaneous events fire deterministically in the order scheduled.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
