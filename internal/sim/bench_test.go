package sim

import "testing"

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(float64(j%17), func() {})
		}
		e.Run()
	}
}

func BenchmarkSharedResourceChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		r := NewSharedResource(e, "bench", 100)
		for j := 0; j < 200; j++ {
			delay := float64(j) * 0.1
			e.Schedule(delay, func() {
				r.Submit(float64(j%7)+1, 0, nil)
			})
		}
		e.Run()
	}
}

func BenchmarkSharedResourceManyConcurrentFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		r := NewSharedResource(e, "switch", 1000)
		for j := 0; j < 100; j++ {
			r.Submit(50, 10, nil)
		}
		e.Run()
	}
}

// BenchmarkSharedResourceLargeChurn models the switch of a large cluster
// mid-experiment: thousands of capped flows arriving staggered over time,
// a third of the in-flight ones canceled (killed attempts, speculation
// losers), everything contending for one aggregate capacity. This is the
// membership-churn regime that dominates large-cluster simulations.
func BenchmarkSharedResourceLargeChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		r := NewSharedResource(e, "switch", 10000)
		live := make([]*Job, 0, 2000)
		for j := 0; j < 2000; j++ {
			j := j
			e.Schedule(float64(j)*0.01, func() {
				live = append(live, r.Submit(float64(j%31+5), float64(j%13+1), nil))
				if j%3 == 2 {
					live[len(live)/2].Cancel()
				}
			})
		}
		e.Run()
	}
}

// BenchmarkEngineTimerChurn measures schedule/cancel churn: the pattern of
// per-attempt deadline timers, most of which are canceled before firing.
func BenchmarkEngineTimerChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 5000; j++ {
			ev := e.Schedule(float64(j%97)+1, func() {})
			if j%4 != 0 {
				e.Cancel(ev)
			}
		}
		e.Run()
	}
}

// BenchmarkEngineChurn100k drives the calendar queue at the 100k-task
// ladder's churn profile: a hundred thousand staggered timers, half of them
// canceled and replaced by pooled ephemerals, drained in time order. The
// figure of merit is flat per-event cost — the queue must not regress as the
// backlog climbs two orders of magnitude past the micro-benchmarks above.
func BenchmarkEngineChurn100k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		evs := make([]*Event, 0, 100000)
		for j := 0; j < 100000; j++ {
			evs = append(evs, e.Schedule(float64(j%977)+float64(j)*1e-4, func() {}))
		}
		for j := 0; j < len(evs); j += 2 {
			e.Cancel(evs[j])
			e.ScheduleEphemeral(float64(j%977)+0.5, func() {})
		}
		e.Run()
	}
}
