package sim

import "testing"

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(float64(j%17), func() {})
		}
		e.Run()
	}
}

func BenchmarkSharedResourceChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		r := NewSharedResource(e, "bench", 100)
		for j := 0; j < 200; j++ {
			delay := float64(j) * 0.1
			e.Schedule(delay, func() {
				r.Submit(float64(j%7)+1, 0, nil)
			})
		}
		e.Run()
	}
}

func BenchmarkSharedResourceManyConcurrentFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		r := NewSharedResource(e, "switch", 1000)
		for j := 0; j < 100; j++ {
			r.Submit(50, 10, nil)
		}
		e.Run()
	}
}
