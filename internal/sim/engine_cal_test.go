package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// The calendar queue must preserve schedule order among events with exactly
// equal timestamps even when the clusters span many wheel windows (each
// cluster forces a window advance through the far heap).
func TestEngineCalendarSameTimestampAcrossWindows(t *testing.T) {
	e := NewEngine()
	var got []int
	id := 0
	for c := 0; c < 60; c++ {
		at := float64(c) * 1013.7
		for k := 0; k < 25; k++ {
			i := id
			id++
			e.At(at, func() { got = append(got, i) })
		}
	}
	e.Run()
	if len(got) != id {
		t.Fatalf("fired %d of %d events", len(got), id)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("position %d fired event %d (want FIFO within equal timestamps)", i, got[i])
		}
	}
}

// An event scheduled from a callback for the current instant must run after
// the events already queued at that instant: ordering is (timestamp,
// schedule sequence), and the new arrival has the larger sequence.
func TestEngineCalendarSameInstantFromCallback(t *testing.T) {
	e := NewEngine()
	var got []string
	e.At(5, func() {
		got = append(got, "first")
		e.At(5, func() { got = append(got, "nested") })
	})
	e.At(5, func() { got = append(got, "second") })
	e.Run()
	want := []string{"first", "second", "nested"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// Cancels must stick whether the event is still in the far overflow heap or
// has already been coalesced into the wheel by a window advance.
func TestEngineCancelAfterCoalesce(t *testing.T) {
	e := NewEngine()
	// Dense near events establish a small bucket width, guaranteeing the
	// far cluster starts outside the wheel's window.
	for i := 0; i < 200; i++ {
		e.At(float64(i)*0.25, func() {})
	}
	fired := make(map[int]bool)
	evs := make([]*Event, 400)
	for i := range evs {
		i := i
		evs[i] = e.At(1e6+float64(i/4), func() { fired[i] = true })
	}
	// Cancel a quarter while they are still far-heap residents.
	for i := 0; i < len(evs); i += 4 {
		e.Cancel(evs[i])
	}
	// Drain the near events; peeking past them advances the window into
	// the far cluster.
	e.RunUntil(1e5)
	if e.Now() > 1e6 {
		t.Fatalf("RunUntil overshot: now=%v", e.Now())
	}
	// Cancel another quarter after the coalesce.
	for i := 1; i < len(evs); i += 4 {
		e.Cancel(evs[i])
	}
	e.Run()
	for i := range evs {
		want := i%4 >= 2
		if fired[i] != want {
			t.Fatalf("event %d: fired=%v, want %v", i, fired[i], want)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending()=%d after Run", e.Pending())
	}
}

// Bucket rollover, window advance, rebuild growth and shrink must never
// reorder events: a randomized schedule with mixed time scales, duplicate
// timestamps, cancels, and mid-run arrivals has to fire in exactly the
// stable (timestamp, schedule order) sequence of the surviving events.
func TestEngineCalendarModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		e := NewEngine()
		type rec struct {
			at  float64
			id  int
			cut bool
		}
		var model []rec
		var got []int
		var evs []*Event
		scales := []float64{0.01, 1, 250, 40000}
		lastAt := 0.0
		n := 600
		for i := 0; i < n; i++ {
			at := rng.ExpFloat64() * scales[rng.Intn(len(scales))]
			if i > 0 && rng.Intn(4) == 0 {
				at = lastAt // exact duplicate timestamp
			}
			lastAt = at
			id := i
			model = append(model, rec{at: at, id: id})
			evs = append(evs, e.At(at, func() { got = append(got, id) }))
		}
		// A mid-run arrival wave: scheduled relative to a random instant,
		// exercising insertion into a partially drained wheel.
		waveAt := rng.Float64() * 1000
		e.At(waveAt, func() {
			for k := 0; k < 100; k++ {
				at := waveAt + rng.ExpFloat64()*scales[rng.Intn(len(scales))]
				id := n + k
				model = append(model, rec{at: at, id: id})
				e.At(at, func() { got = append(got, id) })
			}
		})
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				model[i].cut = true
				e.Cancel(evs[i])
			}
		}
		e.Run()

		var want []int
		live := make([]rec, 0, len(model))
		for _, r := range model {
			if !r.cut {
				live = append(live, r)
			}
		}
		sort.SliceStable(live, func(a, b int) bool { return live[a].at < live[b].at })
		for _, r := range live {
			want = append(want, r.id)
		}
		// The wave sentinel fires too but records nothing; got must equal
		// want exactly.
		if len(got) != len(want) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: position %d fired %d, want %d", trial, i, got[i], want[i])
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("trial %d: Pending()=%d after Run", trial, e.Pending())
		}
	}
}

// A heavy burst followed by a sparse tail walks the wheel through growth
// rebuilds and back down the shrink path without losing ordering.
func TestEngineCalendarGrowShrink(t *testing.T) {
	e := NewEngine()
	var burst int
	for i := 0; i < 20000; i++ {
		e.At(math.Mod(float64(i)*0.137, 100), func() { burst++ })
	}
	var tail []float64
	for i := 0; i < 12; i++ {
		at := 1000 * math.Pow(4, float64(i))
		e.At(at, func() { tail = append(tail, at) })
	}
	e.Run()
	if burst != 20000 {
		t.Fatalf("burst fired %d of 20000", burst)
	}
	if len(tail) != 12 {
		t.Fatalf("tail fired %d of 12", len(tail))
	}
	if !sort.Float64sAreSorted(tail) {
		t.Fatalf("tail fired out of order: %v", tail)
	}
}

// Canceled ephemeral events are recycled lazily at pop; the recycled record
// must not resurrect the old callback when reused.
func TestEngineEphemeralCancelAndReuse(t *testing.T) {
	e := NewEngine()
	fired := make(map[string]int)
	for round := 0; round < 50; round++ {
		ev := e.ScheduleEphemeral(1, func() { fired["canceled"]++ })
		e.Cancel(ev)
		e.ScheduleEphemeral(2, func() { fired["kept"]++ })
		e.RunUntil(e.Now() + 10)
	}
	if fired["canceled"] != 0 {
		t.Fatalf("canceled ephemeral fired %d times", fired["canceled"])
	}
	if fired["kept"] != 50 {
		t.Fatalf("kept ephemeral fired %d of 50", fired["kept"])
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending()=%d", e.Pending())
	}
}
