// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel consists of an Engine that maintains a virtual clock and an
// ordered event queue, and a SharedResource that models contended,
// processor-sharing resources such as network switches, NICs, disks, and
// multi-core CPUs using a fluid-flow (max-min fair) model.
//
// All higher-level substrates in this repository (the simulated HDFS and
// YARN, the cluster hardware model) are built on this package. Determinism
// is guaranteed: events scheduled for the same instant fire in scheduling
// order, and no wall-clock time or global randomness is consulted.
//
// The kernel keeps its own lightweight instrumentation — processed-event
// and queue-depth high-water counters (Engine.Processed, Engine.MaxQueueDepth)
// and per-resource reshare counts (SharedResource.Reshares) — as plain
// integer bumps with no dependency on internal/obs, so the hot path stays
// allocation-free. cluster.RecordMetrics snapshots them into a metrics
// registry after a run.
package sim
