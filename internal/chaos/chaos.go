// Package chaos composes deterministic, seed-driven failure plans for the
// simulated substrate — the injection harness behind the fault-tolerance
// layer. A Plan can crash task attempts, hang them forever (the failure
// mode that only timeouts or speculation can rescue), kill or slow down
// nodes at scheduled virtual times, and inject transient HDFS read errors.
//
// Determinism is a hard requirement: the same plan text and seed produce
// the same decision sequence on every run, because decisions are derived
// from a hash of (seed, decision kind, subject, consultation counter)
// rather than from a shared random stream or wall-clock state. The
// simulation engine consults the plan in a deterministic order, so the
// whole chaotic execution replays bit-identically — which is what lets
// tests assert provenance equality across chaos runs.
package chaos

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hiway/internal/cluster"
	"hiway/internal/hdfs"
	"hiway/internal/sim"
	"hiway/internal/wf"
	"hiway/internal/yarn"
)

// Fate is the outcome the harness dictates for one task attempt.
type Fate int

const (
	// FateRun lets the attempt execute normally.
	FateRun Fate = iota
	// FateCrash makes the attempt fail after its compute phase — the
	// stand-in for a tool crashing or exiting non-zero.
	FateCrash
	// FateHang makes the attempt compute forever without completing — the
	// stand-in for a wedged process. Only an attempt timeout (kill-and-retry
	// or speculation) recovers the workflow.
	FateHang
)

func (f Fate) String() string {
	switch f {
	case FateCrash:
		return "crash"
	case FateHang:
		return "hang"
	default:
		return "run"
	}
}

// Injector is the hook the AM consults per task attempt. Plan implements
// it; tests may supply their own.
type Injector interface {
	// TaskFate decides what happens to the attempt of t on node.
	TaskFate(t *wf.Task, node string, attempt int) Fate
}

// TaskRule targets specific task attempts. Zero-valued matchers are
// wildcards: an empty (or "*") signature matches every task, Attempt < 0
// matches every attempt, Count == 0 applies without limit.
type TaskRule struct {
	Signature string
	Attempt   int // -1 matches any attempt
	Count     int // maximum applications; 0 = unlimited
	Fate      Fate

	used int
}

// NodeEvent schedules a node-level disruption at a virtual time.
type NodeEvent struct {
	Node  string
	AtSec float64
	Kind  string // "kill", "slow", or "spot"
	Hogs  int    // for "slow": background CPU hogs to add
	// NoticeSec is the notice→reclaim gap for "spot" events; negative means
	// the plan-wide SpotNoticeSec default applies.
	NoticeSec float64
}

// Plan is a composed failure plan. The zero value injects nothing; build
// plans with NewPlan/Parse and the With/Add methods.
type Plan struct {
	mu   sync.Mutex
	seed int64

	// Rate-driven faults, decided per consultation by seeded hashing.
	CrashRate     float64 // probability an attempt crashes
	HangRate      float64 // probability an attempt hangs forever
	ReadErrorRate float64 // probability one HDFS read fails transiently

	// Spot-market preemption (two-phase notice→reclaim, armed via ArmSpot).
	// Every SpotEverySec, each live spot node independently receives a
	// preemption notice with probability SpotRate; the node is reclaimed
	// SpotNoticeSec after its notice, mirroring real spot markets.
	SpotRate      float64 // per-check, per-node notice probability
	SpotNoticeSec float64 // notice→reclaim gap; default 120s
	SpotEverySec  float64 // market-check period; default 60s

	rules  []TaskRule
	events []NodeEvent

	calls map[string]int64 // decision kind → consultations so far
}

// NewPlan returns an empty plan with the given seed.
func NewPlan(seed int64) *Plan {
	return &Plan{seed: seed, calls: make(map[string]int64)}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 { return p.seed }

// WithCrashRate sets the per-attempt crash probability.
func (p *Plan) WithCrashRate(r float64) *Plan { p.CrashRate = r; return p }

// WithHangRate sets the per-attempt hang probability.
func (p *Plan) WithHangRate(r float64) *Plan { p.HangRate = r; return p }

// WithReadErrorRate sets the per-read transient HDFS error probability.
func (p *Plan) WithReadErrorRate(r float64) *Plan { p.ReadErrorRate = r; return p }

// AddRule appends a targeted task rule (rules are checked in order, before
// the rate-driven faults).
func (p *Plan) AddRule(r TaskRule) *Plan { p.rules = append(p.rules, r); return p }

// KillNodeAt schedules a node kill at the given virtual time.
func (p *Plan) KillNodeAt(node string, atSec float64) *Plan {
	p.events = append(p.events, NodeEvent{Node: node, AtSec: atSec, Kind: "kill"})
	return p
}

// SlowNodeAt schedules a node slowdown: hogs background CPU stressors are
// added at the given virtual time.
func (p *Plan) SlowNodeAt(node string, atSec float64, hogs int) *Plan {
	p.events = append(p.events, NodeEvent{Node: node, AtSec: atSec, Kind: "slow", Hogs: hogs})
	return p
}

// WithSpotRate sets the per-check, per-node spot preemption probability.
func (p *Plan) WithSpotRate(r float64) *Plan { p.SpotRate = r; return p }

// SpotReclaimAt schedules a targeted spot preemption: the node is noticed at
// atSec and reclaimed noticeSec later (negative noticeSec defers to the
// plan-wide SpotNoticeSec default).
func (p *Plan) SpotReclaimAt(node string, atSec, noticeSec float64) *Plan {
	p.events = append(p.events, NodeEvent{Node: node, AtSec: atSec, Kind: "spot", NoticeSec: noticeSec})
	return p
}

// noticeSec resolves an event's notice gap against the plan default.
func (p *Plan) noticeSec(ev NodeEvent) float64 {
	if ev.NoticeSec >= 0 {
		return ev.NoticeSec
	}
	if p.SpotNoticeSec > 0 {
		return p.SpotNoticeSec
	}
	return 120
}

// Events returns the scheduled node events, sorted by time then node.
func (p *Plan) Events() []NodeEvent {
	out := append([]NodeEvent(nil), p.events...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].AtSec != out[j].AtSec {
			return out[i].AtSec < out[j].AtSec
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// chance makes one deterministic probabilistic decision. The outcome hashes
// the seed, the decision kind, the subject, and a per-kind consultation
// counter — identical plans consulted in identical order (which the
// deterministic simulator guarantees) yield identical decisions.
func (p *Plan) chance(kind, subject string, rate float64) bool {
	if rate <= 0 {
		return false
	}
	p.mu.Lock()
	if p.calls == nil {
		p.calls = make(map[string]int64)
	}
	n := p.calls[kind]
	p.calls[kind] = n + 1
	p.mu.Unlock()
	if rate >= 1 {
		return true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", p.seed, kind, subject, n)
	// FNV-1a alone leaves the low bits dominated by the trailing counter
	// digit; finalize with a murmur3-style mixer so every input byte
	// avalanches across the whole word.
	v := h.Sum64()
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return float64(v>>11)/float64(1<<53) < rate
}

// TaskFate implements Injector: targeted rules first (in order), then the
// rate-driven crash/hang draws.
func (p *Plan) TaskFate(t *wf.Task, node string, attempt int) Fate {
	p.mu.Lock()
	for i := range p.rules {
		r := &p.rules[i]
		if r.Count > 0 && r.used >= r.Count {
			continue
		}
		if r.Signature != "" && r.Signature != "*" && r.Signature != t.Name {
			continue
		}
		if r.Attempt >= 0 && r.Attempt != attempt {
			continue
		}
		r.used++
		p.mu.Unlock()
		return r.Fate
	}
	p.mu.Unlock()
	if p.chance("crash", t.Name, p.CrashRate) {
		return FateCrash
	}
	if p.chance("hang", t.Name, p.HangRate) {
		return FateHang
	}
	return FateRun
}

// ReadError implements the HDFS read-fault hook: a non-nil error fails one
// simulated read (the caller treats it as a transient stage-in failure and
// retries the attempt elsewhere).
func (p *Plan) ReadError(nodeID string, paths []string) error {
	if p.chance("read", nodeID, p.ReadErrorRate) {
		return fmt.Errorf("chaos: transient read error on %s", nodeID)
	}
	return nil
}

// Arm installs the plan into a materialized environment: node kills and
// slowdowns are scheduled on the engine, and the transient-read fault hook
// is attached to HDFS. Task fates are not armed here — the AM consults
// TaskFate through its configuration.
func (p *Plan) Arm(eng *sim.Engine, rm *yarn.ResourceManager, fs *hdfs.FS, cl *cluster.Cluster) {
	for _, ev := range p.Events() {
		ev := ev
		switch ev.Kind {
		case "kill":
			eng.At(ev.AtSec, func() {
				if rm != nil {
					rm.KillNode(ev.Node)
				}
				if fs != nil {
					fs.KillNode(ev.Node)
				}
			})
		case "slow":
			eng.At(ev.AtSec, func() {
				if cl == nil {
					return
				}
				n := cl.Node(ev.Node)
				if n == nil {
					return
				}
				for i := 0; i < ev.Hogs; i++ {
					n.CPU.SubmitBackground(n.Spec.CPUFactor)
				}
			})
		}
	}
	if p.ReadErrorRate > 0 && fs != nil {
		fs.SetReadFault(p.ReadError)
	}
}

// NodeReclaimer is the membership authority ArmSpot drives — in practice
// the autoscale.Manager. NoticeNode starts a graceful drain with the spot
// deadline; ReclaimNode takes the node away immediately; SpotNodes lists
// the live, not-yet-noticed spot nodes eligible for preemption (sorted, so
// seeded decisions are reproducible).
type NodeReclaimer interface {
	SpotNodes() []string
	NoticeNode(id string)
	ReclaimNode(id string)
}

// ArmSpot installs the plan's spot-market preemptions onto the engine.
// Targeted "spot" events notice their node at AtSec and reclaim it a notice
// gap later. With SpotRate > 0, a market check additionally runs every
// SpotEverySec (default 60s) up to horizonSec: each eligible spot node
// independently draws a seeded chance("spot", node) and, when preempted, is
// noticed immediately and reclaimed after the notice gap. The check loop
// self-terminates at horizonSec so the engine can quiesce.
func (p *Plan) ArmSpot(eng *sim.Engine, r NodeReclaimer, horizonSec float64) {
	if r == nil {
		return
	}
	for _, ev := range p.Events() {
		if ev.Kind != "spot" {
			continue
		}
		ev := ev
		notice := p.noticeSec(ev)
		eng.At(ev.AtSec, func() { r.NoticeNode(ev.Node) })
		eng.At(ev.AtSec+notice, func() { r.ReclaimNode(ev.Node) })
	}
	if p.SpotRate <= 0 {
		return
	}
	period := p.SpotEverySec
	if period <= 0 {
		period = 60
	}
	notice := p.SpotNoticeSec
	if notice <= 0 {
		notice = 120
	}
	var check func()
	check = func() {
		for _, id := range r.SpotNodes() {
			if !p.chance("spot", id, p.SpotRate) {
				continue
			}
			id := id
			r.NoticeNode(id)
			eng.Schedule(notice, func() { r.ReclaimNode(id) })
		}
		if eng.Now()+period <= horizonSec {
			eng.Schedule(period, check)
		}
	}
	if period <= horizonSec {
		eng.Schedule(period, check)
	}
}

// String renders the plan in the Parse DSL (rates with %g, rules and node
// events in order).
func (p *Plan) String() string {
	var parts []string
	if p.CrashRate > 0 {
		parts = append(parts, fmt.Sprintf("crashrate=%g", p.CrashRate))
	}
	if p.HangRate > 0 {
		parts = append(parts, fmt.Sprintf("hangrate=%g", p.HangRate))
	}
	if p.ReadErrorRate > 0 {
		parts = append(parts, fmt.Sprintf("readerr=%g", p.ReadErrorRate))
	}
	if p.SpotRate > 0 {
		parts = append(parts, fmt.Sprintf("spotrate=%g", p.SpotRate))
	}
	if p.SpotNoticeSec > 0 {
		parts = append(parts, fmt.Sprintf("spotnotice=%g", p.SpotNoticeSec))
	}
	if p.SpotEverySec > 0 {
		parts = append(parts, fmt.Sprintf("spotevery=%g", p.SpotEverySec))
	}
	for _, r := range p.rules {
		sig := r.Signature
		if sig == "" {
			sig = "*"
		}
		s := fmt.Sprintf("%s=%s", r.Fate, sig)
		if r.Attempt >= 0 {
			s += fmt.Sprintf("@%d", r.Attempt)
		}
		if r.Count > 0 {
			s += fmt.Sprintf(":%d", r.Count)
		}
		parts = append(parts, s)
	}
	for _, ev := range p.events {
		s := fmt.Sprintf("%s=%s@%g", ev.Kind, ev.Node, ev.AtSec)
		switch {
		case ev.Kind == "slow":
			s += fmt.Sprintf(":%d", ev.Hogs)
		case ev.Kind == "spot" && ev.NoticeSec >= 0:
			s += fmt.Sprintf(":%g", ev.NoticeSec)
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ";")
}

// Parse builds a plan from the DSL used by `hiway sim -chaos`. Directives
// are separated by ';' or ',':
//
//	crashrate=P        every attempt crashes with probability P
//	hangrate=P         every attempt hangs with probability P
//	readerr=P          every HDFS read fails transiently with probability P
//	crash=SIG[@N][:C]  crash attempts of signature SIG (N-th attempt only
//	                   if @N given, at most C times if :C given; SIG may
//	                   be "*")
//	hang=SIG[@N][:C]   hang attempts likewise
//	kill=NODE@T        kill NODE at virtual time T seconds
//	slow=NODE@T[:H]    add H (default 1) background CPU hogs to NODE at T
//	spot=NODE@T[:N]    spot-preempt NODE: notice at T, reclaim N (default
//	                   spotnotice) seconds later
//	spotrate=P         each spot node is noticed with probability P per
//	                   market check (armed via ArmSpot)
//	spotnotice=SEC     notice→reclaim gap for spot preemptions (default 120)
//	spotevery=SEC      spot-market check period (default 60)
//
// Example: "hang=align@0:1;crashrate=0.05;kill=node-03@120;spotrate=0.1".
func Parse(spec string, seed int64) (*Plan, error) {
	p := NewPlan(seed)
	for _, dir := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		key, val, ok := strings.Cut(dir, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: directive %q is not key=value", dir)
		}
		switch key {
		case "crashrate", "hangrate", "readerr", "spotrate":
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil || rate < 0 || rate > 1 {
				return nil, fmt.Errorf("chaos: bad rate in %q (want 0..1)", dir)
			}
			switch key {
			case "crashrate":
				p.CrashRate = rate
			case "hangrate":
				p.HangRate = rate
			case "readerr":
				p.ReadErrorRate = rate
			case "spotrate":
				p.SpotRate = rate
			}
		case "spotnotice", "spotevery":
			sec, err := strconv.ParseFloat(val, 64)
			if err != nil || sec <= 0 {
				return nil, fmt.Errorf("chaos: bad duration in %q (want > 0)", dir)
			}
			if key == "spotnotice" {
				p.SpotNoticeSec = sec
			} else {
				p.SpotEverySec = sec
			}
		case "crash", "hang":
			fate := FateCrash
			if key == "hang" {
				fate = FateHang
			}
			rule, err := parseTaskRule(val, fate)
			if err != nil {
				return nil, fmt.Errorf("chaos: %q: %w", dir, err)
			}
			p.AddRule(rule)
		case "kill", "slow", "spot":
			ev, err := parseNodeEvent(key, val)
			if err != nil {
				return nil, fmt.Errorf("chaos: %q: %w", dir, err)
			}
			p.events = append(p.events, ev)
		default:
			return nil, fmt.Errorf("chaos: unknown directive %q", key)
		}
	}
	return p, nil
}

// parseTaskRule parses "SIG[@N][:C]".
func parseTaskRule(val string, fate Fate) (TaskRule, error) {
	rule := TaskRule{Attempt: -1, Fate: fate}
	if body, count, ok := strings.Cut(val, ":"); ok {
		n, err := strconv.Atoi(count)
		if err != nil || n <= 0 {
			return rule, fmt.Errorf("bad count %q", count)
		}
		rule.Count = n
		val = body
	}
	if sig, att, ok := strings.Cut(val, "@"); ok {
		n, err := strconv.Atoi(att)
		if err != nil || n < 0 {
			return rule, fmt.Errorf("bad attempt %q", att)
		}
		rule.Attempt = n
		val = sig
	}
	if val == "" {
		return rule, fmt.Errorf("missing signature")
	}
	rule.Signature = val
	return rule, nil
}

// parseNodeEvent parses "NODE@T[:H]" (slow hog count) or "NODE@T[:N]"
// (spot notice seconds).
func parseNodeEvent(kind, val string) (NodeEvent, error) {
	ev := NodeEvent{Kind: kind, Hogs: 1, NoticeSec: -1}
	if body, suffix, ok := strings.Cut(val, ":"); ok {
		switch kind {
		case "slow":
			n, err := strconv.Atoi(suffix)
			if err != nil || n <= 0 {
				return ev, fmt.Errorf("bad hog count %q", suffix)
			}
			ev.Hogs = n
		case "spot":
			sec, err := strconv.ParseFloat(suffix, 64)
			if err != nil || sec < 0 {
				return ev, fmt.Errorf("bad notice %q", suffix)
			}
			ev.NoticeSec = sec
		default:
			return ev, fmt.Errorf("only slow and spot take a suffix")
		}
		val = body
	}
	node, at, ok := strings.Cut(val, "@")
	if !ok || node == "" {
		return ev, fmt.Errorf("want NODE@TIME")
	}
	t, err := strconv.ParseFloat(at, 64)
	if err != nil || t < 0 {
		return ev, fmt.Errorf("bad time %q", at)
	}
	ev.Node = node
	ev.AtSec = t
	return ev, nil
}
