package chaos

import (
	"strings"
	"testing"

	"hiway/internal/wf"
)

func task(name string) *wf.Task {
	return &wf.Task{ID: wf.NextID(), Name: name}
}

func TestTaskRuleMatching(t *testing.T) {
	p := NewPlan(1).
		AddRule(TaskRule{Signature: "align", Attempt: 0, Fate: FateHang, Count: 1}).
		AddRule(TaskRule{Signature: "*", Attempt: 2, Fate: FateCrash})

	if f := p.TaskFate(task("align"), "n1", 0); f != FateHang {
		t.Fatalf("align attempt 0: got %v, want hang", f)
	}
	// Count=1 exhausted: second consultation runs normally.
	if f := p.TaskFate(task("align"), "n1", 0); f != FateRun {
		t.Fatalf("align attempt 0 after count exhausted: got %v, want run", f)
	}
	// Wildcard rule matches any signature at attempt 2, unlimited count.
	for i := 0; i < 3; i++ {
		if f := p.TaskFate(task("other"), "n2", 2); f != FateCrash {
			t.Fatalf("wildcard attempt 2: got %v, want crash", f)
		}
	}
	if f := p.TaskFate(task("other"), "n2", 1); f != FateRun {
		t.Fatalf("attempt 1 matches no rule: got %v, want run", f)
	}
}

func TestRateDecisionsDeterministic(t *testing.T) {
	run := func() []Fate {
		p := NewPlan(42).WithCrashRate(0.3).WithHangRate(0.1)
		var fates []Fate
		for i := 0; i < 50; i++ {
			fates = append(fates, p.TaskFate(task("t"), "n1", 0))
		}
		return fates
	}
	a, b := run(), run()
	var crashes, hangs int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identically-seeded plans: %v vs %v", i, a[i], b[i])
		}
		switch a[i] {
		case FateCrash:
			crashes++
		case FateHang:
			hangs++
		}
	}
	if crashes == 0 {
		t.Fatal("crash rate 0.3 over 50 draws produced no crashes")
	}
	// A different seed must diverge somewhere over 50 draws.
	p2 := NewPlan(43).WithCrashRate(0.3).WithHangRate(0.1)
	same := true
	for i := 0; i < 50; i++ {
		if p2.TaskFate(task("t"), "n1", 0) != a[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 43 reproduced seed 42's decision sequence exactly")
	}
}

func TestReadErrorDeterministic(t *testing.T) {
	run := func() []bool {
		p := NewPlan(7).WithReadErrorRate(0.25)
		var errs []bool
		for i := 0; i < 40; i++ {
			errs = append(errs, p.ReadError("n1", nil) != nil)
		}
		return errs
	}
	a, b := run(), run()
	any := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("read decision %d differs across runs", i)
		}
		any = any || a[i]
	}
	if !any {
		t.Fatal("read error rate 0.25 over 40 draws produced no errors")
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("crashrate=0.05; hang=align@0:1, kill=node-03@120; slow=node-01@60:2; readerr=0.01", 9)
	if err != nil {
		t.Fatal(err)
	}
	if p.CrashRate != 0.05 || p.ReadErrorRate != 0.01 {
		t.Fatalf("rates not parsed: %+v", p)
	}
	if len(p.rules) != 1 {
		t.Fatalf("want 1 rule, got %d", len(p.rules))
	}
	r := p.rules[0]
	if r.Signature != "align" || r.Attempt != 0 || r.Count != 1 || r.Fate != FateHang {
		t.Fatalf("rule mis-parsed: %+v", r)
	}
	evs := p.Events()
	if len(evs) != 2 {
		t.Fatalf("want 2 node events, got %d", len(evs))
	}
	if evs[0].Kind != "slow" || evs[0].Node != "node-01" || evs[0].AtSec != 60 || evs[0].Hogs != 2 {
		t.Fatalf("slow event mis-parsed: %+v", evs[0])
	}
	if evs[1].Kind != "kill" || evs[1].Node != "node-03" || evs[1].AtSec != 120 {
		t.Fatalf("kill event mis-parsed: %+v", evs[1])
	}
	// String round-trips through Parse.
	p2, err := Parse(p.String(), 9)
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip changed plan: %q vs %q", p.String(), p2.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus=1",
		"crashrate=2",
		"crashrate=x",
		"crash=",
		"crash=t@x",
		"crash=t:0",
		"kill=node",
		"kill=node@-1",
		"kill=node@5:2", // hog count on a kill
		"noequals",
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", spec)
		} else if !strings.Contains(err.Error(), "chaos:") {
			t.Errorf("Parse(%q) error lacks chaos prefix: %v", spec, err)
		}
	}
}
