package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"hiway/internal/chaos"
	"hiway/internal/cluster"
	"hiway/internal/hdfs"
	"hiway/internal/memo"
	"hiway/internal/obs"
	"hiway/internal/recipes"
	"hiway/internal/scheduler"
	"hiway/internal/service"
	"hiway/internal/yarn"
)

// ServiceLoadConfig describes one sustained-load service run: the tenant
// mix of ServiceTenantMix submitting workflows at RateX times the base
// rates into an admission-controlled cluster of Nodes workers.
type ServiceLoadConfig struct {
	Seed        int64
	Nodes       int     // worker nodes; default 8
	DurationSec float64 // arrival window; default 1800
	RateX       float64 // arrival-rate multiplier; default 1

	MaxConcurrent int     // admitted-AM cap; default 4
	MaxQueue      int     // backpressure threshold; default 16
	RetryAfterSec float64 // client retry delay after rejection; default 30
	RetryLimit    int     // client retries before dropping; default 1
	Policy        string  // per-workflow scheduling policy; default fcfs

	ChaosSpec string // optional chaos plan (chaos.Parse DSL)
	ChaosSeed int64  // seed for chaos rate draws; default 1

	// Memo shares one cluster-wide memo table across all workflows of the
	// run: repeated submissions of a tenant's pipeline splice completed
	// tasks instead of re-executing them.
	Memo bool

	WithObs bool // build the observability layer (metrics snapshot)
}

func (c *ServiceLoadConfig) setDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.DurationSec <= 0 {
		c.DurationSec = 1800
	}
	if c.RateX <= 0 {
		c.RateX = 1
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.Policy == "" {
		c.Policy = scheduler.PolicyFCFS
	}
	if c.ChaosSeed == 0 {
		c.ChaosSeed = 1
	}
}

// ServiceTenantMix is the default multi-tenant traffic mix: a heavy
// weighted tenant, a bursty medium tenant, and a background (zero-weight)
// tenant, all scaled by the ladder's rate multiplier.
func ServiceTenantMix(rateX float64) []service.TenantProfile {
	return []service.TenantProfile{
		{
			Name: "genomics", Weight: 2, MaxContainers: 12,
			RatePerSec: 0.010 * rateX,
			Workload:   service.WorkloadSpec{Kind: service.WorkloadSNV},
		},
		{
			Name: "rnaseq", Weight: 1, MaxContainers: 8,
			RatePerSec: 0.004 * rateX, Burst: 2,
			Workload: service.WorkloadSpec{Kind: service.WorkloadSNV, FilesPerSample: 3},
		},
		{
			Name: "background", Weight: 0, MaxContainers: 4,
			RatePerSec: 0.003 * rateX,
			Workload:   service.WorkloadSpec{Kind: service.WorkloadSNV, FileSizeMB: 32, CPUSeconds: 20},
		},
	}
}

// ServicePoint is one ladder measurement: the service stats at a given
// arrival-rate multiplier.
type ServicePoint struct {
	RateX         float64 `json:"rateX"`
	Nodes         int     `json:"nodes"`
	DurationSec   float64 `json:"durationSec"`
	MaxConcurrent int     `json:"maxConcurrent"`
	MaxQueue      int     `json:"maxQueue"`
	Policy        string  `json:"policy"`

	Submitted  int `json:"submitted"`
	Admitted   int `json:"admitted"`
	Succeeded  int `json:"succeeded"`
	Failed     int `json:"failed"`
	Rejections int `json:"rejections"`
	Dropped    int `json:"dropped"`

	GoodputPerHour  float64 `json:"goodputPerHour"`
	RejectionRate   float64 `json:"rejectionRate"`
	QueueWaitP50Sec float64 `json:"queueWaitP50Sec"`
	QueueWaitP99Sec float64 `json:"queueWaitP99Sec"`
	QueueWaitMaxSec float64 `json:"queueWaitMaxSec"`
	E2EP50Sec       float64 `json:"e2eP50Sec"`
	E2EP99Sec       float64 `json:"e2eP99Sec"`

	// Memoization columns, present only on memo-enabled rungs (omitempty
	// keeps memo-off rows byte-identical to a memo-less build).
	Memo            bool    `json:"memo,omitempty"`
	MemoizedTasks   int     `json:"memoizedTasks,omitempty"`
	MemoHits        int64   `json:"memoHits,omitempty"`
	MemoHitRate     float64 `json:"memoHitRate,omitempty"`
	MemoCPUSavedSec float64 `json:"memoCPUSavedSec,omitempty"`

	WallSec float64 `json:"wallSec"`
}

// ServiceRun bundles one load run's outputs: the ladder point, the full
// stats, the per-workflow accounts, and (with WithObs) the observability
// layer for metric snapshots.
type ServiceRun struct {
	Point    ServicePoint
	Stats    *service.Stats
	Accounts []*service.Account
	Obs      *obs.Obs
}

// svcNodeSpec is the worker node used by service load runs.
func svcNodeSpec() cluster.NodeSpec {
	return cluster.NodeSpec{VCores: 8, MemMB: 16384, CPUFactor: 1, DiskMBps: 200, NetMBps: 200}
}

// ServiceLoad materializes a cluster for the tenant mix, runs one sustained
// open-loop load until the service drains, and measures it.
func ServiceLoad(cfg ServiceLoadConfig) (*ServiceRun, error) {
	cfg.setDefaults()
	mix := ServiceTenantMix(cfg.RateX)
	r := &recipes.Recipe{
		Name:       "service-load",
		Groups:     []recipes.NodeGroup{{Count: cfg.Nodes, Spec: svcNodeSpec()}},
		SwitchMBps: 100 * float64(cfg.Nodes),
		HDFS:       hdfs.Config{},
		YARN: yarn.Config{
			Fair:       true,
			AMResource: yarn.Resource{VCores: 0, MemMB: 256},
			Tenants:    service.TenantPolicies(mix),
		},
		Seed: cfg.Seed,
	}
	e, err := buildEnv(r, nil)
	if err != nil {
		return nil, err
	}
	var o *obs.Obs
	if cfg.WithObs {
		o = obs.New(e.eng.Now)
		e.Env.Obs = o
		e.RM.SetObs(o)
		e.Prov.SetObs(o)
	}
	svcCfg := service.Config{
		Seed:          cfg.Seed,
		DurationSec:   cfg.DurationSec,
		MaxConcurrent: cfg.MaxConcurrent,
		MaxQueue:      cfg.MaxQueue,
		RetryAfterSec: cfg.RetryAfterSec,
		RetryLimit:    cfg.RetryLimit,
		Policy:        cfg.Policy,
	}
	if cfg.ChaosSpec != "" {
		plan, err := chaos.Parse(cfg.ChaosSpec, cfg.ChaosSeed)
		if err != nil {
			return nil, err
		}
		plan.Arm(e.eng, e.RM, e.FS, e.Cluster)
		svcCfg.Chaos = plan
	}
	if cfg.Memo {
		svcCfg.Memo = memo.New(0)
	}
	svc, err := service.New(e.eng, e.Env, svcCfg, mix)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	svc.Start()
	e.eng.Run()
	wall := time.Since(start).Seconds()
	if svc.QueueDepth() != 0 || svc.Running() != 0 {
		return nil, fmt.Errorf("service load: engine quiesced with %d queued, %d running",
			svc.QueueDepth(), svc.Running())
	}
	st := svc.Stats()
	pt := ServicePoint{
		RateX:         cfg.RateX,
		Nodes:         cfg.Nodes,
		DurationSec:   cfg.DurationSec,
		MaxConcurrent: cfg.MaxConcurrent,
		MaxQueue:      cfg.MaxQueue,
		Policy:        cfg.Policy,

		Submitted:  st.Submitted,
		Admitted:   st.Admitted,
		Succeeded:  st.Succeeded,
		Failed:     st.Failed,
		Rejections: st.Rejections,
		Dropped:    st.Dropped,

		GoodputPerHour:  st.GoodputPerHour,
		RejectionRate:   st.RejectionRate,
		QueueWaitP50Sec: st.QueueWaitP50Sec,
		QueueWaitP99Sec: st.QueueWaitP99Sec,
		QueueWaitMaxSec: st.QueueWaitMaxSec,
		E2EP50Sec:       st.E2EP50Sec,
		E2EP99Sec:       st.E2EP99Sec,

		WallSec: wall,
	}
	if cfg.Memo {
		pt.Memo = true
		pt.MemoizedTasks = st.MemoizedTasks
		pt.MemoHits = st.MemoHits
		if st.MemoLookups > 0 {
			pt.MemoHitRate = float64(st.MemoHits) / float64(st.MemoLookups)
		}
		pt.MemoCPUSavedSec = st.MemoCPUSavedSec
	}
	return &ServiceRun{Point: pt, Stats: st, Accounts: svc.Accounts(), Obs: o}, nil
}

// Render formats one run's summary, per-tenant breakdown, and per-workflow
// accounts as deterministic text (no wall-clock values), so same-seed runs
// print byte-identical reports — the property the soak e2e test pins.
func (r *ServiceRun) Render() string {
	st := r.Stats
	out := fmt.Sprintf("submitted %d  admitted %d  succeeded %d  failed %d  rejected %d  dropped %d\n",
		st.Submitted, st.Admitted, st.Succeeded, st.Failed, st.Rejections, st.Dropped)
	out += fmt.Sprintf("goodput %.1f/h  rejection-rate %.3f  queue-wait p50 %.1fs p99 %.1fs max %.1fs  e2e p50 %.1fs p99 %.1fs\n",
		st.GoodputPerHour, st.RejectionRate,
		st.QueueWaitP50Sec, st.QueueWaitP99Sec, st.QueueWaitMaxSec,
		st.E2EP50Sec, st.E2EP99Sec)
	if r.Point.Memo {
		out += fmt.Sprintf("memo: %d tasks spliced, %d/%d lookups hit, %.1f cpu-seconds saved\n",
			st.MemoizedTasks, st.MemoHits, st.MemoLookups, st.MemoCPUSavedSec)
	}
	out += "\n"

	names := make([]string, 0, len(st.Tenants))
	for n := range st.Tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	tenantRows := make([][]string, 0, len(names))
	for _, n := range names {
		ts := st.Tenants[n]
		tenantRows = append(tenantRows, []string{
			n, fmt.Sprint(ts.Submitted), fmt.Sprint(ts.Admitted), fmt.Sprint(ts.Succeeded),
			fmt.Sprint(ts.Failed), fmt.Sprint(ts.Rejections), fmt.Sprint(ts.Dropped),
			fmt.Sprintf("%.1f", ts.QueueWaitP50Sec), fmt.Sprintf("%.1f", ts.QueueWaitP99Sec),
			fmt.Sprintf("%.1f", ts.E2EP99Sec),
		})
	}
	out += table(
		[]string{"tenant", "submitted", "admitted", "ok", "fail", "rejected", "dropped", "p50-wait", "p99-wait", "p99-e2e"},
		tenantRows,
	)

	accRows := make([][]string, 0, len(r.Accounts))
	for _, a := range r.Accounts {
		status := "ok"
		switch {
		case a.Dropped:
			status = "dropped"
		case !a.Succeeded:
			status = "FAILED"
		}
		accRows = append(accRows, []string{
			a.ID, a.Tenant,
			fmt.Sprintf("%.1f", a.SubmitAt), fmt.Sprintf("%.1f", a.AdmitAt), fmt.Sprintf("%.1f", a.EndAt),
			fmt.Sprintf("%.1f", a.QueueWaitSec), fmt.Sprintf("%.1f", a.MakespanSec), fmt.Sprintf("%.1f", a.E2ESec),
			fmt.Sprint(a.Tasks), fmt.Sprint(a.Rejections), status,
		})
	}
	out += "\nworkflow accounts:\n" + table(
		[]string{"workflow", "tenant", "submit", "admit", "end", "wait", "makespan", "e2e", "tasks", "rejects", "status"},
		accRows,
	)
	return out
}

// ServiceResult is the full ladder output, serialized to BENCH_service.json.
type ServiceResult struct {
	Points []ServicePoint `json:"points"`
}

// ServiceSweepConfigs is the default arrival-rate ladder: from light load
// through saturation into overload, where admission control must keep p99
// queue wait bounded while goodput plateaus.
func ServiceSweepConfigs(full bool) []ServiceLoadConfig {
	rates := []float64{0.25, 0.5, 1}
	if full {
		rates = append(rates, 2, 4)
	}
	cfgs := make([]ServiceLoadConfig, 0, len(rates))
	for _, rx := range rates {
		cfgs = append(cfgs, ServiceLoadConfig{Seed: 1, RateX: rx})
	}
	return cfgs
}

// WithMemo returns a copy of the configs with the shared memo table enabled
// on each, for appending memo-on rungs after the memo-off ladder: the
// memo-off rows stay untouched and the paired rungs differ only in the Memo
// bit.
func WithMemo(cfgs []ServiceLoadConfig) []ServiceLoadConfig {
	out := make([]ServiceLoadConfig, len(cfgs))
	for i, c := range cfgs {
		c.Memo = true
		out[i] = c
	}
	return out
}

// ServiceSweep runs the ladder.
func ServiceSweep(cfgs []ServiceLoadConfig) (*ServiceResult, error) {
	res := &ServiceResult{}
	for _, cfg := range cfgs {
		run, err := ServiceLoad(cfg)
		if err != nil {
			return nil, fmt.Errorf("service load x%.2g: %w", cfg.RateX, err)
		}
		res.Points = append(res.Points, run.Point)
	}
	return res, nil
}

// JSON serializes the result for BENCH_service.json.
func (r *ServiceResult) JSON() []byte {
	b, _ := json.MarshalIndent(r, "", "  ")
	return append(b, '\n')
}

// Render formats the ladder as an aligned text table.
func (r *ServiceResult) Render() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		memoCol := "off"
		if p.Memo {
			memoCol = fmt.Sprintf("%d hits", p.MemoHits)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2g", p.RateX), fmt.Sprint(p.Nodes),
			fmt.Sprint(p.Submitted), fmt.Sprint(p.Admitted), fmt.Sprint(p.Succeeded),
			fmt.Sprint(p.Rejections), fmt.Sprint(p.Dropped),
			fmt.Sprintf("%.1f", p.GoodputPerHour),
			fmt.Sprintf("%.3f", p.RejectionRate),
			fmt.Sprintf("%.1f", p.QueueWaitP99Sec),
			fmt.Sprintf("%.1f", p.E2EP99Sec),
			memoCol,
			fmt.Sprintf("%.3f", p.WallSec),
		})
	}
	return table(
		[]string{"rate-x", "nodes", "submitted", "admitted", "ok", "rejected", "dropped", "goodput/h", "rej-rate", "p99-wait", "p99-e2e", "memo", "wall-s"},
		rows,
	)
}
