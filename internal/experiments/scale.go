package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/provenance"
	"hiway/internal/recipes"
	"hiway/internal/scheduler"
	"hiway/internal/wf"
	"hiway/internal/workloads"
	"hiway/internal/yarn"
)

// ScaleConfig describes one point of the scale-out harness: a synthetic
// layered workflow (Layers × Width tasks, each layer consuming the previous
// one's outputs) executed on a uniform cluster of Nodes workers. It probes
// the regime of the paper's Fig. 8/9 — thousands of tasks on large clusters —
// where the simulator's own hot paths, not the modeled hardware, must not
// become the bottleneck.
type ScaleConfig struct {
	Tasks  int    // total task count (rounded down to a multiple of Width)
	Width  int    // tasks per layer (parallelism); default 64
	Nodes  int    // worker nodes; default 16
	Policy string // scheduling policy; default dataaware

	TaskCPUSeconds float64 // per-task compute; default 20
	FileMB         float64 // per-task output size; default 8
}

func (c *ScaleConfig) setDefaults() {
	if c.Width <= 0 {
		c.Width = 64
	}
	if c.Tasks < c.Width {
		c.Tasks = c.Width
	}
	if c.Nodes <= 0 {
		c.Nodes = 16
	}
	if c.Policy == "" {
		c.Policy = scheduler.PolicyDataAware
	}
	if c.TaskCPUSeconds <= 0 {
		c.TaskCPUSeconds = 20
	}
	if c.FileMB <= 0 {
		c.FileMB = 8
	}
}

// ScalePoint is the measurement for one configuration.
type ScalePoint struct {
	Tasks  int    `json:"tasks"`
	Nodes  int    `json:"nodes"`
	Policy string `json:"policy"`

	MakespanSec  float64 `json:"makespanSec"`  // virtual time
	WallSec      float64 `json:"wallSec"`      // real time to simulate it
	Events       int64   `json:"events"`       // engine events executed
	EventsPerSec float64 `json:"eventsPerSec"` // events / wall second
	AllocMB      float64 `json:"allocMB"`      // heap allocated during the run
	Containers   int64   `json:"containers"`
}

// ScaleResult is the full harness output, serialized to BENCH_scale.json by
// the scale benchmark and the CI smoke step.
type ScaleResult struct {
	Points []ScalePoint `json:"points"`
}

// syntheticWorkflow builds a layered fan-out workflow: layer 0 reads the
// staged inputs; each task of layer l consumes the output of the same lane
// in layer l-1 plus one shuffled neighbor lane, modeling the mix of
// pipeline-local and cross-lane data dependencies of real workflows.
func syntheticWorkflow(cfg ScaleConfig) (wf.Driver, []workloads.Input) {
	layers := cfg.Tasks / cfg.Width
	inputs := make([]workloads.Input, cfg.Width)
	initial := make([]string, cfg.Width)
	for w := 0; w < cfg.Width; w++ {
		p := fmt.Sprintf("/scale/in/part-%04d", w)
		inputs[w] = workloads.Input{Path: p, SizeMB: cfg.FileMB}
		initial[w] = p
	}
	build := func() ([]*wf.Task, []string, []wf.Edge, error) {
		var tasks []*wf.Task
		out := func(l, w int) string { return fmt.Sprintf("/scale/l%03d/part-%04d", l, w) }
		for l := 0; l < layers; l++ {
			for w := 0; w < cfg.Width; w++ {
				var ins []string
				if l == 0 {
					ins = []string{initial[w]}
				} else {
					ins = []string{out(l-1, w), out(l-1, (w*7+l)%cfg.Width)}
				}
				p := out(l, w)
				tasks = append(tasks, &wf.Task{
					ID:           wf.NextID(),
					Name:         fmt.Sprintf("stage-%03d", l),
					Command:      fmt.Sprintf("synth stage %d lane %d", l, w),
					Inputs:       ins,
					OutputParams: []string{"out"},
					Declared:     map[string][]wf.FileInfo{"out": {{Path: p, SizeMB: cfg.FileMB}}},
					CPUSeconds:   cfg.TaskCPUSeconds,
					Threads:      1,
					MemMB:        512,
				})
			}
		}
		return tasks, initial, nil, nil
	}
	return &wf.StaticBase{WFName: fmt.Sprintf("scale-%dx%d", layers, cfg.Width), Build: build}, inputs
}

// Scale executes one configuration and measures the simulator itself:
// virtual makespan, wall time, events/sec, and heap allocations.
func Scale(cfg ScaleConfig) (ScalePoint, error) {
	cfg.setDefaults()
	driver, inputs := syntheticWorkflow(cfg)
	r := &recipes.Recipe{
		Name:       "scale",
		Groups:     []recipes.NodeGroup{{Count: cfg.Nodes, Spec: cluster.C32XLarge()}},
		SwitchMBps: 40 * float64(cfg.Nodes),
		HDFS:       hdfs.Config{BlockSizeMB: 64, Replication: 3},
		YARN:       yarn.Config{},
		Seed:       1,
		Inputs:     inputs,
	}
	e, err := buildEnv(r, provenance.NewMemStore())
	if err != nil {
		return ScalePoint{}, err
	}
	sched, err := scheduler.New(cfg.Policy, scheduler.Deps{Locality: e.FS, Estimator: e.Prov})
	if err != nil {
		return ScalePoint{}, err
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	rep, err := core.Run(e.Env, driver, sched, core.Config{ContainerVCores: 1, ContainerMemMB: 1024})
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if err != nil {
		return ScalePoint{}, err
	}
	events := e.eng.Processed()
	pt := ScalePoint{
		Tasks:       cfg.Tasks / cfg.Width * cfg.Width,
		Nodes:       cfg.Nodes,
		Policy:      cfg.Policy,
		MakespanSec: rep.MakespanSec,
		WallSec:     wall,
		Events:      events,
		AllocMB:     float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
		Containers:  rep.Containers,
	}
	if wall > 0 {
		pt.EventsPerSec = float64(events) / wall
	}
	return pt, nil
}

// ScaleSweepConfigs is the default ladder the benchmark and CI smoke run:
// from a small sanity point up to ~10k tasks on a 256-node cluster.
func ScaleSweepConfigs(full bool) []ScaleConfig {
	cfgs := []ScaleConfig{
		{Tasks: 512, Width: 32, Nodes: 16, Policy: scheduler.PolicyFCFS},
		{Tasks: 2048, Width: 64, Nodes: 64, Policy: scheduler.PolicyDataAware},
	}
	if full {
		cfgs = append(cfgs,
			ScaleConfig{Tasks: 4096, Width: 128, Nodes: 128, Policy: scheduler.PolicyDataAware},
			ScaleConfig{Tasks: 10240, Width: 256, Nodes: 256, Policy: scheduler.PolicyDataAware},
			ScaleConfig{Tasks: 10240, Width: 256, Nodes: 256, Policy: scheduler.PolicyAdaptiveGreedy},
		)
	}
	return cfgs
}

// ScaleSweep runs a ladder of configurations.
func ScaleSweep(cfgs []ScaleConfig) (*ScaleResult, error) {
	res := &ScaleResult{}
	for _, cfg := range cfgs {
		pt, err := Scale(cfg)
		if err != nil {
			return nil, fmt.Errorf("scale %d tasks / %d nodes / %s: %w", cfg.Tasks, cfg.Nodes, cfg.Policy, err)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// JSON serializes the result for BENCH_scale.json.
func (r *ScaleResult) JSON() []byte {
	b, _ := json.MarshalIndent(r, "", "  ")
	return append(b, '\n')
}

// Render formats the result as an aligned text table.
func (r *ScaleResult) Render() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprint(p.Tasks), fmt.Sprint(p.Nodes), p.Policy,
			fmt.Sprintf("%.0f", p.MakespanSec),
			fmt.Sprintf("%.3f", p.WallSec),
			fmt.Sprint(p.Events),
			fmt.Sprintf("%.0f", p.EventsPerSec),
			fmt.Sprintf("%.1f", p.AllocMB),
		})
	}
	return table(
		[]string{"tasks", "nodes", "policy", "makespan-s", "wall-s", "events", "events/s", "alloc-MB"},
		rows,
	)
}
