package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/provenance"
	"hiway/internal/recipes"
	"hiway/internal/scheduler"
	"hiway/internal/shard"
	"hiway/internal/wf"
	"hiway/internal/workloads"
	"hiway/internal/yarn"
)

// ScaleConfig describes one point of the scale-out harness: a synthetic
// layered workflow (Layers × Width tasks, each layer consuming the previous
// one's outputs) executed on a uniform cluster of Nodes workers. It probes
// the regime of the paper's Fig. 8/9 — thousands of tasks on large clusters —
// where the simulator's own hot paths, not the modeled hardware, must not
// become the bottleneck.
type ScaleConfig struct {
	Tasks  int    // total task count (rounded down to a multiple of Width)
	Width  int    // tasks per layer (parallelism); default 64
	Nodes  int    // worker nodes; default 16
	Policy string // scheduling policy; default dataaware

	// Shards > 1 splits the point into that many independent workflows,
	// each with Tasks/Shards tasks, Width/Shards lanes and Nodes/Shards
	// nodes on its own simulation substrate, executed by the shard runner
	// (ShardWorkers goroutines; default GOMAXPROCS). This is how the top
	// rungs keep per-event cost in the flat small-cluster regime: the
	// switch model's reshare cost grows with concurrent flows per engine,
	// so one 1024-node engine is slower per event than sixteen 64-node
	// engines simulating the same aggregate work.
	Shards       int
	ShardWorkers int

	TaskCPUSeconds float64 // per-task compute; default 20
	FileMB         float64 // per-task output size; default 8
}

func (c *ScaleConfig) setDefaults() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.ShardWorkers <= 0 {
		c.ShardWorkers = runtime.GOMAXPROCS(0)
	}
	if c.Width <= 0 {
		c.Width = 64
	}
	if c.Tasks < c.Width {
		c.Tasks = c.Width
	}
	if c.Nodes <= 0 {
		c.Nodes = 16
	}
	if c.Policy == "" {
		c.Policy = scheduler.PolicyDataAware
	}
	if c.TaskCPUSeconds <= 0 {
		c.TaskCPUSeconds = 20
	}
	if c.FileMB <= 0 {
		c.FileMB = 8
	}
}

// ScalePoint is the measurement for one configuration.
type ScalePoint struct {
	Tasks  int    `json:"tasks"`
	Nodes  int    `json:"nodes"`
	Policy string `json:"policy"`
	Shards int    `json:"shards,omitempty"`

	MakespanSec  float64 `json:"makespanSec"`  // virtual time
	WallSec      float64 `json:"wallSec"`      // real time to simulate it
	Events       int64   `json:"events"`       // engine events executed
	EventsPerSec float64 `json:"eventsPerSec"` // events / wall second
	AllocMB      float64 `json:"allocMB"`      // heap allocated during the run
	Containers   int64   `json:"containers"`
}

// ScaleResult is the full harness output, serialized to BENCH_scale.json by
// the scale benchmark and the CI smoke step.
type ScaleResult struct {
	Points []ScalePoint `json:"points"`
}

// syntheticWorkflow builds a layered fan-out workflow: layer 0 reads the
// staged inputs; each task of layer l consumes the output of the same lane
// in layer l-1 plus one shuffled neighbor lane, modeling the mix of
// pipeline-local and cross-lane data dependencies of real workflows.
func syntheticWorkflow(cfg ScaleConfig) (wf.Driver, []workloads.Input) {
	layers := cfg.Tasks / cfg.Width
	inputs := make([]workloads.Input, cfg.Width)
	initial := make([]string, cfg.Width)
	for w := 0; w < cfg.Width; w++ {
		p := fmt.Sprintf("/scale/in/part-%04d", w)
		inputs[w] = workloads.Input{Path: p, SizeMB: cfg.FileMB}
		initial[w] = p
	}
	// The ID block is reserved here, on the caller's (serial) goroutine;
	// Build itself may later run on a shard worker, and must not draw from
	// the process-global counter there.
	idBase := wf.ReserveIDs(int64(layers * cfg.Width))
	build := func() ([]*wf.Task, []string, []wf.Edge, error) {
		var tasks []*wf.Task
		out := func(l, w int) string { return fmt.Sprintf("/scale/l%03d/part-%04d", l, w) }
		for l := 0; l < layers; l++ {
			for w := 0; w < cfg.Width; w++ {
				var ins []string
				if l == 0 {
					ins = []string{initial[w]}
				} else {
					ins = []string{out(l-1, w), out(l-1, (w*7+l)%cfg.Width)}
				}
				p := out(l, w)
				tasks = append(tasks, &wf.Task{
					ID:           idBase + int64(l*cfg.Width+w),
					Name:         fmt.Sprintf("stage-%03d", l),
					Command:      fmt.Sprintf("synth stage %d lane %d", l, w),
					Inputs:       ins,
					OutputParams: []string{"out"},
					Declared:     map[string][]wf.FileInfo{"out": {{Path: p, SizeMB: cfg.FileMB}}},
					CPUSeconds:   cfg.TaskCPUSeconds,
					Threads:      1,
					MemMB:        512,
				})
			}
		}
		return tasks, initial, nil, nil
	}
	return &wf.StaticBase{WFName: fmt.Sprintf("scale-%dx%d", layers, cfg.Width), Build: build}, inputs
}

// scaleShard is one shard of a scale point. The workflow driver is created
// on the serial path (reserving the shard's task-ID block there — see
// syntheticWorkflow), while the simulation substrate is assembled inside
// run() on the shard worker, so substrate construction and parsing are part
// of the measured phase exactly as in a single-substrate run. After run()
// everything but the scalar measurements is dropped, keeping the live heap
// one-shard-sized however many shards the point has.
type scaleShard struct {
	cfg    ScaleConfig
	seed   int64
	driver wf.Driver
	inputs []workloads.Input

	events     int64
	containers int64
	makespan   float64
}

func (s *scaleShard) run() error {
	r := &recipes.Recipe{
		Name:       "scale",
		Groups:     []recipes.NodeGroup{{Count: s.cfg.Nodes, Spec: cluster.C32XLarge()}},
		SwitchMBps: 40 * float64(s.cfg.Nodes),
		HDFS:       hdfs.Config{BlockSizeMB: 64, Replication: 3},
		YARN:       yarn.Config{},
		Seed:       s.seed,
		Inputs:     s.inputs,
	}
	e, err := buildEnv(r, provenance.NewMemStore())
	if err != nil {
		return err
	}
	sched, err := scheduler.New(s.cfg.Policy, scheduler.Deps{Locality: e.FS, Estimator: e.Prov})
	if err != nil {
		return err
	}
	rep, err := core.Run(e.Env, s.driver, sched, core.Config{ContainerVCores: 1, ContainerMemMB: 1024})
	if err != nil {
		return err
	}
	s.events = e.eng.Processed()
	s.containers = rep.Containers
	s.makespan = rep.MakespanSec
	s.driver, s.inputs = nil, nil
	return nil
}

// Scale executes one configuration and measures the simulator itself:
// virtual makespan, wall time, events/sec, and heap allocations. With
// cfg.Shards > 1 the point runs as that many independent workflows on
// separate engines via the shard runner; events and containers are summed,
// the makespan is the slowest shard's (the shards model disjoint clusters
// running concurrently), and wall time covers the whole parallel phase
// including each shard's substrate construction and parse.
func Scale(cfg ScaleConfig) (ScalePoint, error) {
	cfg.setDefaults()

	per := cfg
	per.Tasks = cfg.Tasks / cfg.Shards
	per.Width = cfg.Width / cfg.Shards
	per.Nodes = cfg.Nodes / cfg.Shards
	per.setDefaults()

	shards := make([]*scaleShard, cfg.Shards)
	for i := range shards {
		driver, inputs := syntheticWorkflow(per)
		shards[i] = &scaleShard{cfg: per, seed: int64(i + 1), driver: driver, inputs: inputs}
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := shard.Run(len(shards), cfg.ShardWorkers, func(i int) error { return shards[i].run() })
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if err != nil {
		return ScalePoint{}, err
	}

	pt := ScalePoint{
		Tasks:   per.Tasks / per.Width * per.Width * cfg.Shards,
		Nodes:   per.Nodes * cfg.Shards,
		Policy:  cfg.Policy,
		WallSec: wall,
		AllocMB: float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
	}
	if cfg.Shards > 1 {
		pt.Shards = cfg.Shards
	}
	for _, s := range shards {
		pt.Events += s.events
		pt.Containers += s.containers
		if s.makespan > pt.MakespanSec {
			pt.MakespanSec = s.makespan
		}
	}
	if wall > 0 {
		pt.EventsPerSec = float64(pt.Events) / wall
	}
	return pt, nil
}

// ScaleSweepConfigs is the default ladder the benchmark and CI smoke run:
// from a small sanity point up to ~10k tasks on a 256-node cluster.
func ScaleSweepConfigs(full bool) []ScaleConfig {
	cfgs := []ScaleConfig{
		{Tasks: 512, Width: 32, Nodes: 16, Policy: scheduler.PolicyFCFS},
		{Tasks: 2048, Width: 64, Nodes: 64, Policy: scheduler.PolicyDataAware},
	}
	if full {
		cfgs = append(cfgs,
			ScaleConfig{Tasks: 4096, Width: 128, Nodes: 128, Policy: scheduler.PolicyDataAware},
			ScaleConfig{Tasks: 10240, Width: 256, Nodes: 256, Policy: scheduler.PolicyDataAware},
			ScaleConfig{Tasks: 10240, Width: 256, Nodes: 256, Policy: scheduler.PolicyAdaptiveGreedy},
			ScaleConfig{Tasks: 102400, Width: 1024, Nodes: 1024, Shards: 16, Policy: scheduler.PolicyDataAware},
		)
	}
	return cfgs
}

// ScaleSweep runs a ladder of configurations.
func ScaleSweep(cfgs []ScaleConfig) (*ScaleResult, error) {
	res := &ScaleResult{}
	for _, cfg := range cfgs {
		pt, err := Scale(cfg)
		if err != nil {
			return nil, fmt.Errorf("scale %d tasks / %d nodes / %s: %w", cfg.Tasks, cfg.Nodes, cfg.Policy, err)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// JSON serializes the result for BENCH_scale.json.
func (r *ScaleResult) JSON() []byte {
	b, _ := json.MarshalIndent(r, "", "  ")
	return append(b, '\n')
}

// Render formats the result as an aligned text table.
func (r *ScaleResult) Render() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		sh := p.Shards
		if sh == 0 {
			sh = 1
		}
		rows = append(rows, []string{
			fmt.Sprint(p.Tasks), fmt.Sprint(p.Nodes), fmt.Sprint(sh), p.Policy,
			fmt.Sprintf("%.0f", p.MakespanSec),
			fmt.Sprintf("%.3f", p.WallSec),
			fmt.Sprint(p.Events),
			fmt.Sprintf("%.0f", p.EventsPerSec),
			fmt.Sprintf("%.1f", p.AllocMB),
		})
	}
	return table(
		[]string{"tasks", "nodes", "shards", "policy", "makespan-s", "wall-s", "events", "events/s", "alloc-MB"},
		rows,
	)
}
