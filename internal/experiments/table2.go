package experiments

import (
	"fmt"
	"math/rand"

	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/recipes"
	"hiway/internal/scheduler"
	"hiway/internal/wf"
	"hiway/internal/workloads"
	"hiway/internal/yarn"
)

// pricePerVMHour is the m3.large price the paper assumes for Table 2.
const pricePerVMHour = 0.146

// Table2Options parameterizes the weak-scaling experiment (§4.1, second
// half): SNV calling on EC2 with 1→128 m3.large workers plus two dedicated
// master VMs, the input volume doubled together with the worker count,
// reads obtained from S3 during execution, CRAM-compressed intermediates,
// FCFS scheduling, and one container per worker node.
type Table2Options struct {
	Workers []int // default {1,2,4,8,16,32,64,128}
	Runs    int   // default 3
	Jitter  float64
	Seed    int64
}

func (o *Table2Options) setDefaults() {
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4, 8, 16, 32, 64, 128}
	}
	if o.Runs <= 0 {
		o.Runs = 3
	}
	if o.Jitter == 0 {
		o.Jitter = 0.03
	}
	if o.Seed == 0 {
		o.Seed = 52
	}
}

// Fig6Sample is a resource-utilization snapshot of the three machine roles
// the paper monitors with uptime/iostat/ifstat.
type Fig6Sample struct {
	HadoopCPULoad, HadoopDiskUtil, HadoopNetMBps float64
	AMCPULoad, AMDiskUtil, AMNetMBps             float64
	WorkerCPULoad, WorkerDiskUtil, WorkerNetMBps float64
}

// Table2Row is one column of Table 2 (and one x-position of Figs. 5 and 6).
type Table2Row struct {
	Workers    int
	MasterVMs  int
	DataGB     float64
	AvgMin     float64
	StdMin     float64
	CostPerRun float64
	CostPerGB  float64
	Util       Fig6Sample
}

// Table2Result holds Table 2 / Fig. 5 / Fig. 6.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 runs the weak-scaling experiment.
func Table2(opt Table2Options) (*Table2Result, error) {
	opt.setDefaults()
	res := &Table2Result{}
	for _, workers := range opt.Workers {
		var times []float64
		var dataGB float64
		var util Fig6Sample
		for run := 0; run < opt.Runs; run++ {
			seed := opt.Seed + int64(workers*10+run)
			row, err := table2Run(workers, seed, opt.Jitter)
			if err != nil {
				return nil, fmt.Errorf("table2 @%d workers: %w", workers, err)
			}
			times = append(times, row.minutes)
			dataGB = row.dataGB
			if run == 0 {
				util = row.util
			}
		}
		avg, std := stats(times)
		cost := float64(workers+2) * (avg / 60) * pricePerVMHour
		res.Rows = append(res.Rows, Table2Row{
			Workers:    workers,
			MasterVMs:  2,
			DataGB:     dataGB,
			AvgMin:     avg,
			StdMin:     std,
			CostPerRun: cost,
			CostPerGB:  cost / dataGB,
			Util:       util,
		})
	}
	return res, nil
}

type table2RunResult struct {
	minutes float64
	dataGB  float64
	util    Fig6Sample
}

// table2Run executes one weak-scaling run: workers samples on workers
// nodes. As in the paper (Table 1), the workflow is specified in Cuneiform.
func table2Run(workers int, seed int64, jitter float64) (*table2RunResult, error) {
	cfg := workloads.SNVConfig{
		Samples:  workers,
		External: true, // reads fetched from the 1000-Genomes S3 bucket
		CRAM:     true, // referential compression of intermediates
		RefLocal: true,
	}
	jitterSNVConfig(&cfg, rand.New(rand.NewSource(seed)), jitter)
	driver, inputs, behavior := workloads.SNVCuneiformDriver("snv-scaling", cfg)
	const (
		amNode     = "node-00" // Hi-WAY AM, isolated per §4.1
		hadoopNode = "node-01" // HDFS NameNode + YARN ResourceManager
	)
	master := cluster.M3Large()
	master.MemMB = 2048 // worker containers (7000 MB) cannot land here
	r := &recipes.Recipe{
		Name: fmt.Sprintf("table2-%dworkers", workers),
		Groups: []recipes.NodeGroup{
			{Count: 2, Spec: master},
			{Count: workers, Spec: cluster.M3Large()},
		},
		SwitchMBps:          4000, // EC2 fabric: per-NIC limits dominate
		ExternalPerFlowMBps: 50,
		HDFS: hdfs.Config{
			BlockSizeMB:  256,
			Replication:  3,
			ExcludeNodes: []string{amNode, hadoopNode},
		},
		YARN:   yarn.Config{AMResource: yarn.Resource{VCores: 1, MemMB: 1024}},
		Seed:   seed,
		Inputs: inputs,
	}
	e, err := buildEnv(r, nil)
	if err != nil {
		return nil, err
	}
	am, err := core.Launch(e.Env, driver, scheduler.NewFCFS(), core.Config{
		// A single multithreaded container per worker node (§4.1: tasks
		// required the whole memory of a node).
		ContainerVCores: 2, ContainerMemMB: 7000,
		AMNode:   amNode,
		Behavior: behavior,
	})
	if err != nil {
		return nil, err
	}
	pumpMasterLoad(e, am, hadoopNode, amNode, workers)
	e.eng.Run()
	rep, err := am.Report()
	if err != nil {
		return nil, err
	}
	return &table2RunResult{
		minutes: rep.MakespanSec / 60,
		dataGB:  workloads.TotalInputMB(inputs) / 1024,
		util:    sampleUtilization(e, hadoopNode, amNode),
	}, nil
}

// pumpMasterLoad models the master-side work the simulation does not charge
// organically: the Hadoop masters process one heartbeat per worker per
// second plus block operations per completed task; the Hi-WAY AM spends CPU
// on scheduling decisions and writes provenance for every task. The
// constants are small (fractions of a core) — the experiment's point is
// that master load grows with scale yet stays far below saturation (Fig 6).
func pumpMasterLoad(e *env, am *core.AM, hadoopID, amID string, workers int) {
	const interval = 5.0
	hadoop := e.Cluster.Node(hadoopID)
	amn := e.Cluster.Node(amID)
	lastTasks := 0
	var tick func()
	tick = func() {
		if am.Finished() {
			return
		}
		done := am.CompletedTasks()
		delta := float64(done - lastTasks)
		lastTasks = done
		w := float64(workers)
		// NameNode + ResourceManager: heartbeats and block reports.
		hadoop.CPU.Submit(w*0.0006*interval+delta*0.05, 1, nil)
		hadoop.Disk.Submit(w*0.01*interval+delta*0.3, 0, nil)
		hadoop.NIC.Submit(w*0.02*interval+delta*0.2, 0, nil)
		// Hi-WAY AM: container requests, task selection, provenance.
		amn.CPU.Submit(delta*0.5+w*0.0002*interval, 1, nil)
		amn.Disk.Submit(delta*0.2, 0, nil)
		amn.NIC.Submit(delta*0.5+w*0.005*interval, 0, nil)
		e.eng.Schedule(interval, tick)
	}
	e.eng.Schedule(interval, tick)
}

// sampleUtilization snapshots the three roles' resource meters.
func sampleUtilization(e *env, hadoopID, amID string) Fig6Sample {
	var s Fig6Sample
	var workerCPU, workerDisk, workerNet float64
	workers := 0
	for _, m := range e.Cluster.Metrics() {
		switch m.NodeID {
		case hadoopID:
			s.HadoopCPULoad = m.CPULoad
			s.HadoopDiskUtil = m.DiskUtil
			s.HadoopNetMBps = m.NetMBps
		case amID:
			s.AMCPULoad = m.CPULoad
			s.AMDiskUtil = m.DiskUtil
			s.AMNetMBps = m.NetMBps
		default:
			workerCPU += m.CPULoad
			workerDisk += m.DiskUtil
			workerNet += m.NetMBps
			workers++
		}
	}
	if workers > 0 {
		s.WorkerCPULoad = workerCPU / float64(workers)
		s.WorkerDiskUtil = workerDisk / float64(workers)
		s.WorkerNetMBps = workerNet / float64(workers)
	}
	return s
}

// Render prints Table 2 (the figure 5 series is the AvgMin column).
func (r *Table2Result) Render() string {
	headers := []string{"worker VMs", "master VMs", "data volume", "avg runtime", "std dev", "cost/run", "cost/GB"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprint(row.Workers),
			fmt.Sprint(row.MasterVMs),
			fmt.Sprintf("%.2f GB", row.DataGB),
			fmt.Sprintf("%.2f min", row.AvgMin),
			fmt.Sprintf("%.2f", row.StdMin),
			fmt.Sprintf("$%.2f", row.CostPerRun),
			fmt.Sprintf("$%.2f", row.CostPerGB),
		})
	}
	return "Table 2 / Fig. 5 — SNV weak scaling: doubling workers and input volume together\n" +
		table(headers, rows)
}

// RenderFig6 prints the utilization series.
func (r *Table2Result) RenderFig6() string {
	headers := []string{"workers",
		"hadoop cpu", "hadoop disk", "hadoop net",
		"am cpu", "am disk", "am net",
		"worker cpu", "worker disk", "worker net"}
	var rows [][]string
	for _, row := range r.Rows {
		u := row.Util
		rows = append(rows, []string{
			fmt.Sprint(row.Workers),
			fmt.Sprintf("%.4f", u.HadoopCPULoad), fmt.Sprintf("%.4f", u.HadoopDiskUtil), fmt.Sprintf("%.3f MB/s", u.HadoopNetMBps),
			fmt.Sprintf("%.4f", u.AMCPULoad), fmt.Sprintf("%.4f", u.AMDiskUtil), fmt.Sprintf("%.3f MB/s", u.AMNetMBps),
			fmt.Sprintf("%.2f", u.WorkerCPULoad), fmt.Sprintf("%.3f", u.WorkerDiskUtil), fmt.Sprintf("%.2f MB/s", u.WorkerNetMBps),
		})
	}
	return "Fig. 6 — resource utilization of master and worker roles while scaling\n" +
		"(CPU: uptime-style load; disk: iostat busy fraction; net: ifstat throughput)\n" +
		table(headers, rows)
}

var _ = wf.NextID
