package experiments

import (
	"strings"
	"testing"
)

// The tests assert the *shapes* the paper reports, on scaled-down
// configurations so the suite stays fast; the full-size experiments run in
// cmd/hiway-bench and the benchmarks.

func TestFig4Shape(t *testing.T) {
	res, err := Fig4(Fig4Options{Runs: 1, Containers: []int{72, 144, 576}})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points
	if len(p) != 3 {
		t.Fatalf("points = %d", len(p))
	}
	// Runtime decreases with container count for both systems.
	if !(p[0].HiWayMin > p[1].HiWayMin && p[1].HiWayMin > p[2].HiWayMin) {
		t.Fatalf("Hi-WAY not scaling: %+v", p)
	}
	if !(p[0].TezMin > p[1].TezMin && p[1].TezMin > p[2].TezMin) {
		t.Fatalf("Tez not scaling: %+v", p)
	}
	// Comparable while network is sufficient (within 10% at 72).
	if ratio := p[0].TezMin / p[0].HiWayMin; ratio > 1.10 || ratio < 0.90 {
		t.Fatalf("at 72 containers the systems should be comparable, ratio %.2f", ratio)
	}
	// Hi-WAY scales favorably once the switch saturates (576 containers).
	if p[2].TezMin <= p[2].HiWayMin*1.05 {
		t.Fatalf("Hi-WAY should win at 576 containers: hiway=%.1f tez=%.1f", p[2].HiWayMin, p[2].TezMin)
	}
	// The mechanism: data-aware scheduling reads almost everything locally.
	if p[2].HiWayLocalFrac < 0.8 {
		t.Fatalf("local read fraction = %.2f", p[2].HiWayLocalFrac)
	}
	if !strings.Contains(res.Render(), "576") {
		t.Fatal("render incomplete")
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(Table2Options{Runs: 2, Workers: []int{1, 4, 16}})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Near-linear weak scaling: doubling data and workers keeps the
	// runtime within a tight band (paper: 340–380 min).
	for _, r := range rows {
		if r.AvgMin < 300 || r.AvgMin > 400 {
			t.Fatalf("runtime at %d workers = %.1f min, want ~340-380", r.Workers, r.AvgMin)
		}
	}
	spread := rows[2].AvgMin/rows[0].AvgMin - 1
	if spread > 0.15 || spread < -0.15 {
		t.Fatalf("weak scaling broken: %+v", rows)
	}
	// Data volume doubles with workers.
	if rows[1].DataGB != 4*rows[0].DataGB {
		t.Fatalf("data volume: %+v", rows)
	}
	// Cost per GB falls with scale (paper: $0.31 → $0.10).
	if !(rows[0].CostPerGB > rows[1].CostPerGB && rows[1].CostPerGB > rows[2].CostPerGB) {
		t.Fatalf("cost per GB should fall: %+v", rows)
	}
	if rows[0].CostPerGB < 0.2 || rows[0].CostPerGB > 0.45 {
		t.Fatalf("cost/GB at 1 worker = %.2f, paper reports ~0.31", rows[0].CostPerGB)
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Table2(Table2Options{Runs: 1, Workers: []int{2, 8, 32}})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	// Master load grows with scale...
	if !(rows[0].Util.HadoopCPULoad < rows[1].Util.HadoopCPULoad &&
		rows[1].Util.HadoopCPULoad < rows[2].Util.HadoopCPULoad) {
		t.Fatalf("hadoop master load should grow: %+v", rows)
	}
	if !(rows[0].Util.AMCPULoad < rows[2].Util.AMCPULoad) {
		t.Fatalf("AM load should grow: %+v", rows)
	}
	// ...but stays far below saturation (paper: <5% even at 128 workers).
	for _, r := range rows {
		if r.Util.HadoopCPULoad > 0.1*2 || r.Util.AMCPULoad > 0.1*2 {
			t.Fatalf("master load too high: %+v", r.Util)
		}
	}
	// Workers are pinned near full CPU (paper: load ~2.0 on two cores).
	for _, r := range rows {
		if r.Util.WorkerCPULoad < 1.7 {
			t.Fatalf("worker CPU load = %.2f, want ~2.0", r.Util.WorkerCPULoad)
		}
	}
	// AM and Hadoop master are the same order of magnitude.
	last := rows[len(rows)-1].Util
	if last.AMCPULoad > last.HadoopCPULoad*10 || last.HadoopCPULoad > last.AMCPULoad*10 {
		t.Fatalf("master loads should be same order: %+v", last)
	}
	if !strings.Contains(res.RenderFig6(), "worker cpu") {
		t.Fatal("fig6 render incomplete")
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(Fig8Options{Runs: 1, Sizes: []int{1, 3, 6}})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	// Monotonic speedup with cluster size for both systems.
	if !(rows[0].HiWayMin > rows[1].HiWayMin && rows[1].HiWayMin > rows[2].HiWayMin) {
		t.Fatalf("Hi-WAY not scaling: %+v", rows)
	}
	if !(rows[0].CloudManMin > rows[1].CloudManMin && rows[1].CloudManMin > rows[2].CloudManMin) {
		t.Fatalf("CloudMan not scaling: %+v", rows)
	}
	// Hi-WAY at least 25% faster at every size (the paper's headline).
	for _, r := range rows {
		if r.SpeedupPct < 25 {
			t.Fatalf("Hi-WAY should be ≥25%% faster at %d nodes, got %.0f%%", r.Nodes, r.SpeedupPct)
		}
	}
	if !strings.Contains(res.Render(), "CloudMan") {
		t.Fatal("render incomplete")
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(Fig9Options{Reps: 6, ConsecutiveRuns: 14})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Points
	// Without provenance, static HEFT is worse than dynamic FCFS.
	if pts[0].MedianSec <= res.FCFSMedianSec {
		t.Fatalf("HEFT@0 (%.0fs) should be worse than FCFS (%.0fs)", pts[0].MedianSec, res.FCFSMedianSec)
	}
	// With one prior run HEFT already beats FCFS.
	if pts[1].MedianSec >= res.FCFSMedianSec {
		t.Fatalf("HEFT@1 (%.0fs) should beat FCFS (%.0fs)", pts[1].MedianSec, res.FCFSMedianSec)
	}
	// Once estimates are complete (11 workers seen), runtimes are low and
	// stable: a major reduction of the standard deviation.
	late := pts[len(pts)-1]
	if late.MedianSec >= res.FCFSMedianSec/2 {
		t.Fatalf("converged HEFT (%.0fs) should be far below FCFS (%.0fs)", late.MedianSec, res.FCFSMedianSec)
	}
	early := pts[2]
	if late.StdSec >= early.StdSec {
		t.Fatalf("std dev should collapse: early ±%.0f late ±%.0f", early.StdSec, late.StdSec)
	}
	if !strings.Contains(res.Render(), "FCFS") {
		t.Fatal("render incomplete")
	}
}

func TestTable1Overview(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := RenderTable1()
	for _, want := range []string{"SNV Calling", "Montage", "HEFT", "data-aware", "astronomy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestStatsHelpers(t *testing.T) {
	if m, s := stats([]float64{2, 4, 6}); m != 4 || s <= 0 {
		t.Fatalf("stats = %g %g", m, s)
	}
	if m, _ := stats(nil); m != 0 {
		t.Fatal("empty stats")
	}
	if median([]float64{5, 1, 3}) != 3 {
		t.Fatal("odd median")
	}
	if median([]float64{1, 3, 5, 7}) != 4 {
		t.Fatal("even median")
	}
	if median(nil) != 0 {
		t.Fatal("empty median")
	}
	out := table([]string{"a", "bb"}, [][]string{{"1", "2"}})
	if !strings.Contains(out, "a") || !strings.Contains(out, "--") {
		t.Fatalf("table = %q", out)
	}
}
