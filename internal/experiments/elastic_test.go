package experiments

import (
	"bytes"
	"testing"
)

// TestElasticLoadDeterministic runs the same elastic configuration — reactive
// autoscaling under spot-preemption chaos, the most event-rich cell of the
// ladder — twice and requires identical points and rendered tables: the
// elastic machinery must not leak wall-clock or map-order nondeterminism
// into the measurements.
func TestElasticLoadDeterministic(t *testing.T) {
	cfg := ElasticLoadConfig{
		Seed:        3,
		DurationSec: 600,
		Autoscale:   "reactive",
		SpotRate:    0.3,
	}
	r1, err := ElasticLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ElasticLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := r1.Point, r2.Point
	p1.WallSec, p2.WallSec = 0, 0
	if p1 != p2 {
		t.Fatalf("same-seed elastic runs diverged:\n%+v\n%+v", p1, p2)
	}
	res1 := &ElasticResult{Points: []ElasticPoint{r1.Point}}
	res2 := &ElasticResult{Points: []ElasticPoint{r2.Point}}
	if !bytes.Equal([]byte(res1.Render()), []byte(res2.Render())) {
		t.Fatalf("renders differ:\n%s\n%s", res1.Render(), res2.Render())
	}
}

// TestElasticLoadPolicies smoke-runs every ladder policy on a short window
// and checks the shape of each point: work completes, cost is accounted,
// and each policy exhibits its signature behavior (static never scales,
// elastic policies scale up from the floor, spot chaos preempts containers
// on spot-scaled fleets).
func TestElasticLoadPolicies(t *testing.T) {
	for _, tc := range []struct {
		policy   string
		spotRate float64
	}{
		{"static", 0}, {"reactive", 0}, {"predictive", 0}, {"reactive", 0.3},
	} {
		cfg := ElasticLoadConfig{
			Seed:        1,
			DurationSec: 600,
			Autoscale:   tc.policy,
			SpotRate:    tc.spotRate,
		}
		run, err := ElasticLoad(cfg)
		if err != nil {
			t.Fatalf("%s spot %.2g: %v", tc.policy, tc.spotRate, err)
		}
		p := run.Point
		if p.Succeeded == 0 {
			t.Errorf("%s spot %.2g: no workflow succeeded: %+v", tc.policy, tc.spotRate, p)
		}
		if p.Succeeded+p.Failed != p.Admitted {
			t.Errorf("%s spot %.2g: admitted %d != succeeded %d + failed %d",
				tc.policy, tc.spotRate, p.Admitted, p.Succeeded, p.Failed)
		}
		if p.OnDemandNodeSec <= 0 {
			t.Errorf("%s spot %.2g: no on-demand node-seconds billed: %+v", tc.policy, tc.spotRate, p)
		}
		if tc.policy == "static" {
			if p.ScaleUps != 0 || p.ScaleDowns != 0 || p.Joins != 0 {
				t.Errorf("static policy churned the fleet: %+v", p)
			}
			if p.FinalNodes != cfg.StaticNodes && p.FinalNodes != 10 {
				t.Errorf("static fleet changed size: %+v", p)
			}
		} else if p.ScaleUps == 0 {
			t.Errorf("%s never scaled up under sustained load: %+v", tc.policy, p)
		}
		if tc.spotRate > 0 && p.Notices == 0 {
			t.Errorf("%s spot %.2g: chaos armed but no spot notices: %+v", tc.policy, tc.spotRate, p)
		}
	}
}

// TestElasticSweepConfigs pins the ladder grid: three policies crossed with
// {no chaos, 30% spot chaos}, so the published BENCH_elastic.json always
// carries the six points the goodput-vs-cost comparison needs.
func TestElasticSweepConfigs(t *testing.T) {
	cfgs := ElasticSweepConfigs(false)
	if len(cfgs) != 6 {
		t.Fatalf("expected 6 ladder cells, got %d", len(cfgs))
	}
	seen := map[string]int{}
	for _, c := range cfgs {
		seen[c.Autoscale]++
		if c.SpotRate != 0 && c.SpotRate != 0.3 {
			t.Errorf("unexpected spot rate %g", c.SpotRate)
		}
	}
	for _, pol := range []string{"static", "reactive", "predictive"} {
		if seen[pol] != 2 {
			t.Errorf("policy %s appears %d times, want 2", pol, seen[pol])
		}
	}
	full := ElasticSweepConfigs(true)
	if full[0].DurationSec <= cfgs[0].DurationSec {
		t.Error("full ladder should run a longer arrival window")
	}
}
