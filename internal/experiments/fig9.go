package experiments

import (
	"fmt"
	"math/rand"

	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/provenance"
	"hiway/internal/recipes"
	"hiway/internal/scheduler"
	"hiway/internal/workloads"
	"hiway/internal/yarn"
)

// Fig9Options parameterizes the adaptive-scheduling experiment (§4.3): a
// 0.25° Montage workflow (DAX, parallelism 11) on a virtual cluster of one
// master and eleven m3.large workers with synthetic heterogeneity — one
// unperturbed worker, five taxed with 1/4/16/64/256 CPU-bound stress
// processes, five with 1/4/16/64/256 disk writers. Each repetition runs the
// workflow once under FCFS (the baseline) and twenty times consecutively
// under HEFT with provenance accumulating across runs; provenance is wiped
// between repetitions.
type Fig9Options struct {
	Reps            int     // repetitions; default 80 as in the paper
	ConsecutiveRuns int     // HEFT runs per repetition; default 20
	RuntimeScale    float64 // Montage task scale; default 0.09 (short tasks)
	Jitter          float64 // default 0.12
	Seed            int64
}

func (o *Fig9Options) setDefaults() {
	if o.Reps <= 0 {
		o.Reps = 80
	}
	if o.ConsecutiveRuns <= 0 {
		o.ConsecutiveRuns = 20
	}
	if o.RuntimeScale == 0 {
		o.RuntimeScale = 0.09
	}
	if o.Jitter == 0 {
		o.Jitter = 0.12
	}
	if o.Seed == 0 {
		o.Seed = 74
	}
}

// Fig9Point is one x-position: the distribution of HEFT runtimes given
// priorRuns previous executions' provenance.
type Fig9Point struct {
	PriorRuns int
	MedianSec float64
	StdSec    float64
}

// Fig9Result holds the figure: the FCFS baseline and the HEFT series.
type Fig9Result struct {
	FCFSMedianSec float64
	FCFSStdSec    float64
	Points        []Fig9Point
}

// fig9Workers builds the heterogeneous worker set: the paper's one clean
// node, five CPU-stressed and five I/O-stressed with increasing intensity.
func fig9Workers() []recipes.NodeGroup {
	master := cluster.M3Large()
	master.MemMB = 2048 // no task containers on the master
	groups := []recipes.NodeGroup{{Count: 1, Spec: master}}
	clean := cluster.M3Large()
	groups = append(groups, recipes.NodeGroup{Count: 1, Spec: clean})
	for _, hogs := range []int{1, 4, 16, 64, 256} {
		s := cluster.M3Large()
		s.CPUHogs = hogs
		groups = append(groups, recipes.NodeGroup{Count: 1, Spec: s})
	}
	for _, hogs := range []int{1, 4, 16, 64, 256} {
		s := cluster.M3Large()
		s.IOHogs = hogs
		groups = append(groups, recipes.NodeGroup{Count: 1, Spec: s})
	}
	return groups
}

// fig9Run executes the Montage workflow once with the given policy and a
// provenance store (which may carry earlier runs' events).
func fig9Run(policy string, store provenance.Store, seed int64, scale, jitter float64) (float64, error) {
	driver, inputs := workloads.Montage(workloads.MontageConfig{Degree: 0.25, RuntimeScale: scale})
	r := &recipes.Recipe{
		Name:       "fig9",
		Groups:     fig9Workers(),
		SwitchMBps: 2000,
		HDFS: hdfs.Config{
			BlockSizeMB:  512,
			Replication:  3,
			ExcludeNodes: []string{"node-00"},
		},
		YARN:   yarn.Config{AMResource: yarn.Resource{VCores: 1, MemMB: 1024}},
		Seed:   seed,
		Inputs: inputs,
	}
	e, err := buildEnv(r, store)
	if err != nil {
		return 0, err
	}
	if _, err := driver.Parse(); err != nil {
		return 0, err
	}
	jitterTasks(driver, rand.New(rand.NewSource(seed)), jitter)

	var sched scheduler.Scheduler
	switch policy {
	case scheduler.PolicyHEFT:
		sched = scheduler.NewHEFTSeeded(e.Prov, seed)
	default:
		sched = scheduler.NewFCFS()
	}
	rep, err := core.Run(e.Env, reparse(driver), sched, core.Config{
		// One task per worker at a time: a two-vcore container fills an
		// m3.large, matching HEFT's one-task-per-node model.
		ContainerVCores: 2, ContainerMemMB: 7000,
		AMNode: "node-00",
	})
	if err != nil {
		return 0, err
	}
	return rep.MakespanSec, nil
}

// Fig9 runs the experiment.
func Fig9(opt Fig9Options) (*Fig9Result, error) {
	opt.setDefaults()
	var fcfs []float64
	heft := make([][]float64, opt.ConsecutiveRuns)
	for rep := 0; rep < opt.Reps; rep++ {
		base := opt.Seed + int64(rep)*1000

		// Baseline: one FCFS execution (its own provenance, discarded).
		t, err := fig9Run(scheduler.PolicyFCFS, provenance.NewMemStore(), base, opt.RuntimeScale, opt.Jitter)
		if err != nil {
			return nil, fmt.Errorf("fig9: fcfs rep %d: %w", rep, err)
		}
		fcfs = append(fcfs, t)

		// Twenty consecutive HEFT executions sharing one provenance
		// store: run i is planned with i prior runs' estimates.
		store := provenance.NewMemStore()
		for i := 0; i < opt.ConsecutiveRuns; i++ {
			t, err := fig9Run(scheduler.PolicyHEFT, store, base+int64(i)+1, opt.RuntimeScale, opt.Jitter)
			if err != nil {
				return nil, fmt.Errorf("fig9: heft rep %d run %d: %w", rep, i, err)
			}
			heft[i] = append(heft[i], t)
		}
	}
	res := &Fig9Result{}
	res.FCFSMedianSec = median(fcfs)
	_, res.FCFSStdSec = stats(fcfs)
	for i, series := range heft {
		_, std := stats(series)
		res.Points = append(res.Points, Fig9Point{
			PriorRuns: i,
			MedianSec: median(series),
			StdSec:    std,
		})
	}
	return res, nil
}

// Render prints the figure as a text table.
func (r *Fig9Result) Render() string {
	headers := []string{"prior runs", "HEFT median (s)", "±std"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprint(p.PriorRuns),
			fmt.Sprintf("%.1f", p.MedianSec),
			fmt.Sprintf("%.1f", p.StdSec),
		})
	}
	return fmt.Sprintf("Fig. 9 — Montage on a heterogeneous cluster: HEFT with growing provenance\n"+
		"FCFS (greedy) baseline: median %.1f s (±%.1f)\n%s",
		r.FCFSMedianSec, r.FCFSStdSec, table(headers, rows))
}
