package experiments

import (
	"fmt"
	"math/rand"

	"hiway/internal/baseline/tez"
	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/recipes"
	"hiway/internal/scheduler"
	"hiway/internal/wf"
	"hiway/internal/workloads"
)

// Fig4Options parameterizes the first scalability experiment (§4.1): the
// SNV-calling workflow on a 24-node local cluster (two Xeon E5-2620 per
// node, one shared gigabit switch), Hi-WAY with data-aware scheduling vs a
// Tez-like DAG engine, with 72–576 one-core containers.
type Fig4Options struct {
	Containers []int   // default {72, 144, 288, 576}
	Runs       int     // repetitions per point; default 3
	Samples    int     // genomic samples; default 18
	Nodes      int     // cluster size; default 24
	SwitchMBps float64 // default 400 (oversubscribed 1 GbE switch)
	Jitter     float64 // CPU-time spread per run; default 0.04
	Seed       int64
}

func (o *Fig4Options) setDefaults() {
	if len(o.Containers) == 0 {
		o.Containers = []int{72, 144, 288, 576}
	}
	if o.Runs <= 0 {
		o.Runs = 3
	}
	if o.Samples <= 0 {
		o.Samples = 24
	}
	if o.Nodes <= 0 {
		o.Nodes = 24
	}
	if o.SwitchMBps <= 0 {
		o.SwitchMBps = 400
	}
	if o.Jitter == 0 {
		o.Jitter = 0.04
	}
	if o.Seed == 0 {
		o.Seed = 41
	}
}

// Fig4Point is one x-position of Fig. 4 (means ± std over the runs).
type Fig4Point struct {
	Containers         int
	HiWayMin, HiWayStd float64
	TezMin, TezStd     float64
	HiWayLocalFrac     float64 // mean local-read fraction of alignments (diagnostic)
}

// Fig4Result holds the whole figure.
type Fig4Result struct {
	Points []Fig4Point
}

// Fig4 runs the experiment.
func Fig4(opt Fig4Options) (*Fig4Result, error) {
	opt.setDefaults()
	res := &Fig4Result{}
	for _, containers := range opt.Containers {
		perNode := containers / opt.Nodes
		if perNode < 1 {
			perNode = 1
		}
		var hiwayT, tezT, localFracs []float64
		for run := 0; run < opt.Runs; run++ {
			seed := opt.Seed + int64(containers*100+run)

			// Hi-WAY executes the workflow from Cuneiform source, as the
			// paper did ("we implemented this workflow in both Cuneiform
			// and Tez"): the per-region calls are discovered dynamically
			// when each sample's sort/scatter resolves.
			cfg := fig4WorkloadConfig(opt)
			jitterSNVConfig(&cfg, rand.New(rand.NewSource(seed)), opt.Jitter)
			driver, inputs, behavior := workloads.SNVCuneiformDriver("snv-fig4", cfg)
			r := fig4Recipe(opt, perNode, seed)
			r.Inputs = inputs
			e, err := buildEnv(r, nil)
			if err != nil {
				return nil, err
			}
			rep, err := core.Run(e.Env, driver, scheduler.NewDataAware(e.FS), core.Config{
				ContainerVCores: 1, ContainerMemMB: 1024,
				Behavior: behavior,
			})
			if err != nil {
				return nil, fmt.Errorf("fig4: hiway @%d containers: %w", containers, err)
			}
			hiwayT = append(hiwayT, rep.MakespanSec/60)
			localFracs = append(localFracs, localReadFraction(rep, e.FS))

			e2, driver2, err := fig4Setup(opt, perNode, seed)
			if err != nil {
				return nil, err
			}
			rep2, err := tez.Run(e2.Env, driver2, tez.Config{
				Containers: containers, ContainerVCores: 1, ContainerMemMB: 1024,
			})
			if err != nil {
				return nil, fmt.Errorf("fig4: tez @%d containers: %w", containers, err)
			}
			tezT = append(tezT, rep2.MakespanSec/60)
		}
		hm, hs := stats(hiwayT)
		tm, ts := stats(tezT)
		lf, _ := stats(localFracs)
		res.Points = append(res.Points, Fig4Point{
			Containers: containers,
			HiWayMin:   hm, HiWayStd: hs,
			TezMin: tm, TezStd: ts,
			HiWayLocalFrac: lf,
		})
	}
	return res, nil
}

// fig4WorkloadConfig is the shared workload shape: finer-grained than the
// weak-scaling experiment — 24 read files per sample and chromosome-split
// variant calling — so the critical path stays short enough for 576-way
// parallelism.
func fig4WorkloadConfig(opt Fig4Options) workloads.SNVConfig {
	return workloads.SNVConfig{
		Samples:            opt.Samples,
		FilesPerSample:     24,
		FileSizeMB:         340,
		CallSplitRegions:   16,
		AlignCPUSeconds:    600,
		SortCPUSeconds:     400,
		CallCPUSeconds:     800,
		AnnotateCPUSeconds: 600,
		RefLocal:           true, // reference data installed on all nodes (§3.6)
	}
}

// jitterSNVConfig perturbs the per-tool CPU demands — the Cuneiform path
// jitters the workload definition, since task attributes live in the
// source text.
func jitterSNVConfig(cfg *workloads.SNVConfig, rng *rand.Rand, spread float64) {
	cfg.ApplyDefaults() // jitter the effective values, not the zero ones
	if spread <= 0 {
		return
	}
	j := func(v float64) float64 { return v * (1 + (rng.Float64()*2-1)*spread) }
	cfg.AlignCPUSeconds = j(cfg.AlignCPUSeconds)
	cfg.SortCPUSeconds = j(cfg.SortCPUSeconds)
	cfg.CallCPUSeconds = j(cfg.CallCPUSeconds)
	cfg.AnnotateCPUSeconds = j(cfg.AnnotateCPUSeconds)
}

// fig4Setup materializes the cluster, stages the SNV inputs into HDFS, and
// generates a fresh jittered static workflow (the Tez arm's native
// implementation).
func fig4Setup(opt Fig4Options, perNode int, seed int64) (*env, wf.StaticDriver, error) {
	driver, inputs := workloads.SNV(fig4WorkloadConfig(opt))
	r := fig4Recipe(opt, perNode, seed)
	r.Inputs = inputs
	e, err := buildEnv(r, nil)
	if err != nil {
		return nil, nil, err
	}
	if _, err := driver.Parse(); err != nil {
		return nil, nil, err
	}
	jitterTasks(driver, rand.New(rand.NewSource(seed)), opt.Jitter)
	// Re-wrap: core.Run parses again, so hand it a pre-built base with the
	// same (jittered) graph.
	return e, reparse(driver), nil
}

// reparse wraps an already-parsed static driver so the engine's own Parse
// call returns the same task graph (jitter applied once, upfront).
func reparse(d wf.StaticDriver) wf.StaticDriver {
	g := d.Graph()
	sb := &wf.StaticBase{WFName: d.Name()}
	sb.Build = func() ([]*wf.Task, []string, []wf.Edge, error) {
		var edges []wf.Edge
		for _, t := range g.All() {
			for _, p := range g.Predecessors(t) {
				edges = append(edges, wf.Edge{Parent: p.ID, Child: t.ID})
			}
		}
		return g.All(), g.InitialInputs(), edges, nil
	}
	return sb
}

// localReadFraction averages, over alignment tasks, the fraction of input
// data that was local to the executing node — the mechanism behind
// Hi-WAY's advantage under a constrained switch.
func localReadFraction(rep *core.Report, fs *hdfs.FS) float64 {
	var frac float64
	n := 0
	for _, r := range rep.Results {
		// The Cuneiform source names the alignment task "align"; the
		// static generator uses the tool name "bowtie2".
		if r.Task.Name != "bowtie2" && r.Task.Name != "align" {
			continue
		}
		frac += fs.LocalFraction(r.Task.Inputs, r.Node)
		n++
	}
	if n == 0 {
		return 0
	}
	return frac / float64(n)
}

// fig4Recipe describes the experiment's infrastructure: YARN capacity is
// sized to expose exactly perNode one-core containers per node (the
// physical CPU capacity follows, since every container is single-threaded).
func fig4Recipe(opt Fig4Options, perNode int, seed int64) *recipes.Recipe {
	spec := cluster.XeonE52620()
	spec.VCores = perNode
	spec.MemMB = perNode*1024 + 1024 // headroom for the AM container
	return &recipes.Recipe{
		Name:       fmt.Sprintf("fig4-%dx%d", opt.Nodes, perNode),
		Groups:     []recipes.NodeGroup{{Count: opt.Nodes, Spec: spec}},
		SwitchMBps: opt.SwitchMBps,
		// One block per read file: the data-aware scheduler reasons about
		// whole-file locality, as Hi-WAY does.
		HDFS: hdfs.Config{BlockSizeMB: 1024, Replication: 2},
		YARN: amConfig(),
		Seed: seed,
	}
}

// Render prints the figure as a text table.
func (r *Fig4Result) Render() string {
	headers := []string{"containers", "Hi-WAY (min)", "±std", "Tez (min)", "±std", "local reads"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprint(p.Containers),
			fmt.Sprintf("%.1f", p.HiWayMin), fmt.Sprintf("%.1f", p.HiWayStd),
			fmt.Sprintf("%.1f", p.TezMin), fmt.Sprintf("%.1f", p.TezStd),
			fmt.Sprintf("%.0f%%", p.HiWayLocalFrac*100),
		})
	}
	return "Fig. 4 — SNV calling, mean runtime vs container count (3 runs, log-log in the paper)\n" +
		table(headers, rows)
}
