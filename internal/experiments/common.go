// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the simulated substrate:
//
//	Table 1 — overview of the conducted experiments;
//	Fig. 4  — SNV calling, Hi-WAY vs Tez, 24-node cluster, 72–576 containers;
//	Table 2 / Fig. 5 — SNV weak scaling, 1–128 workers, 8 GB–1 TB;
//	Fig. 6  — master/worker resource utilization while scaling;
//	Fig. 8  — RNA-seq TRAPLINE, Hi-WAY vs Galaxy CloudMan, 1–6 nodes;
//	Fig. 9  — Montage, HEFT vs FCFS with growing provenance.
//
// Absolute numbers need not match the paper (the substrate is a simulator,
// not the authors' testbed); the shapes — who wins, by what factor, where
// crossovers fall — are the reproduction target and are asserted by this
// package's tests.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/provenance"
	"hiway/internal/recipes"
	"hiway/internal/sim"
	"hiway/internal/wf"
	"hiway/internal/yarn"
)

// env bundles one materialized infrastructure.
type env struct {
	eng *sim.Engine
	core.Env
}

// buildEnv materializes a recipe, optionally replacing the provenance store.
func buildEnv(r *recipes.Recipe, store provenance.Store) (*env, error) {
	eng, ce, err := r.Materialize()
	if err != nil {
		return nil, err
	}
	if store != nil {
		mgr, err := provenance.NewManager(store)
		if err != nil {
			return nil, err
		}
		ce.Prov = mgr
	}
	return &env{eng: eng, Env: ce}, nil
}

// jitterTasks multiplies each task's CPU demand by a random factor around
// 1.0 — the stand-in for run-to-run variance on real hardware (the paper
// reports standard deviations across repeated runs).
func jitterTasks(d wf.StaticDriver, rng *rand.Rand, spread float64) {
	if spread <= 0 {
		return
	}
	for _, t := range d.Graph().All() {
		f := 1 + (rng.Float64()*2-1)*spread
		t.CPUSeconds *= f
	}
}

// stats computes mean and standard deviation.
func stats(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// median returns the middle value (mean of the middle two for even sizes).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// table renders rows as an aligned text table.
func table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// masterSpec is the small master node that hosts Hadoop's and Hi-WAY's
// master processes: worker containers deliberately do not fit in its
// memory, so task containers land on workers only.
func masterSpec(base cluster.NodeSpec, memMB int) cluster.NodeSpec {
	s := base
	s.MemMB = memMB
	return s
}

// amOnly is a YARN config whose AM container exactly fills the master
// node's free memory headroom used by the experiments.
func amConfig() yarn.Config {
	return yarn.Config{AMResource: yarn.Resource{VCores: 1, MemMB: 1024}}
}

// fsOf returns the env's filesystem (convenience for oracle wiring).
func (e *env) fs() *hdfs.FS { return e.FS }
