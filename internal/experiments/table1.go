package experiments

// Table1Row is one row of the experiment overview (paper Table 1).
type Table1Row struct {
	Workflow       string
	Domain         string
	Language       string
	Scheduler      string
	Infrastructure string
	Runs           string
	Evaluation     string
	Section        string
}

// Table1 returns the overview of conducted experiments.
func Table1() []Table1Row {
	return []Table1Row{
		{
			Workflow: "SNV Calling", Domain: "genomics", Language: "Cuneiform",
			Scheduler: "data-aware", Infrastructure: "24 Xeon E5-2620",
			Runs: "3", Evaluation: "performance, scalability", Section: "4.1",
		},
		{
			Workflow: "SNV Calling", Domain: "genomics", Language: "Cuneiform",
			Scheduler: "FCFS", Infrastructure: "128 EC2 m3.large",
			Runs: "3", Evaluation: "scalability", Section: "4.1",
		},
		{
			Workflow: "RNA-seq", Domain: "bioinformatics", Language: "Galaxy",
			Scheduler: "data-aware", Infrastructure: "6 EC2 c3.2xlarge",
			Runs: "5", Evaluation: "performance", Section: "4.2",
		},
		{
			Workflow: "Montage", Domain: "astronomy", Language: "DAX",
			Scheduler: "HEFT", Infrastructure: "8 EC2 m3.large",
			Runs: "80", Evaluation: "adaptive scheduling", Section: "4.3",
		},
	}
}

// RenderTable1 prints the overview.
func RenderTable1() string {
	headers := []string{"workflow", "domain", "language", "scheduler", "infrastructure", "runs", "evaluation", "section"}
	var rows [][]string
	for _, r := range Table1() {
		rows = append(rows, []string{
			r.Workflow, r.Domain, r.Language, r.Scheduler,
			r.Infrastructure, r.Runs, r.Evaluation, r.Section,
		})
	}
	return "Table 1 — overview of conducted experiments\n" + table(headers, rows)
}
