package experiments

import "testing"

func TestSchedulerAblation(t *testing.T) {
	rows, err := SchedulerAblation(3, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]SchedulerAblationRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	fcfs, heft, adaptive := byPolicy["fcfs"], byPolicy["heft"], byPolicy["adaptive"]
	// With warm provenance, both adaptive policies beat FCFS on the
	// heterogeneous cluster.
	if heft.MedianSec >= fcfs.MedianSec {
		t.Fatalf("warm HEFT (%.0fs) should beat FCFS (%.0fs)", heft.MedianSec, fcfs.MedianSec)
	}
	if adaptive.MedianSec >= fcfs.MedianSec {
		t.Fatalf("adaptive-greedy (%.0fs) should beat FCFS (%.0fs)", adaptive.MedianSec, fcfs.MedianSec)
	}
}

func TestReplicationAblation(t *testing.T) {
	rows, err := ReplicationAblation(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Locality is high at every factor (data-aware picks replica holders);
	// with a single replica there is exactly one eligible node per file,
	// so queueing delays rise — replication buys scheduling freedom.
	for _, r := range rows {
		if r.LocalFrac < 0.85 {
			t.Fatalf("replication %d: local fraction %.2f", r.Replication, r.LocalFrac)
		}
	}
}

func TestEstimateAblation(t *testing.T) {
	res, err := EstimateAblation(3, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ZeroDefaultMedianSec) != 8 || len(res.MeanFallbackMedianSec) != 8 {
		t.Fatalf("series lengths: %d %d", len(res.ZeroDefaultMedianSec), len(res.MeanFallbackMedianSec))
	}
	// Mean-fallback stops exploring after the first run, so its runtimes
	// settle immediately; zero-default pays exploration spikes early on.
	zeroEarly := res.ZeroDefaultMedianSec[2]
	meanEarly := res.MeanFallbackMedianSec[2]
	if meanEarly >= zeroEarly {
		t.Fatalf("mean-fallback (%.0fs) should be calmer than exploring zero-default (%.0fs) early on",
			meanEarly, zeroEarly)
	}
	// Both end well below their starting point.
	if last := res.ZeroDefaultMedianSec[7]; last >= res.ZeroDefaultMedianSec[0] {
		t.Fatalf("zero-default did not improve: %v", res.ZeroDefaultMedianSec)
	}
}

func TestMultiAMAblation(t *testing.T) {
	res, err := MultiAMAblation(3, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Running the workflows concurrently (one AM each) on a cluster big
	// enough for all of them is far faster than serializing them.
	if res.ConcurrentMin >= res.SerialMin*0.7 {
		t.Fatalf("concurrent %0.1f min vs serial %0.1f min", res.ConcurrentMin, res.SerialMin)
	}
}

func TestContainerSizingAblation(t *testing.T) {
	res, err := ContainerSizingAblation(17)
	if err != nil {
		t.Fatal(err)
	}
	// Task-tailored containers (§5 future work) pack the many small tasks
	// densely; uniform largest-task containers under-utilize memory.
	if res.TailoredMin >= res.UniformMin {
		t.Fatalf("tailored %0.1f min should beat uniform %0.1f min", res.TailoredMin, res.UniformMin)
	}
}

func TestFaultToleranceAblation(t *testing.T) {
	rows, err := FaultToleranceAblation(2, 29)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 { // 3 policies x 3 rates x 2 speculation modes
		t.Fatalf("rows = %d", len(rows))
	}
	base := map[string]float64{}
	for _, r := range rows {
		if r.Failed == 2 {
			t.Fatalf("every run failed in cell %+v", r)
		}
		if r.CrashRate == 0 {
			if r.Retries != 0 || r.TimedOut != 0 || r.Speculative != 0 {
				t.Fatalf("fault accounting nonzero without faults: %+v", r)
			}
			base[r.Policy] = r.MedianSec
		}
	}
	for _, r := range rows {
		if r.CrashRate == 0.25 && r.Failed == 0 && r.MedianSec <= base[r.Policy] {
			t.Fatalf("faults at rate 0.25 did not cost makespan for %s: %.1f <= %.1f",
				r.Policy, r.MedianSec, base[r.Policy])
		}
	}
}
