package experiments

import (
	"fmt"

	"hiway/internal/chaos"
	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/provenance"
	"hiway/internal/recipes"
	"hiway/internal/scheduler"
	"hiway/internal/workloads"
)

// ---------------------------------------------------------------------------
// Ablation 6: fault tolerance — makespan vs injected failure rate across
// scheduling policies, with and without speculative re-execution. The chaos
// plan crashes attempts at the given rate and hangs a fraction of them;
// hangs are recovered by the attempt deadline (kill-and-retry) or, when
// speculation is on, raced by a duplicate on another node.

// FaultToleranceRow is one (policy, failure rate, speculation) cell.
type FaultToleranceRow struct {
	Policy      string
	CrashRate   float64
	Speculate   bool
	MedianSec   float64 // median makespan of the successful runs
	Retries     float64 // mean retries per run
	TimedOut    float64 // mean attempts past their deadline per run
	Speculative float64 // mean duplicate attempts per run
	Failed      int     // runs that exhausted retries (excluded from median)
}

// FaultToleranceAblation sweeps failure rates over FCFS, data-aware, and
// HEFT, each with speculation off and on.
func FaultToleranceAblation(reps int, seed int64) ([]FaultToleranceRow, error) {
	if reps <= 0 {
		reps = 3
	}
	if seed == 0 {
		seed = 29
	}
	policies := []string{scheduler.PolicyFCFS, scheduler.PolicyDataAware, scheduler.PolicyHEFT}
	rates := []float64{0, 0.1, 0.25}

	var rows []FaultToleranceRow
	run := 0
	for _, policy := range policies {
		for _, rate := range rates {
			for _, speculate := range []bool{false, true} {
				row := FaultToleranceRow{Policy: policy, CrashRate: rate, Speculate: speculate}
				var spans []float64
				for i := 0; i < reps; i++ {
					run++
					rep, err := faultToleranceRun(policy, rate, speculate, seed+int64(run))
					if err != nil {
						return nil, err
					}
					if !rep.Succeeded {
						row.Failed++
						continue
					}
					spans = append(spans, rep.MakespanSec)
					row.Retries += float64(rep.Retries)
					row.TimedOut += float64(rep.TimedOut)
					row.Speculative += float64(rep.Speculative)
				}
				if n := reps - row.Failed; n > 0 {
					row.MedianSec = median(spans)
					row.Retries /= float64(n)
					row.TimedOut /= float64(n)
					row.Speculative /= float64(n)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// faultToleranceRun executes one SNV workflow under one chaos plan.
func faultToleranceRun(policy string, crashRate float64, speculate bool, seed int64) (*core.Report, error) {
	driver, inputs := workloads.SNV(workloads.SNVConfig{
		Samples: 2, FilesPerSample: 4, FileSizeMB: 64,
		AlignCPUSeconds: 60, SortCPUSeconds: 30, CallCPUSeconds: 60, AnnotateCPUSeconds: 20,
		RefLocal: true,
	})
	e, err := buildEnv(&recipes.Recipe{
		Name:       "ablation-faults",
		Groups:     []recipes.NodeGroup{{Count: 6, Spec: cluster.M3Large()}},
		SwitchMBps: 2000,
		HDFS:       hdfs.Config{BlockSizeMB: 512, Replication: 2},
		YARN:       amConfig(),
		Seed:       seed,
		Inputs:     inputs,
	}, provenance.NewMemStore())
	if err != nil {
		return nil, err
	}
	sched, err := scheduler.New(policy, scheduler.Deps{Locality: e.FS, Estimator: e.Prov})
	if err != nil {
		return nil, err
	}
	// A fifth of the failure budget hangs instead of crashing: hangs are
	// the expensive case (only the deadline recovers them) and the one
	// speculation addresses.
	plan := chaos.NewPlan(seed).WithCrashRate(crashRate).WithHangRate(crashRate / 5)
	cfg := core.Config{
		ContainerVCores: 2, ContainerMemMB: 4096,
		Chaos:               plan,
		Health:              scheduler.NewNodeHealthTracker(e.eng.Now, 3, 60),
		TaskTimeoutFloorSec: 90,
		TimeoutSlack:        3,
		Speculate:           speculate,
	}
	rep, err := core.Run(e.Env, driver, sched, cfg)
	if err != nil && rep == nil {
		return nil, err
	}
	return rep, nil
}

// RenderFaultToleranceAblation formats the rows.
func RenderFaultToleranceAblation(rows []FaultToleranceRow) string {
	hdr := []string{"policy", "crash rate", "speculate", "median (s)", "retries", "timed out", "speculative", "failed runs"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Policy,
			fmt.Sprintf("%.2f", r.CrashRate),
			fmt.Sprintf("%v", r.Speculate),
			fmt.Sprintf("%.1f", r.MedianSec),
			fmt.Sprintf("%.1f", r.Retries),
			fmt.Sprintf("%.1f", r.TimedOut),
			fmt.Sprintf("%.1f", r.Speculative),
			fmt.Sprintf("%d", r.Failed),
		})
	}
	return table(hdr, body)
}
