package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"hiway/internal/autoscale"
	"hiway/internal/chaos"
	"hiway/internal/hdfs"
	"hiway/internal/obs"
	"hiway/internal/recipes"
	"hiway/internal/scheduler"
	"hiway/internal/service"
	"hiway/internal/yarn"
)

// ElasticLoadConfig describes one elastic service run: the standard tenant
// mix submitting into a cluster whose size is governed by an autoscaling
// policy, optionally under spot-preemption chaos.
type ElasticLoadConfig struct {
	Seed        int64
	DurationSec float64 // arrival window; default 1800
	RateX       float64 // arrival-rate multiplier; default 1

	// Autoscale names the sizing policy: "static", "reactive", or
	// "predictive". Default static.
	Autoscale string
	// StaticNodes is the static policy's fixed (over-provisioned) size.
	// Default 10.
	StaticNodes int
	// MinNodes and MaxNodes clamp the elastic policies; the cluster starts
	// at MinNodes. Defaults 2 and 12.
	MinNodes int
	MaxNodes int

	// SpotRate, when positive, arms spot-preemption chaos: each spot node
	// draws reclamation with this probability every SpotEverySec during the
	// arrival window, with SpotNoticeSec between notice and reclaim.
	SpotRate      float64
	SpotNoticeSec float64 // default 120
	SpotEverySec  float64 // default 60

	// TaskCPUSeconds sets every task's CPU demand. The elastic ladder
	// defaults to 180s — longer than the 120s spot notice, so reclaims
	// catch containers mid-task and the preemption path is actually
	// measured rather than dodged by short tasks.
	TaskCPUSeconds float64

	MaxConcurrent int     // admitted-AM cap; default 4
	MaxQueue      int     // backpressure threshold; default 16
	RetryAfterSec float64 // client retry delay after rejection; default 30
	RetryLimit    int     // client retries before dropping; default 1
	Policy        string  // per-workflow scheduling policy; default fcfs

	WithObs bool // build the observability layer (metrics snapshot)
}

func (c *ElasticLoadConfig) setDefaults() {
	if c.DurationSec <= 0 {
		c.DurationSec = 1800
	}
	if c.RateX <= 0 {
		c.RateX = 1
	}
	if c.Autoscale == "" {
		c.Autoscale = "static"
	}
	if c.StaticNodes <= 0 {
		c.StaticNodes = 10
	}
	if c.MinNodes <= 0 {
		c.MinNodes = 2
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 12
	}
	if c.SpotNoticeSec <= 0 {
		c.SpotNoticeSec = 120
	}
	if c.SpotEverySec <= 0 {
		c.SpotEverySec = 60
	}
	if c.TaskCPUSeconds <= 0 {
		c.TaskCPUSeconds = 180
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.Policy == "" {
		c.Policy = scheduler.PolicyFCFS
	}
}

// initialNodes is the cluster size at t=0: the static policy starts (and
// stays) at its fixed size, elastic policies start at the floor.
func (c *ElasticLoadConfig) initialNodes() int {
	if c.Autoscale == "static" {
		return c.StaticNodes
	}
	return c.MinNodes
}

// ElasticPoint is one elastic-ladder measurement: goodput and tail latency
// against the cost the policy paid for them.
type ElasticPoint struct {
	Autoscale   string  `json:"autoscale"`
	RateX       float64 `json:"rateX"`
	DurationSec float64 `json:"durationSec"`
	SpotRate    float64 `json:"spotRate"`
	MinNodes    int     `json:"minNodes"`
	MaxNodes    int     `json:"maxNodes"`

	Submitted int `json:"submitted"`
	Admitted  int `json:"admitted"`
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`
	Dropped   int `json:"dropped"`

	GoodputPerHour  float64 `json:"goodputPerHour"`
	QueueWaitP99Sec float64 `json:"queueWaitP99Sec"`
	E2EP99Sec       float64 `json:"e2eP99Sec"`

	// Cost: node-seconds billed per class and the blended price
	// (on-demand 1.0, spot autoscale.SpotPrice).
	OnDemandNodeSec float64 `json:"onDemandNodeSec"`
	SpotNodeSec     float64 `json:"spotNodeSec"`
	CostUnits       float64 `json:"costUnits"`

	// Churn accounting.
	Preempted  int `json:"preempted"`
	Joins      int `json:"joins"`
	Leaves     int `json:"leaves"`
	Notices    int `json:"notices"`
	ScaleUps   int `json:"scaleUps"`
	ScaleDowns int `json:"scaleDowns"`
	Flaps      int `json:"flaps"`
	FinalNodes int `json:"finalNodes"`

	WallSec float64 `json:"wallSec"`
}

// ElasticRun bundles one elastic run's outputs.
type ElasticRun struct {
	Point    ElasticPoint
	Stats    *service.Stats
	Accounts []*service.Account
	Obs      *obs.Obs
}

// ElasticLoad materializes the starting cluster, wires the autoscaler and
// (optionally) spot-preemption chaos, runs one sustained open-loop load
// until the service drains, and measures goodput, tail wait, and cost.
// Everything derives from the seed and virtual time, so same-seed runs are
// byte-identical.
func ElasticLoad(cfg ElasticLoadConfig) (*ElasticRun, error) {
	cfg.setDefaults()
	mix := ServiceTenantMix(cfg.RateX)
	for i := range mix {
		mix[i].Workload.CPUSeconds = cfg.TaskCPUSeconds
	}
	r := &recipes.Recipe{
		Name:       "elastic-load",
		Groups:     []recipes.NodeGroup{{Count: cfg.initialNodes(), Spec: svcNodeSpec()}},
		SwitchMBps: 100 * float64(cfg.MaxNodes),
		HDFS:       hdfs.Config{},
		YARN: yarn.Config{
			Fair:       true,
			AMResource: yarn.Resource{VCores: 0, MemMB: 256},
			Tenants:    service.TenantPolicies(mix),
		},
		Seed: cfg.Seed,
	}
	e, err := buildEnv(r, nil)
	if err != nil {
		return nil, err
	}
	var o *obs.Obs
	if cfg.WithObs {
		o = obs.New(e.eng.Now)
		e.Env.Obs = o
		e.RM.SetObs(o)
		e.Prov.SetObs(o)
	}
	svcCfg := service.Config{
		Seed:          cfg.Seed,
		DurationSec:   cfg.DurationSec,
		MaxConcurrent: cfg.MaxConcurrent,
		MaxQueue:      cfg.MaxQueue,
		RetryAfterSec: cfg.RetryAfterSec,
		RetryLimit:    cfg.RetryLimit,
		Policy:        cfg.Policy,
		AMNode:        "node-00", // AMs stay on the protected node
	}
	svc, err := service.New(e.eng, e.Env, svcCfg, mix)
	if err != nil {
		return nil, err
	}

	mgr := autoscale.NewManager(e.eng, e.Cluster, e.RM, e.FS, autoscale.ManagerConfig{
		Spec:          svcNodeSpec(),
		SpotNoticeSec: cfg.SpotNoticeSec,
		Protected:     []string{"node-00"},
		Rereplicate:   true,
	})
	if cfg.WithObs {
		mgr.SetObs(o)
	}
	pol := autoscale.NewPolicy(cfg.Autoscale, cfg.StaticNodes)
	if pol == nil {
		return nil, fmt.Errorf("elastic load: unknown autoscale policy %q", cfg.Autoscale)
	}
	minNodes, maxNodes := cfg.MinNodes, cfg.MaxNodes
	if cfg.Autoscale == "static" {
		minNodes, maxNodes = cfg.StaticNodes, cfg.StaticNodes
	}
	ctl := autoscale.NewController(e.eng, mgr, pol, func() autoscale.Signals {
		return autoscale.Signals{
			QueueDepth:      svc.QueueDepth(),
			Running:         svc.Running(),
			PendingRequests: e.RM.QueuedRequests(),
			AllocLatencySec: e.RM.AllocLatencyEWMA(),
		}
	}, autoscale.ControllerConfig{
		MinNodes:     minNodes,
		MaxNodes:     maxNodes,
		SpotScaleOut: true,
		HorizonSec:   cfg.DurationSec * 4,
		Done: func() bool {
			return e.eng.Now() > cfg.DurationSec && svc.QueueDepth() == 0 && svc.Running() == 0
		},
	})
	if cfg.WithObs {
		ctl.SetObs(o)
	}
	ctl.Start()

	if cfg.SpotRate > 0 {
		plan := chaos.NewPlan(cfg.Seed).WithSpotRate(cfg.SpotRate)
		plan.SpotNoticeSec = cfg.SpotNoticeSec
		plan.SpotEverySec = cfg.SpotEverySec
		plan.ArmSpot(e.eng, mgr, cfg.DurationSec)
	}

	start := time.Now()
	svc.Start()
	e.eng.Run()
	wall := time.Since(start).Seconds()
	if svc.QueueDepth() != 0 || svc.Running() != 0 {
		return nil, fmt.Errorf("elastic load: engine quiesced with %d queued, %d running",
			svc.QueueDepth(), svc.Running())
	}
	st := svc.Stats()
	pt := ElasticPoint{
		Autoscale:   cfg.Autoscale,
		RateX:       cfg.RateX,
		DurationSec: cfg.DurationSec,
		SpotRate:    cfg.SpotRate,
		MinNodes:    minNodes,
		MaxNodes:    maxNodes,

		Submitted: st.Submitted,
		Admitted:  st.Admitted,
		Succeeded: st.Succeeded,
		Failed:    st.Failed,
		Dropped:   st.Dropped,

		GoodputPerHour:  st.GoodputPerHour,
		QueueWaitP99Sec: st.QueueWaitP99Sec,
		E2EP99Sec:       st.E2EP99Sec,

		OnDemandNodeSec: st.OnDemandNodeSec,
		SpotNodeSec:     st.SpotNodeSec,
		CostUnits:       st.CostUnits,

		Preempted:  e.RM.Preempted(),
		Joins:      mgr.Joins,
		Leaves:     mgr.Leaves,
		Notices:    mgr.Notices,
		ScaleUps:   ctl.ScaleUps,
		ScaleDowns: ctl.ScaleDowns,
		Flaps:      ctl.Flaps,
		FinalNodes: mgr.Size(),

		WallSec: wall,
	}
	return &ElasticRun{Point: pt, Stats: st, Accounts: svc.Accounts(), Obs: o}, nil
}

// Render formats one elastic run for the CLI: the service outcome, the
// fleet's churn ledger, and the bill. Deterministic — wall-clock time is
// deliberately absent, so same-seed runs print byte-identical reports.
func (r *ElasticRun) Render() string {
	p, st := r.Point, r.Stats
	out := fmt.Sprintf("submitted %d  admitted %d  succeeded %d  failed %d  rejected %d  dropped %d\n",
		st.Submitted, st.Admitted, st.Succeeded, st.Failed, st.Rejections, st.Dropped)
	out += fmt.Sprintf("goodput %.1f/h  queue-wait p50 %.1fs p99 %.1fs  e2e p99 %.1fs\n",
		st.GoodputPerHour, st.QueueWaitP50Sec, st.QueueWaitP99Sec, st.E2EP99Sec)
	out += fmt.Sprintf("fleet: %s policy, %d..%d nodes, final %d  scale-ups %d  scale-downs %d  flaps %d\n",
		p.Autoscale, p.MinNodes, p.MaxNodes, p.FinalNodes, p.ScaleUps, p.ScaleDowns, p.Flaps)
	out += fmt.Sprintf("churn: joins %d  leaves %d  spot-notices %d  preempted containers %d\n",
		p.Joins, p.Leaves, p.Notices, p.Preempted)
	out += fmt.Sprintf("cost: on-demand %.0f node-sec  spot %.0f node-sec  %.0f cost-units\n",
		p.OnDemandNodeSec, p.SpotNodeSec, p.CostUnits)
	return out
}

// ElasticResult is the full elastic ladder, serialized to BENCH_elastic.json.
type ElasticResult struct {
	Points []ElasticPoint `json:"points"`
}

// ElasticSweepConfigs is the elastic ladder: the three autoscaling policies,
// each without chaos and under spot-preemption chaos — the grid the
// goodput-vs-cost claims are judged on. The short variant trims the arrival
// window; full (HIWAY_SCALE_FULL) runs the paper-scale window.
func ElasticSweepConfigs(full bool) []ElasticLoadConfig {
	duration := 900.0
	if full {
		duration = 1800
	}
	var cfgs []ElasticLoadConfig
	for _, pol := range []string{"static", "reactive", "predictive"} {
		for _, spotRate := range []float64{0, 0.3} {
			cfgs = append(cfgs, ElasticLoadConfig{
				Seed:        1,
				DurationSec: duration,
				Autoscale:   pol,
				SpotRate:    spotRate,
			})
		}
	}
	return cfgs
}

// ElasticSweep runs the ladder.
func ElasticSweep(cfgs []ElasticLoadConfig) (*ElasticResult, error) {
	res := &ElasticResult{}
	for _, cfg := range cfgs {
		run, err := ElasticLoad(cfg)
		if err != nil {
			return nil, fmt.Errorf("elastic load %s spot %.2g: %w", cfg.Autoscale, cfg.SpotRate, err)
		}
		res.Points = append(res.Points, run.Point)
	}
	return res, nil
}

// JSON serializes the result for BENCH_elastic.json.
func (r *ElasticResult) JSON() []byte {
	b, _ := json.MarshalIndent(r, "", "  ")
	return append(b, '\n')
}

// Render formats the ladder as an aligned text table (no wall-clock values,
// so same-seed renders are byte-identical).
func (r *ElasticResult) Render() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Autoscale, fmt.Sprintf("%.2g", p.SpotRate),
			fmt.Sprint(p.Submitted), fmt.Sprint(p.Succeeded), fmt.Sprint(p.Failed),
			fmt.Sprintf("%.1f", p.GoodputPerHour),
			fmt.Sprintf("%.1f", p.QueueWaitP99Sec),
			fmt.Sprintf("%.0f", p.OnDemandNodeSec), fmt.Sprintf("%.0f", p.SpotNodeSec),
			fmt.Sprintf("%.0f", p.CostUnits),
			fmt.Sprint(p.Preempted), fmt.Sprint(p.ScaleUps), fmt.Sprint(p.ScaleDowns), fmt.Sprint(p.Flaps),
			fmt.Sprint(p.FinalNodes),
		})
	}
	return table(
		[]string{"policy", "spot", "submitted", "ok", "fail", "goodput/h", "p99-wait", "od-nodesec", "spot-nodesec", "cost", "preempted", "ups", "downs", "flaps", "final"},
		rows,
	)
}
