package experiments

import (
	"fmt"
	"math/rand"

	"hiway/internal/baseline/cloudman"
	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/recipes"
	"hiway/internal/scheduler"
	"hiway/internal/workloads"
	"hiway/internal/yarn"
)

// Fig8Options parameterizes the RNA-seq performance experiment (§4.2): the
// TRAPLINE workflow (degree of parallelism six) on c3.2xlarge clusters of
// one to six nodes, Hi-WAY (HDFS on transient local SSDs) vs Galaxy
// CloudMan (Slurm + a shared EBS volume), one task per node, five runs.
type Fig8Options struct {
	Sizes      []int   // default {1,2,3,4,6}, the paper's cluster sizes
	Runs       int     // default 5
	VolumeMBps float64 // CloudMan's shared EBS volume; default 22
	Jitter     float64 // default 0.04
	Seed       int64
}

func (o *Fig8Options) setDefaults() {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{1, 2, 3, 4, 6}
	}
	if o.Runs <= 0 {
		o.Runs = 5
	}
	if o.VolumeMBps <= 0 {
		// A standard EBS magnetic volume of the m3/c3 era sustained a few
		// tens of MB/s — the storage bottleneck the paper identifies.
		o.VolumeMBps = 18
	}
	if o.Jitter == 0 {
		o.Jitter = 0.04
	}
	if o.Seed == 0 {
		o.Seed = 63
	}
}

// Fig8Row is one cluster size.
type Fig8Row struct {
	Nodes                    int
	HiWayMin, HiWayStd       float64
	CloudManMin, CloudManStd float64
	SpeedupPct               float64 // how much faster Hi-WAY is
}

// Fig8Result holds the figure.
type Fig8Result struct {
	Rows []Fig8Row
}

// Fig8 runs the experiment.
func Fig8(opt Fig8Options) (*Fig8Result, error) {
	opt.setDefaults()
	res := &Fig8Result{}
	for _, nodes := range opt.Sizes {
		var hw, cm []float64
		for run := 0; run < opt.Runs; run++ {
			seed := opt.Seed + int64(nodes*100+run)

			h, err := fig8HiWay(nodes, seed, opt.Jitter)
			if err != nil {
				return nil, fmt.Errorf("fig8: hiway @%d nodes: %w", nodes, err)
			}
			hw = append(hw, h)

			c, err := fig8CloudMan(nodes, seed, opt.Jitter, opt.VolumeMBps)
			if err != nil {
				return nil, fmt.Errorf("fig8: cloudman @%d nodes: %w", nodes, err)
			}
			cm = append(cm, c)
		}
		hm, hs := stats(hw)
		cmM, cmS := stats(cm)
		res.Rows = append(res.Rows, Fig8Row{
			Nodes:    nodes,
			HiWayMin: hm, HiWayStd: hs,
			CloudManMin: cmM, CloudManStd: cmS,
			SpeedupPct: (cmM - hm) / hm * 100,
		})
	}
	return res, nil
}

// fig8HiWay runs TRAPLINE on Hi-WAY: the workflow arrives as a Galaxy
// export (as in the paper, which executed Wolfien et al.'s published
// Galaxy workflow), with HDFS over local SSDs, data-aware scheduling, and
// one big container per node.
func fig8HiWay(nodes int, seed int64, jitter float64) (float64, error) {
	driver, inputs, err := workloads.TRAPLINEFromGalaxy(workloads.TRAPLINEConfig{})
	if err != nil {
		return 0, err
	}
	r := &recipes.Recipe{
		Name:       fmt.Sprintf("fig8-hiway-%d", nodes),
		Groups:     []recipes.NodeGroup{{Count: nodes, Spec: cluster.C32XLarge()}},
		SwitchMBps: 4000,
		HDFS:       hdfs.Config{BlockSizeMB: 1024, Replication: min(3, nodes)},
		// A zero-vcore AM (a thin JVM) lets the full 8-core worker
		// container still fit on the same node — required for the
		// single-node cluster, where AM and tools share the machine.
		YARN: yarn.Config{AMResource: yarn.Resource{VCores: 0, MemMB: 512}},
		Seed: seed,
	}
	r.Inputs = inputs
	e, err := buildEnv(r, nil)
	if err != nil {
		return 0, err
	}
	if _, err := driver.Parse(); err != nil {
		return 0, err
	}
	jitterTasks(driver, rand.New(rand.NewSource(seed)), jitter)
	rep, err := core.Run(e.Env, reparse(driver), scheduler.NewDataAware(e.FS), core.Config{
		ContainerVCores: 8, ContainerMemMB: 14000,
	})
	if err != nil {
		return 0, err
	}
	return rep.MakespanSec / 60, nil
}

// fig8CloudMan runs the same workflow on the CloudMan baseline: full-node
// tools, Slurm-style FCFS, everything stored on the shared volume.
func fig8CloudMan(nodes int, seed int64, jitter float64, volumeMBps float64) (float64, error) {
	driver, inputs := workloads.TRAPLINE(workloads.TRAPLINEConfig{})
	r := &recipes.Recipe{
		Name:       fmt.Sprintf("fig8-cloudman-%d", nodes),
		Groups:     []recipes.NodeGroup{{Count: nodes, Spec: cluster.C32XLarge()}},
		SwitchMBps: 4000,
		Seed:       seed,
	}
	e, err := buildEnv(r, nil)
	if err != nil {
		return 0, err
	}
	if _, err := driver.Parse(); err != nil {
		return 0, err
	}
	jitterTasks(driver, rand.New(rand.NewSource(seed)), jitter)
	rep, err := cloudman.Run(e.Cluster, reparse(driver), cloudman.Config{
		VolumeMBps:   volumeMBps,
		TasksPerNode: 1,
		InputSizesMB: workloads.InputSizes(inputs),
	})
	if err != nil {
		return 0, err
	}
	return rep.MakespanSec / 60, nil
}

// Render prints the figure as a text table.
func (r *Fig8Result) Render() string {
	headers := []string{"nodes", "Hi-WAY (min)", "±std", "CloudMan (min)", "±std", "Hi-WAY faster by"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprint(row.Nodes),
			fmt.Sprintf("%.1f", row.HiWayMin), fmt.Sprintf("%.1f", row.HiWayStd),
			fmt.Sprintf("%.1f", row.CloudManMin), fmt.Sprintf("%.1f", row.CloudManStd),
			fmt.Sprintf("%.0f%%", row.SpeedupPct),
		})
	}
	return "Fig. 8 — RNA-seq TRAPLINE, average runtime on Hi-WAY vs Galaxy CloudMan (log-log in the paper)\n" +
		table(headers, rows)
}
