package experiments

import (
	"fmt"
	"math/rand"

	"hiway/internal/cluster"
	"hiway/internal/core"
	"hiway/internal/hdfs"
	"hiway/internal/provenance"
	"hiway/internal/recipes"
	"hiway/internal/scheduler"
	"hiway/internal/wf"
	"hiway/internal/workloads"
	"hiway/internal/yarn"
)

// The ablations quantify the design choices DESIGN.md calls out. They are
// not paper figures; they isolate the mechanisms behind them.

// ---------------------------------------------------------------------------
// Ablation 1: scheduling policy under heterogeneity (Fig. 9's mechanism,
// including the dynamic adaptive-greedy policy the paper leaves as future
// work).

// SchedulerAblationRow is one policy's result.
type SchedulerAblationRow struct {
	Policy    string
	MedianSec float64
	StdSec    float64
}

// SchedulerAblation runs Montage on the Fig. 9 heterogeneous cluster under
// four policies. HEFT and adaptive-greedy are given warm provenance
// (priorRuns prior executions) so the comparison isolates steady-state
// placement quality rather than exploration cost.
func SchedulerAblation(reps, priorRuns int, seed int64) ([]SchedulerAblationRow, error) {
	if reps <= 0 {
		reps = 10
	}
	if priorRuns <= 0 {
		priorRuns = 12
	}
	if seed == 0 {
		seed = 90
	}
	policies := []string{scheduler.PolicyFCFS, scheduler.PolicyDataAware, scheduler.PolicyHEFT, scheduler.PolicyAdaptiveGreedy}
	var rows []SchedulerAblationRow
	for _, policy := range policies {
		var times []float64
		for rep := 0; rep < reps; rep++ {
			base := seed + int64(rep)*100
			store := provenance.NewMemStore()
			if policy == scheduler.PolicyHEFT || policy == scheduler.PolicyAdaptiveGreedy {
				// Warm the provenance with prior HEFT executions.
				for i := 0; i < priorRuns; i++ {
					if _, err := fig9Run(scheduler.PolicyHEFT, store, base+int64(i), 0.09, 0.12); err != nil {
						return nil, err
					}
				}
			}
			t, err := ablationFig9Run(policy, store, base+50, 0.09, 0.12)
			if err != nil {
				return nil, err
			}
			times = append(times, t)
		}
		med := median(times)
		_, std := stats(times)
		rows = append(rows, SchedulerAblationRow{Policy: policy, MedianSec: med, StdSec: std})
	}
	return rows, nil
}

// ablationFig9Run is fig9Run generalized over all policies.
func ablationFig9Run(policy string, store provenance.Store, seed int64, scale, jitter float64) (float64, error) {
	driver, inputs := workloads.Montage(workloads.MontageConfig{Degree: 0.25, RuntimeScale: scale})
	r := &recipes.Recipe{
		Name:       "ablation-sched",
		Groups:     fig9Workers(),
		SwitchMBps: 2000,
		HDFS:       hdfs.Config{BlockSizeMB: 512, Replication: 3, ExcludeNodes: []string{"node-00"}},
		YARN:       yarn.Config{AMResource: yarn.Resource{VCores: 1, MemMB: 1024}},
		Seed:       seed,
		Inputs:     inputs,
	}
	e, err := buildEnv(r, store)
	if err != nil {
		return 0, err
	}
	if _, err := driver.Parse(); err != nil {
		return 0, err
	}
	jitterTasks(driver, rand.New(rand.NewSource(seed)), jitter)
	sched, err := scheduler.New(policy, scheduler.Deps{Locality: e.FS, Estimator: e.Prov})
	if err != nil {
		return 0, err
	}
	rep, err := core.Run(e.Env, reparse(driver), sched, core.Config{
		ContainerVCores: 2, ContainerMemMB: 7000, AMNode: "node-00",
	})
	if err != nil {
		return 0, err
	}
	return rep.MakespanSec, nil
}

// ---------------------------------------------------------------------------
// Ablation 2: HDFS replication factor vs locality and makespan (the lever
// behind Fig. 4: more replicas give the data-aware scheduler more nodes to
// choose from, at the price of write traffic).

// ReplicationAblationRow is one replication factor's result.
type ReplicationAblationRow struct {
	Replication int
	MakespanMin float64
	LocalFrac   float64
}

// ReplicationAblation runs the Fig. 4 workload (reduced) under data-aware
// scheduling with varying replication.
func ReplicationAblation(seed int64) ([]ReplicationAblationRow, error) {
	if seed == 0 {
		seed = 91
	}
	var rows []ReplicationAblationRow
	for _, repl := range []int{1, 2, 3} {
		opt := Fig4Options{Samples: 8, Nodes: 12}
		opt.setDefaults()
		perNode := 12
		driver, inputs := workloads.SNV(workloads.SNVConfig{
			Samples: opt.Samples, FilesPerSample: 12, FileSizeMB: 340,
			CallSplitRegions: 8, AlignCPUSeconds: 600, SortCPUSeconds: 400,
			CallCPUSeconds: 800, AnnotateCPUSeconds: 600, RefLocal: true,
		})
		spec := cluster.XeonE52620()
		spec.VCores = perNode
		spec.MemMB = perNode*1024 + 1024
		r := &recipes.Recipe{
			Name:       fmt.Sprintf("ablation-repl-%d", repl),
			Groups:     []recipes.NodeGroup{{Count: opt.Nodes, Spec: spec}},
			SwitchMBps: 400,
			HDFS:       hdfs.Config{BlockSizeMB: 1024, Replication: repl},
			YARN:       amConfig(),
			Seed:       seed,
			Inputs:     inputs,
		}
		e, err := buildEnv(r, nil)
		if err != nil {
			return nil, err
		}
		if _, err := driver.Parse(); err != nil {
			return nil, err
		}
		rep, err := core.Run(e.Env, reparse(driver), scheduler.NewDataAware(e.FS), core.Config{
			ContainerVCores: 1, ContainerMemMB: 1024,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ReplicationAblationRow{
			Replication: repl,
			MakespanMin: rep.MakespanSec / 60,
			LocalFrac:   localReadFraction(rep, e.FS),
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Ablation 3: HEFT estimate policy — the paper's latest-observation with
// default-zero exploration vs a mean-fallback without exploration.

// EstimateAblationResult compares the two modes over consecutive runs.
type EstimateAblationResult struct {
	// Series indexed by prior runs 0..N-1.
	ZeroDefaultMedianSec  []float64
	MeanFallbackMedianSec []float64
}

// EstimateAblation replays Fig. 9's consecutive-run protocol under both
// estimate modes.
func EstimateAblation(reps, runs int, seed int64) (*EstimateAblationResult, error) {
	if reps <= 0 {
		reps = 6
	}
	if runs <= 0 {
		runs = 10
	}
	if seed == 0 {
		seed = 92
	}
	res := &EstimateAblationResult{}
	for _, mode := range []scheduler.EstimateMode{scheduler.EstimateLatestZeroDefault, scheduler.EstimateMeanFallback} {
		series := make([][]float64, runs)
		for rep := 0; rep < reps; rep++ {
			store := provenance.NewMemStore()
			for i := 0; i < runs; i++ {
				t, err := estimateModeRun(mode, store, seed+int64(rep)*1000+int64(i))
				if err != nil {
					return nil, err
				}
				series[i] = append(series[i], t)
			}
		}
		var medians []float64
		for _, s := range series {
			medians = append(medians, median(s))
		}
		if mode == scheduler.EstimateLatestZeroDefault {
			res.ZeroDefaultMedianSec = medians
		} else {
			res.MeanFallbackMedianSec = medians
		}
	}
	return res, nil
}

func estimateModeRun(mode scheduler.EstimateMode, store provenance.Store, seed int64) (float64, error) {
	driver, inputs := workloads.Montage(workloads.MontageConfig{Degree: 0.25, RuntimeScale: 0.09})
	r := &recipes.Recipe{
		Name:       "ablation-estimate",
		Groups:     fig9Workers(),
		SwitchMBps: 2000,
		HDFS:       hdfs.Config{BlockSizeMB: 512, Replication: 3, ExcludeNodes: []string{"node-00"}},
		YARN:       yarn.Config{AMResource: yarn.Resource{VCores: 1, MemMB: 1024}},
		Seed:       seed,
		Inputs:     inputs,
	}
	e, err := buildEnv(r, store)
	if err != nil {
		return 0, err
	}
	if _, err := driver.Parse(); err != nil {
		return 0, err
	}
	jitterTasks(driver, rand.New(rand.NewSource(seed)), 0.12)
	h := scheduler.NewHEFTSeeded(e.Prov, seed)
	h.SetEstimateMode(mode)
	rep, err := core.Run(e.Env, reparse(driver), h, core.Config{
		ContainerVCores: 2, ContainerMemMB: 7000, AMNode: "node-00",
	})
	if err != nil {
		return 0, err
	}
	return rep.MakespanSec, nil
}

// ---------------------------------------------------------------------------
// Ablation 4: one AM per workflow — concurrent multi-tenant execution vs
// serializing workflows through the cluster (§3.1's scalability argument).

// AMAblationResult compares total wall time for N workflows.
type AMAblationResult struct {
	Workflows     int
	ConcurrentMin float64
	SerialMin     float64
}

// MultiAMAblation runs N independent SNV samples as N separate workflows
// (one AM each) concurrently, and then back-to-back, on the same cluster
// size.
func MultiAMAblation(workflows int, seed int64) (*AMAblationResult, error) {
	if workflows <= 0 {
		workflows = 4
	}
	if seed == 0 {
		seed = 93
	}
	mkEnv := func() (*env, error) {
		spec := cluster.XeonE52620()
		spec.VCores = 8
		spec.MemMB = 8*1024 + 4096
		return buildEnv(&recipes.Recipe{
			Name:       "ablation-multiam",
			Groups:     []recipes.NodeGroup{{Count: workflows * 2, Spec: spec}},
			SwitchMBps: 2000,
			HDFS:       hdfs.Config{BlockSizeMB: 1024, Replication: 2},
			YARN:       amConfig(),
			Seed:       seed,
		}, nil)
	}
	mkDriver := func(i int, e *env) (wf.StaticDriver, error) {
		driver, inputs := workloads.SNV(workloads.SNVConfig{
			Samples: 1, FilesPerSample: 8, FileSizeMB: 256,
			AlignCPUSeconds: 300, SortCPUSeconds: 200, CallCPUSeconds: 400, AnnotateCPUSeconds: 200,
			RefLocal: true,
		})
		// Distinct paths per workflow instance.
		for _, t := range mustParse(driver) {
			_ = t
		}
		prefix := fmt.Sprintf("/wf%02d", i)
		for _, t := range driver.Graph().All() {
			for j := range t.Inputs {
				t.Inputs[j] = prefix + t.Inputs[j]
			}
			for p, fis := range t.Declared {
				for j := range fis {
					fis[j].Path = prefix + fis[j].Path
				}
				t.Declared[p] = fis
			}
		}
		var initial []string
		for _, in := range inputs {
			path := prefix + in.Path
			initial = append(initial, path)
			if !e.FS.Exists(path) {
				if _, err := e.FS.Put(path, in.SizeMB, ""); err != nil {
					return nil, err
				}
			}
		}
		// Rebuild the driver around the rewritten tasks: the original
		// graph's initial-input bookkeeping still holds the unprefixed
		// paths, so reparse() cannot be used here.
		g := driver.Graph()
		sb := &wf.StaticBase{WFName: fmt.Sprintf("wf%02d", i)}
		sb.Build = func() ([]*wf.Task, []string, []wf.Edge, error) {
			var edges []wf.Edge
			for _, t := range g.All() {
				for _, p := range g.Predecessors(t) {
					edges = append(edges, wf.Edge{Parent: p.ID, Child: t.ID})
				}
			}
			return g.All(), initial, edges, nil
		}
		return sb, nil
	}

	// Concurrent: one AM per workflow, all submitted at once.
	e, err := mkEnv()
	if err != nil {
		return nil, err
	}
	var ams []*core.AM
	for i := 0; i < workflows; i++ {
		d, err := mkDriver(i, e)
		if err != nil {
			return nil, err
		}
		am, err := core.Launch(e.Env, d, scheduler.NewFCFS(), core.Config{ContainerVCores: 2, ContainerMemMB: 2048})
		if err != nil {
			return nil, err
		}
		ams = append(ams, am)
	}
	e.eng.Run()
	var concurrentEnd float64
	for _, am := range ams {
		rep, err := am.Report()
		if err != nil {
			return nil, err
		}
		if rep.End > concurrentEnd {
			concurrentEnd = rep.End
		}
	}

	// Serial: the same workflows one after another on a fresh cluster.
	e2, err := mkEnv()
	if err != nil {
		return nil, err
	}
	var serialEnd float64
	for i := 0; i < workflows; i++ {
		d, err := mkDriver(i, e2)
		if err != nil {
			return nil, err
		}
		rep, err := core.Run(e2.Env, d, scheduler.NewFCFS(), core.Config{ContainerVCores: 2, ContainerMemMB: 2048})
		if err != nil {
			return nil, err
		}
		serialEnd = rep.End
	}
	return &AMAblationResult{
		Workflows:     workflows,
		ConcurrentMin: concurrentEnd / 60,
		SerialMin:     serialEnd / 60,
	}, nil
}

func mustParse(d wf.StaticDriver) []*wf.Task {
	ready, err := d.Parse()
	if err != nil {
		panic(err)
	}
	return ready
}

// ---------------------------------------------------------------------------
// Ablation 5: container sizing — identical containers (the paper's current
// mode) vs containers custom-tailored to each task (§5 future work).

// SizingAblationResult compares the two container modes.
type SizingAblationResult struct {
	UniformMin   float64
	TailoredMin  float64
	UniformMemMB int
}

// ContainerSizingAblation runs a mixed workload (many small single-core
// tasks plus a few memory-hungry ones) both ways. Uniform containers must
// be sized for the largest task, under-utilizing nodes; tailored containers
// pack small tasks densely.
func ContainerSizingAblation(seed int64) (*SizingAblationResult, error) {
	if seed == 0 {
		seed = 94
	}
	build := func() wf.StaticDriver {
		var tasks []*wf.Task
		for i := 0; i < 48; i++ {
			t := wf.NewTask("small", nil, []wf.FileInfo{{Path: fmt.Sprintf("/o/s%02d", i), SizeMB: 1}})
			t.CPUSeconds = 120
			t.Threads = 1
			t.MemMB = 1024
			tasks = append(tasks, t)
		}
		for i := 0; i < 4; i++ {
			t := wf.NewTask("big", nil, []wf.FileInfo{{Path: fmt.Sprintf("/o/b%02d", i), SizeMB: 1}})
			t.CPUSeconds = 240
			t.Threads = 2
			t.MemMB = 6000
			tasks = append(tasks, t)
		}
		sb := &wf.StaticBase{WFName: "sizing"}
		sb.Build = func() ([]*wf.Task, []string, []wf.Edge, error) { return tasks, nil, nil, nil }
		return sb
	}
	run := func(tailored bool) (float64, error) {
		e, err := buildEnv(&recipes.Recipe{
			Name:       "ablation-sizing",
			Groups:     []recipes.NodeGroup{{Count: 4, Spec: cluster.M3Large()}}, // 2 cores, 7.5 GB
			SwitchMBps: 2000,
			HDFS:       hdfs.Config{},
			YARN:       yarn.Config{AMResource: yarn.Resource{VCores: 0, MemMB: 256}},
			Seed:       seed,
		}, nil)
		if err != nil {
			return 0, err
		}
		cfg := core.Config{SizeContainersByTask: tailored}
		if !tailored {
			// Uniform containers must fit the biggest task.
			cfg.ContainerVCores = 2
			cfg.ContainerMemMB = 6000
		}
		rep, err := core.Run(e.Env, build(), scheduler.NewFCFS(), cfg)
		if err != nil {
			return 0, err
		}
		return rep.MakespanSec / 60, nil
	}
	uniform, err := run(false)
	if err != nil {
		return nil, err
	}
	tailored, err := run(true)
	if err != nil {
		return nil, err
	}
	return &SizingAblationResult{UniformMin: uniform, TailoredMin: tailored, UniformMemMB: 6000}, nil
}
