// Package cluster models the computational infrastructure of the paper's
// experiments: heterogeneous compute nodes (cores, memory, CPU speed, disk
// and NIC bandwidth, synthetic stress load) joined by a shared network
// switch, plus an external data source (the paper's Amazon S3 bucket) whose
// traffic bypasses the cluster switch.
//
// Each node exposes three contended resources built on sim.SharedResource:
// CPU (capacity = vcores · speed factor, work in reference core-seconds),
// disk (MB/s) and NIC (MB/s). Intra-cluster transfers are bottlenecked by
// the shared switch with a per-flow cap of min(srcNIC, dstNIC); external
// fetches are bottlenecked by the destination NIC.
package cluster

import (
	"fmt"
	"sort"

	"hiway/internal/obs"
	"hiway/internal/sim"
)

// NodeSpec describes a node's hardware and synthetic load. The paper's
// machines map to specs: local cluster nodes (24 vcores, 24 GB), EC2
// m3.large (2 vcores, 7.5 GB, SSD), c3.2xlarge (8 vcores, 15 GB, SSD).
type NodeSpec struct {
	VCores    int     // virtual processor cores
	MemMB     int     // main memory
	CPUFactor float64 // relative speed; 1.0 = reference machine
	DiskMBps  float64 // local disk bandwidth
	NetMBps   float64 // NIC bandwidth
	CPUHogs   int     // stress --cpu N: background threads competing for cores
	IOHogs    int     // stress --hdd N: background writers competing for disk
}

// Validate reports the first problem with the spec, or nil.
func (s NodeSpec) Validate() error {
	switch {
	case s.VCores <= 0:
		return fmt.Errorf("cluster: node needs positive vcores, got %d", s.VCores)
	case s.MemMB <= 0:
		return fmt.Errorf("cluster: node needs positive memory, got %d", s.MemMB)
	case s.CPUFactor <= 0:
		return fmt.Errorf("cluster: node needs positive CPU factor, got %g", s.CPUFactor)
	case s.DiskMBps <= 0:
		return fmt.Errorf("cluster: node needs positive disk bandwidth, got %g", s.DiskMBps)
	case s.NetMBps <= 0:
		return fmt.Errorf("cluster: node needs positive NIC bandwidth, got %g", s.NetMBps)
	case s.CPUHogs < 0 || s.IOHogs < 0:
		return fmt.Errorf("cluster: negative stress load")
	}
	return nil
}

// M3Large mirrors the paper's EC2 m3.large workers: 2 vcores, 7.5 GB RAM,
// 32 GB local SSD.
func M3Large() NodeSpec {
	return NodeSpec{VCores: 2, MemMB: 7680, CPUFactor: 1.0, DiskMBps: 250, NetMBps: 85}
}

// C32XLarge mirrors EC2 c3.2xlarge: 8 vcores, 15 GB RAM, 2×80 GB SSD.
func C32XLarge() NodeSpec {
	return NodeSpec{VCores: 8, MemMB: 15360, CPUFactor: 1.15, DiskMBps: 400, NetMBps: 125}
}

// XeonE52620 mirrors the local cluster nodes of §4.1: two Xeon E5-2620
// processors with 24 virtual cores, 24 GB RAM, one gigabit Ethernet.
func XeonE52620() NodeSpec {
	return NodeSpec{VCores: 24, MemMB: 24576, CPUFactor: 1.0, DiskMBps: 300, NetMBps: 120}
}

// Node is a simulated compute node.
type Node struct {
	ID     string
	Handle int32 // interned process-stable identity; hot paths compare this, not ID
	Spec   NodeSpec

	CPU  *sim.SharedResource // capacity: vcores·factor, units: reference core-seconds/s
	Disk *sim.SharedResource // capacity: DiskMBps
	NIC  *sim.SharedResource // capacity: NetMBps (external/volume traffic)
}

// cpuCap converts a thread count on this node into a rate cap for the CPU
// resource (threads · speed factor).
func (n *Node) cpuCap(threads int) float64 {
	if threads <= 0 {
		threads = 1
	}
	return float64(threads) * n.Spec.CPUFactor
}

// Config describes a whole cluster.
type Config struct {
	// SwitchMBps is the aggregate bandwidth of the shared switch. The
	// paper's one-gigabit switch on the 24-node cluster is ~120 MB/s per
	// link with an oversubscribed backplane.
	SwitchMBps float64
	// ExternalPerFlowMBps caps a single external (S3) fetch; the external
	// source itself is unlimited in aggregate.
	ExternalPerFlowMBps float64
}

// Cluster is a set of nodes joined by a shared switch.
type Cluster struct {
	Engine *sim.Engine
	Switch *sim.SharedResource

	cfg   Config
	nodes []*Node
	byID  map[string]*Node
	next  int // next auto-assigned node index for AddNode("")

	version    uint64   // membership version, bumped on AddNode/RemoveNode
	idsCache   []string // NodeIDs result, rebuilt when idsVersion falls behind
	idsVersion uint64
	byHandle   []*Node // handle → node; slots of departed nodes are nil
}

// New builds a cluster with the given node specs. Node IDs are
// "node-00".."node-NN" in spec order.
func New(eng *sim.Engine, cfg Config, specs []NodeSpec) (*Cluster, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: at least one node required")
	}
	if cfg.SwitchMBps <= 0 {
		return nil, fmt.Errorf("cluster: switch bandwidth must be positive")
	}
	if cfg.ExternalPerFlowMBps <= 0 {
		cfg.ExternalPerFlowMBps = 50
	}
	c := &Cluster{
		Engine: eng,
		Switch: sim.NewSharedResource(eng, "switch", cfg.SwitchMBps),
		cfg:    cfg,
		byID:   make(map[string]*Node, len(specs)),
	}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
		id := fmt.Sprintf("node-%02d", i)
		n := &Node{
			ID:   id,
			Spec: s,
			CPU:  sim.NewSharedResource(eng, id+"/cpu", float64(s.VCores)*s.CPUFactor),
			Disk: sim.NewSharedResource(eng, id+"/disk", s.DiskMBps),
			NIC:  sim.NewSharedResource(eng, id+"/nic", s.NetMBps),
		}
		for h := 0; h < s.CPUHogs; h++ {
			n.CPU.SubmitBackground(1 * s.CPUFactor)
		}
		for h := 0; h < s.IOHogs; h++ {
			n.Disk.SubmitBackground(s.DiskMBps)
		}
		n.Handle = int32(len(c.byHandle))
		c.byHandle = append(c.byHandle, n)
		c.nodes = append(c.nodes, n)
		c.byID[id] = n
	}
	c.next = len(specs)
	return c, nil
}

// AddNode joins a new node to the cluster mid-run. An empty id auto-assigns
// the next unused "node-NN" name; a non-empty id lets a previously removed
// node rejoin under its old identity. The node starts with fresh (idle)
// CPU/disk/NIC resources — a rejoining node is a new machine, not a resumed
// one. Returns an error if the id is already a member or the spec is invalid.
func (c *Cluster) AddNode(id string, spec NodeSpec) (*Node, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if id == "" {
		for {
			id = fmt.Sprintf("node-%02d", c.next)
			c.next++
			if c.byID[id] == nil {
				break
			}
		}
	} else if c.byID[id] != nil {
		return nil, fmt.Errorf("cluster: node %s already a member", id)
	}
	n := &Node{
		ID:   id,
		Spec: spec,
		CPU:  sim.NewSharedResource(c.Engine, id+"/cpu", float64(spec.VCores)*spec.CPUFactor),
		Disk: sim.NewSharedResource(c.Engine, id+"/disk", spec.DiskMBps),
		NIC:  sim.NewSharedResource(c.Engine, id+"/nic", spec.NetMBps),
	}
	for h := 0; h < spec.CPUHogs; h++ {
		n.CPU.SubmitBackground(1 * spec.CPUFactor)
	}
	for h := 0; h < spec.IOHogs; h++ {
		n.Disk.SubmitBackground(spec.DiskMBps)
	}
	// Keep c.nodes sorted by ID so Nodes/NodeIDs iteration order is a pure
	// function of membership, independent of join order.
	i := sort.Search(len(c.nodes), func(i int) bool { return c.nodes[i].ID >= id })
	c.nodes = append(c.nodes, nil)
	copy(c.nodes[i+1:], c.nodes[i:])
	c.nodes[i] = n
	c.byID[id] = n
	// A rejoining node is a new machine, so it gets a fresh handle; the old
	// handle keeps resolving to nil forever.
	n.Handle = int32(len(c.byHandle))
	c.byHandle = append(c.byHandle, n)
	c.version++
	return n, nil
}

// RemoveNode drops a node from the cluster. The caller is responsible for
// draining or killing its workload first (yarn) and for marking its replicas
// dead (hdfs); removal here only deletes the membership entry so future
// NodeIDs/Node lookups no longer see it. Returns an error for unknown ids.
func (c *Cluster) RemoveNode(id string) error {
	if c.byID[id] == nil {
		return fmt.Errorf("cluster: node %s not a member", id)
	}
	n := c.byID[id]
	delete(c.byID, id)
	c.byHandle[n.Handle] = nil
	for i, m := range c.nodes {
		if m.ID == id {
			c.nodes = append(c.nodes[:i], c.nodes[i+1:]...)
			break
		}
	}
	c.version++
	return nil
}

// RecordMetrics snapshots the cluster's kernel-level counters into the
// registry: the engine's event totals and queue high-water mark, plus
// per-resource fair-share recomputation (reshare) counts — the simulation
// kernel's dominant cost driver. Call it once after the run, so the gauges
// reflect final values.
func (c *Cluster) RecordMetrics(reg *obs.Registry) {
	reg.Gauge("hiway_sim_events_total", "simulation events executed").Set(float64(c.Engine.Processed()))
	reg.Gauge("hiway_sim_event_queue_max_depth", "high-water mark of the pending event queue").Set(float64(c.Engine.MaxQueueDepth()))
	reg.Gauge("hiway_sim_switch_reshares", "fair-share recomputations on the shared switch").Set(float64(c.Switch.Reshares()))
	for _, n := range c.nodes {
		total := n.CPU.Reshares() + n.Disk.Reshares() + n.NIC.Reshares()
		reg.GaugeL("hiway_sim_node_reshares", "fair-share recomputations across a node's CPU, disk, and NIC",
			"node", n.ID).Set(float64(total))
	}
}

// Uniform builds a cluster of n identical nodes.
func Uniform(eng *sim.Engine, cfg Config, n int, spec NodeSpec) (*Cluster, error) {
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = spec
	}
	return New(eng, cfg, specs)
}

// Nodes returns the nodes in ID order.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// NodeIDs returns all node IDs in order. The slice is cached and rebuilt
// only when membership changes; callers must treat it as read-only.
func (c *Cluster) NodeIDs() []string {
	if c.idsCache == nil || c.idsVersion != c.version {
		ids := c.idsCache[:0]
		for _, n := range c.nodes {
			ids = append(ids, n.ID)
		}
		c.idsCache = ids
		c.idsVersion = c.version
	}
	return c.idsCache
}

// Version returns the membership version, bumped on every AddNode and
// RemoveNode. Downstream caches (hdfs live-node sets, scheduler indexes)
// key their invalidation on it.
func (c *Cluster) Version() uint64 { return c.version }

// NodeByHandle resolves an interned node handle, or nil if the node has
// left the cluster. Handles are stable for the life of the process and
// never reused, so a stale handle can only miss, never alias.
func (c *Cluster) NodeByHandle(h int32) *Node {
	if h < 0 || int(h) >= len(c.byHandle) {
		return nil
	}
	return c.byHandle[h]
}

// Node looks a node up by ID, or nil.
func (c *Cluster) Node(id string) *Node { return c.byID[id] }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Compute runs work reference-core-seconds of CPU on the node using up to
// threads cores, invoking done when finished. Background hogs and other
// tasks on the node slow it down via fair sharing.
func (c *Cluster) Compute(node *Node, work float64, threads int, done func()) *sim.Job {
	return node.CPU.Submit(work, node.cpuCap(threads), done)
}

// ReadLocal reads sizeMB from the node's local disk.
func (c *Cluster) ReadLocal(node *Node, sizeMB float64, done func()) *sim.Job {
	return node.Disk.Submit(sizeMB, 0, done)
}

// WriteLocal writes sizeMB to the node's local disk.
func (c *Cluster) WriteLocal(node *Node, sizeMB float64, done func()) *sim.Job {
	return node.Disk.Submit(sizeMB, 0, done)
}

// Transfer moves sizeMB between two distinct nodes through the shared
// switch; the flow is additionally capped by the slower of the two NICs.
// Transfers between a node and itself complete after a local disk read.
func (c *Cluster) Transfer(src, dst *Node, sizeMB float64, done func()) *sim.Job {
	if src == dst {
		return c.ReadLocal(dst, sizeMB, done)
	}
	cap := src.Spec.NetMBps
	if dst.Spec.NetMBps < cap {
		cap = dst.Spec.NetMBps
	}
	return c.Switch.Submit(sizeMB, cap, done)
}

// FetchExternal downloads sizeMB from the external source (S3) to the node.
// The flow is bottlenecked by the node NIC and the per-flow cap, and does
// not cross the cluster switch.
func (c *Cluster) FetchExternal(dst *Node, sizeMB float64, done func()) *sim.Job {
	return dst.NIC.Submit(sizeMB, c.cfg.ExternalPerFlowMBps, done)
}

// NodeMetrics is a utilization snapshot for one node, mirroring the
// uptime/iostat/ifstat measurements of the paper's Fig. 6.
type NodeMetrics struct {
	NodeID     string
	CPULoad    float64 // average runnable demand in cores (uptime-style)
	CPUUtil    float64 // fraction of CPU capacity in use
	DiskUtil   float64 // iostat-style device busy fraction
	NetMBps    float64 // average NIC throughput (external/volume traffic)
	SwitchMBps float64 // cluster-wide switch throughput (same for all nodes)
}

// Metrics returns a utilization snapshot for every node, sorted by ID.
func (c *Cluster) Metrics() []NodeMetrics {
	sw := c.Switch.Throughput()
	out := make([]NodeMetrics, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, NodeMetrics{
			NodeID:     n.ID,
			CPULoad:    n.CPU.Load() / n.Spec.CPUFactor,
			CPUUtil:    n.CPU.Utilization(),
			DiskUtil:   n.Disk.BusyFraction(),
			NetMBps:    n.NIC.Throughput(),
			SwitchMBps: sw,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NodeID < out[j].NodeID })
	return out
}

// ResetMeters restarts utilization accounting on every resource.
func (c *Cluster) ResetMeters() {
	c.Switch.ResetMeters()
	for _, n := range c.nodes {
		n.CPU.ResetMeters()
		n.Disk.ResetMeters()
		n.NIC.ResetMeters()
	}
}
