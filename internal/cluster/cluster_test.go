package cluster

import (
	"math"
	"testing"

	"hiway/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func testCfg() Config {
	return Config{SwitchMBps: 1000, ExternalPerFlowMBps: 50}
}

func TestNewValidatesSpecs(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(eng, testCfg(), nil); err == nil {
		t.Fatal("expected error for empty cluster")
	}
	bad := M3Large()
	bad.VCores = 0
	if _, err := New(eng, testCfg(), []NodeSpec{bad}); err == nil {
		t.Fatal("expected error for zero vcores")
	}
	if _, err := New(eng, Config{SwitchMBps: 0}, []NodeSpec{M3Large()}); err == nil {
		t.Fatal("expected error for zero switch bandwidth")
	}
}

func TestNodeIDsAndLookup(t *testing.T) {
	eng := sim.NewEngine()
	c, err := Uniform(eng, testCfg(), 3, M3Large())
	if err != nil {
		t.Fatal(err)
	}
	ids := c.NodeIDs()
	want := []string{"node-00", "node-01", "node-02"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v", ids)
		}
	}
	if c.Node("node-01") == nil || c.Node("nope") != nil {
		t.Fatal("lookup broken")
	}
	if c.Size() != 3 {
		t.Fatalf("size = %d", c.Size())
	}
}

func TestComputeSingleThread(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := Uniform(eng, testCfg(), 1, NodeSpec{VCores: 4, MemMB: 1024, CPUFactor: 1, DiskMBps: 100, NetMBps: 100})
	var done float64
	c.Compute(c.Nodes()[0], 10, 1, func() { done = eng.Now() })
	eng.Run()
	if !almost(done, 10, 1e-9) {
		t.Fatalf("1 thread, 10 core-s: finished at %g, want 10", done)
	}
}

func TestComputeMultithreadSpeedup(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := Uniform(eng, testCfg(), 1, NodeSpec{VCores: 4, MemMB: 1024, CPUFactor: 1, DiskMBps: 100, NetMBps: 100})
	var done float64
	c.Compute(c.Nodes()[0], 40, 4, func() { done = eng.Now() })
	eng.Run()
	if !almost(done, 10, 1e-9) {
		t.Fatalf("4 threads, 40 core-s on 4 cores: finished at %g, want 10", done)
	}
}

func TestComputeFasterNode(t *testing.T) {
	eng := sim.NewEngine()
	spec := M3Large()
	spec.CPUFactor = 2.0
	c, _ := Uniform(eng, testCfg(), 1, spec)
	var done float64
	c.Compute(c.Nodes()[0], 10, 1, func() { done = eng.Now() })
	eng.Run()
	if !almost(done, 5, 1e-9) {
		t.Fatalf("2x node: finished at %g, want 5", done)
	}
}

func TestComputeUnderCPUStress(t *testing.T) {
	eng := sim.NewEngine()
	spec := M3Large() // 2 cores
	spec.CPUHogs = 1
	c, _ := Uniform(eng, testCfg(), 1, spec)
	var done float64
	// 2 core-seconds with 1 thread: hog takes one core, task the other.
	c.Compute(c.Nodes()[0], 2, 1, func() { done = eng.Now() })
	eng.Run()
	if !almost(done, 2, 1e-9) {
		t.Fatalf("under 1 hog: finished at %g, want 2", done)
	}
}

func TestComputeUnderHeavyCPUStressSlowdown(t *testing.T) {
	eng := sim.NewEngine()
	clean := M3Large()
	stressed := M3Large()
	stressed.CPUHogs = 64
	c, _ := New(eng, testCfg(), []NodeSpec{clean, stressed})
	var tClean, tStressed float64
	c.Compute(c.Nodes()[0], 10, 2, func() { tClean = eng.Now() })
	c.Compute(c.Nodes()[1], 10, 2, func() { tStressed = eng.Now() })
	eng.Run()
	if tStressed < 10*tClean {
		t.Fatalf("64 hogs should slow the task by >10x: clean=%g stressed=%g", tClean, tStressed)
	}
}

func TestIOHogsSlowDisk(t *testing.T) {
	eng := sim.NewEngine()
	clean := M3Large()
	stressed := M3Large()
	stressed.IOHogs = 4
	c, _ := New(eng, testCfg(), []NodeSpec{clean, stressed})
	var tClean, tStressed float64
	c.ReadLocal(c.Nodes()[0], 250, func() { tClean = eng.Now() })
	c.ReadLocal(c.Nodes()[1], 250, func() { tStressed = eng.Now() })
	eng.Run()
	if !almost(tClean, 1, 1e-9) {
		t.Fatalf("clean read at %g, want 1", tClean)
	}
	// 4 hogs + 1 reader share the disk: 5x slower.
	if !almost(tStressed, 5, 1e-6) {
		t.Fatalf("stressed read at %g, want 5", tStressed)
	}
}

func TestTransferThroughSwitch(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := Uniform(eng, Config{SwitchMBps: 1000}, 2, M3Large()) // NIC 85
	var done float64
	c.Transfer(c.Nodes()[0], c.Nodes()[1], 850, func() { done = eng.Now() })
	eng.Run()
	// Capped by NIC at 85 MB/s → 10s.
	if !almost(done, 10, 1e-9) {
		t.Fatalf("transfer at %g, want 10", done)
	}
}

func TestTransferSwitchSaturation(t *testing.T) {
	eng := sim.NewEngine()
	// Switch 100 MB/s, NICs 85: four concurrent flows share 100.
	c, _ := Uniform(eng, Config{SwitchMBps: 100}, 8, M3Large())
	nodes := c.Nodes()
	var last float64
	for i := 0; i < 4; i++ {
		c.Transfer(nodes[i], nodes[4+i], 100, func() { last = eng.Now() })
	}
	eng.Run()
	// 400 MB through a 100 MB/s switch: 4s regardless of NIC headroom.
	if !almost(last, 4, 1e-9) {
		t.Fatalf("saturated transfers finished at %g, want 4", last)
	}
}

func TestTransferSameNodeUsesDisk(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := Uniform(eng, testCfg(), 1, M3Large()) // disk 250
	n := c.Nodes()[0]
	var done float64
	c.Transfer(n, n, 250, func() { done = eng.Now() })
	eng.Run()
	if !almost(done, 1, 1e-9) {
		t.Fatalf("local transfer at %g, want 1 (disk-bound)", done)
	}
	if c.Switch.Utilization() != 0 {
		t.Fatal("local transfer must not touch the switch")
	}
}

func TestFetchExternalBypassesSwitch(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := Uniform(eng, Config{SwitchMBps: 1000, ExternalPerFlowMBps: 50}, 1, M3Large())
	var done float64
	c.FetchExternal(c.Nodes()[0], 500, func() { done = eng.Now() })
	eng.Run()
	if !almost(done, 10, 1e-9) {
		t.Fatalf("external fetch at %g, want 10 (50 MB/s per flow)", done)
	}
	if c.Switch.Utilization() != 0 {
		t.Fatal("external fetch must not touch the switch")
	}
}

func TestMetricsReportLoadAndThroughput(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := Uniform(eng, testCfg(), 2, M3Large())
	n := c.Nodes()[0]
	c.Compute(n, 20, 2, nil) // 2 cores for 10s
	eng.Run()
	m := c.Metrics()
	if len(m) != 2 || m[0].NodeID != "node-00" {
		t.Fatalf("metrics = %+v", m)
	}
	if !almost(m[0].CPULoad, 2, 1e-9) {
		t.Fatalf("cpu load = %g, want 2", m[0].CPULoad)
	}
	if m[1].CPULoad != 0 {
		t.Fatalf("idle node load = %g", m[1].CPULoad)
	}
	c.ResetMeters()
	eng.RunUntil(eng.Now() + 5)
	if got := c.Metrics()[0].CPULoad; got != 0 {
		t.Fatalf("load after reset = %g", got)
	}
}

func TestPresetSpecsValid(t *testing.T) {
	for _, s := range []NodeSpec{M3Large(), C32XLarge(), XeonE52620()} {
		if err := s.Validate(); err != nil {
			t.Fatalf("preset invalid: %v", err)
		}
	}
	if XeonE52620().VCores != 24 {
		t.Fatal("Xeon preset should have 24 vcores")
	}
}

func TestTransferAsymmetricNICCap(t *testing.T) {
	eng := sim.NewEngine()
	slowNIC := NodeSpec{VCores: 2, MemMB: 1024, CPUFactor: 1, DiskMBps: 100, NetMBps: 10}
	fastNIC := NodeSpec{VCores: 2, MemMB: 1024, CPUFactor: 1, DiskMBps: 100, NetMBps: 1000}
	c, err := New(eng, Config{SwitchMBps: 10000}, []NodeSpec{slowNIC, fastNIC})
	if err != nil {
		t.Fatal(err)
	}
	var done float64
	// Either direction is capped by the slower endpoint's NIC (10 MB/s).
	c.Transfer(c.Nodes()[1], c.Nodes()[0], 100, func() { done = eng.Now() })
	eng.Run()
	if !almost(done, 10, 1e-9) {
		t.Fatalf("fast→slow transfer at %g, want 10", done)
	}
	var done2 float64
	c.Transfer(c.Nodes()[0], c.Nodes()[1], 100, func() { done2 = eng.Now() })
	eng.Run()
	if !almost(done2-done, 10, 1e-9) {
		t.Fatalf("slow→fast transfer took %g, want 10", done2-done)
	}
}

func TestComputeOversubscribedThreads(t *testing.T) {
	// A task asking for more threads than the node has cores is capped at
	// the node's capacity.
	eng := sim.NewEngine()
	c, _ := Uniform(eng, Config{SwitchMBps: 100}, 1, NodeSpec{VCores: 2, MemMB: 1024, CPUFactor: 1, DiskMBps: 10, NetMBps: 10})
	var done float64
	c.Compute(c.Nodes()[0], 20, 16, func() { done = eng.Now() })
	eng.Run()
	if !almost(done, 10, 1e-9) {
		t.Fatalf("16 threads on 2 cores: finished at %g, want 10", done)
	}
}
