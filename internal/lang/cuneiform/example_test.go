package cuneiform_test

import (
	"fmt"

	"hiway/internal/lang/cuneiform"
	"hiway/internal/wf"
)

// Example shows the driver lifecycle: parsing a two-step pipeline, running
// the first task, and receiving the dependent task once its input exists.
func Example() {
	driver := cuneiform.NewDriver("demo", `
deftask upper( out : inp ) in bash *{ tr a-z A-Z < $inp > $out }*
deftask count( out : inp ) in bash *{ wc -l < $inp > $out }*
count( inp: upper( inp: "words.txt" ) );`)

	ready, err := driver.Parse()
	if err != nil {
		panic(err)
	}
	fmt.Println("initially ready:", ready[0].Name)

	// Simulate completing the first task with its declared outputs.
	res := &wf.TaskResult{
		Task:    ready[0],
		Outputs: map[string][]wf.FileInfo{"out": ready[0].Declared["out"]},
	}
	next, err := driver.OnTaskComplete(res)
	if err != nil {
		panic(err)
	}
	fmt.Println("discovered next:", next[0].Name)
	fmt.Println("done:", driver.Done())
	// Output:
	// initially ready: upper
	// discovered next: count
	// done: false
}
