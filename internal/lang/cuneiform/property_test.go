package cuneiform

import (
	"math/rand"
	"testing"

	"hiway/internal/wf"
)

// Property: the parser terminates with a value or an error — never a
// panic — on arbitrary byte soup and on mutations of a valid program.
func TestParserRobustnessProperty(t *testing.T) {
	valid := `
deftask a( out : inp ) @cpu 5 in bash *{ run $inp > $out }*
defun f( x ) { if x then a( inp: x ) else nil end }
let xs = "p" "q";
f( x: xs );`
	rng := rand.New(rand.NewSource(99))
	alphabet := []byte("abcdefgh ()<>~@:;={}*\"\\\nif then else end deftask defun let nil %%0123456789.")
	for i := 0; i < 300; i++ {
		var src string
		if i%2 == 0 {
			// Pure random soup.
			n := rng.Intn(200)
			b := make([]byte, n)
			for j := range b {
				b[j] = alphabet[rng.Intn(len(alphabet))]
			}
			src = string(b)
		} else {
			// Mutate the valid program: delete or duplicate a chunk.
			b := []byte(valid)
			from := rng.Intn(len(b))
			to := from + rng.Intn(len(b)-from)
			if rng.Intn(2) == 0 {
				src = string(append(append([]byte{}, b[:from]...), b[to:]...))
			} else {
				src = string(b[:to]) + string(b[from:to]) + string(b[to:])
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// Property: the final workflow outputs are independent of the order in
// which task results arrive — the evaluator's memoization and re-evaluation
// must be confluent.
func TestEvaluationOrderIndependenceProperty(t *testing.T) {
	src := `
deftask a( out : inp ) in bash *{ x }*
deftask join( out : <parts> ) in bash *{ y }*
let xs = "f1" "f2" "f3" "f4";
join( parts: a( inp: xs ) );`
	var reference []string
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		d := NewDriver("order", src)
		ready, err := d.Parse()
		if err != nil {
			t.Fatal(err)
		}
		queue := append([]*wf.Task{}, ready...)
		for len(queue) > 0 {
			i := rng.Intn(len(queue))
			task := queue[i]
			queue = append(queue[:i], queue[i+1:]...)
			next, err := d.OnTaskComplete(completeOK(task, nil))
			if err != nil {
				t.Fatal(err)
			}
			queue = append(queue, next...)
		}
		if !d.Done() {
			t.Fatalf("trial %d not done", trial)
		}
		// Task IDs are process-global, so paths differ between trials;
		// compare the ID-normalized shape instead.
		outs := normalizeIDs(d.Outputs())
		if trial == 0 {
			reference = outs
			continue
		}
		if len(outs) != len(reference) {
			t.Fatalf("trial %d outputs = %v, want %v", trial, outs, reference)
		}
		for i := range outs {
			if outs[i] != reference[i] {
				t.Fatalf("trial %d outputs differ at %d: %v vs %v", trial, i, outs, reference)
			}
		}
	}
}

// normalizeIDs replaces digit runs with '#' so structurally identical
// outputs compare equal across trials.
func normalizeIDs(paths []string) []string {
	out := make([]string, len(paths))
	for i, p := range paths {
		b := []byte(p)
		for j := range b {
			if b[j] >= '0' && b[j] <= '9' {
				b[j] = '#'
			}
		}
		// Collapse runs of '#'.
		var sb []byte
		for j := 0; j < len(b); j++ {
			if b[j] == '#' && j > 0 && b[j-1] == '#' {
				continue
			}
			sb = append(sb, b[j])
		}
		out[i] = string(sb)
	}
	return out
}
