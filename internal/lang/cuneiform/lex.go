// Package cuneiform implements a minimal Cuneiform-like functional workflow
// language (Brandt et al., "Cuneiform: A Functional Language for Large Scale
// Scientific Data Analysis"), the primary iterative frontend of Hi-WAY.
//
// The language treats every expression as a list of strings, integrates
// foreign code as black-box task definitions, maps task applications over
// list arguments (cartesian product over non-aggregate parameters), and
// supports conditionals and recursion — enough to express unbounded
// iterative workflows such as k-means clustering (§3.3 of the paper).
//
// Grammar (EBNF, '%%' starts a line comment):
//
//	program  = { stmt } .
//	stmt     = deftask | defun | let | target .
//	deftask  = "deftask" ID "(" outs ":" params ")" { attr } "in" ID body .
//	outs     = decl { decl } .
//	params   = { decl } .
//	decl     = ID | "<" ID ">" | "~" ID .          // plain file, aggregate list, value
//	attr     = "@" ID NUMBER | "@" ID ID NUMBER .  // @cpu/@threads/@mem n, @size out n
//	body     = "*{" raw "}*" .
//	defun    = "defun" ID "(" { ID } ")" "{" expr "}" .
//	let      = "let" ID "=" expr ";" .
//	target   = expr ";" .
//	expr     = atom { atom } .                     // juxtaposition = list concat
//	atom     = STRING | "nil" | ID | apply | cond | "(" expr ")" .
//	apply    = ID "(" { ID ":" expr } ")" [ "." ID ] .
//	cond     = "if" expr "then" expr "else" expr "end" .
package cuneiform

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokBody   // *{ raw }*
	tokLParen // (
	tokRParen // )
	tokLBrace // {
	tokRBrace // }
	tokColon  // :
	tokSemi   // ;
	tokLt     // <
	tokGt     // >
	tokEq     // =
	tokAt     // @
	tokDot    // .
	tokTilde  // ~
)

var keywords = map[string]bool{
	"deftask": true, "defun": true, "let": true, "in": true,
	"if": true, "then": true, "else": true, "end": true, "nil": true,
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

// lexer splits source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("cuneiform: %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '%' && l.peek2() == '%':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '-' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.peek()
	switch {
	case c == '*' && l.peek2() == '{':
		l.advance()
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf("unterminated task body (missing '}*')")
			}
			if l.peek() == '}' && l.peek2() == '*' {
				l.advance()
				l.advance()
				return token{kind: tokBody, text: strings.TrimSpace(sb.String()), line: line, col: col}, nil
			}
			sb.WriteByte(l.advance())
		}
	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf("unterminated string literal")
			}
			ch := l.advance()
			if ch == '"' {
				return token{kind: tokString, text: sb.String(), line: line, col: col}, nil
			}
			if ch == '\\' {
				if l.pos >= len(l.src) {
					return token{}, l.errorf("unterminated escape in string literal")
				}
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"', '\\':
					sb.WriteByte(esc)
				default:
					return token{}, l.errorf("unknown escape \\%c", esc)
				}
				continue
			}
			sb.WriteByte(ch)
		}
	case isIdentStart(c):
		var sb strings.Builder
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			sb.WriteByte(l.advance())
		}
		return token{kind: tokIdent, text: sb.String(), line: line, col: col}, nil
	case unicode.IsDigit(rune(c)):
		var sb strings.Builder
		for l.pos < len(l.src) && (unicode.IsDigit(rune(l.peek())) || l.peek() == '.') {
			sb.WriteByte(l.advance())
		}
		return token{kind: tokNumber, text: sb.String(), line: line, col: col}, nil
	}
	l.advance()
	punct := map[byte]tokenKind{
		'(': tokLParen, ')': tokRParen, '{': tokLBrace, '}': tokRBrace,
		':': tokColon, ';': tokSemi, '<': tokLt, '>': tokGt,
		'=': tokEq, '@': tokAt, '.': tokDot, '~': tokTilde,
	}
	if k, ok := punct[c]; ok {
		return token{kind: k, text: string(c), line: line, col: col}, nil
	}
	return token{}, fmt.Errorf("cuneiform: %d:%d: unexpected character %q", line, col, c)
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
