package cuneiform

import (
	"fmt"
	"strconv"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a complete workflow source text.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tokEOF) {
		st, err := p.stmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, st)
	}
	if len(prog.Stmts) == 0 {
		return nil, fmt.Errorf("cuneiform: empty workflow")
	}
	return prog, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) at(k tokenKind) bool {
	return p.cur().kind == k
}
func (p *parser) atKeyword(kw string) bool {
	return p.cur().kind == tokIdent && p.cur().text == kw
}

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("cuneiform: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if !p.at(k) {
		return token{}, p.errorf("expected %s, found %s", what, p.cur())
	}
	return p.advance(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errorf("expected %q, found %s", kw, p.cur())
	}
	p.advance()
	return nil
}

// ident expects a non-keyword identifier.
func (p *parser) ident(what string) (token, error) {
	if !p.at(tokIdent) || keywords[p.cur().text] {
		return token{}, p.errorf("expected %s, found %s", what, p.cur())
	}
	return p.advance(), nil
}

func (p *parser) stmt() (Stmt, error) {
	switch {
	case p.atKeyword("deftask"):
		return p.deftask()
	case p.atKeyword("defun"):
		return p.defun()
	case p.atKeyword("let"):
		return p.let()
	default:
		line := p.cur().line
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi, "';' after target expression"); err != nil {
			return nil, err
		}
		return &Target{X: x, Line: line}, nil
	}
}

// paramDecl parses ID, <ID>, or ~ID.
func (p *parser) paramDecl() (ParamDecl, error) {
	switch {
	case p.at(tokLt):
		p.advance()
		id, err := p.ident("aggregate parameter name")
		if err != nil {
			return ParamDecl{}, err
		}
		if _, err := p.expect(tokGt, "'>'"); err != nil {
			return ParamDecl{}, err
		}
		return ParamDecl{Name: id.text, Aggregate: true}, nil
	case p.at(tokTilde):
		p.advance()
		id, err := p.ident("value parameter name")
		if err != nil {
			return ParamDecl{}, err
		}
		return ParamDecl{Name: id.text, Value: true}, nil
	default:
		id, err := p.ident("parameter name")
		if err != nil {
			return ParamDecl{}, err
		}
		return ParamDecl{Name: id.text}, nil
	}
}

func (p *parser) deftask() (Stmt, error) {
	line := p.cur().line
	p.advance() // deftask
	name, err := p.ident("task name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	dt := &DefTask{TaskName: name.text, Line: line}
	dt.Attrs.OutSizeMB = map[string]float64{}
	// Outputs until ':'.
	for !p.at(tokColon) {
		d, err := p.paramDecl()
		if err != nil {
			return nil, err
		}
		if d.Value {
			return nil, p.errorf("output %q cannot be a value parameter", d.Name)
		}
		dt.Outputs = append(dt.Outputs, d)
	}
	if len(dt.Outputs) == 0 {
		return nil, p.errorf("task %q declares no outputs", dt.TaskName)
	}
	p.advance() // ':'
	for !p.at(tokRParen) {
		d, err := p.paramDecl()
		if err != nil {
			return nil, err
		}
		dt.Params = append(dt.Params, d)
	}
	p.advance() // ')'
	seen := map[string]bool{}
	for _, d := range append(append([]ParamDecl{}, dt.Outputs...), dt.Params...) {
		if seen[d.Name] {
			return nil, p.errorf("task %q declares %q twice", dt.TaskName, d.Name)
		}
		seen[d.Name] = true
	}
	// Attributes.
	for p.at(tokAt) {
		p.advance()
		key, err := p.ident("attribute name")
		if err != nil {
			return nil, err
		}
		switch key.text {
		case "cpu", "threads", "mem":
			num, err := p.expect(tokNumber, "number after @"+key.text)
			if err != nil {
				return nil, err
			}
			v, err := strconv.ParseFloat(num.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q: %v", num.text, err)
			}
			switch key.text {
			case "cpu":
				dt.Attrs.CPUSeconds = v
			case "threads":
				dt.Attrs.Threads = int(v)
			case "mem":
				dt.Attrs.MemMB = int(v)
			}
		case "size":
			out, err := p.ident("output name after @size")
			if err != nil {
				return nil, err
			}
			if !seen[out.text] {
				return nil, p.errorf("@size names unknown output %q", out.text)
			}
			num, err := p.expect(tokNumber, "number after @size "+out.text)
			if err != nil {
				return nil, err
			}
			v, err := strconv.ParseFloat(num.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q: %v", num.text, err)
			}
			dt.Attrs.OutSizeMB[out.text] = v
		default:
			return nil, p.errorf("unknown attribute @%s (want @cpu, @threads, @mem, @size)", key.text)
		}
	}
	if err := p.expectKeyword("in"); err != nil {
		return nil, err
	}
	lang, err := p.ident("foreign language name")
	if err != nil {
		return nil, err
	}
	dt.Lang = lang.text
	body, err := p.expect(tokBody, "task body '*{ ... }*'")
	if err != nil {
		return nil, err
	}
	dt.Body = body.text
	return dt, nil
}

func (p *parser) defun() (Stmt, error) {
	line := p.cur().line
	p.advance() // defun
	name, err := p.ident("function name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	df := &DefFun{FunName: name.text, Line: line}
	seen := map[string]bool{}
	for !p.at(tokRParen) {
		id, err := p.ident("function parameter")
		if err != nil {
			return nil, err
		}
		if seen[id.text] {
			return nil, p.errorf("function %q declares %q twice", df.FunName, id.text)
		}
		seen[id.text] = true
		df.Params = append(df.Params, id.text)
	}
	p.advance() // ')'
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	body, err := p.expr()
	if err != nil {
		return nil, err
	}
	df.Body = body
	if _, err := p.expect(tokRBrace, "'}'"); err != nil {
		return nil, err
	}
	return df, nil
}

func (p *parser) let() (Stmt, error) {
	line := p.cur().line
	p.advance() // let
	name, err := p.ident("binding name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEq, "'='"); err != nil {
		return nil, err
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return &Let{Ident: name.text, X: x, Line: line}, nil
}

// expr parses one or more atoms; juxtaposition concatenates lists.
func (p *parser) expr() (Expr, error) {
	first, err := p.atom()
	if err != nil {
		return nil, err
	}
	parts := []Expr{first}
	for p.startsAtom() {
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		parts = append(parts, a)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return &Cat{Parts: parts}, nil
}

// startsAtom reports whether the current token can begin an atom.
func (p *parser) startsAtom() bool {
	switch p.cur().kind {
	case tokString, tokLParen:
		return true
	case tokIdent:
		t := p.cur().text
		return !keywords[t] || t == "nil" || t == "if"
	default:
		return false
	}
}

func (p *parser) atom() (Expr, error) {
	switch {
	case p.at(tokString):
		return &Str{Val: p.advance().text}, nil
	case p.atKeyword("nil"):
		p.advance()
		return &NilLit{}, nil
	case p.atKeyword("if"):
		return p.cond()
	case p.at(tokLParen):
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return x, nil
	case p.at(tokIdent) && !keywords[p.cur().text]:
		id := p.advance()
		if !p.at(tokLParen) {
			return &Ref{Ident: id.text, Line: id.line}, nil
		}
		p.advance() // '('
		ap := &Apply{Callee: id.text, Line: id.line}
		seen := map[string]bool{}
		for !p.at(tokRParen) {
			param, err := p.ident("argument name")
			if err != nil {
				return nil, err
			}
			if seen[param.text] {
				return nil, p.errorf("argument %q given twice", param.text)
			}
			seen[param.text] = true
			if _, err := p.expect(tokColon, "':' after argument name"); err != nil {
				return nil, err
			}
			x, err := p.argExpr()
			if err != nil {
				return nil, err
			}
			ap.Args = append(ap.Args, Arg{Param: param.text, X: x})
		}
		p.advance() // ')'
		if p.at(tokDot) {
			p.advance()
			proj, err := p.ident("output name after '.'")
			if err != nil {
				return nil, err
			}
			ap.Proj = proj.text
		}
		return ap, nil
	default:
		return nil, p.errorf("expected an expression, found %s", p.cur())
	}
}

// argExpr parses an argument value: one or more atoms, but an identifier
// followed by ':' belongs to the next argument, so lookahead stops there.
func (p *parser) argExpr() (Expr, error) {
	var parts []Expr
	for {
		if !p.startsAtom() {
			break
		}
		// Stop if this identifier introduces the next named argument.
		if p.at(tokIdent) && !keywords[p.cur().text] &&
			p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokColon {
			break
		}
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		parts = append(parts, a)
	}
	switch len(parts) {
	case 0:
		return nil, p.errorf("expected an argument value, found %s", p.cur())
	case 1:
		return parts[0], nil
	default:
		return &Cat{Parts: parts}, nil
	}
}

func (p *parser) cond() (Expr, error) {
	line := p.cur().line
	p.advance() // if
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("then"); err != nil {
		return nil, err
	}
	then, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("else"); err != nil {
		return nil, err
	}
	els, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	return &If{Cond: cond, Then: then, Else: els, Line: line}, nil
}
