package cuneiform

import (
	"os"
	"testing"
)

// FuzzParse throws arbitrary bytes at the Cuneiform lexer, parser, and
// evaluator: no input may panic or hang, and any program that parses must
// also survive DAG construction. Seeds come from the shipped example
// workflow plus minimal valid and deliberately malformed snippets.
func FuzzParse(f *testing.F) {
	if demo, err := os.ReadFile("../../../examples/demo.cf"); err == nil {
		f.Add(string(demo))
	}
	f.Add(`deftask gen( out : ~x ) @cpu 30 in bash *{ synthesize }*` + "\n" + `gen( x: "1" );`)
	f.Add(`deftask join( out : a b ) in bash *{ cat $a $b > $out }*`)
	f.Add(`join( a: gen( x: "1" ) b: gen( x: "2" ) );`)
	f.Add(`%% comment only`)
	f.Add(`deftask broken( out :`)
	f.Add(`*{ unterminated body`)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		if prog == nil {
			t.Fatal("Parse returned nil program and nil error")
		}
		// A program that parses must evaluate without panicking (errors are
		// fine: undefined tasks, arity mismatches, …).
		_, _ = NewDriver("fuzz", src).Parse()
	})
}
