package cuneiform

import (
	"strings"
	"testing"

	"hiway/internal/wf"
)

// drainAll completes every ready task with declared outputs until the
// workflow finishes or stalls, returning the executed task names.
func drainAll(t *testing.T, d *Driver, ready []*wf.Task) []string {
	t.Helper()
	var names []string
	queue := ready
	for len(queue) > 0 {
		task := queue[0]
		queue = queue[1:]
		names = append(names, task.Name)
		next, err := d.OnTaskComplete(completeOK(task, nil))
		if err != nil {
			t.Fatal(err)
		}
		queue = append(queue, next...)
	}
	return names
}

func TestNestedFunctionComposition(t *testing.T) {
	d := NewDriver("nest", `
deftask a( out : inp ) in bash *{ x }*
defun twice( v ) { a( inp: a( inp: v ) ) }
defun quad( v ) { twice( v: twice( v: v ) ) }
quad( v: "seed" );`)
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	names := drainAll(t, d, ready)
	if len(names) != 4 {
		t.Fatalf("quad should chain 4 tasks, ran %d", len(names))
	}
	if !d.Done() {
		t.Fatal("not done")
	}
}

func TestIfElseChain(t *testing.T) {
	d := NewDriver("chain", `
let empty = nil;
let full = "x";
if empty then "a" else if full then "b" else "c" end end;`)
	if _, err := d.Parse(); err != nil {
		t.Fatal(err)
	}
	if got := d.Outputs(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("outputs = %v, want [b]", got)
	}
}

func TestLetShadowingLaterBindingWins(t *testing.T) {
	d := NewDriver("shadow", `
let x = "first";
let x = "second";
x;`)
	if _, err := d.Parse(); err != nil {
		t.Fatal(err)
	}
	if got := d.Outputs(); len(got) != 1 || got[0] != "second" {
		t.Fatalf("outputs = %v", got)
	}
}

func TestProjectionInsideFunction(t *testing.T) {
	d := NewDriver("projfun", `
deftask split( head tail : inp ) in bash *{ x }*
defun rest( v ) { split( inp: v ).tail }
rest( v: "seed" );`)
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	task := ready[0]
	if _, err := d.OnTaskComplete(completeOK(task, nil)); err != nil {
		t.Fatal(err)
	}
	outs := d.Outputs()
	if len(outs) != 1 || outs[0] != task.Declared["tail"][0].Path {
		t.Fatalf("outputs = %v, want the tail output", outs)
	}
}

func TestAggregateConsumesMapResult(t *testing.T) {
	// The aggregate join consumes the full mapped list; it must only
	// spawn once every element exists.
	d := NewDriver("aggmap", `
deftask work( out : inp ) in bash *{ x }*
deftask join( out : <parts> ) in bash *{ y }*
join( parts: work( inp: "a" "b" "c" ) );`)
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 3 {
		t.Fatalf("ready = %d", len(ready))
	}
	// Completing only two of the three must not release the join.
	if next, _ := d.OnTaskComplete(completeOK(ready[0], nil)); len(next) != 0 {
		t.Fatalf("join released early: %v", next)
	}
	if next, _ := d.OnTaskComplete(completeOK(ready[1], nil)); len(next) != 0 {
		t.Fatal("join released early")
	}
	next, err := d.OnTaskComplete(completeOK(ready[2], nil))
	if err != nil || len(next) != 1 || next[0].Name != "join" {
		t.Fatalf("join not released: %v %v", next, err)
	}
	if len(next[0].Inputs) != 3 {
		t.Fatalf("join inputs = %v", next[0].Inputs)
	}
}

func TestEmptyStringLiteralIsAValue(t *testing.T) {
	d := NewDriver("empty", `
let x = "";
if x then "nonempty" else "empty" end;`)
	if _, err := d.Parse(); err != nil {
		t.Fatal(err)
	}
	// An empty *string* is still one list element: the condition is a
	// non-empty list.
	if got := d.Outputs(); len(got) != 1 || got[0] != "nonempty" {
		t.Fatalf("outputs = %v", got)
	}
}

func TestCommentsAndWhitespaceEverywhere(t *testing.T) {
	d := NewDriver("comments", `
%% leading comment
deftask a( out : inp ) %% trailing after params
  @cpu 5 %% attr comment
  in bash *{ body %% not a comment inside body }*
%% between statements

a( inp: "s" ); %% after target`)
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 1 {
		t.Fatalf("ready = %d", len(ready))
	}
	if !strings.Contains(ready[0].Command, "%% not a comment inside body") {
		t.Fatalf("body mangled: %q", ready[0].Command)
	}
}

func TestTargetsEvaluateInOrder(t *testing.T) {
	d := NewDriver("multi", `
let a = "1";
a;
let b = a "2";
b;`)
	if _, err := d.Parse(); err != nil {
		t.Fatal(err)
	}
	got := d.Outputs()
	want := []string{"1", "1", "2"}
	if len(got) != len(want) {
		t.Fatalf("outputs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("outputs = %v, want %v", got, want)
		}
	}
}
