package cuneiform

import (
	"fmt"
	"strings"
	"testing"

	"hiway/internal/wf"
)

// completeOK fabricates a successful result for t. Aggregate output params
// receive the paths given in agg[param]; plain params produce their
// declared file.
func completeOK(t *wf.Task, agg map[string][]string) *wf.TaskResult {
	outs := make(map[string][]wf.FileInfo)
	for _, p := range t.OutputParams {
		if paths, ok := agg[p]; ok {
			for _, path := range paths {
				outs[p] = append(outs[p], wf.FileInfo{Path: path, SizeMB: 1})
			}
			continue
		}
		outs[p] = append([]wf.FileInfo(nil), t.Declared[p]...)
	}
	return &wf.TaskResult{Task: t, Outputs: outs}
}

func TestLexerBasics(t *testing.T) {
	toks, err := lexAll(`deftask a( x : y ) in bash *{ echo "hi" }* %% comment
let z = "a\n\"b";`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	// deftask a ( x : y ) in bash BODY let z = STRING ; EOF
	want := []tokenKind{tokIdent, tokIdent, tokLParen, tokIdent, tokColon, tokIdent,
		tokRParen, tokIdent, tokIdent, tokBody, tokIdent, tokIdent, tokEq, tokString, tokSemi, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if toks[13].text != "a\n\"b" {
		t.Fatalf("string = %q", toks[13].text)
	}
	if toks[9].text != `echo "hi"` {
		t.Fatalf("body = %q", toks[9].text)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `*{ unterminated`, `"bad \q escape"`, "?"} {
		if _, err := lexAll(src); err == nil {
			t.Fatalf("lexAll(%q) should fail", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                                             // empty
		`deftask t( : x ) in bash *{}*`,                // no outputs
		`deftask t( o o : x ) in bash *{}*`,            // dup name
		`deftask t( o : ~o2 x x ) in bash *{}*`,        // dup param
		`deftask t( ~o : x ) in bash *{}*`,             // value output
		`deftask t( o : x ) @bogus 3 in bash *{}*`,     // bad attr
		`deftask t( o : x ) @size nope 3 in bash *{}*`, // size of unknown output
		`deftask t( o : x ) in bash { }`,               // not a body literal
		`defun f( a a ) { a }`,                         // dup fun param
		`let x = ;`,                                    // missing expr
		`let x "a";`,                                   // missing =
		`"target"`,                                     // missing ;
		`f( x "a" );`,                                  // missing :
		`f( x: "a" x: "b" );`,                          // dup arg
		`if "a" then "b" end;`,                         // missing else
		`let x = f( y: "a" ).;`,                        // missing proj name
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseDeftaskAttrs(t *testing.T) {
	prog, err := Parse(`
deftask align( bam sai : fastq <refs> ~threads ) @cpu 120.5 @threads 4 @mem 2048 @size bam 300 in bash *{
  bowtie2
}*
"x";`)
	if err != nil {
		t.Fatal(err)
	}
	dt := prog.Stmts[0].(*DefTask)
	if dt.TaskName != "align" || dt.Lang != "bash" || dt.Body != "bowtie2" {
		t.Fatalf("deftask = %+v", dt)
	}
	if len(dt.Outputs) != 2 || dt.Outputs[0].Name != "bam" || dt.Outputs[1].Name != "sai" {
		t.Fatalf("outputs = %+v", dt.Outputs)
	}
	if len(dt.Params) != 3 || !dt.Params[1].Aggregate || !dt.Params[2].Value {
		t.Fatalf("params = %+v", dt.Params)
	}
	if dt.Attrs.CPUSeconds != 120.5 || dt.Attrs.Threads != 4 || dt.Attrs.MemMB != 2048 {
		t.Fatalf("attrs = %+v", dt.Attrs)
	}
	if dt.Attrs.OutSizeMB["bam"] != 300 {
		t.Fatalf("size = %+v", dt.Attrs.OutSizeMB)
	}
}

func TestSimpleChain(t *testing.T) {
	d := NewDriver("chain", `
deftask a( out : inp ) @cpu 10 in bash *{ tool-a $inp > $out }*
deftask b( out : inp ) @cpu 20 in bash *{ tool-b $inp > $out }*
b( inp: a( inp: "seed.txt" ) );`)
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 1 || ready[0].Name != "a" {
		t.Fatalf("ready = %v", ready)
	}
	ta := ready[0]
	if len(ta.Inputs) != 1 || ta.Inputs[0] != "seed.txt" {
		t.Fatalf("a inputs = %v", ta.Inputs)
	}
	if ta.CPUSeconds != 10 || ta.Threads != 1 {
		t.Fatalf("a profile: %+v", ta)
	}
	if d.Done() {
		t.Fatal("done too early")
	}
	next, err := d.OnTaskComplete(completeOK(ta, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(next) != 1 || next[0].Name != "b" {
		t.Fatalf("next = %v", next)
	}
	tb := next[0]
	if len(tb.Inputs) != 1 || tb.Inputs[0] != ta.Declared["out"][0].Path {
		t.Fatalf("b should consume a's output: %v", tb.Inputs)
	}
	next, err = d.OnTaskComplete(completeOK(tb, nil))
	if err != nil || len(next) != 0 {
		t.Fatalf("final: %v %v", next, err)
	}
	if !d.Done() {
		t.Fatal("should be done")
	}
	outs := d.Outputs()
	if len(outs) != 1 || outs[0] != tb.Declared["out"][0].Path {
		t.Fatalf("outputs = %v", outs)
	}
}

func TestImplicitMapCartesian(t *testing.T) {
	d := NewDriver("map", `
deftask align( bam : fastq ref ) in bash *{ x }*
let reads = "a.fq" "b.fq" "c.fq";
let refs = "hg19" "hg38";
align( fastq: reads ref: refs );`)
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 6 {
		t.Fatalf("cartesian 3x2 should spawn 6 tasks, got %d", len(ready))
	}
	// Complete all; workflow output should have 6 entries in order.
	for _, task := range ready {
		if _, err := d.OnTaskComplete(completeOK(task, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Done() {
		t.Fatal("should be done")
	}
	if got := d.Outputs(); len(got) != 6 {
		t.Fatalf("outputs = %v", got)
	}
	// First task binds the first element of each list.
	if ready[0].Env["fastq"] != "a.fq" || ready[0].Env["ref"] != "hg19" {
		t.Fatalf("first combo env = %v", ready[0].Env)
	}
	last := ready[5]
	if last.Env["fastq"] != "c.fq" || last.Env["ref"] != "hg38" {
		t.Fatalf("last combo env = %v", last.Env)
	}
}

func TestAggregateParameterGetsWholeList(t *testing.T) {
	d := NewDriver("agg", `
deftask merge( out : <parts> ) in bash *{ cat $parts > $out }*
let parts = "p1" "p2" "p3";
merge( parts: parts );`)
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 1 {
		t.Fatalf("aggregate param must not map: %d tasks", len(ready))
	}
	if got := ready[0].Inputs; len(got) != 3 {
		t.Fatalf("inputs = %v", got)
	}
	if ready[0].Env["parts"] != "p1 p2 p3" {
		t.Fatalf("env = %v", ready[0].Env)
	}
}

func TestValueParamNotStaged(t *testing.T) {
	d := NewDriver("val", `
deftask filt( out : inp ~threshold ) in bash *{ x }*
filt( inp: "data.csv" threshold: "0.05" );`)
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	task := ready[0]
	if len(task.Inputs) != 1 || task.Inputs[0] != "data.csv" {
		t.Fatalf("value param must not be an input: %v", task.Inputs)
	}
	if task.Env["threshold"] != "0.05" {
		t.Fatalf("env = %v", task.Env)
	}
}

func TestMemoizationDeduplicatesApplications(t *testing.T) {
	d := NewDriver("memo", `
deftask a( out : inp ) in bash *{ x }*
let one = a( inp: "seed" );
let two = a( inp: "seed" );
one two;`)
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 1 {
		t.Fatalf("identical applications must be memoized, got %d tasks", len(ready))
	}
	if _, err := d.OnTaskComplete(completeOK(ready[0], nil)); err != nil {
		t.Fatal(err)
	}
	if !d.Done() {
		t.Fatal("should be done")
	}
	if got := d.Outputs(); len(got) != 2 || got[0] != got[1] {
		t.Fatalf("outputs = %v", got)
	}
}

func TestProjectionSelectsOutput(t *testing.T) {
	d := NewDriver("proj", `
deftask align( bam log : inp ) in bash *{ x }*
align( inp: "a" ).log;`)
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	task := ready[0]
	if _, err := d.OnTaskComplete(completeOK(task, nil)); err != nil {
		t.Fatal(err)
	}
	outs := d.Outputs()
	if len(outs) != 1 || outs[0] != task.Declared["log"][0].Path {
		t.Fatalf("projection picked %v, want log output", outs)
	}
}

func TestConditionalOnEmptyAggregateOutput(t *testing.T) {
	// check produces an aggregate flag; empty means "converged".
	src := `
deftask check( <flag> : inp ) in bash *{ x }*
if check( inp: "data" ) then "not-converged" else "converged" end;`
	// Case 1: non-empty flag.
	d := NewDriver("cond1", src)
	ready, _ := d.Parse()
	if len(ready) != 1 {
		t.Fatalf("ready = %v", ready)
	}
	if _, err := d.OnTaskComplete(completeOK(ready[0], map[string][]string{"flag": {"more"}})); err != nil {
		t.Fatal(err)
	}
	if got := d.Outputs(); len(got) != 1 || got[0] != "not-converged" {
		t.Fatalf("outputs = %v", got)
	}
	// Case 2: empty flag.
	d2 := NewDriver("cond2", src)
	ready2, _ := d2.Parse()
	if _, err := d2.OnTaskComplete(completeOK(ready2[0], map[string][]string{"flag": {}})); err != nil {
		t.Fatal(err)
	}
	if got := d2.Outputs(); len(got) != 1 || got[0] != "converged" {
		t.Fatalf("outputs = %v", got)
	}
	if !d2.Done() {
		t.Fatal("should be done")
	}
}

// TestIterativeRecursion drives a k-means-style unbounded loop: step
// refines the state, check signals continuation through a non-empty
// aggregate output. The simulated "tool" converges after three refinements.
func TestIterativeRecursion(t *testing.T) {
	d := NewDriver("kmeans", `
deftask step( out : cur ) in bash *{ refine }*
deftask check( <flag> : cur ) in bash *{ converged? }*
defun loop( cur ) {
  if check( cur: cur ) then loop( cur: step( cur: cur ) ) else cur end
}
loop( cur: "init" );`)
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	iterations := 0
	var lastState string = "init"
	for !d.Done() {
		if len(ready) == 0 {
			t.Fatalf("deadlock: not done but no ready tasks (pending=%d)", d.Pending())
		}
		var next []*wf.Task
		for _, task := range ready {
			var res *wf.TaskResult
			switch task.Name {
			case "check":
				if iterations < 3 {
					res = completeOK(task, map[string][]string{"flag": {"more"}})
				} else {
					res = completeOK(task, map[string][]string{"flag": {}})
				}
			case "step":
				iterations++
				res = completeOK(task, nil)
				lastState = task.Declared["out"][0].Path
			default:
				t.Fatalf("unexpected task %s", task.Name)
			}
			more, err := d.OnTaskComplete(res)
			if err != nil {
				t.Fatal(err)
			}
			next = append(next, more...)
		}
		ready = next
	}
	if iterations != 3 {
		t.Fatalf("iterations = %d, want 3", iterations)
	}
	outs := d.Outputs()
	if len(outs) != 1 || outs[0] != lastState {
		t.Fatalf("outputs = %v, want final state %s", outs, lastState)
	}
}

func TestMapOverEmptyListYieldsNoTasks(t *testing.T) {
	d := NewDriver("empty", `
deftask a( out : inp ) in bash *{ x }*
a( inp: nil );`)
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 0 {
		t.Fatalf("map over nil spawned %d tasks", len(ready))
	}
	if !d.Done() {
		t.Fatal("workflow with no work should be done")
	}
	if got := d.Outputs(); len(got) != 0 {
		t.Fatalf("outputs = %v", got)
	}
}

func TestDefunNamedArgsAndConcat(t *testing.T) {
	d := NewDriver("fun", `
defun pair( a b ) { a b a }
pair( a: "x" b: "y" "z" );`)
	if _, err := d.Parse(); err != nil {
		t.Fatal(err)
	}
	got := d.Outputs()
	want := []string{"x", "y", "z", "x"}
	if len(got) != len(want) {
		t.Fatalf("outputs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("outputs = %v, want %v", got, want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	cases := map[string]string{
		"undefined name":     `unknown;`,
		"unknown callee":     `f( x: "a" );`,
		"missing param":      `deftask a( o : x y ) in bash *{}*` + "\n" + `a( x: "1" );`,
		"unknown param":      `deftask a( o : x ) in bash *{}*` + "\n" + `a( x: "1" z: "2" );`,
		"missing fun arg":    `defun f( a b ) { a }` + "\n" + `f( a: "1" );`,
		"extra fun arg":      `defun f( a ) { a }` + "\n" + `f( a: "1" b: "2" );`,
		"project fun":        `defun f( a ) { a }` + "\n" + `f( a: "1" ).out;`,
		"project unknown":    `deftask a( o : x ) in bash *{}*` + "\n" + `a( x: "1" ).nope;`,
		"duplicate deftask":  `deftask a( o : x ) in bash *{}*` + "\n" + `deftask a( o : x ) in bash *{}*` + "\n" + `"t";`,
		"duplicate defun":    `defun f( a ) { a }` + "\n" + `defun f( a ) { a }` + "\n" + `"t";`,
		"task and fun clash": `deftask f( o : x ) in bash *{}*` + "\n" + `defun f( a ) { a }` + "\n" + `"t";`,
		"no target":          `deftask a( o : x ) in bash *{}*`,
	}
	for name, src := range cases {
		d := NewDriver("err", src)
		if _, err := d.Parse(); err == nil {
			t.Errorf("%s: Parse should fail", name)
		}
	}
}

func TestUnguardedRecursionCaught(t *testing.T) {
	d := NewDriver("rec", `
defun f( a ) { f( a: a ) }
f( a: "x" );`)
	_, err := d.Parse()
	if err == nil || !strings.Contains(err.Error(), "recursion") {
		t.Fatalf("expected recursion error, got %v", err)
	}
}

func TestFailedTaskSurfacesError(t *testing.T) {
	d := NewDriver("fail", `
deftask a( out : inp ) in bash *{ x }*
a( inp: "seed" );`)
	ready, _ := d.Parse()
	res := &wf.TaskResult{Task: ready[0], ExitCode: 1, Outputs: map[string][]wf.FileInfo{}}
	if _, err := d.OnTaskComplete(res); err == nil {
		t.Fatal("failed task must produce an error")
	}
}

func TestOnTaskCompleteUnknownTask(t *testing.T) {
	d := NewDriver("x", `"t";`)
	if _, err := d.Parse(); err != nil {
		t.Fatal(err)
	}
	bogus := wf.NewTask("ghost", nil, nil)
	if _, err := d.OnTaskComplete(&wf.TaskResult{Task: bogus}); err == nil {
		t.Fatal("unknown task must error")
	}
	d2 := NewDriver("y", `"t";`)
	if _, err := d2.OnTaskComplete(&wf.TaskResult{Task: bogus}); err == nil {
		t.Fatal("OnTaskComplete before Parse must error")
	}
}

func TestLargeFanOut(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`deftask a( out : inp ) in bash *{ x }*` + "\n" + `let xs = `)
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "%q ", fmt.Sprintf("f%03d", i))
	}
	sb.WriteString(";\na( inp: xs );")
	d := NewDriver("fan", sb.String())
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 200 {
		t.Fatalf("fan-out = %d, want 200", len(ready))
	}
	for _, task := range ready {
		if _, err := d.OnTaskComplete(completeOK(task, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Done() || len(d.Outputs()) != 200 {
		t.Fatalf("done=%v outputs=%d", d.Done(), len(d.Outputs()))
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("My Workflow/1.0"); got != "My_Workflow_1_0" {
		t.Fatalf("sanitize = %q", got)
	}
}
