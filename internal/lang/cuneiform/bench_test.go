package cuneiform

import (
	"fmt"
	"strings"
	"testing"

	"hiway/internal/wf"
)

func benchSource(files int) string {
	var sb strings.Builder
	sb.WriteString(`deftask align( bam : fastq ref ) @cpu 100 in bash *{ bowtie2 }*
deftask merge( out : <parts> ) @cpu 10 in bash *{ samtools merge }*
let reads = `)
	for i := 0; i < files; i++ {
		fmt.Fprintf(&sb, "%q ", fmt.Sprintf("r%04d.fq", i))
	}
	sb.WriteString(";\nmerge( parts: align( fastq: reads ref: \"hg38\" ) );")
	return sb.String()
}

func BenchmarkParse(b *testing.B) {
	src := benchSource(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateWorkflow measures the full driver lifecycle: parse,
// fan-out, completion-driven re-evaluation, join.
func BenchmarkEvaluateWorkflow(b *testing.B) {
	src := benchSource(100)
	for i := 0; i < b.N; i++ {
		d := NewDriver("bench", src)
		ready, err := d.Parse()
		if err != nil {
			b.Fatal(err)
		}
		queue := ready
		for len(queue) > 0 {
			task := queue[0]
			queue = queue[1:]
			next, err := d.OnTaskComplete(completeOK(task, nil))
			if err != nil {
				b.Fatal(err)
			}
			queue = append(queue, next...)
		}
		if !d.Done() {
			b.Fatal("not done")
		}
	}
}

var benchSink []*wf.Task

// BenchmarkIterativeLoop measures re-evaluation cost of a 20-iteration
// recursive workflow.
func BenchmarkIterativeLoop(b *testing.B) {
	src := `
deftask step( out : cur ) in bash *{ s }*
deftask check( <flag> : cur ) in bash *{ c }*
defun loop( cur ) {
  if check( cur: cur ) then loop( cur: step( cur: cur ) ) else cur end
}
loop( cur: "init" );`
	for i := 0; i < b.N; i++ {
		d := NewDriver("bench", src)
		ready, err := d.Parse()
		if err != nil {
			b.Fatal(err)
		}
		iter := 0
		queue := ready
		for len(queue) > 0 {
			task := queue[0]
			queue = queue[1:]
			var res *wf.TaskResult
			if task.Name == "check" {
				if iter < 20 {
					res = completeOK(task, map[string][]string{"flag": {"go"}})
				} else {
					res = completeOK(task, map[string][]string{"flag": {}})
				}
			} else {
				iter++
				res = completeOK(task, nil)
			}
			next, err := d.OnTaskComplete(res)
			if err != nil {
				b.Fatal(err)
			}
			queue = append(queue, next...)
			benchSink = queue
		}
	}
}
