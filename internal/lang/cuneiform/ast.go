package cuneiform

// AST node types. Statements appear at the top level of a program;
// expressions always evaluate to a (possibly not-yet-concrete) list of
// strings.

// Program is a parsed workflow.
type Program struct {
	Stmts []Stmt
}

// Stmt is a top-level statement.
type Stmt interface{ stmt() }

// ParamDecl declares one task parameter or output.
type ParamDecl struct {
	Name      string
	Aggregate bool // <p>: receives / produces a whole list
	Value     bool // ~p: a plain value, not a staged file
}

// TaskAttrs carries the resource profile annotations of a task definition,
// consumed by the simulated substrate in place of running the real tool.
type TaskAttrs struct {
	CPUSeconds float64            // @cpu n: reference core-seconds
	Threads    int                // @threads n
	MemMB      int                // @mem n
	OutSizeMB  map[string]float64 // @size out n: produced size per output
}

// DefTask defines a black-box task: named outputs, named parameters, the
// foreign language, and the raw body.
type DefTask struct {
	TaskName string
	Outputs  []ParamDecl
	Params   []ParamDecl
	Lang     string
	Body     string
	Attrs    TaskAttrs
	Line     int
}

// DefFun defines a native function (call-by-name macro with named
// arguments); recursion is permitted.
type DefFun struct {
	FunName string
	Params  []string
	Body    Expr
	Line    int
}

// Let binds a name to an expression's value.
type Let struct {
	Ident string
	X     Expr
	Line  int
}

// Target is a top-level query expression; its value is a workflow output.
type Target struct {
	X    Expr
	Line int
}

func (*DefTask) stmt() {}
func (*DefFun) stmt()  {}
func (*Let) stmt()     {}
func (*Target) stmt()  {}

// Expr is an expression node.
type Expr interface{ expr() }

// Str is a string literal (a one-element list).
type Str struct {
	Val string
}

// NilLit is the empty list.
type NilLit struct{}

// Ref reads a let binding or function parameter.
type Ref struct {
	Ident string
	Line  int
}

// Cat concatenates the values of its parts.
type Cat struct {
	Parts []Expr
}

// Arg is one named argument of an application.
type Arg struct {
	Param string
	X     Expr
}

// Apply invokes a task or function with named arguments. For task
// applications Proj selects which output parameter the expression evaluates
// to (default: the first declared output).
type Apply struct {
	Callee string
	Args   []Arg
	Proj   string
	Line   int
}

// If evaluates Then when the condition list is non-empty, Else otherwise —
// Cuneiform's Boolean convention.
type If struct {
	Cond, Then, Else Expr
	Line             int
}

func (*Str) expr()    {}
func (*NilLit) expr() {}
func (*Ref) expr()    {}
func (*Cat) expr()    {}
func (*Apply) expr()  {}
func (*If) expr()     {}
