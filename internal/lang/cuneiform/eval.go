package cuneiform

import (
	"fmt"
	"sort"
	"strings"

	"hiway/internal/wf"
)

// maxFunDepth bounds nested function expansion within one evaluation pass,
// catching unguarded recursion (defun f(x){ f(x: x) }) that would otherwise
// expand forever. Guarded recursion never nests deeply: a conditional whose
// condition waits on a task yields a hole and stops expanding.
const maxFunDepth = 10_000

// item is one element-or-hole of a value. A hole stands for the unknown
// result of a task invocation that has not completed yet; values containing
// holes are re-derived on the next evaluation pass.
type item struct {
	s    string
	hole bool
}

// value is the result of evaluating an expression: a list of strings,
// possibly interrupted by holes.
type value []item

func strVal(ss ...string) value {
	v := make(value, len(ss))
	for i, s := range ss {
		v[i] = item{s: s}
	}
	return v
}

var holeVal = value{{hole: true}}

func (v value) concrete() bool {
	for _, it := range v {
		if it.hole {
			return false
		}
	}
	return true
}

func (v value) strings() []string {
	out := make([]string, 0, len(v))
	for _, it := range v {
		if !it.hole {
			out = append(out, it.s)
		}
	}
	return out
}

// invocation is one memoized task application: a unique combination of task
// definition and concrete argument values. It is issued as a wf.Task exactly
// once; re-evaluation passes find it here instead of spawning a duplicate.
type invocation struct {
	key      string
	task     *wf.Task
	def      *DefTask
	resolved bool
	outputs  map[string][]string // output param → produced paths
}

// Driver evaluates a Cuneiform workflow incrementally, implementing
// wf.Driver. It deliberately does not implement wf.StaticDriver: the task
// graph of an iterative workflow is unknowable upfront (§3.4).
type Driver struct {
	name string
	src  string

	prog  *Program
	tasks map[string]*DefTask
	funs  map[string]*DefFun

	invocations map[string]*invocation
	byTaskID    map[int64]*invocation
	unresolved  int // count of invocations not yet resolved (O(1) Done)

	newTasks []*wf.Task
	targets  []value
	funDepth int
	parsed   bool
}

// NewDriver creates a driver for the given workflow source.
func NewDriver(name, src string) *Driver {
	return &Driver{
		name:        name,
		src:         src,
		tasks:       make(map[string]*DefTask),
		funs:        make(map[string]*DefFun),
		invocations: make(map[string]*invocation),
		byTaskID:    make(map[int64]*invocation),
	}
}

// Name implements wf.Driver.
func (d *Driver) Name() string { return d.name }

// Parse implements wf.Driver: it parses the source, checks definitions, and
// runs the first evaluation pass, returning the initially ready tasks.
func (d *Driver) Parse() ([]*wf.Task, error) {
	prog, err := Parse(d.src)
	if err != nil {
		return nil, err
	}
	d.prog = prog
	for _, st := range prog.Stmts {
		switch s := st.(type) {
		case *DefTask:
			if _, dup := d.tasks[s.TaskName]; dup {
				return nil, fmt.Errorf("cuneiform: task %q defined twice", s.TaskName)
			}
			if _, dup := d.funs[s.TaskName]; dup {
				return nil, fmt.Errorf("cuneiform: %q defined as both task and function", s.TaskName)
			}
			d.tasks[s.TaskName] = s
		case *DefFun:
			if _, dup := d.funs[s.FunName]; dup {
				return nil, fmt.Errorf("cuneiform: function %q defined twice", s.FunName)
			}
			if _, dup := d.tasks[s.FunName]; dup {
				return nil, fmt.Errorf("cuneiform: %q defined as both task and function", s.FunName)
			}
			d.funs[s.FunName] = s
		}
	}
	d.parsed = true
	return d.evaluate()
}

// OnTaskComplete implements wf.Driver: it resolves the invocation's output
// futures and re-evaluates the program, returning newly discovered tasks.
func (d *Driver) OnTaskComplete(res *wf.TaskResult) ([]*wf.Task, error) {
	if !d.parsed {
		return nil, fmt.Errorf("cuneiform: OnTaskComplete before Parse")
	}
	inv, ok := d.byTaskID[res.Task.ID]
	if !ok {
		return nil, fmt.Errorf("cuneiform: result for unknown task %d", res.Task.ID)
	}
	if !res.Succeeded() {
		return nil, fmt.Errorf("cuneiform: task %s failed (exit %d): %s", res.Task, res.ExitCode, res.Error)
	}
	if !inv.resolved {
		d.unresolved--
	}
	inv.resolved = true
	inv.outputs = make(map[string][]string, len(inv.def.Outputs))
	for _, o := range inv.def.Outputs {
		fis := res.Outputs[o.Name]
		paths := make([]string, len(fis))
		for i, fi := range fis {
			paths[i] = fi.Path
		}
		inv.outputs[o.Name] = paths
	}
	return d.evaluate()
}

// Done implements wf.Driver: the workflow is finished when no invocation is
// pending and every target value is concrete. The pending count is tracked
// incrementally so this is O(targets), not O(invocations) — it runs after
// every task completion.
func (d *Driver) Done() bool {
	if !d.parsed || d.unresolved > 0 {
		return false
	}
	for _, t := range d.targets {
		if !t.concrete() {
			return false
		}
	}
	return true
}

// Outputs implements wf.Driver: the concrete strings of all target values.
func (d *Driver) Outputs() []string {
	var out []string
	for _, t := range d.targets {
		out = append(out, t.strings()...)
	}
	return out
}

// Pending returns the number of unresolved invocations (for diagnostics).
func (d *Driver) Pending() int {
	n := 0
	for _, inv := range d.invocations {
		if !inv.resolved {
			n++
		}
	}
	return n
}

// evaluate runs one full evaluation pass over the program, collecting
// freshly issued tasks.
func (d *Driver) evaluate() ([]*wf.Task, error) {
	d.newTasks = nil
	d.targets = nil
	d.funDepth = 0
	env := make(map[string]value)
	for _, st := range d.prog.Stmts {
		switch s := st.(type) {
		case *Let:
			v, err := d.eval(s.X, env)
			if err != nil {
				return nil, err
			}
			env[s.Ident] = v
		case *Target:
			v, err := d.eval(s.X, env)
			if err != nil {
				return nil, err
			}
			d.targets = append(d.targets, v)
		}
	}
	if len(d.targets) == 0 {
		return nil, fmt.Errorf("cuneiform: workflow %q has no target expression", d.name)
	}
	return d.newTasks, nil
}

func (d *Driver) eval(x Expr, env map[string]value) (value, error) {
	switch e := x.(type) {
	case *Str:
		return strVal(e.Val), nil
	case *NilLit:
		return value{}, nil
	case *Ref:
		v, ok := env[e.Ident]
		if !ok {
			return nil, fmt.Errorf("cuneiform: %d: undefined name %q", e.Line, e.Ident)
		}
		return v, nil
	case *Cat:
		var out value
		for _, part := range e.Parts {
			v, err := d.eval(part, env)
			if err != nil {
				return nil, err
			}
			out = append(out, v...)
		}
		return out, nil
	case *If:
		cond, err := d.eval(e.Cond, env)
		if err != nil {
			return nil, err
		}
		if !cond.concrete() {
			return holeVal, nil
		}
		if len(cond) > 0 {
			return d.eval(e.Then, env)
		}
		return d.eval(e.Else, env)
	case *Apply:
		return d.apply(e, env)
	default:
		return nil, fmt.Errorf("cuneiform: unknown expression %T", x)
	}
}

func (d *Driver) apply(e *Apply, env map[string]value) (value, error) {
	if fn, ok := d.funs[e.Callee]; ok {
		return d.applyFun(e, fn, env)
	}
	def, ok := d.tasks[e.Callee]
	if !ok {
		return nil, fmt.Errorf("cuneiform: %d: %q is not a defined task or function", e.Line, e.Callee)
	}
	return d.applyTask(e, def, env)
}

func (d *Driver) applyFun(e *Apply, fn *DefFun, env map[string]value) (value, error) {
	if e.Proj != "" {
		return nil, fmt.Errorf("cuneiform: %d: cannot project output %q of function %q", e.Line, e.Proj, fn.FunName)
	}
	callEnv := make(map[string]value, len(fn.Params))
	given := make(map[string]bool, len(e.Args))
	for _, a := range e.Args {
		v, err := d.eval(a.X, env)
		if err != nil {
			return nil, err
		}
		callEnv[a.Param] = v
		given[a.Param] = true
	}
	for _, p := range fn.Params {
		if !given[p] {
			return nil, fmt.Errorf("cuneiform: %d: call of %q misses argument %q", e.Line, fn.FunName, p)
		}
		delete(given, p)
	}
	for extra := range given {
		return nil, fmt.Errorf("cuneiform: %d: call of %q has unknown argument %q", e.Line, fn.FunName, extra)
	}
	d.funDepth++
	defer func() { d.funDepth-- }()
	if d.funDepth > maxFunDepth {
		return nil, fmt.Errorf("cuneiform: function expansion exceeded depth %d — unguarded recursion in %q?", maxFunDepth, fn.FunName)
	}
	return d.eval(fn.Body, callEnv)
}

func (d *Driver) applyTask(e *Apply, def *DefTask, env map[string]value) (value, error) {
	proj := e.Proj
	if proj == "" {
		proj = def.Outputs[0].Name
	}
	var projDecl *ParamDecl
	for i := range def.Outputs {
		if def.Outputs[i].Name == proj {
			projDecl = &def.Outputs[i]
		}
	}
	if projDecl == nil {
		return nil, fmt.Errorf("cuneiform: %d: task %q has no output %q", e.Line, def.TaskName, proj)
	}

	// Evaluate arguments and match them to declared parameters.
	args := make(map[string]value, len(e.Args))
	for _, a := range e.Args {
		v, err := d.eval(a.X, env)
		if err != nil {
			return nil, err
		}
		args[a.Param] = v
	}
	decl := make(map[string]ParamDecl, len(def.Params))
	for _, pd := range def.Params {
		decl[pd.Name] = pd
		if _, ok := args[pd.Name]; !ok {
			return nil, fmt.Errorf("cuneiform: %d: application of %q misses parameter %q", e.Line, def.TaskName, pd.Name)
		}
	}
	for name := range args {
		if _, ok := decl[name]; !ok {
			return nil, fmt.Errorf("cuneiform: %d: task %q has no parameter %q", e.Line, def.TaskName, name)
		}
	}
	// Any hole blocks enumeration of combinations.
	for _, pd := range def.Params {
		if !args[pd.Name].concrete() {
			return holeVal, nil
		}
	}

	// Cartesian product over non-aggregate parameters (Cuneiform's
	// implicit map). Aggregate parameters bind their full list in every
	// combination.
	var single []ParamDecl
	for _, pd := range def.Params {
		if !pd.Aggregate {
			single = append(single, pd)
		}
	}
	counts := make([]int, len(single))
	for i, pd := range single {
		counts[i] = len(args[pd.Name])
		if counts[i] == 0 {
			return value{}, nil // map over the empty list
		}
	}

	var out value
	idx := make([]int, len(single))
	for {
		binding := make(map[string][]string, len(def.Params))
		for i, pd := range single {
			binding[pd.Name] = []string{args[pd.Name][idx[i]].s}
		}
		for _, pd := range def.Params {
			if pd.Aggregate {
				binding[pd.Name] = args[pd.Name].strings()
			}
		}
		inv := d.invoke(def, binding)
		if inv.resolved {
			out = append(out, strVal(inv.outputs[proj]...)...)
		} else {
			// Pending invocations yield a hole — even though the path of
			// a non-aggregate output is known upfront, exposing it would
			// let downstream tasks be issued before their input exists.
			out = append(out, item{hole: true})
		}
		// Advance the mixed-radix counter.
		k := len(idx) - 1
		for ; k >= 0; k-- {
			idx[k]++
			if idx[k] < counts[k] {
				break
			}
			idx[k] = 0
		}
		if k < 0 {
			break
		}
	}
	return out, nil
}

// invoke returns the memoized invocation for (def, binding), creating and
// issuing the wf.Task on first encounter.
func (d *Driver) invoke(def *DefTask, binding map[string][]string) *invocation {
	key := invocationKey(def.TaskName, binding)
	if inv, ok := d.invocations[key]; ok {
		return inv
	}
	id := wf.NextID()
	task := &wf.Task{
		ID:         id,
		Name:       def.TaskName,
		Command:    def.Body,
		CPUSeconds: def.Attrs.CPUSeconds,
		Threads:    max(1, def.Attrs.Threads),
		MemMB:      def.Attrs.MemMB,
		Declared:   make(map[string][]wf.FileInfo),
		Env:        make(map[string]string),
		Meta:       map[string]string{"lang": def.Lang, "workflow": d.name},
	}
	// Inputs: file parameters only, deduplicated in declaration order.
	seen := map[string]bool{}
	for _, pd := range def.Params {
		vals := binding[pd.Name]
		task.Env[pd.Name] = strings.Join(vals, " ")
		if pd.Value {
			task.Meta["value:"+pd.Name] = strings.Join(vals, " ")
			continue
		}
		for _, v := range vals {
			if !seen[v] {
				seen[v] = true
				task.Inputs = append(task.Inputs, v)
			}
		}
	}
	for _, od := range def.Outputs {
		task.OutputParams = append(task.OutputParams, od.Name)
		if od.Aggregate {
			// Produced file count is decided at run time by the task.
			task.Declared[od.Name] = nil
			task.Meta["aggregate:"+od.Name] = "true"
			continue
		}
		size := def.Attrs.OutSizeMB[od.Name]
		if size <= 0 {
			size = 1
		}
		path := fmt.Sprintf("%s/%s_%d/%s", sanitize(d.name), def.TaskName, id, od.Name)
		task.Declared[od.Name] = []wf.FileInfo{{Path: path, SizeMB: size}}
		task.Env[od.Name] = path
	}
	inv := &invocation{key: key, task: task, def: def}
	d.invocations[key] = inv
	d.byTaskID[id] = inv
	d.unresolved++
	d.newTasks = append(d.newTasks, task)
	return inv
}

// invocationKey builds a canonical string for memoizing an application.
func invocationKey(taskName string, binding map[string][]string) string {
	params := make([]string, 0, len(binding))
	for p := range binding {
		params = append(params, p)
	}
	sort.Strings(params)
	var sb strings.Builder
	sb.WriteString(taskName)
	for _, p := range params {
		sb.WriteString("\x00")
		sb.WriteString(p)
		sb.WriteString("\x01")
		for i, v := range binding[p] {
			if i > 0 {
				sb.WriteString("\x02")
			}
			sb.WriteString(v)
		}
	}
	return sb.String()
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}
