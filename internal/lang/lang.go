// Package lang is the single registry of Hi-WAY's workflow frontends. The
// CLI (`hiway sim`, `inspect`), the HTTP service (`serve`), and batch
// loading all resolve a language name to a driver here, and sniff unknown
// sources with one shared detector — a new frontend registers in exactly
// one place.
package lang

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"hiway/internal/lang/cuneiform"
	"hiway/internal/lang/cwl"
	"hiway/internal/lang/dax"
	"hiway/internal/lang/galaxy"
	"hiway/internal/lang/trace"
	"hiway/internal/wf"
)

// Frontend language names, as accepted by -lang flags and the service API.
const (
	Cuneiform = "cuneiform"
	DAX       = "dax"
	Galaxy    = "galaxy"
	Trace     = "trace"
	CWL       = "cwl"
)

// Known returns the registered language names, sorted.
func Known() []string {
	names := []string{Cuneiform, DAX, Galaxy, Trace, CWL}
	sort.Strings(names)
	return names
}

// IsKnown reports whether name is a registered language.
func IsKnown(name string) bool {
	switch name {
	case Cuneiform, DAX, Galaxy, Trace, CWL:
		return true
	}
	return false
}

// Detect sniffs the frontend language of a workflow source. The file
// extension decides when recognized (.cf/.cuneiform, .dax/.xml, .ga,
// .cwl, .jsonl/.trace); otherwise the content is inspected: CWL documents
// carry cwlVersion, DAX starts with an <adag> XML element, Galaxy exports
// are JSON objects with a_galaxy_workflow, traces are JSON lines with a
// task field. Everything else parses as Cuneiform, the native language.
func Detect(path, src string) string {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".cf", ".cuneiform":
		return Cuneiform
	case ".dax", ".xml":
		return DAX
	case ".ga":
		return Galaxy
	case ".cwl":
		return CWL
	case ".jsonl", ".trace":
		return Trace
	}
	t := strings.TrimSpace(src)
	switch {
	case strings.Contains(t, `"cwlVersion"`) || strings.Contains(t, "cwlVersion:"):
		return CWL
	case strings.HasPrefix(t, "<?xml") || strings.HasPrefix(t, "<adag"):
		return DAX
	case strings.HasPrefix(t, "{") && strings.Contains(t, `"a_galaxy_workflow"`):
		return Galaxy
	case strings.HasPrefix(t, "{") && strings.Contains(t, `"task"`):
		return Trace
	}
	return Cuneiform
}

// NewDriver resolves a language name to its frontend driver for the given
// workflow name and source text. binds maps workflow inputs to staged
// paths for the frontends with named inputs (Galaxy, CWL); the others
// ignore it.
func NewDriver(language, name, src string, binds map[string]string) (wf.Driver, error) {
	switch language {
	case Cuneiform:
		return cuneiform.NewDriver(name, src), nil
	case DAX:
		return dax.NewDriver(name, src, dax.Options{}), nil
	case Galaxy:
		return galaxy.NewDriver(name, src, galaxy.Options{Inputs: binds}), nil
	case Trace:
		return trace.NewDriver(name, src), nil
	case CWL:
		return cwl.NewDriver(name, src, cwl.Options{Inputs: binds}), nil
	}
	return nil, fmt.Errorf("lang: unknown language %q (want %s)", language, strings.Join(Known(), ", "))
}
