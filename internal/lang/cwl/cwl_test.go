package cwl

import (
	"strings"
	"testing"

	"hiway/internal/wf"
)

// sampleCWL is a $graph bundle exercising the whole supported subset:
// scatter over a workflow input array, a gather step consuming the
// scattered outputs, scatter over a statically-sized array output,
// secondaryFiles, string inputs, multi-source arrays, and resource hints.
const sampleCWL = `{
  "cwlVersion": "v1.2",
  "$graph": [
    {
      "class": "Workflow",
      "id": "main",
      "inputs": [
        {"id": "reads", "type": "File[]",
         "default": [{"class": "File", "location": "/data/r1.fq"},
                     {"class": "File", "location": "/data/r2.fq"}]},
        {"id": "genome", "type": "File",
         "default": {"class": "File", "location": "/ref/genome.fa"}},
        {"id": "label", "type": "string", "default": "batch7"}
      ],
      "outputs": [
        {"id": "result", "type": "File", "outputSource": "merge/merged"}
      ],
      "steps": [
        {"id": "align", "run": "#aligner", "scatter": "fq",
         "in": [{"id": "fq", "source": "reads"},
                {"id": "ref", "source": "genome"},
                {"id": "tag", "source": "label"}],
         "out": ["bam"]},
        {"id": "split", "run": "#splitter",
         "in": [{"id": "bams", "source": "align/bam"}],
         "out": ["parts"]},
        {"id": "call", "run": "#caller", "scatter": "part",
         "in": [{"id": "part", "source": "split/parts"}],
         "out": ["vcf"]},
        {"id": "merge", "run": "#merger",
         "in": [{"id": "pieces", "source": ["call/vcf", "align/bam"]}],
         "out": ["merged"]}
      ]
    },
    {
      "class": "CommandLineTool",
      "id": "aligner",
      "baseCommand": ["bwa", "mem"],
      "requirements": [{"class": "ResourceRequirement", "coresMin": 8, "ramMin": 6500}],
      "hints": [{"class": "hiway:Profile", "cpuSeconds": 3000, "outSizeMB": {"bam": 700}}],
      "inputs": [
        {"id": "fq", "type": "File"},
        {"id": "ref", "type": "File", "secondaryFiles": [".idx", "^.dict"]},
        {"id": "tag", "type": "string"}
      ],
      "outputs": [{"id": "bam", "type": "File"}]
    },
    {
      "class": "CommandLineTool",
      "id": "splitter",
      "baseCommand": "split",
      "hints": [{"class": "hiway:Profile", "outCount": {"parts": 3}}],
      "inputs": [{"id": "bams", "type": "File[]"}],
      "outputs": [{"id": "parts", "type": "File[]"}]
    },
    {
      "class": "CommandLineTool",
      "id": "caller",
      "baseCommand": "call",
      "inputs": [{"id": "part", "type": "File"}],
      "outputs": [{"id": "vcf", "type": "File"}]
    },
    {
      "class": "CommandLineTool",
      "id": "merger",
      "baseCommand": "merge",
      "inputs": [{"id": "pieces", "type": "File[]"}],
      "outputs": [{"id": "merged", "type": "File"}]
    }
  ]
}`

func parseAll(t *testing.T, name, src string, opts Options) []*wf.Task {
	t.Helper()
	tasks, _, _, err := build(name, src, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

func TestParseSampleWorkflow(t *testing.T) {
	tasks := parseAll(t, "wgs", sampleCWL, Options{})
	// 2 aligners (scatter over reads) + 1 splitter + 3 callers (scatter
	// over the declared 3-part array) + 1 merger.
	if len(tasks) != 7 {
		t.Fatalf("got %d tasks, want 7", len(tasks))
	}
	byName := map[string][]*wf.Task{}
	for _, task := range tasks {
		byName[task.Name] = append(byName[task.Name], task)
	}
	if len(byName["aligner"]) != 2 || len(byName["caller"]) != 3 {
		t.Fatalf("scatter widths: aligners=%d callers=%d", len(byName["aligner"]), len(byName["caller"]))
	}

	al := byName["aligner"][0]
	if al.Command != "bwa mem" {
		t.Errorf("command = %q", al.Command)
	}
	if al.Threads != 8 || al.MemMB != 6500 || al.CPUSeconds != 3000 {
		t.Errorf("resources = %d threads, %d MB, %.0f s", al.Threads, al.MemMB, al.CPUSeconds)
	}
	// Scatter selects one read; the reference expands its secondaryFiles
	// (".idx" appends, "^.dict" swaps the extension).
	wantIn := []string{"/data/r1.fq", "/ref/genome.fa", "/ref/genome.fa.idx", "/ref/genome.dict"}
	if len(al.Inputs) != len(wantIn) {
		t.Fatalf("aligner inputs = %v", al.Inputs)
	}
	for i, p := range wantIn {
		if al.Inputs[i] != p {
			t.Errorf("aligner input[%d] = %q, want %q", i, al.Inputs[i], p)
		}
	}
	if al.Env["tag"] != "batch7" || al.Meta["value:tag"] != "batch7" {
		t.Errorf("string input not threaded: env=%q meta=%q", al.Env["tag"], al.Meta["value:tag"])
	}
	if got := al.Declared["bam"]; len(got) != 1 || got[0].SizeMB != 700 {
		t.Errorf("aligner output = %+v", got)
	}

	// The splitter consumes both gathered aligner outputs and declares a
	// 3-wide array output, which the callers scatter over.
	sp := byName["splitter"][0]
	if len(sp.Inputs) != 2 {
		t.Fatalf("splitter inputs = %v", sp.Inputs)
	}
	if len(sp.Declared["parts"]) != 3 {
		t.Fatalf("splitter parts = %v", sp.Declared["parts"])
	}
	for i, c := range byName["caller"] {
		if len(c.Inputs) != 1 || c.Inputs[0] != sp.Declared["parts"][i].Path {
			t.Errorf("caller %d consumes %v, want %q", i, c.Inputs, sp.Declared["parts"][i].Path)
		}
	}

	// The merger's multi-source input gathers 3 vcfs + 2 bams.
	mg := byName["merger"][0]
	if len(mg.Inputs) != 5 {
		t.Fatalf("merger inputs = %v", mg.Inputs)
	}

	// The whole thing must form a valid DAG with the aligners ready first.
	d := NewDriver("wgs", sampleCWL, Options{})
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 2 || ready[0].Name != "aligner" {
		t.Fatalf("ready = %v", ready)
	}
}

func TestBindingsOverrideDefaults(t *testing.T) {
	tasks := parseAll(t, "wgs", sampleCWL, Options{Inputs: map[string]string{"genome": "/alt/g.fa"}})
	for _, task := range tasks {
		if task.Name != "aligner" {
			continue
		}
		if task.Inputs[1] != "/alt/g.fa" {
			t.Fatalf("bind ignored: %v", task.Inputs)
		}
	}
}

func TestBareCommandLineTool(t *testing.T) {
	src := `{
	  "cwlVersion": "v1.2", "class": "CommandLineTool", "id": "solo",
	  "baseCommand": "run",
	  "inputs": [{"id": "in", "type": "File",
	              "default": {"class": "File", "location": "/data/in.dat"}}],
	  "outputs": [{"id": "out", "type": "File"}]
	}`
	tasks := parseAll(t, "one", src, Options{})
	if len(tasks) != 1 || tasks[0].Name != "solo" || tasks[0].Inputs[0] != "/data/in.dat" {
		t.Fatalf("tasks = %+v", tasks)
	}
}

func TestMapFormListings(t *testing.T) {
	src := `{
	  "cwlVersion": "v1.2",
	  "$graph": [
	    {"class": "Workflow", "id": "m",
	     "inputs": {"x": {"type": "File", "default": {"class": "File", "location": "/d/x"}}},
	     "outputs": {},
	     "steps": {"s": {"run": "#t", "in": {"in": {"source": "x"}}, "out": ["out"]}}},
	    {"class": "CommandLineTool", "id": "t", "baseCommand": "go",
	     "inputs": {"in": {"type": "File"}},
	     "outputs": {"out": {"type": "File"}}}
	  ]
	}`
	tasks := parseAll(t, "m", src, Options{})
	if len(tasks) != 1 || tasks[0].Inputs[0] != "/d/x" {
		t.Fatalf("map-form parse: %+v", tasks)
	}
}

// doc builds a one-workflow document around the given steps/tools JSON
// fragments, for the error-case table below.
func doc(steps, tools string) string {
	return `{"cwlVersion": "v1.2", "$graph": [
	  {"class": "Workflow", "id": "w",
	   "inputs": [{"id": "seed", "type": "File",
	               "default": {"class": "File", "location": "/d/seed"}},
	              {"id": "list", "type": "File[]", "default": []}],
	   "outputs": [],
	   "steps": [` + steps + `]},
	  {"class": "CommandLineTool", "id": "t", "baseCommand": "go",
	   "inputs": [{"id": "in", "type": "File"}],
	   "outputs": [{"id": "out", "type": "File"}]}` + tools + `]}`
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{
			"empty scatter list",
			doc(`{"id": "s", "run": "#t", "scatter": [],
			      "in": [{"id": "in", "source": "seed"}], "out": ["out"]}`, ""),
			"empty scatter",
		},
		{
			"scatter over empty input",
			doc(`{"id": "s", "run": "#t", "scatter": "in",
			      "in": [{"id": "in", "source": "list"}], "out": ["out"]}`, ""),
			"scatters over empty input",
		},
		{
			"cyclic steps",
			doc(`{"id": "a", "run": "#t", "in": [{"id": "in", "source": "b/out"}], "out": ["out"]},
			     {"id": "b", "run": "#t", "in": [{"id": "in", "source": "a/out"}], "out": ["out"]}`, ""),
			"cyclic step references",
		},
		{
			"duplicate step ids",
			doc(`{"id": "s", "run": "#t", "in": [{"id": "in", "source": "seed"}], "out": ["out"]},
			     {"id": "s", "run": "#t", "in": [{"id": "in", "source": "seed"}], "out": ["out"]}`, ""),
			"duplicate step id",
		},
		{
			"unknown tool",
			doc(`{"id": "s", "run": "#nope", "in": [{"id": "in", "source": "seed"}], "out": ["out"]}`, ""),
			"unknown tool",
		},
		{
			"unknown source",
			doc(`{"id": "s", "run": "#t", "in": [{"id": "in", "source": "ghost"}], "out": ["out"]}`, ""),
			"unknown source",
		},
		{
			"unbound tool input",
			doc(`{"id": "s", "run": "#t", "in": [], "out": ["out"]}`, ""),
			"does not bind tool input",
		},
		{
			"missing workflow input value",
			`{"cwlVersion": "v1.2", "$graph": [
			  {"class": "Workflow", "id": "w",
			   "inputs": [{"id": "seed", "type": "File"}], "outputs": [],
			   "steps": [{"id": "s", "run": "#t", "in": [{"id": "in", "source": "seed"}], "out": ["out"]}]},
			  {"class": "CommandLineTool", "id": "t", "baseCommand": "go",
			   "inputs": [{"id": "in", "type": "File"}],
			   "outputs": [{"id": "out", "type": "File"}]}]}`,
			"no default and no binding",
		},
		{
			"missing cwlVersion",
			`{"class": "CommandLineTool", "id": "t", "baseCommand": "go",
			  "inputs": [], "outputs": [{"id": "out", "type": "File"}]}`,
			"missing cwlVersion",
		},
		{
			"unsupported type",
			doc(`{"id": "s", "run": "#u", "in": [{"id": "in", "source": "seed"}], "out": ["out"]}`,
				`, {"class": "CommandLineTool", "id": "u", "baseCommand": "go",
				    "inputs": [{"id": "in", "type": "Directory"}],
				    "outputs": [{"id": "out", "type": "File"}]}`),
			"unsupported type",
		},
		{
			"tool without outputs",
			doc(`{"id": "s", "run": "#u", "in": [{"id": "in", "source": "seed"}], "out": []}`,
				`, {"class": "CommandLineTool", "id": "u", "baseCommand": "go",
				    "inputs": [{"id": "in", "type": "File"}], "outputs": []}`),
			"declares no outputs",
		},
		{
			"scalar port fed an array",
			doc(`{"id": "a", "run": "#t", "scatter": "in",
			      "in": [{"id": "in", "source": "seed"}], "out": ["out"]},
			     {"id": "b", "run": "#t", "in": [{"id": "in", "source": ["seed", "seed"]}], "out": ["out"]}`, ""),
			"is not an array but receives 2 values",
		},
		{
			"nested array type",
			doc(`{"id": "s", "run": "#u", "in": [{"id": "in", "source": "seed"}], "out": ["out"]}`,
				`, {"class": "CommandLineTool", "id": "u", "baseCommand": "go",
				    "inputs": [{"id": "in", "type": {"type": "array", "items": "File[]"}}],
				    "outputs": [{"id": "out", "type": "File"}]}`),
			"nested array types",
		},
		{
			"non-array type object",
			doc(`{"id": "s", "run": "#u", "in": [{"id": "in", "source": "seed"}], "out": ["out"]}`,
				`, {"class": "CommandLineTool", "id": "u", "baseCommand": "go",
				    "inputs": [{"id": "in", "type": {"type": "record"}}],
				    "outputs": [{"id": "out", "type": "File"}]}`),
			"unsupported type",
		},
		{
			"unsupported array items",
			doc(`{"id": "s", "run": "#u", "in": [{"id": "in", "source": "seed"}], "out": ["out"]}`,
				`, {"class": "CommandLineTool", "id": "u", "baseCommand": "go",
				    "inputs": [{"id": "in", "type": {"type": "array", "items": "int"}}],
				    "outputs": [{"id": "out", "type": "File"}]}`),
			"array items",
		},
		{
			"requirements neither array nor map",
			doc(`{"id": "s", "run": "#u", "in": [{"id": "in", "source": "seed"}], "out": ["out"]}`,
				`, {"class": "CommandLineTool", "id": "u", "baseCommand": "go",
				    "requirements": 5,
				    "inputs": [{"id": "in", "type": "File"}],
				    "outputs": [{"id": "out", "type": "File"}]}`),
			"requirements must be an array or a map",
		},
		{
			"File default is not a File object",
			doc(`{"id": "s", "run": "#u", "in": [{"id": "in", "default": "/d/raw"}], "out": ["out"]}`,
				`, {"class": "CommandLineTool", "id": "u", "baseCommand": "go",
				    "inputs": [{"id": "in", "type": "File"}],
				    "outputs": [{"id": "out", "type": "File"}]}`),
			"want a File object",
		},
		{
			"File default without a location",
			doc(`{"id": "s", "run": "#u", "in": [{"id": "in", "default": {"class": "File"}}], "out": ["out"]}`,
				`, {"class": "CommandLineTool", "id": "u", "baseCommand": "go",
				    "inputs": [{"id": "in", "type": "File"}],
				    "outputs": [{"id": "out", "type": "File"}]}`),
			"File default has no location",
		},
		{
			"string default is not a string",
			doc(`{"id": "s", "run": "#u",
			      "in": [{"id": "in", "source": "seed"}, {"id": "n", "default": 5}], "out": ["out"]}`,
				`, {"class": "CommandLineTool", "id": "u", "baseCommand": "go",
				    "inputs": [{"id": "in", "type": "File"}, {"id": "n", "type": "string"}],
				    "outputs": [{"id": "out", "type": "File"}]}`),
			"want a string",
		},
		{
			"array default is not an array",
			doc(`{"id": "s", "run": "#u", "in": [{"id": "xs", "default": "/d/one"}], "out": ["out"]}`,
				`, {"class": "CommandLineTool", "id": "u", "baseCommand": "go",
				    "inputs": [{"id": "xs", "type": "File[]"}],
				    "outputs": [{"id": "out", "type": "File"}]}`),
			"want an array",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, _, err := build("w", c.src, Options{})
			if err == nil {
				t.Fatalf("accepted invalid document")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestResourceHintClamping(t *testing.T) {
	src := `{
	  "cwlVersion": "v1.2", "class": "CommandLineTool", "id": "big",
	  "baseCommand": "go",
	  "requirements": [{"class": "ResourceRequirement", "coresMin": 4096, "ramMin": 9000000}],
	  "hints": [{"class": "hiway:Profile", "outSizeMB": {"out": -5}, "outCount": {"out": 1000000}}],
	  "inputs": [{"id": "in", "type": "File",
	              "default": {"class": "File", "location": "/d/in"}}],
	  "outputs": [{"id": "out", "type": "File[]"}]
	}`
	tasks := parseAll(t, "clamp", src, Options{})
	task := tasks[0]
	if task.Threads != maxThreads {
		t.Errorf("threads = %d, want clamped to %d", task.Threads, maxThreads)
	}
	if task.MemMB != maxMemMB {
		t.Errorf("memMB = %d, want clamped to %d", task.MemMB, maxMemMB)
	}
	if n := len(task.Declared["out"]); n != maxOutCount {
		t.Errorf("outCount = %d, want clamped to %d", n, maxOutCount)
	}
	if task.Declared["out"][0].SizeMB != 1 {
		t.Errorf("non-positive outSizeMB should default to 1, got %v", task.Declared["out"][0].SizeMB)
	}
}

func TestSecondaryPathPatterns(t *testing.T) {
	cases := []struct{ primary, pattern, want string }{
		{"/d/x.bam", ".bai", "/d/x.bam.bai"},
		{"/d/x.bam", "^.bai", "/d/x.bai"},
		{"/d/x.tar.gz", "^^.list", "/d/x.list"},
		{"/d.ir/noext", ".idx", "/d.ir/noext.idx"},
		{"/d.ir/noext", "^.idx", "/d.ir/noext.idx"},
	}
	for _, c := range cases {
		if got := secondaryPath(c.primary, c.pattern); got != c.want {
			t.Errorf("secondaryPath(%q, %q) = %q, want %q", c.primary, c.pattern, got, c.want)
		}
	}
}

// TestDeterministicTaskOrder pins the ID-assignment discipline the
// differential portability check depends on: steps materialize in
// dependency waves, document order within a wave, scatter elements in
// list order.
func TestDeterministicTaskOrder(t *testing.T) {
	a := parseAll(t, "wgs", sampleCWL, Options{})
	b := parseAll(t, "wgs", sampleCWL, Options{})
	if len(a) != len(b) {
		t.Fatal("nondeterministic task count")
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Env["fq"] != b[i].Env["fq"] {
			t.Fatalf("task %d differs across parses: %q vs %q", i, a[i].Name, b[i].Name)
		}
	}
}

// TestObjectTypesAndMapRequirements exercises the long-form spellings the
// other tests skip: object-form array types, map-form requirements/hints,
// and workflow-name sanitization in synthesized paths.
func TestObjectTypesAndMapRequirements(t *testing.T) {
	src := `{"cwlVersion": "v1.2",
	  "class": "CommandLineTool", "id": "pack", "baseCommand": ["tar", "cf"],
	  "requirements": {"ResourceRequirement": {"coresMin": 3, "ramMin": 2000}},
	  "hints": {"hiway:Profile": {"cpuSeconds": 120, "outSizeMB": {"out": 7}}},
	  "inputs": [{"id": "xs", "type": {"type": "array", "items": "File"},
	              "default": [{"class": "File", "location": "/d/a"},
	                          {"class": "File", "path": "/d/b"}]}],
	  "outputs": [{"id": "out", "type": "File"}]}`
	d := NewDriver("my wf!", src, Options{})
	ready, err := d.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 1 {
		t.Fatalf("ready = %d", len(ready))
	}
	task := ready[0]
	if task.Threads != 3 || task.MemMB != 2000 || task.CPUSeconds != 120 {
		t.Fatalf("resources: threads=%d mem=%d cpu=%g", task.Threads, task.MemMB, task.CPUSeconds)
	}
	if got := task.Inputs; len(got) != 2 || got[0] != "/d/a" || got[1] != "/d/b" {
		t.Fatalf("inputs = %v", got)
	}
	out := task.Declared["out"]
	if len(out) != 1 || out[0].SizeMB != 7 {
		t.Fatalf("declared = %v", out)
	}
	// The workflow name is sanitized into the synthesized output path.
	if !strings.HasPrefix(out[0].Path, "my_wf_/") {
		t.Fatalf("path = %q", out[0].Path)
	}
}
